(** Content-addressed on-disk store for derived characterisation
    artifacts.

    A store is a directory of single-artifact files, each named by the
    digest of its key with the full key echoed in a one-line header —
    the same fingerprint-guarded shape as the v4 [.lvf] cache, scaled
    down to one artifact per file so producers can populate it
    incrementally.  The statistical provider uses it to persist its
    per-(cell, edge) moment regressions across processes (keyed by the
    library fingerprint), turning the cold mini-MC warm-up into a
    near-zero disk load on every later run.

    Outcomes are counted in the metrics registry as
    [provider.store.hit] / [provider.store.miss] / [provider.store.stale]
    / [provider.store.evicted] (registered at module init, so run
    reports always carry the keys). *)

val default_dir : unit -> string option
(** The [NSIGMA_PROVIDER_CACHE] environment directory, if set and
    non-empty — the conventional default for [?store_dir] parameters. *)

val path_of : dir:string -> key:string -> string
(** The artifact file backing [key] (exposed for tests and debugging).
    @raise Invalid_argument if the key is empty or contains
    whitespace. *)

val find : dir:string -> key:string -> decode:(string -> 'a option) -> 'a option
(** Look up an artifact: [Some v] when the file exists, its header
    matches [key] exactly and [decode] accepts the payload (counted as
    a hit).  A missing file is a miss; a present-but-mismatched or
    undecodable file is stale — both return [None] and the caller
    recomputes (and typically {!save}s, healing the stale entry). *)

val save : dir:string -> key:string -> string -> unit
(** Write an artifact atomically (temp file + rename), creating the
    directory if needed.  An unwritable store degrades to a logged
    no-op — persisting an artifact must never fail the run that
    produced it. *)

val prune : dir:string -> max_bytes:int -> int
(** Evict artifacts, oldest mtime first, until the store's total size
    is at most [max_bytes]; returns the number evicted (counted as
    [provider.store.evicted]).  Eviction is a plain atomic unlink, so a
    reader that already opened a victim keeps reading it and one that
    has not sees an ordinary miss; a missing or unreadable directory is
    an empty store.  @raise Invalid_argument on negative [max_bytes]. *)
