module Technology = Nsigma_process.Technology
module Arc = Nsigma_spice.Arc

type kind = Inv | Buf | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 | Aoi21 | Oai21

type t = { kind : kind; strength : int }

let all_kinds = [ Inv; Buf; Nand2; Nor2; And2; Or2; Xor2; Xnor2; Aoi21; Oai21 ]

let standard_strengths = [ 1; 2; 4; 8 ]

let make kind ~strength =
  if strength <= 0 then invalid_arg "Cell.make: strength must be positive";
  { kind; strength }

let kind_name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nor2 -> "NOR2"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"

let name t = Printf.sprintf "%sX%d" (kind_name t.kind) t.strength

let of_name s =
  match String.rindex_opt s 'X' with
  | None -> failwith (Printf.sprintf "Cell.of_name: malformed name %S" s)
  | Some i ->
    let kind_str = String.sub s 0 i in
    let strength_str = String.sub s (i + 1) (String.length s - i - 1) in
    let kind =
      match kind_str with
      | "INV" -> Inv
      | "BUF" -> Buf
      | "NAND2" -> Nand2
      | "NOR2" -> Nor2
      | "AND2" -> And2
      | "OR2" -> Or2
      | "XOR2" -> Xor2
      | "XNOR2" -> Xnor2
      | "AOI21" | "AOI2" -> Aoi21
      | "OAI21" | "OAI2" -> Oai21
      | other -> failwith (Printf.sprintf "Cell.of_name: unknown kind %S" other)
    in
    (match int_of_string_opt strength_str with
    | Some strength when strength > 0 -> { kind; strength }
    | _ -> failwith (Printf.sprintf "Cell.of_name: bad strength in %S" s))

let n_inputs = function
  | Inv | Buf -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 -> 2
  | Aoi21 | Oai21 -> 3

let eval kind inputs =
  if Array.length inputs <> n_inputs kind then
    invalid_arg "Cell.eval: arity mismatch";
  match kind with
  | Inv -> not inputs.(0)
  | Buf -> inputs.(0)
  | Nand2 -> not (inputs.(0) && inputs.(1))
  | Nor2 -> not (inputs.(0) || inputs.(1))
  | And2 -> inputs.(0) && inputs.(1)
  | Or2 -> inputs.(0) || inputs.(1)
  | Xor2 -> inputs.(0) <> inputs.(1)
  | Xnor2 -> inputs.(0) = inputs.(1)
  | Aoi21 -> not ((inputs.(0) && inputs.(1)) || inputs.(2))
  | Oai21 -> not ((inputs.(0) || inputs.(1)) && inputs.(2))

let inverting = function
  | Inv | Nand2 | Nor2 | Xnor2 | Aoi21 | Oai21 -> true
  | Buf | And2 | Or2 | Xor2 -> false

(* Topology of the worst-case (characterised) arc per output edge:
   (series depth of the conducting network, parallel multiplicity). *)
let topology kind ~output_edge =
  match (kind, output_edge) with
  | (Inv | Buf), _ -> (1, 1)
  (* NAND2: NMOS series stack pulls down; a single PMOS of the parallel
     pair pulls up. *)
  | Nand2, `Fall -> (2, 1)
  | Nand2, `Rise -> (1, 1)
  (* NOR2: one of the parallel NMOS pulls down; PMOS series stack up. *)
  | Nor2, `Fall -> (1, 1)
  | Nor2, `Rise -> (2, 1)
  (* AND2/OR2 are NAND2/NOR2 plus an output inverter; the compound worst
     stack matches the first stage. *)
  | And2, `Fall -> (2, 1)
  | And2, `Rise -> (1, 1)
  | Or2, `Fall -> (1, 1)
  | Or2, `Rise -> (2, 1)
  (* XOR/XNOR: transmission of two series devices both ways. *)
  | (Xor2 | Xnor2), _ -> (2, 1)
  (* AOI21: pull-down through the A·B branch (depth 2); pull-up through
     the series C + (A ∥ B) PMOS (depth 2). *)
  | Aoi21, _ -> (2, 1)
  | Oai21, _ -> (2, 1)

let stack_depth kind ~output_edge = fst (topology kind ~output_edge)

let stack_count t =
  max (stack_depth t.kind ~output_edge:`Rise) (stack_depth t.kind ~output_edge:`Fall)

let input_cap (tech : Technology.t) t =
  let s = float_of_int t.strength in
  (* One input pin gates one NMOS and one PMOS, each upsized by its
     network's series depth. *)
  let depth_down = float_of_int (stack_depth t.kind ~output_edge:`Fall) in
  let depth_up = float_of_int (stack_depth t.kind ~output_edge:`Rise) in
  ((tech.width_n *. s *. depth_down) +. (tech.width_p *. s *. depth_up))
  *. tech.cap_gate_per_width

let fo4_load tech t = 4.0 *. input_cap tech t

let arc tech sample t ~output_edge =
  let depth, parallel = topology t.kind ~output_edge in
  let pull = match output_edge with `Rise -> Arc.Pull_up | `Fall -> Arc.Pull_down in
  (* Series devices are upsized by the depth of their own stack; the
     lumped opposing device is sized like the cell's drive. *)
  let strength = float_of_int (t.strength * depth) in
  Arc.make tech sample ~pull ~depth ~strength ~parallel
    ~opposing_width_mult:(float_of_int t.strength) ()

let plan tech t ~output_edge =
  let depth, parallel = topology t.kind ~output_edge in
  let pull = match output_edge with `Rise -> Arc.Pull_up | `Fall -> Arc.Pull_down in
  (* Mirrors [arc] exactly, minus the variation sample: same sizing, same
     topology, so a filled skeleton is bit-identical to [arc]'s result. *)
  let strength = float_of_int (t.strength * depth) in
  Arc.skeleton tech ~pull ~depth ~strength ~parallel
    ~opposing_width_mult:(float_of_int t.strength) ()

let drive_resistance (tech : Technology.t) t =
  let a = arc tech Nsigma_process.Variation.nominal t ~output_edge:`Fall in
  let vdd = tech.vdd_nominal in
  let i = Nsigma_spice.Arc.current tech a ~vin:vdd ~vout:(vdd /. 2.0) in
  vdd /. (2.0 *. Float.max 1e-12 i)

let pp ppf t = Format.pp_print_string ppf (name t)
