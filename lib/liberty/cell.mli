(** The synthetic standard-cell library's cell definitions.

    Each cell is a logic kind plus an integer drive strength (×1, ×2, ×4,
    ×8 — the paper's sweep).  The module knows, per kind, the Boolean
    function (for netlist evaluation), the transistor topology of the
    worst-case switching arc (series depth and parallel multiplicity of
    both networks), and the derived electrical quantities: pin input
    capacitance and the {!Nsigma_spice.Arc.t} for a given variation
    sample.

    Sizing follows standard library practice: devices in a series stack
    of depth d are upsized d× so all cells of strength s have roughly the
    drive of an INVxs.  The stacked-transistor count [stack_count] is the
    "n" of the paper's eq. (5). *)

type kind =
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi21
  | Oai21

type t = { kind : kind; strength : int }

val all_kinds : kind list

val standard_strengths : int list
(** [1; 2; 4; 8] *)

val make : kind -> strength:int -> t
(** @raise Invalid_argument for a non-positive strength. *)

val name : t -> string
(** e.g. ["NAND2X4"]. *)

val kind_name : kind -> string

val of_name : string -> t
(** Inverse of {!name}. @raise Failure on an unknown name. *)

val n_inputs : kind -> int

val eval : kind -> bool array -> bool
(** Boolean function. @raise Invalid_argument on arity mismatch. *)

val inverting : kind -> bool
(** True when a rising input drives a falling output (unate inverted). *)

val stack_depth : kind -> output_edge:[ `Rise | `Fall ] -> int
(** Series depth of the conducting network for the worst arc. *)

val stack_count : t -> int
(** The paper's "number of stacked transistors" n: the worst-case series
    depth over both networks. *)

val input_cap : Nsigma_process.Technology.t -> t -> float
(** Capacitance of one input pin (F): the N and P gates it drives, with
    stack upsizing included. *)

val fo4_load : Nsigma_process.Technology.t -> t -> float
(** Four copies of the cell's own input pin — the paper's FO4
    characterisation constraint. *)

val drive_resistance :
  Nsigma_process.Technology.t -> t -> float
(** Switch-resistance estimate of the cell's worst pull-down arc,
    R_drv ≈ VDD/(2·I(VDD, VDD/2)) — couples drive strength to effective
    capacitance and shielding computations. *)

val arc :
  Nsigma_process.Technology.t ->
  Nsigma_process.Variation.t ->
  t ->
  output_edge:[ `Rise | `Fall ] ->
  Nsigma_spice.Arc.t
(** Build the worst-case switching arc for the given output edge under
    one variation sample. *)

val plan :
  Nsigma_process.Technology.t ->
  t ->
  output_edge:[ `Rise | `Fall ] ->
  Nsigma_spice.Arc.skeleton
(** Precompiled sampling plan for the same arc: compile the structure
    once, then {!Nsigma_spice.Arc.fill} per sample.  A filled plan is
    bit-identical to {!arc} + {!Nsigma_spice.Arc.compile} for the same
    sample.  Draws nothing (safe to build on worker domains). *)

val pp : Format.formatter -> t -> unit
