(** Statistical cell characterisation — the LVF-table generator.

    For every (input slew, output load) grid point, run a Monte-Carlo
    population of the cell's worst arc through the transient simulator
    and record the first four delay moments, the seven sigma-level
    quantiles, and the mean output slew.  This reproduces the flow of
    Fig. 5 of the paper up to (and excluding) the model fitting, which
    lives in the core library. *)

type point = {
  slew : float;
  load : float;
  moments : Nsigma_stats.Moments.summary;
  quantiles : float array;  (** seven entries, sigma levels −3 … +3 *)
  mean_out_slew : float;
}

type table = {
  cell : Cell.t;
  edge : [ `Rise | `Fall ];
  vdd : float;
  n_mc : int;
  kernel : Nsigma_spice.Cell_sim.kernel;
      (** the simulation kernel the population was measured with *)
  sampling : Nsigma_stats.Sampler.backend;
      (** the deviate stream the population was drawn from *)
  rtol : float option;
      (** adaptive-stopping tolerance used, [None] for fixed-count runs *)
  slews : float array;  (** ascending *)
  loads : float array;  (** ascending *)
  points : point array array;  (** indexed [slew][load] *)
}

val reference_slew : float
(** 10 ps — the paper's S_ref. *)

val reference_load : float
(** 0.4 fF — the paper's C_ref. *)

val default_slews : float array
(** 10, 25, 50, 100, 200, 300 ps (the paper sweeps 10–300 ps). *)

val default_loads : float array
(** 0.1, 0.4, 1, 2, 4, 6 fF (the paper sweeps 0.1–6 fF for the INVx1). *)

val loads_for : Nsigma_process.Technology.t -> Cell.t -> float array
(** The default load axis for a cell: fractions 0.05–3.5 of its own FO4
    load (with C_ref inserted when it falls inside the span), so strong
    cells are characterised over loads they actually see while the FO4
    point of Table II stays exactly on the grid. *)

val characterize :
  ?n_mc:int ->
  ?seed:int ->
  ?slews:float array ->
  ?loads:float array ->
  ?exec:Nsigma_exec.Executor.t ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  ?sampling:Nsigma_stats.Sampler.backend ->
  ?rtol:float ->
  Nsigma_process.Technology.t ->
  Cell.t ->
  edge:[ `Rise | `Fall ] ->
  table
(** Run the characterisation ([n_mc] defaults to 2000 samples per grid
    point; [loads] defaults to {!loads_for}).  Grid points are
    independent work items scheduled on [exec] (default
    [Executor.default ()]), each deriving its sample stream from its own
    grid index: the table is bit-identical for a fixed seed on every
    backend and pool size.  [kernel] selects the simulation engine
    (default {!Nsigma_spice.Cell_sim.default_kernel}[ ()], i.e. the fast
    analytic path unless [NSIGMA_KERNEL] says otherwise); the choice is
    recorded in the table and in the .lvf cache fingerprint.

    [sampling] selects the deviate stream per grid point (default
    {!Nsigma_stats.Sampler.default_backend}[ ()]): the [Mc] default
    reproduces the pre-sampler populations bit-exactly, while
    [Antithetic] / [Lhs] / [Sobol] trade that replay for variance
    reduction.  [rtol] turns on adaptive stopping per grid point
    ({!Nsigma_spice.Monte_carlo.arc_delays_sampled}): each point stops
    as soon as both ±3σ quantile CIs are within the relative tolerance,
    capped at [n_mc] samples.  Both choices are recorded in the table
    and in the .lvf cache fingerprint. *)

val grid_signature : string
(** Canonical dump of the characterisation-grid constants (default slew
    axis, FO4 load fractions, reference condition, sigma levels).  Mixed
    into the library cache fingerprint so a cache characterised under an
    older grid is detected as stale. *)

val point_at : table -> slew:float -> load:float -> point
(** Nearest grid point (exact match expected; nearest otherwise). *)

val moments_at : table -> slew:float -> load:float -> Nsigma_stats.Moments.summary
(** Bilinear interpolation of each moment across the grid — the
    LVF-style lookup a conventional tool would use. *)

val out_slew_at : table -> slew:float -> load:float -> float
(** Bilinear interpolation of the mean output slew (for slew
    propagation in STA). *)

val quantile_at : table -> slew:float -> load:float -> sigma:int -> float
(** Bilinear interpolation of an empirical sigma-level quantile. *)

val reference_point : table -> point
(** The grid point at (S_ref, C_ref).
    @raise Invalid_argument if the grid does not contain it. *)
