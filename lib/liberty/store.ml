(* Content-addressed on-disk store for derived characterisation
   artifacts (per-(cell, edge) moment regressions and similar).

   One artifact per file, named by the digest of its key; the full key
   is echoed in the header so digest collisions and format drift are
   detected as staleness rather than silently served.  Writes go
   through a temp file + rename so a crashed producer never leaves a
   half-written artifact, and concurrent producers of the same key
   (which by construction write identical bytes) at worst race to an
   identical result. *)

module Metrics = Nsigma_obs.Metrics
module Log = Nsigma_obs.Log

(* Registered at module init so run reports always carry the
   provider-store keys, zero-valued when no store was consulted. *)
let m_hit = Metrics.counter "provider.store.hit"
let m_miss = Metrics.counter "provider.store.miss"
let m_stale = Metrics.counter "provider.store.stale"
let m_evicted = Metrics.counter "provider.store.evicted"

let magic = "NSIGMA_STORE 1"

let default_dir () =
  match Sys.getenv_opt "NSIGMA_PROVIDER_CACHE" with
  | Some s when String.trim s <> "" -> Some (String.trim s)
  | _ -> None

let check_key key =
  if key = "" then invalid_arg "Store: empty key";
  String.iter
    (fun c ->
      if c = '\n' || c = '\r' || c = ' ' || c = '\t' then
        invalid_arg "Store: key must not contain whitespace")
    key

let path_of ~dir ~key =
  check_key key;
  Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".nps")

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let find ~dir ~key ~decode =
  let path = path_of ~dir ~key in
  if not (Sys.file_exists path) then begin
    Metrics.incr m_miss;
    None
  end
  else begin
    let contents =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic)))
      with Sys_error _ | End_of_file -> None
    in
    let payload =
      match contents with
      | None -> None
      | Some s -> (
        match String.index_opt s '\n' with
        | Some nl when String.sub s 0 nl = magic ^ " " ^ key ->
          Some (String.sub s (nl + 1) (String.length s - nl - 1))
        | _ -> None)
    in
    match Option.bind payload decode with
    | Some v ->
      Metrics.incr m_hit;
      Some v
    | None ->
      (* Present but unreadable, differently-keyed (digest collision or
         format drift) or undecodable: a stale artifact, distinct from a
         plain miss in run reports. *)
      Metrics.incr m_stale;
      Log.info "stale provider-store artifact %s; recomputing" path;
      None
  end

let save ~dir ~key payload =
  let path = path_of ~dir ~key in
  try
    mkdir_p dir;
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (magic ^ " " ^ key ^ "\n");
        output_string oc payload);
    Sys.rename tmp path
  with Sys_error msg ->
    (* A read-only or full store directory degrades to in-memory-only
       operation; it must never fail the analysis that produced the
       artifact. *)
    Log.info "cannot write provider-store artifact %s (%s)" path msg

let prune ~dir ~max_bytes =
  if max_bytes < 0 then invalid_arg "Store.prune: negative max_bytes";
  let entries =
    match Sys.readdir dir with
    | exception Sys_error _ -> [||]
    | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if Filename.check_suffix name ".nps" then
               let path = Filename.concat dir name in
               match Unix.stat path with
               | exception Unix.Unix_error _ -> None
               | st when st.Unix.st_kind = Unix.S_REG ->
                 Some (path, st.Unix.st_mtime, st.Unix.st_size)
               | _ -> None
             else None)
      |> Array.of_list
  in
  let total = Array.fold_left (fun acc (_, _, sz) -> acc + sz) 0 entries in
  if total <= max_bytes then 0
  else begin
    (* Oldest first; ties broken by path so concurrent pruners converge
       on the same eviction order. *)
    Array.sort
      (fun (pa, ma, _) (pb, mb, _) ->
        match compare (ma : float) mb with 0 -> compare pa pb | c -> c)
      entries;
    let remaining = ref total and evicted = ref 0 in
    Array.iter
      (fun (path, _, sz) ->
        if !remaining > max_bytes then begin
          (* unlink is atomic: a reader that already opened the file
             keeps its descriptor; one that has not sees a plain miss.
             A concurrently-deleted file just doesn't count. *)
          match Sys.remove path with
          | () ->
            remaining := !remaining - sz;
            incr evicted;
            Metrics.incr m_evicted
          | exception Sys_error _ -> ()
        end)
      entries;
    if !evicted > 0 then
      Log.info "pruned %d provider-store artifact(s) from %s (%d -> %d bytes)"
        !evicted dir total !remaining;
    !evicted
  end
