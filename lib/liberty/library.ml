module Technology = Nsigma_process.Technology
module Moments = Nsigma_stats.Moments
module Sampler = Nsigma_stats.Sampler
module Cell_sim = Nsigma_spice.Cell_sim
module Metrics = Nsigma_obs.Metrics
module Log = Nsigma_obs.Log

(* Cache outcome counters, registered up front so every run report
   carries the keys (zero-valued when no cache was consulted). *)
let m_cache_hit = Metrics.counter "lvf.cache.hit"
let m_cache_miss = Metrics.counter "lvf.cache.miss"
let m_cache_stale = Metrics.counter "lvf.cache.stale"

type t = {
  tech : Technology.t;
  tables : (string, Characterize.table) Hashtbl.t;
  mutable order : string list;  (* reverse insertion order *)
}

let key cell edge =
  Printf.sprintf "%s/%s" (Cell.name cell)
    (match edge with `Rise -> "rise" | `Fall -> "fall")

let create tech = { tech; tables = Hashtbl.create 64; order = [] }

let tech t = t.tech

let add t (table : Characterize.table) =
  let k = key table.Characterize.cell table.Characterize.edge in
  if not (Hashtbl.mem t.tables k) then t.order <- k :: t.order;
  Hashtbl.replace t.tables k table

let find_opt t cell ~edge = Hashtbl.find_opt t.tables (key cell edge)

let find t cell ~edge =
  match find_opt t cell ~edge with Some table -> table | None -> raise Not_found

let cells t =
  List.rev_map
    (fun k ->
      let table = Hashtbl.find t.tables k in
      (table.Characterize.cell, table.Characterize.edge))
    t.order

let characterize_all ?n_mc ?seed ?slews ?loads ?(edges = [ `Rise; `Fall ])
    ?exec ?kernel ?sampling ?rtol tech cell_list =
  let lib = create tech in
  List.iteri
    (fun i cell ->
      List.iter
        (fun edge ->
          let seed =
            (* Distinct deterministic seed per (cell, edge). *)
            match seed with Some s -> s + (i * 17) | None -> 1 + (i * 17)
          in
          add lib
            (Characterize.characterize ?n_mc ~seed ?slews ?loads ?exec ?kernel
               ?sampling ?rtol tech cell ~edge))
        edges)
    cell_list;
  lib

(* ----- serialisation ----- *)

let edge_name = function `Rise -> "RISE" | `Fall -> "FALL"

(* The adaptive tolerance as a header token: "off" for fixed-count runs,
   a %.9g float otherwise.  %.9g round-trips every tolerance a user
   plausibly passes, and the token is compared textually so save → load
   → save is stable. *)
let rtol_token = function None -> "off" | Some r -> Printf.sprintf "%.9g" r

let rtol_of_token lineno path = function
  | "off" -> None
  | s -> (
    match float_of_string_opt s with
    | Some r when r > 0.0 -> Some r
    | _ ->
      failwith (Printf.sprintf "%s:%d: bad rtol token %S" path lineno s))

(* What the cached tables depend on besides the corner voltage: every
   technology parameter, the characterisation-grid constants, the
   simulation kernel and the sampling configuration that produced the
   populations.  Stored in the header so [load] can detect a stale
   cache — fast- and RK4-characterised tables never alias, and neither
   do populations drawn from different deviate streams or stopped at
   different tolerances. *)
let cache_fingerprint tech ~kernel ~sampling ~rtol =
  Digest.to_hex
    (Digest.string
       (Technology.fingerprint tech ^ "|" ^ Characterize.grid_signature
      ^ "|kernel=" ^ Cell_sim.kernel_name kernel
      ^ "|sampling=" ^ Sampler.backend_name sampling
      ^ "|rtol=" ^ rtol_token rtol))

(* The kernel all of a library's tables were characterised with; mixing
   kernels in one file would make the header fingerprint a lie. *)
let library_kernel t =
  match cells t with
  | [] -> Cell_sim.default_kernel ()
  | (c0, e0) :: rest ->
    let k = (find t c0 ~edge:e0).Characterize.kernel in
    List.iter
      (fun (c, e) ->
        if (find t c ~edge:e).Characterize.kernel <> k then
          failwith
            "Library.save: tables characterised with different kernels \
             cannot share one cache file")
      rest;
    k

(* Same uniformity rule for the sampling configuration. *)
let library_sampling t =
  match cells t with
  | [] -> (Sampler.default_backend (), None)
  | (c0, e0) :: rest ->
    let t0 = find t c0 ~edge:e0 in
    let s = (t0.Characterize.sampling, t0.Characterize.rtol) in
    List.iter
      (fun (c, e) ->
        let ti = find t c ~edge:e in
        if (ti.Characterize.sampling, ti.Characterize.rtol) <> s then
          failwith
            "Library.save: tables characterised with different sampling \
             configurations cannot share one cache file")
      rest;
    s

(* The fingerprint an in-memory library would carry if saved: the key
   under which derived artifacts (provider regressions in {!Store}) are
   content-addressed. *)
let fingerprint t =
  let kernel = library_kernel t in
  let sampling, rtol = library_sampling t in
  cache_fingerprint t.tech ~kernel ~sampling ~rtol

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let kernel = library_kernel t in
      let sampling, rtol = library_sampling t in
      Printf.fprintf oc "NSIGMA_LIB 4 %s %.6f %s %s %s %s\n"
        t.tech.Technology.name t.tech.Technology.vdd_nominal
        (Cell_sim.kernel_name kernel)
        (Sampler.backend_name sampling)
        (rtol_token rtol)
        (cache_fingerprint t.tech ~kernel ~sampling ~rtol);
      List.iter
        (fun (cell, edge) ->
          let table = find t cell ~edge in
          Printf.fprintf oc "TABLE %s %s %d\n" (Cell.name cell) (edge_name edge)
            table.Characterize.n_mc;
          let axis name a =
            Printf.fprintf oc "%s" name;
            Array.iter (fun v -> Printf.fprintf oc " %.9g" v) a;
            Printf.fprintf oc "\n"
          in
          axis "SLEWS" table.Characterize.slews;
          axis "LOADS" table.Characterize.loads;
          Array.iteri
            (fun i row ->
              Array.iteri
                (fun j (p : Characterize.point) ->
                  Printf.fprintf oc "POINT %d %d %.9g %.9g %.9g %.9g" i j
                    p.moments.Moments.mean p.moments.Moments.std
                    p.moments.Moments.skewness p.moments.Moments.kurtosis;
                  Array.iter (fun q -> Printf.fprintf oc " %.9g" q) p.quantiles;
                  Printf.fprintf oc " %.9g\n" p.mean_out_slew)
                row)
            table.Characterize.points;
          Printf.fprintf oc "END\n")
        (cells t))

type partial = {
  p_cell : Cell.t;
  p_edge : [ `Rise | `Fall ];
  p_n_mc : int;
  mutable p_slews : float array;
  mutable p_loads : float array;
  mutable p_points : (int * int * Characterize.point) list;
}

let load ?expect_kernel ?expect_sampling tech path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lib = create tech in
      let current = ref None in
      let file_kernel = ref None in
      let file_sampling = ref None in
      let fail lineno msg = failwith (Printf.sprintf "%s:%d: %s" path lineno msg) in
      let finish lineno =
        match !current with
        | None -> ()
        | Some p ->
          let ns = Array.length p.p_slews and nl = Array.length p.p_loads in
          if ns = 0 || nl = 0 then fail lineno "missing SLEWS/LOADS";
          let points =
            Array.init ns (fun _ -> Array.make nl None)
          in
          List.iter (fun (i, j, pt) -> points.(i).(j) <- Some pt) p.p_points;
          let points =
            Array.mapi
              (fun i row ->
                Array.mapi
                  (fun j -> function
                    | Some pt -> pt
                    | None -> fail lineno (Printf.sprintf "missing POINT %d %d" i j))
                  row)
              points
          in
          let kernel =
            match !file_kernel with
            | Some k -> k
            | None -> fail lineno "TABLE before the NSIGMA_LIB header"
          in
          let sampling, rtol =
            match !file_sampling with
            | Some s -> s
            | None -> fail lineno "TABLE before the NSIGMA_LIB header"
          in
          add lib
            {
              Characterize.cell = p.p_cell;
              edge = p.p_edge;
              vdd = tech.Technology.vdd_nominal;
              n_mc = p.p_n_mc;
              kernel;
              sampling;
              rtol;
              slews = p.p_slews;
              loads = p.p_loads;
              points;
            };
          current := None
      in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let words =
             String.split_on_char ' ' (String.trim line)
             |> List.filter (fun w -> w <> "")
           in
           match words with
           | [] -> ()
           | "NSIGMA_LIB" :: ("1" | "2") :: _ ->
             fail !lineno
               "legacy library format (v1/v2) predates the two-tier \
                simulation kernel; re-characterise to refresh the cache"
           | "NSIGMA_LIB" :: "3" :: _ ->
             fail !lineno
               "legacy library format (v3) predates the sampling layer; \
                re-characterise to refresh the cache"
           | [ "NSIGMA_LIB"; "4"; _name; vdd; kernel; sampling; rtol; fp ] ->
             let vdd = float_of_string vdd in
             if Float.abs (vdd -. tech.Technology.vdd_nominal) > 1e-3 then
               fail !lineno
                 (Printf.sprintf "library characterised at %.3f V, technology is %.3f V"
                    vdd tech.Technology.vdd_nominal);
             let kernel =
               try Cell_sim.kernel_of_string kernel
               with Failure msg -> fail !lineno msg
             in
             let sampling =
               try Sampler.backend_of_string sampling
               with Failure msg -> fail !lineno msg
             in
             let rtol = rtol_of_token !lineno path rtol in
             if fp <> cache_fingerprint tech ~kernel ~sampling ~rtol then
               fail !lineno
                 "library characterised under different technology parameters, \
                  grid, kernel or sampling configuration (stale cache); \
                  re-characterise to refresh it";
             (match expect_kernel with
             | Some k when k <> kernel ->
               fail !lineno
                 (Printf.sprintf
                    "library characterised with the %s kernel, the %s kernel \
                     was requested (stale cache); re-characterise to refresh it"
                    (Cell_sim.kernel_name kernel) (Cell_sim.kernel_name k))
             | _ -> ());
             (match expect_sampling with
             | Some (b, r)
               when b <> sampling || rtol_token r <> rtol_token rtol ->
               fail !lineno
                 (Printf.sprintf
                    "library characterised with sampling %s/rtol %s, \
                     %s/rtol %s was requested (stale cache); re-characterise \
                     to refresh it"
                    (Sampler.backend_name sampling) (rtol_token rtol)
                    (Sampler.backend_name b) (rtol_token r))
             | _ -> ());
             file_kernel := Some kernel;
             file_sampling := Some (sampling, rtol)
           | [ "TABLE"; cell_name; edge; n_mc ] ->
             let p_edge =
               match edge with
               | "RISE" -> `Rise
               | "FALL" -> `Fall
               | _ -> fail !lineno "bad edge"
             in
             current :=
               Some
                 {
                   p_cell = Cell.of_name cell_name;
                   p_edge;
                   p_n_mc = int_of_string n_mc;
                   p_slews = [||];
                   p_loads = [||];
                   p_points = [];
                 }
           | "SLEWS" :: rest ->
             (match !current with
             | Some p -> p.p_slews <- Array.of_list (List.map float_of_string rest)
             | None -> fail !lineno "SLEWS outside TABLE")
           | "LOADS" :: rest ->
             (match !current with
             | Some p -> p.p_loads <- Array.of_list (List.map float_of_string rest)
             | None -> fail !lineno "LOADS outside TABLE")
           | "POINT" :: i :: j :: mean :: std :: skew :: kurt :: rest ->
             (match !current with
             | None -> fail !lineno "POINT outside TABLE"
             | Some p ->
               let i = int_of_string i and j = int_of_string j in
               let values = List.map float_of_string rest in
               let nq = List.length Nsigma_stats.Quantile.sigma_levels in
               if List.length values <> nq + 1 then fail !lineno "bad POINT arity";
               let quantiles = Array.of_list (List.filteri (fun k _ -> k < nq) values) in
               let mean_out_slew = List.nth values nq in
               let point =
                 {
                   Characterize.slew = p.p_slews.(i);
                   load = p.p_loads.(j);
                   moments =
                     {
                       Moments.n = p.p_n_mc;
                       mean = float_of_string mean;
                       std = float_of_string std;
                       skewness = float_of_string skew;
                       kurtosis = float_of_string kurt;
                     };
                   quantiles;
                   mean_out_slew;
                 }
               in
               p.p_points <- (i, j, point) :: p.p_points)
           | [ "END" ] -> finish !lineno
           | w :: _ -> fail !lineno (Printf.sprintf "unrecognised keyword %S" w)
         done
       with End_of_file -> ());
      if !current <> None then failwith (path ^ ": missing END");
      (* Any successfully parsed (and fingerprint-validated) file counts
         as a cache hit, whether reached through [load_or_characterize]
         or an explicit CLI load. *)
      Metrics.incr m_cache_hit;
      lib)

let load_or_characterize ?n_mc ?seed ?slews ?loads ?edges ?exec ?kernel
    ?sampling ?rtol ~path tech cell_list =
  let kernel =
    match kernel with Some k -> k | None -> Cell_sim.default_kernel ()
  in
  let sampling =
    match sampling with Some b -> b | None -> Sampler.default_backend ()
  in
  let covers lib =
    let edges = Option.value edges ~default:[ `Rise; `Fall ] in
    List.for_all
      (fun cell -> List.for_all (fun edge -> find_opt lib cell ~edge <> None) edges)
      cell_list
  in
  let from_disk =
    if Sys.file_exists path then
      try Some (load ~expect_kernel:kernel ~expect_sampling:(sampling, rtol) tech path)
      with Failure msg ->
        (* An unreadable or fingerprint-mismatched file is a stale cache:
           distinct from a plain miss in run reports so sweeps that churn
           the cache are visible. *)
        Metrics.incr m_cache_stale;
        Log.info "stale .lvf cache %s (%s); re-characterising" path msg;
        None
    else begin
      Metrics.incr m_cache_miss;
      None
    end
  in
  match from_disk with
  | Some lib when covers lib ->
    (* [load] already counted the hit. *)
    Log.info "loaded .lvf cache %s" path;
    lib
  | other ->
    (match other with
    | Some _ ->
      (* Parsed fine but lacks a requested cell/edge. *)
      Metrics.incr m_cache_miss;
      Log.info ".lvf cache %s does not cover the requested cells" path
    | None -> ());
    let lib =
      characterize_all ?n_mc ?seed ?slews ?loads ?edges ?exec ~kernel ~sampling
        ?rtol tech cell_list
    in
    save lib path;
    lib
