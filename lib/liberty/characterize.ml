module Technology = Nsigma_process.Technology
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Rng = Nsigma_stats.Rng
module Interpolate = Nsigma_stats.Interpolate
module Sampler = Nsigma_stats.Sampler
module Cell_sim = Nsigma_spice.Cell_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Executor = Nsigma_exec.Executor
module Metrics = Nsigma_obs.Metrics
module Progress = Nsigma_obs.Progress
module Trace = Nsigma_obs.Trace

let m_points = Metrics.counter "characterize.points"
let h_point_seconds = Metrics.histogram "characterize.point.seconds"

(* One trace span per LVF grid point, on the worker's own track, with a
   GC probe so allocation spikes are attributable to the exact
   (slew, load) corner that caused them. *)
let st_point =
  Trace.span_type ~cat:"characterize" ~gc:true ~args:[ "slew"; "load" ]
    "characterize.point"

type point = {
  slew : float;
  load : float;
  moments : Moments.summary;
  quantiles : float array;
  mean_out_slew : float;
}

type table = {
  cell : Cell.t;
  edge : [ `Rise | `Fall ];
  vdd : float;
  n_mc : int;
  kernel : Cell_sim.kernel;
  sampling : Sampler.backend;
  rtol : float option;
  slews : float array;
  loads : float array;
  points : point array array;
}

let reference_slew = 10e-12
let reference_load = 0.4e-15

let default_slews = [| 10e-12; 25e-12; 50e-12; 100e-12; 200e-12; 300e-12 |]
let default_loads = [| 0.1e-15; 0.4e-15; 1.0e-15; 2.0e-15; 4.0e-15; 6.0e-15 |]

(* Relative load axis: fractions of the cell's own FO4 load, so strong
   cells are characterised over the loads they actually see.  The 1.0
   entry keeps the exact FO4 point on the grid (Table II's constraint);
   the reference load C_ref is inserted if it falls inside the span. *)
let fo4_fractions = [| 0.05; 0.25; 0.5; 1.0; 2.0; 3.5 |]

let loads_for tech cell =
  let fo4 = Cell.fo4_load tech cell in
  let base = Array.map (fun f -> f *. fo4) fo4_fractions in
  if reference_load > base.(0) && reference_load < base.(Array.length base - 1)
     && not (Array.exists (fun l -> Float.abs (l -. reference_load) < 1e-18) base)
  then begin
    let all = Array.append base [| reference_load |] in
    Array.sort Float.compare all;
    all
  end
  else base

let sigma_probs =
  List.map (fun n -> Quantile.probability_of_sigma (float_of_int n)) Quantile.sigma_levels
  |> Array.of_list

let characterize ?(n_mc = 2000) ?(seed = 1) ?(slews = default_slews) ?loads
    ?(exec = Executor.default ()) ?kernel ?sampling ?rtol tech cell ~edge =
  let loads = match loads with Some l -> l | None -> loads_for tech cell in
  let kernel =
    match kernel with Some k -> k | None -> Cell_sim.default_kernel ()
  in
  let sampling =
    match sampling with Some b -> b | None -> Sampler.default_backend ()
  in
  let g = Rng.create ~seed in
  let measure_point ~index slew load =
    (* Each grid point derives its own stream from its grid index, so
       neither adding grid points nor the scheduling order of the
       executor perturbs other points' samples. *)
    let gp = Rng.derive g ~index in
    (* Sampling goes through the plan layer: the arc skeleton is compiled
       once per (cell, edge, operating point) and refreshed in place per
       sample — bit-identical to rebuilding the arc every sample (the
       unplanned [Monte_carlo.arc_results] path), as test_plan asserts.
       Grid points are the parallel unit; the inner sampling loop runs
       sequentially to keep one level of domain spawning.  Deviates come
       from the requested [sampling] backend; with the Mc default and no
       [rtol] this is exactly the legacy planned loop. *)
    let sampled =
      Monte_carlo.arc_delays_sampled ~exec:Executor.sequential ~kernel
        ~sampling ?rtol tech gp ~n:n_mc
        ~plan:(fun () -> Cell.plan tech cell ~output_edge:edge)
        ~input_slew:slew ~load_cap:load
    in
    let delays_all = sampled.Monte_carlo.s_delays in
    let slews_all = sampled.Monte_carlo.s_out_slews in
    let delays = Monte_carlo.compact_nan delays_all in
    if Array.length delays < 8 then
      failwith
        (Printf.sprintf "Characterize: %s produced too few valid samples"
           (Cell.name cell));
    (* Single ascending pass: the addition order matches the list fold
       this replaces, keeping the mean bit-identical. *)
    let sum_slew = ref 0.0 and n_ok = ref 0 in
    Array.iteri
      (fun i d ->
        if not (Float.is_nan d) then begin
          sum_slew := !sum_slew +. slews_all.(i);
          incr n_ok
        end)
      delays_all;
    let mean_out_slew = !sum_slew /. float_of_int !n_ok in
    Array.sort Float.compare delays;
    let moments = Moments.summary_of_array delays in
    let quantiles = Array.map (Quantile.of_sorted delays) sigma_probs in
    { slew; load; moments; quantiles; mean_out_slew }
  in
  let n_loads = Array.length loads in
  let n_points = Array.length slews * n_loads in
  let label =
    Printf.sprintf "characterize %s/%s" (Cell.name cell)
      (match edge with `Rise -> "rise" | `Fall -> "fall")
  in
  let flat =
    Progress.with_bar ~label ~total:n_points (fun tick ->
        Metrics.span "characterize" (fun () ->
            Executor.map_array exec
              (fun idx ->
                (* Per-point timing is measured on the worker but recorded
                   into its own domain shard, so it adds no contention and
                   cannot perturb the samples. *)
                let slew = slews.(idx / n_loads)
                and load = loads.(idx mod n_loads) in
                let measure () =
                  let measuring = Metrics.enabled () in
                  let t0 = if measuring then Metrics.now () else 0.0 in
                  let p = measure_point ~index:idx slew load in
                  if measuring then begin
                    Metrics.incr m_points;
                    Metrics.observe h_point_seconds (Metrics.now () -. t0)
                  end;
                  p
                in
                let p = Trace.with_span st_point ~a:slew ~b:load measure in
                tick ();
                p)
              ~n:n_points))
  in
  let points =
    Array.init (Array.length slews) (fun si ->
        Array.sub flat (si * n_loads) n_loads)
  in
  {
    cell;
    edge;
    vdd = tech.Technology.vdd_nominal;
    n_mc;
    kernel;
    sampling;
    rtol;
    slews;
    loads;
    points;
  }

let grid_signature =
  let axis name a =
    name ^ ":"
    ^ String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.17g") a))
  in
  String.concat ";"
    [
      axis "slews" default_slews;
      axis "loads" default_loads;
      axis "fo4_fractions" fo4_fractions;
      Printf.sprintf "ref:%.17g,%.17g" reference_slew reference_load;
      Printf.sprintf "sigma_levels:%s"
        (String.concat "," (List.map string_of_int Quantile.sigma_levels));
    ]

let nearest axis v =
  let best = ref 0 in
  Array.iteri
    (fun i x -> if Float.abs (x -. v) < Float.abs (axis.(!best) -. v) then best := i)
    axis;
  !best

let point_at table ~slew ~load =
  table.points.(nearest table.slews slew).(nearest table.loads load)

let grid_of table f =
  Interpolate.Grid2d.create ~xs:table.slews ~ys:table.loads
    ~values:(Array.map (Array.map f) table.points)

let moments_at table ~slew ~load : Moments.summary =
  let eval f = Interpolate.Grid2d.eval (grid_of table f) slew load in
  {
    n = table.n_mc;
    mean = eval (fun p -> p.moments.Moments.mean);
    std = eval (fun p -> p.moments.Moments.std);
    skewness = eval (fun p -> p.moments.Moments.skewness);
    kurtosis = eval (fun p -> p.moments.Moments.kurtosis);
  }

let out_slew_at table ~slew ~load =
  Interpolate.Grid2d.eval (grid_of table (fun p -> p.mean_out_slew)) slew load

let quantile_at table ~slew ~load ~sigma =
  let idx =
    match List.find_index (fun n -> n = sigma) Quantile.sigma_levels with
    | Some i -> i
    | None -> invalid_arg "Characterize.quantile_at: sigma outside -3..3"
  in
  Interpolate.Grid2d.eval (grid_of table (fun p -> p.quantiles.(idx))) slew load

let reference_point table =
  let close a b = Float.abs (a -. b) < 1e-18 in
  let si = nearest table.slews reference_slew in
  let li = nearest table.loads reference_load in
  if not (close table.slews.(si) reference_slew && close table.loads.(li) reference_load)
  then
    invalid_arg
      "Characterize.reference_point: grid does not contain the reference condition";
  table.points.(si).(li)
