(** A characterised cell library: tables for every (cell, edge) pair,
    plus text serialisation so expensive characterisation runs can be
    cached on disk (the moral equivalent of a .lib/LVF file). *)

type t

val create : Nsigma_process.Technology.t -> t
(** An empty library bound to a technology/corner. *)

val tech : t -> Nsigma_process.Technology.t

val add : t -> Characterize.table -> unit

val find : t -> Cell.t -> edge:[ `Rise | `Fall ] -> Characterize.table
(** @raise Not_found if the pair was never characterised. *)

val find_opt : t -> Cell.t -> edge:[ `Rise | `Fall ] -> Characterize.table option

val cells : t -> (Cell.t * [ `Rise | `Fall ]) list
(** All characterised pairs, in insertion order. *)

val characterize_all :
  ?n_mc:int ->
  ?seed:int ->
  ?slews:float array ->
  ?loads:float array ->
  ?edges:[ `Rise | `Fall ] list ->
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Cell.t list ->
  t
(** Build a library by characterising every cell (both edges by
    default).  [exec] schedules each cell's grid points; results are
    bit-identical across backends and pool sizes. *)

val cache_fingerprint : Nsigma_process.Technology.t -> string
(** Digest of the technology parameters and the characterisation-grid
    constants, written into the file header by {!save} and verified by
    {!load}. *)

val save : t -> string -> unit
(** Write the library to a text file (format version 2, carrying
    {!cache_fingerprint}). *)

val load : Nsigma_process.Technology.t -> string -> t
(** Read a library back.  The stored VDD must match the technology's
    (within 1 mV) and the stored fingerprint must equal
    [cache_fingerprint tech] — characterisation data is specific to the
    corner, the device/parasitic parameters and the grid, so a stale
    cache fails loudly instead of polluting results.
    @raise Failure on parse errors, corner mismatch, or a stale/legacy
    fingerprint. *)

val load_or_characterize :
  ?n_mc:int ->
  ?seed:int ->
  ?slews:float array ->
  ?loads:float array ->
  ?edges:[ `Rise | `Fall ] list ->
  ?exec:Nsigma_exec.Executor.t ->
  path:string ->
  Nsigma_process.Technology.t ->
  Cell.t list ->
  t
(** Cache wrapper: load [path] if it exists, carries the current
    fingerprint and covers the requested cells; otherwise (including any
    stale-cache failure) characterise and save. *)
