(** A characterised cell library: tables for every (cell, edge) pair,
    plus text serialisation so expensive characterisation runs can be
    cached on disk (the moral equivalent of a .lib/LVF file). *)

type t

val create : Nsigma_process.Technology.t -> t
(** An empty library bound to a technology/corner. *)

val tech : t -> Nsigma_process.Technology.t

val add : t -> Characterize.table -> unit

val find : t -> Cell.t -> edge:[ `Rise | `Fall ] -> Characterize.table
(** @raise Not_found if the pair was never characterised. *)

val find_opt : t -> Cell.t -> edge:[ `Rise | `Fall ] -> Characterize.table option

val cells : t -> (Cell.t * [ `Rise | `Fall ]) list
(** All characterised pairs, in insertion order. *)

val characterize_all :
  ?n_mc:int ->
  ?seed:int ->
  ?slews:float array ->
  ?loads:float array ->
  ?edges:[ `Rise | `Fall ] list ->
  ?exec:Nsigma_exec.Executor.t ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  ?sampling:Nsigma_stats.Sampler.backend ->
  ?rtol:float ->
  Nsigma_process.Technology.t ->
  Cell.t list ->
  t
(** Build a library by characterising every cell (both edges by
    default).  [exec] schedules each cell's grid points; results are
    bit-identical across backends and pool sizes.  [kernel] selects the
    simulation engine for every table (default
    {!Nsigma_spice.Cell_sim.default_kernel}[ ()]); [sampling]/[rtol]
    select the deviate stream and adaptive stopping tolerance
    ({!Characterize.characterize}). *)

val cache_fingerprint :
  Nsigma_process.Technology.t ->
  kernel:Nsigma_spice.Cell_sim.kernel ->
  sampling:Nsigma_stats.Sampler.backend ->
  rtol:float option ->
  string
(** Digest of the technology parameters, the characterisation-grid
    constants, the simulation kernel and the sampling configuration,
    written into the file header by {!save} and verified by {!load}.
    Including the kernel guarantees fast- and RK4-characterised caches
    never alias; including the sampling backend and tolerance guarantees
    the same for populations drawn from different deviate streams or
    stopped adaptively. *)

val fingerprint : t -> string
(** The {!cache_fingerprint} this library would carry if saved — its
    kernel, sampling configuration and technology digested into the key
    under which derived artifacts (e.g. the statistical provider's
    moment regressions in {!Store}) are content-addressed.
    @raise Failure under the same mixed-configuration rules as
    {!save}. *)

val save : t -> string -> unit
(** Write the library to a text file (format version 4, carrying the
    kernel name, the sampling backend, the rtol token and
    {!cache_fingerprint}).
    @raise Failure if the library mixes tables characterised with
    different kernels or different sampling configurations. *)

val load :
  ?expect_kernel:Nsigma_spice.Cell_sim.kernel ->
  ?expect_sampling:Nsigma_stats.Sampler.backend * float option ->
  Nsigma_process.Technology.t ->
  string ->
  t
(** Read a library back.  The stored VDD must match the technology's
    (within 1 mV) and the stored fingerprint must equal
    [cache_fingerprint tech ~kernel ~sampling ~rtol] for the stored
    configuration — characterisation data is specific to the corner, the
    device/parasitic parameters, the grid, the simulation engine and the
    deviate stream, so a stale cache fails loudly instead of polluting
    results.  [expect_kernel] additionally requires the stored kernel to
    be that one, and [expect_sampling] the stored (backend, rtol) pair
    (the [load_or_characterize] staleness rules); without them any
    configuration is accepted and recorded in the loaded tables.
    @raise Failure on parse errors, corner mismatch, a stale/legacy
    (v1/v2/v3) fingerprint, or a kernel/sampling mismatch. *)

val load_or_characterize :
  ?n_mc:int ->
  ?seed:int ->
  ?slews:float array ->
  ?loads:float array ->
  ?edges:[ `Rise | `Fall ] list ->
  ?exec:Nsigma_exec.Executor.t ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  ?sampling:Nsigma_stats.Sampler.backend ->
  ?rtol:float ->
  path:string ->
  Nsigma_process.Technology.t ->
  Cell.t list ->
  t
(** Cache wrapper: load [path] if it exists, carries the current
    fingerprint, was characterised with [kernel] (default
    {!Nsigma_spice.Cell_sim.default_kernel}[ ()]) under the requested
    sampling configuration ([sampling] default
    {!Nsigma_stats.Sampler.default_backend}[ ()], [rtol] default off)
    and covers the requested cells; otherwise (including any
    stale-cache failure) characterise with that configuration and
    save. *)
