module Rng = Nsigma_stats.Rng

type global = { dvth_n : float; dvth_p : float; dbeta : float }

(* Where the local (within-die) deviates come from: either a dedicated
   RNG stream (the legacy Monte-Carlo draw) or a fixed standard-normal
   vector filled by a [Sampler] stream, consumed left to right through a
   cursor.  Both yield the same values through the [local_*] accessors
   when the vector replays the stream's draws, which is how the Mc
   sampling backend stays bit-identical. *)
type source =
  | Stream of Rng.t
  | Fixed of { z : float array; mutable pos : int }

type t = { global : global; locals : source; local_scale : float }

let global_deviate_dim = 3

let nominal =
  {
    global = { dvth_n = 0.0; dvth_p = 0.0; dbeta = 0.0 };
    locals = Stream (Rng.create ~seed:0);
    local_scale = 0.0;
  }

let draw (tech : Technology.t) g =
  (* The three global draws historically sat inside a record expression,
     whose field evaluation order is unspecified (right-to-left with the
     current compiler).  The bitwise-replay contract ([of_deviates] and
     the sampling layer's Mc backend) depends on the consumption order,
     so pin it explicitly: dbeta first, then dvth_p, then dvth_n. *)
  let dbeta = Rng.gaussian_mu_sigma g ~mu:0.0 ~sigma:tech.sigma_beta_global in
  let dvth_p = Rng.gaussian_mu_sigma g ~mu:0.0 ~sigma:tech.sigma_vth_global in
  let dvth_n = Rng.gaussian_mu_sigma g ~mu:0.0 ~sigma:tech.sigma_vth_global in
  {
    global = { dvth_n; dvth_p; dbeta };
    locals = Stream (Rng.split g);
    local_scale = 1.0;
  }

let draw_many tech g n = Array.init n (fun _ -> draw tech g)

(* Globals mirror [draw]'s arithmetic exactly ([gaussian_mu_sigma] is
   mu +. sigma *. z with mu = 0), so a vector replaying the RNG draws
   produces bitwise-equal shifts. *)
let of_deviates (tech : Technology.t) z =
  if Array.length z < global_deviate_dim then
    invalid_arg "Variation.of_deviates: deviate vector shorter than 3";
  let global =
    {
      dvth_n = 0.0 +. (tech.sigma_vth_global *. z.(0));
      dvth_p = 0.0 +. (tech.sigma_vth_global *. z.(1));
      dbeta = 0.0 +. (tech.sigma_beta_global *. z.(2));
    }
  in
  { global; locals = Fixed { z; pos = global_deviate_dim }; local_scale = 1.0 }

let next_local t =
  match t.locals with
  | Stream g -> Rng.gaussian g
  | Fixed f ->
    if f.pos >= Array.length f.z then
      invalid_arg
        "Variation: local deviate vector exhausted (plan dimension too small)";
    let v = f.z.(f.pos) in
    f.pos <- f.pos + 1;
    v

let local_dvth t tech ~width =
  t.local_scale *. next_local t *. Technology.sigma_vth_local tech ~width

let local_dbeta t tech ~width =
  t.local_scale *. next_local t *. Technology.sigma_beta_local tech ~width

let local_relative t ~sigma = t.local_scale *. next_local t *. sigma
