(** Monte-Carlo variation sampling.

    A {!t} fixes one fabrication outcome: the die-to-die (global)
    parameter shifts plus a source of within-die (local, Pelgrom-scaled)
    per-device and per-segment deviates.  Two simulations given the same
    sample see the same global shift but independent local mismatch,
    exactly like global+local MC in a commercial flow.

    The local source is either a dedicated random stream (the legacy
    {!draw}) or a fixed standard-normal vector ({!of_deviates}) filled
    by an {!Nsigma_stats.Sampler} stream — the hook through which the
    variance-reduced sampling backends feed the simulators.  Simulation
    plans consume a fixed number of deviates in a fixed order (see
    [Arc.skeleton_local_dim]), so the vector's dimension is known up
    front. *)

type global = {
  dvth_n : float;  (** shared NMOS threshold shift (V) *)
  dvth_p : float;  (** shared PMOS threshold shift (V) *)
  dbeta : float;  (** shared relative current-factor shift *)
}

type source =
  | Stream of Nsigma_stats.Rng.t
      (** draw locals from a live RNG stream (legacy Monte-Carlo) *)
  | Fixed of { z : float array; mutable pos : int }
      (** consume a precomputed standard-normal vector left to right;
          the vector is aliased, not copied *)

type t = {
  global : global;
  locals : source;
  local_scale : float;  (** 1 for MC samples; 0 for the nominal device *)
}

val global_deviate_dim : int
(** Number of global deviates a sample consumes — 3
    (dvth_n, dvth_p, dbeta).  A plan's total deviate dimension is this
    plus its local dimension. *)

val nominal : t
(** Zero global shift and a fixed local stream — useful for deterministic
    "typical" simulations. *)

val draw : Technology.t -> Nsigma_stats.Rng.t -> t
(** Sample the global shifts from the technology's die-to-die sigmas and
    split off a local stream. *)

val draw_many : Technology.t -> Nsigma_stats.Rng.t -> int -> t array
(** [draw_many tech g n] is [n] independent samples. *)

val of_deviates : Technology.t -> float array -> t
(** [of_deviates tech z] builds the sample encoded by the standard-normal
    vector [z]: [z.(0..2)] scale to the global shifts (same arithmetic as
    {!draw}, so replaying a stream's draws is bitwise-identical) and the
    rest are consumed in order by the [local_*] accessors.  [z] is
    aliased: refilling it invalidates the sample, so build a fresh [t]
    per fill (the sampling loops do).
    @raise Invalid_argument if [z] has fewer than {!global_deviate_dim}
    entries; the [local_*] accessors raise if the vector is exhausted —
    both are plan-dimension programming errors, not data conditions. *)

val local_dvth : t -> Technology.t -> width:float -> float
(** Draw one device's local threshold shift, σ = AVT/√(W·L). *)

val local_dbeta : t -> Technology.t -> width:float -> float
(** Draw one device's local relative β shift. *)

val local_relative : t -> sigma:float -> float
(** Draw a generic relative deviate (used for wire R/C variation). *)
