type t = {
  name : string;
  vdd_nominal : float;
  temp_kelvin : float;
  vth0_n : float;
  vth0_p : float;
  subthreshold_n : float;
  i_spec_n : float;
  i_spec_p : float;
  early_voltage : float;
  width_n : float;
  width_p : float;
  length : float;
  avt : float;
  abeta : float;
  sigma_vth_global : float;
  sigma_beta_global : float;
  cap_gate_per_width : float;
  cap_drain_per_width : float;
  wire_res_per_um : float;
  wire_cap_per_um : float;
  sigma_wire_res : float;
  sigma_wire_cap : float;
}

let default_28nm =
  {
    name = "open28";
    vdd_nominal = 0.9;
    temp_kelvin = 298.15;
    vth0_n = 0.37;
    vth0_p = 0.40;
    subthreshold_n = 1.32;
    (* Specific current per metre of width; sized so an INVx1 at 0.9 V
       drives a FO4 load in ~15 ps and at 0.6 V in ~60 ps. *)
    i_spec_n = 11.0;
    i_spec_p = 8.0;
    early_voltage = 4.5;
    width_n = 0.20e-6;
    width_p = 0.28e-6;
    length = 0.030e-6;
    (* Pelgrom coefficients typical of a 28 nm bulk process. *)
    avt = 0.9e-9 (* 0.9 mV·µm *);
    abeta = 1.2e-8 (* ~1.2 %·µm *);
    sigma_vth_global = 0.018;
    sigma_beta_global = 0.02;
    cap_gate_per_width = 1.0e-9 (* 1 fF/µm *);
    cap_drain_per_width = 0.55e-9;
    wire_res_per_um = 6.0;
    wire_cap_per_um = 0.18e-15;
    sigma_wire_res = 0.06;
    sigma_wire_cap = 0.04;
  }

let thermal_voltage t = 8.617333e-5 *. t.temp_kelvin

let with_vdd t vdd = { t with vdd_nominal = vdd }

let sigma_vth_local t ~width = t.avt /. sqrt (width *. t.length)

let sigma_beta_local t ~width = t.abeta /. sqrt (width *. t.length)

let fingerprint t =
  let b = Buffer.create 512 in
  Buffer.add_string b t.name;
  List.iter
    (fun v -> Buffer.add_string b (Printf.sprintf " %.17g" v))
    [
      t.vdd_nominal; t.temp_kelvin; t.vth0_n; t.vth0_p; t.subthreshold_n;
      t.i_spec_n; t.i_spec_p; t.early_voltage; t.width_n; t.width_p; t.length;
      t.avt; t.abeta; t.sigma_vth_global; t.sigma_beta_global;
      t.cap_gate_per_width; t.cap_drain_per_width; t.wire_res_per_um;
      t.wire_cap_per_um; t.sigma_wire_res; t.sigma_wire_cap;
    ];
  Digest.to_hex (Digest.string (Buffer.contents b))
