(** Synthetic 28 nm-class technology description.

    The paper characterises against the TSMC 28 nm PDK, which is
    proprietary; this module defines an open parameter set with the same
    structure — near-threshold-capable device parameters, Pelgrom mismatch
    coefficients, and per-µm interconnect parasitics — that drives the
    transistor-level simulator.  All values are in SI units (V, A, F, Ω,
    s, m) except where noted. *)

type t = {
  name : string;
  vdd_nominal : float;  (** nominal supply, 0.9 V *)
  temp_kelvin : float;  (** simulation temperature *)
  (* Device parameters. *)
  vth0_n : float;  (** NMOS nominal threshold (V) *)
  vth0_p : float;  (** PMOS nominal threshold magnitude (V) *)
  subthreshold_n : float;  (** subthreshold slope factor n (≈1.3) *)
  i_spec_n : float;  (** NMOS specific current at unit width (A) *)
  i_spec_p : float;  (** PMOS specific current at unit width (A) *)
  early_voltage : float;  (** channel-length-modulation Early voltage (V) *)
  width_n : float;  (** unit NMOS width (m), drive strength ×1 *)
  width_p : float;  (** unit PMOS width (m) *)
  length : float;  (** drawn channel length (m) *)
  (* Pelgrom mismatch coefficients. *)
  avt : float;  (** σ(ΔVth)·√(WL), V·m *)
  abeta : float;  (** σ(Δβ/β)·√(WL), m (relative) *)
  (* Global (die-to-die) variation. *)
  sigma_vth_global : float;  (** σ of the shared Vth shift (V) *)
  sigma_beta_global : float;  (** σ of the shared relative β shift *)
  (* Parasitics. *)
  cap_gate_per_width : float;  (** gate cap per device width (F/m) *)
  cap_drain_per_width : float;  (** drain junction cap per width (F/m) *)
  wire_res_per_um : float;  (** Ω/µm of minimum-width wire *)
  wire_cap_per_um : float;  (** F/µm of minimum-width wire *)
  sigma_wire_res : float;  (** relative σ of wire resistance (BEOL) *)
  sigma_wire_cap : float;  (** relative σ of wire capacitance (BEOL) *)
}

val default_28nm : t
(** The library's reference technology.  Numbers are chosen so that an
    INVx1 at 0.6 V exhibits the qualitative behaviour of the paper's
    Fig. 2: mean delay of tens of ps, σ/μ of 10–25%, positive skewness
    growing as VDD drops. *)

val thermal_voltage : t -> float
(** kT/q at the technology temperature. *)

val with_vdd : t -> float -> t
(** Convenience: same technology, different nominal supply (no other
    field changes; used for voltage sweeps). *)

val sigma_vth_local : t -> width:float -> float
(** Pelgrom: AVT / √(W·L) for one device of the given width. *)

val sigma_beta_local : t -> width:float -> float
(** Pelgrom: Aβ / √(W·L), relative. *)

val fingerprint : t -> string
(** Stable hex digest over every parameter of the technology.  Library
    caches embed it (mixed with the characterisation-grid signature) so
    a cache characterised under different device or parasitic parameters
    is detected as stale instead of silently reused. *)
