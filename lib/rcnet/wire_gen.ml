module Rng = Nsigma_stats.Rng
module Technology = Nsigma_process.Technology
module Variation = Nsigma_process.Variation

type spec = {
  min_length_um : float;
  max_length_um : float;
  segments : int;
  branch_prob : float;
}

let default_spec =
  { min_length_um = 5.0; max_length_um = 60.0; segments = 8; branch_prob = 0.25 }

let long_spec =
  { min_length_um = 20.0; max_length_um = 200.0; segments = 12; branch_prob = 0.15 }

let segment_rc (tech : Technology.t) len_um =
  (tech.wire_res_per_um *. len_um, tech.wire_cap_per_um *. len_um)

let random_tree tech spec g =
  if spec.segments <= 0 then invalid_arg "Wire_gen.random_tree: segments <= 0";
  (* Node 0 is the root; each new segment attaches either to the chain tip
     (continuing the route) or, with branch_prob, to a random earlier
     node (starting a stub). *)
  let nodes = ref [ { Rctree.name = "root"; parent = -1; res = 0.0; cap = 0.0 } ] in
  let count = ref 1 in
  let tip = ref 0 in
  let has_child = Array.make (spec.segments + 1) false in
  for i = 1 to spec.segments do
    let len = Rng.uniform_range g ~lo:spec.min_length_um ~hi:spec.max_length_um in
    let res, cap = segment_rc tech len in
    let parent =
      if i > 1 && Rng.uniform g < spec.branch_prob then Rng.int g !count else !tip
    in
    nodes :=
      { Rctree.name = Printf.sprintf "n%d" i; parent; res; cap } :: !nodes;
    has_child.(parent) <- true;
    tip := !count;
    incr count
  done;
  let node_array = Array.of_list (List.rev !nodes) in
  let taps =
    Array.of_list
      (List.filter_map
         (fun i -> if (not has_child.(i)) && i > 0 then Some i else None)
         (List.init !count Fun.id))
  in
  let taps = if Array.length taps = 0 then [| !count - 1 |] else taps in
  Rctree.create ~nodes:node_array ~taps

let point_to_point tech ~length_um ~segments =
  if segments <= 0 then invalid_arg "Wire_gen.point_to_point: segments <= 0";
  let len = length_um /. float_of_int segments in
  let res, cap = segment_rc tech len in
  Rctree.ladder ~segments ~res_per_seg:res ~cap_per_seg:cap

let vary (tech : Technology.t) sample tree =
  Rctree.map_segments tree (fun i (nd : Rctree.node) ->
      if i = 0 then (0.0, nd.cap)
      else begin
        (* Multiplicative deviates, clipped to stay physical. *)
        let dr = Variation.local_relative sample ~sigma:tech.sigma_wire_res in
        let dc = Variation.local_relative sample ~sigma:tech.sigma_wire_cap in
        let clip x = Float.max (-0.5) (Float.min 0.5 x) in
        (nd.res *. (1.0 +. clip dr), nd.cap *. (1.0 +. clip dc))
      end)

(* The in-place counterpart of [vary] for sampling-plan scratch: same
   deviates in the same draw order (node 1..n ascending, dr before dc),
   same clip expression, so the refilled tree is bit-identical to the one
   [vary] would have built.  [res]/[cap] are caller-owned scratch arrays
   sized to the tree. *)
let vary_into (tech : Technology.t) sample ~base ~into ~res ~cap =
  let nodes = base.Rctree.nodes in
  for i = 0 to Array.length nodes - 1 do
    let nd = nodes.(i) in
    if i = 0 then begin
      res.(0) <- 0.0;
      cap.(0) <- nd.Rctree.cap
    end
    else begin
      let dr = Variation.local_relative sample ~sigma:tech.sigma_wire_res in
      let dc = Variation.local_relative sample ~sigma:tech.sigma_wire_cap in
      let clip x = Float.max (-0.5) (Float.min 0.5 x) in
      res.(i) <- nd.Rctree.res *. (1.0 +. clip dr);
      cap.(i) <- nd.Rctree.cap *. (1.0 +. clip dc)
    end
  done;
  Rctree.refill into ~res ~cap

let for_fanout tech ~fanout ?(backbone_um = (4.0, 20.0)) ?(stub_um = (1.0, 4.0)) g =
  if fanout <= 0 then invalid_arg "Wire_gen.for_fanout: fanout <= 0";
  (* backbone_um bounds the *total* route length; each of the [fanout]
     backbone segments gets an equal share, so high-fanout nets do not
     grow unboundedly long. *)
  let lo_t, hi_t = backbone_um and lo_s, hi_s = stub_um in
  let lo_b = lo_t /. float_of_int fanout and hi_b = hi_t /. float_of_int fanout in
  let nodes = ref [ { Rctree.name = "root"; parent = -1; res = 0.0; cap = 0.0 } ] in
  let count = ref 1 in
  let add ~parent ~len ~name =
    let res, cap = segment_rc tech len in
    nodes := { Rctree.name; parent; res; cap } :: !nodes;
    let id = !count in
    incr count;
    id
  in
  (* Backbone chain. *)
  let backbone = Array.make fanout 0 in
  let prev = ref 0 in
  for k = 0 to fanout - 1 do
    let len = Rng.uniform_range g ~lo:lo_b ~hi:hi_b in
    let id = add ~parent:!prev ~len ~name:(Printf.sprintf "b%d" k) in
    backbone.(k) <- id;
    prev := id
  done;
  (* One stub per sink off its backbone node. *)
  let taps =
    Array.init fanout (fun k ->
        let len = Rng.uniform_range g ~lo:lo_s ~hi:hi_s in
        add ~parent:backbone.(k) ~len ~name:(Printf.sprintf "t%d" k))
  in
  Rctree.create ~nodes:(Array.of_list (List.rev !nodes)) ~taps
