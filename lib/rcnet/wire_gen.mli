(** Random interconnect generation — the stand-in for sampling R and C
    from foundry parasitic (SPEF) files, which are proprietary.

    Wires are built from per-µm technology parasitics: a net is a chain or
    branching tree of segments whose lengths are drawn from a length
    distribution, with optional per-segment manufacturing variation
    applied later through {!vary}. *)

type spec = {
  min_length_um : float;  (** shortest segment (µm) *)
  max_length_um : float;  (** longest segment (µm) *)
  segments : int;  (** number of RC segments in the net *)
  branch_prob : float;  (** probability a new segment starts a branch *)
}

val default_spec : spec
(** 5–60 µm segments, 8 segments, 25% branching — local-net scale. *)

val long_spec : spec
(** 20–200 µm, 12 segments — an upper-metal route. *)

val random_tree : Nsigma_process.Technology.t -> spec -> Nsigma_stats.Rng.t -> Rctree.t
(** Draw a net: a random tree shape per [spec], each segment given
    R = r/µm·len and C = c/µm·len from the technology.  All leaf nodes
    become taps. *)

val point_to_point :
  Nsigma_process.Technology.t -> length_um:float -> segments:int -> Rctree.t
(** Deterministic single-route net of the given total length split into
    equal segments, one tap at the end — the Fig. 7/8 experiment shape. *)

val vary :
  Nsigma_process.Technology.t ->
  Nsigma_process.Variation.t ->
  Rctree.t ->
  Rctree.t
(** Apply one manufacturing outcome: each segment's R and C scaled by
    independent lognormal-ish deviates with the technology's BEOL sigmas
    (correlated 100% within a segment, independent across segments). *)

val vary_into :
  Nsigma_process.Technology.t ->
  Nsigma_process.Variation.t ->
  base:Rctree.t ->
  into:Rctree.t ->
  res:float array ->
  cap:float array ->
  unit
(** Allocation-free {!vary} for precompiled sampling plans: draws the
    same deviates in the same order and {!Rctree.refill}s [into] (a
    {!Rctree.copy} of [base]) through the caller-owned scratch arrays
    [res]/[cap] (length [n_nodes base]).  Bit-identical to {!vary}. *)

val for_fanout :
  Nsigma_process.Technology.t ->
  fanout:int ->
  ?backbone_um:float * float ->
  ?stub_um:float * float ->
  Nsigma_stats.Rng.t ->
  Rctree.t
(** Net shape used when attaching parasitics to a netlist: a backbone of
    [fanout] segments with one stub (and tap) per sink, so the k-th sink
    of the net maps to tap index k.  [backbone_um] bounds the total
    backbone length (split equally across segments); [stub_um] is the
    per-stub length range (µm). *)
