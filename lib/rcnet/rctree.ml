type node = {
  name : string;
  parent : int;
  mutable res : float;
  mutable cap : float;
}

type t = {
  nodes : node array;
  taps : int array;
  children : int list array;
}

let build_children nodes =
  let n = Array.length nodes in
  let children = Array.make n [] in
  for i = n - 1 downto 1 do
    let p = nodes.(i).parent in
    children.(p) <- i :: children.(p)
  done;
  children

let create ~nodes ~taps =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Rctree.create: empty tree";
  if nodes.(0).parent <> -1 then invalid_arg "Rctree.create: node 0 must be the root";
  if nodes.(0).res <> 0.0 then invalid_arg "Rctree.create: root resistance must be 0";
  Array.iteri
    (fun i nd ->
      if i > 0 then begin
        if nd.parent < 0 || nd.parent >= i then
          invalid_arg "Rctree.create: parents must precede children";
        if nd.res <= 0.0 then
          invalid_arg "Rctree.create: segment resistance must be positive"
      end;
      if nd.cap < 0.0 then invalid_arg "Rctree.create: negative capacitance")
    nodes;
  Array.iter
    (fun tap ->
      if tap < 0 || tap >= n then invalid_arg "Rctree.create: tap out of range")
    taps;
  { nodes; taps; children = build_children nodes }

let n_nodes t = Array.length t.nodes

let total_cap t = Array.fold_left (fun acc nd -> acc +. nd.cap) 0.0 t.nodes

let total_res t = Array.fold_left (fun acc nd -> acc +. nd.res) 0.0 t.nodes

let add_cap t i c =
  if i < 0 || i >= n_nodes t then invalid_arg "Rctree.add_cap: index out of range";
  let nodes =
    Array.mapi (fun j nd -> if j = i then { nd with cap = nd.cap +. c } else nd) t.nodes
  in
  { t with nodes }

let scale t ~res_factor ~cap_factor =
  let nodes =
    Array.mapi
      (fun i nd ->
        {
          nd with
          res = (if i = 0 then 0.0 else nd.res *. res_factor);
          cap = nd.cap *. cap_factor;
        })
      t.nodes
  in
  { t with nodes }

let map_segments t f =
  let nodes =
    Array.mapi
      (fun i nd ->
        let res, cap = f i nd in
        if i = 0 then { nd with res = 0.0; cap }
        else { nd with res; cap })
      t.nodes
  in
  create ~nodes ~taps:t.taps

(* In-place refresh for sampling-plan scratch trees.  [copy] gives the
   caller a tree whose node records are private to it (name strings,
   taps and children are immutable and stay shared); [refill]/[bump_cap]
   then mutate only such owned copies — functional constructors like
   [add_cap] share node records, so mutating a tree one did not [copy]
   would corrupt its siblings. *)
let copy t = { t with nodes = Array.map (fun nd -> { nd with res = nd.res }) t.nodes }

let refill t ~res ~cap =
  let n = n_nodes t in
  if Array.length res <> n || Array.length cap <> n then
    invalid_arg "Rctree.refill: array length mismatch";
  if res.(0) <> 0.0 then invalid_arg "Rctree.refill: root resistance must be 0";
  for i = 0 to n - 1 do
    let nd = t.nodes.(i) in
    nd.res <- res.(i);
    nd.cap <- cap.(i)
  done

let bump_cap t i c =
  if i < 0 || i >= n_nodes t then invalid_arg "Rctree.bump_cap: index out of range";
  let nd = t.nodes.(i) in
  nd.cap <- nd.cap +. c

let path_to_root t i =
  if i < 0 || i >= n_nodes t then
    invalid_arg "Rctree.path_to_root: index out of range";
  let rec go acc j = if j = -1 then List.rev acc else go (j :: acc) t.nodes.(j).parent in
  go [] i

let downstream_cap t =
  let n = n_nodes t in
  let down = Array.init n (fun i -> t.nodes.(i).cap) in
  for i = n - 1 downto 1 do
    down.(t.nodes.(i).parent) <- down.(t.nodes.(i).parent) +. down.(i)
  done;
  down

let ladder ~segments ~res_per_seg ~cap_per_seg =
  if segments <= 0 then invalid_arg "Rctree.ladder: segments must be positive";
  let nodes =
    Array.init (segments + 1) (fun i ->
        if i = 0 then
          { name = "root"; parent = -1; res = 0.0; cap = cap_per_seg /. 2.0 }
        else begin
          let cap =
            if i = segments then cap_per_seg /. 2.0 else cap_per_seg
          in
          { name = Printf.sprintf "n%d" i; parent = i - 1; res = res_per_seg; cap }
        end)
  in
  create ~nodes ~taps:[| segments |]

let pp ppf t =
  Format.fprintf ppf "@[<v>rctree %d nodes, %d taps, R=%.1f C=%.3ffF@,"
    (n_nodes t) (Array.length t.taps) (total_res t) (total_cap t *. 1e15);
  Array.iteri
    (fun i nd ->
      Format.fprintf ppf "  %d %s parent=%d R=%.2f C=%.4ffF@," i nd.name nd.parent
        nd.res (nd.cap *. 1e15))
    t.nodes;
  Format.fprintf ppf "@]"
