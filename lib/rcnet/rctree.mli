(** RC-tree representation of a routed net.

    A tree is an array of nodes in parent-before-child order.  Node 0 is
    the root — the driver output pin; every other node connects to its
    parent through a resistance and carries a grounded capacitance.  Taps
    are the nodes where load-cell input pins attach (their input
    capacitance is added to the node capacitance by the caller). *)

type node = {
  name : string;
  parent : int;  (** index of the parent node; -1 for the root *)
  mutable res : float;  (** resistance to the parent (Ω); 0 for the root *)
  mutable cap : float;  (** grounded capacitance at this node (F) *)
}
(** [res]/[cap] are mutable so a sampling plan can {!refill} a scratch
    tree in place; the type stays [private], so outside this module the
    only writes are through {!refill} and {!bump_cap}. *)

type t = private {
  nodes : node array;
  taps : int array;  (** indices of load-pin nodes *)
  children : int list array;  (** derived adjacency, same length as nodes *)
}

val create : nodes:node array -> taps:int array -> t
(** Validate and build.  Requirements: node 0 is the unique root
    ([parent = -1], [res = 0]); every other node's parent precedes it;
    resistances positive and capacitances non-negative; every tap index
    valid. @raise Invalid_argument otherwise. *)

val n_nodes : t -> int

val total_cap : t -> float
(** Sum of all grounded capacitances (F). *)

val total_res : t -> float
(** Sum of all segment resistances (Ω). *)

val add_cap : t -> int -> float -> t
(** [add_cap t i c] returns a tree with [c] added at node [i] — how load
    pin capacitance is attached. *)

val scale : t -> res_factor:float -> cap_factor:float -> t
(** Uniformly scale all R and C — used for process-variation samples. *)

val map_segments :
  t -> (int -> node -> float * float) -> t
(** [map_segments t f] rebuilds the tree with per-node (res, cap) returned
    by [f index node] — used for per-segment variation. *)

val copy : t -> t
(** A tree whose node records are owned by the caller — the target for
    the in-place operations below.  Taps and children stay shared (they
    are never mutated). *)

val refill : t -> res:float array -> cap:float array -> unit
(** Overwrite every node's R and C in place from the given arrays —
    the allocation-free counterpart of {!map_segments} for per-sample
    variation.  Only call on trees obtained from {!copy}: functional
    constructors such as {!add_cap} share node records between trees,
    and refilling a shared tree would corrupt its siblings.
    @raise Invalid_argument on length mismatch or nonzero root
    resistance. *)

val bump_cap : t -> int -> float -> unit
(** [bump_cap t i c] adds [c] at node [i] in place — {!add_cap} for
    owned scratch trees.  Same ownership caveat as {!refill}. *)

val path_to_root : t -> int -> int list
(** Node indices from the given node up to (and including) the root. *)

val downstream_cap : t -> float array
(** Per-node capacitance of the subtree rooted there (including self). *)

val ladder : segments:int -> res_per_seg:float -> cap_per_seg:float -> t
(** Uniform RC ladder with a single tap at the far end; node capacitance
    is split half at each segment end in the usual π fashion. *)

val pp : Format.formatter -> t -> unit
