(** Wire Monte-Carlo experiments: the measurement side of the wire-model
    calibration and of the paper's Figs. 7–10.

    Each experiment drives a random or given RC tree with a sampled
    driver arc, perturbs segment R/C and the load pin capacitance, and
    records the tap-delay population.  {!standard_observations} sweeps
    driver/load strength combinations (the paper's FO1/FO2/FO4/FO8
    constraint set) to produce the observations {!Wire_model.fit_scales}
    consumes. *)

type measurement = {
  driver : Nsigma_liberty.Cell.t;
  load : Nsigma_liberty.Cell.t;
  elmore : float;  (** Elmore delay incl. the load pin capacitance *)
  samples : float array;  (** sorted wire-delay population (s) *)
  moments : Nsigma_stats.Moments.summary;
}

val measure :
  ?n:int ->
  ?seed:int ->
  ?steps:int ->
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  tree:Nsigma_rcnet.Rctree.t ->
  driver:Nsigma_liberty.Cell.t ->
  load:Nsigma_liberty.Cell.t ->
  unit ->
  measurement
(** Monte-Carlo ([n] defaults 300) of one wire configuration.  The load
    pin capacitance carries a Pelgrom-scaled deviate of its own, which is
    the physical channel behind the X_FO coefficient. *)

val quantile : measurement -> sigma:int -> float

val variability : measurement -> float
(** σ_w/μ_w of the population. *)

val standard_observations :
  ?n_per_config:int ->
  ?n_trees:int ->
  ?seed:int ->
  Nsigma_process.Technology.t ->
  unit ->
  Wire_model.wire_observation list
(** Driver/load INV strength sweep (1, 2, 4, 8 on both sides) over
    [n_trees] random nets each — the calibration workload for eq. (7)'s
    scales. *)
