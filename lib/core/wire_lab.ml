module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Cell = Nsigma_liberty.Cell
module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore
module Wire_gen = Nsigma_rcnet.Wire_gen
module Rc_sim = Nsigma_spice.Rc_sim
module Rng = Nsigma_stats.Rng
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Monte_carlo = Nsigma_spice.Monte_carlo

type measurement = {
  driver : Cell.t;
  load : Cell.t;
  elmore : float;
  samples : float array;
  moments : Moments.summary;
}

let measure ?(n = 300) ?(seed = 17) ?(steps = 200) ?exec tech ~tree ~driver
    ~load () =
  let g = Rng.create ~seed in
  let tap = tree.Rctree.taps.(0) in
  let load_cap_nom = Cell.input_cap tech load in
  let cap_sigma =
    T.sigma_beta_local tech
      ~width:(float_of_int load.Cell.strength *. tech.T.width_n)
  in
  let samples =
    Monte_carlo.delays ?exec tech g ~n (fun sample ->
        let arc = Cell.arc tech sample driver ~output_edge:`Rise in
        let tree_v = Wire_gen.vary tech sample tree in
        let load_cap =
          load_cap_nom
          *. (1.0 +. Variation.local_relative sample ~sigma:cap_sigma)
        in
        let r =
          Rc_sim.simulate ~steps tech ~driver:arc ~tree:tree_v
            ~load_caps:[ (tap, load_cap) ]
            ~input_slew:Nsigma_sta.Provider.input_slew_default
        in
        Array.to_list r.Rc_sim.tap_delays |> List.assoc tap)
  in
  Array.sort Float.compare samples;
  {
    driver;
    load;
    elmore = Elmore.delay_at (Rctree.add_cap tree tap load_cap_nom) tap;
    samples;
    moments = Moments.summary_of_array samples;
  }

let quantile m ~sigma =
  Quantile.of_sorted m.samples
    (Quantile.probability_of_sigma (float_of_int sigma))

let variability m = m.moments.Moments.std /. m.moments.Moments.mean

let standard_observations ?(n_per_config = 150) ?(n_trees = 2) ?(seed = 19) tech
    () =
  let g = Rng.create ~seed in
  let strengths = [ 1; 2; 4; 8 ] in
  List.concat_map
    (fun ds ->
      List.concat_map
        (fun ls ->
          List.init n_trees (fun k ->
              let tree =
                Wire_gen.random_tree tech Wire_gen.default_spec (Rng.split g)
              in
              let driver = Cell.make Cell.Inv ~strength:ds in
              let load = Cell.make Cell.Inv ~strength:ls in
              let m =
                measure ~n:n_per_config ~seed:(seed + (1000 * k) + (10 * ds) + ls)
                  tech ~tree ~driver ~load ()
              in
              {
                Wire_model.driver;
                load = Some load;
                measured_variability = variability m;
              }))
        strengths)
    strengths
