(** Deterministic, splittable pseudo-random number generation.

    The generator is xoshiro256++ seeded through splitmix64, which gives
    high-quality 64-bit streams with a tiny state.  Every stochastic
    component of the library (Monte-Carlo engines, workload generators,
    property tests) threads an explicit [t] so that runs are reproducible
    from a single integer seed, and [split] derives statistically
    independent child streams for parallel or per-object sampling. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 64-bit integer seed.  Equal
    seeds yield equal streams. *)

val copy : t -> t
(** [copy g] is an independent snapshot of [g]'s current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    decorrelated from the remainder of [g]'s stream. *)

val derive : t -> index:int -> t
(** [derive g ~index] is a child generator that is a pure function of
    [g]'s current state and [index]; [g] is {e not} advanced.  Children
    at distinct indices are mutually decorrelated.  This is the RNG
    discipline behind deterministic parallel sampling: work item [i]
    samples from [derive base ~index:i], so its draws are independent of
    how items are scheduled across domains.  Requires [index >= 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform on \[0, n); requires [n > 0]. *)

val float : t -> float -> float
(** [float g b] is uniform on \[0, b). *)

val uniform : t -> float
(** Uniform on \[0, 1). *)

val uniform_range : t -> lo:float -> hi:float -> float
(** Uniform on \[lo, hi). *)

val gaussian : t -> float
(** Standard normal deviate (Marsaglia polar method). *)

val gaussian_mu_sigma : t -> mu:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a normal deviate with log-space parameters [mu], [sigma]. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate; requires [rate > 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly chosen element; requires a non-empty array. *)
