type t = {
  n : int;
  mean : float;
  m2 : float;  (* Σ (x-μ)² *)
  m3 : float;  (* Σ (x-μ)³ *)
  m4 : float;  (* Σ (x-μ)⁴ *)
}

type summary = {
  n : int;
  mean : float;
  std : float;
  skewness : float;
  kurtosis : float;
}

let empty = { n = 0; mean = 0.0; m2 = 0.0; m3 = 0.0; m4 = 0.0 }

(* Pébay's single-observation update of central moment sums. *)
let add (acc : t) x =
  let n1 = float_of_int acc.n in
  let n = acc.n + 1 in
  let nf = float_of_int n in
  let delta = x -. acc.mean in
  let delta_n = delta /. nf in
  let delta_n2 = delta_n *. delta_n in
  let term1 = delta *. delta_n *. n1 in
  let mean = acc.mean +. delta_n in
  let m4 =
    acc.m4
    +. (term1 *. delta_n2 *. ((nf *. nf) -. (3.0 *. nf) +. 3.0))
    +. (6.0 *. delta_n2 *. acc.m2)
    -. (4.0 *. delta_n *. acc.m3)
  in
  let m3 =
    acc.m3 +. (term1 *. delta_n *. (nf -. 2.0)) -. (3.0 *. delta_n *. acc.m2)
  in
  let m2 = acc.m2 +. term1 in
  { n; mean; m2; m3; m4 }

(* Merging with [empty] must be the identity *physically* (the other
   accumulator is returned unchanged, so every derived statistic is
   bitwise equal), not just numerically: the general Pébay formulas
   with na = 0 would still compute 0/0-free but rounded values. *)
let merge (a : t) (b : t) =
  if a.n = 0 then b
  else if b.n = 0 then a
  else begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let n = a.n + b.n in
    let nf = na +. nb in
    let delta = b.mean -. a.mean in
    let delta2 = delta *. delta in
    let mean = a.mean +. (delta *. nb /. nf) in
    let m2 = a.m2 +. b.m2 +. (delta2 *. na *. nb /. nf) in
    let m3 =
      a.m3 +. b.m3
      +. (delta *. delta2 *. na *. nb *. (na -. nb) /. (nf *. nf))
      +. (3.0 *. delta *. ((na *. b.m2) -. (nb *. a.m2)) /. nf)
    in
    let m4 =
      a.m4 +. b.m4
      +. (delta2 *. delta2 *. na *. nb
          *. ((na *. na) -. (na *. nb) +. (nb *. nb))
          /. (nf *. nf *. nf))
      +. (6.0 *. delta2
          *. ((na *. na *. b.m2) +. (nb *. nb *. a.m2))
          /. (nf *. nf))
      +. (4.0 *. delta *. ((na *. b.m3) -. (nb *. a.m3)) /. nf)
    in
    { n; mean; m2; m3; m4 }
  end

let of_array xs = Array.fold_left add empty xs

let count (acc : t) = acc.n
let mean (acc : t) = acc.mean

let variance (acc : t) =
  if acc.n = 0 then 0.0 else Float.max 0.0 (acc.m2 /. float_of_int acc.n)

let std acc = sqrt (variance acc)

let skewness (acc : t) =
  if acc.n = 0 || acc.m2 <= 0.0 then 0.0
  else begin
    let nf = float_of_int acc.n in
    sqrt nf *. acc.m3 /. (acc.m2 ** 1.5)
  end

let kurtosis (acc : t) =
  if acc.n = 0 || acc.m2 <= 0.0 then 3.0
  else begin
    let nf = float_of_int acc.n in
    nf *. acc.m4 /. (acc.m2 *. acc.m2)
  end

let excess_kurtosis acc = kurtosis acc -. 3.0

let summary (acc : t) : summary =
  {
    n = acc.n;
    mean = mean acc;
    std = std acc;
    skewness = skewness acc;
    kurtosis = kurtosis acc;
  }

let summary_of_array xs = summary (of_array xs)

(* ---- summary-level distribution arithmetic (SSTA sum operator) ---- *)

(* Central moments (per-sample, not Pébay sums) of a summary:
   m2 = σ², m3 = γσ³, m4 = κσ⁴. *)
let central_of_summary (s : summary) =
  let v = s.std *. s.std in
  (v, s.skewness *. v *. s.std, s.kurtosis *. v *. v)

(* The combined n is a confidence tag, not a physical sample count: the
   result of distribution arithmetic is only as trustworthy as its least
   characterised operand, so take the smaller positive count. *)
let combine_n (a : int) (b : int) =
  if a > 0 && b > 0 then min a b else max a b

let of_central ~n ~mean ~m2 ~m3 ~m4 : summary =
  if m2 <= 0.0 then { n; mean; std = 0.0; skewness = 0.0; kurtosis = 3.0 }
  else begin
    let std = sqrt m2 in
    { n; mean; std; skewness = m3 /. (m2 *. std); kurtosis = m4 /. (m2 *. m2) }
  end

let scale_shift (s : summary) ~scale ~shift : summary =
  if scale = 0.0 then
    { n = s.n; mean = shift; std = 0.0; skewness = 0.0; kurtosis = 3.0 }
  else begin
    (* aX + b: σ ↦ |a|σ, γ ↦ sign(a)·γ, κ invariant. *)
    let sgn = if scale < 0.0 then -1.0 else 1.0 in
    {
      n = s.n;
      mean = (scale *. s.mean) +. shift;
      std = Float.abs scale *. s.std;
      skewness = sgn *. s.skewness;
      kurtosis = (if s.std = 0.0 then 3.0 else s.kurtosis);
    }
  end

let add_scaled (a : summary) ~scale (b : summary) : summary =
  (* a + scale·b for independent a, b: means add; central moments of the
     scaled term come from scale_shift; cross terms with odd powers of
     either centred operand vanish, leaving
     m2 = m2a + m2b, m3 = m3a + m3b, m4 = m4a + m4b + 6·m2a·m2b. *)
  let b = scale_shift b ~scale ~shift:0.0 in
  let m2a, m3a, m4a = central_of_summary a in
  let m2b, m3b, m4b = central_of_summary b in
  of_central ~n:(combine_n a.n b.n) ~mean:(a.mean +. b.mean) ~m2:(m2a +. m2b)
    ~m3:(m3a +. m3b)
    ~m4:(m4a +. m4b +. (6.0 *. m2a *. m2b))

let add_independent a b = add_scaled a ~scale:1.0 b

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mu=%.6g sigma=%.6g gamma=%.4f kappa=%.4f" s.n s.mean
    s.std s.skewness s.kurtosis
