(** Empirical quantiles and the paper's sigma-level convention.

    The paper names the 0.14%, 2.28%, 15.87%, 50%, 84.13%, 97.72% and
    99.86% quantiles of a delay distribution the −3σ … +3σ "sigma levels"
    (the probabilities a Gaussian would assign to μ+nσ).  {!sigma_levels}
    enumerates them and {!probability_of_sigma} maps any real n to its
    Gaussian tail probability, so the model extends to ±6σ as the paper
    suggests for high-sigma sign-off. *)

val of_sorted : float array -> float -> float
(** [of_sorted xs p] is the [p]-quantile (0 ≤ p ≤ 1) of an ascending-sorted
    sample, using linear interpolation between order statistics (type-7,
    the R/NumPy default: h = (n−1)p).  This is the library's single
    interpolation convention — every quantile, including the sigma-level
    tables and the adaptive-stopping criterion, routes through it.  A
    singleton sample returns its only element for every [p].
    @raise Invalid_argument on an empty sample or p outside [0,1]. *)

val of_sorted_opt : float array -> float -> float option
(** Total variant: [None] on an empty sample (still raises on p outside
    [0,1] — that is a programming error, not a data condition). *)

val of_sample : float array -> float -> float
(** Like {!of_sorted} but sorts a copy of the input first. *)

val many_of_sample : float array -> float list -> (float * float) list
(** [many_of_sample xs ps] sorts once and returns [(p, quantile p)] for
    every requested probability. *)

val ci : ?confidence:float -> float array -> float -> float * float
(** [ci xs p] is a distribution-free confidence interval [(lo, hi)] for
    the [p]-quantile of the population behind the ascending-sorted
    sample [xs]: the count of samples below the true quantile is
    Binomial(n, p), so the order statistics at
    [np ± z·√(np(1−p))] bracket it with probability [confidence]
    (default 0.95; normal approximation to the binomial).  Indices are
    clamped into the sample, making the interval conservative at the
    tails.  A singleton sample returns [(xs.(0), xs.(0))].  This is the
    stopping criterion of the adaptive samplers: they stop when the
    relative half-width [(hi − lo)/2 ≤ rtol·|quantile|] at ±3σ.
    @raise Invalid_argument on an empty sample, p outside [0,1] or
    confidence outside (0,1). *)

val sigma_levels : int list
(** The paper's seven levels: [-3; -2; -1; 0; 1; 2; 3]. *)

val probability_of_sigma : float -> float
(** [probability_of_sigma n] = Φ(n), e.g. [3.0 ↦ 0.99865]. *)

val sigma_of_probability : float -> float
(** Inverse of {!probability_of_sigma}. *)

val empirical_sigma_level : float array -> int -> float
(** [empirical_sigma_level xs n] is the nσ sigma-level delay of the sample,
    i.e. its Φ(n) quantile. *)
