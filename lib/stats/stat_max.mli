(** Statistical max of two four-moment delay distributions — the
    reconvergence operator of block-based SSTA.

    Two operators are provided, following the exact-vs-approximate
    taxonomy of "Gate-Level Statistical Timing Analysis: Exact
    Solutions, Approximations and Algorithms" (arXiv:2401.03588):

    {ul
    {- {!Clark}: the inputs are treated as correlated Gaussians (their
       skewness/kurtosis is ignored) and all four output moments are
       {e exact} — Clark's 1961 mean/variance result extended to the
       third and fourth moments by conditioning on [D = X − Y] and
       integrating the one-sided Gaussian partial-moment recursion.}
    {- {!Moment}: skewness/kurtosis-aware moment matching.  Each input
       is represented by a third-order Cornish–Fisher quantile
       transform (a cubic polynomial) of a standard normal; the pair is
       coupled through a Gaussian copula with correlation [rho].
       Conditioned on the first copula variable the max's moments are
       {e exact} (Gaussian partial moments split at the threshold), so
       quadrature ({!gh_order}-node Gauss–Hermite) is only applied to
       the smooth outer integral — the diagonal kink of the max never
       meets the quadrature grid.}}

    Both return the tightness probability [P(X ≥ Y)], which callers use
    to re-split the result's variance into globally-correlated and
    independent components. *)

type operator = Clark | Moment

val operator_name : operator -> string
(** ["clark"] / ["moment"]. *)

val operator_of_string : string -> operator
(** @raise Invalid_argument on anything but ["clark"] / ["moment"]. *)

type result = {
  dist : Moments.summary;  (** four moments of max(X, Y) *)
  p_first : float;  (** P(X ≥ Y) — the Clark tightness probability *)
}

val clark : rho:float -> Moments.summary -> Moments.summary -> result
(** Exact Gaussian max.  [rho] is the correlation of the two inputs,
    clamped into (−1, 1).  Degenerate inputs (both σ = 0, or X − Y
    deterministic) return the larger-mean input unchanged. *)

val moment : rho:float -> Moments.summary -> Moments.summary -> result
(** Cornish–Fisher / Gauss–Hermite moment matching.  On Gaussian inputs
    (γ = 0, κ = 3) it agrees with {!clark} up to quadrature error. *)

val apply : operator -> rho:float -> Moments.summary -> Moments.summary -> result

val gh_order : int
(** One-dimensional Gauss–Hermite order used by {!moment} (24). *)

val hermite_orthonormal : int -> float -> float
(** The orthonormal physicists' Hermite polynomial Ĥ_n(x) (overflow-free
    recurrence) — the generator behind {!gh_nodes}' root scan.  Exposed
    so the collocation-point construction ({!Sampler.Pcm}) derives its
    nodes from the same machinery (probabilists' z = √2·x). *)

val gh_nodes : (float * float) array Lazy.t
(** Probabilists' Gauss–Hermite rule [(z_i, ω_i)]: Σω = 1,
    ∫f(z)φ(z)dz ≈ Σ ω_i f(z_i).  Exposed for tests. *)

val cornish_fisher : skew:float -> kurt:float -> float -> float
(** Third-order Cornish–Fisher standardised quantile
    w(z) = z + γ/6(z²−1) + (κ−3)/24(z³−3z) − γ²/36(2z³−5z); the shared
    quantile convention of {!moment} and SSTA report rendering.
    Inputs are clamped to the expansion's monotone domain (|γ| ≤ 1,
    κ ∈ [3 + 4γ²/3 − 0.127, 7]) — outside it the cubic folds back and
    is not a quantile transform at all, so clamping degrades gracefully
    where extrapolation would diverge. *)
