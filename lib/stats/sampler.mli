(** Deviate streams: variance-reduced generators of standard-normal
    sample vectors.

    Every Monte-Carlo loop in the library consumes, per sample, a fixed
    number of standard-normal deviates in a fixed order (the plan layer
    pins both — see [Arc.skeleton_local_dim] and [Path_mc.deviate_dim]).
    A {!t} produces the [i]-th sample's whole deviate vector as a pure
    function of (creation state, [i]), which keeps the executor
    bit-identity invariant: no scheduling order can perturb a sample.

    Five backends:

    - {!Mc} — plain Monte-Carlo, replaying today's
      [Rng.derive]+[gaussian] draw order exactly: the first
      {!mc_global_lead} deviates come from the derived child stream (the
      global die-to-die draws of [Variation.draw], consumed dbeta-first
      and therefore written to [z] back to front) and the rest from
      [Rng.split child] (the local stream).  The default; populations
      are bitwise-identical to the pre-sampler code paths.
    - {!Antithetic} — samples [2k] and [2k+1] are a ±z pair: the odd
      member is the exact negation of the even one.  Halves the variance
      contribution of odd (linear) response components.
    - {!Lhs} — Latin hypercube: per dimension, an independent random
      permutation assigns each of the [n] samples its own stratum of
      width 1/n, jittered uniformly inside the stratum and mapped
      through {!Special.normal_quantile}.  Exactly one sample per
      stratum per dimension (for the full population of [n]; prefixes
      of an adaptively-stopped run are unbiased but less balanced).
    - {!Sobol} — scrambled Sobol' low-discrepancy points: gray-code
      construction over 32-bit direction numbers (Joe–Kuo style
      primitive polynomials; dimensions beyond the embedded table are
      generated from a deterministic GF(2) primitive-polynomial sieve),
      with a per-dimension hash-based Owen-style scramble that preserves
      the dyadic net structure, mapped through
      {!Special.normal_quantile}.  Best with [n] a power of two.
    - {!Pcm} — probabilistic collocation: the deviate stream itself is
      plain {!Mc} (same vectors, bit for bit), but consumers that
      support it (e.g. [Monte_carlo.arc_delays_sampled]) evaluate the
      simulation kernel only at the O(d²) Hermite collocation points of
      {!module-Pcm} and replay the Mc population through the fitted
      second-order surrogate — thousands of samples from ~1+2d²
      kernel calls.

    Determinism discipline: {!create} derives all internal seeding from
    the passed generator via {!Rng.derive} without advancing it, and
    {!fill} at index [i] touches no mutable stream state, so populations
    are reproducible for any executor schedule and any subset/order of
    indices. *)

type backend = Mc | Antithetic | Lhs | Sobol | Pcm

val backend_name : backend -> string
(** ["mc" | "antithetic" | "lhs" | "sobol" | "pcm"]. *)

val backend_of_string : string -> backend
(** Inverse of {!backend_name} (case-insensitive).
    @raise Failure on an unknown name, listing the valid ones. *)

val default_backend : unit -> backend
(** The backend selected by the [NSIGMA_SAMPLING] environment variable;
    unset (or unparseable) means {!Mc}, so golden runs are unchanged
    unless explicitly asked otherwise. *)

val mc_global_lead : int
(** Number of leading deviates the {!Mc} backend draws from the derived
    child stream before switching to the split local stream — 3, the
    global (dvth_n, dvth_p, dbeta) draws of [Variation.draw].  This is
    what makes the [Mc] backend a bit-exact replay of the legacy draw
    order rather than a generic iid vector. *)

type t
(** A deviate stream of fixed dimension.  Immutable after creation: safe
    to share across worker domains (each worker passes its own output
    buffer to {!fill}). *)

val create : backend -> Rng.t -> dim:int -> n:int -> t
(** [create backend g ~dim ~n] builds a stream of [dim]-dimensional
    deviate vectors for a population of [n] samples.  [g] is read, not
    advanced (internal seeds come from [Rng.derive] on its current
    state).  [n] fixes the stratum count for {!Lhs} and is advisory for
    the other backends; indices passed to {!fill} may exceed it only for
    non-[Lhs] backends.
    @raise Invalid_argument if [dim <= 0] or [n <= 0]. *)

val backend_of : t -> backend
val dim : t -> int
val population : t -> int
(** The [n] passed to {!create}. *)

val fill : t -> index:int -> float array -> unit
(** [fill t ~index z] writes sample [index]'s standard-normal deviates
    into [z.(0 .. dim-1)].  Pure in [index]: any order, any subset, any
    domain.
    @raise Invalid_argument if [z] is shorter than [dim], [index < 0],
    or [index >= n] for an {!Lhs} stream. *)

val fill_uniform : t -> index:int -> float array -> unit
(** The uniform view of the same sample: for {!Lhs}/{!Sobol} the [(0,1)]
    points before the normal-quantile map; for {!Mc}/{!Antithetic} the
    normal CDF of the deviates.  Used by uniformity tests. *)

val sobol_raw_u01 : dim:int -> index:int -> float
(** The {e unscrambled} Sobol' point [(index, dim)] under this module's
    gray-code construction and [(x + 1/2) / 2^32] convention — the
    golden values the scrambled stream is built from (tests, docs).
    @raise Invalid_argument if [dim] is outside the embedded
    direction-number table. *)

val owen_scramble : seed:int -> int -> int
(** The per-dimension scramble: a monotone-in-reversed-bit-space hash of
    a 32-bit Sobol' integer.  Exposed so tests can verify the
    net-preserving (Owen) property directly. *)

(** {1 Probabilistic collocation (second-order Hermite surrogate)}

    The machinery behind the {!Pcm} backend, usable on any scalar
    response: simulate only at the symmetric collocation points built
    from the order-3 Gauss–Hermite nodes [{0, ±√3}] (the roots of
    He₃, derived from {!Stat_max.hermite_orthonormal} — the same
    recurrence behind [Stat_max.gh_nodes]), then {!Pcm.fit} recovers the
    second-order polynomial-chaos coefficients in closed form (exact on
    any quadratic in [z]) and {!Pcm.eval} replays arbitrarily many
    deviate vectors through the surrogate at a few dozen flops each. *)

module Pcm : sig
  val node : float
  (** The positive collocation node, √3 (computed, not hard-coded). *)

  val n_points : dim:int -> int
  (** [1 + 2·dim + 2·dim·(dim−1)]: origin, single-axis pairs, and the
      four corners of every dimension pair.
      @raise Invalid_argument if [dim <= 0]. *)

  val fill_point : dim:int -> int -> float array -> unit
  (** [fill_point ~dim p z] writes collocation point [p] (deterministic
      ordering: origin; singles [+e_j, −e_j] per dimension; corner
      quadruples per pair [j < k]) into [z.(0 .. dim-1)].
      @raise Invalid_argument on a bad index or short buffer. *)

  type surrogate

  val fit : dim:int -> values:float array -> surrogate
  (** [fit ~dim ~values] with [values.(p)] the response simulated at
      collocation point [p].  Closed-form finite-difference recovery of
      the {1, z_j, z_j²−1, z_j·z_k} coefficients.
      @raise Invalid_argument unless [Array.length values] equals
      {!n_points}. *)

  val eval : surrogate -> float array -> float
  (** Evaluate the surrogate at one deviate vector. *)

  val mean : surrogate -> float
  (** The surrogate's exact population mean (its constant term — every
      other basis function has zero expectation under φ). *)

  val dim_of : surrogate -> int
end
