(** Polynomial transcendental kernels for the opt-in batched fast path.

    Branch-light polynomial replacements for the libm calls that
    dominate the analytic kernel ([exp], [log1p], and
    {!Special.log1p_exp}), used only when the batch layer runs in its
    [--no-bit-identical] approximation mode.  Each kernel keeps relative
    error within {!max_rel_error} of libm over its useful domain —
    asserted over dense sweeps by test_batch — which is far below the
    fast kernel's own model error but {e not} bitwise-equal, so the
    default simulation paths never call this module. *)

val max_rel_error : float
(** [1e-7] — the validated relative-error bound of every kernel below
    (the measured worst case is ~7e-9 for {!exp}, ~1.3e-12 for {!log},
    ~1.5e-8 for {!log1p_exp}). *)

val exp : float -> float
(** Degree-7 Taylor after Cody–Waite [ln 2] range reduction, scaled back
    exactly through a precomputed 2^k table (an array load, no libm
    [ldexp] call).  Handles overflow/underflow like libm (saturates to
    [infinity] / [0.]). *)

val log : float -> float
(** atanh-series log on the [[√½, √2)]-normalised mantissa; no
    cancellation near 1 because the exponent term vanishes there. *)

val log1p : float -> float
(** Series evaluation of [log (1 + x)] that keeps full relative accuracy
    for small [x]. *)

val log1p_exp : float -> float
(** [log (1 + exp x)] with the same saturation branches as
    {!Special.log1p_exp} (identically [x] above +35, [exp x] below −35)
    and the approximate kernels in between. *)
