(* Statistical max of two four-moment delay distributions.

   Clark (1961) gives the exact moments of max(X,Y) for bivariate
   Gaussian (X,Y); we extend his classic mean/variance result to the
   third and fourth moments by conditioning on D = X - Y and using the
   one-sided partial-moment recursion of the Gaussian.  The moment-
   matching variant keeps each input's skewness/kurtosis via a
   Cornish-Fisher quantile transform under a Gaussian copula and
   integrates with 2-D Gauss-Hermite quadrature. *)

type operator = Clark | Moment

let operator_name = function Clark -> "clark" | Moment -> "moment"

let operator_of_string = function
  | "clark" -> Clark
  | "moment" -> Moment
  | s ->
      invalid_arg
        (Printf.sprintf "Stat_max.operator_of_string: %S (expected \"clark\" or \"moment\")" s)

type result = {
  dist : Moments.summary;  (** four moments of max(X, Y) *)
  p_first : float;  (** P(X >= Y) — the Clark tightness probability *)
}

let clamp_rho rho = Float.min 0.9999 (Float.max (-0.9999) rho)

(* Central moments from raws about 0. *)
let central_of_raw r1 r2 r3 r4 =
  let m2 = r2 -. (r1 *. r1) in
  let m3 = r3 -. (3.0 *. r1 *. r2) +. (2.0 *. r1 *. r1 *. r1) in
  let m4 =
    r4
    -. (4.0 *. r1 *. r3)
    +. (6.0 *. r1 *. r1 *. r2)
    -. (3.0 *. r1 *. r1 *. r1 *. r1)
  in
  (m2, m3, m4)

let degenerate_winner (a : Moments.summary) (b : Moments.summary) =
  if a.Moments.mean >= b.Moments.mean then { dist = a; p_first = 1.0 }
  else { dist = b; p_first = 0.0 }

(* ---------------------------------------------------------------- *)
(* Clark: exact moments of max of two correlated Gaussians.         *)
(* ---------------------------------------------------------------- *)

let clark ~rho (sa : Moments.summary) (sb : Moments.summary) =
  let rho = clamp_rho rho in
  let mu1 = sa.Moments.mean and s1 = sa.Moments.std in
  let mu2 = sb.Moments.mean and s2 = sb.Moments.std in
  let a2 = (s1 *. s1) +. (s2 *. s2) -. (2.0 *. rho *. s1 *. s2) in
  let a = sqrt (Float.max 0.0 a2) in
  if a <= 1e-9 *. (s1 +. s2) || a = 0.0 then degenerate_winner sa sb
  else begin
    let mud = mu1 -. mu2 in
    let beta = mud /. a in
    let phi = Special.normal_pdf beta and cap = Special.normal_cdf beta in
    (* One-sided partial moments of D ~ N(mud, a²):
       I_k = ∫₀^∞ d^k f_D(d) dd, via I_k = mud·I_{k-1} + (k-1)a²·I_{k-2}. *)
    let i0 = cap in
    let i1 = (mud *. i0) +. (a *. phi) in
    let i2 = (mud *. i1) +. (a2 *. i0) in
    let i3 = (mud *. i2) +. (2.0 *. a2 *. i1) in
    let i4 = (mud *. i3) +. (3.0 *. a2 *. i2) in
    (* Full raw moments of D; J_k = d_k − I_k covers the D < 0 side. *)
    let d1 = mud in
    let d2 = (mud *. mud) +. a2 in
    let d3 = (mud *. mud *. mud) +. (3.0 *. mud *. a2) in
    let d4 = (mud *. mud *. mud *. mud) +. (6.0 *. mud *. mud *. a2) +. (3.0 *. a2 *. a2) in
    let j0 = 1.0 -. i0 and j1 = d1 -. i1 and j2 = d2 -. i2 in
    let j3 = d3 -. i3 and j4 = d4 -. i4 in
    (* Conditionally on D = d, X is Gaussian with mean c0 + b·d and
       variance v (and likewise Y).  E[W^n | D=d] is a polynomial in d;
       integrating against I (X side, D ≥ 0) or J (Y side, D < 0) gives
       the exact raw moments of the max. *)
    let side c0 b v (p0, p1, p2, p3, p4) =
      let c0_2 = c0 *. c0 in
      let c0_3 = c0_2 *. c0 in
      let c0_4 = c0_2 *. c0_2 in
      let b2 = b *. b in
      let e1 = (c0 *. p0) +. (b *. p1) in
      let e2 = ((c0_2 +. v) *. p0) +. (2.0 *. c0 *. b *. p1) +. (b2 *. p2) in
      let e3 =
        ((c0_3 +. (3.0 *. c0 *. v)) *. p0)
        +. (((3.0 *. c0_2 *. b) +. (3.0 *. b *. v)) *. p1)
        +. (3.0 *. c0 *. b2 *. p2)
        +. (b2 *. b *. p3)
      in
      let e4 =
        ((c0_4 +. (6.0 *. c0_2 *. v) +. (3.0 *. v *. v)) *. p0)
        +. (((4.0 *. c0_3 *. b) +. (12.0 *. c0 *. b *. v)) *. p1)
        +. (((6.0 *. c0_2 *. b2) +. (6.0 *. b2 *. v)) *. p2)
        +. (4.0 *. c0 *. b2 *. b *. p3)
        +. (b2 *. b2 *. p4)
      in
      (e1, e2, e3, e4)
    in
    let cov_xd = (s1 *. s1) -. (rho *. s1 *. s2) in
    let cov_yd = (rho *. s1 *. s2) -. (s2 *. s2) in
    let bx = cov_xd /. a2 and by = cov_yd /. a2 in
    let vx = Float.max 0.0 ((s1 *. s1) -. (cov_xd *. cov_xd /. a2)) in
    let vy = Float.max 0.0 ((s2 *. s2) -. (cov_yd *. cov_yd /. a2)) in
    let x1, x2, x3, x4 = side (mu1 -. (bx *. mud)) bx vx (i0, i1, i2, i3, i4) in
    let y1, y2, y3, y4 = side (mu2 -. (by *. mud)) by vy (j0, j1, j2, j3, j4) in
    let r1 = x1 +. y1 and r2 = x2 +. y2 and r3 = x3 +. y3 and r4 = x4 +. y4 in
    let m2, m3, m4 = central_of_raw r1 r2 r3 r4 in
    {
      dist =
        Moments.of_central
          ~n:(min (max sa.Moments.n 1) (max sb.Moments.n 1))
          ~mean:r1 ~m2 ~m3 ~m4;
      p_first = i0;
    }
  end

(* ---------------------------------------------------------------- *)
(* Gauss-Hermite nodes (probabilists' convention, weight φ(z)).     *)
(* ---------------------------------------------------------------- *)

(* Orthonormal physicists' Hermite recurrence — overflow-free.  Roots
   are found by scanning for sign changes and bisecting; no magic
   initial-guess constants, and the cost is paid once (lazy). *)
let hermite_orthonormal n x =
  let pim4 = 0.7511255444649425 (* π^(-1/4) *) in
  let rec go j hjm1 hj =
    if j = n then hj
    else
      let hjp1 =
        (x *. sqrt (2.0 /. float_of_int (j + 1)) *. hj)
        -. (sqrt (float_of_int j /. float_of_int (j + 1)) *. hjm1)
      in
      go (j + 1) hj hjp1
  in
  if n = 0 then pim4 else go 1 pim4 (sqrt 2.0 *. x *. pim4)

let gh_order = 24

let gh_nodes =
  lazy
    (let n = gh_order in
     let f x = hermite_orthonormal n x in
     let upper = sqrt (float_of_int ((4 * n) + 2)) in
     let step = upper /. float_of_int (n * 16) in
     let roots = ref [] in
     let x = ref 0.0 in
     (* n even: no root at the origin; scan the positive half line. *)
     while !x < upper do
       let x0 = !x and x1 = !x +. step in
       let f0 = f x0 and f1 = f x1 in
       if f0 = 0.0 then roots := x0 :: !roots
       else if f0 *. f1 < 0.0 then begin
         let lo = ref x0 and hi = ref x1 and flo = ref f0 in
         for _ = 1 to 80 do
           let mid = 0.5 *. (!lo +. !hi) in
           let fm = f mid in
           if !flo *. fm <= 0.0 then hi := mid
           else begin
             lo := mid;
             flo := fm
           end
         done;
         roots := (0.5 *. (!lo +. !hi)) :: !roots
       end;
       x := x1
     done;
     let pos = Array.of_list (List.rev !roots) in
     if 2 * Array.length pos <> n then
       failwith "Stat_max: Gauss-Hermite root scan lost a root";
     (* w_i = 2 / h'_n(x_i)² with h'_n = √(2n)·h_{n-1}; Σw = √π for the
        physicists' weight.  Convert to probabilists': z = √2·x,
        ω = w/√π, so Σω = 1 and ∫ f(z)φ(z)dz ≈ Σ ω_i f(z_i). *)
     let sqrt_pi = sqrt Float.pi in
     let deriv x = sqrt (2.0 *. float_of_int n) *. hermite_orthonormal (n - 1) x in
     let mk x =
       let d = deriv x in
       (sqrt 2.0 *. x, 2.0 /. (d *. d) /. sqrt_pi)
     in
     Array.concat
       [ Array.map (fun x -> mk (-.x)) pos; Array.map mk pos ])

(* ---------------------------------------------------------------- *)
(* Moment-matching: Cornish-Fisher quantiles + Gaussian copula.     *)
(* ---------------------------------------------------------------- *)

(* The third-order expansion is only a valid quantile transform where
   the cubic w(z) is monotone; propagated moments can stray far outside
   that domain (re-split remainders, long max chains), so both entry
   points clamp to a region where w'(z) > 0 on |z| ≤ 8 — outside it the
   cubic would fold back and the threshold bisection in [moment] would
   return garbage rather than degrade gracefully.  With |γ| ≤ 1 the
   cubic coefficient is c3 = (κ−3)/24 − γ²/18; requiring c3 ≥ −1/189
   keeps the fold points beyond |z| = 8 (from c1 ≥ 192·|c3| at γ = 0),
   and the κ ≤ 7 cap keeps the discriminant 4c2² − 12c1c3 negative on
   the leptokurtic side. *)
let clamp_skew g = Float.max (-1.0) (Float.min 1.0 g)

let clamp_cf ~skew ~kurt =
  let g = clamp_skew skew in
  let klo = 3.0 +. (24.0 *. ((g *. g /. 18.0) -. (1.0 /. 189.0))) in
  (g, Float.max klo (Float.min 7.0 kurt))

(* Third-order Cornish-Fisher expansion of the standardised quantile:
   w(z) = z + γ/6·(z²-1) + (κ-3)/24·(z³-3z) − γ²/36·(2z³-5z). *)
let cornish_fisher ~skew ~kurt z =
  let skew, kurt = clamp_cf ~skew ~kurt in
  let z2 = z *. z in
  let z3 = z2 *. z in
  z
  +. (skew /. 6.0 *. (z2 -. 1.0))
  +. ((kurt -. 3.0) /. 24.0 *. (z3 -. (3.0 *. z)))
  -. (skew *. skew /. 36.0 *. ((2.0 *. z3) -. (5.0 *. z)))

(* The Cornish-Fisher quantile as a cubic polynomial in z (ascending
   coefficients), scaled to the summary's mean and std. *)
let cf_poly (s : Moments.summary) =
  let g, k =
    clamp_cf ~skew:s.Moments.skewness ~kurt:s.Moments.kurtosis
  in
  let h = (k -. 3.0) /. 24.0 in
  let c0 = -.g /. 6.0 in
  let c1 = 1.0 -. (3.0 *. h) +. (5.0 *. g *. g /. 36.0) in
  let c2 = g /. 6.0 in
  let c3 = h -. (g *. g /. 18.0) in
  [|
    s.Moments.mean +. (s.Moments.std *. c0);
    s.Moments.std *. c1;
    s.Moments.std *. c2;
    s.Moments.std *. c3;
  |]

let poly_eval p x =
  let acc = ref 0.0 in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let poly_mul p q =
  let r = Array.make (Array.length p + Array.length q - 1) 0.0 in
  Array.iteri
    (fun i pi -> Array.iteri (fun j qj -> r.(i + j) <- r.(i + j) +. (pi *. qj)) q)
    p;
  r

(* Substitute z = alpha + beta·v into the polynomial (binomial shift). *)
let poly_compose_affine p ~alpha ~beta =
  let n = Array.length p in
  let r = Array.make n 0.0 in
  let lin = [| alpha; beta |] in
  let pow = ref [| 1.0 |] in
  for m = 0 to n - 1 do
    Array.iteri (fun j c -> r.(j) <- r.(j) +. (p.(m) *. c)) !pow;
    if m < n - 1 then pow := poly_mul !pow lin
  done;
  r

(* I_k(t) = ∫_t^∞ v^k φ(v) dv for k = 0 .. kmax, by the recursion
   I_k = t^(k-1)·φ(t) + (k-1)·I_(k-2); the boundary term vanishes at
   t = ±∞ so infinite thresholds reduce to full/zero moments. *)
let upper_partial_moments ~t kmax =
  let arr = Array.make (kmax + 1) 0.0 in
  let finite = Float.is_finite t in
  let phi = if finite then Special.normal_pdf t else 0.0 in
  arr.(0) <-
    (if finite then 1.0 -. Special.normal_cdf t else if t > 0.0 then 0.0 else 1.0);
  if kmax >= 1 then arr.(1) <- phi;
  for k = 2 to kmax do
    let boundary = if finite then (t ** float_of_int (k - 1)) *. phi else 0.0 in
    arr.(k) <- boundary +. (float_of_int (k - 1) *. arr.(k - 2))
  done;
  arr

(* Solve q(t) = x on [-zmax, zmax] for a monotone-in-the-bulk quantile
   polynomial: plain safeguarded bisection on the bracketing interval,
   with ±∞ when x falls outside the quantile's range. *)
let solve_threshold q x =
  let zmax = 8.0 in
  let qlo = poly_eval q (-.zmax) and qhi = poly_eval q zmax in
  if x <= qlo then Float.neg_infinity
  else if x >= qhi then Float.infinity
  else begin
    let lo = ref (-.zmax) and hi = ref zmax and flo = ref (qlo -. x) in
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi) in
      let fm = poly_eval q mid -. x in
      if !flo *. fm <= 0.0 then hi := mid
      else begin
        lo := mid;
        flo := fm
      end
    done;
    0.5 *. (!lo +. !hi)
  end

(* Moment-matching max: condition on the first input's copula variable
   u.  Given u, X = q1(u) is a constant and the second copula variable
   is z2 = ρu + √(1-ρ²)·v with v standard normal, so Y = q2(z2) is a
   cubic polynomial in v and E[max(X,Y)^n | u] is exact via Gaussian
   partial moments split at the threshold q2 = X.  Only the outer
   integral over u uses quadrature, and that integrand is smooth — the
   diagonal kink of the max never meets the quadrature grid. *)
let rec moment ~rho (sa : Moments.summary) (sb : Moments.summary) =
  let rho = clamp_rho rho in
  let s1 = sa.Moments.std and s2 = sb.Moments.std in
  if s1 = 0.0 && s2 = 0.0 then degenerate_winner sa sb
  else if s1 = 0.0 then begin
    (* Condition on the varying input instead; flip P(X ≥ Y). *)
    let r = moment ~rho sb sa in
    { r with p_first = 1.0 -. r.p_first }
  end
  else begin
    let q1 = cf_poly sa and q2 = cf_poly sb in
    let nodes = Lazy.force gh_nodes in
    let kcop = sqrt (1.0 -. (rho *. rho)) in
    let r1 = ref 0.0 and r2 = ref 0.0 and r3 = ref 0.0 and r4 = ref 0.0 in
    let pf = ref 0.0 in
    Array.iter
      (fun (u, wu) ->
        let x = poly_eval q1 u in
        let e1, e2, e3, e4, p_le =
          if s2 = 0.0 then begin
            let y = sb.Moments.mean in
            let z = if x >= y then x else y in
            let z2 = z *. z in
            (z, z2, z2 *. z, z2 *. z2, if x >= y then 1.0 else 0.0)
          end
          else begin
            let tz = solve_threshold q2 x in
            let vstar =
              if Float.is_finite tz then (tz -. (rho *. u)) /. kcop else tz
            in
            (* Y as a cubic in v, and its 2nd..4th powers. *)
            let b = poly_compose_affine q2 ~alpha:(rho *. u) ~beta:kcop in
            let b2 = poly_mul b b in
            let b3 = poly_mul b2 b in
            let b4 = poly_mul b2 b2 in
            let im = upper_partial_moments ~t:vstar 12 in
            let dot p = Array.fold_left ( +. ) 0.0 (Array.mapi (fun j c -> c *. im.(j)) p) in
            let p_le = 1.0 -. im.(0) (* P(Y ≤ x | u) *) in
            let x2 = x *. x in
            ( (x *. p_le) +. dot b,
              (x2 *. p_le) +. dot b2,
              (x2 *. x *. p_le) +. dot b3,
              (x2 *. x2 *. p_le) +. dot b4,
              p_le )
          end
        in
        pf := !pf +. (wu *. p_le);
        r1 := !r1 +. (wu *. e1);
        r2 := !r2 +. (wu *. e2);
        r3 := !r3 +. (wu *. e3);
        r4 := !r4 +. (wu *. e4))
      nodes;
    let m2, m3, m4 = central_of_raw !r1 !r2 !r3 !r4 in
    {
      dist =
        Moments.of_central
          ~n:(min (max sa.Moments.n 1) (max sb.Moments.n 1))
          ~mean:!r1 ~m2 ~m3 ~m4;
      p_first = !pf;
    }
  end

let apply op ~rho a b =
  match op with Clark -> clark ~rho a b | Moment -> moment ~rho a b
