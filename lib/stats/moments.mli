(** Streaming computation of the first four statistical moments.

    The N-sigma model of the paper is parameterised entirely by
    [μ, σ, γ (skewness), κ (kurtosis)] of a delay sample, so this module is
    the work-horse of characterisation.  Updates use the numerically stable
    one-pass formulas of Pébay (2008); accumulators can be merged, which
    lets Monte-Carlo batches be combined. *)

type t
(** Immutable accumulator of central moment sums. *)

type summary = {
  n : int;  (** sample count *)
  mean : float;  (** first moment μ *)
  std : float;  (** standard deviation σ (population) *)
  skewness : float;  (** third standardised moment γ *)
  kurtosis : float;  (** fourth standardised moment κ (Gaussian = 3) *)
}
(** The four moments the N-sigma model consumes. *)

val empty : t
(** Accumulator over zero samples. *)

val add : t -> float -> t
(** [add acc x] folds one observation into the accumulator. *)

val merge : t -> t -> t
(** Combine two accumulators as if their samples were concatenated.
    Merging with {!empty} (on either side) is a physical identity: the
    other accumulator is returned unchanged, so [summary] of the result
    is bitwise equal to [summary] of the non-empty operand. *)

val of_array : float array -> t
(** Accumulate a whole sample. *)

val count : t -> int
val mean : t -> float

val variance : t -> float
(** Population variance (divides by n). *)

val std : t -> float

val skewness : t -> float
(** 0 for symmetric data; > 0 for a right (long upper) tail.  Returns 0
    when σ = 0. *)

val kurtosis : t -> float
(** Standardised fourth moment; 3 for a Gaussian.  Returns 3 when σ = 0 so
    degenerate samples behave as "no excess tail". *)

val excess_kurtosis : t -> float
(** [kurtosis acc -. 3.0]. *)

val summary : t -> summary
(** All four moments at once. *)

val summary_of_array : float array -> summary

(** {2 Summary-level distribution arithmetic}

    The SSTA sum operator works on four-moment summaries directly — no
    sample behind them — so these helpers implement exact moment
    arithmetic for affine transforms and independent sums.  The [n] of a
    combined summary is a confidence tag (the smaller positive operand
    count), not a physical sample count. *)

val of_central : n:int -> mean:float -> m2:float -> m3:float -> m4:float -> summary
(** Summary from per-sample central moments (m2 = σ², m3 = γσ³,
    m4 = κσ⁴).  [m2 ≤ 0] yields the degenerate convention σ = 0, γ = 0,
    κ = 3. *)

val central_of_summary : summary -> float * float * float
(** [(m2, m3, m4)] central moments of a summary. *)

val scale_shift : summary -> scale:float -> shift:float -> summary
(** Exact moments of [scale·X + shift]: σ ↦ |scale|σ, γ flips sign with
    [scale], κ is invariant.  [scale = 0] gives the degenerate constant
    [shift]. *)

val add_scaled : summary -> scale:float -> summary -> summary
(** [add_scaled a ~scale b] is the distribution of [A + scale·B] for
    {e independent} A and B: means add, m2/m3 add, and
    m4 = m4a + m4b + 6·m2a·m2b (the only surviving cross term). *)

val add_independent : summary -> summary -> summary
(** [add_scaled a ~scale:1.0 b]. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render as [n=… μ=… σ=… γ=… κ=…]. *)
