(* Polynomial transcendental kernels for the batched fast path.

   The planned Monte-Carlo loop is within ~1.5 µs/sample of the libm
   floor (BENCH_plan.json), so the remaining raw speed is in the
   transcendentals themselves.  These kernels trade the last ~8 decimal
   digits for branch-light straight-line code with no C calls in the
   hot path:

   - [exp]: Cody–Waite range reduction x = k·ln2 + r with |r| ≤ ln2/2
     (k by the 1.5·2⁵² magic-number round, branch-free), a degree-7
     Taylor polynomial in Horner form (remainder r^8/8! ≤ 5.2e-9 at the
     interval edge) and an exact scale-back by a precomputed 2^k table —
     an array load instead of libm's [ldexp] call.
   - [log]: mantissa/exponent split by raw exponent-field extraction
     (two Int64 ops; the mantissa is recovered as x·2^−e through the
     same table, exactly), normalised to m ∈ [√½, √2), then the atanh
     series 2·(z + z³/3 + … + z¹³/13) in z = (m−1)/(m+1), |z| ≤ 0.1716
     (remainder 2z¹⁵/15 ≤ 5e-12).  Because e = 0 whenever
     |log x| < ln√2 there is no catastrophic cancellation between the
     e·ln2 term and the series.  Subnormals pre-scale by 2^54.
   - [log1p]: the same atanh series in z = x/(x+2) for |x| ≤ ½ (where
     1+x would lose low bits), [log (1+x)] above.
   - [log1p_exp]: same saturation branches as [Special.log1p_exp]
     (exact above +35, [exp x] below −35), but the in-band evaluation
     is fused through the softplus identity
     log1p(exp x) = max x 0 + log1p(exp (−|x|)): one [exp] of a
     non-positive argument, whose result t ≤ 1 feeds the atanh series
     at z = t/(t+2) ≤ 1/3 directly — the exponent split of a full [log]
     never runs.  This is the hot call of the fast kernel's per-device
     current model, so its cost sets the approximate path's speed.

   Every kernel keeps relative error ≤ 1e-7 over its useful domain —
   asserted against libm by test_batch over dense sweeps — which is
   orders of magnitude below the fast kernel's own model error.  The
   bound is what the opt-in --no-bit-identical mode advertises; the
   default paths never call into this module. *)

let max_rel_error = 1e-7

(* fdlibm's split of ln 2: the high word carries 32 mantissa bits, so
   k·ln2_hi is exact for |k| ≤ 2²¹ and the pair's sum matches ln 2 to
   the last double bit — the residual k·δ stays below 3e-14 across the
   whole exp domain. *)
let ln2_hi = 0x1.62e42feep-1 (* 6.93147180369123816490e-01 *)
let ln2_lo = 1.90821492927058770002e-10 (* ln 2 − ln2_hi *)
let inv_ln2 = 1.4426950408889634

(* 2^(i − 1075) for i = 0 … 2100: every power of two from the smallest
   subnormal (2^−1074) to 2^1025, so both [exp]'s scale-back
   (k ∈ [−1075, 1025]) and [log]'s mantissa recovery (2^−e,
   e ∈ [−1021, 1024]) are single unsafe loads. *)
let pow2_bias = 1075
let pow2 = Array.init 2101 (fun i -> Float.ldexp 1.0 (i - pow2_bias))

(* Adding then subtracting 1.5·2⁵² rounds to the nearest integer in
   float arithmetic for |y| < 2⁵¹ — no [Float.round] call, and
   [int_of_float] of the result is exact. *)
let round_magic = 0x1.8p52

let[@inline always] exp x =
  if not (x >= -745.0) then (if x < 0.0 then 0.0 else x (* nan *))
  else if x > 709.782712893384 then infinity
  else begin
    let k = (x *. inv_ln2 +. round_magic) -. round_magic in
    let r = x -. (k *. ln2_hi) -. (k *. ln2_lo) in
    (* Horner over 1/k! up to 1/5040. *)
    let c3 = 0x1.5555555555555p-3 (* 1/6 *) in
    let c4 = 0x1.5555555555555p-5 (* 1/24 *) in
    let c5 = 0x1.1111111111111p-7 (* 1/120 *) in
    let c6 = 0x1.6c16c16c16c17p-10 (* 1/720 *) in
    let c7 = 0x1.a01a01a01a01ap-13 (* 1/5040 *) in
    let p = c6 +. (r *. c7) in
    let p = c5 +. (r *. p) in
    let p = c4 +. (r *. p) in
    let p = c3 +. (r *. p) in
    let p = 0.5 +. (r *. p) in
    let p = 1.0 +. (r *. p) in
    let p = 1.0 +. (r *. p) in
    p *. Array.unsafe_get pow2 (int_of_float k + pow2_bias)
  end

(* atanh z via its odd Taylor series; callers bound |z| ≤ 1/3 so the
   truncation error 2z¹⁵/15 is ≤ 1.4e-8 of the leading term (≤ 5e-12
   at [log]'s |z| ≤ 0.1716). *)
let[@inline] atanh2 z =
  let z2 = z *. z in
  let p = 0.09090909090909091 +. (z2 *. 0.07692307692307693) in
  let p = 0.1111111111111111 +. (z2 *. p) in
  let p = 0.14285714285714285 +. (z2 *. p) in
  let p = 0.2 +. (z2 *. p) in
  let p = 0.3333333333333333 +. (z2 *. p) in
  let p = 1.0 +. (z2 *. p) in
  2.0 *. z *. p

let sqrt_half = 0.7071067811865476
let two_pow_54 = 0x1p54

let[@inline always] log x =
  if not (x > 0.0) then (if x = 0.0 then neg_infinity else Float.nan)
  else if x = infinity then infinity
  else begin
    (* Subnormals have a zero exponent field the raw split below cannot
       normalise; lift them into the normal range first and fold the
       2^54 back into the integer exponent (keeps the hi/lo ln 2 split
       exact). *)
    let x, e_bias =
      if x < 0x1p-1022 then (x *. two_pow_54, -54) else (x, 0)
    in
    (* frexp without the C call (or its tuple): e from the raw exponent
       field, m = x·2^−e ∈ [½, 1) exactly from the table. *)
    let e =
      Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float x) 52)
      - 1022
    in
    let m = x *. Array.unsafe_get pow2 (pow2_bias - e) in
    let e = e + e_bias in
    (* Normalise to [√½, √2) so |z| ≤ (√2−1)/(√2+1) = 0.1716. *)
    let m, e = if m < sqrt_half then (2.0 *. m, e - 1) else (m, e) in
    let z = (m -. 1.0) /. (m +. 1.0) in
    let ef = float_of_int e in
    (ef *. ln2_hi) +. ((ef *. ln2_lo) +. atanh2 z)
  end

let[@inline always] log1p x =
  if x > 0.5 || x < -0.5 then log (1.0 +. x)
  else
    (* z = x/(x+2) ≤ 0.2: the series keeps full relative accuracy where
       forming 1+x would round away the low bits of x. *)
    atanh2 (x /. (x +. 2.0))

(* Same saturation branches as [Special.log1p_exp]; in band the
   softplus fold keeps the [exp] argument non-positive so t = exp u ≤ 1
   and log1p t = atanh2 (t/(t+2)) needs no exponent split. *)
let[@inline always] log1p_exp x =
  if x > 35.0 then x
  else if x < -35.0 then exp x
  else begin
    (* −|x| and (x+|x|)/2 = max x 0 are single SSE ops: no data-dependent
       branch on the sign, which the per-device gate overdrives flip
       unpredictably. *)
    let t = exp (-.Float.abs x) in
    ((x +. Float.abs x) *. 0.5) +. atanh2 (t /. (t +. 2.0))
  end
