type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  (* Cached second deviate of the polar method, if any. *)
  mutable spare : float option;
}

(* splitmix64: used to expand the user seed into four state words, and to
   derive child seeds in [split].  Constants from Steele et al. (2014). *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; spare = None }

let copy g = { g with spare = g.spare }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let result = Int64.add (rotl (Int64.add g.s0 g.s3) 23) g.s0 in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let st = ref (bits64 g) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; spare = None }

let derive g ~index =
  if index < 0 then invalid_arg "Rng.derive: index must be non-negative";
  (* Hash the index, then fold each parent state word into the seeding
     stream so distinct parents and distinct indices both decorrelate.
     [g] is not advanced: the child depends only on (state, index), which
     is what makes index-addressed parallel sampling order-independent. *)
  let st = ref (Int64.of_int index) in
  let h = splitmix64 st in
  st := Int64.logxor h g.s0;
  let s0 = splitmix64 st in
  st := Int64.logxor !st g.s1;
  let s1 = splitmix64 st in
  st := Int64.logxor !st g.s2;
  let s2 = splitmix64 st in
  st := Int64.logxor !st g.s3;
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; spare = None }

(* 53-bit mantissa of the raw output, mapped to [0,1). *)
let uniform g =
  let x = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float x *. 0x1.0p-53

let float g b = uniform g *. b

let uniform_range g ~lo ~hi = lo +. (uniform g *. (hi -. lo))

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for n < 2^24,
     which is far below Monte-Carlo noise; use masked rejection anyway. *)
  let rec go () =
    let x = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
    let x = x land max_int in
    let r = x mod n in
    if x - r + (n - 1) < 0 then go () else r
  in
  go ()

let gaussian g =
  match g.spare with
  | Some v ->
    g.spare <- None;
    v
  | None ->
    let rec go () =
      let u = (2.0 *. uniform g) -. 1.0 in
      let v = (2.0 *. uniform g) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then go ()
      else begin
        let m = sqrt (-2.0 *. log s /. s) in
        g.spare <- Some (v *. m);
        u *. m
      end
    in
    go ()

let gaussian_mu_sigma g ~mu ~sigma = mu +. (sigma *. gaussian g)

let lognormal g ~mu ~sigma = exp (gaussian_mu_sigma g ~mu ~sigma)

let exponential g ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log1p (-.uniform g) /. rate

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int g (Array.length a))
