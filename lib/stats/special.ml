let sqrt2 = sqrt 2.0
let sqrt_2pi = sqrt (2.0 *. Float.pi)

(* erfc via the rational approximation of Numerical Recipes (erfccheb-like
   single formula); max relative error ~1.2e-7, adequate for quantile work
   once polished by the caller where needed. *)
let erfc x =
  let z = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t
                                                 *. (-0.82215223
                                                    +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let erf x = 1.0 -. erfc x

let normal_pdf x = exp (-0.5 *. x *. x) /. sqrt_2pi
let normal_cdf x = 0.5 *. erfc (-.x /. sqrt2)

(* Acklam's inverse normal CDF approximation followed by one Halley
   refinement step using the accurate [normal_cdf]. *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Special.normal_quantile: probability must lie in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
      +. c.(5)
      |> fun num ->
      num /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
      /. ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
         *. q
        +. c.(5))
      /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
  in
  (* One Halley step: u = (CDF(x) - p) / pdf(x). *)
  let e = normal_cdf x -. p in
  let u = e /. normal_pdf x in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

(* Lanczos approximation, g = 7, 9 coefficients. *)
let lanczos_g = 7.0

let lanczos_coeff =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec lgamma x =
  if x < 0.5 then
    (* Reflection formula. *)
    log (Float.pi /. Float.abs (sin (Float.pi *. x))) -. lgamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos_coeff.(0) in
    let t = x +. lanczos_g +. 0.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coeff.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t
    +. log !a
  end

let beta a b = exp (lgamma a +. lgamma b -. lgamma (a +. b))

(* Adaptive Simpson quadrature for Owen's T.  The integrand is smooth and
   rapidly decaying, so a modest tolerance is cheap and precise. *)
let owen_t h a =
  if a = 0.0 then 0.0
  else begin
    let h2 = h *. h in
    let f x = exp (-0.5 *. h2 *. (1.0 +. (x *. x))) /. (1.0 +. (x *. x)) in
    let simpson f a b =
      let c = 0.5 *. (a +. b) in
      (b -. a) /. 6.0 *. (f a +. (4.0 *. f c) +. f b)
    in
    let rec adapt f a b whole eps depth =
      let c = 0.5 *. (a +. b) in
      let left = simpson f a c and right = simpson f c b in
      let delta = left +. right -. whole in
      if depth <= 0 || Float.abs delta < 15.0 *. eps then
        left +. right +. (delta /. 15.0)
      else
        adapt f a c left (eps /. 2.0) (depth - 1)
        +. adapt f c b right (eps /. 2.0) (depth - 1)
    in
    let sign = if a < 0.0 then -1.0 else 1.0 in
    let a = Float.abs a in
    let whole = simpson f 0.0 a in
    sign *. adapt f 0.0 a whole 1e-12 30 /. (2.0 *. Float.pi)
  end

(* Inlined into the simulation kernels' inner loops: without flambda a
   non-inlined call boxes the float argument and result on every
   evaluation. *)
let[@inline] log1p_exp x =
  if x > 35.0 then x else if x < -35.0 then exp x else log1p (exp x)
