type backend = Mc | Antithetic | Lhs | Sobol | Pcm

let backend_name = function
  | Mc -> "mc"
  | Antithetic -> "antithetic"
  | Lhs -> "lhs"
  | Sobol -> "sobol"
  | Pcm -> "pcm"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "mc" -> Mc
  | "antithetic" | "anti" -> Antithetic
  | "lhs" -> Lhs
  | "sobol" | "qmc" -> Sobol
  | "pcm" | "collocation" -> Pcm
  | other ->
    failwith
      (Printf.sprintf
         "unknown sampling backend %S (expected mc, antithetic, lhs, sobol or \
          pcm)"
         other)

let default_backend () =
  match Sys.getenv_opt "NSIGMA_SAMPLING" with
  | None -> Mc
  | Some s -> ( try backend_of_string s with Failure _ -> Mc)

(* The Mc backend replays [Variation.draw]'s order exactly: three global
   deviates from the derived child, then the locals from [Rng.split] of
   that same child.  Keeping the split in the replay is what makes the
   vectors bitwise-equal to the legacy draws — the polar gaussian caches
   a spare deviate per stream, so the stream boundaries matter. *)
let mc_global_lead = 3

(* ------------------------------------------------------------------ *)
(* Sobol' machinery: 32-bit direction numbers.                         *)
(* ------------------------------------------------------------------ *)

let sobol_bits = 32
let mask32 = 0xFFFFFFFF
let inv_u32 = 1.0 /. 4294967296.0

(* First dimensions of the Joe–Kuo style table: (degree s, coefficient
   bits a, initial odd m_1..m_s).  Validity only requires every m_k odd
   and < 2^k (the specific values tune projection quality); dimensions
   beyond the table are generated from the primitive-polynomial sieve
   below with deterministic pseudo-random initial values. *)
let joe_kuo_rows =
  [|
    (1, 0, [| 1 |]);
    (2, 1, [| 1; 3 |]);
    (3, 1, [| 1; 3; 1 |]);
    (3, 2, [| 1; 1; 1 |]);
    (4, 1, [| 1; 1; 3; 3 |]);
    (4, 4, [| 1; 3; 5; 13 |]);
    (5, 2, [| 1; 1; 5; 5; 17 |]);
    (5, 4, [| 1; 1; 5; 5; 5 |]);
    (5, 7, [| 1; 1; 7; 11; 19 |]);
    (5, 11, [| 1; 1; 5; 1; 1 |]);
    (5, 13, [| 1; 1; 1; 3; 11 |]);
    (5, 14, [| 1; 3; 5; 5; 31 |]);
    (6, 1, [| 1; 3; 3; 9; 7; 49 |]);
    (6, 13, [| 1; 1; 1; 15; 21; 21 |]);
    (6, 16, [| 1; 3; 1; 13; 27; 49 |]);
    (6, 19, [| 1; 1; 1; 15; 7; 5 |]);
    (6, 22, [| 1; 3; 1; 15; 13; 25 |]);
    (6, 25, [| 1; 1; 5; 5; 19; 61 |]);
    (7, 1, [| 1; 3; 7; 11; 23; 15; 103 |]);
    (7, 4, [| 1; 3; 7; 13; 13; 15; 69 |]);
  |]

(* GF(2) polynomial arithmetic modulo a degree-[s] polynomial [p]
   (bit s set).  Operands stay below 2^s. *)
let gf2_mulmod a b p s =
  let r = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then r := !r lxor !a;
    b := !b lsr 1;
    a := !a lsl 1;
    if !a land (1 lsl s) <> 0 then a := !a lxor p
  done;
  !r

let gf2_pow x e p s =
  let r = ref 1 and x = ref x and e = ref e in
  while !e <> 0 do
    if !e land 1 = 1 then r := gf2_mulmod !r !x p s;
    x := gf2_mulmod !x !x p s;
    e := !e lsr 1
  done;
  !r

let distinct_prime_factors n =
  let rec go n d acc =
    if n = 1 then acc
    else if d * d > n then n :: acc
    else if n mod d = 0 then
      let rec strip n = if n mod d = 0 then strip (n / d) else n in
      go (strip n) (d + 1) (d :: acc)
    else go n (d + 1) acc
  in
  go n 2 []

(* p (degree s, constant term 1) is primitive iff x has full order
   2^s − 1 in GF(2)[x]/(p): x^(2^s−1) = 1 and x^((2^s−1)/q) ≠ 1 for
   every prime q dividing 2^s − 1.  Full order also implies p is
   irreducible, so no separate check is needed. *)
let is_primitive p s =
  let e = (1 lsl s) - 1 in
  gf2_pow 2 e p s = 1
  && List.for_all (fun q -> gf2_pow 2 (e / q) p s <> 1) (distinct_prime_factors e)

(* The [idx]-th primitive polynomial (0-based) in (degree, value)
   ascending order, as (s, a) with a the inner coefficient bits.
   Polynomials are cheap to re-sieve, so no cache — [create] stays free
   of global mutable state and is safe on any domain. *)
let nth_primitive idx =
  let count = ref 0 and result = ref None and s = ref 1 in
  while !result = None do
    let lo = (1 lsl !s) + 1 and hi = (1 lsl (!s + 1)) - 1 in
    let c = ref lo in
    while !result = None && !c <= hi do
      if is_primitive !c !s then begin
        if !count = idx then result := Some (!s, (!c lsr 1) land ((1 lsl (!s - 1)) - 1));
        incr count
      end;
      c := !c + 2
    done;
    incr s;
    if !s > 24 then failwith "Sampler: primitive-polynomial sieve exhausted"
  done;
  Option.get !result

(* Direction integers v_1..v_32 (bit 31 = first output bit) from a
   degree-[s] recurrence with coefficient bits [a] and initial values
   [m_init].  m_k = 2a_1 m_{k−1} ⊕ … ⊕ 2^{s−1} a_{s−1} m_{k−s+1}
               ⊕ 2^s m_{k−s} ⊕ m_{k−s}. *)
let directions ~s ~a ~m_init =
  let m = Array.make (sobol_bits + 1) 0 in
  Array.blit m_init 0 m 1 (min s sobol_bits);
  for k = s + 1 to sobol_bits do
    let x = ref (m.(k - s) lxor (m.(k - s) lsl s)) in
    for t = 1 to s - 1 do
      if (a lsr (s - 1 - t)) land 1 = 1 then x := !x lxor (m.(k - t) lsl t)
    done;
    m.(k) <- !x
  done;
  Array.init sobol_bits (fun i -> (m.(i + 1) lsl (sobol_bits - i - 1)) land mask32)

(* Dimension 0 is the van der Corput sequence: m_k = 1 for all k. *)
let vdc_directions =
  Array.init sobol_bits (fun i -> 1 lsl (sobol_bits - i - 1))

let directions_for base ~dim_index:j =
  if j = 0 then vdc_directions
  else if j - 1 < Array.length joe_kuo_rows then
    let s, a, m_init = joe_kuo_rows.(j - 1) in
    directions ~s ~a ~m_init
  else begin
    let s, a = nth_primitive (j - 1) in
    let r = Rng.derive base ~index:(1_000_003 + j) in
    (* Any odd m_k < 2^k is a valid initial value. *)
    let m_init = Array.init s (fun k -> 1 + (2 * Rng.int r (1 lsl k))) in
    directions ~s ~a ~m_init
  end

(* x_i = ⊕ {v_{k+1} : bit k of gray(i) set} — random access, no
   sequential state, so any executor schedule sees the same points. *)
let sobol_int dirs gray =
  let x = ref 0 and g = ref gray and k = ref 0 in
  while !g <> 0 do
    if !g land 1 = 1 then x := !x lxor dirs.(!k);
    g := !g lsr 1;
    incr k
  done;
  !x

let sobol_raw_u01 ~dim ~index =
  if dim < 0 || dim > Array.length joe_kuo_rows then
    invalid_arg "Sampler.sobol_raw_u01: dimension outside the embedded table";
  if index < 0 then invalid_arg "Sampler.sobol_raw_u01: negative index";
  let dirs =
    if dim = 0 then vdc_directions
    else
      let s, a, m_init = joe_kuo_rows.(dim - 1) in
      directions ~s ~a ~m_init
  in
  (float_of_int (sobol_int dirs (index lxor (index lsr 1))) +. 0.5) *. inv_u32

(* ------------------------------------------------------------------ *)
(* Owen-style scrambling.                                              *)
(* ------------------------------------------------------------------ *)

let rev32 x =
  let x = ((x land 0x55555555) lsl 1) lor ((x lsr 1) land 0x55555555) in
  let x = ((x land 0x33333333) lsl 2) lor ((x lsr 2) land 0x33333333) in
  let x = ((x land 0x0F0F0F0F) lsl 4) lor ((x lsr 4) land 0x0F0F0F0F) in
  let x = ((x land 0x00FF00FF) lsl 8) lor ((x lsr 8) land 0x00FF00FF) in
  ((x land 0xFFFF) lsl 16) lor ((x lsr 16) land 0xFFFF)

(* Laine–Karras style hash in bit-reversed space.  Every operation makes
   output bit i depend only on input bits ≤ i (addition carries and
   multiplies by even constants only propagate upward) and flip bit i by
   a function of the bits below it — i.e. back in normal bit order it is
   a nested dyadic-interval permutation, exactly Owen's scramble with
   hash-derived flips.  test_sampler verifies the net-preserving
   property empirically. *)
let lk_hash x seed =
  let x = (x + seed) land mask32 in
  let x = x lxor ((x * 0x6c50b47c) land mask32) in
  let x = x lxor ((x * 0xb82f1e52) land mask32) in
  let x = x lxor ((x * 0xc7afe638) land mask32) in
  let x = x lxor ((x * 0x8d22f6e6) land mask32) in
  x

let owen_scramble ~seed x = rev32 (lk_hash (rev32 x) seed)

(* ------------------------------------------------------------------ *)
(* Streams.                                                            *)
(* ------------------------------------------------------------------ *)

type state =
  | S_gaussian of Rng.t  (* Mc and Antithetic: base for per-index derive *)
  | S_lhs of { jitter : Rng.t; perms : int array array }
  | S_sobol of { dirs : int array array; seeds : int array }

type t = { backend : backend; dim : int; n : int; state : state }

let backend_of t = t.backend
let dim t = t.dim
let population t = t.n

let create backend g ~dim ~n =
  if dim <= 0 then invalid_arg "Sampler.create: dim must be positive";
  if n <= 0 then invalid_arg "Sampler.create: n must be positive";
  let state =
    match backend with
    | Mc | Antithetic | Pcm ->
      (* Distinct purpose-index so the per-sample children coincide with
         the legacy [Rng.derive base ~index:i] children: the stream base
         IS the caller's state, untouched.  Pcm surrogate evaluation
         consumes plain-Mc deviate vectors — the surrogate replaces the
         kernel, not the sampling distribution. *)
      S_gaussian (Rng.copy g)
    | Lhs ->
      let perms =
        Array.init dim (fun j ->
            let r = Rng.derive g ~index:(2_000_003 + j) in
            let p = Array.init n Fun.id in
            Rng.shuffle r p;
            p)
      in
      S_lhs { jitter = Rng.derive g ~index:3_000_017; perms }
    | Sobol ->
      let dirs = Array.init dim (fun j -> directions_for g ~dim_index:j) in
      let seeds =
        Array.init dim (fun j ->
            let r = Rng.derive g ~index:(4_000_037 + j) in
            Int64.to_int (Rng.bits64 r) land mask32)
      in
      S_sobol { dirs; seeds }
  in
  { backend; dim; n; state }

let check_fill t ~index z =
  if index < 0 then invalid_arg "Sampler.fill: negative index";
  if Array.length z < t.dim then
    invalid_arg "Sampler.fill: output buffer shorter than dim";
  match t.state with
  | S_lhs _ when index >= t.n ->
    invalid_arg "Sampler.fill: index beyond the Lhs population"
  | _ -> ()

(* The legacy draw order: globals from the derived child, locals from
   its split — see [mc_global_lead].  [Variation.draw] consumes the
   globals as dbeta, dvth_p, dvth_n while the canonical deviate layout
   is z.(0) = dvth_n, z.(1) = dvth_p, z.(2) = dbeta, so the lead draws
   are written back to front. *)
let fill_mc base ~index ~dim z =
  let g = Rng.derive base ~index in
  let lead = min dim mc_global_lead in
  for k = lead - 1 downto 0 do
    z.(k) <- Rng.gaussian g
  done;
  if dim > lead then begin
    let locals = Rng.split g in
    for k = lead to dim - 1 do
      z.(k) <- Rng.gaussian locals
    done
  end

let clamp_u u = if u < 1e-300 then 1e-300 else u

let fill t ~index z =
  check_fill t ~index z;
  match t.state with
  | S_gaussian base ->
    if t.backend = Antithetic then begin
      (* Antithetic pair (2k, 2k+1): the pair shares the deviates of
         plain-Mc index k; the odd member is the exact negation. *)
      fill_mc base ~index:(index / 2) ~dim:t.dim z;
      if index land 1 = 1 then
        for k = 0 to t.dim - 1 do
          z.(k) <- -.z.(k)
        done
    end
    else (* Mc and Pcm *) fill_mc base ~index ~dim:t.dim z
  | S_lhs { jitter; perms } ->
    let c = Rng.derive jitter ~index in
    let nf = float_of_int t.n in
    for j = 0 to t.dim - 1 do
      let u = (float_of_int perms.(j).(index) +. Rng.uniform c) /. nf in
      z.(j) <- Special.normal_quantile (clamp_u u)
    done
  | S_sobol { dirs; seeds } ->
    let gray = index lxor (index lsr 1) in
    for j = 0 to t.dim - 1 do
      let x = owen_scramble ~seed:seeds.(j) (sobol_int dirs.(j) gray) in
      z.(j) <- Special.normal_quantile ((float_of_int x +. 0.5) *. inv_u32)
    done

(* ------------------------------------------------------------------ *)
(* Probabilistic collocation (second-order Hermite surrogate).         *)
(* ------------------------------------------------------------------ *)

(* Per arXiv:0710.4634: simulate the kernel only at the roots of the
   next-higher-order Hermite polynomial and fit a low-order
   polynomial-chaos expansion; every further sample evaluates the
   surrogate.  With a second-order expansion over He-basis
   {1, z_j, z_j²−1, z_j·z_k} the collocation points are the order-3
   Gauss–Hermite nodes {0, ±√3}: the origin, two single-axis points per
   dimension and four corner points per dimension pair —
   1 + 2d + 2d(d−1) = O(d²) kernel calls, against thousands of plain-MC
   evaluations.  The symmetric point set makes each coefficient a
   closed-form finite difference (no least-squares solve), exact for any
   quadratic in z (asserted by test_sampler). *)
module Pcm = struct
  (* The positive probabilists' node: root of He₃(z) = z³ − 3z, i.e.
     z = √3.  Found from the same orthonormal-Hermite recurrence that
     generates Stat_max's quadrature rule (physicists' x, z = √2·x),
     bisected exactly like [gh_nodes]' root scan. *)
  let node =
    let f x = Stat_max.hermite_orthonormal 3 x in
    (* Physicists' root √(3/2) ≈ 1.2247 lies in [1.0, 1.5]. *)
    let lo = ref 1.0 and hi = ref 1.5 in
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi) in
      if f !lo *. f mid <= 0.0 then hi := mid else lo := mid
    done;
    sqrt 2.0 *. (0.5 *. (!lo +. !hi))

  let n_points ~dim =
    if dim <= 0 then invalid_arg "Sampler.Pcm.n_points: dim must be positive";
    1 + (2 * dim) + (2 * dim * (dim - 1))

  (* Deterministic point ordering: origin; then per dimension j the
     single-axis pair (+node·e_j, −node·e_j); then per pair j < k (in
     (0,1), (0,2), …, (1,2), … order) the four corners (+,+), (+,−),
     (−,+), (−,−). *)
  let fill_point ~dim p z =
    let m = n_points ~dim in
    if p < 0 || p >= m then
      invalid_arg "Sampler.Pcm.fill_point: point index out of range";
    if Array.length z < dim then
      invalid_arg "Sampler.Pcm.fill_point: buffer shorter than dim";
    Array.fill z 0 dim 0.0;
    if p = 0 then ()
    else if p <= 2 * dim then begin
      let j = (p - 1) / 2 in
      z.(j) <- (if (p - 1) land 1 = 0 then node else -.node)
    end
    else begin
      let q = p - 1 - (2 * dim) in
      let pair = q / 4 and corner = q mod 4 in
      let j = ref 0 and rem = ref pair in
      while !rem >= dim - 1 - !j do
        rem := !rem - (dim - 1 - !j);
        incr j
      done;
      let k = !j + 1 + !rem in
      z.(!j) <- (if corner land 2 = 0 then node else -.node);
      z.(k) <- (if corner land 1 = 0 then node else -.node)
    end

  type surrogate = {
    s_dim : int;
    c0 : float;  (* constant term = surrogate mean *)
    a : float array;  (* linear (He₁) coefficients *)
    b : float array;  (* quadratic (He₂) coefficients *)
    cross : float array;  (* pairwise z_j·z_k coefficients, packed j < k *)
  }

  let fit ~dim ~values =
    let m = n_points ~dim in
    if Array.length values <> m then
      invalid_arg "Sampler.Pcm.fit: wrong number of collocation values";
    let f0 = values.(0) in
    let node2 = node *. node in
    let a = Array.make dim 0.0 and b = Array.make dim 0.0 in
    for j = 0 to dim - 1 do
      let fp = values.(1 + (2 * j)) and fm = values.(2 + (2 * j)) in
      a.(j) <- (fp -. fm) /. (2.0 *. node);
      b.(j) <- (fp +. fm -. (2.0 *. f0)) /. (2.0 *. node2)
    done;
    let npairs = dim * (dim - 1) / 2 in
    let cross = Array.make (max npairs 1) 0.0 in
    let base = 1 + (2 * dim) in
    for p = 0 to npairs - 1 do
      let fpp = values.(base + (4 * p))
      and fpm = values.(base + (4 * p) + 1)
      and fmp = values.(base + (4 * p) + 2)
      and fmm = values.(base + (4 * p) + 3) in
      cross.(p) <- (fpp +. fmm -. fpm -. fmp) /. (4.0 *. node2)
    done;
    (* F(0) = c0 − Σb_j (every He₂ is −1 at the origin). *)
    let sum_b = ref 0.0 in
    for j = 0 to dim - 1 do
      sum_b := !sum_b +. b.(j)
    done;
    { s_dim = dim; c0 = f0 +. !sum_b; a; b; cross }

  let dim_of s = s.s_dim
  let mean s = s.c0

  let eval s z =
    if Array.length z < s.s_dim then
      invalid_arg "Sampler.Pcm.eval: buffer shorter than dim";
    let acc = ref s.c0 in
    for j = 0 to s.s_dim - 1 do
      let zj = z.(j) in
      acc := !acc +. (s.a.(j) *. zj) +. (s.b.(j) *. ((zj *. zj) -. 1.0))
    done;
    let p = ref 0 in
    for j = 0 to s.s_dim - 2 do
      for k = j + 1 to s.s_dim - 1 do
        acc := !acc +. (s.cross.(!p) *. z.(j) *. z.(k));
        incr p
      done
    done;
    !acc
end

let fill_uniform t ~index z =
  check_fill t ~index z;
  match t.state with
  | S_gaussian _ ->
    fill t ~index z;
    for k = 0 to t.dim - 1 do
      z.(k) <- Special.normal_cdf z.(k)
    done
  | S_lhs { jitter; perms } ->
    let c = Rng.derive jitter ~index in
    let nf = float_of_int t.n in
    for j = 0 to t.dim - 1 do
      z.(j) <- (float_of_int perms.(j).(index) +. Rng.uniform c) /. nf
    done
  | S_sobol { dirs; seeds } ->
    let gray = index lxor (index lsr 1) in
    for j = 0 to t.dim - 1 do
      let x = owen_scramble ~seed:seeds.(j) (sobol_int dirs.(j) gray) in
      z.(j) <- (float_of_int x +. 0.5) *. inv_u32
    done
