(* Interpolation convention (central to every quantile in the library):
   type-7 — h = (n−1)p, linear interpolation between the floor(h)-th and
   ceil(h)-th order statistics.  The R/NumPy default; all call sites go
   through [of_sorted] so the convention lives in exactly one place. *)

let check_p ~who p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (who ^ ": probability outside [0,1]")

let of_sorted xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Quantile.of_sorted: empty sample";
  check_p ~who:"Quantile.of_sorted" p;
  if n = 1 then xs.(0)
  else begin
    let h = float_of_int (n - 1) *. p in
    let lo = int_of_float (Float.floor h) in
    (* Clamp: p = 1.0 can give lo = n−1 exactly; rounding guards. *)
    let lo = max 0 (min (n - 1) lo) in
    let hi = min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))
  end

let of_sorted_opt xs p =
  if Array.length xs = 0 then None else Some (of_sorted xs p)

let of_sample xs p =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  of_sorted copy p

let many_of_sample xs ps =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  List.map (fun p -> (p, of_sorted copy p)) ps

(* Distribution-free order-statistic confidence interval for the
   p-quantile: the number of sample points below the true quantile is
   Binomial(n, p), so order statistics at np ± z√(np(1−p)) bracket it
   with ≈[confidence] probability (normal approximation; indices are
   clamped to the sample, which makes the interval conservative at the
   extremes — the usual behaviour for ±3σ tails of moderate n). *)
let ci ?(confidence = 0.95) xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Quantile.ci: empty sample";
  check_p ~who:"Quantile.ci" p;
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Quantile.ci: confidence outside (0,1)";
  if n = 1 then (xs.(0), xs.(0))
  else begin
    let z = Special.normal_quantile (0.5 +. (confidence /. 2.0)) in
    let np = float_of_int n *. p in
    let hw = z *. sqrt (float_of_int n *. p *. (1.0 -. p)) in
    let clamp i = max 0 (min (n - 1) i) in
    let lo = clamp (int_of_float (Float.floor (np -. hw))) in
    let hi = clamp (int_of_float (Float.ceil (np +. hw))) in
    (xs.(lo), xs.(hi))
  end

let sigma_levels = [ -3; -2; -1; 0; 1; 2; 3 ]

let probability_of_sigma n = Special.normal_cdf n
let sigma_of_probability p = Special.normal_quantile p

let empirical_sigma_level xs n =
  of_sample xs (probability_of_sigma (float_of_int n))
