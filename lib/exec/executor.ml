module Log = Nsigma_obs.Log
module Metrics = Nsigma_obs.Metrics
module Trace = Nsigma_obs.Trace

(* Registered up front so run reports always carry the executor keys,
   zero-valued when no pool ever ran. *)
let m_pool_runs = Metrics.counter "exec.pool.runs"
let m_pool_tasks = Metrics.counter "exec.pool.tasks"
let m_pool_fetches = Metrics.counter "exec.pool.fetches"
let m_seq_tasks = Metrics.counter "exec.seq.tasks"
let t_worker_busy = Metrics.timer "exec.worker.busy"
let t_worker_idle = Metrics.timer "exec.worker.idle"
let t_pool_wall = Metrics.timer "exec.pool.wall"
let t_pool_capacity = Metrics.timer "exec.pool.capacity"
let g_tasks_max = Metrics.gauge "exec.worker.tasks.max"

(* Trace tracks: one [exec.pool] span on the calling domain per pool
   run; on each worker domain an [exec.worker] span covering its whole
   lifetime, with one [exec.task] span per fetched range.  [wait_us]
   on a task is the gap since the worker finished its previous range —
   queue-wait plus claim latency — so idle gaps are visible per task
   without comparing tracks by eye. *)
let st_pool = Trace.span_type ~cat:"exec" ~args:[ "jobs"; "n"; "chunk" ] "exec.pool"
let st_worker = Trace.span_type ~cat:"exec" "exec.worker"
let st_task = Trace.span_type ~cat:"exec" ~args:[ "start"; "n"; "wait_us" ] "exec.task"

type t = Sequential | Pool of { jobs : int }

let env_jobs () =
  match Sys.getenv_opt "NSIGMA_JOBS" with
  | None -> None
  | Some s -> ( try Some (int_of_string (String.trim s)) with _ -> None)

let auto_jobs () = max 1 (Domain.recommended_domain_count ())

(* With OCaml 5's stop-the-world minor GC, more domains than cores is a
   slowdown, never a speedup (BENCH_exec.json).  Requests above the
   recommended count are clamped; the warning fires once per process so
   batch sweeps don't flood stderr (and NSIGMA_LOG=quiet drops it). *)
let oversubscription_warned = Atomic.make false

let clamp_jobs jobs =
  let cores = auto_jobs () in
  if jobs > cores then begin
    if not (Atomic.exchange oversubscription_warned true) then
      Log.warn
        "%d worker domains requested but only %d available core(s); clamping \
         to %d (oversubscribing OCaml 5 domains degrades throughput)"
        jobs cores cores;
    cores
  end
  else jobs

let of_jobs jobs =
  if jobs <= 1 then Sequential
  else
    let jobs = clamp_jobs jobs in
    if jobs <= 1 then Sequential else Pool { jobs }

let sequential = Sequential

let domain_pool ?jobs () =
  let jobs =
    match jobs with
    | Some j when j > 0 -> j
    | Some _ -> auto_jobs ()
    | None -> (
      match env_jobs () with
      | Some j when j > 0 -> j
      | Some _ (* 0 or negative: auto *) -> auto_jobs ()
      | None -> auto_jobs ())
  in
  of_jobs jobs

let default () =
  match env_jobs () with
  | None -> Sequential
  | Some j when j = 0 -> of_jobs (auto_jobs ())
  | Some j -> of_jobs j

let jobs = function Sequential -> 1 | Pool { jobs } -> jobs

(* The pool is a work-stealing-free shared queue: an atomic cursor over
   [0, n).  Workers claim [chunk] indices per fetch and write results
   into distinct slots of a shared array, which is race-free because no
   two workers ever hold the same index.  The first exception is stored
   and drains the queue so every worker exits; it is re-raised with its
   original backtrace after the join.

   Instrumentation (per-worker busy/idle time, task and fetch counts)
   is measured inside each worker on locals and published to the
   metrics registry only after the join, on the calling domain: the
   hot claim/execute loop shares no metric state between workers, and
   when metrics and tracing are disabled the only cost is two atomic
   loads at run start.  Trace spans append to buffers private to each
   worker domain.  Neither touches task values or the RNG discipline,
   so the bit-identical invariant is unaffected. *)
let pool_exec ~jobs ~chunk ~n ~init ~run_range =
  let cursor = Atomic.make 0 in
  let failure = Atomic.make None in
  let measuring = Metrics.enabled () in
  let tracing = Trace.enabled () in
  let timed = measuring || tracing in
  let t_run0 = if measuring then Metrics.now () else 0.0 in
  let worker () =
    let t_start = if timed then Metrics.now () else 0.0 in
    if tracing then Trace.begin_span st_worker ();
    (* Per-worker scratch: allocated once on the worker domain, never
       shared, so plan fills can mutate it without synchronisation. *)
    let scratch = init () in
    let busy = ref 0.0 and tasks = ref 0 and fetches = ref 0 in
    let last_done = ref t_start in
    let running = ref true in
    while !running do
      let start = Atomic.fetch_and_add cursor chunk in
      if start >= n || Atomic.get failure <> None then running := false
      else begin
        incr fetches;
        let stop = min n (start + chunk) in
        let t0 = if timed then Metrics.now () else 0.0 in
        if tracing then
          Trace.begin_span st_task ~a:(float_of_int start)
            ~b:(float_of_int (stop - start))
            ~c:(1e6 *. Float.max 0.0 (t0 -. !last_done))
            ();
        (try
           run_range scratch start stop;
           tasks := !tasks + (stop - start)
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set failure None (Some (e, bt)));
           running := false);
        if timed then begin
          let t1 = Metrics.now () in
          busy := !busy +. (t1 -. t0);
          last_done := t1
        end;
        if tracing then Trace.end_span st_task
      end
    done;
    if tracing then Trace.end_span st_worker;
    let wall = if timed then Metrics.now () -. t_start else 0.0 in
    (!busy, wall, !tasks, !fetches)
  in
  if tracing then
    Trace.begin_span st_pool ~a:(float_of_int jobs) ~b:(float_of_int n)
      ~c:(float_of_int chunk) ();
  let workers = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
  let stats = List.map Domain.join workers in
  if measuring then begin
    let wall_run = Metrics.now () -. t_run0 in
    Metrics.incr m_pool_runs;
    Metrics.add_time t_pool_wall wall_run;
    Metrics.add_time t_pool_capacity
      (wall_run *. float_of_int (List.length stats));
    List.iter
      (fun (busy, wall, tasks, fetches) ->
        Metrics.add_time t_worker_busy busy;
        Metrics.add_time t_worker_idle (Float.max 0.0 (wall -. busy));
        Metrics.incr m_pool_tasks ~by:tasks;
        Metrics.incr m_pool_fetches ~by:fetches;
        Metrics.max_gauge g_tasks_max (float_of_int tasks))
      stats
  end;
  if tracing then Trace.end_span st_pool;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let pool_run ~jobs ~chunk ~n f =
  let results = Array.make n None in
  pool_exec ~jobs ~chunk ~n
    ~init:(fun () -> ())
    ~run_range:(fun () start stop ->
      for i = start to stop - 1 do
        results.(i) <- Some (f i)
      done);
  Array.map (function Some v -> v | None -> assert false) results

let run t ~chunk f ~n =
  if n < 0 then invalid_arg "Executor: n must be non-negative";
  match t with
  | Sequential ->
    Metrics.incr m_seq_tasks ~by:n;
    Array.init n f
  | Pool { jobs } -> pool_run ~jobs ~chunk ~n f

let map_array t f ~n = run t ~chunk:1 f ~n

let map_scratch t ~init f ~n =
  if n < 0 then invalid_arg "Executor: n must be non-negative";
  match t with
  | Sequential ->
    Metrics.incr m_seq_tasks ~by:n;
    let scratch = init () in
    Array.init n (f scratch)
  | Pool { jobs } ->
    let results = Array.make n None in
    pool_exec ~jobs ~chunk:1 ~n ~init
      ~run_range:(fun scratch start stop ->
        for i = start to stop - 1 do
          results.(i) <- Some (f scratch i)
        done);
    Array.map (function Some v -> v | None -> assert false) results

let map_float_range t ~init f ~out ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Executor.map_float_range: bad range";
  if Array.length out < hi then
    invalid_arg "Executor.map_float_range: output buffer shorter than hi";
  let n = hi - lo in
  match t with
  | Sequential ->
    Metrics.incr m_seq_tasks ~by:n;
    let scratch = init () in
    for i = lo to hi - 1 do
      out.(i) <- f scratch i
    done
  | Pool { jobs } ->
    (* The cursor runs over [0, hi−lo); tasks shift by [lo] so batched
       callers (adaptive sampling) keep the index = sample identity. *)
    pool_exec ~jobs ~chunk:1 ~n ~init
      ~run_range:(fun scratch start stop ->
        for k = start to stop - 1 do
          let i = lo + k in
          out.(i) <- f scratch i
        done)

let map_float_into t ~init f ~out ~n =
  if n < 0 then invalid_arg "Executor: n must be non-negative";
  if Array.length out < n then
    invalid_arg "Executor.map_float_into: output buffer shorter than n";
  map_float_range t ~init f ~out ~lo:0 ~hi:n

let map_float_array t ~init f ~n =
  let out = Array.make n Float.nan in
  map_float_into t ~init f ~out ~n;
  out

let map_ranges t ~chunk ~init f ~n =
  if n < 0 then invalid_arg "Executor: n must be non-negative";
  if chunk <= 0 then invalid_arg "Executor.map_ranges: chunk must be positive";
  match t with
  | Sequential ->
    Metrics.incr m_seq_tasks ~by:n;
    let scratch = init () in
    let lo = ref 0 in
    while !lo < n do
      let hi = min n (!lo + chunk) in
      f scratch ~lo:!lo ~hi;
      lo := hi
    done
  | Pool { jobs } ->
    (* pool_exec claims whole [chunk]-aligned ranges off the cursor, so
       the partition is exactly the sequential one — only ownership and
       completion order differ, which the index discipline makes
       invisible. *)
    pool_exec ~jobs ~chunk ~n ~init ~run_range:(fun scratch start stop ->
        f scratch ~lo:start ~hi:stop)

let map_chunked t ?chunk f ~n =
  let chunk =
    match chunk with
    | Some c when c > 0 -> c
    | Some _ -> invalid_arg "Executor.map_chunked: chunk must be positive"
    | None -> max 1 (n / (8 * jobs t))
  in
  run t ~chunk f ~n
