type t = Sequential | Pool of { jobs : int }

let env_jobs () =
  match Sys.getenv_opt "NSIGMA_JOBS" with
  | None -> None
  | Some s -> ( try Some (int_of_string (String.trim s)) with _ -> None)

let auto_jobs () = max 1 (Domain.recommended_domain_count ())

(* With OCaml 5's stop-the-world minor GC, more domains than cores is a
   slowdown, never a speedup (BENCH_exec.json).  Requests above the
   recommended count are clamped; the warning fires once per process so
   batch sweeps don't flood stderr. *)
let oversubscription_warned = Atomic.make false

let clamp_jobs jobs =
  let cores = auto_jobs () in
  if jobs > cores then begin
    if not (Atomic.exchange oversubscription_warned true) then
      Printf.eprintf
        "nsigma: %d worker domains requested but only %d available core(s); \
         clamping to %d (oversubscribing OCaml 5 domains degrades \
         throughput)\n%!"
        jobs cores cores;
    cores
  end
  else jobs

let of_jobs jobs =
  if jobs <= 1 then Sequential
  else
    let jobs = clamp_jobs jobs in
    if jobs <= 1 then Sequential else Pool { jobs }

let sequential = Sequential

let domain_pool ?jobs () =
  let jobs =
    match jobs with
    | Some j when j > 0 -> j
    | Some _ -> auto_jobs ()
    | None -> (
      match env_jobs () with
      | Some j when j > 0 -> j
      | Some _ (* 0 or negative: auto *) -> auto_jobs ()
      | None -> auto_jobs ())
  in
  of_jobs jobs

let default () =
  match env_jobs () with
  | None -> Sequential
  | Some j when j = 0 -> of_jobs (auto_jobs ())
  | Some j -> of_jobs j

let jobs = function Sequential -> 1 | Pool { jobs } -> jobs

(* The pool is a work-stealing-free shared queue: an atomic cursor over
   [0, n).  Workers claim [chunk] indices per fetch and write results
   into distinct slots of a shared array, which is race-free because no
   two workers ever hold the same index.  The first exception is stored
   and drains the queue so every worker exits; it is re-raised with its
   original backtrace after the join. *)
let pool_run ~jobs ~chunk ~n f =
  let results = Array.make n None in
  let cursor = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    let running = ref true in
    while !running do
      let start = Atomic.fetch_and_add cursor chunk in
      if start >= n || Atomic.get failure <> None then running := false
      else
        let stop = min n (start + chunk) in
        try
          for i = start to stop - 1 do
            results.(i) <- Some (f i)
          done
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failure None (Some (e, bt)));
          running := false
    done
  in
  let workers = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
  List.iter Domain.join workers;
  (match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let run t ~chunk f ~n =
  if n < 0 then invalid_arg "Executor: n must be non-negative";
  match t with
  | Sequential -> Array.init n f
  | Pool { jobs } -> pool_run ~jobs ~chunk ~n f

let map_array t f ~n = run t ~chunk:1 f ~n

let map_chunked t ?chunk f ~n =
  let chunk =
    match chunk with
    | Some c when c > 0 -> c
    | Some _ -> invalid_arg "Executor.map_chunked: chunk must be positive"
    | None -> max 1 (n / (8 * jobs t))
  in
  run t ~chunk f ~n
