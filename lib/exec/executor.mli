(** Deterministic work scheduling for Monte-Carlo sampling.

    Every sampling loop in the library routes through an executor: a value
    of type [t] that maps an index-addressed task set to an array of
    results.  Two interchangeable backends are provided — a sequential
    reference backend and a pool of OCaml 5 domains — with the invariant
    that they produce *bit-identical* results for the same task function.

    The invariant holds because of the RNG discipline enforced at call
    sites: each work item derives its own generator from the item index
    ({!Nsigma_stats.Rng.derive}) instead of threading one mutable
    generator through the loop, so the value of item [i] is a pure
    function of [i] and no scheduling order can perturb it.  New sampling
    code must follow the same discipline.

    Both backends publish telemetry to {!Nsigma_obs.Metrics} when the
    registry is enabled — task/fetch counts, per-worker busy and idle
    time, pool wall time and capacity (from which run reports derive
    worker utilization).  Measurement happens on worker-local state and
    is published after the join, so it adds no contention and cannot
    perturb results; when metrics are disabled the overhead is one
    atomic load per run. *)

type t
(** An execution backend.  Immutable and reusable across calls. *)

val sequential : t
(** Runs every task in submission order on the calling domain.  The
    reference backend: all other backends must match its output. *)

val domain_pool : ?jobs:int -> unit -> t
(** A fixed-size pool of worker domains pulling indices from a shared
    work queue.  [jobs] is the number of workers: omitted, it is taken
    from the [NSIGMA_JOBS] environment variable, falling back to
    [Domain.recommended_domain_count ()]; [jobs <= 0] also means
    auto-detect; [jobs = 1] degrades to {!sequential}.  Requests above
    [Domain.recommended_domain_count ()] are clamped to it (with a
    once-per-process {!Nsigma_obs.Log.warn}, silenced by
    [NSIGMA_LOG=quiet]): OCaml 5's stop-the-world minor
    GC makes oversubscription a slowdown, never a speedup.  Results are
    unaffected — every backend and pool size is bit-identical. *)

val default : unit -> t
(** The backend selected by the environment: [NSIGMA_JOBS] unset or [1]
    gives {!sequential}; [NSIGMA_JOBS = n > 1] gives a pool of [n]
    workers (clamped to the core count, as with {!domain_pool});
    [NSIGMA_JOBS = 0] auto-detects the core count.  Read at
    call time, so a CLI [--jobs] flag can install itself by setting the
    variable before sampling starts. *)

val jobs : t -> int
(** Number of workers the backend will use ([1] for {!sequential}). *)

val map_array : t -> (int -> 'a) -> n:int -> 'a array
(** [map_array exec f ~n] is [[| f 0; f 1; ...; f (n-1) |]].  Tasks are
    claimed one index at a time, which load-balances well when each task
    is heavy (a transient simulation, a full Monte-Carlo study).  Any
    exception raised by [f] stops the remaining work and is re-raised on
    the calling domain with its backtrace — workers never deadlock on a
    failed task. *)

val map_chunked : t -> ?chunk:int -> (int -> 'a) -> n:int -> 'a array
(** Like {!map_array} but workers claim [chunk] consecutive indices per
    queue round-trip, amortising dispatch for large populations of cheap
    tasks.  [chunk] defaults to [n / (8 * jobs)] (at least 1).  Output is
    identical to {!map_array}. *)

(** {1 Scratch-carrying maps (plan layer)}

    The per-sample fill of a precompiled sampling plan needs mutable
    scratch (an {!Nsigma_spice.Arc.skeleton}, preallocated RC buffers)
    that must not be shared between domains.  [init] builds that scratch:
    it is called once on the calling domain for {!sequential} and once
    per worker domain for a pool, before any task runs.  [f scratch i]
    must derive everything sample-dependent from [i] alone (the usual RNG
    discipline) and fully overwrite whatever scratch state it reads —
    then results stay bit-identical across backends and pool sizes even
    though scratch instances are reused across samples. *)

val map_scratch : t -> init:(unit -> 's) -> ('s -> int -> 'a) -> n:int -> 'a array
(** {!map_array} with per-worker scratch. *)

val map_float_into :
  t -> init:(unit -> 's) -> ('s -> int -> float) -> out:float array -> n:int -> unit
(** Write [f scratch i] into [out.(i)] for [i < n] — results land
    directly in the unboxed float array, with no intermediate [option]
    boxing (callers use a NaN sentinel for failed samples).
    @raise Invalid_argument if [out] is shorter than [n]. *)

val map_float_array :
  t -> init:(unit -> 's) -> ('s -> int -> float) -> n:int -> float array
(** {!map_float_into} into a fresh NaN-filled array of length [n]. *)

val map_float_range :
  t ->
  init:(unit -> 's) ->
  ('s -> int -> float) ->
  out:float array ->
  lo:int ->
  hi:int ->
  unit
(** Write [f scratch i] into [out.(i)] for [lo <= i < hi] — the batched
    form behind adaptive sampling: successive batches extend the same
    output buffer, and because [f] derives everything from the absolute
    index [i], a population stopped early is a bitwise prefix of the full
    run.  [init] runs once per worker per call (per batch).
    @raise Invalid_argument on a bad range or an [out] shorter than
    [hi]. *)

val map_ranges :
  t ->
  chunk:int ->
  init:(unit -> 's) ->
  ('s -> lo:int -> hi:int -> unit) ->
  n:int ->
  unit
(** Hand whole index ranges to the task instead of single indices:
    [f scratch ~lo ~hi] processes [lo <= i < hi] itself, writing results
    wherever it pleases (typically into caller-owned arrays indexed by
    the absolute sample index).  This is the seam the SoA batch kernel
    runs on — each range is loaded into one batch and evaluated with
    fused per-stage loops.  The range partition is the same
    [chunk]-aligned one for every backend ([lo] always a multiple of
    [chunk]), so per-sample results are independent of the backend and
    pool size; workers claim one range per queue fetch.
    @raise Invalid_argument if [chunk <= 0] or [n < 0]. *)
