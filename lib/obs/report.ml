let schema = "nsigma-run-report"
let schema_version = 1

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x = if Float.is_finite x then Printf.sprintf "%.9g" x else "null"

(* Free-form run context (e.g. the sampling backend and tolerance the
   CLI ran with): string key/value pairs carried verbatim into the
   report.  Guarded by a mutex like the metrics registry so worker
   domains may set context too. *)
let context_lock = Mutex.create ()
let context : (string * string) list ref = ref []

let set_context k v =
  Mutex.protect context_lock (fun () ->
      context := (k, v) :: List.remove_assoc k !context)

let get_context () =
  Mutex.protect context_lock (fun () ->
      List.sort (fun (a, _) (b, _) -> String.compare a b) !context)

(* Utilization of the domain pools: fraction of worker wall-time spent
   inside tasks, over every pool run of the process. *)
let utilization (snap : Metrics.snapshot) =
  match
    ( List.assoc_opt "exec.worker.busy" snap.Metrics.s_timers,
      List.assoc_opt "exec.pool.capacity" snap.Metrics.s_timers )
  with
  | Some (_, busy), Some (_, capacity) when capacity > 0.0 ->
    Some (busy /. capacity)
  | _ -> None

let to_json ?(elapsed = 0.0) () =
  let snap = Metrics.snapshot () in
  let b = Buffer.create 4096 in
  let field_sep = ref "" in
  let add fmt =
    Buffer.add_string b !field_sep;
    field_sep := ",\n  ";
    Printf.ksprintf (Buffer.add_string b) fmt
  in
  Buffer.add_string b "{\n  ";
  add "\"schema\": \"%s\"" (json_escape schema);
  add "\"schema_version\": %d" schema_version;
  add "\"elapsed_seconds\": %s" (json_float elapsed);
  add "\"log_level\": \"%s\"" (Log.level_name (Log.level ()));
  let obj name entries render =
    add "\"%s\": {%s}" name
      (String.concat ", "
         (List.map
            (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (render v))
            entries))
  in
  obj "context" (get_context ()) (fun v ->
      Printf.sprintf "\"%s\"" (json_escape v));
  obj "counters" snap.Metrics.s_counters string_of_int;
  obj "gauges" snap.Metrics.s_gauges json_float;
  obj "timers" snap.Metrics.s_timers (fun (count, seconds) ->
      Printf.sprintf "{\"count\": %d, \"seconds\": %s}" count (json_float seconds));
  obj "histograms" snap.Metrics.s_histograms (fun h ->
      Printf.sprintf
        "{\"count\": %d, \"sum_seconds\": %s, \"p50\": %s, \"p95\": %s, \
         \"p99\": %s, \"buckets\": [%s]}"
        h.Metrics.h_count (json_float h.Metrics.h_sum)
        (json_float h.Metrics.h_p50) (json_float h.Metrics.h_p95)
        (json_float h.Metrics.h_p99)
        (String.concat ", "
           (List.map
              (fun (ub, n) -> Printf.sprintf "[%s, %d]" (json_float ub) n)
              h.Metrics.h_buckets)));
  (match utilization snap with
  | Some u -> add "\"derived\": {\"exec_utilization\": %s}" (json_float u)
  | None -> add "\"derived\": {}");
  (* Link the trace artifact (if any) and surface drop accounting so a
     truncated trace is visible from the report alone. *)
  (if Trace.enabled () || Trace.installed_file () <> None then begin
     let s = Trace.stats () in
     add "\"trace\": {\"file\": %s, \"events\": %d, \"tracks\": %d, \"dropped_events\": %d}"
       (match Trace.installed_file () with
       | Some f -> Printf.sprintf "\"%s\"" (json_escape f)
       | None -> "null")
       s.Trace.recorded s.Trace.tracks s.Trace.dropped
   end);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let summary ?(elapsed = 0.0) () =
  let snap = Metrics.snapshot () in
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "---- nsigma run report (%.2fs elapsed) ----" elapsed;
  (match get_context () with
  | [] -> ()
  | ctx ->
    line "context:";
    List.iter (fun (k, v) -> line "  %-34s %12s" k v) ctx);
  let nonzero_counters =
    List.filter (fun (_, v) -> v <> 0) snap.Metrics.s_counters
  in
  if nonzero_counters <> [] then begin
    line "counters:";
    List.iter (fun (k, v) -> line "  %-34s %12d" k v) nonzero_counters
  end;
  let nonzero_gauges =
    List.filter (fun (_, v) -> v <> 0.0) snap.Metrics.s_gauges
  in
  if nonzero_gauges <> [] then begin
    line "gauges:";
    List.iter (fun (k, v) -> line "  %-34s %12.4g" k v) nonzero_gauges
  end;
  let nonzero_timers =
    List.filter (fun (_, (n, _)) -> n <> 0) snap.Metrics.s_timers
  in
  if nonzero_timers <> [] then begin
    line "timers:";
    List.iter
      (fun (k, (n, s)) -> line "  %-34s %9.3fs over %d" k s n)
      nonzero_timers
  end;
  let nonzero_histograms =
    List.filter (fun (_, h) -> h.Metrics.h_count <> 0) snap.Metrics.s_histograms
  in
  if nonzero_histograms <> [] then begin
    line "histograms:";
    List.iter
      (fun (k, h) ->
        line "  %-34s n=%d mean=%.3gs p50=%.3gs p95=%.3gs p99=%.3gs" k
          h.Metrics.h_count
          (h.Metrics.h_sum /. float_of_int (max 1 h.Metrics.h_count))
          h.Metrics.h_p50 h.Metrics.h_p95 h.Metrics.h_p99)
      nonzero_histograms
  end;
  (match utilization snap with
  | Some u -> line "executor utilization: %.1f%%" (100.0 *. u)
  | None -> ());
  (if Trace.enabled () || Trace.installed_file () <> None then begin
     let s = Trace.stats () in
     line "trace: %s (%d events on %d tracks, %d dropped)"
       (Option.value ~default:"(not written)" (Trace.installed_file ()))
       s.Trace.recorded s.Trace.tracks s.Trace.dropped
   end);
  Buffer.contents b

let write ?elapsed spec =
  if spec = "-" then prerr_string (summary ?elapsed ())
  else begin
    let oc = open_out spec in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_json ?elapsed ()));
    Log.info "wrote run report %s" spec
  end

let installed : string ref option ref = ref None

let install spec =
  Metrics.set_enabled true;
  match !installed with
  | Some target -> target := spec
  | None ->
    let target = ref spec in
    installed := Some target;
    let t0 = Metrics.now () in
    at_exit (fun () ->
        try write ~elapsed:(Metrics.now () -. t0) !target
        with e ->
          Printf.eprintf "nsigma: failed to write run report %s: %s\n%!" !target
            (Printexc.to_string e))

let install_from_env () =
  match Sys.getenv_opt "NSIGMA_METRICS" with
  | Some s when String.trim s <> "" -> install (String.trim s)
  | _ -> ()
