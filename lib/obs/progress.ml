let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let stderr_is_tty =
  lazy (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)

let active () =
  enabled () && Lazy.force stderr_is_tty && Log.level () <> Log.Quiet

type t = {
  label : string;
  total : int;
  count : int Atomic.t;
  started : float;
  (* Milliseconds since [started] of the last render, for throttling;
     an int so compare-and-set elects a single rendering domain. *)
  last_ms : int Atomic.t;
  live : bool;
}

let create ~label ~total =
  {
    label;
    total;
    count = Atomic.make 0;
    started = Monotonic.now ();
    last_ms = Atomic.make 0;
    live = active () && total > 0;
  }

let render t done_ =
  let elapsed = Monotonic.now () -. t.started in
  let frac = float_of_int done_ /. float_of_int t.total in
  let eta =
    if done_ = 0 then "?"
    else Printf.sprintf "%.1fs" (elapsed *. (1.0 -. frac) /. frac)
  in
  Printf.eprintf "\r%s %d/%d (%.0f%%) %.1fs elapsed, eta %s   %!" t.label done_
    t.total (100.0 *. frac) elapsed eta

let throttle_ms = 200

let tick t =
  if t.live then begin
    let done_ = 1 + Atomic.fetch_and_add t.count 1 in
    let ms = int_of_float ((Monotonic.now () -. t.started) *. 1000.0) in
    let last = Atomic.get t.last_ms in
    if
      (ms - last >= throttle_ms || done_ = t.total)
      && Atomic.compare_and_set t.last_ms last ms
    then render t done_
  end
  else if t.total > 0 then Atomic.incr t.count

let finish t =
  if t.live then begin
    render t (Atomic.get t.count);
    prerr_newline ()
  end

let with_bar ~label ~total f =
  let t = create ~label ~total in
  if not t.live then f ignore
  else Fun.protect ~finally:(fun () -> finish t) (fun () -> f (fun () -> tick t))
