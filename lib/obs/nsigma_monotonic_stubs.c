/* Monotonic clock for internal duration measurement.
 *
 * CLOCK_MONOTONIC never steps when NTP slews or jumps the wall clock,
 * so interval arithmetic built on it cannot go negative — which
 * Unix.gettimeofday cannot guarantee.  Exposed as nanoseconds in an
 * int64 so the unboxed [@@noalloc] path allocates nothing.
 */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <stdint.h>

int64_t nsigma_monotonic_ns_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * INT64_C(1000000000) + (int64_t)ts.tv_nsec;
}

CAMLprim value nsigma_monotonic_ns(value unit)
{
  return caml_copy_int64(nsigma_monotonic_ns_unboxed(unit));
}
