let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let now () = Monotonic.now ()

(* Guards metric creation and shard registration — never held while
   recording, and a domain-local-storage initialiser never runs while
   the caller holds it (recording functions take no lock at all). *)
let registry_mutex = Mutex.create ()

(* ---- counters ---- *)

type counter = { c_key : int ref Domain.DLS.key; c_cells : int ref list ref }

let counter_table : (string, counter) Hashtbl.t = Hashtbl.create 64

(* Register-or-reuse under the mutex, but create the metric (and its DLS
   key) outside it: a losing racer leaves an orphan key behind, which is
   harmless — its shards are never reached again. *)
let intern table make name =
  match Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt table name) with
  | Some m -> m
  | None ->
    let m = make name in
    Mutex.protect registry_mutex (fun () ->
        match Hashtbl.find_opt table name with
        | Some winner -> winner
        | None ->
          Hashtbl.add table name m;
          m)

let counter =
  intern counter_table (fun (_ : string) ->
      let cells = ref [] in
      let key =
        Domain.DLS.new_key (fun () ->
            let r = ref 0 in
            Mutex.protect registry_mutex (fun () -> cells := r :: !cells);
            r)
      in
      { c_key = key; c_cells = cells })

let incr ?(by = 1) c =
  if enabled () then begin
    let r = Domain.DLS.get c.c_key in
    r := !r + by
  end

let counter_value c =
  Mutex.protect registry_mutex (fun () ->
      List.fold_left (fun acc r -> acc + !r) 0 !(c.c_cells))

(* ---- gauges ---- *)

type gauge = { g_cell : float Atomic.t }

let gauge_table : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge =
  intern gauge_table (fun (_ : string) -> { g_cell = Atomic.make 0.0 })

let set_gauge g v = if enabled () then Atomic.set g.g_cell v

let max_gauge g v =
  if enabled () then begin
    let rec loop () =
      let cur = Atomic.get g.g_cell in
      if v > cur && not (Atomic.compare_and_set g.g_cell cur v) then loop ()
    in
    loop ()
  end

let gauge_value g = Atomic.get g.g_cell

(* ---- timers ---- *)

type tcell = { mutable t_sum : float; mutable t_count : int }

type timer = { t_key : tcell Domain.DLS.key; t_cells : tcell list ref }

let timer_table : (string, timer) Hashtbl.t = Hashtbl.create 32

let timer =
  intern timer_table (fun (_ : string) ->
      let cells = ref [] in
      let key =
        Domain.DLS.new_key (fun () ->
            let c = { t_sum = 0.0; t_count = 0 } in
            Mutex.protect registry_mutex (fun () -> cells := c :: !cells);
            c)
      in
      { t_key = key; t_cells = cells })

let add_time t seconds =
  if enabled () then begin
    let c = Domain.DLS.get t.t_key in
    c.t_sum <- c.t_sum +. seconds;
    c.t_count <- c.t_count + 1
  end

let timer_value t =
  Mutex.protect registry_mutex (fun () ->
      List.fold_left
        (fun (n, s) c -> (n + c.t_count, s +. c.t_sum))
        (0, 0.0) !(t.t_cells))

let span name f =
  let timed f =
    if not (enabled ()) then f ()
    else begin
      let t = timer ("stage." ^ name) in
      let t0 = now () in
      Fun.protect
        ~finally:(fun () ->
          let dt = now () -. t0 in
          add_time t dt;
          Log.debug "stage %s done%s" name (Log.kv [ ("seconds", Printf.sprintf "%.3f" dt) ]))
        f
    end
  in
  (* Stage spans also land on the trace (with a GC probe each), so the
     flamegraph and the timer table describe the same tree. *)
  if Trace.enabled () then
    Trace.with_span
      (Trace.span_type ~cat:"stage" ~gc:true ("stage." ^ name))
      (fun () -> timed f)
  else timed f

(* ---- log-scale latency histograms ---- *)

(* Bucket i covers (2^(i-1), 2^i] nanoseconds; 48 buckets span 1 ns to
   about 3.2 days, enough for any per-sample or per-stage latency. *)
let n_buckets = 48
let bucket_upper_bound i = 1e-9 *. Float.pow 2.0 (float_of_int i)

let bucket_of_seconds s =
  if s <= 1e-9 then 0
  else
    let b = int_of_float (Float.ceil (Float.log2 (s /. 1e-9))) in
    if b < 0 then 0 else if b >= n_buckets then n_buckets - 1 else b

type hcell = { h_counts : int array; mutable hc_sum : float; mutable hc_n : int }

type histogram = { h_key : hcell Domain.DLS.key; h_cells : hcell list ref }

let histogram_table : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram =
  intern histogram_table (fun (_ : string) ->
      let cells = ref [] in
      let key =
        Domain.DLS.new_key (fun () ->
            let c = { h_counts = Array.make n_buckets 0; hc_sum = 0.0; hc_n = 0 } in
            Mutex.protect registry_mutex (fun () -> cells := c :: !cells);
            c)
      in
      { h_key = key; h_cells = cells })

let observe h seconds =
  if enabled () then begin
    let c = Domain.DLS.get h.h_key in
    let b = bucket_of_seconds seconds in
    c.h_counts.(b) <- c.h_counts.(b) + 1;
    c.hc_sum <- c.hc_sum +. seconds;
    c.hc_n <- c.hc_n + 1
  end

(* ---- reading ---- *)

type histogram_view = {
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) list;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
}

(* Percentile estimate from the merged bucket counts: find the bucket
   holding the target rank and interpolate linearly inside it (bucket i
   spans (2^(i-1), 2^i] ns; bucket 0 starts at 0).  Log-scale buckets
   bound the relative error of the estimate by the bucket width (a
   factor of 2), which is plenty for latency reporting. *)
let percentile_of_counts counts total q =
  if total = 0 then 0.0
  else begin
    let rank = q *. float_of_int total in
    let result = ref 0.0 in
    let cum = ref 0 and found = ref false in
    for i = 0 to n_buckets - 1 do
      if not !found && counts.(i) > 0 then begin
        let below = !cum in
        cum := !cum + counts.(i);
        if float_of_int !cum >= rank then begin
          found := true;
          let upper = bucket_upper_bound i in
          let lower = if i = 0 then 0.0 else upper /. 2.0 in
          let frac =
            (rank -. float_of_int below) /. float_of_int counts.(i)
          in
          result := lower +. ((upper -. lower) *. Float.max 0.0 (Float.min 1.0 frac))
        end
      end
      else if not !found then cum := !cum + counts.(i)
    done;
    if !found then !result else bucket_upper_bound (n_buckets - 1)
  end

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_timers : (string * (int * float)) list;
  s_histograms : (string * histogram_view) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  Mutex.protect registry_mutex (fun () ->
      let counters =
        Hashtbl.fold
          (fun name c acc ->
            (name, List.fold_left (fun s r -> s + !r) 0 !(c.c_cells)) :: acc)
          counter_table []
        |> List.sort by_name
      in
      let gauges =
        Hashtbl.fold
          (fun name g acc -> (name, Atomic.get g.g_cell) :: acc)
          gauge_table []
        |> List.sort by_name
      in
      let timers =
        Hashtbl.fold
          (fun name t acc ->
            let v =
              List.fold_left
                (fun (n, s) c -> (n + c.t_count, s +. c.t_sum))
                (0, 0.0) !(t.t_cells)
            in
            (name, v) :: acc)
          timer_table []
        |> List.sort by_name
      in
      let histograms =
        Hashtbl.fold
          (fun name h acc ->
            let merged = Array.make n_buckets 0 in
            let sum = ref 0.0 and count = ref 0 in
            List.iter
              (fun c ->
                Array.iteri (fun i v -> merged.(i) <- merged.(i) + v) c.h_counts;
                sum := !sum +. c.hc_sum;
                count := !count + c.hc_n)
              !(h.h_cells);
            let buckets = ref [] in
            for i = n_buckets - 1 downto 0 do
              if merged.(i) > 0 then
                buckets := (bucket_upper_bound i, merged.(i)) :: !buckets
            done;
            ( name,
              {
                h_count = !count;
                h_sum = !sum;
                h_buckets = !buckets;
                h_p50 = percentile_of_counts merged !count 0.50;
                h_p95 = percentile_of_counts merged !count 0.95;
                h_p99 = percentile_of_counts merged !count 0.99;
              } )
            :: acc)
          histogram_table []
        |> List.sort by_name
      in
      {
        s_counters = counters;
        s_gauges = gauges;
        s_timers = timers;
        s_histograms = histograms;
      })

let find_counter name =
  match Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt counter_table name) with
  | None -> 0
  | Some c -> counter_value c

let reset () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter
        (fun _ c -> List.iter (fun r -> r := 0) !(c.c_cells))
        counter_table;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0.0) gauge_table;
      Hashtbl.iter
        (fun _ t ->
          List.iter
            (fun c ->
              c.t_sum <- 0.0;
              c.t_count <- 0)
            !(t.t_cells))
        timer_table;
      Hashtbl.iter
        (fun _ h ->
          List.iter
            (fun c ->
              Array.fill c.h_counts 0 n_buckets 0;
              c.hc_sum <- 0.0;
              c.hc_n <- 0)
            !(h.h_cells))
        histogram_table)
