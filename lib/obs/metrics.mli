(** Lock-cheap metrics registry: counters, gauges, wall-clock timers and
    log-scale latency histograms.

    The registry is built for the Monte-Carlo hot loops: counter,
    timer and histogram cells are sharded per domain (one cell per
    metric per worker, reached through domain-local storage), so
    recording from a domain pool touches no shared mutable state and
    adds no contention — and therefore cannot perturb scheduling or
    sampled values.  Shards are merged only at read time
    ({!snapshot}), under the registry mutex, with names sorted so the
    merged view is deterministic.

    All recording is gated on one process-wide flag (default off).
    When disabled every recording call is a single atomic load and
    returns — instrumentation left in hot paths is effectively free.

    Metrics are identified by name.  Looking a metric up
    ({!counter}, {!timer}, {!histogram}, {!gauge}) takes a mutex and
    should be done once, at module initialisation; the returned handle
    is then safe to record on from any domain. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val now : unit -> float
(** Monotonic seconds ({!Monotonic.now}) — steps in the wall clock
    (NTP) cannot produce negative durations.  The epoch is arbitrary:
    use only differences. *)

(** {2 Counters} *)

type counter

val counter : string -> counter
(** The counter registered under [name], created on first use.
    Idempotent: the same name yields the same metric. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
(** Merged total across all domain shards. *)

(** {2 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
(** Last write wins (across domains, in no guaranteed order: set gauges
    from one domain, or use {!max_gauge}). *)

val max_gauge : gauge -> float -> unit
(** Monotone max — safe from any domain. *)

val gauge_value : gauge -> float

(** {2 Timers} *)

type timer

val timer : string -> timer

val add_time : timer -> float -> unit
(** Accumulate [seconds] (one observation). *)

val timer_value : timer -> int * float
(** Merged [(count, total_seconds)]. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and accumulates its elapsed time into the
    timer [stage.<name>] (also logged at debug level).  When tracing is
    enabled the same interval is emitted as a [stage.<name>] trace span
    with a GC probe ({!Trace.with_span}).  When both metrics and
    tracing are disabled this is exactly [f ()]. *)

(** {2 Log-scale latency histograms} *)

type histogram

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record a latency in seconds.  Buckets are powers of two of a
    nanosecond: bucket [i] holds observations in
    [(2^(i-1) ns, 2^i ns]]. *)

val n_buckets : int

val bucket_upper_bound : int -> float
(** Upper bound in seconds of bucket [i]. *)

(** {2 Reading} *)

type histogram_view = {
  h_count : int;
  h_sum : float;  (** total observed seconds *)
  h_buckets : (float * int) list;
      (** non-empty buckets as [(upper_bound_seconds, count)], ascending *)
  h_p50 : float;  (** median estimate (seconds) — see below *)
  h_p95 : float;
  h_p99 : float;
      (** Percentile estimates interpolated linearly inside the
          power-of-two bucket holding the target rank, so latency
          histograms read directly as p50/p95/p99 without
          post-processing.  Accurate to the bucket width (a factor of
          2); [0.] when the histogram is empty. *)
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_timers : (string * (int * float)) list;  (** name, (count, seconds) *)
  s_histograms : (string * histogram_view) list;
}
(** All lists sorted by metric name; metrics that were registered but
    never recorded appear with zero values, so well-known keys are
    always present in run reports. *)

val snapshot : unit -> snapshot
(** Merge every shard.  Deterministic given the same recorded totals.
    Taking a snapshot while worker domains are actively recording is
    safe but may observe in-flight values; the pipeline snapshots after
    pools have joined. *)

val find_counter : string -> int
(** Merged value of the named counter, [0] when it does not exist. *)

val reset : unit -> unit
(** Zero every shard of every metric (for tests and benchmarks). *)
