(** Leveled structured logging for the whole pipeline.

    One process-wide level, read from the [NSIGMA_LOG] environment
    variable ([quiet|warn|info|debug], default [warn]) the first time it
    is needed, overridable programmatically.  Messages are single
    [key=value]-friendly lines on stderr, serialised across domains so
    concurrent workers never interleave partial lines.

    Every sampling/simulation module routes its diagnostics through this
    module instead of raw [Printf.eprintf], so [NSIGMA_LOG=quiet]
    silences the whole system (tests, batch sweeps) with one knob.

    Disabled levels cost one atomic load and format nothing. *)

type level = Quiet | Warn | Info | Debug

val level_of_string : string -> level option
(** ["quiet"|"off"|"none"], ["warn"|"warning"], ["info"], ["debug"]
    (case-insensitive); [None] otherwise. *)

val level_name : level -> string

val level : unit -> level
(** The current level: the last {!set_level}, else [NSIGMA_LOG], else
    [Warn]. *)

val set_level : level -> unit

val enabled : level -> bool
(** [enabled l] is true when a message at level [l] would be emitted.
    Use to guard expensive context computation. *)

val warn : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a
val debug : ('a, unit, string, unit) format4 -> 'a

val kv : (string * string) list -> string
(** [kv fields] renders [" k=v k=v ..."] for appending structured
    context to a message. *)
