(** Sampled stderr progress ticker with ETA for long sampling loops
    (characterisation grids, path Monte-Carlo populations).

    Off by default; enabled by the [--progress] CLI flag
    ({!set_enabled}).  Even when enabled, a bar only renders when stderr
    is a TTY and the log level is not [Quiet], so redirected or
    silenced runs never see control characters.  Ticks are safe from
    any worker domain, cost two atomic operations when live and one
    atomic load when not, and renders are throttled to a few per
    second. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val active : unit -> bool
(** Whether a bar created now would actually render: {!enabled}, stderr
    is a TTY, and the log level is not [Quiet]. *)

type t

val create : label:string -> total:int -> t
val tick : t -> unit

val finish : t -> unit
(** Render the final state and terminate the line. *)

val with_bar : label:string -> total:int -> ((unit -> unit) -> 'a) -> 'a
(** [with_bar ~label ~total f] passes a tick function to [f] and
    finishes the bar when [f] returns (or raises).  When inactive the
    tick function is a no-op. *)
