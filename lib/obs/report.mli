(** Run reports: a schema-versioned JSON dump of the metrics registry
    (same spirit as the [BENCH_*.json] records) or a human summary table
    on stderr.

    The CLI's [--metrics FILE] flag and the [NSIGMA_METRICS]
    environment variable route here: [install spec] turns the registry
    on and arranges for the report to be written at process exit.
    [spec = "-"] pretty-prints the summary table to stderr instead of
    writing JSON. *)

val schema : string
(** The report's schema identifier, ["nsigma-run-report"]. *)

val schema_version : int

val set_context : string -> string -> unit
(** Attach a free-form key/value pair to the run report — e.g. the
    sampling backend and tolerance a CLI run was configured with.
    Setting an existing key replaces its value.  Context appears as a
    string-valued ["context"] object in the JSON report and a leading
    section of the summary table.  Thread-safe. *)

val to_json : ?elapsed:float -> unit -> string
(** Serialise the current registry snapshot.  The report always carries
    every registered metric (zero-valued when untouched), so well-known
    keys — kernel fallback counts, cache hit/miss, executor utilization
    — are present in every report. *)

val summary : ?elapsed:float -> unit -> string
(** Human-readable summary table of the same snapshot. *)

val write : ?elapsed:float -> string -> unit
(** [write spec] dumps the report now: to stderr when [spec = "-"],
    else as JSON to the file [spec]. *)

val install : string -> unit
(** Enable metrics collection and register an exit handler that writes
    the report to [spec].  Calling again replaces the destination, not
    the handler. *)

val install_from_env : unit -> unit
(** [install] from [NSIGMA_METRICS] when it is set and non-empty. *)
