(** Monotonic process clock ([clock_gettime(CLOCK_MONOTONIC)]).

    Use this — never [Unix.gettimeofday] — for every internal duration
    measurement: the monotonic clock cannot step backwards under NTP
    adjustment, so span and timer arithmetic cannot produce negative
    durations.  Wall-clock time is only appropriate for human-facing
    timestamps in reports.

    The epoch is unspecified (boot time on Linux); only differences
    between two readings are meaningful. *)

val now_ns : unit -> int
(** Nanoseconds since the (unspecified) monotonic epoch.  Allocation
    free — safe in sampling hot loops.  A 63-bit int holds ~292 years
    of nanoseconds, so overflow is not a practical concern. *)

val now : unit -> float
(** Same clock in seconds. *)
