(** Hierarchical trace collector: per-domain bounded buffers of
    span/instant/counter records on the monotonic clock, exported as
    Chrome trace-event JSON (open in {{:https://ui.perfetto.dev}
    Perfetto} or [chrome://tracing]) and as collapsed-stack flamegraph
    text ([<file>.folded], one [stack;frames self_ns] line per stack).

    Recording follows the metrics-registry discipline: each domain
    appends to a private buffer reached through domain-local storage —
    no lock, no shared mutable state — so tracing cannot perturb
    scheduling or sampled values, and populations are bitwise identical
    with tracing on or off.  When disabled, every recording call is a
    single atomic load.

    Records are fixed-size (packed kind + event-type id, a monotonic
    nanosecond timestamp, four float argument slots); argument {e
    names} live on the interned event type.  Buffers grow geometrically
    up to a per-domain cap (default 65536 records, [NSIGMA_TRACE_BUF]
    overrides); past the cap new records are dropped and counted —
    see {!stats} — never silently discarded.  Dropping the newest
    (rather than overwriting the oldest) keeps retained span openers
    consistent, so a truncated trace still loads.

    Each domain is one track ([tid]) in the exported trace; worker
    domains spawned by successive pools each get a fresh track.
    Event types are interned by name: intern once at module
    initialisation (takes a mutex), record from any domain. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {2 Event types} *)

type span_type
type instant_type
type counter_type

val span_type :
  ?cat:string -> ?args:string list -> ?gc:bool -> string -> span_type
(** Interned span type.  [args] (at most 4) names the float slots
    attached to the opening record.  [gc] makes {!with_span} sample
    [Gc.quick_stat] around the span and emit a [gc.probe] instant with
    the allocation/collection deltas when it closes. *)

val instant_type : ?cat:string -> ?args:string list -> string -> instant_type
val counter_type : ?cat:string -> string -> counter_type

(** {2 Recording}

    All recording calls are no-ops (one atomic load) when tracing is
    disabled. *)

val begin_span :
  span_type -> ?a:float -> ?b:float -> ?c:float -> ?d:float -> unit -> unit
(** Open a span on the calling domain's track.  [?a..?d] fill the
    type's declared argument slots in order.  Spans on one track must
    nest: close them in LIFO order with {!end_span}. *)

val end_span : span_type -> unit

val with_span :
  span_type ->
  ?a:float ->
  ?b:float ->
  ?c:float ->
  ?d:float ->
  (unit -> 'a) ->
  'a
(** [with_span st f] brackets [f] in [begin_span]/[end_span]
    (exception-safe); emits the GC probe if [st] was created with
    [~gc:true].  Exactly [f ()] when tracing is disabled. *)

val instant :
  instant_type -> ?a:float -> ?b:float -> ?c:float -> ?d:float -> unit -> unit
(** A point event — convergence verdicts, fallbacks, stuck kernels. *)

val counter : counter_type -> float -> unit
(** A sampled counter value, rendered as a counter track. *)

(** {2 Reading} *)

type kind = Begin | End | Instant | Counter

type event = {
  ev_tid : int;  (** track = domain registration index *)
  ev_kind : kind;
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : int;  (** nanoseconds since the trace epoch (module init) *)
  ev_args : (string * float) list;
}

type stats = {
  recorded : int;  (** records retained across all tracks *)
  dropped : int;  (** records dropped at the buffer cap *)
  tracks : int;  (** tracks holding at least one retained record *)
}

val events : unit -> event list
(** Merged view of every track, sorted by [(ts, tid, append order)] —
    deterministic given the same buffer contents.  Per-track order is
    always the append order.  Take it after worker pools have joined;
    reading while a domain records is safe but may miss in-flight
    events. *)

val stats : unit -> stats

val to_chrome_json : unit -> string
(** Chrome trace-event JSON (JSON-object form): [traceEvents] carries
    one [thread_name] metadata record per track plus one record per
    event ([ph] of [B]/[E]/[i]/[C], [ts] in microseconds);
    [otherData] carries the record/track/drop totals. *)

val to_folded : unit -> string
(** Collapsed-stack flamegraph text: one line per distinct span stack,
    [domain-N;outer;inner self_nanoseconds], ready for
    [flamegraph.pl] or speedscope.  Built from span records only. *)

val write : string -> unit
(** [write spec] dumps {!to_chrome_json} to [spec] and {!to_folded} to
    [spec ^ ".folded"] now. *)

val reset : unit -> unit
(** Empty every buffer and zero drop counts (tests and benchmarks). *)

val set_max_records : int -> unit
(** Override the per-domain record cap (clamped to at least 16); for
    wraparound tests.  Does not shrink already-grown buffers, but the
    cap applies to subsequent appends regardless. *)

(** {2 Installation} *)

val install : string -> unit
(** Enable tracing and register an exit handler writing the trace to
    [spec] (and [spec ^ ".folded"]).  Calling again replaces the
    destination, not the handler.  The CLI's [--trace FILE] routes
    here. *)

val install_from_env : unit -> unit
(** [install] from [NSIGMA_TRACE] when set and non-empty. *)

val installed_file : unit -> string option
(** Destination registered by {!install}, for run reports that link
    the trace artifact. *)
