external now_ns_i64 : unit -> (int64[@unboxed])
  = "nsigma_monotonic_ns" "nsigma_monotonic_ns_unboxed"
[@@noalloc]

let now_ns () = Int64.to_int (now_ns_i64 ())
let now () = 1e-9 *. float_of_int (now_ns ())
