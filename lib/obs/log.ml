type level = Quiet | Warn | Info | Debug

let severity = function Quiet -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_name = function
  | Quiet -> "quiet"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "off" | "none" -> Some Quiet
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let env_level () =
  match Sys.getenv_opt "NSIGMA_LOG" with
  | None -> Warn
  | Some s -> ( match level_of_string s with Some l -> l | None -> Warn)

(* Lazily initialised from the environment so tests and the CLI can
   override before (or after) the first message. *)
let current = Atomic.make None

let level () =
  match Atomic.get current with
  | Some l -> l
  | None ->
    let l = env_level () in
    (* A racing initialisation reads the same environment: harmless. *)
    Atomic.set current (Some l);
    l

let set_level l = Atomic.set current (Some l)

let enabled l = severity l <= severity (level ()) && l <> Quiet

(* Serialise emission so messages from concurrent worker domains never
   interleave mid-line. *)
let emit_mutex = Mutex.create ()

let emit lvl msg =
  Mutex.protect emit_mutex (fun () ->
      Printf.eprintf "nsigma[%s] %s\n%!" (level_name lvl) msg)

let logf lvl fmt =
  if enabled lvl then Printf.ksprintf (emit lvl) fmt
  else Printf.ikfprintf ignore () fmt

let warn fmt = logf Warn fmt
let info fmt = logf Info fmt
let debug fmt = logf Debug fmt

let kv fields =
  String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) fields)
