(* Per-domain bounded trace buffers, merged at export time.

   The recording path mirrors the metrics registry: each domain owns a
   private buffer reached through domain-local storage, so appending a
   record takes no lock and touches no shared mutable state — it cannot
   perturb scheduling or sampled values.  The registry mutex guards
   only event-type interning and buffer registration (once per domain).

   Records are fixed-size: one packed int (kind in the low 2 bits,
   event-type id above), one monotonic timestamp in nanoseconds, and
   four float argument slots.  The argument *names* live on the
   interned event type, not in the record, so the hot path stores at
   most six words per event.

   Buffers grow geometrically from 1024 records up to a hard cap
   (default 65536 per domain, [NSIGMA_TRACE_BUF] overrides); past the
   cap new records are dropped — never silently: every drop is counted
   and surfaced in the export, the run report, and the bench gate.
   Dropping the *newest* records (rather than overwriting the oldest,
   as a classic ring would) keeps every retained [B] span opener
   matched with what came before it, so a truncated trace still loads
   cleanly. *)

let max_args = 4

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Relative-timestamp epoch: the moment this module was initialised. *)
let epoch_ns = Monotonic.now_ns ()

let registry_mutex = Mutex.create ()

(* ---- event types ---- *)

type event_type = {
  et_id : int;
  et_name : string;
  et_cat : string;
  et_args : string array;
  et_gc : bool;
}

type span_type = event_type
type instant_type = event_type
type counter_type = event_type

let type_table : (string, event_type) Hashtbl.t = Hashtbl.create 64
let type_list : event_type list ref = ref []
let n_types = ref 0

let intern ?(cat = "nsigma") ?(args = [||]) ?(gc = false) name =
  if Array.length args > max_args then
    invalid_arg
      (Printf.sprintf "Trace: event type %s declares more than %d args" name
         max_args);
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt type_table name with
      | Some t -> t
      | None ->
        let t =
          { et_id = !n_types; et_name = name; et_cat = cat; et_args = args;
            et_gc = gc }
        in
        incr n_types;
        Hashtbl.add type_table name t;
        type_list := t :: !type_list;
        t)

let span_type ?cat ?(args = []) ?gc name =
  intern ?cat ~args:(Array.of_list args) ?gc name

let instant_type ?cat ?(args = []) name =
  intern ?cat ~args:(Array.of_list args) name

let counter_type ?cat name = intern ?cat ~args:[| "value" |] name

(* ---- per-domain buffers ---- *)

let default_max_records = 65536
let initial_records = 1024

let max_records =
  Atomic.make
    (match Sys.getenv_opt "NSIGMA_TRACE_BUF" with
    | Some s -> (try max 16 (int_of_string (String.trim s)) with _ -> default_max_records)
    | None -> default_max_records)

let set_max_records n = Atomic.set max_records (max 16 n)

type buf = {
  mutable b_tid : int;
  (* stride 2: packed kind|etid, ts_ns *)
  mutable b_ints : int array;
  (* stride 4: argument slots *)
  mutable b_floats : float array;
  mutable b_len : int;
  mutable b_cap : int;
  mutable b_dropped : int;
}

let buffers : buf list ref = ref []
let next_tid = ref 0

(* Allocate outside the mutex, register (and take a track id) inside —
   same discipline as the metrics shards.  Worker domains spawned by
   successive pools each get a fresh buffer, i.e. their own track. *)
let buf_key =
  Domain.DLS.new_key (fun () ->
      let cap = min initial_records (Atomic.get max_records) in
      let b =
        { b_tid = 0; b_ints = Array.make (2 * cap) 0;
          b_floats = Array.make (4 * cap) 0.0; b_len = 0; b_cap = cap;
          b_dropped = 0 }
      in
      Mutex.protect registry_mutex (fun () ->
          b.b_tid <- !next_tid;
          incr next_tid;
          buffers := b :: !buffers);
      b)

let ensure buf =
  let maxr = Atomic.get max_records in
  if buf.b_len >= maxr then begin
    buf.b_dropped <- buf.b_dropped + 1;
    false
  end
  else begin
    if buf.b_len >= buf.b_cap then begin
      let ncap = min maxr (max 16 (2 * buf.b_cap)) in
      let ni = Array.make (2 * ncap) 0 in
      Array.blit buf.b_ints 0 ni 0 (2 * buf.b_len);
      let nf = Array.make (4 * ncap) 0.0 in
      Array.blit buf.b_floats 0 nf 0 (4 * buf.b_len);
      buf.b_ints <- ni;
      buf.b_floats <- nf;
      buf.b_cap <- ncap
    end;
    true
  end

(* kinds: 0 = span begin, 1 = span end, 2 = instant, 3 = counter *)

let record kind et a b c d =
  if enabled () then begin
    let buf = Domain.DLS.get buf_key in
    if ensure buf then begin
      let i = 2 * buf.b_len and j = 4 * buf.b_len in
      buf.b_ints.(i) <- kind lor (et.et_id lsl 2);
      buf.b_ints.(i + 1) <- Monotonic.now_ns ();
      buf.b_floats.(j) <- a;
      buf.b_floats.(j + 1) <- b;
      buf.b_floats.(j + 2) <- c;
      buf.b_floats.(j + 3) <- d;
      buf.b_len <- buf.b_len + 1
    end
  end

let begin_span st ?(a = 0.) ?(b = 0.) ?(c = 0.) ?(d = 0.) () = record 0 st a b c d
let end_span st = record 1 st 0. 0. 0. 0.
let instant it ?(a = 0.) ?(b = 0.) ?(c = 0.) ?(d = 0.) () = record 2 it a b c d
let counter ct v = record 3 ct v 0. 0. 0.

(* GC probe: allocation deltas over an enclosing span, emitted as an
   instant right after the span closes so the pause/allocation cost is
   attributable to that span rather than to the whole run. *)
let gc_probe =
  intern ~cat:"gc"
    ~args:[| "minor_words"; "major_words"; "minor_gcs"; "major_gcs" |]
    "gc.probe"

let with_span st ?a ?b ?c ?d f =
  if not (enabled ()) then f ()
  else begin
    let g0 = if st.et_gc then Some (Gc.quick_stat ()) else None in
    begin_span st ?a ?b ?c ?d ();
    Fun.protect
      ~finally:(fun () ->
        end_span st;
        match g0 with
        | None -> ()
        | Some g0 ->
          let g1 = Gc.quick_stat () in
          instant gc_probe
            ~a:(g1.Gc.minor_words -. g0.Gc.minor_words)
            ~b:(g1.Gc.major_words -. g0.Gc.major_words)
            ~c:(float_of_int (g1.Gc.minor_collections - g0.Gc.minor_collections))
            ~d:(float_of_int (g1.Gc.major_collections - g0.Gc.major_collections))
            ())
      f
  end

(* ---- reading ---- *)

type kind = Begin | End | Instant | Counter

type event = {
  ev_tid : int;
  ev_kind : kind;
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : int;
  ev_args : (string * float) list;
}

type stats = { recorded : int; dropped : int; tracks : int }

let stats () =
  Mutex.protect registry_mutex (fun () ->
      List.fold_left
        (fun s b ->
          (* Only tracks holding records count: long-dead worker domains
             whose buffers were reset would otherwise inflate the track
             total past the thread_name records the export emits. *)
          { recorded = s.recorded + b.b_len; dropped = s.dropped + b.b_dropped;
            tracks = (if b.b_len > 0 then s.tracks + 1 else s.tracks) })
        { recorded = 0; dropped = 0; tracks = 0 }
        !buffers)

let events () =
  let snap, type_by_id =
    Mutex.protect registry_mutex (fun () ->
        let snap =
          List.map
            (fun b ->
              ( b.b_tid,
                Array.sub b.b_ints 0 (2 * b.b_len),
                Array.sub b.b_floats 0 (4 * b.b_len),
                b.b_len ))
            !buffers
        in
        let a = Array.make (max 1 !n_types) None in
        List.iter (fun t -> a.(t.et_id) <- Some t) !type_list;
        (snap, a))
  in
  let acc = ref [] in
  List.iter
    (fun (tid, ints, floats, len) ->
      for k = 0 to len - 1 do
        let packed = ints.(2 * k) in
        let kind_i = packed land 3 and etid = packed lsr 2 in
        match type_by_id.(etid) with
        | None -> ()
        | Some et ->
          let kind =
            match kind_i with
            | 0 -> Begin
            | 1 -> End
            | 2 -> Instant
            | _ -> Counter
          in
          (* End records carry no arguments. *)
          let nargs = if kind = End then 0 else Array.length et.et_args in
          let args =
            List.init nargs (fun i -> (et.et_args.(i), floats.((4 * k) + i)))
          in
          let ev =
            { ev_tid = tid; ev_kind = kind; ev_name = et.et_name;
              ev_cat = et.et_cat; ev_ts_ns = ints.((2 * k) + 1) - epoch_ns;
              ev_args = args }
          in
          acc := (ev.ev_ts_ns, tid, k, ev) :: !acc
      done)
    snap;
  (* Deterministic merge: timestamp, then track, then per-track append
     order — per-track relative order is always preserved (the clock is
     monotonic within a domain), ties across tracks break by track id. *)
  !acc
  |> List.sort (fun (t1, d1, s1, _) (t2, d2, s2, _) ->
         compare (t1, d1, s1) (t2, d2, s2))
  |> List.map (fun (_, _, _, ev) -> ev)

let reset () =
  Mutex.protect registry_mutex (fun () ->
      List.iter
        (fun b ->
          b.b_len <- 0;
          b.b_dropped <- 0)
        !buffers)

(* ---- Chrome trace-event JSON ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x = if Float.is_finite x then Printf.sprintf "%.9g" x else "null"

let to_chrome_json () =
  let evs = events () in
  let s = stats () in
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[";
  let sep = ref "\n " in
  let add_line line =
    Buffer.add_string b !sep;
    sep := ",\n ";
    Buffer.add_string b line
  in
  (* One named track per domain that recorded anything. *)
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.ev_tid) evs)
  in
  List.iter
    (fun tid ->
      add_line
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"domain-%d\"}}"
           tid tid))
    tids;
  let args_json args =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_float v))
         args)
  in
  List.iter
    (fun e ->
      let ts = Printf.sprintf "%.3f" (float_of_int e.ev_ts_ns /. 1e3) in
      let common =
        Printf.sprintf "\"pid\":0,\"tid\":%d,\"ts\":%s,\"name\":\"%s\"" e.ev_tid
          ts (json_escape e.ev_name)
      in
      let line =
        match e.ev_kind with
        | Begin ->
          Printf.sprintf "{\"ph\":\"B\",%s,\"cat\":\"%s\"%s}" common
            (json_escape e.ev_cat)
            (if e.ev_args = [] then ""
             else Printf.sprintf ",\"args\":{%s}" (args_json e.ev_args))
        | End ->
          Printf.sprintf "{\"ph\":\"E\",%s,\"cat\":\"%s\"}" common
            (json_escape e.ev_cat)
        | Instant ->
          Printf.sprintf "{\"ph\":\"i\",%s,\"cat\":\"%s\",\"s\":\"t\"%s}" common
            (json_escape e.ev_cat)
            (if e.ev_args = [] then ""
             else Printf.sprintf ",\"args\":{%s}" (args_json e.ev_args))
        | Counter ->
          Printf.sprintf "{\"ph\":\"C\",%s,\"args\":{%s}}" common
            (args_json e.ev_args)
      in
      add_line line)
    evs;
  Buffer.add_string b
    (Printf.sprintf
       "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"nsigma-trace\",\"schema_version\":1,\"recorded\":%d,\"tracks\":%d,\"dropped_events\":%d}}\n"
       s.recorded s.tracks s.dropped);
  Buffer.contents b

(* ---- collapsed-stack flamegraph ---- *)

let to_folded () =
  let evs = events () in
  let tids = List.sort_uniq compare (List.map (fun e -> e.ev_tid) evs) in
  let acc : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let add_self path ns =
    if ns > 0 then
      Hashtbl.replace acc path
        (ns + Option.value ~default:0 (Hashtbl.find_opt acc path))
  in
  List.iter
    (fun tid ->
      let stack = ref [] in
      let cursor = ref 0 in
      let path () =
        String.concat ";"
          (Printf.sprintf "domain-%d" tid :: List.rev !stack)
      in
      List.iter
        (fun e ->
          if e.ev_tid = tid then
            match e.ev_kind with
            | Begin ->
              if !stack <> [] then add_self (path ()) (e.ev_ts_ns - !cursor);
              stack := e.ev_name :: !stack;
              cursor := e.ev_ts_ns
            | End ->
              if !stack <> [] then begin
                add_self (path ()) (e.ev_ts_ns - !cursor);
                stack := List.tl !stack
              end;
              cursor := e.ev_ts_ns
            | Instant | Counter -> ())
        evs)
    tids;
  Hashtbl.fold (fun path ns lines -> Printf.sprintf "%s %d" path ns :: lines)
    acc []
  |> List.sort String.compare
  |> fun lines -> String.concat "\n" lines ^ if lines = [] then "" else "\n"

(* ---- file output / installation ---- *)

let write spec =
  let oc = open_out spec in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()));
  let oc = open_out (spec ^ ".folded") in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_folded ()))

let installed : string ref option ref = ref None

let installed_file () = Option.map (fun r -> !r) !installed

let install spec =
  set_enabled true;
  match !installed with
  | Some target -> target := spec
  | None ->
    let target = ref spec in
    installed := Some target;
    at_exit (fun () ->
        try write !target
        with e ->
          Printf.eprintf "nsigma: failed to write trace %s: %s\n%!" !target
            (Printexc.to_string e))

let install_from_env () =
  match Sys.getenv_opt "NSIGMA_TRACE" with
  | Some s when String.trim s <> "" -> install (String.trim s)
  | _ -> ()
