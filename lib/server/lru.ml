type 'a entry = { mutable v : 'a; mutable stamp : int }

type 'a t = {
  max : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
}

let create ~max =
  if max < 1 then invalid_arg "Lru.create: max must be >= 1";
  { max; tbl = Hashtbl.create (2 * max); clock = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some e ->
    e.stamp <- tick t;
    Some e.v

let mem t key = Hashtbl.mem t.tbl key

let length t = Hashtbl.length t.tbl

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with
  | Some (k, _) -> Hashtbl.remove t.tbl k
  | None -> ()

let add t key v =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    e.v <- v;
    e.stamp <- tick t
  | None ->
    if Hashtbl.length t.tbl >= t.max then evict_lru t;
    Hashtbl.add t.tbl key { v; stamp = tick t }

let keys t =
  Hashtbl.fold (fun k e acc -> (k, e.stamp) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst
