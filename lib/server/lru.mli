(** Least-recently-used cache of retained analysis contexts.

    String-keyed, bounded; {!find} refreshes recency, {!add} evicts the
    least recently touched entry once the bound is reached.  Sized for
    a handful of heavyweight values (retained SSTA states, compiled
    plans), so eviction scans linearly rather than maintaining an
    intrusive list.  Not thread-safe — the server's event loop owns
    it. *)

type 'a t

val create : max:int -> 'a t
(** @raise Invalid_argument if [max < 1]. *)

val find : 'a t -> string -> 'a option
(** Look up and mark most-recently-used. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace; evicts the LRU entry if the cache is full. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency. *)

val length : 'a t -> int
val keys : 'a t -> string list
(** Current keys, most recently used first. *)
