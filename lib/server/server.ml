module T = Nsigma_process.Technology
module Library = Nsigma_liberty.Library
module Store = Nsigma_liberty.Store
module Bm = Nsigma_netlist.Benchmarks
module N = Nsigma_netlist.Netlist
module Edit = Nsigma_netlist.Edit
module Design = Nsigma_sta.Design
module Engine = Nsigma_sta.Engine
module Provider = Nsigma_sta.Provider
module Path = Nsigma_sta.Path
module Path_mc = Nsigma_sta.Path_mc
module Ssta = Nsigma_sta.Ssta
module Incremental = Nsigma_sta.Incremental
module Timing_report = Nsigma_sta.Timing_report
module Model = Nsigma.Model
module Stat_max = Nsigma_stats.Stat_max
module Sampler = Nsigma_stats.Sampler
module Moments = Nsigma_stats.Moments
module Executor = Nsigma_exec.Executor
module Cell_sim = Nsigma_spice.Cell_sim
module Metrics = Nsigma_obs.Metrics
module Log = Nsigma_obs.Log
module Trace = Nsigma_obs.Trace
module P = Protocol

(* Registered at module init so serve-mode run reports always carry the
   server keys, zero-valued before the first request. *)
let m_requests = Metrics.counter "server.requests"
let m_batched = Metrics.counter "server.batched"
let m_errors = Metrics.counter "server.errors"
let m_cache_hit = Metrics.counter "server.cache.hit"
let m_cache_miss = Metrics.counter "server.cache.miss"
let g_inflight = Metrics.gauge "server.inflight"
let g_sessions = Metrics.gauge "server.sessions"
let h_analyze = Metrics.histogram "server.latency.analyze"
let h_path_mc = Metrics.histogram "server.latency.path_mc"
let h_retime = Metrics.histogram "server.latency.retime"
let h_misc = Metrics.histogram "server.latency.misc"
let t_analyze = Trace.span_type ~cat:"server" ~args:[ "session" ] "server.analyze"
let t_path_mc = Trace.span_type ~cat:"server" ~args:[ "session" ] "server.path_mc"
let t_retime = Trace.span_type ~cat:"server" ~args:[ "session" ] "server.retime"
let t_misc = Trace.span_type ~cat:"server" ~args:[ "session" ] "server.request"

type config = {
  tech : T.t;
  library : Library.t;
  exec_provider : Executor.t;
  exec_mc : Executor.t;
  max_contexts : int;
  store_dir : string option option;
  store_max_bytes : int option;
}

let default_config tech library =
  {
    tech;
    library;
    exec_provider = Executor.sequential;
    exec_mc = Executor.sequential;
    max_contexts = 8;
    store_dir = None;
    store_max_bytes = None;
  }

(* ---- retained contexts ---- *)

type scalar_ctx = {
  sc_design : Design.t;
  sc_report : Engine.report;
  sc_path : Path.t;
}

type ssta_ctx = { st_report : Ssta.report }

type shared = Scalar of scalar_ctx | Sstate of ssta_ctx

type session_ctx = {
  rt_netlist : N.t;
  rt_inc : Incremental.t;
  mutable rt_edits : int;
}

type t = {
  cfg : config;
  model : Model.t Lazy.t;  (* N-sigma fit: per library, not per circuit *)
  contexts : shared Lru.t;
  sessions : (int * string * string, session_ctx) Hashtbl.t;
  (* plain mirrors of the server counters, live even when the metrics
     registry is disabled — the [stats] op reads these *)
  mutable n_requests : int;
  mutable n_batched : int;
  mutable n_errors : int;
  mutable n_cache_hit : int;
  mutable n_cache_miss : int;
}

let create cfg =
  {
    cfg;
    model = lazy (Model.build cfg.library);
    contexts = Lru.create ~max:cfg.max_contexts;
    sessions = Hashtbl.create 16;
    n_requests = 0;
    n_batched = 0;
    n_errors = 0;
    n_cache_hit = 0;
    n_cache_miss = 0;
  }

let resolve_circuit name =
  match Bm.find name with
  | bm -> bm
  | exception Not_found -> (
    let lname = String.lowercase_ascii name in
    match
      List.find_opt
        (fun b -> String.lowercase_ascii b.Bm.name = lname)
        Bm.small_variants
    with
    | Some bm -> bm
    | None ->
      P.fail "unknown circuit %S (available: %s)" name
        (String.concat ", "
           (List.map (fun b -> b.Bm.name) (Bm.all @ Bm.small_variants))))

let resolved_store_dir cfg =
  match cfg.store_dir with None -> Store.default_dir () | Some d -> d

(* Bound the on-disk regression store after each build burst — a
   long-lived server characterizes many (circuit, config) pairs and the
   store must not grow without bound. *)
let maybe_prune cfg =
  match (cfg.store_max_bytes, resolved_store_dir cfg) with
  | Some max_bytes, Some dir -> ignore (Store.prune ~dir ~max_bytes : int)
  | _ -> ()

let cache_hit t =
  t.n_cache_hit <- t.n_cache_hit + 1;
  Metrics.incr m_cache_hit

let cache_miss t =
  t.n_cache_miss <- t.n_cache_miss + 1;
  Metrics.incr m_cache_miss

let scalar_context t name =
  let bm = resolve_circuit name in
  let key = "scalar:" ^ bm.Bm.name in
  match Lru.find t.contexts key with
  | Some (Scalar c) ->
    cache_hit t;
    c
  | _ ->
    cache_miss t;
    let nl = bm.Bm.generate () in
    let design = Design.attach_parasitics t.cfg.tech nl in
    let report =
      Engine.analyze t.cfg.tech (Provider.nominal t.cfg.library) design
    in
    let c =
      { sc_design = design; sc_report = report;
        sc_path = Engine.critical_path report }
    in
    Lru.add t.contexts key (Scalar c);
    c

let max_op_of_name = function
  | "clark" -> Stat_max.Clark
  | "moment" -> Stat_max.Moment
  | s -> P.fail "unknown max operator %S (available: clark, moment)" s

let ssta_context t name op_name =
  let bm = resolve_circuit name in
  let key = "ssta:" ^ bm.Bm.name ^ ":" ^ op_name in
  match Lru.find t.contexts key with
  | Some (Sstate c) ->
    cache_hit t;
    c
  | _ ->
    cache_miss t;
    let config = { Ssta.op = max_op_of_name op_name; corr = Ssta.Tracked } in
    let nl = bm.Bm.generate () in
    let design = Design.attach_parasitics t.cfg.tech nl in
    let handle =
      Ssta.lvf_handle ~exec:t.cfg.exec_provider
        ?store_dir:t.cfg.store_dir t.cfg.tech t.cfg.library design
    in
    let report =
      Ssta.analyze ~config t.cfg.tech handle.Ssta.h_provider design
    in
    maybe_prune t.cfg;
    let c = { st_report = report } in
    Lru.add t.contexts key (Sstate c);
    c

let session_context t ~session name op_name =
  let bm = resolve_circuit name in
  let key = (session, bm.Bm.name, op_name) in
  match Hashtbl.find_opt t.sessions key with
  | Some c -> (bm, c)
  | None ->
    let config = { Ssta.op = max_op_of_name op_name; corr = Ssta.Tracked } in
    let nl = bm.Bm.generate () in
    let design = Design.attach_parasitics t.cfg.tech nl in
    let handle =
      Ssta.lvf_handle ~exec:t.cfg.exec_provider
        ?store_dir:t.cfg.store_dir t.cfg.tech t.cfg.library design
    in
    let inc = Incremental.init ~config t.cfg.tech handle design in
    maybe_prune t.cfg;
    let c = { rt_netlist = nl; rt_inc = inc; rt_edits = 0 } in
    Hashtbl.add t.sessions key c;
    Metrics.set_gauge g_sessions (float_of_int (Hashtbl.length t.sessions));
    (bm, c)

let session_report t ~session name op_name =
  let bm = resolve_circuit name in
  match Hashtbl.find_opt t.sessions (session, bm.Bm.name, op_name) with
  | Some c -> Some (Incremental.report c.rt_inc)
  | None -> None

let drop_session t ~session =
  let doomed =
    Hashtbl.fold
      (fun ((s, _, _) as k) _ acc -> if s = session then k :: acc else acc)
      t.sessions []
  in
  List.iter (Hashtbl.remove t.sessions) doomed;
  Metrics.set_gauge g_sessions (float_of_int (Hashtbl.length t.sessions))

(* ---- dispatch ---- *)

let num f = P.Jnum f
let str s = P.Jstr s
let jint i = P.Jnum (float_of_int i)

let dist_fields d ~sigma =
  [
    ("mean_s", num d.Ssta.d_mean);
    ("std_s", num (Ssta.std d));
    ("q_s", num (Ssta.quantile d ~sigma));
    ("qneg_s", num (Ssta.quantile d ~sigma:(-.sigma)));
  ]

let do_analyze t ~session fields =
  let circuit = P.str_field fields "circuit" in
  match P.opt_str_field fields "engine" ~default:"ssta" with
  | "ssta" ->
    let op_name = P.opt_str_field fields "max" ~default:"clark" in
    let sigma = P.opt_num_field fields "sigma" ~default:3.0 in
    (* A session that retimed this (circuit, max) sees its edited
       context — the interactive ECO loop; everyone else the pristine
       shared one. *)
    let report =
      match session_report t ~session circuit op_name with
      | Some r -> r
      | None -> (ssta_context t circuit op_name).st_report
    in
    let worst = Ssta.circuit_dist report in
    let q3 = Ssta.quantile worst ~sigma:3.0 in
    let period =
      match P.find fields "period" with
      | Some _ -> P.num_field fields "period" *. 1e-12
      | None -> q3
    in
    let slack = Timing_report.of_ssta ~period report in
    [
      ("op", str "analyze"); ("circuit", str circuit); ("engine", str "ssta");
      ("max", str op_name);
    ]
    @ dist_fields worst ~sigma
    @ [
        ("wns_s", num slack.Timing_report.s_wns);
        ("tns_s", num slack.Timing_report.s_tns);
      ]
  | "scalar" ->
    let sigma = P.opt_int_field fields "sigma" ~default:3 in
    let c = scalar_context t circuit in
    let model = Lazy.force t.model in
    [
      ("op", str "analyze"); ("circuit", str circuit);
      ("engine", str "scalar");
      ("nominal_s", num (Engine.circuit_delay c.sc_report));
      ("stages", jint (Path.n_stages c.sc_path));
      ("q_s",
       num (Model.path_quantile_of_path model c.sc_design c.sc_path ~sigma));
      ("qneg_s",
       num
         (Model.path_quantile_of_path model c.sc_design c.sc_path
            ~sigma:(-sigma)));
    ]
  | e -> P.fail "unknown engine %S (available: scalar, ssta)" e

let kernel_of_name = function
  | "fast" -> Cell_sim.Fast
  | "rk4" -> Cell_sim.Rk4
  | "auto" -> Cell_sim.Auto
  | s -> P.fail "unknown kernel %S (available: fast, rk4, auto)" s

let do_path_mc t fields =
  let circuit = P.str_field fields "circuit" in
  let n = P.opt_int_field fields "n" ~default:200 in
  if n <= 0 then P.fail "field \"n\" must be positive, got %d" n;
  let sigma = P.opt_int_field fields "sigma" ~default:3 in
  let kernel =
    kernel_of_name (P.opt_str_field fields "kernel" ~default:"fast")
  in
  let c = scalar_context t circuit in
  let stats =
    Path_mc.run ~kernel ~n ~exec:t.cfg.exec_mc ~sampling:Sampler.Mc t.cfg.tech
      c.sc_design c.sc_path
  in
  [
    ("op", str "path_mc"); ("circuit", str circuit);
    ("mean_s", num stats.Path_mc.moments.Moments.mean);
    ("std_s", num stats.Path_mc.moments.Moments.std);
    ("q_s", num (stats.Path_mc.quantile sigma));
    ("qneg_s", num (stats.Path_mc.quantile (-sigma)));
    ("drawn", jint stats.Path_mc.sampling.Path_mc.si_drawn);
  ]

let do_retime t ~session fields =
  let circuit = P.str_field fields "circuit" in
  let op_name = P.opt_str_field fields "max" ~default:"clark" in
  let edit_line = P.str_field fields "edit" in
  let bm, c = session_context t ~session circuit op_name in
  let edit =
    try Edit.of_json c.rt_netlist edit_line
    with Edit.Edit_error msg -> P.fail "bad edit: %s" msg
  in
  let stats = Incremental.apply c.rt_inc edit in
  c.rt_edits <- c.rt_edits + 1;
  let worst = Ssta.circuit_dist (Incremental.report c.rt_inc) in
  [
    ("op", str "retime"); ("circuit", str bm.Bm.name); ("max", str op_name);
    ("mean_s", num worst.Ssta.d_mean);
    ("q3_s", num (Ssta.quantile worst ~sigma:3.0));
    ("invalidated", jint stats.Incremental.st_invalidated);
    ("dirty", jint stats.Incremental.st_dirty);
    ("cutoffs", jint stats.Incremental.st_cutoffs);
    ("edits", jint c.rt_edits);
  ]

let do_stats t =
  [
    ("op", str "stats");
    ("requests", jint t.n_requests);
    ("batched", jint t.n_batched);
    ("errors", jint t.n_errors);
    ("cache_hits", jint t.n_cache_hit);
    ("cache_misses", jint t.n_cache_miss);
    ("contexts", jint (Lru.length t.contexts));
    ("sessions", jint (Hashtbl.length t.sessions));
  ]

let observability_of_op = function
  | "analyze" -> (h_analyze, t_analyze)
  | "path_mc" -> (h_path_mc, t_path_mc)
  | "retime" -> (h_retime, t_retime)
  | _ -> (h_misc, t_misc)

(* Answer one parsed request with response fields (no "id"/"ok" yet) —
   the seam the coalescing layer caches on. *)
let dispatch t ~session fields =
  let op = P.str_field fields "op" in
  let hist, span = observability_of_op op in
  let t0 = Metrics.now () in
  Fun.protect
    ~finally:(fun () -> Metrics.observe hist (Metrics.now () -. t0))
    (fun () ->
      Trace.with_span span ~a:(float_of_int session) (fun () ->
          match op with
          | "ping" -> [ ("op", str "ping") ]
          | "analyze" -> do_analyze t ~session fields
          | "path_mc" -> do_path_mc t fields
          | "retime" -> do_retime t ~session fields
          | "stats" -> do_stats t
          | op ->
            P.fail
              "unknown op %S (available: ping, analyze, path_mc, retime, \
               stats)"
              op))

let request_id fields =
  match P.find fields "id" with Some v -> v | None -> P.Jnull

let error_response t id msg =
  t.n_errors <- t.n_errors + 1;
  Metrics.incr m_errors;
  [ ("id", id); ("ok", P.Jbool false); ("error", str msg) ]

let count_request t =
  t.n_requests <- t.n_requests + 1;
  Metrics.incr m_requests

(* Coalescable = answer depends only on shared pristine state, never on
   session retained state or serving history.  An ssta analyze from a
   session with a live retime context is session-dependent, so it is
   checked per request below. *)
let session_dependent t ~session fields =
  match P.find fields "op" with
  | Some (P.Jstr "analyze") -> (
    match P.find fields "circuit" with
    | Some (P.Jstr circuit) -> (
      P.opt_str_field fields "engine" ~default:"ssta" = "ssta"
      &&
      let op_name = P.opt_str_field fields "max" ~default:"clark" in
      match resolve_circuit circuit with
      | bm -> Hashtbl.mem t.sessions (session, bm.Bm.name, op_name)
      | exception P.Protocol_error _ -> false)
    | _ -> false)
  | Some (P.Jstr ("ping" | "path_mc")) -> false
  | _ -> true

let respond_fields t ~session fields =
  count_request t;
  let id = request_id fields in
  match dispatch t ~session fields with
  | body -> (("id", id) :: ("ok", P.Jbool true) :: body, true)
  | exception P.Protocol_error msg -> (error_response t id msg, false)
  | exception Edit.Edit_error msg ->
    (error_response t id ("bad edit: " ^ msg), false)
  | exception Failure msg -> (error_response t id msg, false)
  | exception Invalid_argument msg -> (error_response t id msg, false)

let handle t ~session line =
  match P.parse_line line with
  | fields -> P.to_line (fst (respond_fields t ~session fields))
  | exception P.Protocol_error msg ->
    count_request t;
    P.to_line (error_response t P.Jnull msg)

(* One admission batch: requests that became complete in the same
   readiness cycle.  FIFO per connection (retime ordering); read-only
   requests asking the same question are answered once and re-issued
   under each requester's id. *)
let process_batch t requests =
  Metrics.set_gauge g_inflight (float_of_int (List.length requests));
  let memo : (string, (string * P.jvalue) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let responses =
    List.map
      (fun (session, line) ->
        match P.parse_line line with
        | exception P.Protocol_error msg ->
          count_request t;
          (session, P.to_line (error_response t P.Jnull msg))
        | fields ->
          let resp =
            if session_dependent t ~session fields then
              fst (respond_fields t ~session fields)
            else begin
              let signature = P.signature fields in
              match Hashtbl.find_opt memo signature with
              | Some body ->
                count_request t;
                t.n_batched <- t.n_batched + 1;
                Metrics.incr m_batched;
                ("id", request_id fields) :: body
              | None ->
                let resp, cacheable = respond_fields t ~session fields in
                if cacheable then
                  Hashtbl.add memo signature (List.tl resp);
                resp
            end
          in
          (session, P.to_line resp))
      requests
  in
  Metrics.set_gauge g_inflight 0.0;
  responses

(* ---- event loop ---- *)

type conn = {
  fd : Unix.file_descr;
  session : int;
  dec : P.decoder;
  mutable alive : bool;
}

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let run t ~socket ?(framing = P.Jsonl) () =
  let stop = Atomic.make false in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists socket then Sys.remove socket;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 64;
  Log.info "serving on %s (%s framing)" socket (P.framing_name framing);
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_session = ref 0 in
  let close_conn c =
    if c.alive then begin
      c.alive <- false;
      Hashtbl.remove conns c.fd;
      drop_session t ~session:c.session;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end
  in
  let buf = Bytes.create 65536 in
  let read_conn c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> close_conn c
    | n -> P.feed c.dec buf n
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* Pull every complete request, FIFO per connection, connections in
     session order so batches are deterministic. *)
  let drain_requests () =
    let ordered =
      Hashtbl.fold (fun _ c acc -> c :: acc) conns []
      |> List.sort (fun a b -> compare a.session b.session)
    in
    List.concat_map
      (fun c ->
        let rec pull acc =
          match P.next c.dec with
          | Some line -> pull ((c, line) :: acc)
          | None -> List.rev acc
          | exception P.Protocol_error msg ->
            (* Unrecoverable framing corruption: answer once, drop. *)
            count_request t;
            let resp = P.to_line (error_response t P.Jnull msg) in
            (try write_all c.fd (P.encode framing resp)
             with Unix.Unix_error _ -> ());
            close_conn c;
            List.rev acc
        in
        pull [])
      ordered
  in
  let answer requests =
    let by_conn =
      process_batch t (List.map (fun (c, line) -> (c.session, line)) requests)
    in
    List.iter2
      (fun (c, _) (_, resp) ->
        if c.alive then
          try write_all c.fd (P.encode framing resp)
          with Unix.Unix_error _ -> close_conn c)
      requests by_conn
  in
  let rec loop () =
    if Atomic.get stop then ()
    else begin
      let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      match Unix.select fds [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = srv then begin
              match Unix.accept srv with
              | cfd, _ ->
                let session = !next_session in
                incr next_session;
                Hashtbl.replace conns cfd
                  { fd = cfd; session; dec = P.decoder framing; alive = true }
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            end
            else
              match Hashtbl.find_opt conns fd with
              | Some c -> read_conn c
              | None -> ())
          readable;
        (match drain_requests () with [] -> () | reqs -> answer reqs);
        loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* Graceful drain: no new connections, answer whatever is already
         fully received, then tear down. *)
      (try Unix.close srv with Unix.Unix_error _ -> ());
      (match drain_requests () with [] -> () | reqs -> answer reqs);
      Hashtbl.fold (fun _ c acc -> c :: acc) conns []
      |> List.iter close_conn;
      (try Sys.remove socket with Sys_error _ -> ());
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      Log.info "server drained %d request(s), shut down cleanly" t.n_requests)
    loop
