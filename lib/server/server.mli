(** Long-lived timing server: load and characterize once, answer many.

    A server value owns everything a one-shot CLI run pays for on every
    invocation — the characterized library, the fitted N-sigma model,
    per-circuit analysis contexts (nominal engine reports, compiled
    critical paths, full SSTA passes with their provider memo), and the
    {!Nsigma_liberty.Store}-backed on-disk regression store — and keeps
    it hot across queries.

    {b Protocol.}  One request per {!Protocol} line, dispatched on its
    ["op"] field; every response echoes the request's ["id"] and
    carries ["ok"] (errors report [ok:false] with an ["error"]
    message instead of killing the connection):

    - [ping] — liveness probe.
    - [analyze] — ["circuit"] (benchmark name, small variants
      included), ["engine"] ("ssta" default, or "scalar"), ["max"]
      ("clark" default, or "moment"), ["sigma"] (default 3),
      ["period"] (ps, default the +3σ arrival).  Reports mean/std and
      ±σ quantiles (seconds), plus WNS/TNS for ssta.
    - [path_mc] — ["circuit"], ["n"] (default 200), ["sigma"] (integer,
      default 3), ["kernel"] ("fast" default — interactive serving —
      or "rk4"/"auto").  Monte-Carlo on the nominal critical path with
      the plain Mc deviate stream, seed-per-index deterministic.
    - [retime] — ["circuit"], ["max"], ["edit"] (one
      {!Nsigma_netlist.Edit} JSON object, passed as a string field).
      Applies the edit to this session's retained {!Incremental}
      context (created on first use) and reports the post-edit
      distribution plus the incremental-engine work counters.
    - [stats] — server counters (requests, batched, errors, context
      cache hits/misses, live contexts and sessions).  Excluded from
      bit-identity replays: it reflects serving history.

    An ssta [analyze] from a session that has retimed the same
    (circuit, max operator) answers from that session's edited context
    — the interactive ECO loop — while other sessions keep seeing the
    pristine shared context.

    {b Determinism.}  Responses are a pure function of the request
    sequence of a session (never of batching, connection interleaving
    or cache state), so a warm server's responses are byte-identical
    to replaying the same lines through a fresh [t] — the bench and CI
    bit-identity gates compare exactly that.

    {b Telemetry.}  [server.{requests,batched,errors,cache.hit,
    cache.miss}] counters, [server.{inflight,sessions}] gauges and
    per-class [server.latency.{analyze,path_mc,retime,misc}]
    histograms (p50/p95/p99 in snapshots); each request runs under a
    [server.<op>] trace span when tracing is enabled. *)

type config = {
  tech : Nsigma_process.Technology.t;
  library : Nsigma_liberty.Library.t;
  exec_provider : Nsigma_exec.Executor.t;
      (** pool for context builds (provider mini-MC, SSTA passes) *)
  exec_mc : Nsigma_exec.Executor.t;  (** pool for [path_mc] sampling *)
  max_contexts : int;  (** shared per-(circuit, config) context LRU bound *)
  store_dir : string option option;
      (** provider store: [None] = environment default,
          [Some None] = disabled, [Some (Some dir)] = pinned *)
  store_max_bytes : int option;
      (** prune the provider store to this bound after each context
          build ({!Nsigma_liberty.Store.prune}) *)
}

val default_config :
  Nsigma_process.Technology.t -> Nsigma_liberty.Library.t -> config
(** Sequential executors, 8 contexts, environment-default store, no
    store bound. *)

type t

val create : config -> t
(** Light: contexts build lazily on first query. *)

val handle : t -> session:int -> string -> string
(** Answer one request line with one response line (no framing).
    Never raises on bad input — malformed requests get an [ok:false]
    response.  [session] scopes retained retime contexts; one-shot
    embeddings use a constant. *)

val drop_session : t -> session:int -> unit
(** Free the session's retained retime contexts (connection close). *)

val run :
  t -> socket:string -> ?framing:Protocol.framing -> unit -> unit
(** Serve on a Unix-domain socket until SIGTERM/SIGINT, then drain:
    stop accepting, answer every fully-received request, close
    connections, unlink the socket and return.  Single-threaded
    [select] event loop; requests that arrive in the same readiness
    cycle are admitted as one batch, and read-only requests with equal
    {!Protocol.signature}s in a batch are coalesced into one
    computation (counted as [server.batched]).  Per-connection request
    order is always preserved.  A stale socket file at [socket] is
    replaced.  SIGPIPE is ignored; a client that disconnects mid-write
    just loses its connection. *)
