(** JSON-lines request/response codec for the timing server.

    One request or response is one flat JSON object — string, number,
    boolean or null fields, no nesting, no arrays — so the codec stays
    dependency-free (the same discipline as the edit-script format in
    {!Nsigma_netlist.Edit}).  Nested payloads (e.g. a retime edit)
    travel as a JSON-encoded string field.

    Emission is deterministic: fields render in the order given,
    numbers as ["%.0f"] when integral and ["%.17g"] otherwise, so a
    float round-trips bit for bit — response equality between a warm
    server and a cold one-shot process is plain string equality.

    Two wire framings carry the same lines: newline-delimited JSON
    ([Jsonl], the default) and netstring-style length prefixing
    ([Length_prefixed], [<byte-count>:<payload>]) for clients whose
    payloads may embed newlines.  {!decoder} performs incremental
    de-framing over arbitrary read boundaries for both. *)

type jvalue = Jnull | Jbool of bool | Jnum of float | Jstr of string

exception Protocol_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [Printf]-style {!Protocol_error} raiser. *)

(** {2 Parsing} *)

val parse_line : string -> (string * jvalue) list
(** Parse one flat object, preserving field order.
    @raise Protocol_error on malformed input or duplicate fields. *)

val find : (string * jvalue) list -> string -> jvalue option

val str_field : (string * jvalue) list -> string -> string
(** @raise Protocol_error when missing or not a string. *)

val num_field : (string * jvalue) list -> string -> float
val int_field : (string * jvalue) list -> string -> int
val opt_str_field : (string * jvalue) list -> string -> default:string -> string
val opt_num_field : (string * jvalue) list -> string -> default:float -> float
val opt_int_field : (string * jvalue) list -> string -> default:int -> int

(** {2 Emission} *)

val to_line : (string * jvalue) list -> string
(** Render a flat object (no trailing newline). *)

val signature : (string * jvalue) list -> string
(** Canonical identity of a request for coalescing: the fields sorted
    by name with ["id"] dropped, rendered as {!to_line}.  Two requests
    with equal signatures ask the same question and may share one
    computation. *)

(** {2 Framing} *)

type framing = Jsonl | Length_prefixed

val framing_name : framing -> string
val framing_of_name : string -> framing
(** @raise Protocol_error on an unknown name. *)

val encode : framing -> string -> string
(** Frame one message for the wire: [line ^ "\n"] under [Jsonl],
    [sprintf "%d:%s" length line] under [Length_prefixed]. *)

type decoder
(** Incremental de-framer: feed raw received bytes in, pull complete
    messages out, independent of how reads split the stream. *)

val decoder : framing -> decoder

val feed : decoder -> bytes -> int -> unit
(** Append the first [len] bytes of the buffer to the pending input. *)

val next : decoder -> string option
(** The next complete message, de-framed ([Jsonl] strips the newline
    and any trailing [\r]), or [None] when more bytes are needed.
    @raise Protocol_error on a malformed length prefix. *)

val pending : decoder -> bool
(** Whether un-consumed bytes remain buffered (a partial message). *)
