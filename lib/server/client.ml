module P = Protocol

type t = { fd : Unix.file_descr; framing : P.framing; dec : P.decoder }

let connect ?(framing = P.Jsonl) ?(retries = 0) ~socket () =
  let rec attempt left =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match e with
      | Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when left > 0 ->
        Unix.sleepf 0.05;
        attempt (left - 1)
      | e -> raise e)
  in
  { fd = attempt retries; framing; dec = P.decoder framing }

let send t line =
  let s = P.encode t.framing line in
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring t.fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let buf = Bytes.create 65536

let rec recv t =
  match P.next t.dec with
  | Some line -> line
  | None -> (
    match Unix.read t.fd buf 0 (Bytes.length buf) with
    | 0 -> failwith "server closed the connection"
    | n ->
      P.feed t.dec buf n;
      recv t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv t)

let request t line =
  send t line;
  recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
