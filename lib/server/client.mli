(** Blocking client for the timing server's Unix-domain socket.

    Thin convenience over the {!Protocol} codec: connect, send request
    lines (pipelining allowed), read de-framed response lines.  Used by
    the CLI [query] subcommand, the server bench and the CI smoke. *)

type t

val connect :
  ?framing:Protocol.framing -> ?retries:int -> socket:string -> unit -> t
(** Connect to [socket].  [retries] (default 0) re-attempts at 50 ms
    intervals while the socket is missing or refusing — for callers
    racing a daemon's startup.
    @raise Unix.Unix_error when connection ultimately fails. *)

val send : t -> string -> unit
(** Frame and send one request line.  Pipelining is fine: the server
    answers in order per connection. *)

val recv : t -> string
(** Block for the next response line.
    @raise Failure if the server closes the connection first. *)

val request : t -> string -> string
(** [send] then [recv]. *)

val close : t -> unit
