(* Flat-JSON-object codec, the same hand-rolled shape as the edit-script
   parser in Nsigma_netlist.Edit extended with booleans and null, plus
   the two wire framings.  No json dependency on purpose. *)

type jvalue = Jnull | Jbool of bool | Jnum of float | Jstr of string

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

(* ---- parsing ---- *)

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail "expected %C at column %d" c (!pos + 1)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          if !pos + 1 >= n then fail "unterminated escape";
          (match line.[!pos + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | c -> fail "unsupported escape \\%c" c);
          pos := !pos + 2;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub line !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "malformed value at column %d" (!pos + 1)
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected a value at column %d" (start + 1);
    let tok = String.sub line start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> f
    | None -> fail "malformed number %S" tok
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> parse_literal "true" (Jbool true)
    | Some 'f' -> parse_literal "false" (Jbool false)
    | Some 'n' -> parse_literal "null" Jnull
    | _ -> Jnum (parse_number ())
  in
  expect '{';
  skip_ws ();
  let fields = ref [] in
  (match peek () with
  | Some '}' -> incr pos
  | _ ->
    let rec pairs () =
      skip_ws ();
      let k = parse_string () in
      expect ':';
      let v = parse_value () in
      if List.mem_assoc k !fields then fail "duplicate field %S" k;
      fields := (k, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
        incr pos;
        pairs ()
      | Some '}' -> incr pos
      | _ -> fail "expected ',' or '}' at column %d" (!pos + 1)
    in
    pairs ());
  skip_ws ();
  if !pos <> n then fail "trailing characters at column %d" (!pos + 1);
  List.rev !fields

let find fields key = List.assoc_opt key fields

let field fields key =
  match find fields key with
  | Some v -> v
  | None -> fail "missing field %S" key

let str_field fields key =
  match field fields key with
  | Jstr s -> s
  | _ -> fail "field %S must be a string" key

let num_field fields key =
  match field fields key with
  | Jnum f -> f
  | _ -> fail "field %S must be a number" key

let int_field fields key =
  let f = num_field fields key in
  if Float.is_integer f then int_of_float f
  else fail "field %S must be an integer, got %g" key f

let opt_str_field fields key ~default =
  match find fields key with
  | None -> default
  | Some (Jstr s) -> s
  | Some _ -> fail "field %S must be a string" key

let opt_num_field fields key ~default =
  match find fields key with
  | None -> default
  | Some (Jnum f) -> f
  | Some _ -> fail "field %S must be a number" key

let opt_int_field fields key ~default =
  match find fields key with
  | None -> default
  | Some _ -> int_field fields key

(* ---- emission ---- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Integral floats render without an exponent (ids, counts); everything
   else with 17 significant digits, which round-trips an IEEE double
   exactly — bit-identity checks compare these strings. *)
let num_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let value_to_string = function
  | Jnull -> "null"
  | Jbool b -> if b then "true" else "false"
  | Jnum f -> num_to_string f
  | Jstr s -> "\"" ^ escape s ^ "\""

let to_line fields =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\": %s" (escape k) (value_to_string v))
         fields)
  ^ "}"

let signature fields =
  fields
  |> List.filter (fun (k, _) -> k <> "id")
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> to_line

(* ---- framing ---- *)

type framing = Jsonl | Length_prefixed

let framing_name = function
  | Jsonl -> "jsonl"
  | Length_prefixed -> "length"

let framing_of_name = function
  | "jsonl" -> Jsonl
  | "length" -> Length_prefixed
  | s -> fail "unknown framing %S (available: jsonl, length)" s

let encode framing line =
  match framing with
  | Jsonl -> line ^ "\n"
  | Length_prefixed -> Printf.sprintf "%d:%s" (String.length line) line

type decoder = { d_framing : framing; mutable d_buf : string }

let decoder framing = { d_framing = framing; d_buf = "" }

let feed d bytes len = d.d_buf <- d.d_buf ^ Bytes.sub_string bytes 0 len

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let next d =
  match d.d_framing with
  | Jsonl -> (
    match String.index_opt d.d_buf '\n' with
    | None -> None
    | Some i ->
      let line = strip_cr (String.sub d.d_buf 0 i) in
      d.d_buf <- String.sub d.d_buf (i + 1) (String.length d.d_buf - i - 1);
      Some line)
  | Length_prefixed -> (
    match String.index_opt d.d_buf ':' with
    | None ->
      (* A length prefix is at most a handful of digits; anything longer
         is a corrupted stream, not a short read. *)
      if String.length d.d_buf > 20 then
        fail "malformed length prefix (no ':' in %d bytes)"
          (String.length d.d_buf);
      None
    | Some i -> (
      let tok = String.sub d.d_buf 0 i in
      match int_of_string_opt tok with
      | Some len when len >= 0 ->
        let total = i + 1 + len in
        if String.length d.d_buf < total then None
        else begin
          let payload = String.sub d.d_buf (i + 1) len in
          d.d_buf <-
            String.sub d.d_buf total (String.length d.d_buf - total);
          Some payload
        end
      | _ -> fail "malformed length prefix %S" tok))

let pending d = d.d_buf <> ""
