module Netlist = Nsigma_netlist.Netlist
module Cell = Nsigma_liberty.Cell
module Wire_gen = Nsigma_rcnet.Wire_gen
module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore
module Arc = Nsigma_spice.Arc
module Rc_sim = Nsigma_spice.Rc_sim
module Cell_sim = Nsigma_spice.Cell_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Variation = Nsigma_process.Variation
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Rng = Nsigma_stats.Rng
module Sampler = Nsigma_stats.Sampler
module Executor = Nsigma_exec.Executor
module Metrics = Nsigma_obs.Metrics
module Progress = Nsigma_obs.Progress

(* Registered at module init so run reports always carry the path-MC
   keys, zero-valued when no path study ran.  The sampling.* counters
   are shared with the characterisation layer (the registry is
   idempotent by name). *)
let m_samples = Metrics.counter "path_mc.samples"
let m_non_convergent = Metrics.counter "path_mc.non_convergent"
let m_sampling_batches = Metrics.counter "sampling.batches"
let m_sampling_saved = Metrics.counter "sampling.samples_saved"

type sampling_info = {
  si_backend : Sampler.backend;
  si_rtol : float option;
  si_requested : int;
  si_drawn : int;
  si_saved : int;
  si_non_convergent : int;
  si_batches : int;
}

type stats = {
  samples : float array;
  moments : Moments.summary;
  quantile : int -> float;
  sampling : sampling_info;
}

let edge_of = function Provider.Rise -> `Rise | Provider.Fall -> `Fall

(* The tap through which the path leaves each hop's output net: the next
   hop's tap, or the PO tap after the last gate. *)
let out_taps (path : Path.t) =
  let rec go = function
    | [] -> []
    | [ (_ : Path.hop) ] -> [ path.Path.end_tap ]
    | _ :: (next :: _ as rest) -> next.Path.tap :: go rest
  in
  go path.Path.hops

(* Full-swing-equivalent 20–80% slew of a single-pole response with time
   constant RC: (ln(0.8/0.2)·RC)/0.6 = 2.31·RC.  Used by the fast hop
   model to turn an Elmore time constant into the slew convention the
   next stage's cell simulation expects. *)
let peri_slew_factor = Float.log 4.0 /. 0.6

(* One hop of the fast path model: the driver cell is simulated with the
   analytic kernel into the net's total (lumped) capacitance, the wire
   adds its D2M delay at the exit tap, and the tap slew degrades the
   driver's output slew PERI-style (root-sum-square with the single-pole
   slew of the wire's Elmore constant).  The cell/wire interaction is
   thus approximated, not co-simulated — which is why [Auto] maps to the
   transient reference here. *)
let fast_hop tech arc ~tree ~load_caps ~tap ~input_slew =
  let loaded =
    List.fold_left (fun tr (node, c) -> Rctree.add_cap tr node c) tree load_caps
  in
  let r =
    Cell_sim.run ~kernel:Cell_sim.Fast tech arc ~input_slew
      ~load_cap:(Rctree.total_cap loaded)
  in
  let wire = Elmore.d2m_at loaded tap in
  let elmore = Elmore.delay_at loaded tap in
  let wire_slew = peri_slew_factor *. elmore in
  let out_slew =
    sqrt ((r.Cell_sim.output_slew *. r.Cell_sim.output_slew)
         +. (wire_slew *. wire_slew))
  in
  (r.Cell_sim.delay, wire, out_slew)

(* Simulate one sample; [record_wire i d] is called with each hop's
   outgoing wire delay. *)
let simulate_sample_record ?(steps = 200) ?(kernel = Cell_sim.Rk4) tech
    (design : Design.t) (path : Path.t) sample ~record_wire =
  let nl = design.Design.netlist in
  let taps = out_taps path in
  let slew = ref Provider.input_slew_default in
  let total = ref 0.0 in
  let fast = kernel = Cell_sim.Fast in
  List.iteri
    (fun i (hop, tap) ->
      let gate = nl.Netlist.gates.(hop.Path.gate) in
      let arc =
        Cell.arc tech sample gate.Netlist.cell ~output_edge:(edge_of hop.Path.out_edge)
      in
      let tree = Wire_gen.vary tech sample design.Design.parasitics.(hop.Path.out_net) in
      let load_caps = Design.sink_caps tech design ~net:hop.Path.out_net in
      let driver_delay, wire, out_slew =
        if fast then fast_hop tech arc ~tree ~load_caps ~tap ~input_slew:!slew
        else begin
          let r =
            Rc_sim.simulate ~steps tech ~driver:arc ~tree ~load_caps
              ~input_slew:!slew
          in
          let find_tap pairs =
            let _, v =
              Array.to_list pairs |> List.find (fun (node, _) -> node = tap)
            in
            v
          in
          let wire = find_tap r.Rc_sim.tap_delays in
          (r.Rc_sim.driver_delay, wire, find_tap r.Rc_sim.tap_slews)
        end
      in
      record_wire i wire;
      total := !total +. driver_delay +. wire;
      slew := Float.max 1e-12 out_slew)
    (List.combine path.Path.hops taps);
  !total

let simulate_sample ?steps ?kernel tech design path sample =
  simulate_sample_record ?steps ?kernel tech design path sample
    ~record_wire:(fun _ _ -> ())

(* ------------------------------------------------------------------ *)
(* Precompiled path plan: everything sample-independent — cell arc     *)
(* skeletons, private RC-tree copies with their refill scratch, sink   *)
(* loads, tap positions — resolved once per worker, so the per-sample  *)
(* loop only draws deviates and fills preallocated state in place.     *)
(* ------------------------------------------------------------------ *)

type hop_plan = {
  hp_sk : Arc.skeleton;  (* driver cell, refilled per sample *)
  hp_base : Rctree.t;  (* pristine parasitic tree (never mutated) *)
  hp_tree : Rctree.t;  (* private copy, refilled per sample *)
  hp_res : float array;  (* refill scratch, length n_nodes *)
  hp_cap : float array;
  hp_load_caps : (int * float) list;  (* sink pin caps, attach order *)
  hp_tap : int;  (* exit tap node *)
  hp_tap_pos : int;  (* index of hp_tap in the tree's taps array *)
}

type plan = { hops : hop_plan array }

let plan_of tech (design : Design.t) (path : Path.t) =
  let nl = design.Design.netlist in
  let hops =
    List.map2
      (fun (hop : Path.hop) tap ->
        let gate = nl.Netlist.gates.(hop.Path.gate) in
        let base = design.Design.parasitics.(hop.Path.out_net) in
        let n_nodes = Rctree.n_nodes base in
        let tap_pos =
          match
            Array.find_index (fun t -> t = tap) base.Rctree.taps
          with
          | Some p -> p
          | None ->
            invalid_arg
              (Printf.sprintf "Path_mc.plan_of: tap %d is not a tap of net %s"
                 tap nl.Netlist.net_names.(hop.Path.out_net))
        in
        {
          hp_sk =
            Cell.plan tech gate.Netlist.cell
              ~output_edge:(edge_of hop.Path.out_edge);
          hp_base = base;
          hp_tree = Rctree.copy base;
          hp_res = Array.make n_nodes 0.0;
          hp_cap = Array.make n_nodes 0.0;
          hp_load_caps = Design.sink_caps tech design ~net:hop.Path.out_net;
          hp_tap = tap;
          hp_tap_pos = tap_pos;
        })
      path.Path.hops (out_taps path)
    |> Array.of_list
  in
  { hops }

(* Standard-normal deviates one path sample consumes: the three global
   corners, then per hop the cell skeleton's locals ([Arc.fill] order)
   followed by two per non-root wire node ([Wire_gen.vary_into] order:
   dr before dc, nodes ascending).  This is the vector dimension a
   [Sampler] stream must produce for {!simulate_planned}. *)
let deviate_dim (p : plan) =
  Array.fold_left
    (fun acc hp ->
      acc
      + Arc.skeleton_local_dim hp.hp_sk
      + (2 * (Rctree.n_nodes hp.hp_base - 1)))
    Variation.global_deviate_dim p.hops

(* One sample through the plan.  Mirrors [simulate_sample_record] deviate
   for deviate: per hop the cell skeleton fills first (same draw order as
   [Cell.arc]), then the wire refills (same order as [Wire_gen.vary]),
   then the same hop arithmetic runs on the filled state — so the path
   delay is bit-identical to the rebuild-per-sample reference, as
   test_plan asserts. *)
let simulate_planned ?(steps = 200) ?(kernel = Cell_sim.Rk4) tech (p : plan)
    sample ~record_wire =
  let fast = kernel = Cell_sim.Fast in
  let slew = ref Provider.input_slew_default in
  let total = ref 0.0 in
  Array.iteri
    (fun i hp ->
      Arc.fill tech hp.hp_sk sample;
      Wire_gen.vary_into tech sample ~base:hp.hp_base ~into:hp.hp_tree
        ~res:hp.hp_res ~cap:hp.hp_cap;
      let driver_delay, wire, out_slew =
        if fast then begin
          List.iter
            (fun (node, c) -> Rctree.bump_cap hp.hp_tree node c)
            hp.hp_load_caps;
          let r =
            Cell_sim.run_compiled ~kernel:Cell_sim.Fast tech
              (Arc.skeleton_compiled hp.hp_sk)
              ~input_slew:!slew
              ~load_cap:(Rctree.total_cap hp.hp_tree)
          in
          let wire = Elmore.d2m_at hp.hp_tree hp.hp_tap in
          let elmore = Elmore.delay_at hp.hp_tree hp.hp_tap in
          let wire_slew = peri_slew_factor *. elmore in
          let out_slew =
            sqrt ((r.Cell_sim.output_slew *. r.Cell_sim.output_slew)
                 +. (wire_slew *. wire_slew))
          in
          (r.Cell_sim.delay, wire, out_slew)
        end
        else begin
          let r =
            Rc_sim.simulate ~steps tech ~driver:(Arc.skeleton_arc hp.hp_sk)
              ~tree:hp.hp_tree ~load_caps:hp.hp_load_caps ~input_slew:!slew
          in
          let wire = snd r.Rc_sim.tap_delays.(hp.hp_tap_pos) in
          (r.Rc_sim.driver_delay, wire, snd r.Rc_sim.tap_slews.(hp.hp_tap_pos))
        end
      in
      record_wire i wire;
      total := !total +. driver_delay +. wire;
      slew := Float.max 1e-12 out_slew)
    p.hops;
  !total

(* ------------------------------------------------------------------ *)
(* Batched (SoA) path evaluation: one chunk of samples walks the plan  *)
(* hop-major, with every hop's cell simulations fused into one         *)
(* [Cell_sim.Batch.eval].  Each sample owns its [Variation.t] (its own *)
(* local-deviate cursor), so interleaving samples within a hop         *)
(* preserves every sample's draw order exactly — and since no FP state *)
(* is shared between samples, each one's value path is the scalar      *)
(* [simulate_planned] sequence expression for expression.  Failed      *)
(* samples (ramp/settled non-convergence) drop out of later hops,      *)
(* mirroring the scalar loop's [Failure] → NaN mapping.                *)
(* ------------------------------------------------------------------ *)

type batch_state = {
  bs_slews : float array;  (* running input slew per sample *)
  bs_totals : float array;  (* accumulated path delay per sample *)
  bs_failed : bool array;
  bs_wire : float array;  (* current hop's D2M wire delay per sample *)
  bs_wslew : float array;  (* current hop's single-pole wire slew *)
  bs_slot : int array;  (* sample → batch slot for the current hop *)
}

let batch_state_create capacity =
  {
    bs_slews = Array.make capacity 0.0;
    bs_totals = Array.make capacity 0.0;
    bs_failed = Array.make capacity false;
    bs_wire = Array.make capacity 0.0;
    bs_wslew = Array.make capacity 0.0;
    bs_slot = Array.make capacity 0;
  }

let simulate_batch_range ~approx tech (p : plan) (b : Cell_sim.Batch.t) st
    ~samples ~out ~lo ~tick =
  let m = Array.length samples in
  for s = 0 to m - 1 do
    st.bs_slews.(s) <- Provider.input_slew_default;
    st.bs_totals.(s) <- 0.0;
    st.bs_failed.(s) <- false
  done;
  Array.iter
    (fun hp ->
      (* Fill pass: per surviving sample, refresh the skeleton and the
         tree (same per-sample draw order as the scalar loop), snapshot
         the compiled constants into the next batch slot and record the
         wire-side quantities before the shared tree scratch is reused. *)
      let k = ref 0 in
      for s = 0 to m - 1 do
        if not st.bs_failed.(s) then begin
          let sample = samples.(s) in
          Arc.fill tech hp.hp_sk sample;
          Wire_gen.vary_into tech sample ~base:hp.hp_base ~into:hp.hp_tree
            ~res:hp.hp_res ~cap:hp.hp_cap;
          List.iter
            (fun (node, c) -> Rctree.bump_cap hp.hp_tree node c)
            hp.hp_load_caps;
          Cell_sim.Batch.load b !k (Arc.skeleton_compiled hp.hp_sk)
            ~input_slew:st.bs_slews.(s)
            ~load_cap:(Rctree.total_cap hp.hp_tree);
          st.bs_wire.(s) <- Elmore.d2m_at hp.hp_tree hp.hp_tap;
          st.bs_wslew.(s) <-
            peri_slew_factor *. Elmore.delay_at hp.hp_tree hp.hp_tap;
          st.bs_slot.(s) <- !k;
          incr k
        end
      done;
      if !k > 0 then Cell_sim.Batch.eval ~approx tech b ~n:!k;
      (* Drain pass: the scalar hop arithmetic, sample by sample. *)
      for s = 0 to m - 1 do
        if not st.bs_failed.(s) then begin
          let t = st.bs_slot.(s) in
          if Cell_sim.Batch.failed b t then st.bs_failed.(s) <- true
          else begin
            let os = Cell_sim.Batch.output_slew b t in
            let ws = st.bs_wslew.(s) in
            let out_slew = sqrt ((os *. os) +. (ws *. ws)) in
            st.bs_totals.(s) <-
              st.bs_totals.(s) +. Cell_sim.Batch.delay b t +. st.bs_wire.(s);
            st.bs_slews.(s) <- Float.max 1e-12 out_slew
          end
        end
      done)
    p.hops;
  for s = 0 to m - 1 do
    out.(lo + s) <- (if st.bs_failed.(s) then Float.nan else st.bs_totals.(s));
    tick ()
  done

let end_net (path : Path.t) =
  match List.rev path.Path.hops with
  | last :: _ -> last.Path.out_net
  | [] -> invalid_arg "Path_mc: empty path"

let no_valid_samples design path ~n =
  let net = end_net path in
  Printf.sprintf
    "Path_mc: no convergent samples (0 of %d) on path ending at net %s" n
    design.Design.netlist.Netlist.net_names.(net)

let run ?steps ?kernel ?(n = 1000) ?(seed = 11) ?(exec = Executor.default ())
    ?sampling ?rtol ?(batch = false) ?(approx = false) tech design path =
  let backend =
    match sampling with Some b -> b | None -> Sampler.default_backend ()
  in
  (* The SoA path only covers the fast hop model with a fixed sample
     count; adaptive runs and the transient reference stay scalar. *)
  let use_batch =
    (batch || approx) && kernel = Some Cell_sim.Fast && rtol = None
  in
  (* The generator is consumed exactly as the pre-sampler loop did
     ([Rng.derive g ~index:i] per sample, no split), so the Mc backend
     replays the legacy population bit for bit. *)
  let g = Rng.create ~seed in
  let sampler =
    match backend with
    | Sampler.Mc -> None
    | _ ->
      (* One probe plan on the calling domain fixes the deviate
         dimension; workers build their own through [init]. *)
      let dim = deviate_dim (plan_of tech design path) in
      Some (Sampler.create backend g ~dim ~n)
  in
  let out = Array.make n Float.nan in
  let drawn, batches =
    Progress.with_bar ~label:"path-mc" ~total:n (fun tick ->
        Metrics.span "path_mc" (fun () ->
            let init () =
              let p = plan_of tech design path in
              let zbuf =
                match sampler with
                | None -> [||]
                | Some s -> Array.make (Sampler.dim s) 0.0
              in
              (p, zbuf)
            in
            let task (p, zbuf) i =
              let sample =
                match sampler with
                | None -> Variation.draw tech (Rng.derive g ~index:i)
                | Some s ->
                  Sampler.fill s ~index:i zbuf;
                  Variation.of_deviates tech zbuf
              in
              let r =
                match
                  simulate_planned ?steps ?kernel tech p sample
                    ~record_wire:(fun _ _ -> ())
                with
                | d -> d
                | exception Failure _ -> Float.nan
              in
              tick ();
              r
            in
            match rtol with
            | None when use_batch ->
              let chunk = Monte_carlo.batch_chunk in
              Executor.map_ranges exec ~chunk
                ~init:(fun () ->
                  ( plan_of tech design path,
                    Cell_sim.Batch.create chunk,
                    batch_state_create chunk ))
                (fun (p, b, st) ~lo ~hi ->
                  let samples =
                    Array.init (hi - lo) (fun s ->
                        let i = lo + s in
                        match sampler with
                        | None -> Variation.draw tech (Rng.derive g ~index:i)
                        | Some sm ->
                          (* Fresh buffer per sample: [of_deviates] keeps
                             a live cursor into it across the hops. *)
                          let z = Array.make (Sampler.dim sm) 0.0 in
                          Sampler.fill sm ~index:i z;
                          Variation.of_deviates tech z)
                  in
                  simulate_batch_range ~approx tech p b st ~samples ~out ~lo
                    ~tick)
                ~n;
              (n, 1)
            | None ->
              Executor.map_float_range exec ~init task ~out ~lo:0 ~hi:n;
              (n, 1)
            | Some rtol ->
              if rtol <= 0.0 then
                invalid_arg "Path_mc.run: rtol must be positive";
              let min_batch = max 2 Monte_carlo.min_adaptive_batch in
              (* Doubling batches, absolute sample indices: an
                 early-stopped population is a bitwise prefix of the full
                 run, and convergence is never tested below
                 [min_adaptive_batch] samples. *)
              let rec loop drawn batches =
                let target =
                  if drawn = 0 then min n min_batch else min n (2 * drawn)
                in
                Executor.map_float_range exec ~init task ~out ~lo:drawn
                  ~hi:target;
                let batches = batches + 1 in
                if target >= n then begin
                  Monte_carlo.trace_batch_event ~out ~target ~converged:false
                    ~capped:true;
                  (target, batches)
                end
                else begin
                  let sorted = Monte_carlo.compact_nan (Array.sub out 0 target) in
                  Array.sort Float.compare sorted;
                  let converged =
                    Array.length sorted >= min_batch
                    && Monte_carlo.quantiles_converged sorted ~rtol
                  in
                  Monte_carlo.trace_batch_event ~out ~target ~converged
                    ~capped:false;
                  if converged then (target, batches)
                  else loop target batches
                end
              in
              loop 0 0))
  in
  let measured = if drawn = n then out else Array.sub out 0 drawn in
  let samples = Monte_carlo.compact_nan measured in
  Metrics.incr m_samples ~by:drawn;
  let failed = drawn - Array.length samples in
  if failed > 0 then Metrics.incr m_non_convergent ~by:failed;
  (match rtol with
  | Some _ ->
    Metrics.incr m_sampling_batches ~by:batches;
    if n > drawn then Metrics.incr m_sampling_saved ~by:(n - drawn)
  | None -> ());
  if Array.length samples = 0 then
    failwith (no_valid_samples design path ~n:drawn);
  Array.sort Float.compare samples;
  let moments = Moments.summary_of_array samples in
  let quantile sigma =
    Quantile.of_sorted samples
      (Quantile.probability_of_sigma (float_of_int sigma))
  in
  let sampling =
    {
      si_backend = backend;
      si_rtol = rtol;
      si_requested = n;
      si_drawn = drawn;
      si_saved = n - drawn;
      si_non_convergent = failed;
      si_batches = batches;
    }
  in
  { samples; moments; quantile; sampling }

let per_wire_quantiles ?steps ?kernel ?(n = 1000) ?(seed = 11)
    ?(exec = Executor.default ()) tech design path ~sigma =
  let n_hops = Path.n_stages path in
  let g = Rng.create ~seed in
  let rows =
    Progress.with_bar ~label:"per-wire quantiles" ~total:n (fun tick ->
        Metrics.span "path_mc.per_wire" (fun () ->
            Executor.map_scratch exec
              ~init:(fun () -> plan_of tech design path)
              (fun p i ->
                let sample = Variation.draw tech (Rng.derive g ~index:i) in
                let wires = Array.make n_hops nan in
                let r =
                  match
                    simulate_planned ?steps ?kernel tech p sample
                      ~record_wire:(fun k d -> wires.(k) <- d)
                  with
                  | (_ : float) -> Some wires
                  | exception Failure _ -> None
                in
                tick ();
                r)
              ~n))
  in
  let rows = Array.to_list rows |> List.filter_map Fun.id in
  Metrics.incr m_samples ~by:n;
  let failed = n - List.length rows in
  if failed > 0 then Metrics.incr m_non_convergent ~by:failed;
  if rows = [] then failwith (no_valid_samples design path ~n);
  List.init n_hops (fun k ->
      let arr = Array.of_list (List.map (fun w -> w.(k)) rows) in
      Nsigma_stats.Quantile.of_sample arr
        (Quantile.probability_of_sigma (float_of_int sigma)))
