(* Block-based statistical STA: the (delay dist, arrival dist)
   instantiation of Engine_core.

   Arrivals and delays are four-moment distributions decomposed into a
   globally-correlated response and an independent local remainder.
   The global response is a reduced second-order model in the three
   shared process corners z = (dvth_n, dvth_p, dbeta) deviates:

     G = sum_i a_i z_i + b_i (z_i^2 - 1)

   Linear and quadratic coefficients add along a path, so correlated
   variance AND correlated skewness compound exactly — near-threshold
   delay is strongly convex in the vth corners, and a linear
   ("sig_g"-only) model visibly under-predicts the +3 sigma tail.
   Locals add independently (variances and third moments add, fourth
   moments pick up the 6·v·v cross term).  Reconvergent fan-in merges
   through a statistical max (Clark or Cornish-Fisher moment matching,
   Stat_max) whose input correlation comes from the tracked global
   coefficients; the result is re-split by the Clark tightness
   probability.  One topological pass covers the whole netlist — the
   block-based alternative to per-path Monte Carlo (Path_mc). *)

module Netlist = Nsigma_netlist.Netlist
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Characterize = Nsigma_liberty.Characterize
module Store = Nsigma_liberty.Store
module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore
module Wire_gen = Nsigma_rcnet.Wire_gen
module Arc = Nsigma_spice.Arc
module Cell_sim = Nsigma_spice.Cell_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Executor = Nsigma_exec.Executor
module Variation = Nsigma_process.Variation
module Moments = Nsigma_stats.Moments
module Stat_max = Nsigma_stats.Stat_max
module Quantile = Nsigma_stats.Quantile
module Rng = Nsigma_stats.Rng
module Metrics = Nsigma_obs.Metrics
module Trace = Nsigma_obs.Trace

(* Registered at module init so run reports always carry the sta.ssta.*
   keys, zero-valued when no statistical run happened. *)
let m_max_ops = Metrics.counter "sta.ssta.max_ops"
let m_max_clark = Metrics.counter "sta.ssta.max.clark"
let m_max_moment = Metrics.counter "sta.ssta.max.moment"
let m_wire_mc = Metrics.counter "sta.ssta.wire_mc_samples"
let m_frac_mc = Metrics.counter "sta.ssta.cell_frac_samples"

(* Per-reconvergence accuracy signals (arXiv:2401.03588 ablates the max
   operator exactly here).  [tightness] is Clark's P(first input wins) —
   dimensionless in [0,1], recorded through the seconds-bucketed
   histogram as-is, so bucket bounds read as plain numbers.  [delta] is
   |mean(Clark max) − mean(moment max)| in seconds for the same inputs:
   the disagreement between the two operators, i.e. where the choice of
   max actually matters on this netlist.  Both are also emitted as
   per-max-op trace instants ([tightness], [delta_s], [rho]). *)
let h_max_tightness = Metrics.histogram "sta.ssta.max.tightness"
let h_max_delta = Metrics.histogram "sta.ssta.max.delta_seconds"

let tr_max =
  Trace.instant_type ~cat:"ssta" ~args:[ "tightness"; "delta_s"; "rho" ]
    "ssta.max"

let ng = Variation.global_deviate_dim

(* ---------------------------------------------------------------- *)
(* Arrival / delay distributions.                                   *)
(* ---------------------------------------------------------------- *)

type dist = {
  d_mean : float;  (** mean delay / arrival (s) *)
  d_a : float array;  (** linear global sensitivities, length 3 (s) *)
  d_b : float array;  (** quadratic (z²−1) global sensitivities (s) *)
  d_var_l : float;  (** independent (local) variance (s²) *)
  d_m3_l : float;  (** local third central moment (s³) *)
  d_m4_l : float;  (** local fourth central moment (s⁴) *)
}

type delay = {
  dd : dist;
  d_slew_tc : float;
      (** mean Elmore constant of the wire segment, 0 for cell arcs —
          the time constant PERI slew degradation works on *)
}

let zeros () = Array.make ng 0.0

let zero_dist =
  {
    d_mean = 0.0;
    d_a = Array.make ng 0.0;
    d_b = Array.make ng 0.0;
    d_var_l = 0.0;
    d_m3_l = 0.0;
    d_m4_l = 0.0;
  }

(* Moments of the global response G = Σ a_i·z_i + b_i·(z_i²−1) for iid
   standard normal z: per factor Var = a²+2b², m3 = 6a²b+8b³,
   m4 = 3a⁴+60a²b²+60b⁴; across independent factors variances and third
   moments add and the fourth moment gains 6·Σ_{i<j} v_i·v_j. *)
let var_g d =
  let acc = ref 0.0 in
  for i = 0 to ng - 1 do
    let a = d.d_a.(i) and b = d.d_b.(i) in
    acc := !acc +. (a *. a) +. (2.0 *. b *. b)
  done;
  !acc

let m3_g d =
  let acc = ref 0.0 in
  for i = 0 to ng - 1 do
    let a = d.d_a.(i) and b = d.d_b.(i) in
    acc := !acc +. (6.0 *. a *. a *. b) +. (8.0 *. b *. b *. b)
  done;
  !acc

let m4_g d =
  let sum_m4 = ref 0.0 and sum_v = ref 0.0 and sum_v2 = ref 0.0 in
  for i = 0 to ng - 1 do
    let a = d.d_a.(i) and b = d.d_b.(i) in
    let a2 = a *. a and b2 = b *. b in
    let v = a2 +. (2.0 *. b2) in
    sum_m4 := !sum_m4 +. (3.0 *. a2 *. a2) +. (60.0 *. a2 *. b2) +. (60.0 *. b2 *. b2);
    sum_v := !sum_v +. v;
    sum_v2 := !sum_v2 +. (v *. v)
  done;
  !sum_m4 +. (3.0 *. ((!sum_v *. !sum_v) -. !sum_v2))

let variance d = var_g d +. d.d_var_l
let std d = sqrt (variance d)

(* Keep the local remainder a plausible distribution: |γ| ≤ 1 and
   κ ∈ [1.5, 7] (the Cornish-Fisher stable domain).  Moment-matched
   re-splits subtract the weighted global response from the matched
   totals; without bounds the residual can drift into shapes no random
   variable has and compound through hundreds of max operations. *)
let clamp_locals ~var_l ~m3_l ~m4_l =
  let s3 = var_l *. sqrt var_l in
  let v2 = var_l *. var_l in
  ( Float.max (-.s3) (Float.min s3 m3_l),
    Float.max (1.5 *. v2) (Float.min (7.0 *. v2) m4_l) )

let to_summary d =
  let vg = var_g d in
  Moments.of_central ~n:1 ~mean:d.d_mean
    ~m2:(vg +. d.d_var_l)
    ~m3:(m3_g d +. d.d_m3_l)
    ~m4:(m4_g d +. d.d_m4_l +. (6.0 *. vg *. d.d_var_l))

(* Generic split of a summary when no sensitivity information exists:
   [global_frac] of the variance becomes a single linear factor (no
   quadratic term, so no correlated-skew reconstruction).  Wires use
   global_frac = 0; cells go through [dist_of_table] instead. *)
let of_summary ~global_frac (s : Moments.summary) =
  let gf = Float.min 1.0 (Float.max 0.0 global_frac) in
  let m2, m3, m4 = Moments.central_of_summary s in
  let a = zeros () in
  a.(0) <- sqrt (gf *. m2);
  let vg = gf *. m2 in
  let var_l = (1.0 -. gf) *. m2 in
  let m3_l, m4_l =
    clamp_locals ~var_l ~m3_l:m3
      ~m4_l:(m4 -. (3.0 *. vg *. vg) -. (6.0 *. vg *. var_l))
  in
  { d_mean = s.Moments.mean; d_a = a; d_b = zeros (); d_var_l = var_l; d_m3_l = m3_l; d_m4_l = m4_l }

let quantile d ~sigma =
  let s = to_summary d in
  s.Moments.mean
  +. (s.Moments.std
     *. Stat_max.cornish_fisher ~skew:s.Moments.skewness ~kurt:s.Moments.kurtosis
          sigma)

(* ---------------------------------------------------------------- *)
(* The arrival-value algebra.                                       *)
(* ---------------------------------------------------------------- *)

type correlation =
  | Independent  (** reconverging arrivals treated as uncorrelated *)
  | Constant of float  (** fixed correlation for every max *)
  | Tracked
      (** rho from the tracked global coefficients:
          rho = (Σ a·a' + 2b·b') / (sigma·sigma') *)

type config = { op : Stat_max.operator; corr : correlation }

let default_config = { op = Stat_max.Clark; corr = Tracked }

(* A + D: global coefficients add (shared z), local parts add
   independently (third moments add, fourth moments gain the 6·v·v
   cross term).  The G/L split makes the correlated cross-moments exact
   by construction — they are reassembled in [to_summary]. *)
let add_dist (a : dist) (d : dist) =
  {
    d_mean = a.d_mean +. d.d_mean;
    d_a = Array.init ng (fun i -> a.d_a.(i) +. d.d_a.(i));
    d_b = Array.init ng (fun i -> a.d_b.(i) +. d.d_b.(i));
    d_var_l = a.d_var_l +. d.d_var_l;
    d_m3_l = a.d_m3_l +. d.d_m3_l;
    d_m4_l = a.d_m4_l +. d.d_m4_l +. (6.0 *. a.d_var_l *. d.d_var_l);
  }

let cov_g (a : dist) (b : dist) =
  let acc = ref 0.0 in
  for i = 0 to ng - 1 do
    acc :=
      !acc +. (a.d_a.(i) *. b.d_a.(i)) +. (2.0 *. a.d_b.(i) *. b.d_b.(i))
  done;
  !acc

let rho_of corr (a : dist) (b : dist) =
  match corr with
  | Independent -> 0.0
  | Constant r -> r
  | Tracked ->
    let sa = std a and sb = std b in
    if sa *. sb <= 0.0 then 0.0 else cov_g a b /. (sa *. sb)

(* Re-split a max result: the global coefficients follow the Clark
   tightness weighting c' = p·c_a + (1−p)·c_b (the standard linear
   mixture of canonical/sensitivity-based SSTA), rescaled so the global
   share of the matched variance is the tightness-weighted share of the
   inputs.  The rescale matters: the weighted mixture systematically
   under-explains the matched variance, and letting the residual leak
   into the local term de-correlates downstream maxes — each join then
   over-estimates the next, a positive feedback that runs away over
   deep netlists.  The local remainder absorbs the skew and kurtosis
   the global response does not carry. *)
let resplit (r : Stat_max.result) (a : dist) (b : dist) =
  let p = r.Stat_max.p_first in
  let q = 1.0 -. p in
  let m2, m3, m4 = Moments.central_of_summary r.Stat_max.dist in
  let ca = Array.init ng (fun i -> (p *. a.d_a.(i)) +. (q *. b.d_a.(i))) in
  let cb = Array.init ng (fun i -> (p *. a.d_b.(i)) +. (q *. b.d_b.(i))) in
  let g = { zero_dist with d_a = ca; d_b = cb } in
  let vg = var_g g in
  let share d = let v = variance d in if v > 0.0 then var_g d /. v else 0.0 in
  let vg_target =
    Float.min m2
      (Float.max vg (((p *. share a) +. (q *. share b)) *. m2))
  in
  let scale = if vg > 0.0 && vg_target > 0.0 then sqrt (vg_target /. vg) else 1.0 in
  let ca = Array.map (fun x -> x *. scale) ca in
  let cb = Array.map (fun x -> x *. scale) cb in
  let g = { zero_dist with d_a = ca; d_b = cb } in
  let vg = var_g g in
  let var_l = Float.max 0.0 (m2 -. vg) in
  let m3_l, m4_l =
    clamp_locals ~var_l ~m3_l:(m3 -. m3_g g)
      ~m4_l:(m4 -. m4_g g -. (6.0 *. vg *. var_l))
  in
  {
    d_mean = r.Stat_max.dist.Moments.mean;
    d_a = ca;
    d_b = cb;
    d_var_l = var_l;
    d_m3_l = m3_l;
    d_m4_l = m4_l;
  }

let join_dist (cfg : config) (a : dist) (b : dist) =
  Metrics.incr m_max_ops;
  (match cfg.op with
  | Stat_max.Clark -> Metrics.incr m_max_clark
  | Stat_max.Moment -> Metrics.incr m_max_moment);
  let rho = rho_of cfg.corr a b in
  let sa = to_summary a and sb = to_summary b in
  let r = Stat_max.apply cfg.op ~rho sa sb in
  (* The Clark-vs-moment disagreement costs a second max evaluation, so
     it is computed only when something records it; it reads the same
     inputs and never feeds back into the arrival, keeping the
     propagated graph identical with observability on or off. *)
  if Metrics.enabled () || Trace.enabled () then begin
    let alt =
      Stat_max.apply
        (match cfg.op with
        | Stat_max.Clark -> Stat_max.Moment
        | Stat_max.Moment -> Stat_max.Clark)
        ~rho sa sb
    in
    let delta =
      Float.abs (r.Stat_max.dist.Moments.mean -. alt.Stat_max.dist.Moments.mean)
    in
    Metrics.observe h_max_tightness r.Stat_max.p_first;
    Metrics.observe h_max_delta delta;
    if Trace.enabled () then
      Trace.instant tr_max ~a:r.Stat_max.p_first ~b:delta ~c:rho ()
  end;
  resplit r a b

(* Criticality ranks by the +3 sigma arrival (Cornish-Fisher, the same
   quantile convention as reporting) — recorded critical predecessors
   and PO ordering reflect statistical, not nominal, dominance. *)
let key d = quantile d ~sigma:3.0

let algebra (cfg : config) : (delay, dist) Engine_core.algebra =
  {
    source = zero_dist;
    no_delay = { dd = zero_dist; d_slew_tc = 0.0 };
    add = (fun a dl -> add_dist a dl.dd);
    key;
    join = (fun old_v cand -> join_dist cfg old_v cand);
  }

(* ---------------------------------------------------------------- *)
(* The statistical provider: LVF tables + mini-MC decomposition.    *)
(* ---------------------------------------------------------------- *)

type provider = (delay, dist) Engine_core.model

let edge_of = function Provider.Rise -> `Rise | Provider.Fall -> `Fall

(* Same single-pole 20-80% constant as Path_mc's fast hop model: the
   statistical wire provider must mirror the model the MC reference
   uses, so validation error isolates the propagation approximation. *)
let peri_slew_factor = Float.log 4.0 /. 0.6

(* Per-(cell, edge) global response estimated at the reference point:
   linear and quadratic sensitivities of the arc delay AND output slew
   to each global deviate, the fraction of total delay variance the
   corners explain, and the local component of the output slew.  Slew
   responses are what couples consecutive stages: a slow corner slows
   every upstream edge, which further slows every downstream cell — the
   cell–wire/stage interaction a fixed-slew table lookup misses. *)
type arc_response = {
  ar_a : float array;  (* delay linear sensitivities (s) *)
  ar_b : float array;  (* delay quadratic sensitivities (s) *)
  ar_frac : float;  (* global share of delay variance *)
  ar_sa : float array;  (* out-slew linear sensitivities (s) *)
  ar_sb : float array;  (* out-slew quadratic sensitivities (s) *)
  ar_sl : float;  (* out-slew local (mismatch) sigma (s) *)
  ar_slew_mean : float;  (* mean out-slew at the reference point (s) *)
}

(* Global/local sensitivity of a net's slew, stored per (net, edge) as
   the walk reaches each driver: the sensitivities of the driver's
   output slew plus its own inherited input-slew coupling. *)
type slew_sens = {
  ss_a : float array;  (* slew linear global sensitivities (s) *)
  ss_b : float array;  (* slew quadratic global sensitivities (s) *)
  ss_l : float;  (* slew local sigma (s) *)
  ss_root : float;  (* the mean slew these sensitivities describe (s) *)
}

(* Exact round-trip serialisation of an arc regression for the on-disk
   store: hex float literals ("%h") survive printf/float_of_string
   bit-for-bit, so a warm load reproduces the cold computation
   exactly. *)
let arc_response_to_string (r : arc_response) =
  let b = Buffer.create 256 in
  let add f = Buffer.add_string b (Printf.sprintf "%h " f) in
  Array.iter add r.ar_a;
  Array.iter add r.ar_b;
  add r.ar_frac;
  Array.iter add r.ar_sa;
  Array.iter add r.ar_sb;
  add r.ar_sl;
  add r.ar_slew_mean;
  Buffer.contents b

let arc_response_of_string s =
  let toks =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim s))
  in
  let opts = List.map float_of_string_opt toks in
  if List.length opts <> (4 * ng) + 3 || List.exists Option.is_none opts then
    None
  else begin
    let a = Array.of_list (List.map Option.get opts) in
    Some
      {
        ar_a = Array.sub a 0 ng;
        ar_b = Array.sub a ng ng;
        ar_frac = a.(2 * ng);
        ar_sa = Array.sub a ((2 * ng) + 1) ng;
        ar_sb = Array.sub a ((3 * ng) + 1) ng;
        ar_sl = a.((4 * ng) + 1);
        ar_slew_mean = a.((4 * ng) + 2);
      }
  end

type handle = {
  h_provider : provider;
  h_invalidate_net : int -> unit;
  h_slew_sig : int -> int64 array;
  h_prewarm : unit -> unit;
}

let handle_of_provider p =
  {
    h_provider = p;
    h_invalidate_net = (fun _ -> ());
    h_slew_sig = (fun _ -> [||]);
    h_prewarm = (fun () -> ());
  }

let lvf_handle ?(seed = 421) ?(wire_samples = 96) ?(frac_samples = 128)
    ?(exec = Executor.default ()) ?(batch = false) ?(approx = false)
    ?(store_dir = Store.default_dir ()) tech (lib : Library.t)
    (design : Design.t) : handle =
  let use_batch = batch || approx in
  let master = Rng.create ~seed in
  let wire_rng = Rng.derive master ~index:1 in
  let frac_rng = Rng.derive master ~index:2 in
  (* Paired mini-MC per (cell, edge): the same deviate vectors with and
     without local mismatch (local_scale = 0), fast kernel both times.
     iid standard deviates make the second-order regression a moment
     average: a_i = E[d·z_i], b_i = E[d·(z_i²−1)]/2.

     The cache is the memoization seam: every net driven by the same
     (cell, edge) pair shares one regression, because the mini-MC runs
     at the fixed reference operating point (Characterize.reference_slew
     / FO4 load) — the per-net operating point only enters later, via
     the dist_of_table rescale.  On a netlist with hundreds of instances
     of a handful of cell types this collapses the regression cost to
     one run per type. *)
  let frac_cache : (string * int, arc_response) Hashtbl.t = Hashtbl.create 32 in
  (* The store key pins everything the regression depends on: the
     library fingerprint covers technology, grid, kernel and sampling;
     the remaining knobs are this provider's own.  [wire_samples], the
     executor and [batch] do not enter — they don't change the result
     (the batched kernel is bit-identical unless [approx]). *)
  let lib_fp = lazy (Library.fingerprint lib) in
  let store_key (cell_name, edge_ix) =
    Printf.sprintf "frac-v1|%s|%s|e%d|n%d|s%d|approx=%b" (Lazy.force lib_fp)
      cell_name edge_ix frac_samples seed approx
  in
  let rec arc_response (cell : Cell.t) edge =
    let cache_key = (Cell.name cell, Engine_core.edge_index edge) in
    match Hashtbl.find_opt frac_cache cache_key with
    | Some r -> r
    | None -> (
      match
        Option.bind store_dir (fun dir ->
            Store.find ~dir ~key:(store_key cache_key)
              ~decode:arc_response_of_string)
      with
      | Some resp ->
        Hashtbl.add frac_cache cache_key resp;
        resp
      | None -> compute_arc_response cache_key cell edge)
  and compute_arc_response cache_key (cell : Cell.t) edge =
      let resp =
        Metrics.span "sta.ssta.cell_frac" @@ fun () ->
        let sk = Cell.plan tech cell ~output_edge:(edge_of edge) in
        let slew = Characterize.reference_slew in
        let load = Cell.fo4_load tech cell in
        let dim = ng + Arc.skeleton_local_dim sk in
        let rng = Rng.derive frac_rng ~index:(Hashtbl.hash cache_key) in
        let nf = float_of_int frac_samples in
        (* Per-sample results land in index-addressed arrays (each
           worker writes disjoint slots), and the moment accumulators
           fold over them in index order on this domain afterwards — so
           any executor backend, and the batched kernel, reproduce the
           sequential population bit for bit. *)
        let d_fulls = Array.make frac_samples 0.0 in
        let s_fulls = Array.make frac_samples 0.0 in
        let d_globs = Array.make frac_samples 0.0 in
        let s_globs = Array.make frac_samples 0.0 in
        let zs = Array.make_matrix frac_samples ng 0.0 in
        let draw i =
          let g = Rng.derive rng ~index:i in
          let z = Array.init dim (fun _ -> Rng.gaussian g) in
          Array.blit z 0 zs.(i) 0 ng;
          z
        in
        if use_batch then
          (* Two SoA batches per chunk — one for the full draws, one for
             the globals-only twins — so both populations evaluate as
             fused loops. *)
          let chunk = Monte_carlo.batch_chunk in
          Executor.map_ranges exec ~chunk
            ~init:(fun () ->
              ( Cell.plan tech cell ~output_edge:(edge_of edge),
                Cell_sim.Batch.create chunk,
                Cell_sim.Batch.create chunk ))
            (fun (sk, bf, bg) ~lo ~hi ->
              for i = lo to hi - 1 do
                let z = draw i in
                let t = i - lo in
                Arc.fill tech sk (Variation.of_deviates tech z);
                Cell_sim.Batch.load bf t (Arc.skeleton_compiled sk)
                  ~input_slew:slew ~load_cap:load;
                Arc.fill tech sk
                  { (Variation.of_deviates tech z) with
                    Variation.local_scale = 0.0 };
                Cell_sim.Batch.load bg t (Arc.skeleton_compiled sk)
                  ~input_slew:slew ~load_cap:load
              done;
              let m = hi - lo in
              Cell_sim.Batch.eval ~approx tech bf ~n:m;
              Cell_sim.Batch.eval ~approx tech bg ~n:m;
              for i = lo to hi - 1 do
                let t = i - lo in
                if Cell_sim.Batch.failed bf t || Cell_sim.Batch.failed bg t
                then
                  failwith
                    "Ssta.lvf_provider: fast kernel failed at the reference \
                     point";
                d_fulls.(i) <- Cell_sim.Batch.delay bf t;
                s_fulls.(i) <- Cell_sim.Batch.output_slew bf t;
                d_globs.(i) <- Cell_sim.Batch.delay bg t;
                s_globs.(i) <- Cell_sim.Batch.output_slew bg t
              done)
            ~n:frac_samples
        else
          ignore
            (Executor.map_scratch exec
               ~init:(fun () -> Cell.plan tech cell ~output_edge:(edge_of edge))
               (fun sk i ->
                 let z = draw i in
                 let run v =
                   Arc.fill tech sk v;
                   Cell_sim.run ~kernel:Cell_sim.Fast tech (Arc.skeleton_arc sk)
                     ~input_slew:slew ~load_cap:load
                 in
                 let r_full = run (Variation.of_deviates tech z) in
                 let r_glob =
                   run
                     { (Variation.of_deviates tech z) with
                       Variation.local_scale = 0.0 }
                 in
                 d_fulls.(i) <- r_full.Cell_sim.delay;
                 s_fulls.(i) <- r_full.Cell_sim.output_slew;
                 d_globs.(i) <- r_glob.Cell_sim.delay;
                 s_globs.(i) <- r_glob.Cell_sim.output_slew)
               ~n:frac_samples);
        let full = ref Moments.empty and glob = ref Moments.empty in
        let sl_full = ref Moments.empty and sl_glob = ref Moments.empty in
        for i = 0 to frac_samples - 1 do
          full := Moments.add !full d_fulls.(i);
          glob := Moments.add !glob d_globs.(i);
          sl_full := Moments.add !sl_full s_fulls.(i);
          sl_glob := Moments.add !sl_glob s_globs.(i)
        done;
        (* iid standard regressors make the second-order least squares a
           moment average: a_j = E[y·z_j], b_j = E[y·(z_j²−1)]/2. *)
        let regress ys =
          let mean = Array.fold_left ( +. ) 0.0 ys /. nf in
          let a = Array.make ng 0.0 and b = Array.make ng 0.0 in
          for i = 0 to frac_samples - 1 do
            let yc = ys.(i) -. mean in
            for j = 0 to ng - 1 do
              let z = zs.(i).(j) in
              a.(j) <- a.(j) +. (yc *. z /. nf);
              b.(j) <- b.(j) +. (yc *. ((z *. z) -. 1.0) /. (2.0 *. nf))
            done
          done;
          (a, b)
        in
        let da, db = regress d_globs in
        let sa, sb = regress s_globs in
        Metrics.incr m_frac_mc ~by:(2 * frac_samples);
        let vf = Moments.variance !full and vg = Moments.variance !glob in
        let svf = Moments.variance !sl_full and svg = Moments.variance !sl_glob in
        {
          ar_a = da;
          ar_b = db;
          ar_frac = (if vf <= 0.0 then 0.0 else Float.min 1.0 (vg /. vf));
          ar_sa = sa;
          ar_sb = sb;
          ar_sl = sqrt (Float.max 0.0 (svf -. svg));
          ar_slew_mean = Moments.mean !sl_glob;
        }
      in
      Hashtbl.add frac_cache cache_key resp;
      Option.iter
        (fun dir ->
          Store.save ~dir ~key:(store_key cache_key)
            (arc_response_to_string resp))
        store_dir;
      resp
  in
  (* An arc's distribution at its operating point: total moments from
     the LVF table, global share and response shape from the cached
     reference-point regression (rescaled so the global variance is
     frac of the table's). *)
  let dist_of_table (resp : arc_response) (s : Moments.summary) =
    let m2, m3, m4 = Moments.central_of_summary s in
    let vg_target = resp.ar_frac *. m2 in
    let vg_ref =
      let acc = ref 0.0 in
      for i = 0 to ng - 1 do
        acc :=
          !acc
          +. (resp.ar_a.(i) *. resp.ar_a.(i))
          +. (2.0 *. resp.ar_b.(i) *. resp.ar_b.(i))
      done;
      !acc
    in
    if vg_ref <= 0.0 || vg_target <= 0.0 then begin
      let m3_l, m4_l = clamp_locals ~var_l:m2 ~m3_l:m3 ~m4_l:m4 in
      {
        d_mean = s.Moments.mean;
        d_a = zeros ();
        d_b = zeros ();
        d_var_l = m2;
        d_m3_l = m3_l;
        d_m4_l = m4_l;
      }
    end
    else begin
      let r = sqrt (vg_target /. vg_ref) in
      let g =
        {
          zero_dist with
          d_a = Array.map (fun x -> x *. r) resp.ar_a;
          d_b = Array.map (fun x -> x *. r) resp.ar_b;
        }
      in
      let vg = var_g g in
      let var_l = Float.max 0.0 (m2 -. vg) in
      let m3_l, m4_l =
        clamp_locals ~var_l ~m3_l:(m3 -. m3_g g)
          ~m4_l:(m4 -. m4_g g -. (6.0 *. vg *. var_l))
      in
      {
        d_mean = s.Moments.mean;
        d_a = g.d_a;
        d_b = g.d_b;
        d_var_l = var_l;
        d_m3_l = m3_l;
        d_m4_l = m4_l;
      }
    end
  in
  (* Per-net wire distributions: a mini-MC over the net's varied RC tree
     (local BEOL deviates only, exactly Wire_gen.vary) evaluated with
     the same D2M-at-tap metric as Path_mc's fast hop.  One pass fills
     every tap of the net; the mean Elmore constant per tap feeds the
     PERI slew degradation. *)
  let wire_cache : (int, (int * dist * float) array) Hashtbl.t =
    Hashtbl.create 64
  in
  let wire_dists net =
    match Hashtbl.find_opt wire_cache net with
    | Some arr -> arr
    | None ->
      let arr =
        Metrics.span "sta.ssta.wire_mc" @@ fun () ->
        let base = design.Design.parasitics.(net) in
        let loads = Design.sink_caps tech design ~net in
        let taps = base.Rctree.taps in
        let rng = Rng.derive wire_rng ~index:net in
        let accs = Array.map (fun _ -> Moments.empty) taps in
        let elmore_sum = Array.map (fun _ -> 0.0) taps in
        (* Per-sample tap rows from the executor, folded into the moment
           accumulators in index order on this domain — bit-identical to
           the sequential loop on every backend. *)
        let rows =
          Executor.map_array exec
            (fun i ->
              let v = Variation.draw tech (Rng.derive rng ~index:i) in
              let varied = Wire_gen.vary tech v base in
              let loaded =
                List.fold_left
                  (fun tr (node, c) -> Rctree.add_cap tr node c)
                  varied loads
              in
              Array.map
                (fun tap ->
                  (Elmore.d2m_at loaded tap, Elmore.delay_at loaded tap))
                taps)
            ~n:wire_samples
        in
        Array.iter
          (fun row ->
            Array.iteri
              (fun j (d2m, elm) ->
                accs.(j) <- Moments.add accs.(j) d2m;
                elmore_sum.(j) <- elmore_sum.(j) +. elm)
              row)
          rows;
        Metrics.incr m_wire_mc ~by:wire_samples;
        Array.mapi
          (fun j tap ->
            ( tap,
              of_summary ~global_frac:0.0 (Moments.summary accs.(j)),
              elmore_sum.(j) /. float_of_int wire_samples ))
          taps
      in
      Hashtbl.add wire_cache net arr;
      arr
  in
  (* Slew sensitivities per (net, edge), filled as the topological walk
     reaches each driver — downstream lookups always find their inputs
     already computed (or absent, for PI-driven nets: zero
     sensitivity). *)
  let slew_tab : (int * int, slew_sens) Hashtbl.t = Hashtbl.create 64 in
  (* Incoming slew distribution of a candidate, attenuated through the
     wire degrade: pin = RSS(root, wire), so d(pin)/d(root) = root/pin.
     Returns attenuated sensitivity arrays, local sigma and the total
     slew variance at the pin. *)
  let incoming ~in_net ~in_edge ~input_slew =
    match Hashtbl.find_opt slew_tab (in_net, Engine_core.edge_index in_edge) with
    | None -> None
    | Some ss ->
      let atten =
        if input_slew > 0.0 then Float.min 1.0 (ss.ss_root /. input_slew)
        else 1.0
      in
      let sa = Array.map (fun x -> atten *. x) ss.ss_a in
      let sb = Array.map (fun x -> atten *. x) ss.ss_b in
      let sl = atten *. ss.ss_l in
      let var_s = ref (sl *. sl) in
      for i = 0 to ng - 1 do
        var_s := !var_s +. (sa.(i) *. sa.(i)) +. (2.0 *. sb.(i) *. sb.(i))
      done;
      Some (sa, sb, sl, !var_s)
  in
  (* First derivative w.r.t. input slew: central finite difference on
     the (bilinear) table.  Second derivative: the bilinear surface is
     piecewise linear in slew, so curvature lives only at the grid
     knots — use the divided difference through the three knots
     bracketing the operating point instead. *)
  let dq_ds value_at ~slew =
    let h = 0.1 *. slew in
    (value_at ~slew:(slew +. h) -. value_at ~slew:(slew -. h)) /. (2.0 *. h)
  in
  let curvature value_at (tbl : Characterize.table) ~slew =
    let s = tbl.Characterize.slews in
    let n = Array.length s in
    if n < 3 then 0.0
    else begin
      let j = ref 1 in
      for i = 1 to n - 2 do
        if Float.abs (s.(i) -. slew) < Float.abs (s.(!j) -. slew) then j := i
      done;
      let j = !j in
      let f0 = value_at ~slew:s.(j - 1)
      and f1 = value_at ~slew:s.(j)
      and f2 = value_at ~slew:s.(j + 1) in
      2.0
      *. (((f2 -. f1) /. (s.(j + 1) -. s.(j)))
         -. ((f1 -. f0) /. (s.(j) -. s.(j - 1))))
      /. (s.(j + 1) -. s.(j - 1))
    end
  in
  let provider =
  {
    Engine_core.m_label = "ssta-lvf";
    m_cell_delay =
      (fun gate ~edge ~in_net ~in_edge ~input_slew ~load_cap ->
        let cell = gate.Netlist.cell in
        let tbl = Library.find lib cell ~edge:(edge_of edge) in
        let s = Characterize.moments_at tbl ~slew:input_slew ~load:load_cap in
        let base = dist_of_table (arc_response cell edge) s in
        let dd =
          match incoming ~in_net ~in_edge ~input_slew with
          | None -> base
          | Some (sa, sb, sl, var_s) ->
            let mean_at ~slew =
              (Characterize.moments_at tbl ~slew ~load:load_cap).Moments.mean
            in
            let d1 = dq_ds mean_at ~slew:input_slew in
            let d2 = curvature mean_at tbl ~slew:input_slew in
            (* Stage coupling.  First order: this arc's delay moves with
               its input slew, which responds to the shared corners
               (compounding correlated variance) and to upstream
               mismatch (adding local variance).  Second order: delay
               is convex in slew, so the corner response picks up a
               quadratic term — the source of the correlated skew a
               fixed-slew table lookup cannot contain — and the mean
               shifts by ½·D″·Var(slew) (Jensen).  The table,
               characterized at fixed slew, contains none of this. *)
            let dv = d1 *. d1 *. sl *. sl in
            {
              base with
              d_mean = base.d_mean +. (0.5 *. d2 *. var_s);
              d_a = Array.init ng (fun i -> base.d_a.(i) +. (d1 *. sa.(i)));
              d_b =
                Array.init ng (fun i ->
                    base.d_b.(i) +. (d1 *. sb.(i))
                    +. (0.5 *. d2 *. sa.(i) *. sa.(i)));
              d_var_l = base.d_var_l +. dv;
              d_m4_l =
                base.d_m4_l +. (3.0 *. dv *. dv)
                +. (6.0 *. base.d_var_l *. dv);
            }
        in
        { dd; d_slew_tc = 0.0 });
    m_cell_out_slew =
      (fun gate ~edge ~in_net ~in_edge ~input_slew ~load_cap ->
        let cell = gate.Netlist.cell in
        let tbl = Library.find lib cell ~edge:(edge_of edge) in
        let slew_at ~slew = Characterize.out_slew_at tbl ~slew ~load:load_cap in
        let out = slew_at ~slew:input_slew in
        let resp = arc_response cell edge in
        (* Direct slew response measured at the reference point, rescaled
           proportionally to the operating-point slew. *)
        let scale =
          if resp.ar_slew_mean > 0.0 then out /. resp.ar_slew_mean else 1.0
        in
        let ca, cb, cl, jensen =
          match incoming ~in_net ~in_edge ~input_slew with
          | None -> (Array.make ng 0.0, Array.make ng 0.0, 0.0, 0.0)
          | Some (sa, sb, sl, var_s) ->
            let s1 = dq_ds slew_at ~slew:input_slew in
            let s2 = curvature slew_at tbl ~slew:input_slew in
            ( Array.init ng (fun i -> s1 *. sa.(i)),
              Array.init ng (fun i ->
                  (s1 *. sb.(i)) +. (0.5 *. s2 *. sa.(i) *. sa.(i))),
              s1 *. sl,
              0.5 *. s2 *. var_s )
        in
        let direct_l = scale *. resp.ar_sl in
        let out = out +. jensen in
        Hashtbl.replace slew_tab
          (gate.Netlist.output, Engine_core.edge_index edge)
          {
            ss_a = Array.init ng (fun i -> (scale *. resp.ar_sa.(i)) +. ca.(i));
            ss_b = Array.init ng (fun i -> (scale *. resp.ar_sb.(i)) +. cb.(i));
            ss_l = sqrt ((direct_l *. direct_l) +. (cl *. cl));
            ss_root = out;
          };
        out);
    m_wire_delay =
      (fun ~net ~driver:_ ~sink:_ ~tree:_ ~tap ->
        let arr = wire_dists net in
        match Array.find_opt (fun (t, _, _) -> t = tap) arr with
        | Some (_, d, elm) -> { dd = d; d_slew_tc = elm }
        | None -> { dd = zero_dist; d_slew_tc = 0.0 });
    m_wire_slew_degrade =
      (fun ~wire_delay ~slew_at_root ->
        let ws = peri_slew_factor *. wire_delay.d_slew_tc in
        sqrt ((slew_at_root *. slew_at_root) +. (ws *. ws)));
  }
  in
  (* Edited nets must recompute their wire mini-MC (new geometry / pin
     caps) and forget their slew sensitivities; both rebuild
     deterministically from per-net derived streams, so recomputing an
     unedited net would reproduce its old entry bit for bit — which is
     what makes clearing only the invalidated nets sound. *)
  let invalidate_net net =
    Hashtbl.remove wire_cache net;
    Hashtbl.remove slew_tab (net, 0);
    Hashtbl.remove slew_tab (net, 1)
  in
  (* Bitwise signature of a net's slew-sensitivity state (both edges,
     presence-tagged): the part of the provider's retained state that
     feeds downstream delays but is invisible in the arrival slot, so
     the incremental engine must include it in its cutoff equality. *)
  let slew_sig net =
    let buf = ref [] in
    for e = 1 downto 0 do
      match Hashtbl.find_opt slew_tab (net, e) with
      | None -> buf := 0L :: !buf
      | Some ss ->
        let fs =
          Array.to_list ss.ss_a @ Array.to_list ss.ss_b
          @ [ ss.ss_l; ss.ss_root ]
        in
        buf := (1L :: List.map Int64.bits_of_float fs) @ !buf
    done;
    Array.of_list !buf
  in
  (* Force every (cell, edge) regression the design can demand — the
     provider's whole cold cost, so timing this isolates the store's
     cold/warm behaviour. *)
  let prewarm () =
    Array.iter
      (fun (g : Netlist.gate) ->
        List.iter
          (fun e -> ignore (arc_response g.Netlist.cell e))
          [ Provider.Rise; Provider.Fall ])
      design.Design.netlist.Netlist.gates
  in
  {
    h_provider = provider;
    h_invalidate_net = invalidate_net;
    h_slew_sig = slew_sig;
    h_prewarm = prewarm;
  }

let lvf_provider ?seed ?wire_samples ?frac_samples ?exec ?batch ?approx
    ?store_dir tech lib design =
  (lvf_handle ?seed ?wire_samples ?frac_samples ?exec ?batch ?approx
     ?store_dir tech lib design)
    .h_provider

(* ---------------------------------------------------------------- *)
(* Analysis.                                                        *)
(* ---------------------------------------------------------------- *)

type report = (delay, dist) Engine_core.report

let analyze ?input_slew ?load_model ?(config = default_config) tech
    (provider : provider) design : report =
  Engine_core.analyze ~span:"sta.ssta.analyze" ?input_slew ?load_model
    (algebra config) provider tech design

let arrival (report : report) ~net ~edge = Engine_core.arrival report ~net ~edge
let po_dist (report : report) ~net ~edge = Engine_core.po_arrival report ~net ~edge

let circuit_dist (report : report) =
  match report.Engine_core.pos with
  | [] -> zero_dist
  | po :: _ -> po.Engine_core.po_value

let pos (report : report) =
  List.map
    (fun po ->
      (po.Engine_core.po_net, po.Engine_core.po_edge, po.Engine_core.po_value))
    report.Engine_core.pos

(* ---------------------------------------------------------------- *)
(* Validation against per-path Monte Carlo.                         *)
(* ---------------------------------------------------------------- *)

type validation = {
  va_n_paths : int;  (** PO paths in the MC max population *)
  va_mc_n : int;  (** MC samples *)
  va_mc_seconds : float;  (** wall-clock of the per-path MC reference *)
  va_ssta_seconds : float;  (** wall-clock of provider caches + SSTA pass *)
  va_mc : Moments.summary;  (** max-over-covered-paths population *)
  va_mc_p3 : float;  (** +3 sigma-level empirical quantile *)
  va_mc_m3 : float;  (** -3 sigma-level empirical quantile *)
  va_ssta : dist;  (** statistical max over the same covered POs *)
  va_ssta_full : dist;  (** full-circuit dist (all POs) *)
  va_err_mean : float;  (** relative mean error vs MC *)
  va_err_p3 : float;  (** relative +3 sigma quantile error vs MC *)
  va_err_m3 : float;  (** relative -3 sigma quantile error vs MC *)
}

(* Max-over-paths MC reference: sample i draws every path's variation
   stream from the same derived index, so the three global corners are
   shared across paths (the physical coupling block-based SSTA models
   with its global coefficients) while each path re-simulates stage by
   stage with the fast hop model — the same cell/wire model the
   statistical provider mirrors, so the comparison isolates the
   propagation and max approximations.  Runs single-threaded; so does
   the SSTA pass, making the wall-clock ratio a like-for-like
   speedup. *)
let validate ?(n = 1000) ?(k = 16) ?(seed = 97) ?(config = default_config)
    ?provider tech (lib : Library.t) (design : Design.t) =
  let scalar = Engine.analyze tech (Provider.nominal lib) design in
  let paths = Engine.worst_paths scalar ~k in
  if paths = [] then invalid_arg "Ssta.validate: design has no PO paths";
  let plans = List.map (Path_mc.plan_of tech design) paths in
  let t0 = Metrics.now () in
  let samples =
    Array.init n (fun i ->
        let best = ref Float.neg_infinity in
        List.iter
          (fun plan ->
            let v = Variation.draw tech (Rng.derive (Rng.create ~seed) ~index:i) in
            let d =
              Path_mc.simulate_planned ~kernel:Cell_sim.Fast tech plan v
                ~record_wire:(fun _ _ -> ())
            in
            if d > !best then best := d)
          plans;
        !best)
  in
  let mc_seconds = Metrics.now () -. t0 in
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let mc_p3 = Quantile.of_sorted sorted (Quantile.probability_of_sigma 3.0) in
  let mc_m3 = Quantile.of_sorted sorted (Quantile.probability_of_sigma (-3.0)) in
  let t1 = Metrics.now () in
  let provider =
    match provider with Some p -> p | None -> lvf_provider tech lib design
  in
  let report = analyze ~config tech provider design in
  (* Statistical max over the same covered POs, worst-first. *)
  let covered =
    List.filter_map
      (fun (path : Path.t) ->
        let edge =
          match List.rev path.Path.hops with
          | h :: _ -> h.Path.out_edge
          | [] -> Provider.Rise
        in
        po_dist report ~net:path.Path.end_net ~edge)
      paths
  in
  let ssta_covered =
    match covered with
    | [] -> circuit_dist report
    | d :: rest -> List.fold_left (join_dist config) d rest
  in
  let ssta_seconds = Metrics.now () -. t1 in
  let rel a b = if b = 0.0 then 0.0 else Float.abs (a -. b) /. Float.abs b in
  let mc = Moments.summary (Moments.of_array samples) in
  {
    va_n_paths = List.length paths;
    va_mc_n = n;
    va_mc_seconds = mc_seconds;
    va_ssta_seconds = ssta_seconds;
    va_mc = mc;
    va_mc_p3 = mc_p3;
    va_mc_m3 = mc_m3;
    va_ssta = ssta_covered;
    va_ssta_full = circuit_dist report;
    va_err_mean = rel ssta_covered.d_mean mc.Moments.mean;
    va_err_p3 = rel (quantile ssta_covered ~sigma:3.0) mc_p3;
    va_err_m3 = rel (quantile ssta_covered ~sigma:(-3.0)) mc_m3;
  }
