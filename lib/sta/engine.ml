module Netlist = Nsigma_netlist.Netlist
module Cell = Nsigma_liberty.Cell
module Metrics = Nsigma_obs.Metrics

type net_arrival = { time : float; slew : float }

type pred = {
  p_gate : int;
  p_in_net : int;
  p_in_edge : Provider.edge;
  p_tap : int;
  p_wire_delay : float;
  p_pin_slew : float;
  p_cell_delay : float;
  p_load : float;
}

type slot = { arr : net_arrival; pred : pred option }

type po_result = {
  po_net : int;
  po_edge : Provider.edge;
  po_tap : int;
  po_wire : float;
  po_time : float;  (** arrival including the final wire segment *)
}

type report = {
  design : Design.t;
  slots : slot option array array;  (** [net].[edge index] *)
  pos : po_result list;  (** sorted worst-first *)
}

let edge_index = function Provider.Rise -> 0 | Provider.Fall -> 1

(* Input-edge candidates that can cause the given output edge. *)
let in_edges_for kind out_edge =
  match kind with
  | Cell.Xor2 | Cell.Xnor2 -> [ Provider.Rise; Provider.Fall ]
  | _ ->
    if Cell.inverting kind then [ Provider.flip out_edge ] else [ out_edge ]

let analyze ?(input_slew = Provider.input_slew_default) ?(load_model = `Total)
    tech provider (design : Design.t) =
  Metrics.span "sta.analyze" @@ fun () ->
  let nl = design.Design.netlist in
  let slots = Array.make_matrix nl.Netlist.n_nets 2 None in
  Array.iter
    (fun pi ->
      let slot = Some { arr = { time = 0.0; slew = input_slew }; pred = None } in
      slots.(pi).(0) <- slot;
      slots.(pi).(1) <- slot)
    nl.Netlist.primary_inputs;
  (* Sink index of each gate pin within its input net's fanout list —
     each (gate, pin) pair appears in exactly one net's sink list. *)
  let sink_index =
    Array.map (fun g -> Array.map (fun _ -> 0) g.Netlist.inputs) nl.Netlist.gates
  in
  Array.iter
    (fun sinks ->
      List.iteri
        (fun k (gate, pin) -> if gate >= 0 then sink_index.(gate).(pin) <- k)
        sinks)
    design.Design.fanouts;
  let order = Netlist.topo_order nl in
  let cell_of_driver net =
    let d = design.Design.drivers.(net) in
    if d < 0 then None else Some nl.Netlist.gates.(d).Netlist.cell
  in
  Array.iter
    (fun gi ->
      let gate = nl.Netlist.gates.(gi) in
      let out_net = gate.Netlist.output in
      let load =
        match load_model with
        | `Total -> Design.total_load tech design ~net:out_net
        | `Effective ->
          Design.effective_load tech design ~net:out_net ~driver:gate.Netlist.cell
      in
      List.iter
        (fun out_edge ->
          let best = ref None in
          Array.iteri
            (fun pin in_net ->
              List.iter
                (fun in_edge ->
                  match slots.(in_net).(edge_index in_edge) with
                  | None -> ()
                  | Some { arr; _ } ->
                    let driven_by_pi = design.Design.drivers.(in_net) < 0 in
                    let k = sink_index.(gi).(pin) in
                    let tap = Design.tap_of_sink design ~net:in_net ~sink_index:k in
                    let wire_delay =
                      if driven_by_pi then 0.0
                      else
                        provider.Provider.wire_delay ~net:in_net
                          ~driver:(cell_of_driver in_net)
                          ~sink:(Some gate.Netlist.cell)
                          ~tree:(Design.loaded_parasitic tech design ~net:in_net)
                          ~tap
                    in
                    let pin_slew =
                      if driven_by_pi then arr.slew
                      else
                        provider.Provider.wire_slew_degrade ~wire_delay
                          ~slew_at_root:arr.slew
                    in
                    let cell_delay =
                      provider.Provider.cell_delay gate ~edge:out_edge
                        ~input_slew:pin_slew ~load_cap:load
                    in
                    let time = arr.time +. wire_delay +. cell_delay in
                    let better =
                      match !best with
                      | None -> true
                      | Some (t, _) -> time > t
                    in
                    if better then
                      best :=
                        Some
                          ( time,
                            {
                              p_gate = gi;
                              p_in_net = in_net;
                              p_in_edge = in_edge;
                              p_tap = tap;
                              p_wire_delay = wire_delay;
                              p_pin_slew = pin_slew;
                              p_cell_delay = cell_delay;
                              p_load = load;
                            } ))
                (in_edges_for gate.Netlist.cell.Cell.kind out_edge))
            gate.Netlist.inputs;
          match !best with
          | None -> ()
          | Some (time, pred) ->
            let out_slew =
              provider.Provider.cell_out_slew gate ~edge:out_edge
                ~input_slew:pred.p_pin_slew ~load_cap:load
            in
            slots.(out_net).(edge_index out_edge) <-
              Some { arr = { time; slew = out_slew }; pred = Some pred })
        [ Provider.Rise; Provider.Fall ])
    order;
  (* Primary-output arrivals through their final wire segment. *)
  let pos = ref [] in
  Array.iter
    (fun po ->
      let sinks = design.Design.fanouts.(po) in
      let po_sink_index =
        match
          List.find_index (fun (gate, _) -> gate = -1) sinks
        with
        | Some k -> k
        | None -> 0
      in
      let driven_by_pi = design.Design.drivers.(po) < 0 in
      List.iter
        (fun edge ->
          match slots.(po).(edge_index edge) with
          | None -> ()
          | Some { arr; _ } ->
            let tap = Design.tap_of_sink design ~net:po ~sink_index:po_sink_index in
            let wire =
              if driven_by_pi then 0.0
              else
                provider.Provider.wire_delay ~net:po ~driver:(cell_of_driver po)
                  ~sink:None
                  ~tree:(Design.loaded_parasitic tech design ~net:po)
                  ~tap
            in
            pos :=
              {
                po_net = po;
                po_edge = edge;
                po_tap = tap;
                po_wire = wire;
                po_time = arr.time +. wire;
              }
              :: !pos)
        [ Provider.Rise; Provider.Fall ])
    nl.Netlist.primary_outputs;
  let pos =
    List.sort (fun a b -> Float.compare b.po_time a.po_time) !pos
  in
  { design; slots; pos }

let arrival report ~net ~edge =
  Option.map (fun s -> s.arr) report.slots.(net).(edge_index edge)

let design_of report = report.design

let po_arrival report ~net ~edge =
  List.find_opt (fun po -> po.po_net = net && po.po_edge = edge) report.pos
  |> Option.map (fun po -> po.po_time)

let extract_path report (po : po_result) =
  let rec walk net edge acc =
    match report.slots.(net).(edge_index edge) with
    | None | Some { pred = None; _ } -> acc
    | Some { pred = Some p; _ } ->
      let hop =
        {
          Path.in_net = p.p_in_net;
          in_edge = p.p_in_edge;
          tap = p.p_tap;
          wire_delay = p.p_wire_delay;
          pin_slew = p.p_pin_slew;
          gate = p.p_gate;
          out_edge = edge;
          cell_delay = p.p_cell_delay;
          load_cap = p.p_load;
          out_net = net;
        }
      in
      walk p.p_in_net p.p_in_edge (hop :: acc)
  in
  let hops = walk po.po_net po.po_edge [] in
  {
    Path.hops;
    end_net = po.po_net;
    end_tap = po.po_tap;
    end_wire_delay = po.po_wire;
    total = po.po_time;
  }

let circuit_delay report =
  match report.pos with [] -> 0.0 | po :: _ -> po.po_time

let critical_path report =
  match report.pos with
  | [] -> invalid_arg "Engine.critical_path: no primary-output arrivals"
  | po :: _ -> extract_path report po

let worst_paths report ~k =
  (* Keep the worst edge per PO net, then take the top k. *)
  let seen = Hashtbl.create 16 in
  let distinct =
    List.filter
      (fun po ->
        if Hashtbl.mem seen po.po_net then false
        else begin
          Hashtbl.add seen po.po_net ();
          true
        end)
      report.pos
  in
  List.filteri (fun i _ -> i < k) distinct |> List.map (extract_path report)
