(* Scalar corner engine: the (float, float) instantiation of
   Engine_core.  Delays and arrivals are plain seconds, reconvergence
   takes the strict max, and criticality is the arrival time itself —
   bit-identical to the pre-refactor scalar walker. *)

type net_arrival = { time : float; slew : float }

type report = (float, float) Engine_core.report

let scalar_algebra : (float, float) Engine_core.algebra =
  {
    source = 0.0;
    no_delay = 0.0;
    add = ( +. );
    key = (fun t -> t);
    join = (fun old_v cand -> if cand > old_v then cand else old_v);
  }

let model_of_provider (p : Provider.t) : (float, float) Engine_core.model =
  {
    m_label = p.Provider.label;
    m_cell_delay =
      (fun gate ~edge ~in_net:_ ~in_edge:_ ~input_slew ~load_cap ->
        p.Provider.cell_delay gate ~edge ~input_slew ~load_cap);
    m_cell_out_slew =
      (fun gate ~edge ~in_net:_ ~in_edge:_ ~input_slew ~load_cap ->
        p.Provider.cell_out_slew gate ~edge ~input_slew ~load_cap);
    m_wire_delay = p.Provider.wire_delay;
    m_wire_slew_degrade =
      (fun ~wire_delay ~slew_at_root ->
        p.Provider.wire_slew_degrade ~wire_delay ~slew_at_root);
  }

let analyze ?input_slew ?load_model tech provider design =
  Engine_core.analyze ?input_slew ?load_model scalar_algebra
    (model_of_provider provider) tech design

let arrival report ~net ~edge =
  Engine_core.arrival report ~net ~edge
  |> Option.map (fun a ->
         { time = a.Engine_core.value; slew = a.Engine_core.slew })

let design_of = Engine_core.design_of

let po_arrival report ~net ~edge = Engine_core.po_arrival report ~net ~edge

let extract_path report (po : (float, float) Engine_core.po_result) =
  let hops =
    List.map
      (fun (p, out_edge, out_net) ->
        {
          Path.in_net = p.Engine_core.p_in_net;
          in_edge = p.Engine_core.p_in_edge;
          tap = p.Engine_core.p_tap;
          wire_delay = p.Engine_core.p_wire_delay;
          pin_slew = p.Engine_core.p_pin_slew;
          gate = p.Engine_core.p_gate;
          out_edge;
          cell_delay = p.Engine_core.p_cell_delay;
          load_cap = p.Engine_core.p_load;
          out_net;
        })
      (Engine_core.preds_of report po)
  in
  {
    Path.hops;
    end_net = po.Engine_core.po_net;
    end_tap = po.Engine_core.po_tap;
    end_wire_delay = po.Engine_core.po_wire;
    total = po.Engine_core.po_value;
  }

let circuit_delay (report : report) =
  match report.Engine_core.pos with
  | [] -> 0.0
  | po :: _ -> po.Engine_core.po_value

let critical_path (report : report) =
  match report.Engine_core.pos with
  | [] -> invalid_arg "Engine.critical_path: no primary-output arrivals"
  | po :: _ -> extract_path report po

let worst_paths report ~k =
  Engine_core.distinct_pos report ~k |> List.map (extract_path report)
