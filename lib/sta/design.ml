module Netlist = Nsigma_netlist.Netlist
module Cell = Nsigma_liberty.Cell
module Rctree = Nsigma_rcnet.Rctree
module Wire_gen = Nsigma_rcnet.Wire_gen
module Rng = Nsigma_stats.Rng

type t = {
  netlist : Netlist.t;
  parasitics : Rctree.t array;
  drivers : int array;
  fanouts : (int * int) list array;
  loaded_cache : Rctree.t option array;
}

(* Primary outputs are modelled as a fixed pad/flop load. *)
let po_load = 1.0e-15

let attach_parasitics ?(seed = 7) ?backbone_um ?stub_um tech netlist =
  let fanouts = Netlist.fanouts_of netlist in
  let g = Rng.create ~seed in
  let parasitics =
    Array.init netlist.Netlist.n_nets (fun net ->
        let fanout = max 1 (List.length fanouts.(net)) in
        Wire_gen.for_fanout tech ~fanout ?backbone_um ?stub_um (Rng.split g))
  in
  {
    netlist;
    parasitics;
    drivers = Netlist.driver_of netlist;
    fanouts;
    loaded_cache = Array.make netlist.Netlist.n_nets None;
  }

let of_parasitics netlist parasitics =
  if Array.length parasitics <> netlist.Netlist.n_nets then
    invalid_arg "Design.of_parasitics: one tree per net required";
  let fanouts = Netlist.fanouts_of netlist in
  Array.iteri
    (fun net tree ->
      if Array.length tree.Rctree.taps < List.length fanouts.(net) then
        invalid_arg
          (Printf.sprintf "Design.of_parasitics: net %d has fewer taps than sinks"
             net))
    parasitics;
  {
    netlist;
    parasitics;
    drivers = Netlist.driver_of netlist;
    fanouts;
    loaded_cache = Array.make netlist.Netlist.n_nets None;
  }

let tap_of_sink t ~net ~sink_index =
  let taps = t.parasitics.(net).Rctree.taps in
  taps.(sink_index mod Array.length taps)

let sink_caps tech t ~net =
  List.mapi
    (fun k (gate, pin) ->
      let tap = tap_of_sink t ~net ~sink_index:k in
      let cap =
        if gate < 0 then po_load
        else begin
          let cell = t.netlist.Netlist.gates.(gate).Netlist.cell in
          ignore pin;
          Cell.input_cap tech cell
        end
      in
      (tap, cap))
    t.fanouts.(net)

let loaded_parasitic tech t ~net =
  match t.loaded_cache.(net) with
  | Some tree -> tree
  | None ->
    let tree =
      List.fold_left
        (fun acc (tap, cap) -> Rctree.add_cap acc tap cap)
        t.parasitics.(net) (sink_caps tech t ~net)
    in
    t.loaded_cache.(net) <- Some tree;
    tree

let total_load tech t ~net =
  Rctree.total_cap t.parasitics.(net)
  +. List.fold_left (fun acc (_, c) -> acc +. c) 0.0 (sink_caps tech t ~net)

let apply_edit t edit =
  let module Edit = Nsigma_netlist.Edit in
  Edit.validate t.netlist edit;
  let invalidated = Edit.invalidated t.netlist edit in
  (match edit with
  | Edit.Swap_cell _ -> Edit.apply_netlist t.netlist edit
  | Edit.Scale_wire { net; r_scale; c_scale } ->
    t.parasitics.(net) <-
      Rctree.scale t.parasitics.(net) ~res_factor:r_scale ~cap_factor:c_scale
  | Edit.Bump_sink_load { net; sink; delta_cap } ->
    let n_sinks = List.length t.fanouts.(net) in
    if sink >= n_sinks then
      raise
        (Edit.Edit_error
           (Printf.sprintf "net %s has %d sinks, no sink %d"
              t.netlist.Netlist.net_names.(net) n_sinks sink));
    let tap = tap_of_sink t ~net ~sink_index:sink in
    let cap = t.parasitics.(net).Rctree.nodes.(tap).Rctree.cap in
    if cap +. delta_cap < 0. then
      raise
        (Edit.Edit_error
           (Printf.sprintf
              "load delta %+g fF would make the tap capacitance of net %s \
               negative (%g fF there)"
              (delta_cap *. 1e15)
              t.netlist.Netlist.net_names.(net) (cap *. 1e15)));
    t.parasitics.(net) <- Rctree.add_cap t.parasitics.(net) tap delta_cap);
  (* The loaded trees of every invalidated net embed the old pin caps /
     geometry; drop them so the next query rebuilds from the edited
     state. *)
  List.iter (fun net -> t.loaded_cache.(net) <- None) invalidated;
  invalidated

let effective_load tech t ~net ~driver =
  let r_drv = Cell.drive_resistance tech driver in
  Nsigma_rcnet.Ceff.effective ~driver_resistance:r_drv t.parasitics.(net)
  +. List.fold_left (fun acc (_, c) -> acc +. c) 0.0 (sink_caps tech t ~net)
