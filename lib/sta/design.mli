(** A design: netlist plus per-net parasitics — what IC Compiler's SPEF
    would provide downstream of place-and-route.

    Every net gets an RC tree whose tap k corresponds to the net's k-th
    sink in {!Nsigma_netlist.Netlist.fanouts_of} order.  Parasitics are
    drawn deterministically from the technology's per-µm values by
    {!attach_parasitics}, or supplied explicitly (e.g. parsed from a
    SPEF-lite file). *)

type t = {
  netlist : Nsigma_netlist.Netlist.t;
  parasitics : Nsigma_rcnet.Rctree.t array;  (** indexed by net id *)
  drivers : int array;  (** cached {!Nsigma_netlist.Netlist.driver_of} *)
  fanouts : (int * int) list array;  (** cached fanouts *)
  loaded_cache : Nsigma_rcnet.Rctree.t option array;
      (** lazily built {!loaded_parasitic} results *)
}

val attach_parasitics :
  ?seed:int ->
  ?backbone_um:float * float ->
  ?stub_um:float * float ->
  Nsigma_process.Technology.t ->
  Nsigma_netlist.Netlist.t ->
  t
(** Generate an RC tree for every net, shaped by its fanout.  The
    optional length ranges (µm) are forwarded to
    {!Nsigma_rcnet.Wire_gen.for_fanout}; the defaults model short local
    routes, larger values a sparser post-layout floorplan. *)

val of_parasitics :
  Nsigma_netlist.Netlist.t -> Nsigma_rcnet.Rctree.t array -> t
(** Wrap explicit parasitics (one tree per net, taps ≥ fanout).
    @raise Invalid_argument on a length or tap-count mismatch. *)

val sink_caps :
  Nsigma_process.Technology.t -> t -> net:int -> (int * float) list
(** The (tap node, pin capacitance) loads of a net: one entry per sink
    gate pin (primary outputs present a fixed 1 fF pad load). *)

val total_load :
  Nsigma_process.Technology.t -> t -> net:int -> float
(** Lumped load the driver of [net] sees: wire capacitance plus all sink
    pin capacitances — the "output load C" of the paper's operating
    condition. *)

val loaded_parasitic :
  Nsigma_process.Technology.t -> t -> net:int -> Nsigma_rcnet.Rctree.t
(** The net's RC tree with every sink pin capacitance added at its tap —
    what interconnect delay metrics must be evaluated on (the transient
    reference physically drives these loads).  Cached per net. *)

val effective_load :
  Nsigma_process.Technology.t -> t -> net:int -> driver:Nsigma_liberty.Cell.t ->
  float
(** Like {!total_load} but with the wire capacitance replaced by its
    {!Nsigma_rcnet.Ceff} effective value for the given driver — resistive
    shielding hides the far end of the net from a strong driver.  Sink
    pin capacitances are not shielded away (they sit at the taps but
    dominate when they matter). *)

val tap_of_sink : t -> net:int -> sink_index:int -> int
(** Tree node index of the k-th sink's tap. *)

val apply_edit : t -> Nsigma_netlist.Edit.t -> int list
(** Validate and apply one edit in place — swap the gate's cell, scale
    the net's RC tree, or bump a sink tap's capacitance — dropping the
    cached loaded trees of every invalidated net.  Returns the
    invalidated nets ({!Nsigma_netlist.Edit.invalidated}), the seed of
    the incremental engine's dirty frontier.
    @raise Nsigma_netlist.Edit.Edit_error on an ill-formed edit (also
    when the sink index exceeds the net's fanout or a negative load
    delta would drive a tap capacitance negative). *)
