module Netlist = Nsigma_netlist.Netlist
module Cell = Nsigma_liberty.Cell

type endpoint = {
  net : int;
  edge : Provider.edge;
  arrival : float;
  slack : float;
}

type t = {
  period : float;
  endpoints : endpoint list;
  wns : float;
  tns : float;
}

let of_report ~period report =
  if period <= 0.0 then invalid_arg "Timing_report.of_report: period <= 0";
  let design = Engine.design_of report in
  let nl = design.Design.netlist in
  let endpoints =
    Array.to_list nl.Netlist.primary_outputs
    |> List.concat_map (fun po ->
           List.filter_map
             (fun edge ->
               match Engine.po_arrival report ~net:po ~edge with
               | None -> None
               | Some arrival ->
                 Some { net = po; edge; arrival; slack = period -. arrival })
             [ Provider.Rise; Provider.Fall ])
    |> List.sort (fun a b -> Float.compare a.slack b.slack)
  in
  let wns = match endpoints with [] -> period | e :: _ -> e.slack in
  let tns =
    List.fold_left
      (fun acc e -> if e.slack < 0.0 then acc +. e.slack else acc)
      0.0 endpoints
  in
  { period; endpoints; wns; tns }

let violations t = List.filter (fun e -> e.slack < 0.0) t.endpoints

let edge_name = function Provider.Rise -> "r" | Provider.Fall -> "f"

(* ---------------- statistical (SSTA) endpoints ---------------- *)

type stat_endpoint = {
  s_net : int;
  s_edge : Provider.edge;
  s_dist : Ssta.dist;
  s_q3 : float;
  s_slack : float;
}

type stat_t = {
  s_period : float;
  s_endpoints : stat_endpoint list;
  s_wns : float;
  s_tns : float;
}

let of_ssta ~period (report : Ssta.report) =
  if period <= 0.0 then invalid_arg "Timing_report.of_ssta: period <= 0";
  let endpoints =
    Ssta.pos report
    |> List.map (fun (net, edge, d) ->
           let q3 = Ssta.quantile d ~sigma:3.0 in
           { s_net = net; s_edge = edge; s_dist = d; s_q3 = q3; s_slack = period -. q3 })
    |> List.sort (fun a b -> Float.compare a.s_slack b.s_slack)
  in
  let s_wns = match endpoints with [] -> period | e :: _ -> e.s_slack in
  let s_tns =
    List.fold_left
      (fun acc e -> if e.s_slack < 0.0 then acc +. e.s_slack else acc)
      0.0 endpoints
  in
  { s_period = period; s_endpoints = endpoints; s_wns; s_tns }

let stat_violations t = List.filter (fun e -> e.s_slack < 0.0) t.s_endpoints

let pp_ssta nl ppf t =
  Format.fprintf ppf "@[<v>statistical timing summary @@ period %.1f ps@,"
    (t.s_period *. 1e12);
  Format.fprintf ppf
    "  WNS(+3σ) %.2f ps   TNS(+3σ) %.2f ps   %d endpoints, %d violated@,"
    (t.s_wns *. 1e12) (t.s_tns *. 1e12)
    (List.length t.s_endpoints)
    (List.length (stat_violations t));
  Format.fprintf ppf "  %-12s %4s %9s %8s %7s %7s %9s %9s %9s@," "endpoint"
    "edge" "mu(ps)" "sig(ps)" "skew" "kurt" "-3s(ps)" "+3s(ps)" "slack(ps)";
  List.iteri
    (fun i e ->
      if i < 10 then begin
        let s = Ssta.to_summary e.s_dist in
        Format.fprintf ppf
          "  %-12s %4s %9.2f %8.2f %7.3f %7.3f %9.2f %9.2f %9.2f@,"
          nl.Netlist.net_names.(e.s_net) (edge_name e.s_edge)
          (s.Nsigma_stats.Moments.mean *. 1e12)
          (s.Nsigma_stats.Moments.std *. 1e12)
          s.Nsigma_stats.Moments.skewness s.Nsigma_stats.Moments.kurtosis
          (Ssta.quantile e.s_dist ~sigma:(-3.0) *. 1e12)
          (e.s_q3 *. 1e12) (e.s_slack *. 1e12)
      end)
    t.s_endpoints;
  Format.fprintf ppf "@]"

let pp nl ppf t =
  Format.fprintf ppf "@[<v>timing summary @@ period %.1f ps@," (t.period *. 1e12);
  Format.fprintf ppf "  WNS %.2f ps   TNS %.2f ps   %d endpoints, %d violated@,"
    (t.wns *. 1e12) (t.tns *. 1e12)
    (List.length t.endpoints)
    (List.length (violations t));
  List.iteri
    (fun i e ->
      if i < 10 then
        Format.fprintf ppf "  %-12s (%s)  arrival %8.2f ps  slack %8.2f ps@,"
          nl.Netlist.net_names.(e.net) (edge_name e.edge) (e.arrival *. 1e12)
          (e.slack *. 1e12))
    t.endpoints;
  Format.fprintf ppf "@]"

let pp_sampling ppf (si : Path_mc.sampling_info) =
  Format.fprintf ppf
    "@[<v>sampling: %s%s@,  samples %d drawn / %d requested (%d saved, %d \
     non-convergent, %d batch%s)@]"
    (Nsigma_stats.Sampler.backend_name si.Path_mc.si_backend)
    (match si.Path_mc.si_rtol with
    | None -> ""
    | Some r -> Format.asprintf ", adaptive rtol %.3g" r)
    si.Path_mc.si_drawn si.Path_mc.si_requested si.Path_mc.si_saved
    si.Path_mc.si_non_convergent si.Path_mc.si_batches
    (if si.Path_mc.si_batches = 1 then "" else "es")

let pp_path nl ~period ppf (path : Path.t) =
  Format.fprintf ppf "@[<v>%-24s %10s %10s@," "point" "incr(ps)" "path(ps)";
  let t = ref 0.0 in
  let line name incr =
    t := !t +. incr;
    Format.fprintf ppf "%-24s %10.2f %10.2f@," name (incr *. 1e12) (!t *. 1e12)
  in
  List.iter
    (fun (h : Path.hop) ->
      if h.Path.wire_delay > 0.0 then
        line (Printf.sprintf "net %s" nl.Netlist.net_names.(h.Path.in_net))
          h.Path.wire_delay;
      let g = nl.Netlist.gates.(h.Path.gate) in
      line
        (Printf.sprintf "%s %s (%s)" (Cell.name g.Netlist.cell) g.Netlist.g_name
           (match h.Path.out_edge with Provider.Rise -> "r" | Provider.Fall -> "f"))
        h.Path.cell_delay)
    path.Path.hops;
  line (Printf.sprintf "net %s (PO)" nl.Netlist.net_names.(path.Path.end_net))
    path.Path.end_wire_delay;
  Format.fprintf ppf "%-24s %10s %10.2f@," "data arrival" "" (!t *. 1e12);
  Format.fprintf ppf "%-24s %10s %10.2f@," "clock period" "" (period *. 1e12);
  Format.fprintf ppf "%-24s %10s %10.2f@]" "slack" "" ((period -. !t) *. 1e12)
