(* Generic arrival-propagation core.

   The topological walk, unateness handling, sink/tap bookkeeping and
   predecessor recording are identical for every timing engine in the
   repository; what differs is the *arrival value algebra* — what a
   delay is, how it is added to an arrival, how reconverging arrivals
   merge, and how candidates are ranked for criticality.  The scalar
   corner engine ({!Engine}) instantiates this core with plain floats
   (add = (+.), join = max); the statistical engine ({!Ssta})
   instantiates it with four-moment distributions (join = Clark or
   moment-matching statistical max). *)

module Netlist = Nsigma_netlist.Netlist
module Cell = Nsigma_liberty.Cell
module Metrics = Nsigma_obs.Metrics

type ('d, 'a) algebra = {
  source : 'a;  (* arrival at a primary input (t = 0) *)
  no_delay : 'd;  (* the free wire segment of a PI-driven net *)
  add : 'a -> 'd -> 'a;  (* propagate an arrival through a delay *)
  key : 'a -> float;  (* criticality ranking (scalar: the time itself) *)
  join : 'a -> 'a -> 'a;  (* merge old and candidate arrival (old first) *)
}

type ('d, 'a) model = {
  m_label : string;
  m_cell_delay :
    Netlist.gate ->
    edge:Provider.edge ->
    in_net:int ->
    in_edge:Provider.edge ->
    input_slew:float ->
    load_cap:float ->
    'd;
  m_cell_out_slew :
    Netlist.gate ->
    edge:Provider.edge ->
    in_net:int ->
    in_edge:Provider.edge ->
    input_slew:float ->
    load_cap:float ->
    float;
  m_wire_delay :
    net:int ->
    driver:Cell.t option ->
    sink:Cell.t option ->
    tree:Nsigma_rcnet.Rctree.t ->
    tap:int ->
    'd;
  m_wire_slew_degrade : wire_delay:'d -> slew_at_root:float -> float;
}

type 'a net_arrival = { value : 'a; slew : float }

type 'd pred = {
  p_gate : int;
  p_in_net : int;
  p_in_edge : Provider.edge;
  p_tap : int;
  p_wire_delay : 'd;
  p_pin_slew : float;
  p_cell_delay : 'd;
  p_load : float;
}

type ('d, 'a) slot = { arr : 'a net_arrival; pred : 'd pred option }

type ('d, 'a) po_result = {
  po_net : int;
  po_edge : Provider.edge;
  po_tap : int;
  po_wire : 'd;
  po_value : 'a;  (** arrival including the final wire segment *)
}

type ('d, 'a) report = {
  design : Design.t;
  slots : ('d, 'a) slot option array array;  (** [net].[edge index] *)
  pos : ('d, 'a) po_result list;  (** sorted worst-first by [key] *)
}

let edge_index = function Provider.Rise -> 0 | Provider.Fall -> 1

(* Input-edge candidates that can cause the given output edge. *)
let in_edges_for kind out_edge =
  match kind with
  | Cell.Xor2 | Cell.Xnor2 -> [ Provider.Rise; Provider.Fall ]
  | _ ->
    if Cell.inverting kind then [ Provider.flip out_edge ] else [ out_edge ]

(* Everything the per-gate evaluation step needs, precomputed once per
   analysis and retained by the incremental engine so a re-timing pass
   replays the exact computation [analyze] would have performed. *)
type ('d, 'a) ctx = {
  c_alg : ('d, 'a) algebra;
  c_model : ('d, 'a) model;
  c_tech : Nsigma_process.Technology.t;
  c_design : Design.t;
  c_input_slew : float;
  c_load_model : [ `Total | `Effective ];
  c_sink_index : int array array;  (* gate -> pin -> fanout position *)
  c_order : int array;
}

let make_ctx ?(input_slew = Provider.input_slew_default)
    ?(load_model = `Total) (alg : ('d, 'a) algebra) (model : ('d, 'a) model)
    tech (design : Design.t) : ('d, 'a) ctx =
  let nl = design.Design.netlist in
  (* Sink index of each gate pin within its input net's fanout list —
     each (gate, pin) pair appears in exactly one net's sink list. *)
  let sink_index =
    Array.map (fun g -> Array.map (fun _ -> 0) g.Netlist.inputs) nl.Netlist.gates
  in
  Array.iter
    (fun sinks ->
      List.iteri
        (fun k (gate, pin) -> if gate >= 0 then sink_index.(gate).(pin) <- k)
        sinks)
    design.Design.fanouts;
  {
    c_alg = alg;
    c_model = model;
    c_tech = tech;
    c_design = design;
    c_input_slew = input_slew;
    c_load_model = load_model;
    c_sink_index = sink_index;
    c_order = Netlist.topo_order nl;
  }

let init_sources (ctx : ('d, 'a) ctx) slots =
  Array.iter
    (fun pi ->
      let slot =
        Some
          {
            arr = { value = ctx.c_alg.source; slew = ctx.c_input_slew };
            pred = None;
          }
      in
      slots.(pi).(0) <- slot;
      slots.(pi).(1) <- slot)
    ctx.c_design.Design.netlist.Netlist.primary_inputs

let cell_of_driver (ctx : ('d, 'a) ctx) net =
  let d = ctx.c_design.Design.drivers.(net) in
  if d < 0 then None
  else Some ctx.c_design.Design.netlist.Netlist.gates.(d).Netlist.cell

let eval_gate (ctx : ('d, 'a) ctx) slots gi =
  let alg = ctx.c_alg and model = ctx.c_model in
  let design = ctx.c_design and tech = ctx.c_tech in
  let gate = design.Design.netlist.Netlist.gates.(gi) in
  let out_net = gate.Netlist.output in
  let load =
    match ctx.c_load_model with
    | `Total -> Design.total_load tech design ~net:out_net
    | `Effective ->
      Design.effective_load tech design ~net:out_net ~driver:gate.Netlist.cell
  in
  List.iter
    (fun out_edge ->
      let best = ref None in
      Array.iteri
        (fun pin in_net ->
          List.iter
            (fun in_edge ->
              match slots.(in_net).(edge_index in_edge) with
              | None -> ()
              | Some { arr; _ } ->
                let driven_by_pi = design.Design.drivers.(in_net) < 0 in
                let k = ctx.c_sink_index.(gi).(pin) in
                let tap = Design.tap_of_sink design ~net:in_net ~sink_index:k in
                let wire_delay =
                  if driven_by_pi then alg.no_delay
                  else
                    model.m_wire_delay ~net:in_net
                      ~driver:(cell_of_driver ctx in_net)
                      ~sink:(Some gate.Netlist.cell)
                      ~tree:(Design.loaded_parasitic tech design ~net:in_net)
                      ~tap
                in
                let pin_slew =
                  if driven_by_pi then arr.slew
                  else
                    model.m_wire_slew_degrade ~wire_delay
                      ~slew_at_root:arr.slew
                in
                let cell_delay =
                  model.m_cell_delay gate ~edge:out_edge ~in_net ~in_edge
                    ~input_slew:pin_slew ~load_cap:load
                in
                let value = alg.add (alg.add arr.value wire_delay) cell_delay in
                let pred =
                  {
                    p_gate = gi;
                    p_in_net = in_net;
                    p_in_edge = in_edge;
                    p_tap = tap;
                    p_wire_delay = wire_delay;
                    p_pin_slew = pin_slew;
                    p_cell_delay = cell_delay;
                    p_load = load;
                  }
                in
                (match !best with
                | None -> best := Some (value, pred)
                | Some (old_value, old_pred) ->
                  (* Merge arrivals through [join]; the recorded
                     predecessor is the argmax of [key] — for the
                     scalar algebra this reproduces the strict
                     [time > t] keep-new rule exactly. *)
                  let keep_new = alg.key value > alg.key old_value in
                  best :=
                    Some
                      ( alg.join old_value value,
                        if keep_new then pred else old_pred )))
            (in_edges_for gate.Netlist.cell.Cell.kind out_edge))
        gate.Netlist.inputs;
      match !best with
      | None -> ()
      | Some (value, pred) ->
        let out_slew =
          model.m_cell_out_slew gate ~edge:out_edge ~in_net:pred.p_in_net
            ~in_edge:pred.p_in_edge ~input_slew:pred.p_pin_slew
            ~load_cap:load
        in
        slots.(out_net).(edge_index out_edge) <-
          Some { arr = { value; slew = out_slew }; pred = Some pred })
    [ Provider.Rise; Provider.Fall ]

(* Per-net PO results in the exact order the full pass conses them
   (Rise pushed first), so that rebuilding the PO list net-by-net and
   re-sorting reproduces [analyze]'s output bitwise even through the
   unstable sort. *)
let po_results_of (ctx : ('d, 'a) ctx) slots ~net:po =
  let alg = ctx.c_alg and model = ctx.c_model in
  let design = ctx.c_design in
  let sinks = design.Design.fanouts.(po) in
  let po_sink_index =
    match List.find_index (fun (gate, _) -> gate = -1) sinks with
    | Some k -> k
    | None -> 0
  in
  let driven_by_pi = design.Design.drivers.(po) < 0 in
  let results = ref [] in
  List.iter
    (fun edge ->
      match slots.(po).(edge_index edge) with
      | None -> ()
      | Some { arr; _ } ->
        let tap = Design.tap_of_sink design ~net:po ~sink_index:po_sink_index in
        let wire =
          if driven_by_pi then alg.no_delay
          else
            model.m_wire_delay ~net:po ~driver:(cell_of_driver ctx po)
              ~sink:None
              ~tree:(Design.loaded_parasitic ctx.c_tech design ~net:po)
              ~tap
        in
        results :=
          {
            po_net = po;
            po_edge = edge;
            po_tap = tap;
            po_wire = wire;
            po_value = alg.add arr.value wire;
          }
          :: !results)
    [ Provider.Rise; Provider.Fall ];
  List.rev !results

let sort_pos (alg : ('d, 'a) algebra) pos =
  List.sort
    (fun a b -> Float.compare (alg.key b.po_value) (alg.key a.po_value))
    pos

let analyze_ctx ?(span = "sta.analyze") (ctx : ('d, 'a) ctx) :
    ('d, 'a) report =
  Metrics.span span @@ fun () ->
  let nl = ctx.c_design.Design.netlist in
  let slots = Array.make_matrix nl.Netlist.n_nets 2 None in
  init_sources ctx slots;
  Array.iter (fun gi -> eval_gate ctx slots gi) ctx.c_order;
  (* Primary-output arrivals through their final wire segment. *)
  let pos = ref [] in
  Array.iter
    (fun po ->
      List.iter
        (fun r -> pos := r :: !pos)
        (po_results_of ctx slots ~net:po))
    nl.Netlist.primary_outputs;
  { design = ctx.c_design; slots; pos = sort_pos ctx.c_alg !pos }

let analyze ?span ?input_slew ?load_model (alg : ('d, 'a) algebra)
    (model : ('d, 'a) model) tech (design : Design.t) : ('d, 'a) report =
  analyze_ctx ?span (make_ctx ?input_slew ?load_model alg model tech design)

let arrival report ~net ~edge =
  Option.map (fun s -> s.arr) report.slots.(net).(edge_index edge)

let design_of report = report.design

let po_arrival report ~net ~edge =
  List.find_opt (fun po -> po.po_net = net && po.po_edge = edge) report.pos
  |> Option.map (fun po -> po.po_value)

(* Predecessor chain of a PO result, source-first, each paired with the
   output edge it produced — the raw material for path extraction. *)
let preds_of report (po : ('d, 'a) po_result) =
  let rec walk net edge acc =
    match report.slots.(net).(edge_index edge) with
    | None | Some { pred = None; _ } -> acc
    | Some { pred = Some p; _ } ->
      walk p.p_in_net p.p_in_edge ((p, edge, net) :: acc)
  in
  walk po.po_net po.po_edge []

let distinct_pos report ~k =
  let seen = Hashtbl.create 16 in
  let distinct =
    List.filter
      (fun po ->
        if Hashtbl.mem seen po.po_net then false
        else begin
          Hashtbl.add seen po.po_net ();
          true
        end)
      report.pos
  in
  List.filteri (fun i _ -> i < k) distinct
