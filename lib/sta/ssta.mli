(** Block-based statistical static timing analysis.

    One topological pass propagates four-moment delay distributions
    (μ, σ, γ, κ — the same parameterisation the N-sigma model
    calibrates) per net and edge through the whole netlist: the
    {!Engine_core} walk instantiated with a distribution algebra whose
    sum is exact moment arithmetic and whose reconvergence join is a
    statistical max ({!Nsigma_stats.Stat_max}).

    Each distribution is decomposed into a globally-correlated response
    and an independent local remainder.  The global response is a
    reduced second-order model in the three shared process-corner
    deviates z = (dvth_n, dvth_p, dbeta):

    {v G = Σᵢ aᵢ·zᵢ + bᵢ·(zᵢ² − 1) v}

    Linear and quadratic coefficients add along a path, so correlated
    variance AND correlated skewness compound exactly — near-threshold
    delay is strongly convex in the vth corners, and a linear-only
    global model visibly under-predicts the +3σ tail.  The tracked
    coefficients supply the correlation of reconverging arrivals and
    are re-weighted through each max by the Clark tightness
    probability.

    This is the scalable alternative to {!Path_mc}: per-path MC costs
    O(paths × samples × stages) simulations, the block-based pass costs
    one table lookup per arc plus one statistical max per reconvergent
    input — {!validate} measures both against each other. *)

type dist = {
  d_mean : float;  (** mean delay / arrival (s) *)
  d_a : float array;
      (** linear global sensitivities, one per global deviate (s) *)
  d_b : float array;  (** quadratic (z²−1) global sensitivities (s) *)
  d_var_l : float;  (** independent (local) variance (s²) *)
  d_m3_l : float;  (** local third central moment (s³) *)
  d_m4_l : float;  (** local fourth central moment (s⁴) *)
}
(** Total variance is [Σ aᵢ² + 2bᵢ² + d_var_l]; total third and fourth
    central moments reassemble the global response's non-Gaussian
    moments with the local remainder (see {!to_summary}). *)

type delay = {
  dd : dist;
  d_slew_tc : float;
      (** mean Elmore constant of the wire segment (0 for cell arcs) —
          what PERI slew degradation works on *)
}

val zero_dist : dist
val variance : dist -> float
val std : dist -> float

val to_summary : dist -> Nsigma_stats.Moments.summary
(** Reassemble total central moments: the global response contributes
    Var = Σ aᵢ²+2bᵢ², m3 = Σ 6aᵢ²bᵢ+8bᵢ³, m4 = Σ 3aᵢ⁴+60aᵢ²bᵢ²+60bᵢ⁴
    plus independent-factor cross terms, and the local remainder adds
    independently. *)

val of_summary : global_frac:float -> Nsigma_stats.Moments.summary -> dist
(** Generic split when no sensitivity information exists: [global_frac]
    (clamped to [0,1]) of the variance becomes a single linear factor
    (no quadratic term).  Wires use [global_frac = 0.]. *)

val quantile : dist -> sigma:float -> float
(** The nσ sigma-level delay of a distribution via the same
    Cornish–Fisher expansion {!Nsigma_stats.Stat_max.moment} uses —
    [quantile d ~sigma:3.0] is the +3σ sign-off arrival. *)

(** {2 Configuration} *)

type correlation =
  | Independent  (** reconverging arrivals treated as uncorrelated *)
  | Constant of float  (** fixed correlation for every max *)
  | Tracked
      (** ρ from the tracked global coefficients:
          ρ = (Σ aᵢ·aᵢ' + 2bᵢ·bᵢ') / (σ·σ') — signed, so arcs driven by
          different corners (e.g. rise/fall) decorrelate naturally *)

type config = { op : Nsigma_stats.Stat_max.operator; corr : correlation }

val default_config : config
(** Clark max with {!Tracked} correlation. *)

val algebra : config -> (delay, dist) Engine_core.algebra
(** The arrival-value algebra (exposed for tests): add is the
    correlated moment sum, join the statistical max re-split by Clark
    tightness, key the +3σ Cornish–Fisher arrival.  Join operations
    tick the [sta.ssta.max_ops] / [sta.ssta.max.{clark,moment}]
    counters. *)

(** {2 Providers} *)

type provider = (delay, dist) Engine_core.model

type handle = {
  h_provider : provider;
  h_invalidate_net : int -> unit;
      (** Drop the provider's per-net retained state (wire mini-MC
          results, slew sensitivities) so the next query recomputes it
          from the edited design.  Per-net derived RNG streams make the
          recomputation of {e unedited} nets reproduce their old
          entries bit for bit, which is what makes selective
          invalidation sound. *)
  h_slew_sig : int -> int64 array;
      (** Bitwise signature of the provider's slew-sensitivity state
          for a net (both edges, presence-tagged float bits).  Slew
          sensitivities feed downstream delay coupling without being
          visible in the arrival slot, so the incremental engine's
          cutoff equality must include this signature.  A provider with
          no such state returns a constant (e.g. [[||]]). *)
  h_prewarm : unit -> unit;
      (** Force every per-(cell, edge) regression the design can
          demand — the provider's whole cold cost, isolated so callers
          can time cold vs store-warm startup. *)
}
(** A provider plus the invalidation hooks the incremental engine
    ({!Incremental}) needs.  {!lvf_handle} builds the real one;
    {!handle_of_provider} wraps a stateless provider with no-op
    hooks. *)

val handle_of_provider : provider -> handle
(** No-op hooks — correct for providers that retain no per-net state
    (e.g. synthetic test providers or the scalar engine's models). *)

val lvf_handle :
  ?seed:int ->
  ?wire_samples:int ->
  ?frac_samples:int ->
  ?exec:Nsigma_exec.Executor.t ->
  ?batch:bool ->
  ?approx:bool ->
  ?store_dir:string option ->
  Nsigma_process.Technology.t ->
  Nsigma_liberty.Library.t ->
  Design.t ->
  handle
(** {!lvf_provider} plus incremental hooks.  [store_dir] selects the
    content-addressed on-disk store for the per-(cell, edge) moment
    regressions ({!Nsigma_liberty.Store}): keys are derived from the
    library's v4 fingerprint plus the provider knobs that shape the
    result ([frac_samples], [seed], [approx]), and payloads round-trip
    exactly (hex float literals), so a store-warm provider is bitwise
    identical to a cold one.  Default {!Nsigma_liberty.Store.default_dir}
    (the [NSIGMA_PROVIDER_CACHE] environment directory); pass
    [~store_dir:None] to disable, [~store_dir:(Some dir)] to pin a
    directory.  Hits/misses/stale artifacts tick the
    [provider.store.*] counters. *)

val lvf_provider :
  ?seed:int ->
  ?wire_samples:int ->
  ?frac_samples:int ->
  ?exec:Nsigma_exec.Executor.t ->
  ?batch:bool ->
  ?approx:bool ->
  ?store_dir:string option ->
  Nsigma_process.Technology.t ->
  Nsigma_liberty.Library.t ->
  Design.t ->
  provider
(** Statistical delays from the characterized LVF tables.  Cell arcs
    look up {!Nsigma_liberty.Characterize.moments_at} at the propagated
    mean slew and lumped load.  The global/local decomposition is
    estimated per (cell, edge) by a paired mini-MC ([frac_samples],
    fast kernel, the same deviate vectors with and without local
    mismatch) at the reference point: the globals-only population
    yields the variance fraction explained by the corners and, by
    moment regression (aᵢ = E[d·zᵢ], bᵢ = E[d·(zᵢ²−1)]/2 — exact for
    iid standard deviates), the linear and quadratic sensitivity shape,
    rescaled to the table's variance at the operating point.  Wire
    segments get a per-net mini-MC ([wire_samples] outcomes of
    {!Nsigma_rcnet.Wire_gen.vary}) evaluated with the same D2M-at-tap
    metric and PERI slew model as {!Path_mc}'s fast hop, so validation
    error isolates the propagation approximation.

    Both mini-MC loops run on [exec] (default
    {!Nsigma_exec.Executor.default}[ ()]): workers fill index-addressed
    per-sample arrays and the moment accumulators fold over them in
    index order on the calling domain, so populations are bit-identical
    on every backend.  [batch] routes the paired cell mini-MC through
    the SoA {!Nsigma_spice.Cell_sim.Batch} kernel (two batches per
    chunk: full draws and their globals-only twins), still
    bit-identical; [approx] (implies [batch]) swaps in the polynomial
    transcendentals — the opt-in [--no-bit-identical] mode.

    The regression is memoized per (cell name, edge): it runs at the
    fixed reference operating point (reference slew, FO4 load), so every
    net driven by the same arc shares one mini-MC, and only the
    per-operating-point table rescale differs between nets.  All caches
    fill lazily on first use on the calling domain and are owned by the
    returned provider (not thread-safe). *)

(** {2 Analysis} *)

type report = (delay, dist) Engine_core.report

val analyze :
  ?input_slew:float ->
  ?load_model:[ `Total | `Effective ] ->
  ?config:config ->
  Nsigma_process.Technology.t ->
  provider ->
  Design.t ->
  report
(** One statistical pass (span [sta.ssta.analyze]).
    @raise Invalid_argument on a cyclic netlist. *)

val arrival : report -> net:int -> edge:Provider.edge -> dist Engine_core.net_arrival option
val po_dist : report -> net:int -> edge:Provider.edge -> dist option
val circuit_dist : report -> dist
(** Worst PO arrival distribution (by +3σ); {!zero_dist} if no POs. *)

val pos : report -> (int * Provider.edge * dist) list
(** All PO arrival distributions, worst-first. *)

(** {2 Validation against per-path Monte Carlo} *)

type validation = {
  va_n_paths : int;  (** PO paths in the MC max population *)
  va_mc_n : int;  (** MC samples *)
  va_mc_seconds : float;  (** wall-clock of the per-path MC reference *)
  va_ssta_seconds : float;  (** wall-clock of provider caches + SSTA pass *)
  va_mc : Nsigma_stats.Moments.summary;  (** max-over-covered-paths population *)
  va_mc_p3 : float;  (** +3 sigma-level empirical quantile *)
  va_mc_m3 : float;  (** −3 sigma-level empirical quantile *)
  va_ssta : dist;  (** statistical max over the same covered POs *)
  va_ssta_full : dist;  (** full-circuit dist (all POs) *)
  va_err_mean : float;  (** relative mean error vs MC *)
  va_err_p3 : float;  (** relative +3σ quantile error vs MC *)
  va_err_m3 : float;  (** relative −3σ quantile error vs MC *)
}

val validate :
  ?n:int ->
  ?k:int ->
  ?seed:int ->
  ?config:config ->
  ?provider:provider ->
  Nsigma_process.Technology.t ->
  Nsigma_liberty.Library.t ->
  Design.t ->
  validation
(** Compare the block-based pass against a max-over-paths per-path MC
    reference at matched coverage: the [k] (default 16) worst distinct
    POs of the nominal engine, [n] (default 1000) samples each, every
    path's sample [i] sharing the global corners (seed-derived) so the
    population reflects the physical cross-path correlation.  Both
    sides run single-threaded with the same fast hop model; the
    wall-clock ratio is a like-for-like speedup.
    @raise Invalid_argument if the design has no PO paths. *)
