(** Monte-Carlo "SPICE" simulation of an extracted timing path.

    This is the golden reference of Table III: for each variation sample
    the path is re-simulated stage by stage at transistor level — every
    gate's arc is rebuilt with fresh per-device mismatch, every wire's
    R/C is perturbed, the driver is simulated {e into its real RC tree}
    (so cell delay, wire delay and slew propagation all interact), and
    the stage delays are summed.  Nothing from the statistical models is
    used. *)

type sampling_info = {
  si_backend : Nsigma_stats.Sampler.backend;
      (** deviate stream the population was drawn from *)
  si_rtol : float option;  (** adaptive tolerance, [None] = fixed count *)
  si_requested : int;  (** samples asked for ([n]) *)
  si_drawn : int;  (** samples actually simulated (≤ requested) *)
  si_saved : int;  (** requested − drawn *)
  si_non_convergent : int;  (** simulator failures among the drawn *)
  si_batches : int;  (** executor passes (1 unless adaptive) *)
}
(** Per-run sampling metadata, carried in {!stats} so timing reports and
    the JSON run report can show how a population was produced. *)

type stats = {
  samples : float array;  (** sorted path-delay population (s) *)
  moments : Nsigma_stats.Moments.summary;
  quantile : int -> float;  (** sigma level −3 … +3 → delay (s) *)
  sampling : sampling_info;
}

val simulate_sample :
  ?steps:int ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  Nsigma_process.Technology.t ->
  Design.t ->
  Path.t ->
  Nsigma_process.Variation.t ->
  float
(** One fabrication outcome's path delay.  [kernel] defaults to [Rk4]:
    the golden reference co-simulates each driver into its varied RC
    tree ({!Nsigma_spice.Rc_sim}).  [Fast] swaps in the analytic hop
    model — driver into the lumped net capacitance with the fast cell
    kernel, D2M wire delay at the exit tap, PERI (root-sum-square) slew
    propagation — trading the cell/wire co-simulation for a large
    speedup.  [Auto] is conservative here and behaves like [Rk4],
    because the fast hop model approximates exactly the interaction this
    simulation exists to capture. *)

type plan
(** A precompiled sampling plan for one path: per hop, the driver cell's
    arc skeleton, a private copy of the net's RC tree with its refill
    scratch, the sink loads and the exit-tap position — everything
    sample-independent, resolved once.  Plans hold mutable scratch and
    must not be shared between domains; {!run} builds one per worker. *)

val plan_of : Nsigma_process.Technology.t -> Design.t -> Path.t -> plan
(** Compile a plan.  @raise Invalid_argument on an empty path or a hop
    whose exit tap is not a tap of its output net. *)

val deviate_dim : plan -> int
(** Standard-normal deviates one sample through the plan consumes: the
    three global corners plus, per hop, the cell skeleton's locals
    ({!Nsigma_spice.Arc.skeleton_local_dim}) and two per non-root wire
    node.  The vector dimension an {!Nsigma_stats.Sampler} stream must
    produce for this path. *)

val simulate_planned :
  ?steps:int ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  Nsigma_process.Technology.t ->
  plan ->
  Nsigma_process.Variation.t ->
  record_wire:(int -> float -> unit) ->
  float
(** One sample through a plan: fills each hop's skeleton and RC tree in
    place and runs the same hop arithmetic as {!simulate_sample} —
    bit-identical to it (same deviate draw order), without rebuilding
    arcs or trees.  [record_wire i d] is called with each hop's wire
    delay. *)

val run :
  ?steps:int ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  ?n:int ->
  ?seed:int ->
  ?exec:Nsigma_exec.Executor.t ->
  ?sampling:Nsigma_stats.Sampler.backend ->
  ?rtol:float ->
  ?batch:bool ->
  ?approx:bool ->
  Nsigma_process.Technology.t ->
  Design.t ->
  Path.t ->
  stats
(** [n] (default 1000) full-path samples, scheduled on [exec] (default
    [Executor.default ()]) through a per-worker {!plan} — sample [i]
    derives its variation stream from index [i], so the population is
    bit-identical on every backend and pool size (and to the
    rebuild-per-sample {!simulate_sample} reference).

    [sampling] selects the deviate stream (default
    {!Nsigma_stats.Sampler.default_backend}[ ()]): the [Mc] default
    replays the legacy population bit for bit; [Antithetic] / [Lhs] /
    [Sobol] draw their deviate vectors ({!deviate_dim} wide) from the
    variance-reduction stream instead.  [rtol] turns on adaptive
    stopping: sampling proceeds in doubling batches from
    {!Nsigma_spice.Monte_carlo.min_adaptive_batch} and stops once both
    ±3σ quantile CIs are within the relative tolerance, capped at [n];
    the early-stopped population is a bitwise prefix of the full run.
    The configuration and outcome are reported in [stats.sampling].

    [batch] (default false) routes fast-kernel hops through the SoA
    {!Nsigma_spice.Cell_sim.Batch} layer, hop-major over
    {!Nsigma_spice.Monte_carlo.batch_chunk}-sample chunks — bit-identical
    to the scalar loop (each sample owns its deviate cursor, so
    interleaving cannot perturb a draw or an FP sequence; test_batch
    asserts this).  [approx] (default false, implies [batch]) swaps in
    the polynomial transcendentals ({!Nsigma_stats.Fastmath}) — the
    opt-in [--no-bit-identical] mode.  Both flags apply only when
    [kernel] is [Fast] and [rtol] is off; otherwise the scalar loop
    runs.
    @raise Invalid_argument if [rtol <= 0].
    @raise Failure if every sample is non-convergent, naming the path's
    end net. *)

val per_wire_quantiles :
  ?steps:int ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  ?n:int ->
  ?seed:int ->
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Design.t ->
  Path.t ->
  sigma:int ->
  float list
(** The per-wire-segment nσ delays along the path (the Fig. 11 series):
    each wire's sample population is collected during the same runs.
    Always drawn with the plain Mc stream — a deliberate scope choice:
    the Fig. 11 comparison is against the legacy reference population,
    and per-wire quantiles are diagnostics rather than a convergence
    target. *)
