(** Monte-Carlo "SPICE" simulation of an extracted timing path.

    This is the golden reference of Table III: for each variation sample
    the path is re-simulated stage by stage at transistor level — every
    gate's arc is rebuilt with fresh per-device mismatch, every wire's
    R/C is perturbed, the driver is simulated {e into its real RC tree}
    (so cell delay, wire delay and slew propagation all interact), and
    the stage delays are summed.  Nothing from the statistical models is
    used. *)

type stats = {
  samples : float array;  (** sorted path-delay population (s) *)
  moments : Nsigma_stats.Moments.summary;
  quantile : int -> float;  (** sigma level −3 … +3 → delay (s) *)
}

val simulate_sample :
  ?steps:int ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  Nsigma_process.Technology.t ->
  Design.t ->
  Path.t ->
  Nsigma_process.Variation.t ->
  float
(** One fabrication outcome's path delay.  [kernel] defaults to [Rk4]:
    the golden reference co-simulates each driver into its varied RC
    tree ({!Nsigma_spice.Rc_sim}).  [Fast] swaps in the analytic hop
    model — driver into the lumped net capacitance with the fast cell
    kernel, D2M wire delay at the exit tap, PERI (root-sum-square) slew
    propagation — trading the cell/wire co-simulation for a large
    speedup.  [Auto] is conservative here and behaves like [Rk4],
    because the fast hop model approximates exactly the interaction this
    simulation exists to capture. *)

type plan
(** A precompiled sampling plan for one path: per hop, the driver cell's
    arc skeleton, a private copy of the net's RC tree with its refill
    scratch, the sink loads and the exit-tap position — everything
    sample-independent, resolved once.  Plans hold mutable scratch and
    must not be shared between domains; {!run} builds one per worker. *)

val plan_of : Nsigma_process.Technology.t -> Design.t -> Path.t -> plan
(** Compile a plan.  @raise Invalid_argument on an empty path or a hop
    whose exit tap is not a tap of its output net. *)

val simulate_planned :
  ?steps:int ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  Nsigma_process.Technology.t ->
  plan ->
  Nsigma_process.Variation.t ->
  record_wire:(int -> float -> unit) ->
  float
(** One sample through a plan: fills each hop's skeleton and RC tree in
    place and runs the same hop arithmetic as {!simulate_sample} —
    bit-identical to it (same deviate draw order), without rebuilding
    arcs or trees.  [record_wire i d] is called with each hop's wire
    delay. *)

val run :
  ?steps:int ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  ?n:int ->
  ?seed:int ->
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Design.t ->
  Path.t ->
  stats
(** [n] (default 1000) full-path samples, scheduled on [exec] (default
    [Executor.default ()]) through a per-worker {!plan} — sample [i]
    derives its variation stream from index [i], so the population is
    bit-identical on every backend and pool size (and to the
    rebuild-per-sample {!simulate_sample} reference).
    @raise Failure if every sample is non-convergent, naming the path's
    end net. *)

val per_wire_quantiles :
  ?steps:int ->
  ?kernel:Nsigma_spice.Cell_sim.kernel ->
  ?n:int ->
  ?seed:int ->
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Design.t ->
  Path.t ->
  sigma:int ->
  float list
(** The per-wire-segment nσ delays along the path (the Fig. 11 series):
    each wire's sample population is collected during the same runs. *)
