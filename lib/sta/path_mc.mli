(** Monte-Carlo "SPICE" simulation of an extracted timing path.

    This is the golden reference of Table III: for each variation sample
    the path is re-simulated stage by stage at transistor level — every
    gate's arc is rebuilt with fresh per-device mismatch, every wire's
    R/C is perturbed, the driver is simulated {e into its real RC tree}
    (so cell delay, wire delay and slew propagation all interact), and
    the stage delays are summed.  Nothing from the statistical models is
    used. *)

type stats = {
  samples : float array;  (** sorted path-delay population (s) *)
  moments : Nsigma_stats.Moments.summary;
  quantile : int -> float;  (** sigma level −3 … +3 → delay (s) *)
}

val simulate_sample :
  ?steps:int ->
  Nsigma_process.Technology.t ->
  Design.t ->
  Path.t ->
  Nsigma_process.Variation.t ->
  float
(** One fabrication outcome's path delay. *)

val run :
  ?steps:int ->
  ?n:int ->
  ?seed:int ->
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Design.t ->
  Path.t ->
  stats
(** [n] (default 1000) full-path samples, scheduled on [exec] (default
    [Executor.default ()]).  Sample [i] derives its variation stream
    from index [i], so the population is bit-identical on every backend
    and pool size. *)

val per_wire_quantiles :
  ?steps:int ->
  ?n:int ->
  ?seed:int ->
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Design.t ->
  Path.t ->
  sigma:int ->
  float list
(** The per-wire-segment nσ delays along the path (the Fig. 11 series):
    each wire's sample population is collected during the same runs. *)
