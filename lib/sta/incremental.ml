(* Incremental statistical re-timing.

   After one full Ssta pass, the arrival slots, the Engine_core ctx
   (topo order, sink indices) and the provider's per-net caches are
   retained.  A netlist edit invalidates a small set of nets; the
   drivers and sink gates of those nets seed a rank-ordered worklist,
   and gates are re-evaluated in topological-rank order with
   Engine_core.eval_gate — the exact per-gate step of the full pass.

   Early cutoff is bitwise: a gate whose recomputed output slots (dist
   and slew, compared as float bits) AND provider slew-sensitivity
   signature equal the retained ones cannot change anything downstream
   — every downstream quantity is a deterministic function of exactly
   those values — so its fanout is not enqueued.  A buffer-chain edit
   therefore touches O(depth-to-reconvergence) gates, not O(gates), and
   the resulting report is bit-for-bit the report a from-scratch
   analysis of the edited design would produce.

   Worklist ordering guarantees single evaluation per gate per edit:
   the heap pops in nondecreasing rank and every push targets a
   strictly higher rank (a gate's fanout is downstream of it), so no
   popped gate is ever pushed again. *)

module Netlist = Nsigma_netlist.Netlist
module Edit = Nsigma_netlist.Edit
module Metrics = Nsigma_obs.Metrics
module Trace = Nsigma_obs.Trace

(* Registered at module init so run reports always carry the sta.incr.*
   keys, zero-valued when no incremental work happened. *)
let m_edits = Metrics.counter "sta.incr.edits"
let m_invalidated = Metrics.counter "sta.incr.invalidated_nets"
let m_dirty = Metrics.counter "sta.incr.dirty_gates"
let m_cutoffs = Metrics.counter "sta.incr.cutoff_hits"

let tr_edit = Trace.span_type ~cat:"incr" "incr.edit"

let tr_edit_stats =
  Trace.instant_type ~cat:"incr"
    ~args:[ "invalidated"; "dirty_gates"; "cutoff_hits" ]
    "incr.edit.stats"

(* Minimal binary min-heap over ints (topological ranks). *)
module Int_heap = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }
  let is_empty h = h.n = 0

  let push h x =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) 0 in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- x;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      if h.a.(p) > h.a.(!i) then begin
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := p;
        true
      end
      else false
    do
      ()
    done

  let pop h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.n && h.a.(l) < h.a.(!s) then s := l;
      if r < h.n && h.a.(r) < h.a.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        let tmp = h.a.(!s) in
        h.a.(!s) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !s
      end
    done;
    top
end

type t = {
  ctx : (Ssta.delay, Ssta.dist) Engine_core.ctx;
  handle : Ssta.handle;
  slots : (Ssta.delay, Ssta.dist) Engine_core.slot option array array;
  rank : int array;  (* gate -> position in ctx.c_order *)
  queued : bool array;  (* gate -> currently in the heap *)
  heap : Int_heap.t;
  mutable pos : (Ssta.delay, Ssta.dist) Engine_core.po_result list;
}

type stats = {
  st_invalidated : int;
  st_dirty : int;  (* gates re-evaluated *)
  st_cutoffs : int;  (* re-evaluated gates whose outputs were bitwise unchanged *)
  st_seconds : float;
}

(* --- bitwise equality on retained state ----------------------------- *)

let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

let arr_eq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (feq x b.(i)) then ok := false) a;
  !ok

let dist_eq (a : Ssta.dist) (b : Ssta.dist) =
  feq a.Ssta.d_mean b.Ssta.d_mean
  && arr_eq a.Ssta.d_a b.Ssta.d_a
  && arr_eq a.Ssta.d_b b.Ssta.d_b
  && feq a.Ssta.d_var_l b.Ssta.d_var_l
  && feq a.Ssta.d_m3_l b.Ssta.d_m3_l
  && feq a.Ssta.d_m4_l b.Ssta.d_m4_l

(* Predecessor records are deterministic functions of the compared
   inputs, so arrival value + slew equality is enough for cutoff: a
   downstream gate re-evaluated from bitwise-equal inputs reproduces
   its retained slot, pred included. *)
let slot_eq a b =
  match (a, b) with
  | None, None -> true
  | Some (s1 : (Ssta.delay, Ssta.dist) Engine_core.slot), Some s2 ->
    dist_eq s1.Engine_core.arr.Engine_core.value
      s2.Engine_core.arr.Engine_core.value
    && feq s1.Engine_core.arr.Engine_core.slew
         s2.Engine_core.arr.Engine_core.slew
  | _ -> false

(* --- lifecycle ------------------------------------------------------ *)

let init ?input_slew ?load_model ?(config = Ssta.default_config) tech
    (handle : Ssta.handle) design =
  let ctx =
    Engine_core.make_ctx ?input_slew ?load_model (Ssta.algebra config)
      handle.Ssta.h_provider tech design
  in
  let report = Engine_core.analyze_ctx ~span:"sta.incr.init" ctx in
  let n_gates = Array.length design.Design.netlist.Netlist.gates in
  let rank = Array.make n_gates 0 in
  Array.iteri (fun r gi -> rank.(gi) <- r) ctx.Engine_core.c_order;
  {
    ctx;
    handle;
    slots = report.Engine_core.slots;
    rank;
    queued = Array.make n_gates false;
    heap = Int_heap.create ();
    pos = report.Engine_core.pos;
  }

let report t : Ssta.report =
  {
    Engine_core.design = t.ctx.Engine_core.c_design;
    slots = t.slots;
    pos = t.pos;
  }

let apply t edit =
  let t_start = Metrics.now () in
  Metrics.span "sta.incr.apply" @@ fun () ->
  Trace.with_span tr_edit @@ fun () ->
  let design = t.ctx.Engine_core.c_design in
  let invalidated = Design.apply_edit design edit in
  List.iter t.handle.Ssta.h_invalidate_net invalidated;
  let push gi =
    if gi >= 0 && not t.queued.(gi) then begin
      t.queued.(gi) <- true;
      Int_heap.push t.heap t.rank.(gi)
    end
  in
  (* Frontier: the driver of an invalidated net sees a new load; its
     sink gates see a new wire delay / pin slew. *)
  List.iter
    (fun net ->
      push design.Design.drivers.(net);
      List.iter (fun (g, _) -> push g) design.Design.fanouts.(net))
    invalidated;
  let dirty = ref 0 and cutoffs = ref 0 in
  while not (Int_heap.is_empty t.heap) do
    let gi = t.ctx.Engine_core.c_order.(Int_heap.pop t.heap) in
    t.queued.(gi) <- false;
    incr dirty;
    let out_net =
      design.Design.netlist.Netlist.gates.(gi).Netlist.output
    in
    let before0 = t.slots.(out_net).(0) in
    let before1 = t.slots.(out_net).(1) in
    let sig_before = t.handle.Ssta.h_slew_sig out_net in
    Engine_core.eval_gate t.ctx t.slots gi;
    let changed =
      (not (slot_eq before0 t.slots.(out_net).(0)))
      || (not (slot_eq before1 t.slots.(out_net).(1)))
      || t.handle.Ssta.h_slew_sig out_net <> sig_before
    in
    if changed then
      List.iter (fun (g, _) -> push g) design.Design.fanouts.(out_net)
    else incr cutoffs
  done;
  (* The PO list is rebuilt wholesale: per-net results come from cached
     provider/wire state (cheap after the walk above) and in the full
     pass's exact cons order, so the re-sorted list is bitwise the one
     a from-scratch analysis would produce. *)
  let pos = ref [] in
  Array.iter
    (fun po ->
      List.iter
        (fun r -> pos := r :: !pos)
        (Engine_core.po_results_of t.ctx t.slots ~net:po))
    design.Design.netlist.Netlist.primary_outputs;
  t.pos <- Engine_core.sort_pos t.ctx.Engine_core.c_alg !pos;
  let n_invalidated = List.length invalidated in
  Metrics.incr m_edits;
  Metrics.incr m_invalidated ~by:n_invalidated;
  Metrics.incr m_dirty ~by:!dirty;
  Metrics.incr m_cutoffs ~by:!cutoffs;
  if Trace.enabled () then
    Trace.instant tr_edit_stats
      ~a:(float_of_int n_invalidated)
      ~b:(float_of_int !dirty)
      ~c:(float_of_int !cutoffs) ();
  {
    st_invalidated = n_invalidated;
    st_dirty = !dirty;
    st_cutoffs = !cutoffs;
    st_seconds = Metrics.now () -. t_start;
  }

(* --- report comparison ---------------------------------------------- *)

let po_eq (a : (Ssta.delay, Ssta.dist) Engine_core.po_result)
    (b : (Ssta.delay, Ssta.dist) Engine_core.po_result) =
  a.Engine_core.po_net = b.Engine_core.po_net
  && a.Engine_core.po_edge = b.Engine_core.po_edge
  && dist_eq a.Engine_core.po_value b.Engine_core.po_value

let reports_bit_identical (a : Ssta.report) (b : Ssta.report) =
  Array.length a.Engine_core.slots = Array.length b.Engine_core.slots
  && (let ok = ref true in
      Array.iteri
        (fun net row ->
          for e = 0 to 1 do
            if not (slot_eq row.(e) b.Engine_core.slots.(net).(e)) then
              ok := false
          done)
        a.Engine_core.slots;
      !ok)
  && List.length a.Engine_core.pos = List.length b.Engine_core.pos
  && List.for_all2 po_eq a.Engine_core.pos b.Engine_core.pos
