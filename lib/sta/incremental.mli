(** Incremental statistical re-timing.

    One full {!Ssta} pass builds a retained state: the per-net arrival
    slots, the {!Engine_core.ctx} (topological order, sink indices) and
    the provider's per-net caches.  Each {!apply} then validates and
    applies one netlist edit, seeds a rank-ordered dirty worklist from
    the edit's invalidated nets (their drivers and sink gates), and
    re-evaluates gates with {!Engine_core.eval_gate} — the exact
    per-gate step of the full pass — in topological-rank order, each
    gate at most once per edit.

    {b Cutoff rule (bitwise).}  A re-evaluated gate whose output slots
    (arrival distribution and slew, compared as float bits) {e and}
    provider slew-sensitivity signature ({!Ssta.handle.h_slew_sig})
    equal the retained values cannot change anything downstream — every
    downstream quantity is a deterministic function of exactly those
    values — so its fanout is not enqueued.  A buffer-chain edit
    touches O(depth-to-reconvergence) gates, not O(gates), and
    {!report} after any edit sequence is bit-for-bit the report a
    from-scratch {!Ssta.analyze} of the edited design would produce
    ({!reports_bit_identical} checks exactly this).

    Instrumented with the [sta.incr.*] counters (edits, invalidated
    nets, dirty gates, cutoff hits), the [sta.incr.apply] metrics span
    and an [incr.edit] trace span (+ per-edit stats instant). *)

type t
(** Retained analysis state for one design.  Owns its design and
    provider handle: edits mutate the design in place, so don't share
    either with a concurrently-used analysis. *)

type stats = {
  st_invalidated : int;  (** nets invalidated by the edit *)
  st_dirty : int;  (** gates re-evaluated *)
  st_cutoffs : int;
      (** re-evaluated gates whose outputs were bitwise unchanged
          (propagation stopped there) *)
  st_seconds : float;  (** wall-clock of this [apply] *)
}

val init :
  ?input_slew:float ->
  ?load_model:[ `Total | `Effective ] ->
  ?config:Ssta.config ->
  Nsigma_process.Technology.t ->
  Ssta.handle ->
  Design.t ->
  t
(** Run the initial full pass (span [sta.incr.init]) and retain its
    state.  @raise Invalid_argument on a cyclic netlist. *)

val apply : t -> Nsigma_netlist.Edit.t -> stats
(** Validate, apply and re-time one edit.
    @raise Nsigma_netlist.Edit.Edit_error on an ill-formed edit (the
    state is unchanged in that case — validation precedes mutation). *)

val report : t -> Ssta.report
(** The current analysis result — after [n] applies, bitwise equal to
    [Ssta.analyze] of the edited design. *)

val reports_bit_identical : Ssta.report -> Ssta.report -> bool
(** Float-bit equality of all arrival slots (value and slew, both
    edges, every net) and of the worst-first PO list (net, edge,
    arrival distribution). *)
