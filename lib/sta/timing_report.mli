(** Sign-off style timing reports: endpoint slacks against a clock
    period and PrimeTime-like path listings.

    This is the consumer view of an {!Engine.report}: the calibration
    papers the method builds on ([5], [8]) frame their corrections in
    terms of endpoint slacks, so the library offers the same vocabulary. *)

type endpoint = {
  net : int;
  edge : Provider.edge;
  arrival : float;  (** at the PO tap, final wire included *)
  slack : float;  (** period − arrival; negative = violated *)
}

type t = {
  period : float;
  endpoints : endpoint list;  (** sorted worst-slack first *)
  wns : float;  (** worst negative slack (or worst slack if all met) *)
  tns : float;  (** total negative slack (0 when all met) *)
}

val of_report : period:float -> Engine.report -> t
(** Build the slack view of an analysis. *)

val violations : t -> endpoint list
(** Endpoints with negative slack. *)

val pp : Nsigma_netlist.Netlist.t -> Format.formatter -> t -> unit
(** Human-readable summary: WNS/TNS plus the worst endpoints. *)

val pp_path :
  Nsigma_netlist.Netlist.t -> period:float -> Format.formatter -> Path.t -> unit
(** PrimeTime-flavoured single-path report: per-stage incr/path columns
    and the endpoint slack line. *)

val pp_sampling : Format.formatter -> Path_mc.sampling_info -> unit
(** Two-line summary of how a Monte-Carlo population was produced:
    backend (and adaptive tolerance when enabled), samples drawn vs
    requested, samples saved, non-convergent count and batch count. *)
