(** Sign-off style timing reports: endpoint slacks against a clock
    period and PrimeTime-like path listings.

    This is the consumer view of an {!Engine.report}: the calibration
    papers the method builds on ([5], [8]) frame their corrections in
    terms of endpoint slacks, so the library offers the same vocabulary. *)

type endpoint = {
  net : int;
  edge : Provider.edge;
  arrival : float;  (** at the PO tap, final wire included *)
  slack : float;  (** period − arrival; negative = violated *)
}

type t = {
  period : float;
  endpoints : endpoint list;  (** sorted worst-slack first *)
  wns : float;  (** worst negative slack (or worst slack if all met) *)
  tns : float;  (** total negative slack (0 when all met) *)
}

val of_report : period:float -> Engine.report -> t
(** Build the slack view of an analysis. *)

val violations : t -> endpoint list
(** Endpoints with negative slack. *)

val pp : Nsigma_netlist.Netlist.t -> Format.formatter -> t -> unit
(** Human-readable summary: WNS/TNS plus the worst endpoints. *)

(** {2 Statistical endpoints}

    The SSTA counterpart of the scalar view: each endpoint carries its
    full arrival distribution, sign-off slack is taken against the +3σ
    Cornish–Fisher quantile (the paper's calibration target level). *)

type stat_endpoint = {
  s_net : int;
  s_edge : Provider.edge;
  s_dist : Ssta.dist;  (** arrival distribution at the PO tap *)
  s_q3 : float;  (** +3σ arrival quantile *)
  s_slack : float;  (** period − +3σ arrival; negative = violated *)
}

type stat_t = {
  s_period : float;
  s_endpoints : stat_endpoint list;  (** sorted worst-slack first *)
  s_wns : float;  (** worst +3σ slack *)
  s_tns : float;  (** total negative +3σ slack *)
}

val of_ssta : period:float -> Ssta.report -> stat_t
(** Build the statistical slack view of an {!Ssta.analyze} result. *)

val stat_violations : stat_t -> stat_endpoint list
(** Statistical endpoints whose +3σ arrival misses the period. *)

val pp_ssta : Nsigma_netlist.Netlist.t -> Format.formatter -> stat_t -> unit
(** Statistical summary: WNS/TNS at +3σ plus per-endpoint
    μ, σ, γ, κ and ±3σ quantiles for the worst endpoints. *)

val pp_path :
  Nsigma_netlist.Netlist.t -> period:float -> Format.formatter -> Path.t -> unit
(** PrimeTime-flavoured single-path report: per-stage incr/path columns
    and the endpoint slack line. *)

val pp_sampling : Format.formatter -> Path_mc.sampling_info -> unit
(** Two-line summary of how a Monte-Carlo population was produced:
    backend (and adaptive tolerance when enabled), samples drawn vs
    requested, samples saved, non-convergent count and batch count. *)
