(** Generic arrival-propagation core, parameterised over an
    arrival-value algebra.

    One topological walk serves every timing engine: the scalar corner
    engine ({!Engine}) instantiates the algebra with plain floats
    (['d = 'a = float], add = (+.), join = max, key = identity), and the
    statistical engine ({!Ssta}) instantiates it with four-moment
    distributions whose join is a statistical max
    ({!Nsigma_stats.Stat_max}).  The walk itself — unateness, sink/tap
    bookkeeping, predecessor recording, PO wire segments, worst-first
    ordering — is shared, so the two engines agree on circuit structure
    by construction. *)

module Netlist = Nsigma_netlist.Netlist
module Cell = Nsigma_liberty.Cell

type ('d, 'a) algebra = {
  source : 'a;  (** arrival at a primary input (t = 0) *)
  no_delay : 'd;  (** the free wire segment of a PI-driven net *)
  add : 'a -> 'd -> 'a;  (** propagate an arrival through a delay *)
  key : 'a -> float;  (** criticality ranking (scalar: the time itself) *)
  join : 'a -> 'a -> 'a;
      (** merge the accumulated arrival (first) with a new candidate
          (second) at a reconvergent input *)
}
(** The algebra must satisfy: [key (join a b) >= max (key a) (key b)] up
    to the model's approximation, and [join] with a strictly-dominated
    operand should be close to the dominating one.  The scalar instance
    satisfies both exactly. *)

type ('d, 'a) model = {
  m_label : string;
  m_cell_delay :
    Netlist.gate ->
    edge:Provider.edge ->
    in_net:int ->
    in_edge:Provider.edge ->
    input_slew:float ->
    load_cap:float ->
    'd;
  m_cell_out_slew :
    Netlist.gate ->
    edge:Provider.edge ->
    in_net:int ->
    in_edge:Provider.edge ->
    input_slew:float ->
    load_cap:float ->
    float;
  m_wire_delay :
    net:int ->
    driver:Cell.t option ->
    sink:Cell.t option ->
    tree:Nsigma_rcnet.Rctree.t ->
    tap:int ->
    'd;
  m_wire_slew_degrade : wire_delay:'d -> slew_at_root:float -> float;
}
(** A delay model producing ['d]-valued delays — the generic
    counterpart of {!Provider.t}.  The cell hooks additionally see the
    candidate's input net and edge ([in_net]/[in_edge]) so statistical
    providers can propagate per-net slew sensitivities (the cell–wire
    interaction term); scalar providers ignore them. *)

type 'a net_arrival = { value : 'a; slew : float }

type 'd pred = {
  p_gate : int;
  p_in_net : int;
  p_in_edge : Provider.edge;
  p_tap : int;
  p_wire_delay : 'd;
  p_pin_slew : float;
  p_cell_delay : 'd;
  p_load : float;
}
(** The argmax-criticality predecessor recorded at each slot. *)

type ('d, 'a) slot = { arr : 'a net_arrival; pred : 'd pred option }

type ('d, 'a) po_result = {
  po_net : int;
  po_edge : Provider.edge;
  po_tap : int;
  po_wire : 'd;
  po_value : 'a;  (** arrival including the final wire segment *)
}

type ('d, 'a) report = {
  design : Design.t;
  slots : ('d, 'a) slot option array array;  (** [net].[edge index] *)
  pos : ('d, 'a) po_result list;  (** sorted worst-first by [key] *)
}

val edge_index : Provider.edge -> int

val in_edges_for : Cell.kind -> Provider.edge -> Provider.edge list
(** Input-edge candidates that can cause the given output edge:
    XOR-class cells consider both polarities, inverting cells flip. *)

type ('d, 'a) ctx = {
  c_alg : ('d, 'a) algebra;
  c_model : ('d, 'a) model;
  c_tech : Nsigma_process.Technology.t;
  c_design : Design.t;
  c_input_slew : float;
  c_load_model : [ `Total | `Effective ];
  c_sink_index : int array array;
      (** per gate, per pin: position in the input net's fanout list *)
  c_order : int array;  (** {!Netlist.topo_order} of the netlist *)
}
(** Everything the per-gate evaluation step needs, precomputed once.
    The incremental engine ({!Incremental}) retains a ctx across edits
    so that re-evaluating a single gate replays the exact computation
    the full pass would have performed — the foundation of its bitwise
    early-cutoff rule. *)

val make_ctx :
  ?input_slew:float ->
  ?load_model:[ `Total | `Effective ] ->
  ('d, 'a) algebra ->
  ('d, 'a) model ->
  Nsigma_process.Technology.t ->
  Design.t ->
  ('d, 'a) ctx
(** @raise Invalid_argument on a cyclic netlist. *)

val init_sources : ('d, 'a) ctx -> ('d, 'a) slot option array array -> unit
(** Write the primary-input source slots (both edges). *)

val eval_gate : ('d, 'a) ctx -> ('d, 'a) slot option array array -> int -> unit
(** Evaluate one gate from its input slots and write its output net's
    slots — exactly the per-gate step of the full topological pass. *)

val po_results_of :
  ('d, 'a) ctx -> ('d, 'a) slot option array array -> net:int ->
  ('d, 'a) po_result list
(** The PO results of one primary-output net, in the full pass's
    internal cons order — rebuilding the PO list net-by-net in
    [primary_outputs] order and applying {!sort_pos} reproduces
    [analyze]'s [pos] bitwise. *)

val sort_pos : ('d, 'a) algebra -> ('d, 'a) po_result list -> ('d, 'a) po_result list
(** Worst-first ordering by [key] (the full pass's exact sort). *)

val analyze_ctx : ?span:string -> ('d, 'a) ctx -> ('d, 'a) report
(** One topological pass over a prebuilt ctx. *)

val analyze :
  ?span:string ->
  ?input_slew:float ->
  ?load_model:[ `Total | `Effective ] ->
  ('d, 'a) algebra ->
  ('d, 'a) model ->
  Nsigma_process.Technology.t ->
  Design.t ->
  ('d, 'a) report
(** One topological pass.  [span] names the {!Nsigma_obs.Metrics.span}
    wrapping the walk (default ["sta.analyze"]).
    @raise Invalid_argument on a cyclic netlist. *)

val arrival : ('d, 'a) report -> net:int -> edge:Provider.edge -> 'a net_arrival option
val design_of : ('d, 'a) report -> Design.t
val po_arrival : ('d, 'a) report -> net:int -> edge:Provider.edge -> 'a option

val preds_of :
  ('d, 'a) report -> ('d, 'a) po_result -> ('d pred * Provider.edge * int) list
(** Predecessor chain of a PO result, source-first; each element is
    [(pred, out_edge, out_net)] of one hop. *)

val distinct_pos : ('d, 'a) report -> k:int -> ('d, 'a) po_result list
(** Worst PO results keeping only the worst edge per distinct PO net,
    truncated to [k]. *)
