(** Switching arcs: the conducting transistor network of one cell
    transition.

    Cell delay in this library is always the delay of an {e arc} — e.g.
    "NAND2, input A rising, output falling" means the series NMOS stack
    conducts while the parallel PMOS network turns off.  An arc carries
    the series stack (with per-device variation), the parallel-stack
    multiplicity, the opposing network lumped as one device (for
    short-circuit current during slow input ramps), and the intrinsic
    drain capacitance at the output node.

    Stacks use the standard series approximation: internal stack nodes
    stay near the conducting rail, so devices keep full gate drive while
    the drain-source drop divides evenly across the stack; the total
    current is the harmonic combination of per-device currents.  This both divides drive by the
    stack depth and averages per-device mismatch — the √n Pelgrom
    averaging that eq. (5) of the paper builds on. *)

type pull = Pull_up | Pull_down

type t = {
  pull : pull;  (** direction of the {e output} transition *)
  devices : Device.t array;  (** series stack; index 0 at the supply rail *)
  parallel : int;  (** number of identical parallel stacks conducting *)
  switching : int;  (** index in [devices] of the switching transistor *)
  opposing : Device.t option;  (** lumped opposing network *)
  cap_intrinsic : float;  (** drain parasitics at the output (F) *)
}

val make :
  Nsigma_process.Technology.t ->
  Nsigma_process.Variation.t ->
  pull:pull ->
  depth:int ->
  strength:float ->
  ?parallel:int ->
  ?switching:int ->
  ?opposing_width_mult:float ->
  unit ->
  t
(** Build an arc with [depth] series devices of [strength] × unit width
    (stacked cells upsize their devices by the depth, as real libraries
    do, so a NAND2x1 has 2× width NMOS — pass the result through
    [strength]).  [switching] defaults to the rail-side device (index 0).
    [opposing_width_mult] (default 0: no short-circuit path) lumps the
    non-conducting network. *)

val current :
  Nsigma_process.Technology.t -> t -> vin:float -> vout:float -> float
(** Net current (A) moving the output in the arc's direction, given the
    input gate voltage [vin] and output voltage [vout] (both absolute,
    in [0, VDD]).  Short-circuit current of the opposing device is
    subtracted; the result is clamped at 0 (the output never moves
    backwards in this quasi-static model). *)

val input_cap : Nsigma_process.Technology.t -> t -> float
(** Gate capacitance presented to the driving net by the switching
    device (F). *)

type compiled
(** An arc with every bias-independent constant hoisted: device
    prefactors (β·W·I_spec), 1/(2nU_T), the harmonic weight of the
    fully-on stack devices, 1/U_T, 1/V_A.  Both simulation kernels
    ({!Cell_sim.simulate} and {!Cell_sim.simulate_fast}) evaluate their
    inner loops through this closure-free form. *)

val compile : Nsigma_process.Technology.t -> t -> compiled
(** Precompute the arc's constants.  The result is valid as long as the
    arc and technology are unchanged. *)

val compile_into : Nsigma_process.Technology.t -> t -> compiled -> unit
(** Recompute the constants of [arc] into an existing compiled record in
    place (no allocation).  [compile] is allocate-zeros + [compile_into],
    so refilled records are bit-identical to freshly compiled ones. *)

val cap_intrinsic_of : compiled -> float
(** The arc's intrinsic output capacitance (F), carried for callers that
    only hold the compiled form. *)

val drive : compiled -> gate:float -> travel:float -> float
(** Net output current (A) in unified coordinates: [gate] is the
    source-referred drive of the switching device (= vin for a falling
    output, VDD − vin for a rising one) and [travel] the distance the
    output has moved from its starting rail, both in [0, VDD].
    Algebraically equal to {!current} — the per-device saturation/CLM
    terms share one V_DS = (VDD − travel)/depth and factor out of the
    harmonic stack sum — but ~depth× cheaper, and identical for both
    pull directions. *)

val drive_settled : compiled -> travel:float -> float
(** [drive c ~gate:VDD ~travel], with the gate-dependent factors read
    from caches hoisted at compile time.  Bit-identical to [drive] (pure
    common-subexpression elimination); used by the settled phase of the
    sampling kernels, where it saves the two log1p_exp evaluations that
    dominate [drive]'s cost. *)

val set_gate : compiled -> gate:float -> unit
(** Cache the gate-dependent factors (switching-device denominator and
    opposing prefactor) for [gate] into the compiled record, so repeated
    {!drive_gated} calls at the same gate voltage — e.g. the k2/k3 stage
    evaluations of an RK4 step, or a step's endpoint reused as the next
    step's start — skip their recomputation. *)

val drive_gated : compiled -> travel:float -> float
(** [drive c ~gate ~travel] for the gate most recently passed to
    {!set_gate}; bit-identical to [drive] at that gate. *)

val vth_sw_of : compiled -> float
(** Threshold voltage of the switching device (V). *)

val nut_of : compiled -> float
(** n·U_T, the sub-threshold e-fold slope (V). *)

(** {1 Precompiled sampling plans}

    A Monte-Carlo study evaluates thousands of samples of the same arc
    structure; only the per-device Vth/β deltas change.  A [skeleton]
    compiles the variation-independent structure once; {!fill} then
    applies one sample's deltas into the skeleton's preallocated scratch
    (devices + compiled record) without allocating.  [fill] draws from
    the sample in exactly the order {!make} does, and recomputes exactly
    the expressions {!compile} does, so a filled skeleton is bit-identical
    to [make] + [compile] for the same sample. *)

type skeleton
(** Preallocated scratch for one arc: the mutable device array plus its
    compiled form.  NOT thread-safe — each worker domain must own its own
    skeleton (see [Executor.map_scratch]). *)

val skeleton :
  Nsigma_process.Technology.t ->
  pull:pull ->
  depth:int ->
  strength:float ->
  ?parallel:int ->
  ?switching:int ->
  ?opposing_width_mult:float ->
  unit ->
  skeleton
(** Compile the variation-independent structure: same signature and
    validation as {!make} minus the variation sample.  Draws nothing from
    any RNG (safe on worker domains).  Time is recorded under the
    [plan.compile.seconds] timer. *)

val fill : Nsigma_process.Technology.t -> skeleton -> Nsigma_process.Variation.t -> unit
(** Apply one sample's variation into the skeleton in place.  Allocation-
    free on the hot path; time under [plan.fill.seconds], count under
    [plan.fills]. *)

val skeleton_arc : skeleton -> t
(** The skeleton's arc view (valid for the most recent {!fill}); lets the
    RK4 wire co-simulation ({!Rc_sim.simulate}) reuse plan scratch. *)

val skeleton_compiled : skeleton -> compiled
(** The skeleton's compiled view (valid for the most recent {!fill}). *)

val skeleton_local_dim : skeleton -> int
(** Number of local (within-die) standard-normal deviates one {!fill}
    consumes: two per stack device plus two for the opposing device when
    present, in exactly that order.  Together with
    [Variation.global_deviate_dim] this fixes the deviate-vector
    dimension a [Sampler] stream must produce per sample. *)

(** {1 Structure-of-arrays batch view}

    The batched fast kernel ({!Cell_sim.Batch}) evaluates N samples per
    stage instead of N stages per sample.  A [Batch.t] holds the
    compiled constants of up to [capacity] samples column-wise — one
    unboxed [float array] per constant — so the fused stage loops stream
    through contiguous memory.  The indexed drive kernels replicate the
    scalar {!drive}/{!drive_settled} bodies expression-for-expression:
    evaluating slot [i] is bit-identical to evaluating the [compiled]
    record it was {!Batch.load}ed from.  The [_approx] variants swap the
    libm transcendentals for {!Nsigma_stats.Fastmath}'s polynomial
    kernels (relative error ≤ 1e-7) and are only reachable through the
    opt-in [--no-bit-identical] mode. *)

module Batch : sig
  type batch
  (** Column-wise constants of a population of compiled arcs.  Plain
      mutable arrays — not thread-safe; each worker domain owns its own
      batch (see [Executor.map_ranges]). *)

  val create : int -> batch
  (** [create capacity] allocates a batch of [capacity] slots.
      @raise Invalid_argument if [capacity <= 0]. *)

  val capacity : batch -> int

  val load : batch -> int -> compiled -> unit
  (** [load b i c] snapshots the current constants of [c] into slot [i];
      [c] may be refilled for the next sample afterwards. *)

  val cap_intrinsic : batch -> int -> float
  val nut : batch -> int -> float
  val vth_sw : batch -> int -> float

  val drive : batch -> int -> gate:float -> travel:float -> float
  (** {!Arc.drive} on slot [i]; bit-identical to the scalar kernel. *)

  val drive_settled : batch -> int -> travel:float -> float
  (** {!Arc.drive_settled} on slot [i]; bit-identical. *)

  val drive_approx : batch -> int -> gate:float -> travel:float -> float
  (** {!drive} with polynomial transcendentals (≤1e-7 relative error). *)

  val drive_settled_approx : batch -> int -> travel:float -> float
  (** {!drive_settled} with polynomial transcendentals. *)
end
