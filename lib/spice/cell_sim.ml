module Technology = Nsigma_process.Technology
module Log = Nsigma_obs.Log
module Metrics = Nsigma_obs.Metrics

(* Kernel telemetry.  Registered at module init so run reports always
   carry these keys; recording is a no-op while metrics are disabled
   and never touches sampled values. *)
let m_rk4_calls = Metrics.counter "kernel.rk4.calls"
let m_rk4_steps = Metrics.counter "kernel.rk4.steps"
let m_fast_calls = Metrics.counter "kernel.fast.calls"
let m_fast_ramp_limited = Metrics.counter "kernel.fast.ramp_limited"
let m_fast_failed = Metrics.counter "kernel.fast.failed"
let m_auto_calls = Metrics.counter "kernel.auto.calls"
let m_auto_fallback = Metrics.counter "kernel.auto.fallback"
let m_stuck = Metrics.counter "kernel.stuck"

(* The three rare kernel events also land on the trace as instants, so
   a fallback or stuck transient is attributable to the exact task and
   moment it happened.  Per-call spans would blow the tracing overhead
   budget (millions of kernel calls per run); rare events cost nothing
   when they don't fire. *)
module Trace = Nsigma_obs.Trace

let tr_stuck = Trace.instant_type ~cat:"kernel" "kernel.stuck"
let tr_fast_failed = Trace.instant_type ~cat:"kernel" "kernel.fast.failed"
let tr_auto_fallback = Trace.instant_type ~cat:"kernel" "kernel.auto.fallback"

let note_stuck () =
  Metrics.incr m_stuck;
  if Trace.enabled () then Trace.instant tr_stuck ()

let note_fast_failed () =
  Metrics.incr m_fast_failed;
  if Trace.enabled () then Trace.instant tr_fast_failed ()

let note_auto_fallback () =
  Metrics.incr m_auto_fallback;
  if Trace.enabled () then Trace.instant tr_auto_fallback ()

type result = { delay : float; output_slew : float }

type kernel = Fast | Rk4 | Auto

let kernel_name = function Fast -> "fast" | Rk4 -> "rk4" | Auto -> "auto"

let kernel_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fast" -> Fast
  | "rk4" -> Rk4
  | "auto" -> Auto
  | other ->
    failwith
      (Printf.sprintf
         "unknown simulation kernel %S (expected \"fast\", \"rk4\" or \"auto\")"
         other)

let default_kernel () =
  match Sys.getenv_opt "NSIGMA_KERNEL" with
  | None -> Fast
  | Some s when String.trim s = "" -> Fast
  | Some s -> kernel_of_string s

(* Cubic-Hermite time at which the trajectory crosses [level] inside one
   integration step: both endpoint values and endpoint slopes of the step
   are known, so the dense output is third-order accurate — the crossing
   does not limit the step size.  Solved by bisection in the step-local
   coordinate (the bracket is guaranteed: u0 < level <= u1). *)
let hermite_crossing ~t0 ~dt ~u0 ~u1 ~f0 ~f1 level =
  if u1 <= u0 then t0 +. dt
  else begin
    let d0 = dt *. f0 and d1 = dt *. f1 in
    let value s =
      let s2 = s *. s in
      let s3 = s2 *. s in
      (((2.0 *. s3) -. (3.0 *. s2) +. 1.0) *. u0)
      +. ((s3 -. (2.0 *. s2) +. s) *. d0)
      +. (((-2.0 *. s3) +. (3.0 *. s2)) *. u1)
      +. ((s3 -. s2) *. d1)
    in
    let lo = ref 0.0 and hi = ref 1.0 in
    for _ = 1 to 30 do
      let mid = 0.5 *. (!lo +. !hi) in
      if value mid < level then lo := mid else hi := mid
    done;
    t0 +. (0.5 *. (!lo +. !hi) *. dt)
  end

(* ----- reference kernel: adaptive RK4 ----- *)

let simulate ?(steps_per_phase = 16) tech arc ~input_slew ~load_cap =
  if input_slew <= 0.0 then invalid_arg "Cell_sim.simulate: slew must be positive";
  if load_cap < 0.0 then invalid_arg "Cell_sim.simulate: negative load";
  let vdd = tech.Technology.vdd_nominal in
  let cap = load_cap +. arc.Arc.cap_intrinsic in
  let inv_cap = 1.0 /. cap in
  let c = Arc.compile tech arc in
  let inv_tau = 1.0 /. input_slew in
  (* Unified coordinates: the switching device's gate drive ramps 0 → vdd
     for either pull direction, and u is the distance the output has
     travelled from its starting rail (see {!Arc.drive}). *)
  let dudt t u =
    let gate = if t >= input_slew then vdd else vdd *. t *. inv_tau in
    Arc.drive c ~gate ~travel:u *. inv_cap
  in
  let spp = float_of_int steps_per_phase in
  (* Ramp-phase step: resolve both the input ramp and the output time
     scale (estimated from the fully-on current at half swing), exactly
     as the reference has always done — the ramp window is where the
     input/output interaction lives, so it keeps fixed resolution. *)
  let i_half = Arc.drive c ~gate:vdd ~travel:(vdd /. 2.0) in
  let t_out = cap *. vdd /. Float.max i_half 1e-12 in
  let dt_ramp = Float.min (input_slew /. spp) (t_out /. spp) in
  let du_step = vdd /. spp in
  let max_steps = 400 * steps_per_phase in
  let t50_in = input_slew /. 2.0 in
  let lvl20 = 0.2 *. vdd and lvl50 = 0.5 *. vdd and lvl80 = 0.8 *. vdd in
  let t20 = ref nan and t50 = ref nan and t80 = ref nan in
  let t = ref 0.0 and u = ref 0.0 in
  let steps = ref 0 in
  (* Non-convergence keeps its operating point in the exception (callers
     and tests rely on the message) and additionally surfaces through
     the logger and the [kernel.stuck] counter, so a Monte-Carlo sweep
     can account for stuck corners without catching anything. *)
  let stuck () =
    note_stuck ();
    Log.debug "rk4 output stuck%s"
      (Log.kv
         [
           ("swing_pct", Printf.sprintf "%.1f" (100.0 *. !u /. vdd));
           ("steps", string_of_int !steps);
           ("input_slew", Printf.sprintf "%.3g" input_slew);
           ("load_cap", Printf.sprintf "%.3g" load_cap);
         ]);
    failwith
      (Printf.sprintf
         "Cell_sim.simulate: output stuck at %.1f%% of swing after %d RK4 \
          steps (input_slew=%.3g s, load_cap=%.3g F)"
         (100.0 *. !u /. vdd) !steps input_slew load_cap)
  in
  Metrics.incr m_rk4_calls;
  (* The 20%-travel level is crossed last; the loop exits as soon as it is
     recorded (the remaining exponential tail to the far rail is never
     integrated). *)
  while Float.is_nan !t20 do
    if !steps >= max_steps then stuck ();
    incr steps;
    let t0 = !t and u0 = !u in
    let k1 = dudt t0 u0 in
    let dt =
      if t0 < input_slew then dt_ramp
      else if k1 > 0.0 then
        (* Input settled: step by travel at the instantaneous rate.  The
           post-ramp current is a decreasing function of u alone, so this
           never overshoots the du budget. *)
        du_step /. k1
      else
        (* Zero net current with the input settled can never recover
           (the current only falls with travel): fail now instead of
           spinning to the step budget. *)
        stuck ()
    in
    let h = dt /. 2.0 in
    let k2 = dudt (t0 +. h) (u0 +. (h *. k1)) in
    let k3 = dudt (t0 +. h) (u0 +. (h *. k2)) in
    let k4 = dudt (t0 +. dt) (u0 +. (dt *. k3)) in
    let u1 =
      Float.min vdd
        (u0 +. (dt /. 6.0 *. (k1 +. (2.0 *. k2) +. (2.0 *. k3) +. k4)))
    in
    let t1 = t0 +. dt in
    let record cell level =
      if Float.is_nan !cell && u0 < level && u1 >= level then
        cell := hermite_crossing ~t0 ~dt ~u0 ~u1 ~f0:k1 ~f1:k4 level
    in
    (* u counts distance from the starting rail, so 20% travelled is the
       80% voltage point on a falling edge; record in travel terms. *)
    record t80 lvl20;
    record t50 lvl50;
    record t20 lvl80;
    t := t1;
    u := u1
  done;
  Metrics.incr m_rk4_steps ~by:!steps;
  { delay = !t50 -. t50_in; output_slew = (!t20 -. !t80) /. 0.6 }

(* ----- fast kernel: analytic effective current ----- *)

(* 3-point Gauss–Legendre nodes and weights on [0, 1]. *)
let gl_x = [| 0.1127016653792583; 0.5; 0.8872983346207417 |]
let gl_w = [| 0.2777777777777778; 0.4444444444444444; 0.2777777777777778 |]

(* The fast path splits the transition into three analytically different
   regimes and spends O(10) current evaluations in total:

   1. Dead zone — while the gate drive is more than ~6nU_T below
      threshold the current is e-fold suppressed every nU_T, so the
      output provably has not moved: skip to t_start = τ·g_on/VDD in
      closed form, charging the node by the subthreshold leak
      I(g_on)·nU_T·τ/VDD (the integral of an exponential in the gate
      drive).

   2. Ramp-active window — from g_on to the end of the ramp the current
      depends on both t and u; a handful of Heun (trapezoidal) steps
      bounded in gate advance (≈ (VDD − g_on)/10) and in travel
      (≤ 8% of swing) integrate it, with cubic-Hermite crossing times.

   3. Settled input — du/dt = I(VDD, u)/C is separable, so each
      remaining threshold crossing is the exact quadrature
      Δt = C·∫ du/I(u), evaluated per segment with 3-point
      Gauss–Legendre.  This is the "effective current" in its exact
      form: 1/I averaged over the travel segment. *)
let simulate_fast_ext tech arc ~input_slew ~load_cap =
  if input_slew <= 0.0 then
    invalid_arg "Cell_sim.simulate_fast: slew must be positive";
  if load_cap < 0.0 then invalid_arg "Cell_sim.simulate_fast: negative load";
  Metrics.incr m_fast_calls;
  let vdd = tech.Technology.vdd_nominal in
  let cap = load_cap +. arc.Arc.cap_intrinsic in
  let inv_cap = 1.0 /. cap in
  let c = Arc.compile tech arc in
  let tau = input_slew in
  let nut = tech.Technology.subthreshold_n *. Technology.thermal_voltage tech in
  let vth = arc.Arc.devices.(arc.Arc.switching).Device.vth in
  let lvls = [| 0.2 *. vdd; 0.5 *. vdd; 0.8 *. vdd |] in
  let times = [| nan; nan; nan |] in
  (* 1. dead zone *)
  let g_on = Float.min vdd (Float.max 0.0 (vth -. (6.0 *. nut))) in
  let t_start = tau *. (g_on /. vdd) in
  let u_start =
    if t_start <= 0.0 then 0.0
    else
      Float.min (0.15 *. vdd)
        (Arc.drive c ~gate:g_on ~travel:0.0 *. nut *. (tau /. vdd) *. inv_cap)
  in
  let t = ref t_start and u = ref u_start in
  let next = ref 0 in
  let ramp_limited = ref false in
  (* 2. ramp-active window *)
  let dt_gate = (tau -. t_start) /. 9.0 in
  let du_max = 0.09 *. vdd in
  let guard = ref 0 in
  while !t < tau && !next < 3 && !guard < 64 do
    incr guard;
    let f0 = Arc.drive c ~gate:(vdd *. (!t /. tau)) ~travel:!u *. inv_cap in
    let dt0 = if f0 *. dt_gate > du_max then du_max /. f0 else dt_gate in
    let dt = Float.min dt0 (tau -. !t) in
    let t1 = !t +. dt in
    let g1 = vdd *. Float.min 1.0 (t1 /. tau) in
    let u_pred = Float.min vdd (!u +. (dt *. f0)) in
    let f1 = Arc.drive c ~gate:g1 ~travel:u_pred *. inv_cap in
    let u1 = Float.min vdd (!u +. (dt *. 0.5 *. (f0 +. f1))) in
    while !next < 3 && u1 >= lvls.(!next) do
      times.(!next) <- hermite_crossing ~t0:!t ~dt ~u0:!u ~u1 ~f0 ~f1 lvls.(!next);
      if !next = 1 then ramp_limited := true;
      incr next
    done;
    t := t1;
    u := u1
  done;
  if !next < 3 && !t < tau then begin
    note_fast_failed ();
    Log.debug "fast ramp stepping did not converge%s"
      (Log.kv
         [
           ("steps", string_of_int !guard);
           ("input_slew", Printf.sprintf "%.3g" input_slew);
           ("load_cap", Printf.sprintf "%.3g" load_cap);
         ]);
    failwith
      (Printf.sprintf
         "Cell_sim.simulate_fast: ramp stepping did not converge after %d \
          steps (input_slew=%.3g s, load_cap=%.3g F)"
         !guard input_slew load_cap)
  end;
  (* 3. settled input: exact segment quadrature *)
  if !next < 3 then begin
    let a = ref !u in
    while !next < 3 do
      let b = lvls.(!next) in
      let width = b -. !a in
      if width > 0.0 then begin
        let s = ref 0.0 in
        for i = 0 to 2 do
          let ui = !a +. (width *. gl_x.(i)) in
          let ii = Arc.drive c ~gate:vdd ~travel:ui in
          if ii <= 0.0 then begin
            note_fast_failed ();
            Log.debug "fast settled phase cannot reach %.1f%% of swing%s"
              (100.0 *. ui /. vdd)
              (Log.kv
                 [
                   ("input_slew", Printf.sprintf "%.3g" input_slew);
                   ("load_cap", Printf.sprintf "%.3g" load_cap);
                 ]);
            failwith
              (Printf.sprintf
                 "Cell_sim.simulate_fast: arc cannot drive the output past \
                  %.1f%% of swing (input_slew=%.3g s, load_cap=%.3g F)"
                 (100.0 *. ui /. vdd) input_slew load_cap)
          end;
          s := !s +. (gl_w.(i) /. ii)
        done;
        t := !t +. (cap *. width *. !s)
      end;
      times.(!next) <- !t;
      a := b;
      incr next
    done
  end;
  if !ramp_limited then Metrics.incr m_fast_ramp_limited;
  ( {
      delay = times.(1) -. (tau /. 2.0);
      output_slew = (times.(2) -. times.(0)) /. 0.6;
    },
    !ramp_limited )

let simulate_fast tech arc ~input_slew ~load_cap =
  fst (simulate_fast_ext tech arc ~input_slew ~load_cap)

let run ?kernel tech arc ~input_slew ~load_cap =
  let kernel = match kernel with Some k -> k | None -> default_kernel () in
  match kernel with
  | Rk4 -> simulate tech arc ~input_slew ~load_cap
  | Fast -> simulate_fast tech arc ~input_slew ~load_cap
  | Auto -> (
    (* The fast path's separable-quadrature step assumes the 50% crossing
       happens after the input settles; when the transition is
       ramp-limited (or the fast path fails outright) fall back to the
       RK4 reference. *)
    Metrics.incr m_auto_calls;
    match simulate_fast_ext tech arc ~input_slew ~load_cap with
    | r, false -> r
    | _, true ->
      note_auto_fallback ();
      simulate tech arc ~input_slew ~load_cap
    | exception Failure _ ->
      note_auto_fallback ();
      simulate tech arc ~input_slew ~load_cap)

let nominal_delay ?kernel tech arc ~input_slew ~load_cap =
  (run ?kernel tech arc ~input_slew ~load_cap).delay

(* ----- compiled-arc sampling kernels (plan layer) -----

   The same measurements as [simulate]/[simulate_fast], taking the arc in
   its precompiled form so a Monte-Carlo plan can refresh one scratch per
   sample ({!Arc.fill}) and skip per-sample construction.  The loops are
   restructured for speed — the full-drive and per-gate invariants are
   hoisted through [Arc.drive_settled] / [Arc.set_gate]+[Arc.drive_gated]
   (during the ramp a step's endpoint gate is the next step's start, so
   each RK4 step prepares only two new gate voltages instead of
   re-deriving four), and all loop state lives in one flat all-float
   record instead of boxed refs — but every floating-point expression on
   the value path keeps the reference kernels' exact operation order and
   grouping, so results are bit-identical (asserted by test_plan). *)

type sim_scratch = {
  mutable s_t : float;
  mutable s_u : float;
  mutable s_t20 : float;
  mutable s_t50 : float;
  mutable s_t80 : float;
  mutable s_prep : float;  (* time whose gate factors [Arc.set_gate] cached *)
  mutable s_lo : float;  (* bisection bracket for crossing search *)
  mutable s_hi : float;
}

(* [hermite_crossing] with the bracket kept in the scratch record; the
   polynomial is evaluated with the identical expression. *)
let hermite_crossing_st st ~t0 ~dt ~u0 ~u1 ~f0 ~f1 level =
  if u1 <= u0 then t0 +. dt
  else begin
    let d0 = dt *. f0 and d1 = dt *. f1 in
    st.s_lo <- 0.0;
    st.s_hi <- 1.0;
    for _ = 1 to 30 do
      let s = 0.5 *. (st.s_lo +. st.s_hi) in
      let s2 = s *. s in
      let s3 = s2 *. s in
      let v =
        (((2.0 *. s3) -. (3.0 *. s2) +. 1.0) *. u0)
        +. ((s3 -. (2.0 *. s2) +. s) *. d0)
        +. (((-2.0 *. s3) +. (3.0 *. s2)) *. u1)
        +. ((s3 -. s2) *. d1)
      in
      if v < level then st.s_lo <- s else st.s_hi <- s
    done;
    t0 +. (0.5 *. (st.s_lo +. st.s_hi) *. dt)
  end

let fresh_scratch () =
  {
    s_t = 0.0;
    s_u = 0.0;
    s_t20 = nan;
    s_t50 = nan;
    s_t80 = nan;
    s_prep = nan;
    s_lo = 0.0;
    s_hi = 1.0;
  }

let simulate_compiled ?(steps_per_phase = 16) tech c ~input_slew ~load_cap =
  if input_slew <= 0.0 then invalid_arg "Cell_sim.simulate: slew must be positive";
  if load_cap < 0.0 then invalid_arg "Cell_sim.simulate: negative load";
  let vdd = tech.Technology.vdd_nominal in
  let cap = load_cap +. Arc.cap_intrinsic_of c in
  let inv_cap = 1.0 /. cap in
  let inv_tau = 1.0 /. input_slew in
  let spp = float_of_int steps_per_phase in
  let i_half = Arc.drive_settled c ~travel:(vdd /. 2.0) in
  let t_out = cap *. vdd /. Float.max i_half 1e-12 in
  let dt_ramp = Float.min (input_slew /. spp) (t_out /. spp) in
  let du_step = vdd /. spp in
  let max_steps = 400 * steps_per_phase in
  let t50_in = input_slew /. 2.0 in
  let lvl20 = 0.2 *. vdd and lvl50 = 0.5 *. vdd and lvl80 = 0.8 *. vdd in
  let st = fresh_scratch () in
  let steps = ref 0 in
  let stuck () =
    note_stuck ();
    Log.debug "rk4 output stuck%s"
      (Log.kv
         [
           ("swing_pct", Printf.sprintf "%.1f" (100.0 *. st.s_u /. vdd));
           ("steps", string_of_int !steps);
           ("input_slew", Printf.sprintf "%.3g" input_slew);
           ("load_cap", Printf.sprintf "%.3g" load_cap);
         ]);
    failwith
      (Printf.sprintf
         "Cell_sim.simulate: output stuck at %.1f%% of swing after %d RK4 \
          steps (input_slew=%.3g s, load_cap=%.3g F)"
         (100.0 *. st.s_u /. vdd) !steps input_slew load_cap)
  in
  Metrics.incr m_rk4_calls;
  (* du/dt at (t, u): the settled gate reads the compile-time caches; a
     ramp gate is prepared once per distinct time point (k2/k3 share one,
     and a step's endpoint is reused as the next step's start). *)
  let[@inline] eval t u =
    if t >= input_slew then Arc.drive_settled c ~travel:u *. inv_cap
    else begin
      if t <> st.s_prep then begin
        Arc.set_gate c ~gate:(vdd *. t *. inv_tau);
        st.s_prep <- t
      end;
      Arc.drive_gated c ~travel:u *. inv_cap
    end
  in
  while Float.is_nan st.s_t20 do
    if !steps >= max_steps then stuck ();
    incr steps;
    let t0 = st.s_t and u0 = st.s_u in
    let k1 = eval t0 u0 in
    let dt =
      if t0 < input_slew then dt_ramp
      else if k1 > 0.0 then du_step /. k1
      else stuck ()
    in
    let h = dt /. 2.0 in
    let th = t0 +. h in
    let k2 = eval th (u0 +. (h *. k1)) in
    let k3 = eval th (u0 +. (h *. k2)) in
    let t1 = t0 +. dt in
    let k4 = eval t1 (u0 +. (dt *. k3)) in
    let u1 =
      Float.min vdd
        (u0 +. (dt /. 6.0 *. (k1 +. (2.0 *. k2) +. (2.0 *. k3) +. k4)))
    in
    if Float.is_nan st.s_t80 && u0 < lvl20 && u1 >= lvl20 then
      st.s_t80 <- hermite_crossing_st st ~t0 ~dt ~u0 ~u1 ~f0:k1 ~f1:k4 lvl20;
    if Float.is_nan st.s_t50 && u0 < lvl50 && u1 >= lvl50 then
      st.s_t50 <- hermite_crossing_st st ~t0 ~dt ~u0 ~u1 ~f0:k1 ~f1:k4 lvl50;
    if Float.is_nan st.s_t20 && u0 < lvl80 && u1 >= lvl80 then
      st.s_t20 <- hermite_crossing_st st ~t0 ~dt ~u0 ~u1 ~f0:k1 ~f1:k4 lvl80;
    st.s_t <- t1;
    st.s_u <- u1
  done;
  Metrics.incr m_rk4_steps ~by:!steps;
  { delay = st.s_t50 -. t50_in; output_slew = (st.s_t20 -. st.s_t80) /. 0.6 }

let simulate_fast_ext_compiled tech c ~input_slew ~load_cap =
  if input_slew <= 0.0 then
    invalid_arg "Cell_sim.simulate_fast: slew must be positive";
  if load_cap < 0.0 then invalid_arg "Cell_sim.simulate_fast: negative load";
  Metrics.incr m_fast_calls;
  let vdd = tech.Technology.vdd_nominal in
  let cap = load_cap +. Arc.cap_intrinsic_of c in
  let inv_cap = 1.0 /. cap in
  let tau = input_slew in
  let nut = Arc.nut_of c in
  let vth = Arc.vth_sw_of c in
  let lvls = [| 0.2 *. vdd; 0.5 *. vdd; 0.8 *. vdd |] in
  let times = [| nan; nan; nan |] in
  let st = fresh_scratch () in
  (* 1. dead zone *)
  let g_on = Float.min vdd (Float.max 0.0 (vth -. (6.0 *. nut))) in
  let t_start = tau *. (g_on /. vdd) in
  let u_start =
    if t_start <= 0.0 then 0.0
    else
      Float.min (0.15 *. vdd)
        (Arc.drive c ~gate:g_on ~travel:0.0 *. nut *. (tau /. vdd) *. inv_cap)
  in
  st.s_t <- t_start;
  st.s_u <- u_start;
  let next = ref 0 in
  let ramp_limited = ref false in
  (* 2. ramp-active window *)
  let dt_gate = (tau -. t_start) /. 9.0 in
  let du_max = 0.09 *. vdd in
  let guard = ref 0 in
  while st.s_t < tau && !next < 3 && !guard < 64 do
    incr guard;
    let f0 = Arc.drive c ~gate:(vdd *. (st.s_t /. tau)) ~travel:st.s_u *. inv_cap in
    let dt0 = if f0 *. dt_gate > du_max then du_max /. f0 else dt_gate in
    let dt = Float.min dt0 (tau -. st.s_t) in
    let t1 = st.s_t +. dt in
    let g1 = vdd *. Float.min 1.0 (t1 /. tau) in
    let u_pred = Float.min vdd (st.s_u +. (dt *. f0)) in
    let f1 = Arc.drive c ~gate:g1 ~travel:u_pred *. inv_cap in
    let u1 = Float.min vdd (st.s_u +. (dt *. 0.5 *. (f0 +. f1))) in
    while !next < 3 && u1 >= lvls.(!next) do
      times.(!next) <-
        hermite_crossing_st st ~t0:st.s_t ~dt ~u0:st.s_u ~u1 ~f0 ~f1 lvls.(!next);
      if !next = 1 then ramp_limited := true;
      incr next
    done;
    st.s_t <- t1;
    st.s_u <- u1
  done;
  if !next < 3 && st.s_t < tau then begin
    note_fast_failed ();
    Log.debug "fast ramp stepping did not converge%s"
      (Log.kv
         [
           ("steps", string_of_int !guard);
           ("input_slew", Printf.sprintf "%.3g" input_slew);
           ("load_cap", Printf.sprintf "%.3g" load_cap);
         ]);
    failwith
      (Printf.sprintf
         "Cell_sim.simulate_fast: ramp stepping did not converge after %d \
          steps (input_slew=%.3g s, load_cap=%.3g F)"
         !guard input_slew load_cap)
  end;
  (* 3. settled input: exact segment quadrature *)
  if !next < 3 then begin
    let a = ref st.s_u in
    while !next < 3 do
      let b = lvls.(!next) in
      let width = b -. !a in
      if width > 0.0 then begin
        let s = ref 0.0 in
        for i = 0 to 2 do
          let ui = !a +. (width *. gl_x.(i)) in
          let ii = Arc.drive_settled c ~travel:ui in
          if ii <= 0.0 then begin
            note_fast_failed ();
            Log.debug "fast settled phase cannot reach %.1f%% of swing%s"
              (100.0 *. ui /. vdd)
              (Log.kv
                 [
                   ("input_slew", Printf.sprintf "%.3g" input_slew);
                   ("load_cap", Printf.sprintf "%.3g" load_cap);
                 ]);
            failwith
              (Printf.sprintf
                 "Cell_sim.simulate_fast: arc cannot drive the output past \
                  %.1f%% of swing (input_slew=%.3g s, load_cap=%.3g F)"
                 (100.0 *. ui /. vdd) input_slew load_cap)
          end;
          s := !s +. (gl_w.(i) /. ii)
        done;
        st.s_t <- st.s_t +. (cap *. width *. !s)
      end;
      times.(!next) <- st.s_t;
      a := b;
      incr next
    done
  end;
  if !ramp_limited then Metrics.incr m_fast_ramp_limited;
  ( {
      delay = times.(1) -. (tau /. 2.0);
      output_slew = (times.(2) -. times.(0)) /. 0.6;
    },
    !ramp_limited )

(* ----- batched fast kernel (SoA layer) -----

   [simulate_fast_ext_compiled] restructured sample-major → stage-major:
   a batch holds N samples' compiled constants column-wise
   ({!Arc.Batch}) and the three phases run as fused loops over the whole
   population — one pass for the dead-zone skip, lockstep Heun rounds
   over a compacting active-index list for the ramp window, one pass for
   the settled-phase quadrature.  Interchanging the loops does not touch
   any sample's floating-point operation sequence: with the exact drive
   kernels every per-sample value path is the scalar kernel's
   expression-for-expression, so the batch is bit-identical to the
   per-sample loop (asserted by test_batch).  The one deliberate
   divergence is [~approx:true], which swaps the libm transcendentals
   for [Fastmath]'s polynomial kernels (≤1e-7 relative error) — that is
   what the opt-in --no-bit-identical mode enables.

   The ramp runs in lockstep rounds: every active sample takes exactly
   one Heun step per round, so the round index equals each sample's
   scalar [guard] counter and the 64-round bound reproduces the scalar
   guard exactly.  Failures (ramp non-convergence, a non-driving settled
   segment) mark the slot NaN instead of raising — the per-sample
   planned loop maps [Failure] to NaN, so populations still match —
   while keeping the same [kernel.fast.failed] accounting and debug
   logs. *)

let[@inline always] bdrive ~approx arcs i ~gate ~travel =
  if approx then Arc.Batch.drive_approx arcs i ~gate ~travel
  else Arc.Batch.drive arcs i ~gate ~travel

let[@inline always] bdrive_settled ~approx arcs i ~travel =
  if approx then Arc.Batch.drive_settled_approx arcs i ~travel
  else Arc.Batch.drive_settled arcs i ~travel

module Batch = struct
  type t = {
    arcs : Arc.Batch.batch;
    tau : float array;  (* per-slot input slew *)
    load : float array;  (* per-slot load cap (for diagnostics) *)
    cap : float array;
    inv_cap : float array;
    bt : float array;  (* integration time *)
    bu : float array;  (* output travel *)
    (* Per-round stage columns, indexed by position in [active] (not by
       slot): splitting each Heun round into four short passes keeps
       every pass's loop body small enough that the out-of-order window
       spans several samples, so the transcendental latency chains of
       independent samples overlap instead of serialising.  Per-sample
       arithmetic is unchanged — only the interleaving across samples
       moves, which cannot perturb a bit of any one sample's result. *)
    bf0 : float array;  (* predictor slope f0/cap *)
    bf1 : float array;  (* corrector slope f1/cap *)
    bdt : float array;  (* accepted step *)
    bg1 : float array;  (* gate voltage at t1 *)
    bup : float array;  (* predictor travel *)
    dt_gate : float array;
    times : float array;  (* crossing times, 3 per slot *)
    next : int array;  (* per-slot next threshold index *)
    ramp_limited : bool array;
    failed : bool array;
    active : int array;  (* compacting index list for the ramp rounds *)
    delays : float array;
    slews : float array;
    st : sim_scratch;  (* shared crossing-bisection bracket *)
    capacity : int;
  }

  let create capacity =
    if capacity <= 0 then
      invalid_arg "Cell_sim.Batch.create: capacity must be positive";
    {
      arcs = Arc.Batch.create capacity;
      tau = Array.make capacity 0.0;
      load = Array.make capacity 0.0;
      cap = Array.make capacity 0.0;
      inv_cap = Array.make capacity 0.0;
      bt = Array.make capacity 0.0;
      bu = Array.make capacity 0.0;
      bf0 = Array.make capacity 0.0;
      bf1 = Array.make capacity 0.0;
      bdt = Array.make capacity 0.0;
      bg1 = Array.make capacity 0.0;
      bup = Array.make capacity 0.0;
      dt_gate = Array.make capacity 0.0;
      times = Array.make (3 * capacity) nan;
      next = Array.make capacity 0;
      ramp_limited = Array.make capacity false;
      failed = Array.make capacity false;
      active = Array.make capacity 0;
      delays = Array.make capacity Float.nan;
      slews = Array.make capacity Float.nan;
      st = fresh_scratch ();
      capacity;
    }

  let capacity b = b.capacity

  let load b i c ~input_slew ~load_cap =
    if input_slew <= 0.0 then
      invalid_arg "Cell_sim.simulate_fast: slew must be positive";
    if load_cap < 0.0 then invalid_arg "Cell_sim.simulate_fast: negative load";
    Arc.Batch.load b.arcs i c;
    Array.unsafe_set b.tau i input_slew;
    Array.unsafe_set b.load i load_cap

  let[@inline] delay b i = (Array.unsafe_get b.delays (i))
  let[@inline] output_slew b i = (Array.unsafe_get b.slews (i))
  let[@inline] failed b i = (Array.unsafe_get b.failed (i))

  let eval ?(approx = false) tech b ~n =
    if n < 0 || n > b.capacity then
      invalid_arg "Cell_sim.Batch.eval: sample count out of range";
    Metrics.incr m_fast_calls ~by:n;
    let vdd = tech.Technology.vdd_nominal in
    let lvls = [| 0.2 *. vdd; 0.5 *. vdd; 0.8 *. vdd |] in
    let du_max = 0.09 *. vdd in
    let arcs = b.arcs in
    (* 1. per-slot constants + dead-zone skip, one fused pass *)
    for i = 0 to n - 1 do
      let cap = (Array.unsafe_get b.load (i)) +. Arc.Batch.cap_intrinsic arcs i in
      Array.unsafe_set b.cap (i) cap;
      Array.unsafe_set b.inv_cap (i) (1.0 /. cap);
      Array.unsafe_set b.times (3 * i) nan;
      Array.unsafe_set b.times ((3 * i) + 1) nan;
      Array.unsafe_set b.times ((3 * i) + 2) nan;
      Array.unsafe_set b.next (i) 0;
      Array.unsafe_set b.ramp_limited (i) false;
      Array.unsafe_set b.failed (i) false;
      let tau = (Array.unsafe_get b.tau (i)) in
      let nut = Arc.Batch.nut arcs i in
      let vth = Arc.Batch.vth_sw arcs i in
      let g_on = Float.min vdd (Float.max 0.0 (vth -. (6.0 *. nut))) in
      let t_start = tau *. (g_on /. vdd) in
      let u_start =
        if t_start <= 0.0 then 0.0
        else
          Float.min (0.15 *. vdd)
            (bdrive ~approx arcs i ~gate:g_on ~travel:0.0
            *. nut *. (tau /. vdd) *. (Array.unsafe_get b.inv_cap (i)))
      in
      Array.unsafe_set b.bt (i) t_start;
      Array.unsafe_set b.bu (i) u_start;
      Array.unsafe_set b.dt_gate (i) ((tau -. t_start) /. 9.0)
    done;
    (* 2. ramp window: lockstep Heun rounds over the active samples *)
    let n_active = ref 0 in
    for i = 0 to n - 1 do
      if (Array.unsafe_get b.bt (i)) < (Array.unsafe_get b.tau (i)) then begin
        Array.unsafe_set b.active (!n_active) i;
        incr n_active
      end
    done;
    let round = ref 0 in
    while !n_active > 0 && !round < 64 do
      incr round;
      let m = !n_active in
      (* Stage A: predictor slope.  The drive evaluations of different
         samples are independent, so this short loop lets their
         transcendental chains pipeline. *)
      for k = 0 to m - 1 do
        let i = (Array.unsafe_get b.active (k)) in
        Array.unsafe_set b.bf0 k
          (bdrive ~approx arcs i
             ~gate:(vdd *. (Array.unsafe_get b.bt i /. Array.unsafe_get b.tau i))
             ~travel:(Array.unsafe_get b.bu i)
          *. Array.unsafe_get b.inv_cap i)
      done;
      (* Stage B: step-size control and predictor state. *)
      for k = 0 to m - 1 do
        let i = (Array.unsafe_get b.active (k)) in
        let tau = (Array.unsafe_get b.tau (i)) in
        let t = (Array.unsafe_get b.bt (i)) and u = (Array.unsafe_get b.bu (i)) in
        let f0 = (Array.unsafe_get b.bf0 (k)) in
        let dt0 =
          if f0 *. (Array.unsafe_get b.dt_gate (i)) > du_max then du_max /. f0
          else (Array.unsafe_get b.dt_gate (i))
        in
        let dt = Float.min dt0 (tau -. t) in
        Array.unsafe_set b.bdt (k) dt;
        Array.unsafe_set b.bg1 (k) (vdd *. Float.min 1.0 ((t +. dt) /. tau));
        Array.unsafe_set b.bup (k) (Float.min vdd (u +. (dt *. f0)))
      done;
      (* Stage C: corrector slope. *)
      for k = 0 to m - 1 do
        let i = (Array.unsafe_get b.active (k)) in
        Array.unsafe_set b.bf1 k
          (bdrive ~approx arcs i ~gate:(Array.unsafe_get b.bg1 k)
             ~travel:(Array.unsafe_get b.bup k)
          *. Array.unsafe_get b.inv_cap i)
      done;
      (* Stage D: Heun commit, threshold crossings, compaction. *)
      n_active := 0;
      for k = 0 to m - 1 do
        let i = (Array.unsafe_get b.active (k)) in
        let tau = (Array.unsafe_get b.tau (i)) in
        let t = (Array.unsafe_get b.bt (i)) and u = (Array.unsafe_get b.bu (i)) in
        let f0 = (Array.unsafe_get b.bf0 (k)) and f1 = (Array.unsafe_get b.bf1 (k)) and dt = (Array.unsafe_get b.bdt (k)) in
        let t1 = t +. dt in
        let u1 = Float.min vdd (u +. (dt *. 0.5 *. (f0 +. f1))) in
        let next = ref (Array.unsafe_get b.next (i)) in
        while !next < 3 && u1 >= (Array.unsafe_get lvls !next) do
          Array.unsafe_set b.times ((3 * i) + !next)
            (hermite_crossing_st b.st ~t0:t ~dt ~u0:u ~u1 ~f0 ~f1
               (Array.unsafe_get lvls !next));
          if !next = 1 then Array.unsafe_set b.ramp_limited (i) true;
          incr next
        done;
        Array.unsafe_set b.next (i) !next;
        Array.unsafe_set b.bt (i) t1;
        Array.unsafe_set b.bu (i) u1;
        (* Writes trail reads (!n_active <= k), so compacting in place
           is safe. *)
        if t1 < tau && !next < 3 then begin
          Array.unsafe_set b.active (!n_active) i;
          incr n_active
        end
      done
    done;
    (* Samples still active after 64 rounds are the scalar kernel's
       guard-exhausted failures. *)
    for k = 0 to !n_active - 1 do
      let i = (Array.unsafe_get b.active (k)) in
      Array.unsafe_set b.failed (i) true;
      note_fast_failed ();
      Log.debug "fast ramp stepping did not converge%s"
        (Log.kv
           [
             ("steps", string_of_int !round);
             ("input_slew", Printf.sprintf "%.3g" (Array.unsafe_get b.tau (i)));
             ("load_cap", Printf.sprintf "%.3g" (Array.unsafe_get b.load (i)));
           ])
    done;
    (* 3. settled input: exact segment quadrature, one fused pass *)
    for i = 0 to n - 1 do
      if (not (Array.unsafe_get b.failed (i))) && (Array.unsafe_get b.next (i)) < 3 then begin
        let cap = (Array.unsafe_get b.cap (i)) in
        let a = ref (Array.unsafe_get b.bu (i)) in
        let t = ref (Array.unsafe_get b.bt (i)) in
        let next = ref (Array.unsafe_get b.next (i)) in
        (try
           while !next < 3 do
             let lvl = (Array.unsafe_get lvls !next) in
             let width = lvl -. !a in
             if width > 0.0 then begin
               let s = ref 0.0 in
               for q = 0 to 2 do
                 let ui = !a +. (width *. (Array.unsafe_get gl_x q)) in
                 let ii = bdrive_settled ~approx arcs i ~travel:ui in
                 if ii <= 0.0 then begin
                   note_fast_failed ();
                   Log.debug "fast settled phase cannot reach %.1f%% of swing%s"
                     (100.0 *. ui /. vdd)
                     (Log.kv
                        [
                          ("input_slew", Printf.sprintf "%.3g" (Array.unsafe_get b.tau (i)));
                          ("load_cap", Printf.sprintf "%.3g" (Array.unsafe_get b.load (i)));
                        ]);
                   Array.unsafe_set b.failed (i) true;
                   raise Exit
                 end;
                 s := !s +. ((Array.unsafe_get gl_w q) /. ii)
               done;
               t := !t +. (cap *. width *. !s)
             end;
             Array.unsafe_set b.times ((3 * i) + !next) !t;
             a := lvl;
             incr next
           done
         with Exit -> ());
        Array.unsafe_set b.next (i) !next
      end
    done;
    (* 4. results *)
    for i = 0 to n - 1 do
      if (Array.unsafe_get b.failed (i)) then begin
        Array.unsafe_set b.delays (i) Float.nan;
        Array.unsafe_set b.slews (i) Float.nan
      end
      else begin
        if (Array.unsafe_get b.ramp_limited (i)) then Metrics.incr m_fast_ramp_limited;
        Array.unsafe_set b.delays (i)
          (Array.unsafe_get b.times ((3 * i) + 1)
          -. (Array.unsafe_get b.tau (i) /. 2.0));
        Array.unsafe_set b.slews (i)
          ((Array.unsafe_get b.times ((3 * i) + 2)
           -. Array.unsafe_get b.times (3 * i))
          /. 0.6)
      end
    done
end

let run_compiled ?kernel tech c ~input_slew ~load_cap =
  let kernel = match kernel with Some k -> k | None -> default_kernel () in
  match kernel with
  | Rk4 -> simulate_compiled tech c ~input_slew ~load_cap
  | Fast -> fst (simulate_fast_ext_compiled tech c ~input_slew ~load_cap)
  | Auto -> (
    Metrics.incr m_auto_calls;
    match simulate_fast_ext_compiled tech c ~input_slew ~load_cap with
    | r, false -> r
    | _, true ->
      note_auto_fallback ();
      simulate_compiled tech c ~input_slew ~load_cap
    | exception Failure _ ->
      note_auto_fallback ();
      simulate_compiled tech c ~input_slew ~load_cap)
