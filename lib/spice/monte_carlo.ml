module Variation = Nsigma_process.Variation
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Rng = Nsigma_stats.Rng
module Sampler = Nsigma_stats.Sampler
module Executor = Nsigma_exec.Executor
module Metrics = Nsigma_obs.Metrics
module Trace = Nsigma_obs.Trace
module Log = Nsigma_obs.Log

(* Registered at module init so run reports always carry the MC keys,
   zero-valued when no study ran. *)
let m_samples = Metrics.counter "mc.samples"
let m_non_convergent = Metrics.counter "mc.non_convergent"

(* Adaptive-stopping telemetry, shared with the path sampler (the
   registry is idempotent by name). *)
let m_sampling_batches = Metrics.counter "sampling.batches"
let m_sampling_saved = Metrics.counter "sampling.samples_saved"

(* Kernel simulations spent on collocation points by the PCM surrogate
   backend — the denominator of its "samples from few sims" claim. *)
let m_pcm_collocations = Metrics.counter "sampling.pcm.collocations"

type run = { delays : float array; n_failed : int }

(* [split] advances the caller's generator exactly once, so successive
   studies on the same [g] stay decorrelated; each work item then derives
   its own stream from its index, making sample [i] a pure function of
   (base state, i) — the invariant that lets any Executor backend return
   bit-identical populations. *)
let samples ?(exec = Executor.default ()) tech g ~n f =
  let base = Rng.split g in
  Executor.map_array exec
    (fun i -> f (Variation.draw tech (Rng.derive base ~index:i)))
    ~n

(* Compact an option array without going through an intermediate list. *)
let compact measured =
  let kept = ref 0 in
  Array.iter (function Some _ -> incr kept | None -> ()) measured;
  let out = Array.make !kept 0.0 in
  let j = ref 0 in
  Array.iter
    (function
      | Some d ->
        out.(!j) <- d;
        incr j
      | None -> ())
    measured;
  out

let delays_counted ?exec tech g ~n f =
  let measured =
    samples ?exec tech g ~n (fun sample ->
        (* Only [Failure] marks simulator non-convergence (a non-functional
           variation corner); anything else is a programming error and
           propagates out of the executor. *)
        match f sample with d -> Some d | exception Failure _ -> None)
  in
  let delays = compact measured in
  let n_failed = n - Array.length delays in
  Metrics.incr m_samples ~by:n;
  if n_failed > 0 then begin
    Metrics.incr m_non_convergent ~by:n_failed;
    Log.debug "monte-carlo study%s"
      (Log.kv
         [
           ("samples", string_of_int n); ("non_convergent", string_of_int n_failed);
         ])
  end;
  { delays; n_failed }

let delays ?exec tech g ~n f = (delays_counted ?exec tech g ~n f).delays

let study ?exec tech g ~n f =
  let r = delays_counted ?exec tech g ~n f in
  Array.sort Float.compare r.delays;
  (Moments.summary_of_array r.delays, r.delays)

let arc_results ?exec ?kernel tech g ~n ~arc_of ~input_slew ~load_cap =
  let results =
    samples ?exec tech g ~n (fun sample ->
        match
          Cell_sim.run ?kernel tech (arc_of sample) ~input_slew ~load_cap
        with
        | r -> Some r
        | exception Failure _ -> None)
  in
  (* Accounting policy (uniform across this module): the sample counter is
     always advanced — [incr] is a no-op while metrics are disabled — and
     only work done purely for metrics (the failure fold) is guarded. *)
  Metrics.incr m_samples ~by:n;
  if Metrics.enabled () then begin
    let failed =
      Array.fold_left
        (fun acc -> function None -> acc + 1 | Some _ -> acc)
        0 results
    in
    if failed > 0 then Metrics.incr m_non_convergent ~by:failed
  end;
  results

(* Compact a NaN-sentinel float array (plan-layer result buffers). *)
let compact_nan xs =
  let kept = ref 0 in
  Array.iter (fun x -> if not (Float.is_nan x) then incr kept) xs;
  if !kept = Array.length xs then Array.copy xs
  else begin
    let out = Array.make !kept 0.0 in
    let j = ref 0 in
    Array.iter
      (fun x ->
        if not (Float.is_nan x) then begin
          out.(!j) <- x;
          incr j
        end)
      xs;
    out
  end

(* Samples per SoA batch on the batched fast path.  Also the executor
   chunk, so one worker fills, evaluates and drains a whole batch
   without synchronisation. *)
let batch_chunk = 256

let arc_delays_planned ?(exec = Executor.default ()) ?kernel ?(batch = false)
    ?(approx = false) tech g ~n ~plan ~input_slew ~load_cap =
  let kernel =
    match kernel with Some k -> k | None -> Cell_sim.default_kernel ()
  in
  let base = Rng.split g in
  let out_slews = Array.make n Float.nan in
  let delays =
    if (batch || approx) && kernel = Cell_sim.Fast then begin
      (* SoA batch path: same draws, same fills, same per-sample FP
         sequence (with [approx] off) — only the loop order changes, so
         the population is bit-identical to the scalar branch below. *)
      let delays = Array.make n Float.nan in
      Executor.map_ranges exec ~chunk:batch_chunk
        ~init:(fun () -> (plan (), Cell_sim.Batch.create batch_chunk))
        (fun (sk, b) ~lo ~hi ->
          for i = lo to hi - 1 do
            let sample = Variation.draw tech (Rng.derive base ~index:i) in
            Arc.fill tech sk sample;
            Cell_sim.Batch.load b (i - lo) (Arc.skeleton_compiled sk)
              ~input_slew ~load_cap
          done;
          Cell_sim.Batch.eval ~approx tech b ~n:(hi - lo);
          for i = lo to hi - 1 do
            delays.(i) <- Cell_sim.Batch.delay b (i - lo);
            out_slews.(i) <- Cell_sim.Batch.output_slew b (i - lo)
          done)
        ~n;
      delays
    end
    else
      Executor.map_float_array exec ~init:plan
        (fun sk i ->
          let sample = Variation.draw tech (Rng.derive base ~index:i) in
          Arc.fill tech sk sample;
          match
            Cell_sim.run_compiled ~kernel tech (Arc.skeleton_compiled sk)
              ~input_slew ~load_cap
          with
          | r ->
            out_slews.(i) <- r.Cell_sim.output_slew;
            r.Cell_sim.delay
          | exception Failure _ -> Float.nan)
        ~n
  in
  Metrics.incr m_samples ~by:n;
  if Metrics.enabled () then begin
    let failed =
      Array.fold_left
        (fun acc d -> if Float.is_nan d then acc + 1 else acc)
        0 delays
    in
    if failed > 0 then Metrics.incr m_non_convergent ~by:failed
  end;
  (delays, out_slews)

(* ----- variance-reduced / adaptive sampling ----- *)

let min_adaptive_batch = 256

let tail_probs =
  [ Quantile.probability_of_sigma (-3.0); Quantile.probability_of_sigma 3.0 ]

let quantiles_converged sorted ~rtol =
  Array.length sorted >= 2
  && List.for_all
       (fun p ->
         let q = Quantile.of_sorted sorted p in
         let lo, hi = Quantile.ci sorted p in
         (hi -. lo) /. 2.0 <= rtol *. Float.abs q)
       tail_probs

(* Worst relative CI half-width over the tail quantiles — the quantity
   {!quantiles_converged} compares against [rtol], reported on trace
   convergence events.  Kept separate from the stopping predicate so
   event emission can never change a stopping decision (the predicate
   compares un-divided terms; a division here could flip a borderline
   case). *)
let quantile_ci_rel sorted =
  if Array.length sorted < 2 then Float.infinity
  else
    List.fold_left
      (fun acc p ->
        let q = Quantile.of_sorted sorted p in
        let lo, hi = Quantile.ci sorted p in
        let denom = Float.abs q in
        if denom > 0.0 then Float.max acc ((hi -. lo) /. 2.0 /. denom)
        else Float.infinity)
      0.0 tail_probs

(* Trace event stream for the adaptive sampler: one [sampling.batch]
   instant per convergence check ([target] = population size tested,
   [ci_rel] = worst ±3σ relative CI half-width, [converged] = rtol
   verdict, [capped] = stopped by the sample budget), one
   [sampling.pcm.fit] / [sampling.pcm.fallback] instant per surrogate
   decision, and a [sampling.drawn] counter track.  Shared by name with
   the path-level sampler in [Path_mc]. *)
let tr_batch =
  Trace.instant_type ~cat:"sampling"
    ~args:[ "target"; "ci_rel"; "converged"; "capped" ]
    "sampling.batch"

let tr_pcm_fit =
  Trace.instant_type ~cat:"sampling" ~args:[ "points"; "dim" ]
    "sampling.pcm.fit"

let tr_pcm_fallback =
  Trace.instant_type ~cat:"sampling" ~args:[ "points" ] "sampling.pcm.fallback"

let tc_drawn = Trace.counter_type ~cat:"sampling" "sampling.drawn"

(* Emitted from population copies only — never feeds back into a
   stopping decision, so drawn populations are bitwise identical with
   tracing on or off.  Shared with [Path_mc]'s adaptive loop. *)
let trace_batch_event ~out ~target ~converged ~capped =
  if Trace.enabled () then begin
    let sorted = compact_nan (Array.sub out 0 target) in
    Array.sort Float.compare sorted;
    Trace.counter tc_drawn (float_of_int target);
    Trace.instant tr_batch ~a:(float_of_int target)
      ~b:(quantile_ci_rel sorted)
      ~c:(if converged then 1.0 else 0.0)
      ~d:(if capped then 1.0 else 0.0)
      ()
  end

type sampled = {
  s_delays : float array;
  s_out_slews : float array;
  s_requested : int;
  s_batches : int;
}

let arc_delays_sampled ?(exec = Executor.default ()) ?kernel ?sampling ?rtol
    ?(min_batch = min_adaptive_batch) ?(batch = false) ?(approx = false) tech g
    ~n ~plan ~input_slew ~load_cap =
  let kernel =
    match kernel with Some k -> k | None -> Cell_sim.default_kernel ()
  in
  let backend =
    match sampling with Some b -> b | None -> Sampler.default_backend ()
  in
  match (backend, rtol) with
  | Sampler.Mc, None ->
    (* The default configuration delegates to the legacy planned loop —
       trivially bit-identical to pre-sampler populations, and metric
       accounting stays in one place.  The batch flags only apply here:
       the adaptive and variance-reduced paths below stay scalar (their
       per-index deviate streams don't chunk naturally). *)
    let delays, slews =
      arc_delays_planned ~exec ~kernel ~batch ~approx tech g ~n ~plan
        ~input_slew ~load_cap
    in
    { s_delays = delays; s_out_slews = slews; s_requested = n; s_batches = 1 }
  | Sampler.Pcm, _ -> (
    (* Probabilistic collocation: simulate only at the O(dim²) Hermite
       collocation points, fit second-order surrogates for delay and
       output slew, then replay the full plain-MC deviate population
       through the surrogates.  [rtol] is ignored — surrogate samples
       cost a few dozen flops, so there is nothing to stop early for. *)
    let base = Rng.split g in
    let sk = plan () in
    let dim = Variation.global_deviate_dim + Arc.skeleton_local_dim sk in
    let n_pts = Sampler.Pcm.n_points ~dim in
    let zbuf = Array.make dim 0.0 in
    let cdel = Array.make n_pts Float.nan in
    let cslew = Array.make n_pts Float.nan in
    let collocate () =
      (* Sequential on the calling domain: the point count is tiny and
         this keeps the fit independent of the executor backend. *)
      try
        for p = 0 to n_pts - 1 do
          Sampler.Pcm.fill_point ~dim p zbuf;
          Arc.fill tech sk (Variation.of_deviates tech zbuf);
          let r =
            Cell_sim.run_compiled ~kernel tech (Arc.skeleton_compiled sk)
              ~input_slew ~load_cap
          in
          cdel.(p) <- r.Cell_sim.delay;
          cslew.(p) <- r.Cell_sim.output_slew
        done;
        true
      with Failure _ -> false
    in
    let positive a =
      Array.for_all (fun v -> Float.is_finite v && v > 0.0) a
    in
    match collocate () && positive cdel && positive cslew with
    | false ->
      (* A non-functional (or non-positive — the fit runs in log space)
         collocation corner poisons the whole fit; fall back to honest
         sampling rather than extrapolate. *)
      Log.warn "pcm: collocation failed, falling back to MC%s"
        (Log.kv [ ("points", string_of_int n_pts) ]);
      if Trace.enabled () then
        Trace.instant tr_pcm_fallback ~a:(float_of_int n_pts) ();
      let delays, slews =
        arc_delays_planned ~exec ~kernel ~batch ~approx tech g ~n ~plan
          ~input_slew ~load_cap
      in
      { s_delays = delays; s_out_slews = slews; s_requested = n; s_batches = 1 }
    | true ->
      (* Fit in log space: near-threshold delay grows exponentially in
         the vth corners, so a quadratic captures log-delay far better
         than delay itself — same collocation points, same second-order
         surrogate, but the exponential replay recovers most of the tail
         curvature a raw-space quadratic clips (its ±3σ quantile bias is
         ~3x larger on the high-sigma workloads). *)
      let sd = Sampler.Pcm.fit ~dim ~values:(Array.map Stdlib.log cdel) in
      let ss = Sampler.Pcm.fit ~dim ~values:(Array.map Stdlib.log cslew) in
      let sampler = Sampler.create Sampler.Pcm base ~dim ~n in
      let out_slews = Array.make n Float.nan in
      let delays =
        Executor.map_float_array exec
          ~init:(fun () -> Array.make dim 0.0)
          (fun z i ->
            Sampler.fill sampler ~index:i z;
            out_slews.(i) <- Stdlib.exp (Sampler.Pcm.eval ss z);
            Stdlib.exp (Sampler.Pcm.eval sd z))
          ~n
      in
      Metrics.incr m_samples ~by:n_pts;
      Metrics.incr m_pcm_collocations ~by:n_pts;
      if n > n_pts then Metrics.incr m_sampling_saved ~by:(n - n_pts);
      if Trace.enabled () then
        Trace.instant tr_pcm_fit ~a:(float_of_int n_pts) ~b:(float_of_int dim)
          ();
      { s_delays = delays; s_out_slews = out_slews; s_requested = n;
        s_batches = 1 })
  | _ ->
    let base = Rng.split g in
    let sampler =
      match backend with
      | Sampler.Mc -> None
      | _ ->
        (* One probe skeleton on the calling domain fixes the deviate
           dimension; workers build their own through [init]. *)
        let dim =
          Variation.global_deviate_dim + Arc.skeleton_local_dim (plan ())
        in
        Some (Sampler.create backend base ~dim ~n)
    in
    let out = Array.make n Float.nan in
    let out_slews = Array.make n Float.nan in
    let init () =
      let sk = plan () in
      let zbuf =
        match sampler with
        | None -> [||]
        | Some s -> Array.make (Sampler.dim s) 0.0
      in
      (sk, zbuf)
    in
    let task (sk, zbuf) i =
      let sample =
        match sampler with
        | None -> Variation.draw tech (Rng.derive base ~index:i)
        | Some s ->
          Sampler.fill s ~index:i zbuf;
          Variation.of_deviates tech zbuf
      in
      Arc.fill tech sk sample;
      match
        Cell_sim.run_compiled ~kernel tech (Arc.skeleton_compiled sk)
          ~input_slew ~load_cap
      with
      | r ->
        out_slews.(i) <- r.Cell_sim.output_slew;
        r.Cell_sim.delay
      | exception Failure _ -> Float.nan
    in
    let drawn, batches =
      match rtol with
      | None ->
        Executor.map_float_range exec ~init task ~out ~lo:0 ~hi:n;
        (n, 1)
      | Some rtol ->
        if rtol <= 0.0 then
          invalid_arg "Monte_carlo.arc_delays_sampled: rtol must be positive";
        let min_batch = max 2 min_batch in
        (* Doubling batches; samples are addressed by absolute index, so
           an early-stopped population is a bitwise prefix of the full
           one.  Convergence is never tested below [min_batch] samples. *)
        let rec loop drawn batches =
          let target =
            if drawn = 0 then min n min_batch else min n (2 * drawn)
          in
          Executor.map_float_range exec ~init task ~out ~lo:drawn ~hi:target;
          let batches = batches + 1 in
          if target >= n then begin
            trace_batch_event ~out ~target ~converged:false ~capped:true;
            (target, batches)
          end
          else begin
            let sorted = compact_nan (Array.sub out 0 target) in
            Array.sort Float.compare sorted;
            let converged =
              Array.length sorted >= min_batch
              && quantiles_converged sorted ~rtol
            in
            trace_batch_event ~out ~target ~converged ~capped:false;
            if converged then (target, batches) else loop target batches
          end
        in
        loop 0 0
    in
    let delays = if drawn = n then out else Array.sub out 0 drawn in
    let slews = if drawn = n then out_slews else Array.sub out_slews 0 drawn in
    Metrics.incr m_samples ~by:drawn;
    (match rtol with
    | Some _ ->
      Metrics.incr m_sampling_batches ~by:batches;
      if n > drawn then Metrics.incr m_sampling_saved ~by:(n - drawn)
    | None -> ());
    if Metrics.enabled () then begin
      let failed =
        Array.fold_left
          (fun acc d -> if Float.is_nan d then acc + 1 else acc)
          0 delays
      in
      if failed > 0 then Metrics.incr m_non_convergent ~by:failed
    end;
    { s_delays = delays; s_out_slews = slews; s_requested = n; s_batches = batches }
