module Variation = Nsigma_process.Variation
module Moments = Nsigma_stats.Moments
module Rng = Nsigma_stats.Rng
module Executor = Nsigma_exec.Executor
module Metrics = Nsigma_obs.Metrics
module Log = Nsigma_obs.Log

(* Registered at module init so run reports always carry the MC keys,
   zero-valued when no study ran. *)
let m_samples = Metrics.counter "mc.samples"
let m_non_convergent = Metrics.counter "mc.non_convergent"

type run = { delays : float array; n_failed : int }

(* [split] advances the caller's generator exactly once, so successive
   studies on the same [g] stay decorrelated; each work item then derives
   its own stream from its index, making sample [i] a pure function of
   (base state, i) — the invariant that lets any Executor backend return
   bit-identical populations. *)
let samples ?(exec = Executor.default ()) tech g ~n f =
  let base = Rng.split g in
  Executor.map_array exec
    (fun i -> f (Variation.draw tech (Rng.derive base ~index:i)))
    ~n

(* Compact an option array without going through an intermediate list. *)
let compact measured =
  let kept = ref 0 in
  Array.iter (function Some _ -> incr kept | None -> ()) measured;
  let out = Array.make !kept 0.0 in
  let j = ref 0 in
  Array.iter
    (function
      | Some d ->
        out.(!j) <- d;
        incr j
      | None -> ())
    measured;
  out

let delays_counted ?exec tech g ~n f =
  let measured =
    samples ?exec tech g ~n (fun sample ->
        (* Only [Failure] marks simulator non-convergence (a non-functional
           variation corner); anything else is a programming error and
           propagates out of the executor. *)
        match f sample with d -> Some d | exception Failure _ -> None)
  in
  let delays = compact measured in
  let n_failed = n - Array.length delays in
  Metrics.incr m_samples ~by:n;
  if n_failed > 0 then begin
    Metrics.incr m_non_convergent ~by:n_failed;
    Log.debug "monte-carlo study%s"
      (Log.kv
         [
           ("samples", string_of_int n); ("non_convergent", string_of_int n_failed);
         ])
  end;
  { delays; n_failed }

let delays ?exec tech g ~n f = (delays_counted ?exec tech g ~n f).delays

let study ?exec tech g ~n f =
  let r = delays_counted ?exec tech g ~n f in
  Array.sort Float.compare r.delays;
  (Moments.summary_of_array r.delays, r.delays)

let arc_results ?exec ?kernel tech g ~n ~arc_of ~input_slew ~load_cap =
  let results =
    samples ?exec tech g ~n (fun sample ->
        match
          Cell_sim.run ?kernel tech (arc_of sample) ~input_slew ~load_cap
        with
        | r -> Some r
        | exception Failure _ -> None)
  in
  (* Accounting policy (uniform across this module): the sample counter is
     always advanced — [incr] is a no-op while metrics are disabled — and
     only work done purely for metrics (the failure fold) is guarded. *)
  Metrics.incr m_samples ~by:n;
  if Metrics.enabled () then begin
    let failed =
      Array.fold_left
        (fun acc -> function None -> acc + 1 | Some _ -> acc)
        0 results
    in
    if failed > 0 then Metrics.incr m_non_convergent ~by:failed
  end;
  results

(* Compact a NaN-sentinel float array (plan-layer result buffers). *)
let compact_nan xs =
  let kept = ref 0 in
  Array.iter (fun x -> if not (Float.is_nan x) then incr kept) xs;
  if !kept = Array.length xs then Array.copy xs
  else begin
    let out = Array.make !kept 0.0 in
    let j = ref 0 in
    Array.iter
      (fun x ->
        if not (Float.is_nan x) then begin
          out.(!j) <- x;
          incr j
        end)
      xs;
    out
  end

let arc_delays_planned ?(exec = Executor.default ()) ?kernel tech g ~n ~plan
    ~input_slew ~load_cap =
  let kernel =
    match kernel with Some k -> k | None -> Cell_sim.default_kernel ()
  in
  let base = Rng.split g in
  let out_slews = Array.make n Float.nan in
  let delays =
    Executor.map_float_array exec ~init:plan
      (fun sk i ->
        let sample = Variation.draw tech (Rng.derive base ~index:i) in
        Arc.fill tech sk sample;
        match
          Cell_sim.run_compiled ~kernel tech (Arc.skeleton_compiled sk)
            ~input_slew ~load_cap
        with
        | r ->
          out_slews.(i) <- r.Cell_sim.output_slew;
          r.Cell_sim.delay
        | exception Failure _ -> Float.nan)
      ~n
  in
  Metrics.incr m_samples ~by:n;
  if Metrics.enabled () then begin
    let failed =
      Array.fold_left
        (fun acc d -> if Float.is_nan d then acc + 1 else acc)
        0 delays
    in
    if failed > 0 then Metrics.incr m_non_convergent ~by:failed
  end;
  (delays, out_slews)
