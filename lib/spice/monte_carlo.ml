module Variation = Nsigma_process.Variation
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Rng = Nsigma_stats.Rng
module Sampler = Nsigma_stats.Sampler
module Executor = Nsigma_exec.Executor
module Metrics = Nsigma_obs.Metrics
module Log = Nsigma_obs.Log

(* Registered at module init so run reports always carry the MC keys,
   zero-valued when no study ran. *)
let m_samples = Metrics.counter "mc.samples"
let m_non_convergent = Metrics.counter "mc.non_convergent"

(* Adaptive-stopping telemetry, shared with the path sampler (the
   registry is idempotent by name). *)
let m_sampling_batches = Metrics.counter "sampling.batches"
let m_sampling_saved = Metrics.counter "sampling.samples_saved"

type run = { delays : float array; n_failed : int }

(* [split] advances the caller's generator exactly once, so successive
   studies on the same [g] stay decorrelated; each work item then derives
   its own stream from its index, making sample [i] a pure function of
   (base state, i) — the invariant that lets any Executor backend return
   bit-identical populations. *)
let samples ?(exec = Executor.default ()) tech g ~n f =
  let base = Rng.split g in
  Executor.map_array exec
    (fun i -> f (Variation.draw tech (Rng.derive base ~index:i)))
    ~n

(* Compact an option array without going through an intermediate list. *)
let compact measured =
  let kept = ref 0 in
  Array.iter (function Some _ -> incr kept | None -> ()) measured;
  let out = Array.make !kept 0.0 in
  let j = ref 0 in
  Array.iter
    (function
      | Some d ->
        out.(!j) <- d;
        incr j
      | None -> ())
    measured;
  out

let delays_counted ?exec tech g ~n f =
  let measured =
    samples ?exec tech g ~n (fun sample ->
        (* Only [Failure] marks simulator non-convergence (a non-functional
           variation corner); anything else is a programming error and
           propagates out of the executor. *)
        match f sample with d -> Some d | exception Failure _ -> None)
  in
  let delays = compact measured in
  let n_failed = n - Array.length delays in
  Metrics.incr m_samples ~by:n;
  if n_failed > 0 then begin
    Metrics.incr m_non_convergent ~by:n_failed;
    Log.debug "monte-carlo study%s"
      (Log.kv
         [
           ("samples", string_of_int n); ("non_convergent", string_of_int n_failed);
         ])
  end;
  { delays; n_failed }

let delays ?exec tech g ~n f = (delays_counted ?exec tech g ~n f).delays

let study ?exec tech g ~n f =
  let r = delays_counted ?exec tech g ~n f in
  Array.sort Float.compare r.delays;
  (Moments.summary_of_array r.delays, r.delays)

let arc_results ?exec ?kernel tech g ~n ~arc_of ~input_slew ~load_cap =
  let results =
    samples ?exec tech g ~n (fun sample ->
        match
          Cell_sim.run ?kernel tech (arc_of sample) ~input_slew ~load_cap
        with
        | r -> Some r
        | exception Failure _ -> None)
  in
  (* Accounting policy (uniform across this module): the sample counter is
     always advanced — [incr] is a no-op while metrics are disabled — and
     only work done purely for metrics (the failure fold) is guarded. *)
  Metrics.incr m_samples ~by:n;
  if Metrics.enabled () then begin
    let failed =
      Array.fold_left
        (fun acc -> function None -> acc + 1 | Some _ -> acc)
        0 results
    in
    if failed > 0 then Metrics.incr m_non_convergent ~by:failed
  end;
  results

(* Compact a NaN-sentinel float array (plan-layer result buffers). *)
let compact_nan xs =
  let kept = ref 0 in
  Array.iter (fun x -> if not (Float.is_nan x) then incr kept) xs;
  if !kept = Array.length xs then Array.copy xs
  else begin
    let out = Array.make !kept 0.0 in
    let j = ref 0 in
    Array.iter
      (fun x ->
        if not (Float.is_nan x) then begin
          out.(!j) <- x;
          incr j
        end)
      xs;
    out
  end

let arc_delays_planned ?(exec = Executor.default ()) ?kernel tech g ~n ~plan
    ~input_slew ~load_cap =
  let kernel =
    match kernel with Some k -> k | None -> Cell_sim.default_kernel ()
  in
  let base = Rng.split g in
  let out_slews = Array.make n Float.nan in
  let delays =
    Executor.map_float_array exec ~init:plan
      (fun sk i ->
        let sample = Variation.draw tech (Rng.derive base ~index:i) in
        Arc.fill tech sk sample;
        match
          Cell_sim.run_compiled ~kernel tech (Arc.skeleton_compiled sk)
            ~input_slew ~load_cap
        with
        | r ->
          out_slews.(i) <- r.Cell_sim.output_slew;
          r.Cell_sim.delay
        | exception Failure _ -> Float.nan)
      ~n
  in
  Metrics.incr m_samples ~by:n;
  if Metrics.enabled () then begin
    let failed =
      Array.fold_left
        (fun acc d -> if Float.is_nan d then acc + 1 else acc)
        0 delays
    in
    if failed > 0 then Metrics.incr m_non_convergent ~by:failed
  end;
  (delays, out_slews)

(* ----- variance-reduced / adaptive sampling ----- *)

let min_adaptive_batch = 256

let tail_probs =
  [ Quantile.probability_of_sigma (-3.0); Quantile.probability_of_sigma 3.0 ]

let quantiles_converged sorted ~rtol =
  Array.length sorted >= 2
  && List.for_all
       (fun p ->
         let q = Quantile.of_sorted sorted p in
         let lo, hi = Quantile.ci sorted p in
         (hi -. lo) /. 2.0 <= rtol *. Float.abs q)
       tail_probs

type sampled = {
  s_delays : float array;
  s_out_slews : float array;
  s_requested : int;
  s_batches : int;
}

let arc_delays_sampled ?(exec = Executor.default ()) ?kernel ?sampling ?rtol
    ?(min_batch = min_adaptive_batch) tech g ~n ~plan ~input_slew ~load_cap =
  let kernel =
    match kernel with Some k -> k | None -> Cell_sim.default_kernel ()
  in
  let backend =
    match sampling with Some b -> b | None -> Sampler.default_backend ()
  in
  match (backend, rtol) with
  | Sampler.Mc, None ->
    (* The default configuration delegates to the legacy planned loop —
       trivially bit-identical to pre-sampler populations, and metric
       accounting stays in one place. *)
    let delays, slews =
      arc_delays_planned ~exec ~kernel tech g ~n ~plan ~input_slew ~load_cap
    in
    { s_delays = delays; s_out_slews = slews; s_requested = n; s_batches = 1 }
  | _ ->
    let base = Rng.split g in
    let sampler =
      match backend with
      | Sampler.Mc -> None
      | _ ->
        (* One probe skeleton on the calling domain fixes the deviate
           dimension; workers build their own through [init]. *)
        let dim =
          Variation.global_deviate_dim + Arc.skeleton_local_dim (plan ())
        in
        Some (Sampler.create backend base ~dim ~n)
    in
    let out = Array.make n Float.nan in
    let out_slews = Array.make n Float.nan in
    let init () =
      let sk = plan () in
      let zbuf =
        match sampler with
        | None -> [||]
        | Some s -> Array.make (Sampler.dim s) 0.0
      in
      (sk, zbuf)
    in
    let task (sk, zbuf) i =
      let sample =
        match sampler with
        | None -> Variation.draw tech (Rng.derive base ~index:i)
        | Some s ->
          Sampler.fill s ~index:i zbuf;
          Variation.of_deviates tech zbuf
      in
      Arc.fill tech sk sample;
      match
        Cell_sim.run_compiled ~kernel tech (Arc.skeleton_compiled sk)
          ~input_slew ~load_cap
      with
      | r ->
        out_slews.(i) <- r.Cell_sim.output_slew;
        r.Cell_sim.delay
      | exception Failure _ -> Float.nan
    in
    let drawn, batches =
      match rtol with
      | None ->
        Executor.map_float_range exec ~init task ~out ~lo:0 ~hi:n;
        (n, 1)
      | Some rtol ->
        if rtol <= 0.0 then
          invalid_arg "Monte_carlo.arc_delays_sampled: rtol must be positive";
        let min_batch = max 2 min_batch in
        (* Doubling batches; samples are addressed by absolute index, so
           an early-stopped population is a bitwise prefix of the full
           one.  Convergence is never tested below [min_batch] samples. *)
        let rec loop drawn batches =
          let target =
            if drawn = 0 then min n min_batch else min n (2 * drawn)
          in
          Executor.map_float_range exec ~init task ~out ~lo:drawn ~hi:target;
          let batches = batches + 1 in
          if target >= n then (target, batches)
          else begin
            let sorted = compact_nan (Array.sub out 0 target) in
            Array.sort Float.compare sorted;
            if
              Array.length sorted >= min_batch
              && quantiles_converged sorted ~rtol
            then (target, batches)
            else loop target batches
          end
        in
        loop 0 0
    in
    let delays = if drawn = n then out else Array.sub out 0 drawn in
    let slews = if drawn = n then out_slews else Array.sub out_slews 0 drawn in
    Metrics.incr m_samples ~by:drawn;
    (match rtol with
    | Some _ ->
      Metrics.incr m_sampling_batches ~by:batches;
      if n > drawn then Metrics.incr m_sampling_saved ~by:(n - drawn)
    | None -> ());
    if Metrics.enabled () then begin
      let failed =
        Array.fold_left
          (fun acc d -> if Float.is_nan d then acc + 1 else acc)
          0 delays
      in
      if failed > 0 then Metrics.incr m_non_convergent ~by:failed
    end;
    { s_delays = delays; s_out_slews = slews; s_requested = n; s_batches = batches }
