(** Monte-Carlo harness over process variation.

    Mirrors the paper's methodology: N independent global+local samples,
    a user-supplied measurement per sample, and moment/quantile reduction
    of the resulting delay population.

    All entry points take an optional {!Nsigma_exec.Executor.t} and
    produce bit-identical populations on every backend: the caller's
    generator is advanced once, and sample [i] draws from a child stream
    derived from the item index ([Rng.derive]), never from a generator
    shared across the loop. *)

type run = {
  delays : float array;  (** measurements that converged, in sample order *)
  n_failed : int;  (** samples dropped because the simulator raised [Failure] *)
}

val samples :
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> 'a) ->
  'a array
(** Draw [n] variation samples and measure each. *)

val delays_counted :
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> float) ->
  run
(** {!samples} specialised to scalar measurements.  A measurement that
    raises [Failure _] is simulator non-convergence (reported failures
    are < 0.1% in practice and correspond to non-functional variation
    corners): it is skipped and counted in [n_failed] so callers can
    report the attrition instead of silently losing it.  Any other
    exception propagates. *)

val delays :
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> float) ->
  float array
(** [delays_counted] keeping only the surviving population. *)

val study :
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> float) ->
  Nsigma_stats.Moments.summary * float array
(** Moments plus the sorted sample array (ready for quantile lookup). *)

val arc_results :
  ?exec:Nsigma_exec.Executor.t ->
  ?kernel:Cell_sim.kernel ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  arc_of:(Nsigma_process.Variation.t -> Arc.t) ->
  input_slew:float ->
  load_cap:float ->
  Cell_sim.result option array
(** Per-sample transient results of the arc built by [arc_of], measured
    through {!Cell_sim.run} with the requested [kernel] (default
    {!Cell_sim.default_kernel}[ ()]).  [None] marks a sample whose
    simulation raised [Failure] (non-convergence).  The unplanned
    sampling primitive — the reference the plan layer is verified
    against; like every entry point here, the population is bit-identical
    on every executor backend. *)

val compact : float option array -> float array
(** Compact an option array of floats without an intermediate list,
    preserving sample order.  (Exposed for the characterisation and STA
    layers, which share this compaction.) *)

val compact_nan : float array -> float array
(** Drop NaN sentinels (failed samples) from a plan-layer result buffer,
    preserving sample order; returns a fresh array even when nothing was
    dropped. *)

val quantiles_converged : float array -> rtol:float -> bool
(** The adaptive stopping criterion: true when both ±3σ empirical
    quantiles of the ascending-sorted population have a relative
    {!Nsigma_stats.Quantile.ci} half-width ≤ [rtol]
    ((hi − lo)/2 ≤ rtol·|q|, 95% order-statistic CI).  Shared by the
    characterisation and path samplers. *)

val quantile_ci_rel : float array -> float
(** Worst relative CI half-width over the same tail quantiles — the
    value {!quantiles_converged} compares against [rtol], reported on
    [sampling.batch] trace events.  [infinity] when the population is
    too small (or a quantile is zero) to form a relative width.
    Diagnostic only: the stopping decision always uses
    {!quantiles_converged}. *)

val trace_batch_event :
  out:float array -> target:int -> converged:bool -> capped:bool -> unit
(** Emit one [sampling.batch] convergence instant (and a
    [sampling.drawn] counter sample) on the trace for a population of
    [target] samples in [out] — a no-op when tracing is disabled.
    Works on copies of the population; never affects the samples or the
    stopping decision.  Shared by the arc- and path-level adaptive
    loops. *)

val min_adaptive_batch : int
(** Default minimum batch (256): adaptive sampling never tests
    convergence — hence never stops — below this many samples. *)

val batch_chunk : int
(** Samples per SoA batch — and per {!Nsigma_exec.Executor.map_ranges}
    chunk — on the batched fast path (256).  Shared with the path-level
    batch runner so both layers chunk identically. *)

type sampled = {
  s_delays : float array;
      (** delays in sample order, length = samples actually drawn; NaN
          marks a non-convergent sample *)
  s_out_slews : float array;  (** matching output slews (NaN on failure) *)
  s_requested : int;  (** the [n] asked for (= length unless stopped early) *)
  s_batches : int;  (** executor passes taken (1 unless adaptive) *)
}

val arc_delays_sampled :
  ?exec:Nsigma_exec.Executor.t ->
  ?kernel:Cell_sim.kernel ->
  ?sampling:Nsigma_stats.Sampler.backend ->
  ?rtol:float ->
  ?min_batch:int ->
  ?batch:bool ->
  ?approx:bool ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  plan:(unit -> Arc.skeleton) ->
  input_slew:float ->
  load_cap:float ->
  sampled
(** The sampler-aware form of {!arc_delays_planned}: deviates come from
    an {!Nsigma_stats.Sampler} stream of the requested backend (default
    {!Nsigma_stats.Sampler.default_backend}[ ()], i.e. plain MC unless
    [NSIGMA_SAMPLING] says otherwise).  With the [Mc] backend and no
    [rtol] it delegates to {!arc_delays_planned} — bitwise-identical to
    the pre-sampler populations, as test_sampler asserts — forwarding
    [batch]/[approx]; the adaptive and variance-reduced paths stay
    scalar.

    The [Pcm] backend replaces sampling altogether: the kernel is
    simulated only at the [Sampler.Pcm.n_points ~dim] Hermite
    collocation points (counted under [sampling.pcm.collocations], with
    the [n − points] never-simulated samples under
    [sampling.samples_saved]), second-order surrogates are fitted for
    log-delay and log output slew — near-threshold delay is close to
    exponential in the vth corners, so the quadratic lives in log space
    where it fits — and the full plain-MC deviate population is
    replayed through them (exponentiated).  [rtol] is ignored for [Pcm]
    (surrogate samples are almost free).  If any collocation simulation
    fails or returns a non-positive response the call falls back to
    {!arc_delays_planned} with a warning — better honest sampling than
    a surrogate extrapolated over a hole.

    [rtol] enables adaptive stopping: sampling proceeds in doubling
    batches from [min_batch] (default {!min_adaptive_batch}) and stops
    as soon as {!quantiles_converged} holds on the population so far —
    never below [min_batch] samples, always capped at [n].  Because
    sample [i] is a pure function of the index, the early-stopped
    population is a bitwise prefix of the full run.  Batches and samples
    saved are recorded under the [sampling.batches] /
    [sampling.samples_saved] counters.
    @raise Invalid_argument if [rtol <= 0]. *)

val arc_delays_planned :
  ?exec:Nsigma_exec.Executor.t ->
  ?kernel:Cell_sim.kernel ->
  ?batch:bool ->
  ?approx:bool ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  plan:(unit -> Arc.skeleton) ->
  input_slew:float ->
  load_cap:float ->
  float array * float array
(** Planned counterpart of {!arc_results}: [plan ()] builds one arc
    skeleton per worker domain ({!Nsigma_exec.Executor.map_scratch}
    discipline), each sample refreshes it in place ({!Arc.fill}) and runs
    the compiled kernel ({!Cell_sim.run_compiled}).  Returns
    [(delays, output_slews)] in sample order as unboxed float arrays with
    NaN marking non-convergent samples (in both arrays).  Guaranteed
    bit-identical to {!arc_results} on the same (generator state, seed,
    kernel), for every executor backend — the RNG discipline, draw order
    and floating-point evaluation order are preserved exactly.

    [batch] (default false) routes evaluation through the SoA
    {!Cell_sim.Batch} kernel in {!Nsigma_exec.Executor.map_ranges}
    chunks — still bit-identical (loop interchange does not perturb any
    sample's FP sequence; test_batch asserts this).  [approx] (default
    false, implies [batch]) additionally swaps the transcendentals for
    {!Nsigma_stats.Fastmath}'s polynomial kernels — the opt-in
    [--no-bit-identical] mode, within 1e-7 relative error per call.
    Both flags only apply to the [Fast] kernel; other kernels ignore
    them and run the scalar loop. *)
