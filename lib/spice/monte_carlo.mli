(** Monte-Carlo harness over process variation.

    Mirrors the paper's methodology: N independent global+local samples,
    a user-supplied measurement per sample, and moment/quantile reduction
    of the resulting delay population.

    All entry points take an optional {!Nsigma_exec.Executor.t} and
    produce bit-identical populations on every backend: the caller's
    generator is advanced once, and sample [i] draws from a child stream
    derived from the item index ([Rng.derive]), never from a generator
    shared across the loop. *)

type run = {
  delays : float array;  (** measurements that converged, in sample order *)
  n_failed : int;  (** samples dropped because the simulator raised [Failure] *)
}

val samples :
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> 'a) ->
  'a array
(** Draw [n] variation samples and measure each. *)

val delays_counted :
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> float) ->
  run
(** {!samples} specialised to scalar measurements.  A measurement that
    raises [Failure _] is simulator non-convergence (reported failures
    are < 0.1% in practice and correspond to non-functional variation
    corners): it is skipped and counted in [n_failed] so callers can
    report the attrition instead of silently losing it.  Any other
    exception propagates. *)

val delays :
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> float) ->
  float array
(** [delays_counted] keeping only the surviving population. *)

val study :
  ?exec:Nsigma_exec.Executor.t ->
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> float) ->
  Nsigma_stats.Moments.summary * float array
(** Moments plus the sorted sample array (ready for quantile lookup). *)
