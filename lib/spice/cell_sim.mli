(** Transient simulation of one cell switching arc — the two-tier kernel.

    Two interchangeable engines measure the same quantities (delay
    50%-input to 50%-output; output slew as the 20%–80% crossing interval
    rescaled to a full-swing equivalent ramp, the same convention as
    [input_slew]):

    - {!simulate} — the RK4 reference ("SPICE"): classical RK4 over the
      arc's nonlinear current under a linear input ramp, through the
      closure-free compiled arc ({!Arc.compile}), with fixed
      input-resolving steps during the ramp, travel-rate-adaptive steps
      after it, and early exit at the last threshold crossing.
    - {!simulate_fast} — the analytic effective-current path: the dead
      zone below threshold is skipped in closed form, a handful of Heun
      steps cover the ramp-active window, and once the input settles the
      remaining crossings are exact separable quadratures
      Δt = C·∫du/I(u) (3-point Gauss–Legendre per travel segment) —
      O(10) current evaluations per arc in total.

    The fast path is the default for Monte-Carlo sampling (it tracks the
    reference to ≪2% in delay and ≪1% in population mean); the reference
    remains the golden path that models are judged against. *)

type result = {
  delay : float;  (** 50%-to-50% propagation delay (s) *)
  output_slew : float;  (** full-swing-equivalent output ramp time (s) *)
}

type kernel =
  | Fast  (** analytic effective-current path ({!simulate_fast}) *)
  | Rk4  (** RK4 reference path ({!simulate}) *)
  | Auto
      (** {!simulate_fast}, falling back to {!simulate} when the 50%
          crossing lands inside the input ramp (the regime where the
          separable approximation is weakest) or the fast path fails *)

val kernel_name : kernel -> string
(** ["fast"], ["rk4"] or ["auto"] — the spelling used by [--kernel],
    [NSIGMA_KERNEL] and the .lvf cache header. *)

val kernel_of_string : string -> kernel
(** Inverse of {!kernel_name} (case-insensitive).
    @raise Failure on any other string. *)

val default_kernel : unit -> kernel
(** The kernel selected by the [NSIGMA_KERNEL] environment variable
    (read at call time, so a CLI flag can install itself); unset or
    empty means {!Fast}. *)

val simulate :
  ?steps_per_phase:int ->
  Nsigma_process.Technology.t ->
  Arc.t ->
  input_slew:float ->
  load_cap:float ->
  result
(** The RK4 reference.  [steps_per_phase] (default 16) controls
    integration resolution (the delay is converged to <0.01% at 15
    already): during the input ramp the step is
    min(ramp, output time-constant)/[steps_per_phase]; afterwards it
    adapts to the instantaneous slew rate so each step covers
    VDD/[steps_per_phase] of travel.  Threshold crossings are located
    with cubic-Hermite dense output and the integration stops at the
    last one.
    @raise Invalid_argument for non-positive slew or negative load.
    @raise Failure if the output cannot complete its transition — the
    message reports the slew, load and step count (a sign of a
    pathological variation sample; callers treat it as a timing
    failure). *)

val simulate_fast :
  Nsigma_process.Technology.t ->
  Arc.t ->
  input_slew:float ->
  load_cap:float ->
  result
(** The analytic effective-current path; same contract as {!simulate}
    (same exceptions, same measurement conventions), ~an order of
    magnitude fewer current evaluations. *)

val run :
  ?kernel:kernel ->
  Nsigma_process.Technology.t ->
  Arc.t ->
  input_slew:float ->
  load_cap:float ->
  result
(** Dispatch on [kernel] (default {!default_kernel}[ ()]). *)

val nominal_delay :
  ?kernel:kernel ->
  Nsigma_process.Technology.t ->
  Arc.t ->
  input_slew:float ->
  load_cap:float ->
  float
(** Convenience projection of {!run}. *)

val run_compiled :
  ?kernel:kernel ->
  Nsigma_process.Technology.t ->
  Arc.compiled ->
  input_slew:float ->
  load_cap:float ->
  result
(** {!run} taking the arc in precompiled form — the sampling hot path of
    the plan layer ({!Arc.skeleton}/{!Arc.fill}).  Bit-identical to {!run}
    on a compiled copy of the same arc, for every kernel: the loops hoist
    gate-invariant factors ([Arc.drive_settled], [Arc.set_gate]) and keep
    their state unboxed, but preserve the reference kernels' floating-
    point operation order exactly.  Allocation-free apart from one small
    scratch record per call (no per-step boxing). *)

(** {1 Batched fast kernel (SoA layer)}

    The fast kernel restructured sample-major → stage-major: a batch
    holds up to [capacity] samples' compiled constants column-wise
    ({!Arc.Batch}) plus all integration state in unboxed [float array]s,
    and {!Batch.eval} runs the three phases as fused loops over the
    whole population — one pass for the dead-zone skip, lockstep Heun
    rounds over a compacting active-index list for the ramp window
    (every active sample takes exactly one step per round, so the round
    index reproduces the scalar kernel's per-sample guard counter), one
    pass for the settled-phase quadrature.

    With [approx = false] each sample's floating-point operation
    sequence is the scalar {!run_compiled}[ ~kernel:Fast] path
    expression-for-expression, so results are {e bit-identical} to the
    per-sample loop (asserted by test_batch) — loop interchange alone
    never perturbs a sample's value path.  [approx = true] (the opt-in
    [--no-bit-identical] mode) swaps the libm transcendentals for
    {!Nsigma_stats.Fastmath}'s polynomial kernels (relative error
    ≤ 1e-7), which is where the batch layer's raw speedup comes from.

    Failed samples (ramp non-convergence, non-driving settled segment)
    are marked NaN instead of raising — matching how the planned
    per-sample loop maps [Failure] to NaN — with the same
    [kernel.fast.failed] accounting.  Batches are plain mutable scratch:
    not thread-safe, one per worker domain ([Executor.map_ranges]). *)

module Batch : sig
  type t

  val create : int -> t
  (** [create capacity] preallocates every column for [capacity] slots.
      @raise Invalid_argument if [capacity <= 0]. *)

  val capacity : t -> int

  val load :
    t -> int -> Arc.compiled -> input_slew:float -> load_cap:float -> unit
  (** Load one sample's operating point into a slot: snapshots the
      compiled constants (the record may be refilled afterwards) and the
      per-slot slew/load.
      @raise Invalid_argument for non-positive slew or negative load,
      with the scalar kernel's messages. *)

  val eval : ?approx:bool -> Nsigma_process.Technology.t -> t -> n:int -> unit
  (** Evaluate slots [0..n-1] with the staged kernel.  [approx] (default
      false) selects the polynomial transcendentals.  Results are read
      back with {!delay}/{!output_slew}; failed slots hold NaN.
      @raise Invalid_argument if [n] exceeds the batch capacity. *)

  val delay : t -> int -> float
  val output_slew : t -> int -> float

  val failed : t -> int -> bool
  (** Whether the slot's last {!eval} failed (its delay/slew are NaN). *)
end
