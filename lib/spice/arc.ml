module Technology = Nsigma_process.Technology
module Metrics = Nsigma_obs.Metrics

(* Plan-layer telemetry: skeleton compilation is the one-time cost, fill
   the per-sample cost.  Registered at module load so the keys appear
   (zero-valued) in every run report. *)
let t_plan_compile = Metrics.timer "plan.compile.seconds"
let t_plan_fill = Metrics.timer "plan.fill.seconds"
let m_plan_fills = Metrics.counter "plan.fills"

type pull = Pull_up | Pull_down

type t = {
  pull : pull;
  devices : Device.t array;
  parallel : int;
  switching : int;
  opposing : Device.t option;
  cap_intrinsic : float;
}

let make tech sample ~pull ~depth ~strength ?(parallel = 1) ?(switching = 0)
    ?(opposing_width_mult = 0.0) () =
  if depth <= 0 then invalid_arg "Arc.make: depth must be positive";
  if parallel <= 0 then invalid_arg "Arc.make: parallel must be positive";
  if switching < 0 || switching >= depth then
    invalid_arg "Arc.make: switching index out of range";
  let kind = match pull with Pull_up -> Device.Pmos | Pull_down -> Device.Nmos in
  let opposing_kind =
    match pull with Pull_up -> Device.Nmos | Pull_down -> Device.Pmos
  in
  let devices =
    Array.init depth (fun _ -> Device.make tech sample kind ~width_mult:strength)
  in
  let opposing =
    if opposing_width_mult > 0.0 then
      Some (Device.make tech sample opposing_kind ~width_mult:opposing_width_mult)
    else None
  in
  (* Drain parasitics: the output-side device of each parallel stack plus
     the opposing network's drains sit on the output node. *)
  let output_device = devices.(depth - 1) in
  let cap_intrinsic =
    (float_of_int parallel *. Device.drain_cap tech output_device)
    +. (match opposing with
       | Some d -> Device.drain_cap tech d
       | None -> 0.0)
  in
  { pull; devices; parallel; switching; opposing; cap_intrinsic }

(* Current of the series stack given the gate voltage of the switching
   device; the others are fully on.  [drop] is the total voltage across
   the stack; it divides evenly, and the source of device i sits i/n of
   the way up from the conducting rail. *)
let stack_current tech arc ~vswitch_gs ~vfull_gs ~drop =
  let n = Array.length arc.devices in
  let nf = float_of_int n in
  let vds = drop /. nf in
  if drop <= 0.0 then 0.0
  else begin
    let inv_sum = ref 0.0 in
    for i = 0 to n - 1 do
      (* Internal stack nodes stay near the conducting rail during the
         transition, so every device keeps its full gate drive; the
         drain-source drop is what divides across the stack. *)
      let vgs = if i = arc.switching then vswitch_gs else vfull_gs in
      let id = Device.current tech arc.devices.(i) ~vgs ~vds in
      inv_sum := !inv_sum +. (1.0 /. Float.max id 1e-15)
    done;
    float_of_int arc.parallel /. !inv_sum
  end

let current tech arc ~vin ~vout =
  let vdd = tech.Technology.vdd_nominal in
  let drive, short_circuit =
    match arc.pull with
    | Pull_down ->
      (* Output falls: NMOS stack conducts with gate at vin, drop = vout;
         the lumped PMOS (source at VDD, gate at vin) fights it. *)
      let drive =
        stack_current tech arc ~vswitch_gs:vin ~vfull_gs:vdd ~drop:vout
      in
      let sc =
        match arc.opposing with
        | Some p -> Device.current tech p ~vgs:(vdd -. vin) ~vds:(vdd -. vout)
        | None -> 0.0
      in
      (drive, sc)
    | Pull_up ->
      (* Output rises: PMOS stack conducts with source-referred gate drive
         VDD − vin, drop = VDD − vout; the lumped NMOS fights it. *)
      let drive =
        stack_current tech arc ~vswitch_gs:(vdd -. vin) ~vfull_gs:vdd
          ~drop:(vdd -. vout)
      in
      let sc =
        match arc.opposing with
        | Some n -> Device.current tech n ~vgs:vin ~vds:vout
        | None -> 0.0
      in
      (drive, sc)
  in
  Float.max 0.0 (drive -. short_circuit)

let input_cap tech arc = Device.gate_cap tech arc.devices.(arc.switching)

(* ----- compiled form ----- *)

(* Both pulls are the same ODE once expressed in (gate drive, travel):
   [gate] is the source-referred drive of the switching device (= vin for
   Pull_down, VDD − vin for Pull_up) and [travel] the distance the output
   has moved from its starting rail.  The stack drop is VDD − travel and
   divides evenly, so the per-device saturation and CLM terms factor out
   of the harmonic sum and the non-switching devices collapse into one
   precomputed constant [c_s_fixed] = Σ 1/(βWI_spec·f²) at full drive. *)
(* All-float record: stays flat (no per-field boxing), so refilling it in
   place per Monte-Carlo sample allocates nothing. *)
type compiled = {
  mutable c_vdd : float;
  mutable c_cap_intrinsic : float;
  mutable c_parallel : float;  (* parallel stack multiplicity *)
  mutable c_inv_depth : float;  (* 1/n: drop per series device *)
  mutable c_s_fixed : float;  (* harmonic weight of the fully-on devices *)
  mutable c_k_sw : float;  (* βWI_spec of the switching device *)
  mutable c_vth_sw : float;
  mutable c_inv_2nut : float;  (* 1/(2nU_T): inverse of twice the e-fold slope *)
  mutable c_nut : float;  (* nU_T *)
  mutable c_inv_ut : float;
  mutable c_inv_va : float;
  mutable c_k_opp : float;  (* βWI_spec of the opposing device; 0 when absent *)
  mutable c_vth_opp : float;
  (* Full-drive (gate = VDD) caches.  [c_den_on] is the settled harmonic
     denominator s_fixed + 1/max(k_sw·f_on², ·) and [c_kff_opp] the
     opposing prefactor k_opp·fo², both exactly the subexpressions
     [drive] evaluates at gate = VDD — hoisting them is a pure common-
     subexpression move, so [drive_settled] stays bit-identical. *)
  mutable c_den_on : float;
  mutable c_kff_opp : float;
  (* Per-gate caches written by [set_gate] and read by [drive_gated];
     invalidated (nan) whenever the compiled constants change. *)
  mutable c_g_den : float;
  mutable c_g_kff : float;
}

let compile_into tech arc c =
  let vdd = tech.Technology.vdd_nominal in
  let ut = Technology.thermal_voltage tech in
  let nut = tech.Technology.subthreshold_n *. ut in
  let inv_2nut = 1.0 /. (2.0 *. nut) in
  let s_fixed = ref 0.0 in
  Array.iteri
    (fun i d ->
      if i <> arc.switching then begin
        let f = Nsigma_stats.Special.log1p_exp ((vdd -. d.Device.vth) *. inv_2nut) in
        s_fixed := !s_fixed +. (1.0 /. Float.max (Device.i_factor tech d *. f *. f) 1e-30)
      end)
    arc.devices;
  let sw = arc.devices.(arc.switching) in
  let k_opp, vth_opp =
    match arc.opposing with
    | Some d -> (Device.i_factor tech d, d.Device.vth)
    | None -> (0.0, 0.0)
  in
  let k_sw = Device.i_factor tech sw in
  let vth_sw = sw.Device.vth in
  c.c_vdd <- vdd;
  c.c_cap_intrinsic <- arc.cap_intrinsic;
  c.c_parallel <- float_of_int arc.parallel;
  c.c_inv_depth <- 1.0 /. float_of_int (Array.length arc.devices);
  c.c_s_fixed <- !s_fixed;
  c.c_k_sw <- k_sw;
  c.c_vth_sw <- vth_sw;
  c.c_inv_2nut <- inv_2nut;
  c.c_nut <- nut;
  c.c_inv_ut <- 1.0 /. ut;
  c.c_inv_va <- 1.0 /. tech.Technology.early_voltage;
  c.c_k_opp <- k_opp;
  c.c_vth_opp <- vth_opp;
  let f_on = Nsigma_stats.Special.log1p_exp ((vdd -. vth_sw) *. inv_2nut) in
  c.c_den_on <- !s_fixed +. (1.0 /. Float.max (k_sw *. f_on *. f_on) 1e-300);
  (if k_opp = 0.0 then c.c_kff_opp <- 0.0
   else begin
     let fo =
       Nsigma_stats.Special.log1p_exp ((vdd -. vdd -. vth_opp) *. inv_2nut)
     in
     c.c_kff_opp <- k_opp *. fo *. fo
   end);
  c.c_g_den <- Float.nan;
  c.c_g_kff <- Float.nan

let compile tech arc =
  let c =
    {
      c_vdd = 0.0;
      c_cap_intrinsic = 0.0;
      c_parallel = 0.0;
      c_inv_depth = 0.0;
      c_s_fixed = 0.0;
      c_k_sw = 0.0;
      c_vth_sw = 0.0;
      c_inv_2nut = 0.0;
      c_nut = 0.0;
      c_inv_ut = 0.0;
      c_inv_va = 0.0;
      c_k_opp = 0.0;
      c_vth_opp = 0.0;
      c_den_on = 0.0;
      c_kff_opp = 0.0;
      c_g_den = Float.nan;
      c_g_kff = Float.nan;
    }
  in
  compile_into tech arc c;
  c

let[@inline] vth_sw_of c = c.c_vth_sw
let[@inline] nut_of c = c.c_nut

let[@inline] cap_intrinsic_of c = c.c_cap_intrinsic

let drive c ~gate ~travel =
  let drop = c.c_vdd -. travel in
  if drop <= 0.0 then 0.0
  else begin
    let vds = drop *. c.c_inv_depth in
    let sat = 1.0 -. exp (-.vds *. c.c_inv_ut) in
    let clm = 1.0 +. (vds *. c.c_inv_va) in
    let f = Nsigma_stats.Special.log1p_exp ((gate -. c.c_vth_sw) *. c.c_inv_2nut) in
    let stack =
      c.c_parallel *. sat *. clm
      /. (c.c_s_fixed +. (1.0 /. Float.max (c.c_k_sw *. f *. f) 1e-300))
    in
    let short_circuit =
      if c.c_k_opp = 0.0 || travel <= 0.0 then 0.0
      else begin
        let fo =
          Nsigma_stats.Special.log1p_exp
            ((c.c_vdd -. gate -. c.c_vth_opp) *. c.c_inv_2nut)
        in
        c.c_k_opp *. fo *. fo
        *. (1.0 -. exp (-.travel *. c.c_inv_ut))
        *. (1.0 +. (travel *. c.c_inv_va))
      end
    in
    Float.max 0.0 (stack -. short_circuit)
  end

(* [Stdlib.Float.max]/[min] route through [signbit] C calls to get the
   NaN and signed-zero cases right; at ~6 uses per RK4 step that is real
   time on the hot path.  The operands here are provably never NaN (all
   inputs are finite and no inf−inf or 0·inf form is reachable) and the
   literals are +0.0, so a plain comparison returns bit-identical
   values. *)
let[@inline] max_pos0 x = if x > 0.0 then x else 0.0
let[@inline] clamp_den x = if x >= 1e-300 then x else 1e-300

(* [drive c ~gate:c.c_vdd ~travel] with the gate-dependent factors taken
   from the caches [compile_into] fills.  The groupings mirror [drive]
   exactly — stack = ((parallel·sat)·clm)/den and short-circuit =
   ((((k·fo)·fo)·e1)·e2) — so the results are bit-identical. *)
let[@inline] drive_settled c ~travel =
  let drop = c.c_vdd -. travel in
  if drop <= 0.0 then 0.0
  else begin
    let vds = drop *. c.c_inv_depth in
    let sat = 1.0 -. exp (-.vds *. c.c_inv_ut) in
    let clm = 1.0 +. (vds *. c.c_inv_va) in
    let stack = c.c_parallel *. sat *. clm /. c.c_den_on in
    let short_circuit =
      if c.c_k_opp = 0.0 || travel <= 0.0 then 0.0
      else
        c.c_kff_opp
        *. (1.0 -. exp (-.travel *. c.c_inv_ut))
        *. (1.0 +. (travel *. c.c_inv_va))
    in
    max_pos0 (stack -. short_circuit)
  end

let[@inline] set_gate c ~gate =
  let f = Nsigma_stats.Special.log1p_exp ((gate -. c.c_vth_sw) *. c.c_inv_2nut) in
  c.c_g_den <- c.c_s_fixed +. (1.0 /. clamp_den (c.c_k_sw *. f *. f));
  if c.c_k_opp = 0.0 then c.c_g_kff <- 0.0
  else begin
    let fo =
      Nsigma_stats.Special.log1p_exp
        ((c.c_vdd -. gate -. c.c_vth_opp) *. c.c_inv_2nut)
    in
    c.c_g_kff <- c.c_k_opp *. fo *. fo
  end

let[@inline] drive_gated c ~travel =
  let drop = c.c_vdd -. travel in
  if drop <= 0.0 then 0.0
  else begin
    let vds = drop *. c.c_inv_depth in
    let sat = 1.0 -. exp (-.vds *. c.c_inv_ut) in
    let clm = 1.0 +. (vds *. c.c_inv_va) in
    let stack = c.c_parallel *. sat *. clm /. c.c_g_den in
    let short_circuit =
      if c.c_k_opp = 0.0 || travel <= 0.0 then 0.0
      else
        c.c_g_kff
        *. (1.0 -. exp (-.travel *. c.c_inv_ut))
        *. (1.0 +. (travel *. c.c_inv_va))
    in
    max_pos0 (stack -. short_circuit)
  end

(* ----- precompiled sampling plans ----- *)

type skeleton = { sk_arc : t; sk_compiled : compiled }

let skeleton tech ~pull ~depth ~strength ?(parallel = 1) ?(switching = 0)
    ?(opposing_width_mult = 0.0) () =
  if depth <= 0 then invalid_arg "Arc.skeleton: depth must be positive";
  if parallel <= 0 then invalid_arg "Arc.skeleton: parallel must be positive";
  if switching < 0 || switching >= depth then
    invalid_arg "Arc.skeleton: switching index out of range";
  let measuring = Metrics.enabled () in
  let t0 = if measuring then Metrics.now () else 0.0 in
  let kind = match pull with Pull_up -> Device.Pmos | Pull_down -> Device.Nmos in
  let opposing_kind =
    match pull with Pull_up -> Device.Nmos | Pull_down -> Device.Pmos
  in
  (* [Device.nominal] draws nothing, so building skeletons on worker
     domains cannot race on a shared RNG; [fill] supplies the variation. *)
  let devices =
    Array.init depth (fun _ -> Device.nominal tech kind ~width_mult:strength)
  in
  let opposing =
    if opposing_width_mult > 0.0 then
      Some (Device.nominal tech opposing_kind ~width_mult:opposing_width_mult)
    else None
  in
  let output_device = devices.(depth - 1) in
  (* Widths are variation-independent, so this matches [make] exactly. *)
  let cap_intrinsic =
    (float_of_int parallel *. Device.drain_cap tech output_device)
    +. (match opposing with
       | Some d -> Device.drain_cap tech d
       | None -> 0.0)
  in
  let arc = { pull; devices; parallel; switching; opposing; cap_intrinsic } in
  let sk = { sk_arc = arc; sk_compiled = compile tech arc } in
  if measuring then Metrics.add_time t_plan_compile (Metrics.now () -. t0);
  sk

let fill tech sk sample =
  let measuring = Metrics.enabled () in
  let t0 = if measuring then Metrics.now () else 0.0 in
  let arc = sk.sk_arc in
  let devices = arc.devices in
  (* Same draw order as [make]: stack devices rail-side first (ΔVth then
     Δβ each), then the opposing device. *)
  for i = 0 to Array.length devices - 1 do
    Device.refresh tech sample devices.(i)
  done;
  (match arc.opposing with
  | Some d -> Device.refresh tech sample d
  | None -> ());
  compile_into tech arc sk.sk_compiled;
  if measuring then begin
    Metrics.incr m_plan_fills;
    Metrics.add_time t_plan_fill (Metrics.now () -. t0)
  end

let skeleton_arc sk = sk.sk_arc
let skeleton_compiled sk = sk.sk_compiled

(* [fill] consumes exactly two local deviates per device (ΔVth, Δβ —
   [Device.refresh]), stack first then the opposing device. *)
let skeleton_local_dim sk =
  let arc = sk.sk_arc in
  2 * (Array.length arc.devices + (match arc.opposing with Some _ -> 1 | None -> 0))

(* ----- structure-of-arrays batch view ----- *)

(* One [compiled] record per sample would spread a batch's constants
   over the heap; the SoA view packs each constant into its own unboxed
   float array so the fused stage loops of [Cell_sim.Batch] stream
   through contiguous memory.  The indexed drive kernels below are the
   scalar [drive]/[drive_settled] bodies verbatim (same expression
   grouping, same libm calls), so evaluating slot [i] is bit-identical
   to evaluating the [compiled] record it was loaded from; the [_approx]
   variants substitute the [Fastmath] polynomial kernels and are the
   only source of numeric divergence in the batch layer. *)
module Batch = struct
  type batch = {
    capacity : int;
    vdd : float array;
    cap_intrinsic : float array;
    parallel : float array;
    inv_depth : float array;
    s_fixed : float array;
    k_sw : float array;
    vth_sw : float array;
    inv_2nut : float array;
    nut : float array;
    inv_ut : float array;
    inv_va : float array;
    k_opp : float array;
    vth_opp : float array;
    den_on : float array;
    kff_opp : float array;
  }

  let create capacity =
    if capacity <= 0 then
      invalid_arg "Arc.Batch.create: capacity must be positive";
    let mk () = Array.make capacity 0.0 in
    {
      capacity;
      vdd = mk ();
      cap_intrinsic = mk ();
      parallel = mk ();
      inv_depth = mk ();
      s_fixed = mk ();
      k_sw = mk ();
      vth_sw = mk ();
      inv_2nut = mk ();
      nut = mk ();
      inv_ut = mk ();
      inv_va = mk ();
      k_opp = mk ();
      vth_opp = mk ();
      den_on = mk ();
      kff_opp = mk ();
    }

  let capacity t = t.capacity

  (* Snapshot the current constants of [c] into slot [i]; the caller is
     then free to refill [c] for the next sample. *)
  let load t i c =
    if i < 0 || i >= t.capacity then
      invalid_arg "Arc.Batch.load: slot out of range";
    Array.unsafe_set t.vdd i c.c_vdd;
    Array.unsafe_set t.cap_intrinsic i c.c_cap_intrinsic;
    Array.unsafe_set t.parallel i c.c_parallel;
    Array.unsafe_set t.inv_depth i c.c_inv_depth;
    Array.unsafe_set t.s_fixed i c.c_s_fixed;
    Array.unsafe_set t.k_sw i c.c_k_sw;
    Array.unsafe_set t.vth_sw i c.c_vth_sw;
    Array.unsafe_set t.inv_2nut i c.c_inv_2nut;
    Array.unsafe_set t.nut i c.c_nut;
    Array.unsafe_set t.inv_ut i c.c_inv_ut;
    Array.unsafe_set t.inv_va i c.c_inv_va;
    Array.unsafe_set t.k_opp i c.c_k_opp;
    Array.unsafe_set t.vth_opp i c.c_vth_opp;
    Array.unsafe_set t.den_on i c.c_den_on;
    Array.unsafe_set t.kff_opp i c.c_kff_opp

  let[@inline] cap_intrinsic t i = (Array.unsafe_get t.cap_intrinsic i)
  let[@inline] nut t i = (Array.unsafe_get t.nut i)
  let[@inline] vth_sw t i = (Array.unsafe_get t.vth_sw i)

  (* [drive] on slot [i]: expression-for-expression the scalar body. *)
  let[@inline always] drive t i ~gate ~travel =
    let drop = (Array.unsafe_get t.vdd i) -. travel in
    if drop <= 0.0 then 0.0
    else begin
      let vds = drop *. (Array.unsafe_get t.inv_depth i) in
      let sat = 1.0 -. exp (-.vds *. (Array.unsafe_get t.inv_ut i)) in
      let clm = 1.0 +. (vds *. (Array.unsafe_get t.inv_va i)) in
      let f =
        Nsigma_stats.Special.log1p_exp
          ((gate -. (Array.unsafe_get t.vth_sw i)) *. (Array.unsafe_get t.inv_2nut i))
      in
      let stack =
        (Array.unsafe_get t.parallel i) *. sat *. clm
        /. ((Array.unsafe_get t.s_fixed i) +. (1.0 /. Float.max ((Array.unsafe_get t.k_sw i) *. f *. f) 1e-300))
      in
      let short_circuit =
        if (Array.unsafe_get t.k_opp i) = 0.0 || travel <= 0.0 then 0.0
        else begin
          let fo =
            Nsigma_stats.Special.log1p_exp
              (((Array.unsafe_get t.vdd i) -. gate -. (Array.unsafe_get t.vth_opp i)) *. (Array.unsafe_get t.inv_2nut i))
          in
          (Array.unsafe_get t.k_opp i) *. fo *. fo
          *. (1.0 -. exp (-.travel *. (Array.unsafe_get t.inv_ut i)))
          *. (1.0 +. (travel *. (Array.unsafe_get t.inv_va i)))
        end
      in
      Float.max 0.0 (stack -. short_circuit)
    end

  (* [drive_settled] on slot [i]: the scalar body verbatim. *)
  let[@inline always] drive_settled t i ~travel =
    let drop = (Array.unsafe_get t.vdd i) -. travel in
    if drop <= 0.0 then 0.0
    else begin
      let vds = drop *. (Array.unsafe_get t.inv_depth i) in
      let sat = 1.0 -. exp (-.vds *. (Array.unsafe_get t.inv_ut i)) in
      let clm = 1.0 +. (vds *. (Array.unsafe_get t.inv_va i)) in
      let stack = (Array.unsafe_get t.parallel i) *. sat *. clm /. (Array.unsafe_get t.den_on i) in
      let short_circuit =
        if (Array.unsafe_get t.k_opp i) = 0.0 || travel <= 0.0 then 0.0
        else
          (Array.unsafe_get t.kff_opp i)
          *. (1.0 -. exp (-.travel *. (Array.unsafe_get t.inv_ut i)))
          *. (1.0 +. (travel *. (Array.unsafe_get t.inv_va i)))
      in
      max_pos0 (stack -. short_circuit)
    end

  (* Approximate variants: identical structure with the polynomial
     exp/log1p_exp kernels (≤1e-7 relative error — see [Fastmath]). *)
  let[@inline always] drive_approx t i ~gate ~travel =
    let drop = (Array.unsafe_get t.vdd i) -. travel in
    if drop <= 0.0 then 0.0
    else begin
      let vds = drop *. (Array.unsafe_get t.inv_depth i) in
      let sat = 1.0 -. Nsigma_stats.Fastmath.exp (-.vds *. (Array.unsafe_get t.inv_ut i)) in
      let clm = 1.0 +. (vds *. (Array.unsafe_get t.inv_va i)) in
      let f =
        Nsigma_stats.Fastmath.log1p_exp
          ((gate -. (Array.unsafe_get t.vth_sw i)) *. (Array.unsafe_get t.inv_2nut i))
      in
      let stack =
        (Array.unsafe_get t.parallel i) *. sat *. clm
        /. ((Array.unsafe_get t.s_fixed i) +. (1.0 /. Float.max ((Array.unsafe_get t.k_sw i) *. f *. f) 1e-300))
      in
      let short_circuit =
        if (Array.unsafe_get t.k_opp i) = 0.0 || travel <= 0.0 then 0.0
        else begin
          let fo =
            Nsigma_stats.Fastmath.log1p_exp
              (((Array.unsafe_get t.vdd i) -. gate -. (Array.unsafe_get t.vth_opp i)) *. (Array.unsafe_get t.inv_2nut i))
          in
          (Array.unsafe_get t.k_opp i) *. fo *. fo
          *. (1.0 -. Nsigma_stats.Fastmath.exp (-.travel *. (Array.unsafe_get t.inv_ut i)))
          *. (1.0 +. (travel *. (Array.unsafe_get t.inv_va i)))
        end
      in
      Float.max 0.0 (stack -. short_circuit)
    end

  let[@inline always] drive_settled_approx t i ~travel =
    let drop = (Array.unsafe_get t.vdd i) -. travel in
    if drop <= 0.0 then 0.0
    else begin
      let vds = drop *. (Array.unsafe_get t.inv_depth i) in
      let sat = 1.0 -. Nsigma_stats.Fastmath.exp (-.vds *. (Array.unsafe_get t.inv_ut i)) in
      let clm = 1.0 +. (vds *. (Array.unsafe_get t.inv_va i)) in
      let stack = (Array.unsafe_get t.parallel i) *. sat *. clm /. (Array.unsafe_get t.den_on i) in
      let short_circuit =
        if (Array.unsafe_get t.k_opp i) = 0.0 || travel <= 0.0 then 0.0
        else
          (Array.unsafe_get t.kff_opp i)
          *. (1.0 -. Nsigma_stats.Fastmath.exp (-.travel *. (Array.unsafe_get t.inv_ut i)))
          *. (1.0 +. (travel *. (Array.unsafe_get t.inv_va i)))
      in
      max_pos0 (stack -. short_circuit)
    end
end
