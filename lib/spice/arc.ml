module Technology = Nsigma_process.Technology

type pull = Pull_up | Pull_down

type t = {
  pull : pull;
  devices : Device.t array;
  parallel : int;
  switching : int;
  opposing : Device.t option;
  cap_intrinsic : float;
}

let make tech sample ~pull ~depth ~strength ?(parallel = 1) ?(switching = 0)
    ?(opposing_width_mult = 0.0) () =
  if depth <= 0 then invalid_arg "Arc.make: depth must be positive";
  if parallel <= 0 then invalid_arg "Arc.make: parallel must be positive";
  if switching < 0 || switching >= depth then
    invalid_arg "Arc.make: switching index out of range";
  let kind = match pull with Pull_up -> Device.Pmos | Pull_down -> Device.Nmos in
  let opposing_kind =
    match pull with Pull_up -> Device.Nmos | Pull_down -> Device.Pmos
  in
  let devices =
    Array.init depth (fun _ -> Device.make tech sample kind ~width_mult:strength)
  in
  let opposing =
    if opposing_width_mult > 0.0 then
      Some (Device.make tech sample opposing_kind ~width_mult:opposing_width_mult)
    else None
  in
  (* Drain parasitics: the output-side device of each parallel stack plus
     the opposing network's drains sit on the output node. *)
  let output_device = devices.(depth - 1) in
  let cap_intrinsic =
    (float_of_int parallel *. Device.drain_cap tech output_device)
    +. (match opposing with
       | Some d -> Device.drain_cap tech d
       | None -> 0.0)
  in
  { pull; devices; parallel; switching; opposing; cap_intrinsic }

(* Current of the series stack given the gate voltage of the switching
   device; the others are fully on.  [drop] is the total voltage across
   the stack; it divides evenly, and the source of device i sits i/n of
   the way up from the conducting rail. *)
let stack_current tech arc ~vswitch_gs ~vfull_gs ~drop =
  let n = Array.length arc.devices in
  let nf = float_of_int n in
  let vds = drop /. nf in
  if drop <= 0.0 then 0.0
  else begin
    let inv_sum = ref 0.0 in
    for i = 0 to n - 1 do
      (* Internal stack nodes stay near the conducting rail during the
         transition, so every device keeps its full gate drive; the
         drain-source drop is what divides across the stack. *)
      let vgs = if i = arc.switching then vswitch_gs else vfull_gs in
      let id = Device.current tech arc.devices.(i) ~vgs ~vds in
      inv_sum := !inv_sum +. (1.0 /. Float.max id 1e-15)
    done;
    float_of_int arc.parallel /. !inv_sum
  end

let current tech arc ~vin ~vout =
  let vdd = tech.Technology.vdd_nominal in
  let drive, short_circuit =
    match arc.pull with
    | Pull_down ->
      (* Output falls: NMOS stack conducts with gate at vin, drop = vout;
         the lumped PMOS (source at VDD, gate at vin) fights it. *)
      let drive =
        stack_current tech arc ~vswitch_gs:vin ~vfull_gs:vdd ~drop:vout
      in
      let sc =
        match arc.opposing with
        | Some p -> Device.current tech p ~vgs:(vdd -. vin) ~vds:(vdd -. vout)
        | None -> 0.0
      in
      (drive, sc)
    | Pull_up ->
      (* Output rises: PMOS stack conducts with source-referred gate drive
         VDD − vin, drop = VDD − vout; the lumped NMOS fights it. *)
      let drive =
        stack_current tech arc ~vswitch_gs:(vdd -. vin) ~vfull_gs:vdd
          ~drop:(vdd -. vout)
      in
      let sc =
        match arc.opposing with
        | Some n -> Device.current tech n ~vgs:vin ~vds:vout
        | None -> 0.0
      in
      (drive, sc)
  in
  Float.max 0.0 (drive -. short_circuit)

let input_cap tech arc = Device.gate_cap tech arc.devices.(arc.switching)

(* ----- compiled form ----- *)

(* Both pulls are the same ODE once expressed in (gate drive, travel):
   [gate] is the source-referred drive of the switching device (= vin for
   Pull_down, VDD − vin for Pull_up) and [travel] the distance the output
   has moved from its starting rail.  The stack drop is VDD − travel and
   divides evenly, so the per-device saturation and CLM terms factor out
   of the harmonic sum and the non-switching devices collapse into one
   precomputed constant [c_s_fixed] = Σ 1/(βWI_spec·f²) at full drive. *)
type compiled = {
  c_vdd : float;
  c_cap_intrinsic : float;
  c_parallel : float;  (* parallel stack multiplicity *)
  c_inv_depth : float;  (* 1/n: drop per series device *)
  c_s_fixed : float;  (* harmonic weight of the fully-on devices *)
  c_k_sw : float;  (* βWI_spec of the switching device *)
  c_vth_sw : float;
  c_inv_2nut : float;  (* 1/(2nU_T): inverse of twice the e-fold slope *)
  c_nut : float;  (* nU_T *)
  c_inv_ut : float;
  c_inv_va : float;
  c_k_opp : float;  (* βWI_spec of the opposing device; 0 when absent *)
  c_vth_opp : float;
}

let compile tech arc =
  let vdd = tech.Technology.vdd_nominal in
  let ut = Technology.thermal_voltage tech in
  let nut = tech.Technology.subthreshold_n *. ut in
  let inv_2nut = 1.0 /. (2.0 *. nut) in
  let s_fixed = ref 0.0 in
  Array.iteri
    (fun i d ->
      if i <> arc.switching then begin
        let f = Nsigma_stats.Special.log1p_exp ((vdd -. d.Device.vth) *. inv_2nut) in
        s_fixed := !s_fixed +. (1.0 /. Float.max (Device.i_factor tech d *. f *. f) 1e-30)
      end)
    arc.devices;
  let sw = arc.devices.(arc.switching) in
  let k_opp, vth_opp =
    match arc.opposing with
    | Some d -> (Device.i_factor tech d, d.Device.vth)
    | None -> (0.0, 0.0)
  in
  {
    c_vdd = vdd;
    c_cap_intrinsic = arc.cap_intrinsic;
    c_parallel = float_of_int arc.parallel;
    c_inv_depth = 1.0 /. float_of_int (Array.length arc.devices);
    c_s_fixed = !s_fixed;
    c_k_sw = Device.i_factor tech sw;
    c_vth_sw = sw.Device.vth;
    c_inv_2nut = inv_2nut;
    c_nut = nut;
    c_inv_ut = 1.0 /. ut;
    c_inv_va = 1.0 /. tech.Technology.early_voltage;
    c_k_opp = k_opp;
    c_vth_opp = vth_opp;
  }

let cap_intrinsic_of c = c.c_cap_intrinsic

let drive c ~gate ~travel =
  let drop = c.c_vdd -. travel in
  if drop <= 0.0 then 0.0
  else begin
    let vds = drop *. c.c_inv_depth in
    let sat = 1.0 -. exp (-.vds *. c.c_inv_ut) in
    let clm = 1.0 +. (vds *. c.c_inv_va) in
    let f = Nsigma_stats.Special.log1p_exp ((gate -. c.c_vth_sw) *. c.c_inv_2nut) in
    let stack =
      c.c_parallel *. sat *. clm
      /. (c.c_s_fixed +. (1.0 /. Float.max (c.c_k_sw *. f *. f) 1e-300))
    in
    let short_circuit =
      if c.c_k_opp = 0.0 || travel <= 0.0 then 0.0
      else begin
        let fo =
          Nsigma_stats.Special.log1p_exp
            ((c.c_vdd -. gate -. c.c_vth_opp) *. c.c_inv_2nut)
        in
        c.c_k_opp *. fo *. fo
        *. (1.0 -. exp (-.travel *. c.c_inv_ut))
        *. (1.0 +. (travel *. c.c_inv_va))
      end
    in
    Float.max 0.0 (stack -. short_circuit)
  end
