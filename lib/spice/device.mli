(** Single-transistor drain-current model.

    An EKV-style all-region expression is used because it stays smooth and
    accurate from sub-threshold through strong inversion — exactly the
    range a 0.5–0.8 V sweep of a 0.37 V-threshold device covers:

      I_D = β · W · I_spec · [ln(1 + exp((V_GS − V_th)/(2·n·U_T)))]²
            · (1 − exp(−V_DS/U_T)) · (1 + V_DS/V_A)

    The logarithmic-square term reduces to the classical square law in
    strong inversion and to exp((V_GS−V_th)/(n·U_T)) below threshold,
    which is what makes near-threshold delay distributions lognormal-like
    and right-skewed under Gaussian V_th variation. *)

type kind = Nmos | Pmos

type t = {
  kind : kind;
  width : float;  (** electrical width (m), already strength-scaled *)
  mutable vth : float;  (** threshold including global+local shifts (V) *)
  mutable beta : float;  (** relative current factor including variation *)
}
(** [vth] and [beta] are the only sample-dependent fields; they are mutable
    so a precompiled sampling plan ({!Arc.skeleton}) can refresh a scratch
    device in place instead of rebuilding it per Monte-Carlo sample. *)

val make :
  Nsigma_process.Technology.t ->
  Nsigma_process.Variation.t ->
  kind ->
  width_mult:float ->
  t
(** Build a device of [width_mult] × unit width, drawing its local
    mismatch (ΔVth, Δβ/β Pelgrom-scaled by the actual width) from the
    variation sample and adding the sample's global shifts. *)

val nominal : Nsigma_process.Technology.t -> kind -> width_mult:float -> t
(** Same device without any variation.  Draws nothing from any RNG, so it
    is safe to call concurrently from worker domains (plan compilation). *)

val refresh : Nsigma_process.Technology.t -> Nsigma_process.Variation.t -> t -> unit
(** Overwrite [vth]/[beta] with a fresh draw from [sample], exactly as
    {!make} would compute them (two local-mismatch draws, ΔVth then Δβ —
    the draw order is part of the determinism contract).  [make] is
    [nominal] + [refresh], so a refreshed scratch device is bit-identical
    to a freshly built one. *)

val i_factor : Nsigma_process.Technology.t -> t -> float
(** β · W · I_spec — the bias-independent current prefactor.  Exposed so
    per-arc compiled kernels ({!Arc.compile}) can hoist it out of their
    inner loops; [current] multiplies exactly this factor by the
    bias-dependent terms. *)

val current :
  Nsigma_process.Technology.t -> t -> vgs:float -> vds:float -> float
(** Drain current (A); both voltages are magnitudes w.r.t. the source
    (pass source-referred values for PMOS too).  Clamps to 0 for
    non-positive [vds]. *)

val gate_cap : Nsigma_process.Technology.t -> t -> float
(** Gate capacitance (F) = width · C_g/width. *)

val drain_cap : Nsigma_process.Technology.t -> t -> float
(** Drain junction capacitance (F). *)
