module Technology = Nsigma_process.Technology
module Variation = Nsigma_process.Variation

type kind = Nmos | Pmos

type t = { kind : kind; width : float; mutable vth : float; mutable beta : float }

let base_width (tech : Technology.t) = function
  | Nmos -> tech.width_n
  | Pmos -> tech.width_p

let base_vth (tech : Technology.t) = function
  | Nmos -> tech.vth0_n
  | Pmos -> tech.vth0_p

let refresh tech sample d =
  let global_vth =
    match d.kind with
    | Nmos -> sample.Variation.global.dvth_n
    | Pmos -> sample.Variation.global.dvth_p
  in
  let vth =
    base_vth tech d.kind +. global_vth
    +. Variation.local_dvth sample tech ~width:d.width
  in
  let beta =
    (1.0 +. sample.Variation.global.dbeta)
    *. (1.0 +. Variation.local_dbeta sample tech ~width:d.width)
  in
  (* β is a physical (positive) factor; extreme tails are clipped. *)
  d.vth <- Float.max 0.05 vth;
  d.beta <- Float.max 0.1 beta

let nominal tech kind ~width_mult =
  {
    kind;
    width = base_width tech kind *. width_mult;
    vth = base_vth tech kind;
    beta = 1.0;
  }

let make tech sample kind ~width_mult =
  let d = nominal tech kind ~width_mult in
  refresh tech sample d;
  d

let i_spec (tech : Technology.t) = function
  | Nmos -> tech.i_spec_n
  | Pmos -> tech.i_spec_p

let i_factor tech d = d.beta *. d.width *. i_spec tech d.kind

let current (tech : Technology.t) d ~vgs ~vds =
  if vds <= 0.0 then 0.0
  else begin
    let ut = Technology.thermal_voltage tech in
    let n = tech.subthreshold_n in
    let x = (vgs -. d.vth) /. (2.0 *. n *. ut) in
    let f = Nsigma_stats.Special.log1p_exp x in
    let saturation = 1.0 -. exp (-.vds /. ut) in
    let clm = 1.0 +. (vds /. tech.early_voltage) in
    i_factor tech d *. f *. f *. saturation *. clm
  end

let gate_cap (tech : Technology.t) d = d.width *. tech.cap_gate_per_width

let drain_cap (tech : Technology.t) d = d.width *. tech.cap_drain_per_width
