(** Typed netlist edits — the unit of incremental re-timing.

    An edit is a small local change to an elaborated design: resizing a
    gate to another drive strength of the same logic kind, scaling a
    wire's R/C geometry (a routing change), or bumping the capacitance
    at one sink pin (an ECO load change).  Each edit knows exactly
    which nets it invalidates, which is what lets the incremental
    engine re-time only the affected fan-out cone.

    Edits are validated against a netlist before application; malformed
    or dangling edits raise {!Edit_error} with a human-readable message
    (the CLI maps these to exit 2).  The JSON-lines codec below is the
    on-disk edit-script format consumed by [nsigma retime]. *)

type t =
  | Swap_cell of { gate : int; cell : Nsigma_liberty.Cell.t }
      (** Replace [gate]'s cell with another cell of the {e same logic
          kind} (same footprint: pin count and function are preserved,
          only the drive strength and pin caps change). *)
  | Scale_wire of { net : int; r_scale : float; c_scale : float }
      (** Multiply every segment resistance of [net]'s RC tree by
          [r_scale] (> 0, resistances must stay positive) and every node
          capacitance by [c_scale] (>= 0). *)
  | Bump_sink_load of { net : int; sink : int; delta_cap : float }
      (** Add [delta_cap] farads at the tap of [net]'s [sink]-th fanout
          (gate pins first, then primary-output loads, in
          {!Netlist.fanouts_of} order).  Negative deltas are legal as
          long as the tap capacitance stays non-negative. *)

exception Edit_error of string
(** Malformed edit: unknown net/gate/cell, footprint mismatch,
    non-finite or out-of-domain numbers, or unparseable JSON. *)

val validate : Netlist.t -> t -> unit
(** Check an edit against the netlist it will be applied to.
    @raise Edit_error if the edit is ill-formed. *)

val invalidated : Netlist.t -> t -> int list
(** The nets whose arrival times (and cached parasitics) the edit
    invalidates, sorted and deduplicated: a cell swap invalidates its
    output net {e and} every input net (pin caps load the input wires);
    wire and sink-load edits invalidate just their net.  Downstream
    cone expansion is the incremental engine's job, not the edit's. *)

val apply_netlist : Netlist.t -> t -> unit
(** Apply the netlist-structural part of a {e validated} edit in place
    (only {!Swap_cell} mutates the netlist; parasitic edits are applied
    by the design layer). *)

val describe : Netlist.t -> t -> string
(** One-line human-readable rendering, using net/gate names. *)

(** {2 JSON-lines codec}

    One flat JSON object per line.  Nets and gates may be referenced by
    name or by numeric index; capacitances are in femtofarads:

    {v
    {"op": "swap_cell", "gate": "g42", "cell": "NAND2X4"}
    {"op": "scale_wire", "net": "n17", "r": 1.25, "c": 0.8}
    {"op": "bump_sink_load", "net": "n17", "sink": 0, "delta_ff": 1.5}
    v} *)

val of_json : Netlist.t -> string -> t
(** Parse one edit-script line (resolving names against the netlist).
    @raise Edit_error on malformed JSON or unknown references. *)

val to_json : Netlist.t -> t -> string
(** Render an edit as one edit-script line (inverse of {!of_json}). *)
