module Cell = Nsigma_liberty.Cell

type t =
  | Swap_cell of { gate : int; cell : Cell.t }
  | Scale_wire of { net : int; r_scale : float; c_scale : float }
  | Bump_sink_load of { net : int; sink : int; delta_cap : float }

exception Edit_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Edit_error s)) fmt

let check_net (nl : Netlist.t) net =
  if net < 0 || net >= nl.n_nets then
    fail "net %d out of range for circuit %S (%d nets)" net nl.name nl.n_nets

let check_finite what v =
  if not (Float.is_finite v) then fail "%s must be finite, got %g" what v

let validate (nl : Netlist.t) = function
  | Swap_cell { gate; cell } ->
    if gate < 0 || gate >= Array.length nl.gates then
      fail "gate %d out of range for circuit %S (%d gates)" gate nl.name
        (Array.length nl.gates);
    let old = nl.gates.(gate).Netlist.cell in
    if cell.Cell.kind <> old.Cell.kind then
      fail
        "cell %s does not fit the footprint of gate %S (%s): swaps must \
         preserve the logic kind"
        (Cell.name cell) nl.gates.(gate).Netlist.g_name (Cell.name old)
  | Scale_wire { net; r_scale; c_scale } ->
    check_net nl net;
    check_finite "r scale" r_scale;
    check_finite "c scale" c_scale;
    if r_scale <= 0. || c_scale < 0. then
      fail
        "wire scales must satisfy r > 0 and c >= 0 (segment resistances \
         stay positive), got r=%g c=%g"
        r_scale c_scale
  | Bump_sink_load { net; sink; delta_cap } ->
    check_net nl net;
    if sink < 0 then fail "sink index must be non-negative, got %d" sink;
    check_finite "load delta" delta_cap

let invalidated (nl : Netlist.t) = function
  | Swap_cell { gate; _ } ->
    (* The new pin caps reload every input wire, and the new drive
       re-times the output arc: all adjacent nets are dirty. *)
    let g = nl.gates.(gate) in
    List.sort_uniq compare (g.Netlist.output :: Array.to_list g.Netlist.inputs)
  | Scale_wire { net; _ } | Bump_sink_load { net; _ } -> [ net ]

let apply_netlist (nl : Netlist.t) = function
  | Swap_cell { gate; cell } ->
    nl.gates.(gate) <- { (nl.gates.(gate)) with Netlist.cell }
  | Scale_wire _ | Bump_sink_load _ -> ()

let describe (nl : Netlist.t) = function
  | Swap_cell { gate; cell } ->
    Printf.sprintf "swap %s: %s -> %s" nl.gates.(gate).Netlist.g_name
      (Cell.name nl.gates.(gate).Netlist.cell)
      (Cell.name cell)
  | Scale_wire { net; r_scale; c_scale } ->
    Printf.sprintf "scale wire %s: r*%g c*%g" nl.net_names.(net) r_scale c_scale
  | Bump_sink_load { net; sink; delta_cap } ->
    Printf.sprintf "bump load %s sink %d: %+g fF" nl.net_names.(net) sink
      (delta_cap *. 1e15)

(* --- JSON-lines codec ------------------------------------------------ *)

(* The edit-script format is a flat object of string/number fields per
   line; this hand-rolled parser covers exactly that (no nesting, no
   arrays) so the library stays dependency-free. *)

type jvalue = Jstr of string | Jnum of float

let parse_flat_object line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail "expected %C at column %d" c (!pos + 1)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          if !pos + 1 >= n then fail "unterminated escape";
          (match line.[!pos + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | c -> fail "unsupported escape \\%c" c);
          pos := !pos + 2;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected a value at column %d" (start + 1);
    let tok = String.sub line start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> f
    | None -> fail "malformed number %S" tok
  in
  expect '{';
  skip_ws ();
  let fields = ref [] in
  (match peek () with
  | Some '}' -> incr pos
  | _ ->
    let rec pairs () =
      skip_ws ();
      let k = parse_string () in
      expect ':';
      skip_ws ();
      let v =
        match peek () with
        | Some '"' -> Jstr (parse_string ())
        | _ -> Jnum (parse_number ())
      in
      if List.mem_assoc k !fields then fail "duplicate field %S" k;
      fields := (k, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
        incr pos;
        pairs ()
      | Some '}' -> incr pos
      | _ -> fail "expected ',' or '}' at column %d" (!pos + 1)
    in
    pairs ());
  skip_ws ();
  if !pos <> n then fail "trailing characters at column %d" (!pos + 1);
  List.rev !fields

let field fields key =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> fail "missing field %S" key

let num_field fields key =
  match field fields key with
  | Jnum f -> f
  | Jstr s -> fail "field %S must be a number, got %S" key s

let opt_num_field fields key ~default =
  match List.assoc_opt key fields with
  | None -> default
  | Some (Jnum f) -> f
  | Some (Jstr s) -> fail "field %S must be a number, got %S" key s

let int_field fields key =
  let f = num_field fields key in
  if Float.is_integer f then int_of_float f
  else fail "field %S must be an integer, got %g" key f

let str_field fields key =
  match field fields key with
  | Jstr s -> s
  | Jnum f -> fail "field %S must be a string, got %g" key f

(* Nets and gates are addressed by name or by numeric index; names are
   resolved with a linear scan, which is fine at edit-script scale. *)
let net_of_value (nl : Netlist.t) = function
  | Jnum f ->
    if not (Float.is_integer f) then fail "net index must be an integer";
    let net = int_of_float f in
    check_net nl net;
    net
  | Jstr name -> (
    let found = ref (-1) in
    Array.iteri (fun i n -> if n = name then found := i) nl.net_names;
    match !found with
    | -1 -> fail "unknown net %S in circuit %S" name nl.name
    | net -> net)

let gate_of_value (nl : Netlist.t) = function
  | Jnum f ->
    if not (Float.is_integer f) then fail "gate index must be an integer";
    let gate = int_of_float f in
    if gate < 0 || gate >= Array.length nl.gates then
      fail "gate %d out of range for circuit %S (%d gates)" gate nl.name
        (Array.length nl.gates);
    gate
  | Jstr name -> (
    let found = ref (-1) in
    Array.iteri
      (fun i (g : Netlist.gate) -> if g.Netlist.g_name = name then found := i)
      nl.gates;
    match !found with
    | -1 -> fail "unknown gate %S in circuit %S" name nl.name
    | gate -> gate)

let of_json (nl : Netlist.t) line =
  let fields = parse_flat_object line in
  let edit =
    match str_field fields "op" with
    | "swap_cell" ->
      let gate = gate_of_value nl (field fields "gate") in
      let cell_name = str_field fields "cell" in
      let cell =
        try Cell.of_name cell_name
        with Failure _ | Invalid_argument _ ->
          fail "unknown cell %S (names look like INVX2, NAND2X4)" cell_name
      in
      Swap_cell { gate; cell }
    | "scale_wire" ->
      Scale_wire
        {
          net = net_of_value nl (field fields "net");
          r_scale = opt_num_field fields "r" ~default:1.;
          c_scale = opt_num_field fields "c" ~default:1.;
        }
    | "bump_sink_load" ->
      Bump_sink_load
        {
          net = net_of_value nl (field fields "net");
          sink = int_field fields "sink";
          delta_cap = num_field fields "delta_ff" *. 1e-15;
        }
    | op ->
      fail "unknown op %S (available: swap_cell, scale_wire, bump_sink_load)"
        op
  in
  validate nl edit;
  edit

let to_json (nl : Netlist.t) = function
  | Swap_cell { gate; cell } ->
    Printf.sprintf {|{"op": "swap_cell", "gate": %S, "cell": %S}|}
      nl.gates.(gate).Netlist.g_name (Cell.name cell)
  | Scale_wire { net; r_scale; c_scale } ->
    Printf.sprintf {|{"op": "scale_wire", "net": %S, "r": %.17g, "c": %.17g}|}
      nl.net_names.(net) r_scale c_scale
  | Bump_sink_load { net; sink; delta_cap } ->
    Printf.sprintf {|{"op": "bump_sink_load", "net": %S, "sink": %d, "delta_ff": %.17g}|}
      nl.net_names.(net) sink (delta_cap *. 1e15)
