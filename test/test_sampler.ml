(* Sampling layer: the variance-reduction deviate streams and the
   adaptive quantile-CI stopping built on them.

   The load-bearing invariant is bit-exact replay: the Mc backend (the
   default) must reproduce the pre-sampler populations bit for bit — at
   the arc, table and path level, on both kernels and both executor
   backends — so enabling the sampling layer by default changes nothing.
   On top of that, each variance-reduction backend must satisfy its
   defining structural property (antithetic negation, LHS stratification,
   Sobol' net structure) and basic uniformity, and the adaptive stopper
   must honour rtol, never stop below the minimum batch, and produce a
   bitwise prefix of the fixed-count run. *)

module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Rng = Nsigma_stats.Rng
module Sampler = Nsigma_stats.Sampler
module Special = Nsigma_stats.Special
module Quantile = Nsigma_stats.Quantile
module Arc = Nsigma_spice.Arc
module Cell_sim = Nsigma_spice.Cell_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Executor = Nsigma_exec.Executor
module Cell = Nsigma_liberty.Cell
module Characterize = Nsigma_liberty.Characterize
module Netlist = Nsigma_netlist.Netlist
module Design = Nsigma_sta.Design
module Path = Nsigma_sta.Path
module Path_mc = Nsigma_sta.Path_mc

let tech = T.with_vdd T.default_28nm 0.6
let kernel_name = Cell_sim.kernel_name

let execs () =
  [ ("seq", Executor.sequential); ("pool2", Executor.domain_pool ~jobs:2 ()) ]

let check_bits ~what expected actual =
  Alcotest.(check int)
    (what ^ " length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i e ->
      let a = actual.(i) in
      let same =
        (Float.is_nan e && Float.is_nan a)
        || Int64.equal (Int64.bits_of_float e) (Int64.bits_of_float a)
      in
      if not same then
        Alcotest.failf "%s: sample %d differs: %h vs %h" what i e a)
    expected

(* ---------- backend naming and selection ---------- *)

let test_backend_names () =
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Sampler.backend_name b ^ " round-trips")
        true
        (Sampler.backend_of_string (Sampler.backend_name b) = b))
    [ Sampler.Mc; Sampler.Antithetic; Sampler.Lhs; Sampler.Sobol;
      Sampler.Pcm ];
  Alcotest.(check bool)
    "anti alias" true
    (Sampler.backend_of_string "anti" = Sampler.Antithetic);
  Alcotest.(check bool)
    "qmc alias" true
    (Sampler.backend_of_string "qmc" = Sampler.Sobol);
  (match Sampler.backend_of_string "nope" with
  | (_ : Sampler.backend) -> Alcotest.fail "expected Failure on unknown name"
  | exception Failure msg ->
    Alcotest.(check bool) "message lists valid names" true
      (String.length msg > 0))

(* ---------- Mc backend: bit-exact replay of Variation.draw ---------- *)

(* The Mc stream plus [Variation.of_deviates] must reproduce the legacy
   [Variation.draw] samples exactly — same globals, same locals in the
   same order — which is the property that lets samplers feed the plan
   layer without perturbing golden populations. *)
let test_mc_replays_draw () =
  let cell = Cell.make Nand2 ~strength:2 in
  let sk_probe = Cell.plan tech cell ~output_edge:`Fall in
  let dim = Variation.global_deviate_dim + Arc.skeleton_local_dim sk_probe in
  let n = 64 in
  let base = Rng.create ~seed:77 in
  let s = Sampler.create Sampler.Mc base ~dim ~n in
  let z = Array.make dim 0.0 in
  let sk_a = Cell.plan tech cell ~output_edge:`Fall in
  let sk_b = Cell.plan tech cell ~output_edge:`Fall in
  let input_slew = 40e-12 and load_cap = Cell.fo4_load tech cell in
  for i = 0 to n - 1 do
    let legacy = Variation.draw tech (Rng.derive base ~index:i) in
    Arc.fill tech sk_a legacy;
    Sampler.fill s ~index:i z;
    Arc.fill tech sk_b (Variation.of_deviates tech z);
    let run sk =
      (Cell_sim.run_compiled ~kernel:Cell_sim.Fast tech
         (Arc.skeleton_compiled sk) ~input_slew ~load_cap)
        .Cell_sim.delay
    in
    let da = run sk_a and db = run sk_b in
    if not (Int64.equal (Int64.bits_of_float da) (Int64.bits_of_float db)) then
      Alcotest.failf "sample %d: draw %h vs of_deviates %h" i da db
  done

(* [arc_delays_sampled] with the Mc default must be bitwise-identical to
   the pre-sampler [arc_delays_planned] loop — both kernels, both
   executors, with and without going through the delegation. *)
let test_arc_mc_identity () =
  let cell = Cell.make Inv ~strength:1 in
  let input_slew = 40e-12 and load_cap = Cell.fo4_load tech cell in
  List.iter
    (fun kernel ->
      let g = Rng.create ~seed:42 in
      let expected, expected_slews =
        Monte_carlo.arc_delays_planned ~exec:Executor.sequential ~kernel tech g
          ~n:200
          ~plan:(fun () -> Cell.plan tech cell ~output_edge:`Rise)
          ~input_slew ~load_cap
      in
      List.iter
        (fun (ename, exec) ->
          let r =
            Monte_carlo.arc_delays_sampled ~exec ~kernel
              ~sampling:Sampler.Mc tech (Rng.create ~seed:42) ~n:200
              ~plan:(fun () -> Cell.plan tech cell ~output_edge:`Rise)
              ~input_slew ~load_cap
          in
          let what =
            Printf.sprintf "arc mc %s/%s" (kernel_name kernel) ename
          in
          check_bits ~what expected r.Monte_carlo.s_delays;
          check_bits ~what:(what ^ " slews") expected_slews
            r.Monte_carlo.s_out_slews;
          Alcotest.(check int) (what ^ " requested") 200
            r.Monte_carlo.s_requested;
          Alcotest.(check int) (what ^ " batches") 1 r.Monte_carlo.s_batches)
        (execs ()))
    [ Cell_sim.Fast; Cell_sim.Rk4 ]

(* Characterised tables: the default (Mc, no rtol) table must equal the
   pre-sampler per-point loop replicated here verbatim. *)
let test_table_mc_identity () =
  let cell = Cell.make Nand2 ~strength:1 in
  let slews = [| 10e-12; 60e-12 |] and loads = [| 0.5e-15; 2e-15 |] in
  let n_mc = 40 and seed = 5 in
  let kernel = Cell_sim.Fast in
  (* Pre-PR reference: the exact measure_point loop before the sampler. *)
  let g = Rng.create ~seed in
  let legacy_point ~index slew load =
    let gp = Rng.derive g ~index in
    let delays_all, _ =
      Monte_carlo.arc_delays_planned ~exec:Executor.sequential ~kernel tech gp
        ~n:n_mc
        ~plan:(fun () -> Cell.plan tech cell ~output_edge:`Fall)
        ~input_slew:slew ~load_cap:load
    in
    Monte_carlo.compact_nan delays_all
  in
  let table =
    Characterize.characterize ~n_mc ~seed ~slews ~loads
      ~exec:Executor.sequential ~kernel ~sampling:Sampler.Mc tech cell
      ~edge:`Fall
  in
  Alcotest.(check bool) "table records mc" true
    (table.Characterize.sampling = Sampler.Mc);
  Alcotest.(check bool) "table records rtol off" true
    (table.Characterize.rtol = None);
  Array.iteri
    (fun si row ->
      Array.iteri
        (fun li (p : Characterize.point) ->
          let expected = legacy_point ~index:((si * 2) + li) slews.(si) loads.(li) in
          Array.sort Float.compare expected;
          let mean = (Nsigma_stats.Moments.summary_of_array expected).mean in
          if
            not
              (Int64.equal
                 (Int64.bits_of_float mean)
                 (Int64.bits_of_float p.Characterize.moments.mean))
          then
            Alcotest.failf "point (%d,%d): mean %h vs legacy %h" si li
              p.Characterize.moments.mean mean)
        row)
    table.Characterize.points

(* Path populations: [Path_mc.run ~sampling:Mc] must equal the
   rebuild-per-sample reference, both kernels, both executors. *)
let small_design () =
  let module Bm = Nsigma_netlist.Benchmarks in
  let module Engine = Nsigma_sta.Engine in
  let module Provider = Nsigma_sta.Provider in
  let bm = List.hd Bm.small_variants in
  let nl = bm.Bm.generate () in
  let design = Design.attach_parasitics tech nl in
  let used_cells =
    Array.to_list nl.Netlist.gates
    |> List.map (fun g -> g.Netlist.cell)
    |> List.sort_uniq compare
  in
  let lib = Nsigma_liberty.Library.characterize_all ~n_mc:60 tech used_cells in
  let report = Engine.analyze tech (Provider.nominal lib) design in
  (design, Engine.critical_path report)

let unplanned_path_samples ~kernel ~steps ~n ~seed tech design path =
  let g = Rng.create ~seed in
  let out =
    Array.init n (fun i ->
        let sample = Variation.draw tech (Rng.derive g ~index:i) in
        match Path_mc.simulate_sample ~steps ~kernel tech design path sample with
        | d -> d
        | exception Failure _ -> Float.nan)
  in
  let kept = Array.to_list out |> List.filter (fun d -> not (Float.is_nan d)) in
  let arr = Array.of_list kept in
  Array.sort Float.compare arr;
  arr

let test_path_mc_identity () =
  let design, path = small_design () in
  List.iter
    (fun kernel ->
      let expected =
        unplanned_path_samples ~kernel ~steps:80 ~n:30 ~seed:11 tech design path
      in
      List.iter
        (fun (ename, exec) ->
          let r =
            Path_mc.run ~kernel ~steps:80 ~n:30 ~seed:11 ~exec
              ~sampling:Sampler.Mc tech design path
          in
          check_bits
            ~what:(Printf.sprintf "path mc %s/%s" (kernel_name kernel) ename)
            expected r.Path_mc.samples;
          let si = r.Path_mc.sampling in
          Alcotest.(check bool) "sampling info backend" true
            (si.Path_mc.si_backend = Sampler.Mc);
          Alcotest.(check int) "sampling info drawn" 30 si.Path_mc.si_drawn;
          Alcotest.(check int) "sampling info saved" 0 si.Path_mc.si_saved)
        (execs ()))
    [ Cell_sim.Fast; Cell_sim.Rk4 ]

(* ---------- antithetic pairing ---------- *)

let test_antithetic_pairing () =
  let dim = 9 and n = 64 in
  let g = Rng.create ~seed:3 in
  let s = Sampler.create Sampler.Antithetic g ~dim ~n in
  let mc = Sampler.create Sampler.Mc g ~dim ~n in
  let ze = Array.make dim 0.0
  and zo = Array.make dim 0.0
  and zm = Array.make dim 0.0 in
  for k = 0 to (n / 2) - 1 do
    Sampler.fill s ~index:(2 * k) ze;
    Sampler.fill s ~index:((2 * k) + 1) zo;
    Sampler.fill mc ~index:k zm;
    for j = 0 to dim - 1 do
      if
        not
          (Int64.equal (Int64.bits_of_float ze.(j)) (Int64.bits_of_float zm.(j)))
      then
        Alcotest.failf "pair %d dim %d: even member %h is not the mc draw %h" k
          j ze.(j) zm.(j);
      if
        not
          (Int64.equal
             (Int64.bits_of_float zo.(j))
             (Int64.bits_of_float (-.ze.(j))))
      then
        Alcotest.failf "pair %d dim %d: %h is not the exact negation of %h" k j
          zo.(j) ze.(j)
    done
  done

(* ---------- LHS stratification ---------- *)

let test_lhs_stratification () =
  let dim = 5 and n = 64 in
  let g = Rng.create ~seed:17 in
  let s = Sampler.create Sampler.Lhs g ~dim ~n in
  let u = Array.make dim 0.0 in
  let hits = Array.make_matrix dim n 0 in
  for i = 0 to n - 1 do
    Sampler.fill_uniform s ~index:i u;
    for j = 0 to dim - 1 do
      if u.(j) <= 0.0 || u.(j) >= 1.0 then
        Alcotest.failf "u out of (0,1): %h" u.(j);
      let stratum = int_of_float (Float.of_int n *. u.(j)) in
      hits.(j).(min stratum (n - 1)) <- hits.(j).(min stratum (n - 1)) + 1
    done
  done;
  Array.iteri
    (fun j row ->
      Array.iteri
        (fun k c ->
          if c <> 1 then
            Alcotest.failf "dim %d stratum %d hit %d times (want exactly 1)" j k
              c)
        row)
    hits;
  (* Out-of-population index must be rejected: strata are only defined
     for the n the stream was created for. *)
  (match Sampler.fill s ~index:n (Array.make dim 0.0) with
  | () -> Alcotest.fail "expected Invalid_argument for index >= n"
  | exception Invalid_argument _ -> ())

(* ---------- Sobol': golden values, net structure, scramble ---------- *)

(* First eight points of the canonical (unscrambled) Sobol' sequence
   under the gray-code construction with the (x+1/2)/2^32 offset. *)
let test_sobol_golden () =
  let expect =
    [
      (0, [| 0.0; 0.5; 0.75; 0.25; 0.375; 0.875; 0.625; 0.125 |]);
      (1, [| 0.0; 0.5; 0.25; 0.75; 0.375; 0.875; 0.125; 0.625 |]);
      (2, [| 0.0; 0.5; 0.25; 0.75; 0.625; 0.125; 0.875; 0.375 |]);
    ]
  in
  List.iter
    (fun (d, xs) ->
      Array.iteri
        (fun i x ->
          let u = Sampler.sobol_raw_u01 ~dim:d ~index:i in
          (* The construction adds the half-cell offset 2^-33. *)
          let got = u -. (0.5 /. 4294967296.0) in
          if Float.abs (got -. x) > 1e-12 then
            Alcotest.failf "sobol dim %d point %d: %.17g, want %.17g" d i got x)
        xs)
    expect

(* Owen-style scrambling must act as a nested dyadic permutation: the
   top k bits of the output are a bijective function of the top k bits
   of the input.  Checked at depth 8 for several seeds. *)
let test_owen_nested_permutation () =
  List.iter
    (fun seed ->
      let seen = Array.make 256 false in
      for j = 0 to 255 do
        let y = Sampler.owen_scramble ~seed (j lsl 24) in
        let top = (y lsr 24) land 0xFF in
        if seen.(top) then
          Alcotest.failf "seed %d: top byte %d hit twice (not a permutation)"
            seed top;
        seen.(top) <- true
      done)
    [ 0; 1; 0x9E3779B9; 12345 ]

(* The scrambled stream keeps the one-per-stratum (0, m, 1)-net property
   in every 1-D projection — including sieve-generated dimensions well
   beyond the embedded direction-number table. *)
let test_sobol_stratification () =
  let dim = 40 and n = 64 in
  let g = Rng.create ~seed:29 in
  let s = Sampler.create Sampler.Sobol g ~dim ~n in
  let u = Array.make dim 0.0 in
  let hits = Array.make_matrix dim n 0 in
  for i = 0 to n - 1 do
    Sampler.fill_uniform s ~index:i u;
    for j = 0 to dim - 1 do
      let stratum = min (n - 1) (int_of_float (Float.of_int n *. u.(j))) in
      hits.(j).(stratum) <- hits.(j).(stratum) + 1
    done
  done;
  Array.iteri
    (fun j row ->
      Array.iteri
        (fun k c ->
          if c <> 1 then
            Alcotest.failf "dim %d stratum %d hit %d times (want exactly 1)" j k
              c)
        row)
    hits

(* ---------- uniformity (KS) per backend ---------- *)

let ks_statistic u =
  let n = Array.length u in
  let s = Array.copy u in
  Array.sort Float.compare s;
  let d = ref 0.0 in
  Array.iteri
    (fun i x ->
      let hi = (float_of_int (i + 1) /. float_of_int n) -. x in
      let lo = x -. (float_of_int i /. float_of_int n) in
      d := Float.max !d (Float.max hi lo))
    s;
  !d

let test_uniformity () =
  let n = 4096 and dim = 7 in
  List.iter
    (fun (backend, threshold_scaled) ->
      let g = Rng.create ~seed:101 in
      let s = Sampler.create backend g ~dim ~n in
      let u = Array.make dim 0.0 in
      let cols = Array.init dim (fun _ -> Array.make n 0.0) in
      for i = 0 to n - 1 do
        Sampler.fill_uniform s ~index:i u;
        for j = 0 to dim - 1 do
          cols.(j).(i) <- u.(j)
        done
      done;
      Array.iteri
        (fun j col ->
          let d = ks_statistic col in
          let scaled =
            match backend with
            | Sampler.Mc | Sampler.Antithetic | Sampler.Pcm ->
              sqrt (float_of_int n) *. d
            | Sampler.Lhs | Sampler.Sobol -> d
          in
          if scaled > threshold_scaled then
            Alcotest.failf "%s dim %d: KS %.4g exceeds %.4g"
              (Sampler.backend_name backend)
              j scaled threshold_scaled)
        cols)
    [
      (* √n·D for the pseudo-random streams (Kolmogorov 99.99% ≈ 1.95);
         raw D for the stratified streams, whose discrepancy is O(1/n). *)
      (Sampler.Mc, 2.2);
      (Sampler.Antithetic, 2.2);
      (Sampler.Lhs, 0.01);
      (Sampler.Sobol, 0.01);
    ]

(* ---------- Quantile hardening: of_sorted / ci edges ---------- *)

let test_quantile_edges () =
  (match Quantile.of_sorted [||] 0.5 with
  | (_ : float) -> Alcotest.fail "expected Invalid_argument on empty"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "of_sorted_opt empty" true
    (Quantile.of_sorted_opt [||] 0.5 = None);
  let one = [| 42.0 |] in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "singleton at p=%g" p)
        42.0 (Quantile.of_sorted one p))
    [ 0.0; 0.25; 0.5; 1.0 ];
  Alcotest.(check bool) "singleton ci collapses" true
    (Quantile.ci one 0.99865 = (42.0, 42.0));
  (match Quantile.ci [||] 0.5 with
  | (_ : float * float) -> Alcotest.fail "expected Invalid_argument on empty ci"
  | exception Invalid_argument _ -> ());
  (match Quantile.ci ~confidence:1.5 one 0.5 with
  | (_ : float * float) ->
    Alcotest.fail "expected Invalid_argument on confidence > 1"
  | exception Invalid_argument _ -> ());
  (* CI brackets the point estimate and narrows with more data. *)
  let sample n = Array.init n (fun i -> float_of_int i /. float_of_int n) in
  let xs = sample 1000 in
  let p = Quantile.probability_of_sigma 3.0 in
  let q = Quantile.of_sorted xs p in
  let lo, hi = Quantile.ci xs p in
  Alcotest.(check bool) "lo <= q <= hi" true (lo <= q && q <= hi);
  let lo2, hi2 = Quantile.ci (sample 100000) p in
  Alcotest.(check bool) "wider sample narrows the ci" true
    (hi2 -. lo2 < hi -. lo)

(* ---------- adaptive stopping ---------- *)

let arc_sampled ?rtol ~n ~sampling ~seed () =
  let cell = Cell.make Inv ~strength:1 in
  Monte_carlo.arc_delays_sampled ~exec:Executor.sequential
    ~kernel:Cell_sim.Fast ~sampling ?rtol tech (Rng.create ~seed) ~n
    ~plan:(fun () -> Cell.plan tech cell ~output_edge:`Rise)
    ~input_slew:40e-12
    ~load_cap:(Cell.fo4_load tech (Cell.make Inv ~strength:1))

let test_adaptive_stopping () =
  (* A loose tolerance stops well before n; the result must be a bitwise
     prefix of the fixed-count run and never shorter than the minimum
     batch. *)
  let n = 4096 in
  List.iter
    (fun sampling ->
      let full = arc_sampled ~n ~sampling ~seed:7 () in
      let adaptive = arc_sampled ~rtol:0.5 ~n ~sampling ~seed:7 () in
      let drawn = Array.length adaptive.Monte_carlo.s_delays in
      let name = Sampler.backend_name sampling in
      Alcotest.(check bool)
        (name ^ ": stopped before n") true (drawn < n);
      Alcotest.(check bool)
        (name ^ ": at least the minimum batch")
        true
        (drawn >= Monte_carlo.min_adaptive_batch);
      Alcotest.(check bool)
        (name ^ ": more than one batch accounted")
        true
        (adaptive.Monte_carlo.s_batches >= 1);
      check_bits
        ~what:(name ^ ": adaptive prefix")
        adaptive.Monte_carlo.s_delays
        (Array.sub full.Monte_carlo.s_delays 0 drawn))
    [ Sampler.Mc; Sampler.Sobol ];
  (* An unattainable tolerance draws every sample. *)
  let exhausted = arc_sampled ~rtol:1e-9 ~n:512 ~sampling:Sampler.Mc ~seed:7 () in
  Alcotest.(check int) "tiny rtol draws all of n" 512
    (Array.length exhausted.Monte_carlo.s_delays);
  (match arc_sampled ~rtol:(-0.1) ~n:64 ~sampling:Sampler.Mc ~seed:7 () with
  | (_ : Monte_carlo.sampled) ->
    Alcotest.fail "expected Invalid_argument for rtol <= 0"
  | exception Invalid_argument _ -> ())

let test_adaptive_path () =
  let design, path = small_design () in
  let full =
    Path_mc.run ~kernel:Cell_sim.Fast ~n:600 ~seed:11
      ~exec:Executor.sequential ~sampling:Sampler.Lhs tech design path
  in
  let adaptive =
    Path_mc.run ~kernel:Cell_sim.Fast ~n:600 ~seed:11
      ~exec:Executor.sequential ~sampling:Sampler.Lhs ~rtol:0.5 tech design
      path
  in
  let si = adaptive.Path_mc.sampling in
  Alcotest.(check bool) "stopped early" true
    (si.Path_mc.si_drawn < si.Path_mc.si_requested);
  Alcotest.(check int) "saved accounts the gap"
    (si.Path_mc.si_requested - si.Path_mc.si_drawn)
    si.Path_mc.si_saved;
  Alcotest.(check bool) "at least the minimum batch" true
    (si.Path_mc.si_drawn >= Monte_carlo.min_adaptive_batch);
  (* The early-stopped sorted population is a subset prefix in sample
     space: every adaptive sample appears in the full run's population. *)
  let full_set =
    Array.to_list full.Path_mc.samples |> List.map Int64.bits_of_float
  in
  Array.iter
    (fun d ->
      if not (List.mem (Int64.bits_of_float d) full_set) then
        Alcotest.failf "adaptive sample %h missing from the full population" d)
    adaptive.Path_mc.samples

(* ---------- variance reduction actually reduces variance ---------- *)

(* Cheap sanity check (the bench gates the real ≥2x reduction): the ±3σ
   quantile spread across independent LHS replicates should not exceed
   the plain-MC spread.  Uses the raw deviate streams through a smooth
   monotone response, not the simulator, to stay fast. *)
let test_variance_reduction_smoke () =
  let dim = 4 and n = 256 and reps = 24 in
  let p = Quantile.probability_of_sigma 3.0 in
  let spread backend =
    let qs =
      List.init reps (fun r ->
          let g = Rng.create ~seed:(1000 + r) in
          let s = Sampler.create backend g ~dim ~n in
          let z = Array.make dim 0.0 in
          let ys =
            Array.init n (fun i ->
                Sampler.fill s ~index:i z;
                (* Smooth response with curvature, like a delay model. *)
                Array.fold_left (fun acc zj -> acc +. zj +. (0.1 *. zj *. zj))
                  0.0 z)
          in
          Array.sort Float.compare ys;
          Quantile.of_sorted ys p)
    in
    let mean = List.fold_left ( +. ) 0.0 qs /. float_of_int reps in
    List.fold_left (fun acc q -> acc +. ((q -. mean) *. (q -. mean))) 0.0 qs
    /. float_of_int reps
  in
  let v_mc = spread Sampler.Mc and v_lhs = spread Sampler.Lhs in
  if v_lhs > v_mc then
    Alcotest.failf "LHS ±3σ variance %.4g exceeds MC %.4g" v_lhs v_mc

(* ---------- probabilistic collocation (Pcm) ---------- *)

let test_pcm_geometry () =
  Alcotest.(check bool) "node is sqrt 3" true
    (Float.abs ((Sampler.Pcm.node *. Sampler.Pcm.node) -. 3.0) < 1e-12);
  Alcotest.(check int) "points dim 1" 3 (Sampler.Pcm.n_points ~dim:1);
  Alcotest.(check int) "points dim 4" 33 (Sampler.Pcm.n_points ~dim:4);
  (match Sampler.Pcm.n_points ~dim:0 with
  | (_ : int) -> Alcotest.fail "expected Invalid_argument on dim 0"
  | exception Invalid_argument _ -> ());
  let dim = 3 in
  let n_pts = Sampler.Pcm.n_points ~dim in
  let z = Array.make dim Float.nan in
  Sampler.Pcm.fill_point ~dim 0 z;
  Array.iter (fun v -> Alcotest.(check (float 0.0)) "origin" 0.0 v) z;
  for p = 1 to n_pts - 1 do
    Sampler.Pcm.fill_point ~dim p z;
    let active =
      Array.fold_left (fun acc v -> if v <> 0.0 then acc + 1 else acc) 0 z
    in
    Alcotest.(check bool)
      (Printf.sprintf "point %d touches 1 or 2 axes" p)
      true
      (active = 1 || active = 2);
    Array.iter
      (fun v ->
        Alcotest.(check bool) "coordinate in {0, ±√3}" true
          (v = 0.0 || Float.abs (Float.abs v -. Sampler.Pcm.node) < 1e-15))
      z
  done

(* The closed-form fit must recover any quadratic exactly: collocate an
   arbitrary second-order polynomial-chaos expansion and check the
   surrogate reproduces it at random points (to roundoff). *)
let test_pcm_quadratic_exact () =
  let dim = 4 in
  let a = [| 0.7; -1.3; 0.25; 2.0 |]
  and b = [| 0.4; -0.6; 1.1; -0.05 |] in
  let c = Array.make_matrix dim dim 0.0 in
  c.(0).(1) <- 0.8;
  c.(0).(3) <- -0.3;
  c.(1).(2) <- 1.7;
  c.(2).(3) <- 0.12;
  let f z =
    let acc = ref 3.25 in
    for j = 0 to dim - 1 do
      acc :=
        !acc +. (a.(j) *. z.(j)) +. (b.(j) *. ((z.(j) *. z.(j)) -. 1.0));
      for k = j + 1 to dim - 1 do
        acc := !acc +. (c.(j).(k) *. z.(j) *. z.(k))
      done
    done;
    !acc
  in
  let n_pts = Sampler.Pcm.n_points ~dim in
  let zbuf = Array.make dim 0.0 in
  let values =
    Array.init n_pts (fun p ->
        Sampler.Pcm.fill_point ~dim p zbuf;
        f zbuf)
  in
  let s = Sampler.Pcm.fit ~dim ~values in
  Alcotest.(check int) "dim_of" dim (Sampler.Pcm.dim_of s);
  Alcotest.(check bool) "mean is the constant term" true
    (Float.abs (Sampler.Pcm.mean s -. 3.25) < 1e-10);
  let g = Rng.create ~seed:19 in
  for i = 0 to 199 do
    let gi = Rng.derive g ~index:i in
    let z = Array.init dim (fun _ -> Rng.gaussian gi) in
    let want = f z and got = Sampler.Pcm.eval s z in
    if Float.abs (got -. want) > 1e-9 *. (1.0 +. Float.abs want) then
      Alcotest.failf "point %d: surrogate %.17g vs quadratic %.17g" i got want
  done

(* End to end: the Pcm backend must be deterministic (same seed, same
   bits), actually skip kernel work, and land its ±3σ quantiles near
   the plain-MC population it replaces. *)
let test_pcm_arc_surrogate () =
  let n = 2048 in
  let r1 = arc_sampled ~n ~sampling:Sampler.Pcm ~seed:7 ()
  and r2 = arc_sampled ~n ~sampling:Sampler.Pcm ~seed:7 () in
  check_bits ~what:"pcm same seed" r1.Monte_carlo.s_delays
    r2.Monte_carlo.s_delays;
  Alcotest.(check int) "full population" n
    (Array.length r1.Monte_carlo.s_delays);
  Array.iter
    (fun d ->
      if not (Float.is_nan d) && d <= 0.0 then
        Alcotest.failf "non-positive surrogate delay %.3e" d)
    r1.Monte_carlo.s_delays;
  let mc = arc_sampled ~n ~sampling:Sampler.Mc ~seed:7 () in
  let q pop p =
    let a = Monte_carlo.compact_nan pop in
    Array.sort Float.compare a;
    Quantile.of_sorted a p
  in
  List.iter
    (fun sigma ->
      let p = Quantile.probability_of_sigma sigma in
      let qp = q r1.Monte_carlo.s_delays p
      and qm = q mc.Monte_carlo.s_delays p in
      let rel = Float.abs (qp -. qm) /. qm in
      if rel > 0.10 then
        Alcotest.failf "pcm %+gσ quantile off by %.1f%% (pcm %.4e mc %.4e)"
          sigma (100.0 *. rel) qp qm)
    [ -3.0; 3.0 ]

let () =
  Alcotest.run "sampler"
    [
      ( "backend",
        [
          Alcotest.test_case "names round-trip" `Quick test_backend_names;
          Alcotest.test_case "mc replays Variation.draw" `Quick
            test_mc_replays_draw;
        ] );
      ( "bit_identity",
        [
          Alcotest.test_case "arc mc = planned (bitwise)" `Quick
            test_arc_mc_identity;
          Alcotest.test_case "table mc = legacy loop (bitwise)" `Quick
            test_table_mc_identity;
          Alcotest.test_case "path mc = unplanned (bitwise)" `Quick
            test_path_mc_identity;
        ] );
      ( "structure",
        [
          Alcotest.test_case "antithetic exact pairing" `Quick
            test_antithetic_pairing;
          Alcotest.test_case "lhs one per stratum" `Quick
            test_lhs_stratification;
          Alcotest.test_case "sobol golden first points" `Quick
            test_sobol_golden;
          Alcotest.test_case "owen nested permutation" `Quick
            test_owen_nested_permutation;
          Alcotest.test_case "scrambled sobol one per stratum" `Quick
            test_sobol_stratification;
          Alcotest.test_case "uniformity (KS) per backend" `Quick
            test_uniformity;
        ] );
      ( "pcm",
        [
          Alcotest.test_case "collocation geometry" `Quick test_pcm_geometry;
          Alcotest.test_case "quadratic exactness" `Quick
            test_pcm_quadratic_exact;
          Alcotest.test_case "arc surrogate determinism + accuracy" `Quick
            test_pcm_arc_surrogate;
        ] );
      ( "quantile",
        [ Alcotest.test_case "of_sorted/ci edge cases" `Quick
            test_quantile_edges ] );
      ( "adaptive",
        [
          Alcotest.test_case "arc stopping honours rtol" `Quick
            test_adaptive_stopping;
          Alcotest.test_case "path stopping + metadata" `Quick
            test_adaptive_path;
          Alcotest.test_case "variance reduction smoke" `Quick
            test_variance_reduction_smoke;
        ] );
    ]
