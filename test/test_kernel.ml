(* Fast-kernel vs RK4-reference agreement: the property the two-tier
   simulation kernel stands on.  The fast analytic path must track the
   reference within 2% in nominal delay across the default slew/load
   grid for every cell in the library (both edges), and within 1% in
   population mean / 3% at the ±3σ quantiles over a Monte-Carlo
   population drawn from identical variation streams. *)

module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Rng = Nsigma_stats.Rng
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Cell_sim = Nsigma_spice.Cell_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Cell = Nsigma_liberty.Cell
module Characterize = Nsigma_liberty.Characterize

let tech = T.with_vdd T.default_28nm 0.6

let all_cells =
  List.concat_map
    (fun k -> List.map (fun s -> Cell.make k ~strength:s) Cell.standard_strengths)
    Cell.all_kinds

let edges = [ `Rise; `Fall ]

let edge_name = function `Rise -> "rise" | `Fall -> "fall"

(* ---------- nominal agreement across the default grid ---------- *)

let test_nominal_agreement () =
  let worst = ref 0.0 and worst_where = ref "" in
  List.iter
    (fun cell ->
      List.iter
        (fun edge ->
          let arc = Cell.arc tech Variation.nominal cell ~output_edge:edge in
          let loads = Characterize.loads_for tech cell in
          Array.iter
            (fun slew ->
              Array.iter
                (fun load ->
                  let r =
                    Cell_sim.simulate tech arc ~input_slew:slew ~load_cap:load
                  in
                  let f =
                    Cell_sim.simulate_fast tech arc ~input_slew:slew
                      ~load_cap:load
                  in
                  let err =
                    Float.abs (f.Cell_sim.delay -. r.Cell_sim.delay)
                    /. Float.max (Float.abs r.Cell_sim.delay) 1e-13
                  in
                  if err > !worst then begin
                    worst := err;
                    worst_where :=
                      Printf.sprintf "%s %s slew=%.0fps load=%.2ffF"
                        (Cell.name cell) (edge_name edge) (slew *. 1e12)
                        (load *. 1e15)
                  end)
                loads)
            Characterize.default_slews)
        edges)
    all_cells;
  if !worst > 0.02 then
    Alcotest.failf "fast vs rk4 nominal delay off by %.2f%% at %s"
      (100.0 *. !worst) !worst_where

(* ---------- Monte-Carlo population agreement ---------- *)

(* Delay population of one (cell, edge, kernel) at the given grid point,
   from the variation streams of [seed] — the same seed gives the two
   kernels identical samples, so the comparison measures kernel bias,
   not Monte-Carlo noise. *)
let population kernel cell edge ~slew ~load ~seed ~n =
  let g = Rng.create ~seed in
  let results =
    Monte_carlo.arc_results ~kernel tech g ~n
      ~arc_of:(fun sample -> Cell.arc tech sample cell ~output_edge:edge)
      ~input_slew:slew ~load_cap:load
  in
  let delays =
    Array.to_list results
    |> List.filter_map (Option.map (fun r -> r.Cell_sim.delay))
    |> Array.of_list
  in
  Array.sort Float.compare delays;
  delays

let test_mc_agreement () =
  let n = 250 in
  let q3 = Quantile.probability_of_sigma 3.0 in
  let qm3 = Quantile.probability_of_sigma (-3.0) in
  List.iter
    (fun cell ->
      List.iter
        (fun edge ->
          let slew = Characterize.reference_slew in
          let load = Cell.fo4_load tech cell in
          let fast =
            population Cell_sim.Fast cell edge ~slew ~load ~seed:42 ~n
          in
          let rk4 = population Cell_sim.Rk4 cell edge ~slew ~load ~seed:42 ~n in
          let where = Printf.sprintf "%s %s" (Cell.name cell) (edge_name edge) in
          if Array.length fast < n - 5 || Array.length rk4 < n - 5 then
            Alcotest.failf "%s: too many non-converged samples" where;
          let mu_f = (Moments.summary_of_array fast).Moments.mean in
          let mu_r = (Moments.summary_of_array rk4).Moments.mean in
          let mu_err = Float.abs (mu_f -. mu_r) /. Float.abs mu_r in
          if mu_err > 0.01 then
            Alcotest.failf "%s: population mean off by %.2f%%" where
              (100.0 *. mu_err);
          List.iter
            (fun (name, p) ->
              let qf = Quantile.of_sorted fast p in
              let qr = Quantile.of_sorted rk4 p in
              let err = Float.abs (qf -. qr) /. Float.abs qr in
              if err > 0.03 then
                Alcotest.failf "%s: %s quantile off by %.2f%%" where name
                  (100.0 *. err))
            [ ("+3sigma", q3); ("-3sigma", qm3) ])
        edges)
    all_cells

(* ---------- kernel plumbing ---------- *)

let test_kernel_names () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        "name round-trips" true
        (Cell_sim.kernel_of_string (Cell_sim.kernel_name k) = k))
    [ Cell_sim.Fast; Cell_sim.Rk4; Cell_sim.Auto ];
  Alcotest.check_raises "unknown kernel rejected"
    (Failure
       "unknown simulation kernel \"spice\" (expected \"fast\", \"rk4\" or \
        \"auto\")") (fun () -> ignore (Cell_sim.kernel_of_string "spice"))

(* Auto must agree with one of its two constituent kernels at every
   nominal grid point (it is a dispatch, never a third algorithm). *)
let test_auto_dispatch () =
  let cell = Cell.make Cell.Nand2 ~strength:1 in
  let arc = Cell.arc tech Variation.nominal cell ~output_edge:`Fall in
  Array.iter
    (fun slew ->
      let load = Cell.fo4_load tech cell in
      let a = Cell_sim.run ~kernel:Cell_sim.Auto tech arc ~input_slew:slew ~load_cap:load in
      let f = Cell_sim.simulate_fast tech arc ~input_slew:slew ~load_cap:load in
      let r = Cell_sim.simulate tech arc ~input_slew:slew ~load_cap:load in
      Alcotest.(check bool)
        "auto equals fast or rk4" true
        (a.Cell_sim.delay = f.Cell_sim.delay || a.Cell_sim.delay = r.Cell_sim.delay))
    Characterize.default_slews

let () =
  Alcotest.run "kernel"
    [
      ( "agreement",
        [
          Alcotest.test_case "nominal grid, every cell, both edges" `Slow
            test_nominal_agreement;
          Alcotest.test_case "MC mean and ±3σ quantiles" `Slow
            test_mc_agreement;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "kernel names" `Quick test_kernel_names;
          Alcotest.test_case "auto dispatches" `Quick test_auto_dispatch;
        ] );
    ]
