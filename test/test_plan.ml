(* Plan layer: precompiled sampling plans must be *bit-identical* to the
   unplanned per-sample-rebuild path — same RNG discipline, same draw
   order, same floating-point evaluation order — on both kernels and on
   every executor backend.  Plus the allocation contract: a per-sample
   fill+run must stay under a fixed minor-heap word budget, far below
   what the unplanned path allocates. *)

module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Rng = Nsigma_stats.Rng
module Arc = Nsigma_spice.Arc
module Cell_sim = Nsigma_spice.Cell_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Executor = Nsigma_exec.Executor
module Cell = Nsigma_liberty.Cell
module Characterize = Nsigma_liberty.Characterize
module Library = Nsigma_liberty.Library
module Netlist = Nsigma_netlist.Netlist
module Design = Nsigma_sta.Design
module Path = Nsigma_sta.Path
module Path_mc = Nsigma_sta.Path_mc

let tech = T.with_vdd T.default_28nm 0.6

let kernel_name = Cell_sim.kernel_name

let execs () =
  [ ("seq", Executor.sequential); ("pool2", Executor.domain_pool ~jobs:2 ()) ]

(* ---------- arc sampling: planned vs unplanned, bitwise ---------- *)

let check_bits ~what expected actual =
  Alcotest.(check int)
    (what ^ " length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i e ->
      let a = actual.(i) in
      let same =
        (Float.is_nan e && Float.is_nan a)
        || Int64.equal (Int64.bits_of_float e) (Int64.bits_of_float a)
      in
      if not same then
        Alcotest.failf "%s: sample %d differs: %h vs %h" what i e a)
    expected;
  ignore actual

let unplanned_delays ?kernel ~exec cell edge ~seed ~n ~input_slew ~load_cap () =
  let g = Rng.create ~seed in
  let results =
    Monte_carlo.arc_results ~exec ?kernel tech g ~n
      ~arc_of:(fun sample -> Cell.arc tech sample cell ~output_edge:edge)
      ~input_slew ~load_cap
  in
  Array.map
    (function
      | Some r -> r.Cell_sim.delay
      | None -> Float.nan)
    results

let test_arc_bit_identity () =
  let cells = [ Cell.make Inv ~strength:1; Cell.make Nand2 ~strength:2 ] in
  List.iter
    (fun kernel ->
      List.iter
        (fun (ename, exec) ->
          List.iter
            (fun cell ->
              List.iter
                (fun edge ->
                  let input_slew = 40e-12 in
                  let load_cap = Cell.fo4_load tech cell in
                  let expected =
                    unplanned_delays ~kernel ~exec:Executor.sequential cell edge
                      ~seed:42 ~n:200 ~input_slew ~load_cap ()
                  in
                  let g = Rng.create ~seed:42 in
                  let planned, slews =
                    Monte_carlo.arc_delays_planned ~exec ~kernel tech g ~n:200
                      ~plan:(fun () -> Cell.plan tech cell ~output_edge:edge)
                      ~input_slew ~load_cap
                  in
                  Alcotest.(check int) "slew buffer length" 200
                    (Array.length slews);
                  check_bits
                    ~what:
                      (Printf.sprintf "%s %s %s/%s" (Cell.name cell)
                         (match edge with `Rise -> "rise" | `Fall -> "fall")
                         (kernel_name kernel) ename)
                    expected planned)
                [ `Rise; `Fall ])
            cells)
        (execs ()))
    [ Cell_sim.Fast; Cell_sim.Rk4 ]

(* ---------- characterised tables across backends ---------- *)

let test_table_identity () =
  List.iter
    (fun kernel ->
      let table exec =
        Characterize.characterize ~n_mc:40 ~seed:5
          ~slews:[| 10e-12; 60e-12 |] ~loads:[| 0.5e-15; 2e-15 |] ~exec ~kernel
          tech
          (Cell.make Nand2 ~strength:1)
          ~edge:`Fall
      in
      let reference = table Executor.sequential in
      List.iter
        (fun (ename, exec) ->
          Alcotest.(check bool)
            (Printf.sprintf "table identical %s/%s" (kernel_name kernel) ename)
            true
            ((table exec).Characterize.points = reference.Characterize.points))
        (execs ()))
    [ Cell_sim.Fast; Cell_sim.Rk4 ]

(* ---------- path populations: planned vs rebuild-per-sample ---------- *)

let small_design () =
  let module Bm = Nsigma_netlist.Benchmarks in
  let module Engine = Nsigma_sta.Engine in
  let module Provider = Nsigma_sta.Provider in
  let bm = List.hd Bm.small_variants in
  let nl = bm.Bm.generate () in
  let design = Design.attach_parasitics tech nl in
  let used_cells =
    Array.to_list nl.Netlist.gates
    |> List.map (fun g -> g.Netlist.cell)
    |> List.sort_uniq compare
  in
  let lib = Nsigma_liberty.Library.characterize_all ~n_mc:60 tech used_cells in
  let report = Engine.analyze tech (Provider.nominal lib) design in
  (design, Engine.critical_path report)

(* The rebuild-per-sample reference: exactly the loop [Path_mc.run] ran
   before the plan layer existed. *)
let unplanned_path_samples ~kernel ~steps ~n ~seed tech design path =
  let g = Rng.create ~seed in
  let out =
    Array.init n (fun i ->
        let sample = Variation.draw tech (Rng.derive g ~index:i) in
        match Path_mc.simulate_sample ~steps ~kernel tech design path sample with
        | d -> d
        | exception Failure _ -> Float.nan)
  in
  let kept = Array.to_list out |> List.filter (fun d -> not (Float.is_nan d)) in
  let arr = Array.of_list kept in
  Array.sort Float.compare arr;
  arr

let test_path_bit_identity () =
  let design, path = small_design () in
  List.iter
    (fun kernel ->
      let expected =
        unplanned_path_samples ~kernel ~steps:80 ~n:30 ~seed:11 tech design path
      in
      List.iter
        (fun (ename, exec) ->
          let r =
            Path_mc.run ~kernel ~steps:80 ~n:30 ~seed:11 ~exec tech design path
          in
          check_bits
            ~what:
              (Printf.sprintf "path population %s/%s" (kernel_name kernel) ename)
            expected r.Path_mc.samples)
        (execs ()))
    [ Cell_sim.Fast; Cell_sim.Rk4 ]

let test_per_wire_identity () =
  let design, path = small_design () in
  let quantiles exec =
    Path_mc.per_wire_quantiles ~kernel:Cell_sim.Fast ~n:25 ~seed:11 ~exec tech
      design path ~sigma:3
  in
  let reference = quantiles Executor.sequential in
  List.iter
    (fun (ename, exec) ->
      Alcotest.(check bool)
        (Printf.sprintf "per-wire quantiles identical on %s" ename)
        true
        (quantiles exec = reference))
    (execs ())

(* ---------- empty population: descriptive failure ---------- *)

let contains_substring msg sub =
  let lm = String.length msg and ls = String.length sub in
  ls > 0
  &&
  let rec scan i =
    if i + ls > lm then false
    else String.sub msg i ls = sub || scan (i + 1)
  in
  scan 0

let test_empty_population_failure () =
  let design, path = small_design () in
  match Path_mc.run ~n:0 ~exec:Executor.sequential tech design path with
  | (_ : Path_mc.stats) ->
    Alcotest.fail "expected Failure on an empty population"
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S names some net of the design" msg)
      true
      (Array.exists (contains_substring msg)
         design.Design.netlist.Netlist.net_names)

(* ---------- allocation budget ---------- *)

(* The planned fill+run must allocate far less than the rebuild path.
   Budgets are generous: the dev profile boxes cross-module float calls
   (no flambda), so per-sample words are much higher here than in the
   release profile the bench measures. *)
let test_allocation_budget () =
  let cell = Cell.make Nand2 ~strength:2 in
  let n = 200 in
  let input_slew = 40e-12 and load_cap = Cell.fo4_load tech cell in
  let words f =
    let mw0 = Gc.minor_words () in
    f ();
    (Gc.minor_words () -. mw0) /. float_of_int n
  in
  let planned =
    words (fun () ->
        ignore
          (Monte_carlo.arc_delays_planned ~exec:Executor.sequential
             ~kernel:Cell_sim.Rk4 tech (Rng.create ~seed:9) ~n
             ~plan:(fun () -> Cell.plan tech cell ~output_edge:`Rise)
             ~input_slew ~load_cap))
  in
  let unplanned =
    words (fun () ->
        ignore
          (Monte_carlo.arc_results ~exec:Executor.sequential
             ~kernel:Cell_sim.Rk4 tech (Rng.create ~seed:9) ~n
             ~arc_of:(fun sample -> Cell.arc tech sample cell ~output_edge:`Rise)
             ~input_slew ~load_cap))
  in
  if planned >= unplanned /. 2.0 then
    Alcotest.failf
      "planned path allocates %.0f words/sample vs %.0f unplanned — expected \
       less than half"
      planned unplanned;
  (* Absolute ceiling, calibrated ~2x above the dev-profile measurement
     (~1.3k words/sample; the release profile is far lower) so a
     reintroduced per-sample allocation trips it without wall-clock
     flakiness. *)
  let budget = 2500.0 in
  if planned > budget then
    Alcotest.failf "planned path allocates %.0f words/sample (budget %.0f)"
      planned budget

let () =
  Alcotest.run "plan"
    [
      ( "arc",
        [
          Alcotest.test_case "planned = unplanned (bitwise)" `Quick
            test_arc_bit_identity;
          Alcotest.test_case "allocation budget" `Quick test_allocation_budget;
        ] );
      ( "table",
        [ Alcotest.test_case "identical across backends" `Quick
            test_table_identity ] );
      ( "path",
        [
          Alcotest.test_case "planned = unplanned (bitwise)" `Quick
            test_path_bit_identity;
          Alcotest.test_case "per-wire quantiles identical" `Quick
            test_per_wire_identity;
          Alcotest.test_case "empty population fails descriptively" `Quick
            test_empty_population_failure;
        ] );
    ]
