(* Unit and property tests for the statistics substrate. *)

module Rng = Nsigma_stats.Rng
module Special = Nsigma_stats.Special
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Linalg = Nsigma_stats.Linalg
module Regression = Nsigma_stats.Regression
module Interpolate = Nsigma_stats.Interpolate
module Optimize = Nsigma_stats.Optimize
module D = Nsigma_stats.Distribution
module Histogram = Nsigma_stats.Histogram

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_uniform_range () =
  let g = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let u = Rng.uniform g in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "uniform out of [0,1)"
  done

let test_rng_uniform_mean () =
  let g = Rng.create ~seed:8 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform g
  done;
  check_close ~eps:5e-3 "uniform mean" 0.5 (!sum /. float_of_int n)

let test_rng_gaussian_moments () =
  let g = Rng.create ~seed:9 in
  let xs = Array.init 50_000 (fun _ -> Rng.gaussian g) in
  let s = Moments.summary_of_array xs in
  check_close ~eps:0.02 "gaussian mean ~ 0" 1.0 (1.0 +. s.Moments.mean);
  check_close ~eps:0.02 "gaussian std ~ 1" 1.0 s.Moments.std;
  check_close ~eps:0.05 "gaussian kurtosis ~ 3" 3.0 s.Moments.kurtosis

let test_rng_split_decorrelated () =
  let g = Rng.create ~seed:10 in
  let child = Rng.split g in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.uniform g) in
  let ys = Array.init n (fun _ -> Rng.uniform child) in
  (* Sample correlation should be ~0. *)
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let mx = mean xs and my = mean ys in
  let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy))
    xs;
  let corr = !cov /. sqrt (!vx *. !vy) in
  Alcotest.(check bool) "split streams decorrelated" true (Float.abs corr < 0.03)

let test_rng_int_bounds () =
  let g = Rng.create ~seed:11 in
  let counts = Array.make 7 0 in
  for _ = 1 to 14_000 do
    let k = Rng.int g 7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 1600 || c > 2400 then
        Alcotest.failf "Rng.int bucket %d count %d far from uniform" i c)
    counts

let test_rng_exponential () =
  let g = Rng.create ~seed:12 in
  let xs = Array.init 40_000 (fun _ -> Rng.exponential g ~rate:2.0) in
  let s = Moments.summary_of_array xs in
  check_close ~eps:0.03 "exponential mean = 1/rate" 0.5 s.Moments.mean

let test_rng_shuffle_permutes () =
  let g = Rng.create ~seed:13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

(* ---------- Special functions ---------- *)

let test_erf_values () =
  (* Reference values from Abramowitz & Stegun. *)
  check_close ~eps:1e-6 "erf 0" 0.0 (Special.erf 0.0);
  check_close ~eps:1e-6 "erf 1" 0.8427007929 (Special.erf 1.0);
  check_close ~eps:1e-6 "erf 2" 0.9953222650 (Special.erf 2.0);
  check_close ~eps:1e-6 "erf -1 odd" (-0.8427007929) (Special.erf (-1.0))

let test_normal_cdf_symmetry () =
  (* erfc carries ~1.2e-7 relative error; symmetry inherits it. *)
  List.iter
    (fun x ->
      check_close ~eps:5e-7 "Φ(x) + Φ(−x) = 1" 1.0
        (Special.normal_cdf x +. Special.normal_cdf (-.x)))
    [ 0.0; 0.5; 1.0; 2.0; 3.0 ]

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p ->
      check_close ~eps:1e-6 "Φ(Φ⁻¹(p)) = p" p
        (Special.normal_cdf (Special.normal_quantile p)))
    [ 0.0013; 0.0228; 0.1587; 0.5; 0.8413; 0.9772; 0.9987 ]

let test_normal_quantile_known () =
  (* Limited by the erfc approximation error propagated through the
     low-density tail: |Δx| ≈ 1.2e-7 / φ(3) ≈ 3e-5. *)
  check_close ~eps:1e-4 "Φ⁻¹(0.99865) = 3" 3.0
    (Special.normal_quantile 0.9986501019683699);
  check_close ~eps:1e-7 "Φ⁻¹(0.5) = 0" 1.0 (1.0 +. Special.normal_quantile 0.5)

let test_lgamma () =
  check_close ~eps:1e-9 "lgamma 1 = 0" 1.0 (1.0 +. Special.lgamma 1.0);
  check_close ~eps:1e-9 "lgamma 5 = ln 24" (log 24.0) (Special.lgamma 5.0);
  check_close ~eps:1e-8 "lgamma 0.5 = ln √π" (0.5 *. log Float.pi)
    (Special.lgamma 0.5)

let test_beta () =
  (* B(a,b) = Γa Γb / Γ(a+b); B(2,3) = 1/12. *)
  check_close ~eps:1e-9 "beta(2,3)" (1.0 /. 12.0) (Special.beta 2.0 3.0)

let test_owen_t () =
  (* T(h, 1) = Φ(h)(1 − Φ(h))/2 is the classic identity. *)
  List.iter
    (fun h ->
      let phi = Special.normal_cdf h in
      check_close ~eps:1e-8 "Owen T(h,1) identity" (phi *. (1.0 -. phi) /. 2.0)
        (Special.owen_t h 1.0))
    [ 0.0; 0.3; 1.0; 2.5 ];
  (* T(h, 0) = 0 and antisymmetry in a. *)
  check_close ~eps:1e-12 "T(1,0) = 0" 1.0 (1.0 +. Special.owen_t 1.0 0.0);
  check_close ~eps:1e-9 "T odd in a" 0.0
    (Special.owen_t 0.7 0.9 +. Special.owen_t 0.7 (-0.9))

let test_log1p_exp () =
  check_close ~eps:1e-12 "large x" 50.0 (Special.log1p_exp 50.0);
  check_close ~eps:1e-12 "zero" (log 2.0) (Special.log1p_exp 0.0);
  Alcotest.(check bool) "tiny x positive" true (Special.log1p_exp (-50.0) > 0.0)

(* ---------- Moments ---------- *)

let test_moments_known_sample () =
  let s = Moments.summary_of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_close "mean" 5.0 s.Moments.mean;
  check_close "std (population)" 2.0 s.Moments.std

let test_moments_symmetric_zero_skew () =
  let s = Moments.summary_of_array [| -3.0; -1.0; 0.0; 1.0; 3.0 |] in
  check_close ~eps:1e-12 "symmetric skew = 0" 1.0 (1.0 +. s.Moments.skewness)

let test_moments_merge_equals_concat () =
  let g = Rng.create ~seed:21 in
  let xs = Array.init 500 (fun _ -> Rng.gaussian g) in
  let ys = Array.init 777 (fun _ -> (Rng.gaussian g *. 2.0) +. 1.0) in
  let merged = Moments.merge (Moments.of_array xs) (Moments.of_array ys) in
  let direct = Moments.of_array (Array.append xs ys) in
  let ms = Moments.summary merged and ds = Moments.summary direct in
  check_close "merge mean" ds.Moments.mean ms.Moments.mean;
  check_close "merge std" ds.Moments.std ms.Moments.std;
  check_close ~eps:1e-8 "merge skew" ds.Moments.skewness ms.Moments.skewness;
  check_close ~eps:1e-8 "merge kurt" ds.Moments.kurtosis ms.Moments.kurtosis

let test_moments_empty_degenerate () =
  let s = Moments.summary Moments.empty in
  Alcotest.(check int) "count 0" 0 s.Moments.n;
  check_close "kurtosis default 3" 3.0 s.Moments.kurtosis;
  let const = Moments.summary_of_array [| 5.0; 5.0; 5.0 |] in
  check_close ~eps:1e-12 "constant sample skew 0" 1.0 (1.0 +. const.Moments.skewness)

let prop_moments_shift_invariance =
  QCheck.Test.make ~count:200 ~name:"moments: shift changes only the mean"
    QCheck.(list_of_size (Gen.int_range 8 50) (float_range (-100.) 100.))
    (fun xs ->
      let a = Array.of_list xs in
      let shifted = Array.map (fun x -> x +. 42.0) a in
      let s1 = Moments.summary_of_array a in
      let s2 = Moments.summary_of_array shifted in
      Float.abs (s2.Moments.mean -. s1.Moments.mean -. 42.0) < 1e-6
      && Float.abs (s2.Moments.std -. s1.Moments.std) < 1e-6 *. (1.0 +. s1.Moments.std))

let prop_moments_scale =
  QCheck.Test.make ~count:200 ~name:"moments: positive scaling scales σ, keeps γ"
    QCheck.(pair (list_of_size (Gen.int_range 8 50) (float_range (-10.) 10.)) (float_range 0.5 4.0))
    (fun (xs, k) ->
      let a = Array.of_list xs in
      let scaled = Array.map (fun x -> x *. k) a in
      let s1 = Moments.summary_of_array a in
      let s2 = Moments.summary_of_array scaled in
      Float.abs (s2.Moments.std -. (k *. s1.Moments.std)) < 1e-6 *. (1.0 +. (k *. s1.Moments.std))
      && (s1.Moments.std < 1e-9
         || Float.abs (s2.Moments.skewness -. s1.Moments.skewness) < 1e-5))

(* ---------- Quantile ---------- *)

let test_quantile_median () =
  check_close "median of 1..5" 3.0 (Quantile.of_sample [| 5.0; 1.0; 3.0; 2.0; 4.0 |] 0.5)

let test_quantile_extremes () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  check_close "p=0 is min" 1.0 (Quantile.of_sample xs 0.0);
  check_close "p=1 is max" 3.0 (Quantile.of_sample xs 1.0)

let test_quantile_interpolation () =
  (* type-7: h = (n-1)p. *)
  check_close "q(0.25) of [10,20]" 12.5 (Quantile.of_sample [| 10.0; 20.0 |] 0.25)

let test_sigma_probabilities () =
  check_close ~eps:1e-4 "P(+3σ)" 0.99865 (Quantile.probability_of_sigma 3.0);
  check_close ~eps:1e-4 "P(-2σ)" 0.02275 (Quantile.probability_of_sigma (-2.0));
  check_close ~eps:1e-6 "sigma roundtrip" 1.5
    (Quantile.sigma_of_probability (Quantile.probability_of_sigma 1.5))

let prop_quantile_monotone =
  QCheck.Test.make ~count:200 ~name:"quantiles are monotone in p"
    QCheck.(list_of_size (Gen.int_range 4 60) (float_range (-50.) 50.))
    (fun xs ->
      let a = Array.of_list xs in
      let q p = Quantile.of_sample a p in
      q 0.1 <= q 0.3 && q 0.3 <= q 0.5 && q 0.5 <= q 0.9)

(* ---------- Linalg ---------- *)

let test_solve_identity () =
  let x = Linalg.solve (Linalg.identity 4) [| 1.0; 2.0; 3.0; 4.0 |] in
  Array.iteri (fun i v -> check_close "identity solve" (float_of_int (i + 1)) v) x

let test_solve_random_system () =
  let g = Rng.create ~seed:33 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int g 8 in
    let a = Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian g)) in
    (* Diagonal dominance guarantees solvability. *)
    for i = 0 to n - 1 do
      a.(i).(i) <- a.(i).(i) +. 10.0
    done;
    let x_true = Array.init n (fun _ -> Rng.gaussian g) in
    let b = Linalg.matvec a x_true in
    let x = Linalg.solve a b in
    Array.iteri (fun i v -> check_close ~eps:1e-8 "solve recovers x" x_true.(i) v) x
  done

let test_solve_singular_fails () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Linalg.solve: singular matrix")
    (fun () -> ignore (Linalg.solve a [| 1.0; 1.0 |]))

let test_cholesky_spd () =
  let g = Rng.create ~seed:34 in
  let n = 5 in
  let m = Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian g)) in
  (* A = MᵀM + I is SPD. *)
  let a = Linalg.matmul (Linalg.transpose m) m in
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) +. 1.0
  done;
  let l = Linalg.cholesky a in
  let llt = Linalg.matmul l (Linalg.transpose l) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check_close ~eps:1e-9 "LLᵀ = A" a.(i).(j) llt.(i).(j)
    done
  done;
  let x_true = Array.init n float_of_int in
  let x = Linalg.solve_spd a (Linalg.matvec a x_true) in
  Array.iteri (fun i v -> check_close ~eps:1e-8 "solve_spd" x_true.(i) v) x

let test_lu_matches_solve () =
  let g = Rng.create ~seed:35 in
  let n = 6 in
  let a = Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian g)) in
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) +. 8.0
  done;
  let lu = Linalg.lu_factor a in
  for _ = 1 to 5 do
    let b = Array.init n (fun _ -> Rng.gaussian g) in
    let x1 = Linalg.solve a b and x2 = Linalg.lu_solve lu b in
    Array.iteri (fun i v -> check_close ~eps:1e-9 "lu_solve = solve" v x2.(i)) x1
  done

let test_tridiag_matches_dense () =
  let g = Rng.create ~seed:36 in
  let n = 12 in
  let diag = Array.init n (fun _ -> 4.0 +. Rng.uniform g) in
  let lower = Array.init (n - 1) (fun _ -> Rng.uniform g -. 0.5) in
  let upper = Array.init (n - 1) (fun _ -> Rng.uniform g -. 0.5) in
  let rhs = Array.init n (fun _ -> Rng.gaussian g) in
  let dense = Linalg.make n n in
  for i = 0 to n - 1 do
    dense.(i).(i) <- diag.(i);
    if i < n - 1 then begin
      dense.(i + 1).(i) <- lower.(i);
      dense.(i).(i + 1) <- upper.(i)
    end
  done;
  let x1 = Linalg.solve dense rhs in
  let x2 = Linalg.tridiag_solve ~diag ~lower ~upper rhs in
  Array.iteri (fun i v -> check_close ~eps:1e-9 "tridiag = dense" v x2.(i)) x1

(* ---------- Regression ---------- *)

let test_regression_exact_recovery () =
  let g = Rng.create ~seed:41 in
  let coeffs = [| 2.0; -1.5; 0.7 |] in
  let design =
    Array.init 50 (fun _ -> [| 1.0; Rng.gaussian g; Rng.gaussian g |])
  in
  let target = Array.map (fun row -> Linalg.dot coeffs row) design in
  let f = Regression.fit ~design ~target in
  Array.iteri
    (fun i c -> check_close ~eps:1e-8 "exact coefficients" coeffs.(i) c)
    f.Regression.coeffs;
  check_close ~eps:1e-9 "R² = 1 on exact data" 1.0 f.Regression.r2

let test_regression_constant_feature () =
  (* A rank-deficient design must not crash (ridge fallback). *)
  let design = Array.init 20 (fun i -> [| 1.0; 1.0; float_of_int i |]) in
  let target = Array.init 20 (fun i -> 3.0 +. float_of_int i) in
  let f = Regression.fit ~design ~target in
  let pred = Regression.predict f [| 1.0; 1.0; 10.0 |] in
  check_close ~eps:1e-4 "prediction still correct" 13.0 pred

let test_polyfit () =
  let xs = Array.init 20 (fun i -> float_of_int i /. 4.0) in
  let ys = Array.map (fun x -> 1.0 +. (2.0 *. x) -. (0.5 *. x *. x)) xs in
  let f = Regression.polyfit ~degree:2 ~xs ~ys in
  check_close ~eps:1e-8 "poly c0" 1.0 f.Regression.coeffs.(0);
  check_close ~eps:1e-8 "poly c1" 2.0 f.Regression.coeffs.(1);
  check_close ~eps:1e-8 "poly c2" (-0.5) f.Regression.coeffs.(2);
  check_close ~eps:1e-8 "polyval" (Regression.polyval f.Regression.coeffs 2.0)
    (1.0 +. 4.0 -. 2.0)

(* ---------- Interpolation ---------- *)

let test_grid2d_nodes_exact () =
  let grid =
    Interpolate.Grid2d.create ~xs:[| 0.0; 1.0; 2.0 |] ~ys:[| 0.0; 10.0 |]
      ~values:[| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |]
  in
  check_close "node (0,0)" 1.0 (Interpolate.Grid2d.eval grid 0.0 0.0);
  check_close "node (2,10)" 6.0 (Interpolate.Grid2d.eval grid 2.0 10.0);
  check_close "midpoint" 2.0 (Interpolate.Grid2d.eval grid 0.5 0.0)

let test_grid2d_clamping () =
  let grid =
    Interpolate.Grid2d.create ~xs:[| 0.0; 1.0 |] ~ys:[| 0.0; 1.0 |]
      ~values:[| [| 0.0; 1.0 |]; [| 2.0; 3.0 |] |]
  in
  check_close "clamped below" 0.0 (Interpolate.Grid2d.eval grid (-5.0) (-5.0));
  check_close "clamped above" 3.0 (Interpolate.Grid2d.eval grid 9.0 9.0)

let test_grid2d_bilinear_exact () =
  (* Bilinear interpolation reproduces any bilinear function exactly. *)
  let f x y = 2.0 +. (3.0 *. x) -. (1.0 *. y) +. (0.5 *. x *. y) in
  let xs = [| 0.0; 1.0; 3.0 |] and ys = [| -1.0; 0.5; 2.0 |] in
  let values = Array.map (fun x -> Array.map (fun y -> f x y) ys) xs in
  let grid = Interpolate.Grid2d.create ~xs ~ys ~values in
  List.iter
    (fun (x, y) -> check_close "bilinear exact" (f x y) (Interpolate.Grid2d.eval grid x y))
    [ (0.5, 0.0); (2.0, 1.0); (1.5, -0.5); (3.0, 2.0) ]

let test_surface_bilinear_recovery () =
  let g = Rng.create ~seed:51 in
  let f ds dc = 1.0 +. (0.2 *. ds) -. (0.3 *. dc) +. (0.05 *. ds *. dc) in
  let points = Array.init 40 (fun _ -> (Rng.gaussian g, Rng.gaussian g)) in
  let values = Array.map (fun (a, b) -> f a b) points in
  let s = Interpolate.Surface.fit_bilinear ~points ~values in
  check_close ~eps:1e-8 "surface eval" (f 0.7 (-0.4))
    (Interpolate.Surface.eval s 0.7 (-0.4));
  check_close ~eps:1e-9 "surface r2" 1.0 (Interpolate.Surface.r2 s)

let test_surface_cubic_recovery () =
  let g = Rng.create ~seed:52 in
  let f ds dc =
    0.3 +. (0.1 *. ds) +. (0.2 *. dc) -. (0.01 *. ds *. ds)
    +. (0.002 *. dc *. dc) +. (0.001 *. ds *. ds *. ds)
    -. (0.0005 *. dc *. dc *. dc) +. (0.03 *. ds *. dc)
  in
  let points = Array.init 80 (fun _ -> (Rng.gaussian g *. 3.0, Rng.gaussian g *. 3.0)) in
  let values = Array.map (fun (a, b) -> f a b) points in
  let s = Interpolate.Surface.fit_cubic ~points ~values in
  check_close ~eps:1e-6 "cubic eval" (f 1.5 (-2.0)) (Interpolate.Surface.eval s 1.5 (-2.0))

(* ---------- Optimisation ---------- *)

let test_nelder_mead_quadratic () =
  let f x = ((x.(0) -. 3.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0) in
  let best, value = Optimize.nelder_mead ~f ~init:[| 0.0; 0.0 |] () in
  check_close ~eps:1e-3 "nm x0" 3.0 best.(0);
  check_close ~eps:1e-3 "nm x1" (-1.0) best.(1);
  Alcotest.(check bool) "nm value small" true (value < 1e-6)

let test_nelder_mead_rosenbrock () =
  let f x =
    (100.0 *. ((x.(1) -. (x.(0) *. x.(0))) ** 2.0)) +. ((1.0 -. x.(0)) ** 2.0)
  in
  let best, _ = Optimize.nelder_mead ~max_iter:5000 ~f ~init:[| -1.2; 1.0 |] () in
  check_close ~eps:1e-2 "rosenbrock x0" 1.0 best.(0);
  check_close ~eps:1e-2 "rosenbrock x1" 1.0 best.(1)

let test_bisect () =
  let root = Optimize.bisect ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  check_close ~eps:1e-9 "sqrt 2" (sqrt 2.0) root

let test_bisect_rejects_same_sign () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Optimize.bisect: endpoints do not bracket a root")
    (fun () -> ignore (Optimize.bisect ~f:(fun x -> x +. 10.0) ~lo:0.0 ~hi:1.0 ()))

let test_golden_section () =
  let x = Optimize.golden_section ~f:(fun x -> (x -. 1.7) ** 2.0) ~lo:0.0 ~hi:4.0 () in
  check_close ~eps:1e-6 "golden min" 1.7 x

(* ---------- Distributions ---------- *)

let test_normal_dist () =
  let d = { D.Normal.mu = 5.0; sigma = 2.0 } in
  check_close ~eps:1e-6 "normal median" 5.0 (D.Normal.quantile d 0.5);
  check_close ~eps:1e-4 "normal +3σ quantile" (5.0 +. (3.0 *. 2.0))
    (D.Normal.quantile d (Quantile.probability_of_sigma 3.0))

let test_lognormal_moments () =
  let d = { D.Lognormal.mu = 0.5; sigma = 0.4 } in
  let g = Rng.create ~seed:61 in
  let xs = Array.init 60_000 (fun _ -> D.Lognormal.sample d g) in
  let s = Moments.summary_of_array xs in
  check_close ~eps:0.02 "lognormal mean" (D.Lognormal.mean d) s.Moments.mean;
  check_close ~eps:0.05 "lognormal std" (D.Lognormal.std d) s.Moments.std

let test_lognormal_fit_roundtrip () =
  let d = { D.Lognormal.mu = 1.0; sigma = 0.3 } in
  let fitted =
    D.Lognormal.fit_moments
      {
        Moments.n = 1;
        mean = D.Lognormal.mean d;
        std = D.Lognormal.std d;
        skewness = 0.0;
        kurtosis = 3.0;
      }
  in
  check_close ~eps:1e-6 "lognormal fit mu" d.D.Lognormal.mu fitted.D.Lognormal.mu;
  check_close ~eps:1e-6 "lognormal fit sigma" d.D.Lognormal.sigma fitted.D.Lognormal.sigma

let test_skew_normal_cdf_quantile () =
  let d = { D.Skew_normal.location = 1.0; scale = 2.0; shape = 3.0 } in
  List.iter
    (fun p ->
      check_close ~eps:1e-6 "SN cdf∘quantile" p
        (D.Skew_normal.cdf d (D.Skew_normal.quantile d p)))
    [ 0.01; 0.2; 0.5; 0.8; 0.99 ]

let test_skew_normal_sampling_matches_moments () =
  let d = { D.Skew_normal.location = 0.0; scale = 1.0; shape = 4.0 } in
  let g = Rng.create ~seed:62 in
  let xs = Array.init 60_000 (fun _ -> D.Skew_normal.sample d g) in
  let s = Moments.summary_of_array xs in
  check_close ~eps:0.02 "SN mean" (D.Skew_normal.mean d) s.Moments.mean;
  check_close ~eps:0.03 "SN std" (D.Skew_normal.std d) s.Moments.std;
  check_close ~eps:0.1 "SN skewness" (D.Skew_normal.skewness d) s.Moments.skewness

let test_skew_normal_fit_moments () =
  let target =
    { Moments.n = 1; mean = 10.0; std = 2.0; skewness = 0.6; kurtosis = 3.5 }
  in
  let d = D.Skew_normal.fit_moments target in
  check_close ~eps:1e-6 "SN fit mean" 10.0 (D.Skew_normal.mean d);
  check_close ~eps:1e-6 "SN fit std" 2.0 (D.Skew_normal.std d);
  check_close ~eps:1e-4 "SN fit skew" 0.6 (D.Skew_normal.skewness d)

let test_skew_normal_saturates () =
  (* Sample skewness beyond the representable bound must clamp, not blow up. *)
  let target =
    { Moments.n = 1; mean = 1.0; std = 1.0; skewness = 2.5; kurtosis = 9.0 }
  in
  let d = D.Skew_normal.fit_moments target in
  Alcotest.(check bool) "finite shape" true (Float.is_finite d.D.Skew_normal.shape);
  Alcotest.(check bool) "skewness near bound" true
    (D.Skew_normal.skewness d > 0.9)

let test_burr_quantile_roundtrip () =
  let d = { D.Burr_xii.lambda = 3.0; c = 4.0; k = 1.5 } in
  List.iter
    (fun p ->
      check_close ~eps:1e-9 "Burr cdf∘quantile" p
        (D.Burr_xii.cdf d (D.Burr_xii.quantile d p)))
    [ 0.01; 0.3; 0.5; 0.9; 0.999 ]

let test_burr_moment () =
  (* E[X] for λ=1, c=2, k=2: k·B(k − 1/c, 1 + 1/c) = 2·B(1.5, 1.5) = π/4. *)
  let d = { D.Burr_xii.lambda = 1.0; c = 2.0; k = 2.0 } in
  check_close ~eps:1e-9 "Burr mean" (Float.pi /. 4.0) (D.Burr_xii.raw_moment d 1)

let test_burr_fit_recovers () =
  let d = { D.Burr_xii.lambda = 20.0; c = 5.0; k = 1.2 } in
  let g = Rng.create ~seed:63 in
  let xs = Array.init 20_000 (fun _ -> D.Burr_xii.sample d g) in
  let fitted = D.Burr_xii.fit_samples xs in
  (* Parameters are weakly identifiable; check quantile agreement instead. *)
  List.iter
    (fun p ->
      let want = D.Burr_xii.quantile d p and got = D.Burr_xii.quantile fitted p in
      if Float.abs (want -. got) > 0.06 *. want then
        Alcotest.failf "Burr fit quantile p=%.4f: want %.3f got %.3f" p want got)
    [ 0.0013; 0.1587; 0.5; 0.8413; 0.9987 ]

let test_lsn_fit_on_lognormal () =
  (* A lognormal sample is a skew-normal in log space with shape 0. *)
  let g = Rng.create ~seed:64 in
  let xs = Array.init 30_000 (fun _ -> Rng.lognormal g ~mu:2.0 ~sigma:0.25) in
  let d = D.Log_skew_normal.fit_samples xs in
  let med = D.Log_skew_normal.quantile d 0.5 in
  check_close ~eps:0.02 "LSN median ~ exp(2)" (exp 2.0) med

(* ---------- Histogram ---------- *)

let test_histogram_counts () =
  let h = Histogram.create ~bins:4 [| 0.0; 0.1; 0.45; 0.55; 0.95; 1.0 |] in
  Alcotest.(check int) "total" 6 h.Histogram.total;
  let density = Histogram.density h in
  let width = Histogram.bin_width h in
  let integral = Array.fold_left (fun acc d -> acc +. (d *. width)) 0.0 density in
  check_close ~eps:1e-9 "density integrates to 1" 1.0 integral

let test_kde_integrates () =
  let g = Rng.create ~seed:65 in
  let xs = Array.init 500 (fun _ -> Rng.gaussian g) in
  let kde = Histogram.kde xs in
  (* Trapezoid over [-6, 6]. *)
  let n = 600 in
  let h = 12.0 /. float_of_int n in
  let integral = ref 0.0 in
  for i = 0 to n do
    let x = -6.0 +. (h *. float_of_int i) in
    let w = if i = 0 || i = n then 0.5 else 1.0 in
    integral := !integral +. (w *. kde x *. h)
  done;
  check_close ~eps:0.01 "kde integrates to ~1" 1.0 !integral

let test_sparkline_shape () =
  let h = Histogram.create ~bins:10 (Array.init 100 (fun i -> float_of_int (i mod 10))) in
  let s = Histogram.sparkline ~width:10 h in
  Alcotest.(check bool) "sparkline non-empty" true (String.length s > 0)

(* ---------- Moments summary arithmetic (SSTA sum operator) ---------- *)

let test_moments_empty_merge_identity () =
  let acc = Moments.of_array [| 1.0; 2.5; -0.75; 4.0 |] in
  (* The identity is physical: the non-empty operand comes back itself,
     so every derived statistic is bitwise unchanged. *)
  Alcotest.(check bool) "merge empty acc == acc" true
    (Moments.merge Moments.empty acc == acc);
  Alcotest.(check bool) "merge acc empty == acc" true
    (Moments.merge acc Moments.empty == acc);
  Alcotest.(check bool) "merge empty empty == empty" true
    (Moments.merge Moments.empty Moments.empty == Moments.empty)

let test_add_scaled_pairwise () =
  (* The population of all pairwise sums x_i + s*y_j is exactly the
     independent sum of the two empirical distributions, so add_scaled
     on the two summaries must reproduce its moments. *)
  let g = Rng.create ~seed:33 in
  let xs = Array.init 40 (fun _ -> Rng.gaussian g +. 2.0) in
  let ys = Array.init 37 (fun _ -> Float.abs (Rng.gaussian g) *. 0.5) in
  let scale = 0.7 in
  let pairs =
    Array.concat
      (Array.to_list
         (Array.map (fun x -> Array.map (fun y -> x +. (scale *. y)) ys) xs))
  in
  let direct = Moments.summary_of_array pairs in
  let s =
    Moments.add_scaled (Moments.summary_of_array xs) ~scale
      (Moments.summary_of_array ys)
  in
  check_close ~eps:1e-10 "pairwise mean" direct.Moments.mean s.Moments.mean;
  check_close ~eps:1e-10 "pairwise std" direct.Moments.std s.Moments.std;
  check_close ~eps:1e-8 "pairwise skew" direct.Moments.skewness s.Moments.skewness;
  check_close ~eps:1e-8 "pairwise kurt" direct.Moments.kurtosis s.Moments.kurtosis

let test_scale_shift_matches_sample () =
  let g = Rng.create ~seed:34 in
  let xs = Array.init 200 (fun _ -> Float.abs (Rng.gaussian g) +. 0.1) in
  List.iter
    (fun (scale, shift) ->
      let mapped = Array.map (fun x -> (scale *. x) +. shift) xs in
      let direct = Moments.summary_of_array mapped in
      let s = Moments.scale_shift (Moments.summary_of_array xs) ~scale ~shift in
      check_close ~eps:1e-10 "ss mean" direct.Moments.mean s.Moments.mean;
      check_close ~eps:1e-10 "ss std" direct.Moments.std s.Moments.std;
      check_close ~eps:1e-8 "ss skew" direct.Moments.skewness s.Moments.skewness;
      check_close ~eps:1e-8 "ss kurt" direct.Moments.kurtosis s.Moments.kurtosis)
    [ (2.0, 1.0); (-1.5, 0.25); (0.0, 7.0) ]

(* ---------- Stat_max: goldens vs the closed-form Gaussian max ---------- *)

module Stat_max = Nsigma_stats.Stat_max

let std_normal =
  { Moments.n = 100_000; mean = 0.0; std = 1.0; skewness = 0.0; kurtosis = 3.0 }

let test_gh_rule_moments () =
  let nodes = Lazy.force Stat_max.gh_nodes in
  let s k =
    Array.fold_left (fun acc (z, w) -> acc +. (w *. (z ** k))) 0.0 nodes
  in
  check_close ~eps:1e-9 "GH weights sum to 1" 1.0 (s 0.0);
  check_close ~eps:1e-9 "GH E[z] = 0" 1.0 (1.0 +. s 1.0);
  check_close ~eps:1e-9 "GH E[z^2] = 1" 1.0 (s 2.0);
  check_close ~eps:1e-9 "GH E[z^4] = 3" 3.0 (s 4.0)

let test_clark_iid_gaussian_golden () =
  (* M = max(X, Y), X and Y iid N(0,1).  Raw moments: E[M^k] =
     2 E[X^k Phi(X)], so the even powers equal E[X^k] (x^2k is even) and
     the odd ones are E[M] = 1/sqrt(pi), E[M^3] = 5/(2 sqrt(pi)). *)
  let r = Stat_max.clark ~rho:0.0 std_normal std_normal in
  let spi = sqrt Float.pi in
  let mu = 1.0 /. spi in
  let r3 = 5.0 /. (2.0 *. spi) in
  let m2 = 1.0 -. (mu *. mu) in
  let m3 = r3 -. (3.0 *. mu) +. (2.0 *. (mu ** 3.0)) in
  let m4 =
    3.0 -. (4.0 *. mu *. r3) +. (6.0 *. mu *. mu) -. (3.0 *. (mu ** 4.0))
  in
  let d = r.Stat_max.dist in
  check_close ~eps:1e-9 "iid max mean" mu d.Moments.mean;
  check_close ~eps:1e-9 "iid max std" (sqrt m2) d.Moments.std;
  check_close ~eps:1e-8 "iid max skew" (m3 /. (m2 ** 1.5)) d.Moments.skewness;
  check_close ~eps:1e-8 "iid max kurt" (m4 /. (m2 *. m2)) d.Moments.kurtosis;
  (* erf is evaluated through a ~1e-8-accurate rational approximation. *)
  check_close ~eps:1e-6 "iid tightness 1/2" 0.5 r.Stat_max.p_first

let test_clark_correlated_mean_golden () =
  (* Equal means and unit variances at correlation rho:
     E[max] = sqrt((1 - rho) / pi). *)
  List.iter
    (fun rho ->
      let r = Stat_max.clark ~rho std_normal std_normal in
      check_close ~eps:1e-9
        (Printf.sprintf "corr mean rho=%.1f" rho)
        (sqrt ((1.0 -. rho) /. Float.pi))
        r.Stat_max.dist.Moments.mean)
    [ -0.5; 0.0; 0.5; 0.9 ]

let test_clark_dominant_input () =
  let hi = { std_normal with Moments.mean = 10.0; std = 0.1 } in
  let lo = { std_normal with Moments.mean = 0.0; std = 0.1 } in
  let r = Stat_max.clark ~rho:0.0 hi lo in
  check_close ~eps:1e-6 "dominant mean" 10.0 r.Stat_max.dist.Moments.mean;
  check_close ~eps:1e-6 "dominant std" 0.1 r.Stat_max.dist.Moments.std;
  check_close ~eps:1e-6 "dominant tightness" 1.0 r.Stat_max.p_first

let test_moment_matches_clark_on_gaussian () =
  (* On Gaussian inputs the CF transform is the identity, so the
     moment-matching operator must agree with Clark's exact result up to
     quadrature error. *)
  let a = { std_normal with Moments.mean = 1.0; std = 2.0 } in
  let b = std_normal in
  List.iter
    (fun rho ->
      let c = (Stat_max.clark ~rho a b).Stat_max.dist in
      let m = (Stat_max.moment ~rho a b).Stat_max.dist in
      check_close ~eps:2e-3 "gauss mean" c.Moments.mean m.Moments.mean;
      check_close ~eps:2e-3 "gauss std" c.Moments.std m.Moments.std;
      if Float.abs (c.Moments.skewness -. m.Moments.skewness) > 5e-3 then
        Alcotest.failf "gauss skew: clark %.4f vs moment %.4f"
          c.Moments.skewness m.Moments.skewness)
    [ -0.3; 0.0; 0.6 ]

let test_cornish_fisher_identity_and_clamp () =
  (* Gaussian inputs: w(z) = z exactly. *)
  List.iter
    (fun z ->
      check_close ~eps:1e-12 "CF identity" z
        (Stat_max.cornish_fisher ~skew:0.0 ~kurt:3.0 z))
    [ -3.0; -1.0; 0.0; 0.5; 3.0 ];
  (* Far outside the monotone domain the inputs are clamped, so the
     transform stays strictly increasing (a genuine quantile function)
     over the solver's bisection range. *)
  let prev = ref Float.neg_infinity in
  let ok = ref true in
  for i = 0 to 160 do
    let z = -8.0 +. (float_of_int i /. 10.0) in
    let w = Stat_max.cornish_fisher ~skew:5.0 ~kurt:50.0 z in
    if w <= !prev then ok := false;
    prev := w
  done;
  Alcotest.(check bool) "clamped CF strictly increasing" true !ok

let test_operator_names () =
  Alcotest.(check string) "clark name" "clark"
    (Stat_max.operator_name Stat_max.Clark);
  Alcotest.(check bool) "roundtrip" true
    (Stat_max.operator_of_string "moment" = Stat_max.Moment);
  Alcotest.check_raises "unknown operator"
    (Invalid_argument
       "Stat_max.operator_of_string: \"bogus\" (expected \"clark\" or \
        \"moment\")") (fun () ->
      ignore (Stat_max.operator_of_string "bogus"))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "nsigma_stats"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "split decorrelated" `Quick test_rng_split_decorrelated;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "exponential" `Quick test_rng_exponential;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "special",
        [
          Alcotest.test_case "erf values" `Quick test_erf_values;
          Alcotest.test_case "normal cdf symmetry" `Quick test_normal_cdf_symmetry;
          Alcotest.test_case "quantile roundtrip" `Quick test_normal_quantile_roundtrip;
          Alcotest.test_case "quantile known" `Quick test_normal_quantile_known;
          Alcotest.test_case "lgamma" `Quick test_lgamma;
          Alcotest.test_case "beta" `Quick test_beta;
          Alcotest.test_case "owen t" `Quick test_owen_t;
          Alcotest.test_case "log1p_exp" `Quick test_log1p_exp;
        ] );
      ( "moments",
        [
          Alcotest.test_case "known sample" `Quick test_moments_known_sample;
          Alcotest.test_case "symmetric skew" `Quick test_moments_symmetric_zero_skew;
          Alcotest.test_case "merge = concat" `Quick test_moments_merge_equals_concat;
          Alcotest.test_case "degenerate" `Quick test_moments_empty_degenerate;
          Alcotest.test_case "empty merge identity" `Quick
            test_moments_empty_merge_identity;
          Alcotest.test_case "add_scaled pairwise" `Quick test_add_scaled_pairwise;
          Alcotest.test_case "scale_shift" `Quick test_scale_shift_matches_sample;
          qt prop_moments_shift_invariance;
          qt prop_moments_scale;
        ] );
      ( "stat_max",
        [
          Alcotest.test_case "GH rule moments" `Quick test_gh_rule_moments;
          Alcotest.test_case "clark iid golden" `Quick
            test_clark_iid_gaussian_golden;
          Alcotest.test_case "clark correlated mean" `Quick
            test_clark_correlated_mean_golden;
          Alcotest.test_case "clark dominant input" `Quick
            test_clark_dominant_input;
          Alcotest.test_case "moment = clark on gaussian" `Quick
            test_moment_matches_clark_on_gaussian;
          Alcotest.test_case "cornish-fisher" `Quick
            test_cornish_fisher_identity_and_clamp;
          Alcotest.test_case "operator names" `Quick test_operator_names;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "median" `Quick test_quantile_median;
          Alcotest.test_case "extremes" `Quick test_quantile_extremes;
          Alcotest.test_case "interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "sigma probabilities" `Quick test_sigma_probabilities;
          qt prop_quantile_monotone;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "identity" `Quick test_solve_identity;
          Alcotest.test_case "random systems" `Quick test_solve_random_system;
          Alcotest.test_case "singular fails" `Quick test_solve_singular_fails;
          Alcotest.test_case "cholesky" `Quick test_cholesky_spd;
          Alcotest.test_case "lu reuse" `Quick test_lu_matches_solve;
          Alcotest.test_case "tridiagonal" `Quick test_tridiag_matches_dense;
        ] );
      ( "regression",
        [
          Alcotest.test_case "exact recovery" `Quick test_regression_exact_recovery;
          Alcotest.test_case "rank deficient" `Quick test_regression_constant_feature;
          Alcotest.test_case "polyfit" `Quick test_polyfit;
        ] );
      ( "interpolate",
        [
          Alcotest.test_case "grid nodes" `Quick test_grid2d_nodes_exact;
          Alcotest.test_case "grid clamps" `Quick test_grid2d_clamping;
          Alcotest.test_case "bilinear exact" `Quick test_grid2d_bilinear_exact;
          Alcotest.test_case "surface bilinear" `Quick test_surface_bilinear_recovery;
          Alcotest.test_case "surface cubic" `Quick test_surface_cubic_recovery;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "quadratic" `Quick test_nelder_mead_quadratic;
          Alcotest.test_case "rosenbrock" `Quick test_nelder_mead_rosenbrock;
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "bisect no bracket" `Quick test_bisect_rejects_same_sign;
          Alcotest.test_case "golden section" `Quick test_golden_section;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "normal" `Quick test_normal_dist;
          Alcotest.test_case "lognormal moments" `Quick test_lognormal_moments;
          Alcotest.test_case "lognormal fit" `Quick test_lognormal_fit_roundtrip;
          Alcotest.test_case "SN cdf/quantile" `Quick test_skew_normal_cdf_quantile;
          Alcotest.test_case "SN sampling" `Quick test_skew_normal_sampling_matches_moments;
          Alcotest.test_case "SN moment fit" `Quick test_skew_normal_fit_moments;
          Alcotest.test_case "SN saturation" `Quick test_skew_normal_saturates;
          Alcotest.test_case "Burr roundtrip" `Quick test_burr_quantile_roundtrip;
          Alcotest.test_case "Burr moment" `Quick test_burr_moment;
          Alcotest.test_case "Burr fit" `Slow test_burr_fit_recovers;
          Alcotest.test_case "LSN on lognormal" `Quick test_lsn_fit_on_lognormal;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts+density" `Quick test_histogram_counts;
          Alcotest.test_case "kde integrates" `Quick test_kde_integrates;
          Alcotest.test_case "sparkline" `Quick test_sparkline_shape;
        ] );
    ]
