(* Tests for the block-based SSTA engine: the distribution algebra on
   hand-analysable circuits (chain sums, diamond reconvergence against
   Clark's closed form), degenerate agreement with the scalar engine,
   report rendering, and a validate smoke against per-path MC on a real
   characterised library. *)

module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module N = Nsigma_netlist.Netlist
module B = Nsigma_netlist.Builder
module Bm = Nsigma_netlist.Benchmarks
module Design = Nsigma_sta.Design
module Provider = Nsigma_sta.Provider
module Engine = Nsigma_sta.Engine
module Engine_core = Nsigma_sta.Engine_core
module Ssta = Nsigma_sta.Ssta
module Timing_report = Nsigma_sta.Timing_report
module Moments = Nsigma_stats.Moments
module Stat_max = Nsigma_stats.Stat_max

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let tech = T.with_vdd T.default_28nm 0.6
let ng = Variation.global_deviate_dim

(* A Gaussian delay distribution with purely local (independent)
   variance: mean [m], standard deviation [s]. *)
let local_dist m s =
  {
    Ssta.d_mean = m;
    d_a = Array.make ng 0.0;
    d_b = Array.make ng 0.0;
    d_var_l = s *. s;
    d_m3_l = 0.0;
    d_m4_l = 3.0 *. (s ** 4.0);
  }

(* Constant-distribution provider: every cell arc contributes [d], wires
   are free, slews pass through — the SSTA counterpart of test_sta's
   unit provider. *)
let const_provider d =
  {
    Engine_core.m_label = "const-dist";
    m_cell_delay =
      (fun _ ~edge:_ ~in_net:_ ~in_edge:_ ~input_slew:_ ~load_cap:_ ->
        { Ssta.dd = d; d_slew_tc = 0.0 });
    m_cell_out_slew =
      (fun _ ~edge:_ ~in_net:_ ~in_edge:_ ~input_slew ~load_cap:_ -> input_slew);
    m_wire_delay =
      (fun ~net:_ ~driver:_ ~sink:_ ~tree:_ ~tap:_ ->
        { Ssta.dd = Ssta.zero_dist; d_slew_tc = 0.0 });
    m_wire_slew_degrade = (fun ~wire_delay:_ ~slew_at_root -> slew_at_root);
  }

let chain n =
  let b = B.create ~name:"chain" in
  let a = B.input b "a" in
  let net = ref a in
  for _ = 1 to n do
    net := B.inv b !net
  done;
  B.output b !net;
  B.finish b

(* a fans out to two inverters whose outputs reconverge on a NAND. *)
let diamond () =
  let b = B.create ~name:"diamond" in
  let a = B.input b "a" in
  let n1 = B.inv b a in
  let n2 = B.inv b a in
  B.output b (B.nand2 b n1 n2);
  B.finish b

(* ---- algebra on hand-analysable circuits ---- *)

let test_chain_sums_moments () =
  let nl = chain 4 in
  let design = Design.attach_parasitics tech nl in
  let d = local_dist 10e-12 1e-12 in
  let report = Ssta.analyze tech (const_provider d) design in
  let out = Ssta.circuit_dist report in
  (* 4 independent Gaussian stages: means and variances add, no joins on
     a chain so the result is exact. *)
  check_close "chain mean" 40e-12 out.Ssta.d_mean;
  check_close "chain var" 4e-24 (Ssta.variance out);
  let s = Ssta.to_summary out in
  check_close ~eps:1e-9 "chain skew 0" 1.0 (1.0 +. s.Moments.skewness);
  check_close ~eps:1e-9 "chain kurt 3" 3.0 s.Moments.kurtosis;
  (* Cornish-Fisher quantile of a Gaussian is mu + n*sigma exactly. *)
  check_close "chain +3s" (40e-12 +. (3.0 *. 2e-12))
    (Ssta.quantile out ~sigma:3.0)

let test_diamond_clark_join () =
  let nl = diamond () in
  let design = Design.attach_parasitics tech nl in
  let d = local_dist 10e-12 1e-12 in
  let report = Ssta.analyze tech (const_provider d) design in
  let out = Ssta.circuit_dist report in
  (* The two NAND input candidates are iid Gaussians (inv + nand, mean
     20 ps, var 2 ps^2, all variance local so Tracked correlation sees
     rho = 0).  Clark: E[max] = mu + sigma_delta * phi(0)
     = mu + sqrt(2 var) / sqrt(2 pi) = mu + sigma / sqrt(pi). *)
  let mu = 20e-12 and var = 2e-24 in
  let expected = mu +. (sqrt var /. sqrt Float.pi) in
  check_close ~eps:1e-9 "diamond mean = Clark closed form" expected
    out.Ssta.d_mean;
  (* Var(max) = mu^2 + var - E[max]^2 for iid zero-rho inputs:
     E[max^2] = mu^2 + var (even power symmetry). *)
  let evar = (mu *. mu) +. var -. (expected *. expected) in
  check_close ~eps:1e-6 "diamond variance" evar (Ssta.variance out)

let test_degenerate_matches_scalar () =
  (* With sigma = 0 every max is a plain max: the statistical engine
     must reproduce the scalar engine's arrival exactly. *)
  let scalar_provider =
    {
      Provider.label = "unit";
      cell_delay = (fun _ ~edge:_ ~input_slew:_ ~load_cap:_ -> 10e-12);
      cell_out_slew = (fun _ ~edge:_ ~input_slew ~load_cap:_ -> input_slew);
      wire_delay = (fun ~net:_ ~driver:_ ~sink:_ ~tree:_ ~tap:_ -> 0.0);
      wire_slew_degrade = (fun ~wire_delay:_ ~slew_at_root -> slew_at_root);
    }
  in
  List.iter
    (fun nl ->
      let design = Design.attach_parasitics tech nl in
      let scalar = Engine.analyze tech scalar_provider design in
      let d = local_dist 10e-12 0.0 in
      let stat = Ssta.analyze tech (const_provider d) design in
      let out = Ssta.circuit_dist stat in
      check_close ~eps:1e-12 "degenerate mean = scalar delay"
        (Engine.circuit_delay scalar) out.Ssta.d_mean;
      check_close ~eps:1e-12 "degenerate std 0" 1.0 (1.0 +. Ssta.std out))
    [ chain 5; diamond () ]

let test_dist_summary_roundtrip () =
  let s =
    {
      Moments.n = 1000;
      mean = 50e-12;
      std = 8e-12;
      skewness = 0.45;
      kurtosis = 3.6;
    }
  in
  List.iter
    (fun frac ->
      let d = Ssta.of_summary ~global_frac:frac s in
      let back = Ssta.to_summary d in
      check_close ~eps:1e-9 "roundtrip mean" s.Moments.mean back.Moments.mean;
      check_close ~eps:1e-9 "roundtrip std" s.Moments.std back.Moments.std)
    [ 0.0; 0.35; 1.0 ]

let test_max_op_counters () =
  let was = Nsigma_obs.Metrics.enabled () in
  Nsigma_obs.Metrics.set_enabled true;
  let before = Nsigma_obs.Metrics.find_counter "sta.ssta.max_ops" in
  let clark_before = Nsigma_obs.Metrics.find_counter "sta.ssta.max.clark" in
  let design = Design.attach_parasitics tech (diamond ()) in
  let d = local_dist 10e-12 1e-12 in
  ignore (Ssta.analyze tech (const_provider d) design);
  let ops = Nsigma_obs.Metrics.find_counter "sta.ssta.max_ops" - before in
  let clark =
    Nsigma_obs.Metrics.find_counter "sta.ssta.max.clark" - clark_before
  in
  Nsigma_obs.Metrics.set_enabled was;
  (* One reconvergence per output edge of the NAND. *)
  Alcotest.(check bool) "max ops ticked" true (ops >= 1);
  Alcotest.(check int) "default operator is clark" ops clark

(* ---- statistical timing report ---- *)

let test_stat_report () =
  let nl = diamond () in
  let design = Design.attach_parasitics tech nl in
  let d = local_dist 10e-12 1e-12 in
  let report = Ssta.analyze tech (const_provider d) design in
  let q3 = Ssta.quantile (Ssta.circuit_dist report) ~sigma:3.0 in
  let tr = Timing_report.of_ssta ~period:q3 report in
  (* Period pinned at the worst +3s arrival: worst slack is exactly 0
     and nothing is violated. *)
  check_close ~eps:1e-9 "wns 0 at q3 period" 1.0
    (1.0 +. (tr.Timing_report.s_wns /. 1e-12));
  Alcotest.(check int) "no violations" 0
    (List.length (Timing_report.stat_violations tr));
  let tight =
    Timing_report.of_ssta ~period:(q3 *. 0.5) report
  in
  Alcotest.(check bool) "violations at half period" true
    (List.length (Timing_report.stat_violations tight) > 0);
  Alcotest.(check bool) "tns negative" true (tight.Timing_report.s_tns < 0.0);
  let rendered = Format.asprintf "%a" (Timing_report.pp_ssta nl) tr in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report mentions WNS" true (contains rendered "WNS")

(* ---- validate smoke on a real library ---- *)

let library =
  lazy
    (let cells =
       List.concat_map
         (fun k ->
           [ Cell.make k ~strength:1; Cell.make k ~strength:2;
             Cell.make k ~strength:4; Cell.make k ~strength:8 ])
         Cell.all_kinds
     in
     Library.load_or_characterize ~n_mc:250
       ~slews:[| 10e-12; 50e-12; 150e-12; 300e-12 |]
       ~path:(Filename.concat (Filename.get_temp_dir_name ()) "nsigma_test_ssta.lvf")
       tech cells)

let test_validate_smoke () =
  let lib = Lazy.force library in
  let bm = List.hd Bm.small_variants in
  let design = Design.attach_parasitics tech (bm.Bm.generate ()) in
  let v = Ssta.validate ~n:120 ~k:4 tech lib design in
  Alcotest.(check bool) "covers paths" true (v.Ssta.va_n_paths >= 1);
  Alcotest.(check int) "mc samples" 120 v.Ssta.va_mc_n;
  (* Loose smoke bars: the full-accuracy gate lives in bench ssta. *)
  Alcotest.(check bool) "mean within 15%" true
    (Float.abs v.Ssta.va_err_mean < 0.15);
  Alcotest.(check bool) "+3s within 25%" true
    (Float.abs v.Ssta.va_err_p3 < 0.25);
  Alcotest.(check bool) "ssta worst PO covers validated subset" true
    (Ssta.quantile v.Ssta.va_ssta_full ~sigma:3.0
     >= Ssta.quantile v.Ssta.va_ssta ~sigma:3.0 -. 1e-15)

let test_lvf_provider_sanity () =
  let lib = Lazy.force library in
  let bm = List.hd Bm.small_variants in
  let design = Design.attach_parasitics tech (bm.Bm.generate ()) in
  let provider = Ssta.lvf_provider tech lib design in
  let report = Ssta.analyze tech provider design in
  let out = Ssta.circuit_dist report in
  Alcotest.(check bool) "positive mean" true (out.Ssta.d_mean > 0.0);
  Alcotest.(check bool) "positive sigma" true (Ssta.std out > 0.0);
  (* The global corners must explain part of the variance (shared vth /
     beta response), but local mismatch must survive too. *)
  let vg = Ssta.variance out -. out.Ssta.d_var_l in
  Alcotest.(check bool) "global share positive" true (vg > 0.0);
  Alcotest.(check bool) "local share positive" true (out.Ssta.d_var_l > 0.0);
  (* Scalar nominal arrival should sit near the SSTA mean (the
     statistical pass re-centres arcs on the same tables). *)
  let scalar = Engine.analyze tech (Provider.nominal lib) design in
  let rel =
    Float.abs (out.Ssta.d_mean -. Engine.circuit_delay scalar)
    /. Engine.circuit_delay scalar
  in
  Alcotest.(check bool) "mean near nominal (20%)" true (rel < 0.20)

let () =
  Alcotest.run "nsigma_ssta"
    [
      ( "algebra",
        [
          Alcotest.test_case "chain sums moments" `Quick test_chain_sums_moments;
          Alcotest.test_case "diamond clark join" `Quick test_diamond_clark_join;
          Alcotest.test_case "degenerate = scalar" `Quick
            test_degenerate_matches_scalar;
          Alcotest.test_case "summary roundtrip" `Quick test_dist_summary_roundtrip;
          Alcotest.test_case "max-op counters" `Quick test_max_op_counters;
        ] );
      ("report", [ Alcotest.test_case "stat report" `Quick test_stat_report ]);
      ( "validate",
        [
          Alcotest.test_case "lvf provider sanity" `Slow test_lvf_provider_sanity;
          Alcotest.test_case "validate smoke" `Slow test_validate_smoke;
        ] );
    ]
