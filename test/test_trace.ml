(* Tracing layer: bounded-buffer drop accounting, deterministic
   cross-domain merge, the zero-perturbation invariant (populations must
   be bit-identical with tracing on vs off, on both kernels), the Chrome
   trace-event export schema, and the collapsed-stack flamegraph
   format. *)

module Trace = Nsigma_obs.Trace
module Metrics = Nsigma_obs.Metrics
module T = Nsigma_process.Technology
module Rng = Nsigma_stats.Rng
module Sampler = Nsigma_stats.Sampler
module Cell = Nsigma_liberty.Cell
module Ch = Nsigma_liberty.Characterize
module Monte_carlo = Nsigma_spice.Monte_carlo
module Cell_sim = Nsigma_spice.Cell_sim
module Executor = Nsigma_exec.Executor

let tech = T.with_vdd T.default_28nm 0.6

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* The per-domain cap default mirrors [Trace.default]; tests that shrink
   it must restore it so later tests see the real capacity. *)
let default_cap = 65536

let with_trace f =
  let was = Trace.enabled () in
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.reset ();
      Trace.set_max_records default_cap;
      Trace.set_enabled was)
    f

(* ----- recording basics ----- *)

let ti_ping = Trace.instant_type ~cat:"test" ~args:[ "k" ] "test.ping"
let ts_outer = Trace.span_type ~cat:"test" "test.outer"
let ts_inner = Trace.span_type ~cat:"test" ~args:[ "x"; "y" ] "test.inner"
let tc_val = Trace.counter_type ~cat:"test" "test.val"

let test_disabled_noop () =
  Trace.set_enabled false;
  Trace.reset ();
  Trace.instant ti_ping ~a:1.0 ();
  Trace.counter tc_val 2.0;
  let r = Trace.with_span ts_outer (fun () -> 42) in
  Alcotest.(check int) "with_span returns the body's value" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (Trace.stats ()).Trace.recorded;
  Alcotest.(check bool) "no events" true (Trace.events () = [])

let test_event_decoding () =
  with_trace (fun () ->
      Trace.with_span ts_inner ~a:3.0 ~b:4.0 (fun () ->
          Trace.instant ti_ping ~a:7.0 ());
      Trace.counter tc_val 9.0;
      match Trace.events () with
      | [ b; i; e; c ] ->
        Alcotest.(check bool) "begin kind" true (b.Trace.ev_kind = Trace.Begin);
        Alcotest.(check string) "begin name" "test.inner" b.Trace.ev_name;
        Alcotest.(check string) "begin cat" "test" b.Trace.ev_cat;
        Alcotest.(check bool)
          "begin args carry the declared names" true
          (b.Trace.ev_args = [ ("x", 3.0); ("y", 4.0) ]);
        Alcotest.(check bool) "instant kind" true (i.Trace.ev_kind = Trace.Instant);
        Alcotest.(check bool)
          "instant arg" true
          (i.Trace.ev_args = [ ("k", 7.0) ]);
        Alcotest.(check bool) "end kind" true (e.Trace.ev_kind = Trace.End);
        Alcotest.(check bool) "end carries no args" true (e.Trace.ev_args = []);
        Alcotest.(check bool) "counter kind" true (c.Trace.ev_kind = Trace.Counter);
        Alcotest.(check bool)
          "counter value" true
          (c.Trace.ev_args = [ ("value", 9.0) ])
      | evs ->
        Alcotest.failf "expected 4 events, got %d" (List.length evs))

(* ----- bounded buffers ----- *)

let test_wraparound_drop_accounting () =
  with_trace (fun () ->
      Trace.set_max_records 32;
      for k = 1 to 100 do
        Trace.instant ti_ping ~a:(float_of_int k) ()
      done;
      let s = Trace.stats () in
      Alcotest.(check int) "kept exactly the cap" 32 s.Trace.recorded;
      Alcotest.(check int) "every overflow counted" 68 s.Trace.dropped;
      (* Drop-newest: the retained records are the oldest ones. *)
      let evs = Trace.events () in
      Alcotest.(check int) "events match recorded" 32 (List.length evs);
      let first = List.hd evs and last = List.nth evs 31 in
      Alcotest.(check bool)
        "oldest record retained" true
        (first.Trace.ev_args = [ ("k", 1.0) ]);
      Alcotest.(check bool)
        "newest retained is the 32nd" true
        (last.Trace.ev_args = [ ("k", 32.0) ]);
      (* Export must surface the loss, not hide it. *)
      Alcotest.(check bool)
        "drop count exported" true
        (contains ~needle:"\"dropped_events\":68" (Trace.to_chrome_json ()));
      (* reset clears the drop ledger too. *)
      Trace.reset ();
      Alcotest.(check int) "reset zeroes drops" 0 (Trace.stats ()).Trace.dropped)

let test_cap_floor () =
  with_trace (fun () ->
      Trace.set_max_records 1;
      (* Clamped to >= 16, so 16 records survive. *)
      for k = 1 to 20 do
        Trace.instant ti_ping ~a:(float_of_int k) ()
      done;
      Alcotest.(check int) "cap clamped to 16" 16 (Trace.stats ()).Trace.recorded)

(* ----- cross-domain merge ----- *)

let spawn_workload () =
  (* Two raw domains plus the main one, each with a nested span pair and
     a burst of instants; [Domain.spawn] works regardless of the
     executor's core-count clamp. *)
  let burn () =
    (* Enough work that the outer span accrues its own self time (the
       flamegraph only emits stacks with nonzero self attribution). *)
    ignore (Sys.opaque_identity (Array.init 10_000 float_of_int))
  in
  let worker tag () =
    Trace.with_span ts_outer (fun () ->
        burn ();
        Trace.with_span ts_inner ~a:tag (fun () ->
            for k = 1 to 50 do
              Trace.instant ti_ping ~a:(tag +. float_of_int k) ()
            done);
        burn ())
  in
  let d1 = Domain.spawn (worker 1000.0) in
  let d2 = Domain.spawn (worker 2000.0) in
  worker 0.0 ();
  Domain.join d1;
  Domain.join d2

let test_merge_deterministic () =
  with_trace (fun () ->
      spawn_workload ();
      let evs = Trace.events () in
      let s = Trace.stats () in
      Alcotest.(check int) "3 tracks" 3 s.Trace.tracks;
      (* Per domain: outer B/E, inner B/E, 50 instants = 54 records. *)
      Alcotest.(check int)
        "3 domains x 54 records" (3 * 54) (List.length evs);
      Alcotest.(check int) "nothing dropped" 0 s.Trace.dropped;
      (* Re-reading the same buffers must give the identical merge. *)
      Alcotest.(check bool)
        "merge is reproducible" true
        (evs = Trace.events ());
      (* Global order is sorted by timestamp. *)
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          a.Trace.ev_ts_ns <= b.Trace.ev_ts_ns && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "globally time-sorted" true (sorted evs);
      (* Per-track order must be append order: timestamps nondecreasing
         and spans strictly nested (every End closes the latest Begin). *)
      List.iter
        (fun tid ->
          let track =
            List.filter (fun e -> e.Trace.ev_tid = tid) evs
          in
          Alcotest.(check bool)
            (Printf.sprintf "track %d time-sorted" tid)
            true (sorted track);
          let depth =
            List.fold_left
              (fun d e ->
                Alcotest.(check bool) "no unmatched End" true (d >= 0);
                match e.Trace.ev_kind with
                | Trace.Begin -> d + 1
                | Trace.End -> d - 1
                | _ -> d)
              0 track
          in
          Alcotest.(check int)
            (Printf.sprintf "track %d spans balanced" tid)
            0 depth)
        [ 0; 1; 2 ])

(* ----- the zero-perturbation invariant ----- *)

let sampled_arc ~kernel () =
  let cell = Cell.make Cell.Inv ~strength:1 in
  Monte_carlo.arc_delays_sampled ~exec:Executor.sequential ~kernel
    ~sampling:Sampler.Mc ~rtol:0.3 tech (Rng.create ~seed:7) ~n:2048
    ~plan:(fun () -> Cell.plan tech cell ~output_edge:`Rise)
    ~input_slew:40e-12
    ~load_cap:(Cell.fo4_load tech cell)

let test_bit_identical_on_off () =
  (* The adaptive path exercises the convergence-event emission, which
     sorts copies of the population; stopping decisions must not move. *)
  List.iter
    (fun (kname, kernel) ->
      Trace.set_enabled false;
      let off = sampled_arc ~kernel () in
      let on = with_trace (fun () -> sampled_arc ~kernel ()) in
      Alcotest.(check bool)
        (kname ^ ": delays bit-identical with tracing on vs off")
        true
        (off.Monte_carlo.s_delays = on.Monte_carlo.s_delays);
      Alcotest.(check bool)
        (kname ^ ": out slews bit-identical")
        true
        (off.Monte_carlo.s_out_slews = on.Monte_carlo.s_out_slews);
      Alcotest.(check int)
        (kname ^ ": same batch count")
        off.Monte_carlo.s_batches on.Monte_carlo.s_batches)
    [ ("fast", Cell_sim.Fast); ("rk4", Cell_sim.Rk4) ]

let small_table ~exec () =
  Ch.characterize ~n_mc:64 ~seed:3 ~slews:[| 10e-12; 60e-12 |]
    ~loads:[| 0.5e-15; 2e-15 |] ~exec ~kernel:Cell_sim.Fast ~rtol:0.4 tech
    (Cell.make Cell.Nand2 ~strength:1)
    ~edge:`Fall

let test_characterize_bit_identical_on_off () =
  Trace.set_enabled false;
  let off = small_table ~exec:Executor.sequential () in
  let on = with_trace (fun () -> small_table ~exec:Executor.sequential ()) in
  Alcotest.(check bool)
    "characterised tables bit-identical with tracing on vs off" true
    (off.Ch.points = on.Ch.points)

(* ----- convergence event stream ----- *)

let count_named evs name =
  List.length (List.filter (fun e -> e.Trace.ev_name = name) evs)

let test_convergence_events () =
  with_trace (fun () ->
      let r = sampled_arc ~kernel:Cell_sim.Fast () in
      let evs = Trace.events () in
      let batches =
        List.filter (fun e -> e.Trace.ev_name = "sampling.batch") evs
      in
      (* One verdict per adaptive batch, in the sampling category. *)
      Alcotest.(check int)
        "one batch event per batch" r.Monte_carlo.s_batches
        (List.length batches);
      List.iter
        (fun e ->
          Alcotest.(check string) "sampling category" "sampling" e.Trace.ev_cat;
          List.iter
            (fun k ->
              Alcotest.(check bool)
                (Printf.sprintf "batch event carries %s" k)
                true
                (List.mem_assoc k e.Trace.ev_args))
            [ "target"; "ci_rel"; "converged"; "capped" ])
        batches;
      (* The final verdict is the one that stopped the loop. *)
      let last = List.nth batches (List.length batches - 1) in
      let drawn = Array.length r.Monte_carlo.s_delays in
      Alcotest.(check (float 0.0))
        "final target equals samples drawn" (float_of_int drawn)
        (List.assoc "target" last.Trace.ev_args);
      Alcotest.(check bool)
        "final batch converged or capped" true
        (List.assoc "converged" last.Trace.ev_args = 1.0
        || List.assoc "capped" last.Trace.ev_args = 1.0);
      Alcotest.(check bool)
        "drawn counter sampled" true
        (count_named evs "sampling.drawn" >= 1))

let test_seq_vs_pool_event_population () =
  (* The sampling-event stream derives only from the (deterministic)
     stopping decisions, so its population is independent of the
     executor — including on hosts where a requested pool clamps to
     sequential. *)
  let names_of evs =
    List.sort compare
      (List.filter_map
         (fun e ->
           if e.Trace.ev_cat = "sampling" then
             Some (e.Trace.ev_name, e.Trace.ev_args)
           else None)
         evs)
  in
  let run exec =
    with_trace (fun () ->
        ignore (small_table ~exec ());
        names_of (Trace.events ()))
  in
  let seq = run Executor.sequential in
  let pool = Executor.domain_pool ~jobs:2 () in
  let par = run pool in
  Alcotest.(check bool)
    "sampling events identical under seq and pool" true (seq = par)

(* ----- stage spans and GC probes ----- *)

let test_metrics_span_emits_trace_and_gc () =
  with_trace (fun () ->
      let r =
        Metrics.span "trace_test" (fun () ->
            (* Churn enough small boxed values to force a minor
               collection: native code only refreshes the quick_stat
               minor-words counter at GC points, so a burst that fits in
               the minor heap would read as a zero delta. *)
            let n = ref 0 in
            for i = 1 to 1_000_000 do
              let cell = Sys.opaque_identity (i, float_of_int i) in
              if fst cell land 1 = 0 then incr n
            done;
            !n)
      in
      Alcotest.(check int) "span body ran" 500_000 r;
      let evs = Trace.events () in
      Alcotest.(check int) "stage span opened" 1
        (List.length
           (List.filter
              (fun e ->
                e.Trace.ev_name = "stage.trace_test"
                && e.Trace.ev_kind = Trace.Begin)
              evs));
      let probes = List.filter (fun e -> e.Trace.ev_name = "gc.probe") evs in
      Alcotest.(check bool) "GC probe attached" true (probes <> []);
      let p = List.hd probes in
      Alcotest.(check string) "gc category" "gc" p.Trace.ev_cat;
      Alcotest.(check bool)
        "allocation delta observed" true
        (List.assoc "minor_words" p.Trace.ev_args > 0.0))

(* ----- Chrome trace-event export ----- *)

let test_chrome_json_schema () =
  with_trace (fun () ->
      spawn_workload ();
      Trace.counter tc_val 5.0;
      let json = Trace.to_chrome_json () in
      let count c =
        String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 json
      in
      Alcotest.(check int) "balanced braces" (count '{') (count '}');
      Alcotest.(check int) "balanced brackets" (count '[') (count ']');
      Alcotest.(check bool) "even quote count" true (count '"' mod 2 = 0);
      Alcotest.(check bool)
        "no trailing comma" false
        (contains ~needle:",}" json || contains ~needle:", }" json);
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "export contains %S" needle)
            true (contains ~needle json))
        [
          "\"traceEvents\"";
          "\"thread_name\"";
          "\"ph\":\"B\"";
          "\"ph\":\"E\"";
          "\"ph\":\"i\"";
          "\"ph\":\"C\"";
          "\"schema\":\"nsigma-trace\"";
          "\"tracks\":3";
          "\"dropped_events\":0";
        ];
      (* One thread_name metadata record per track. *)
      let rec occurrences i acc =
        if i + 13 > String.length json then acc
        else if String.sub json i 13 = "\"thread_name\"" then
          occurrences (i + 13) (acc + 1)
        else occurrences (i + 1) acc
      in
      Alcotest.(check int) "one thread_name per track" 3 (occurrences 0 0))

(* ----- flamegraph export ----- *)

let test_folded_format () =
  with_trace (fun () ->
      spawn_workload ();
      let folded = Trace.to_folded () in
      Alcotest.(check bool) "non-empty" true (String.length folded > 0);
      Alcotest.(check bool)
        "ends with newline" true
        (folded.[String.length folded - 1] = '\n');
      let lines =
        String.split_on_char '\n' folded
        |> List.filter (fun l -> l <> "")
      in
      List.iter
        (fun line ->
          (* "stack;frames self_ns": exactly one space, numeric suffix. *)
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "no separator in %S" line
          | Some i ->
            let stack = String.sub line 0 i in
            let ns = String.sub line (i + 1) (String.length line - i - 1) in
            Alcotest.(check bool)
              (Printf.sprintf "stack prefix in %S" line)
              true
              (String.length stack > 0 && contains ~needle:"domain-" stack);
            Alcotest.(check bool)
              (Printf.sprintf "no embedded spaces in %S" line)
              false
              (String.contains stack ' ');
            (match int_of_string_opt ns with
            | Some v ->
              Alcotest.(check bool)
                (Printf.sprintf "positive self time in %S" line)
                true (v > 0)
            | None -> Alcotest.failf "self time not numeric in %S" line))
        lines;
      (* The nested workload yields both the outer-only and
         outer;inner stacks on each of the three tracks.  Track ids
         depend on how many domains earlier tests registered, so derive
         the names from the output itself. *)
      let stacks = List.map (fun l ->
          String.sub l 0 (String.rindex l ' ')) lines
      in
      let domains =
        List.sort_uniq compare
          (List.map
             (fun s ->
               match String.index_opt s ';' with
               | Some i -> String.sub s 0 i
               | None -> s)
             stacks)
      in
      Alcotest.(check int) "three domains in the flamegraph" 3
        (List.length domains);
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s stacks present" d)
            true
            (List.mem (d ^ ";test.outer") stacks
            && List.mem (d ^ ";test.outer;test.inner") stacks))
        domains;
      Alcotest.(check bool)
        "lines sorted" true
        (lines = List.sort String.compare lines))

let test_write_artifacts () =
  with_trace (fun () ->
      Trace.instant ti_ping ~a:1.0 ();
      let path = Filename.temp_file "nsigma_trace" ".json" in
      Fun.protect
        ~finally:(fun () ->
          if Sys.file_exists path then Sys.remove path;
          if Sys.file_exists (path ^ ".folded") then
            Sys.remove (path ^ ".folded"))
        (fun () ->
          Trace.write path;
          Alcotest.(check bool) "json written" true (Sys.file_exists path);
          Alcotest.(check bool)
            "folded sibling written" true
            (Sys.file_exists (path ^ ".folded"));
          let ic = open_in path in
          let len = in_channel_length ic in
          let body = really_input_string ic len in
          close_in ic;
          Alcotest.(check bool)
            "file holds the chrome export" true
            (contains ~needle:"\"traceEvents\"" body)))

let () =
  Alcotest.run "trace"
    [
      ( "recording",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "event decoding" `Quick test_event_decoding;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "wraparound drop accounting" `Quick
            test_wraparound_drop_accounting;
          Alcotest.test_case "cap floor" `Quick test_cap_floor;
        ] );
      ( "merge",
        [
          Alcotest.test_case "deterministic across domains" `Quick
            test_merge_deterministic;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "sampled arc bit-identical on/off (both kernels)"
            `Quick test_bit_identical_on_off;
          Alcotest.test_case "characterize bit-identical on/off" `Quick
            test_characterize_bit_identical_on_off;
        ] );
      ( "events",
        [
          Alcotest.test_case "convergence stream" `Quick test_convergence_events;
          Alcotest.test_case "seq vs pool populations" `Quick
            test_seq_vs_pool_event_population;
          Alcotest.test_case "stage spans carry GC probes" `Quick
            test_metrics_span_emits_trace_and_gc;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome JSON schema" `Quick test_chrome_json_schema;
          Alcotest.test_case "flamegraph folded format" `Quick
            test_folded_format;
          Alcotest.test_case "write artifacts" `Quick test_write_artifacts;
        ] );
    ]
