(* Tests for the cell library: cell metadata, logic functions,
   characterisation behaviour (Fig. 4 trends) and serialisation. *)

module T = Nsigma_process.Technology
module Cell = Nsigma_liberty.Cell
module Ch = Nsigma_liberty.Characterize
module Library = Nsigma_liberty.Library
module Moments = Nsigma_stats.Moments
module Sampler = Nsigma_stats.Sampler
module Cell_sim = Nsigma_spice.Cell_sim
module Store = Nsigma_liberty.Store
module Metrics = Nsigma_obs.Metrics

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let tech = T.with_vdd T.default_28nm 0.6

(* Small shared characterisation tables (built once). *)
let small_slews = [| 10e-12; 100e-12; 300e-12 |]

let small_table =
  lazy
    (Ch.characterize ~n_mc:400 ~slews:small_slews
       ~loads:[| 0.1e-15; 0.4e-15; 2e-15; 6e-15 |]
       tech
       (Cell.make Cell.Inv ~strength:1)
       ~edge:`Fall)

(* ---------- Cell ---------- *)

let test_name_roundtrip () =
  List.iter
    (fun kind ->
      List.iter
        (fun strength ->
          let c = Cell.make kind ~strength in
          let c2 = Cell.of_name (Cell.name c) in
          Alcotest.(check bool) "roundtrip" true (c = c2))
        Cell.standard_strengths)
    Cell.all_kinds

let test_of_name_paper_aliases () =
  (* The paper writes AOI2 for AOI21. *)
  let c = Cell.of_name "AOI2X4" in
  Alcotest.(check bool) "AOI2 alias" true (c.Cell.kind = Cell.Aoi21 && c.Cell.strength = 4)

let test_of_name_rejects () =
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Cell.of_name "FOO2X1");
       false
     with Failure _ -> true)

let test_eval_truth_tables () =
  let t = true and f = false in
  Alcotest.(check bool) "nand" true (Cell.eval Cell.Nand2 [| t; t |] = f);
  Alcotest.(check bool) "nor" true (Cell.eval Cell.Nor2 [| f; f |] = t);
  Alcotest.(check bool) "xor" true (Cell.eval Cell.Xor2 [| t; f |] = t);
  Alcotest.(check bool) "xnor" true (Cell.eval Cell.Xnor2 [| t; f |] = f);
  Alcotest.(check bool) "aoi21 (a&b)|c low" true
    (Cell.eval Cell.Aoi21 [| t; t; f |] = f);
  Alcotest.(check bool) "aoi21 all low" true (Cell.eval Cell.Aoi21 [| f; f; f |] = t);
  Alcotest.(check bool) "oai21" true (Cell.eval Cell.Oai21 [| f; f; t |] = t)

let test_eval_arity_check () =
  Alcotest.check_raises "arity" (Invalid_argument "Cell.eval: arity mismatch")
    (fun () -> ignore (Cell.eval Cell.Nand2 [| true |]))

let test_stack_counts () =
  Alcotest.(check int) "inv stack" 1 (Cell.stack_count (Cell.make Cell.Inv ~strength:1));
  Alcotest.(check int) "nand stack" 2
    (Cell.stack_count (Cell.make Cell.Nand2 ~strength:1));
  Alcotest.(check int) "nor stack" 2 (Cell.stack_count (Cell.make Cell.Nor2 ~strength:1));
  Alcotest.(check int) "aoi stack" 2
    (Cell.stack_count (Cell.make Cell.Aoi21 ~strength:1))

let test_input_cap_scales_with_strength () =
  let c1 = Cell.input_cap tech (Cell.make Cell.Inv ~strength:1) in
  let c4 = Cell.input_cap tech (Cell.make Cell.Inv ~strength:4) in
  check_close "4x strength, 4x cap" (4.0 *. c1) c4

let test_fo4_load () =
  let c = Cell.make Cell.Inv ~strength:1 in
  check_close "fo4 = 4 pins" (4.0 *. Cell.input_cap tech c) (Cell.fo4_load tech c)

let test_arc_construction () =
  let sample = Nsigma_process.Variation.nominal in
  let nand = Cell.make Cell.Nand2 ~strength:2 in
  let fall = Cell.arc tech sample nand ~output_edge:`Fall in
  let rise = Cell.arc tech sample nand ~output_edge:`Rise in
  Alcotest.(check int) "fall arc stack depth 2" 2
    (Array.length fall.Nsigma_spice.Arc.devices);
  Alcotest.(check int) "rise arc depth 1" 1
    (Array.length rise.Nsigma_spice.Arc.devices);
  Alcotest.(check bool) "fall pulls down" true
    (fall.Nsigma_spice.Arc.pull = Nsigma_spice.Arc.Pull_down)

(* ---------- Characterize ---------- *)

let test_loads_for_contains_fo4 () =
  let cell = Cell.make Cell.Nand2 ~strength:8 in
  let loads = Ch.loads_for tech cell in
  let fo4 = Cell.fo4_load tech cell in
  Alcotest.(check bool) "FO4 on grid" true
    (Array.exists (fun l -> Float.abs (l -. fo4) < 1e-20) loads);
  (* Ascending. *)
  let ascending = ref true in
  Array.iteri (fun i l -> if i > 0 && l <= loads.(i - 1) then ascending := false) loads;
  Alcotest.(check bool) "ascending" true !ascending

let test_characterize_grid_shape () =
  let table = Lazy.force small_table in
  Alcotest.(check int) "slew rows" 3 (Array.length table.Ch.points);
  Alcotest.(check int) "load cols" 4 (Array.length table.Ch.points.(0))

let test_fig4_trends () =
  (* μ and σ grow with both slew and load (Fig. 4 of the paper). *)
  let table = Lazy.force small_table in
  let m i j = table.Ch.points.(i).(j).Ch.moments in
  Alcotest.(check bool) "mu grows with slew" true
    ((m 2 1).Moments.mean > (m 0 1).Moments.mean);
  Alcotest.(check bool) "mu grows with load" true
    ((m 0 3).Moments.mean > (m 0 0).Moments.mean);
  Alcotest.(check bool) "sigma grows with load" true
    ((m 0 3).Moments.std > (m 0 0).Moments.std)

let test_quantiles_ordered () =
  let table = Lazy.force small_table in
  Array.iter
    (fun row ->
      Array.iter
        (fun (p : Ch.point) ->
          Array.iteri
            (fun i q ->
              if i > 0 && q < p.Ch.quantiles.(i - 1) then
                Alcotest.fail "quantiles must ascend")
            p.Ch.quantiles)
        row)
    table.Ch.points

let test_moments_at_matches_grid_point () =
  let table = Lazy.force small_table in
  let p = table.Ch.points.(1).(2) in
  let m = Ch.moments_at table ~slew:p.Ch.slew ~load:p.Ch.load in
  check_close ~eps:1e-9 "interp at node = node" p.Ch.moments.Moments.mean
    m.Moments.mean

let test_characterize_deterministic () =
  let t1 =
    Ch.characterize ~n_mc:100 ~seed:5 ~slews:[| 10e-12 |] ~loads:[| 1e-15 |] tech
      (Cell.make Cell.Inv ~strength:1)
      ~edge:`Fall
  in
  let t2 =
    Ch.characterize ~n_mc:100 ~seed:5 ~slews:[| 10e-12 |] ~loads:[| 1e-15 |] tech
      (Cell.make Cell.Inv ~strength:1)
      ~edge:`Fall
  in
  check_close "same seed, same mean" t1.Ch.points.(0).(0).Ch.moments.Moments.mean
    t2.Ch.points.(0).(0).Ch.moments.Moments.mean

(* ---------- Library ---------- *)

let test_library_add_find () =
  let lib = Library.create tech in
  let table = Lazy.force small_table in
  Library.add lib table;
  Alcotest.(check bool) "find works" true
    (Library.find_opt lib (Cell.make Cell.Inv ~strength:1) ~edge:`Fall <> None);
  Alcotest.(check bool) "missing pair absent" true
    (Library.find_opt lib (Cell.make Cell.Inv ~strength:1) ~edge:`Rise = None)

let test_library_save_load_roundtrip () =
  let lib = Library.create tech in
  Library.add lib (Lazy.force small_table);
  let path = Filename.temp_file "nsigma_test" ".lvf" in
  Library.save lib path;
  let lib2 = Library.load tech path in
  Sys.remove path;
  let t1 = Library.find lib (Cell.make Cell.Inv ~strength:1) ~edge:`Fall in
  let t2 = Library.find lib2 (Cell.make Cell.Inv ~strength:1) ~edge:`Fall in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j (p : Ch.point) ->
          let q : Ch.point = t2.Ch.points.(i).(j) in
          check_close ~eps:1e-8 "mean preserved" p.Ch.moments.Moments.mean
            q.Ch.moments.Moments.mean;
          check_close ~eps:1e-8 "quantiles preserved" p.Ch.quantiles.(6)
            q.Ch.quantiles.(6);
          check_close ~eps:1e-8 "out slew preserved" p.Ch.mean_out_slew
            q.Ch.mean_out_slew)
        row)
    t1.Ch.points

let test_library_roundtrip_keeps_kernel () =
  let lib = Library.create tech in
  Library.add lib (Lazy.force small_table);
  let path = Filename.temp_file "nsigma_test" ".lvf" in
  Library.save lib path;
  let t1 = Library.find lib (Cell.make Cell.Inv ~strength:1) ~edge:`Fall in
  let lib2 = Library.load tech path in
  let lib3 = Library.load ~expect_kernel:t1.Ch.kernel tech path in
  Sys.remove path;
  let t2 = Library.find lib2 (Cell.make Cell.Inv ~strength:1) ~edge:`Fall in
  let t3 = Library.find lib3 (Cell.make Cell.Inv ~strength:1) ~edge:`Fall in
  Alcotest.(check bool) "kernel preserved" true (t2.Ch.kernel = t1.Ch.kernel);
  Alcotest.(check bool) "expected kernel accepted" true
    (t3.Ch.kernel = t1.Ch.kernel)

let test_library_load_rejects_kernel_mismatch () =
  let lib = Library.create tech in
  Library.add lib (Lazy.force small_table);
  let path = Filename.temp_file "nsigma_test" ".lvf" in
  Library.save lib path;
  let saved = (Library.find lib (Cell.make Cell.Inv ~strength:1) ~edge:`Fall).Ch.kernel in
  let other =
    match saved with Cell_sim.Rk4 -> Cell_sim.Fast | _ -> Cell_sim.Rk4
  in
  Alcotest.(check bool) "kernel mismatch rejected" true
    (try
       ignore (Library.load ~expect_kernel:other tech path);
       Sys.remove path;
       false
     with Failure _ ->
       Sys.remove path;
       true)

let test_library_load_rejects_v2 () =
  (* A pre-kernel cache (v2 header) must be detected as stale. *)
  let path = Filename.temp_file "nsigma_test" ".lvf" in
  let oc = open_out path in
  Printf.fprintf oc "NSIGMA_LIB 2 %s %.6f %s\n" tech.T.name
    tech.T.vdd_nominal (String.make 32 'a');
  close_out oc;
  Alcotest.(check bool) "v2 cache rejected as stale" true
    (try
       ignore (Library.load tech path);
       Sys.remove path;
       false
     with Failure _ ->
       Sys.remove path;
       true)

let test_library_load_rejects_v3 () =
  (* A pre-sampling-layer cache (v3 header) must be detected as stale. *)
  let path = Filename.temp_file "nsigma_test" ".lvf" in
  let oc = open_out path in
  Printf.fprintf oc "NSIGMA_LIB 3 %s %.6f %s %s\n" tech.T.name
    tech.T.vdd_nominal "fast" (String.make 32 'a');
  close_out oc;
  Alcotest.(check bool) "v3 cache rejected as stale" true
    (try
       ignore (Library.load tech path);
       Sys.remove path;
       false
     with Failure _ ->
       Sys.remove path;
       true)

let test_library_sampling_roundtrip () =
  (* A table characterised with a non-default sampling configuration
     keeps it across save/load, and [expect_sampling] accepts it. *)
  let lib = Library.create tech in
  let table =
    Ch.characterize ~n_mc:400 ~slews:small_slews ~loads:[| 0.4e-15; 2e-15 |]
      ~sampling:Sampler.Lhs ~rtol:0.05 tech
      (Cell.make Cell.Inv ~strength:1)
      ~edge:`Fall
  in
  Library.add lib table;
  let path = Filename.temp_file "nsigma_test" ".lvf" in
  Library.save lib path;
  let lib2 = Library.load tech path in
  let lib3 = Library.load ~expect_sampling:(Sampler.Lhs, Some 0.05) tech path in
  Sys.remove path;
  let t2 = Library.find lib2 (Cell.make Cell.Inv ~strength:1) ~edge:`Fall in
  let t3 = Library.find lib3 (Cell.make Cell.Inv ~strength:1) ~edge:`Fall in
  Alcotest.(check bool) "backend preserved" true (t2.Ch.sampling = Sampler.Lhs);
  Alcotest.(check bool) "rtol preserved" true (t2.Ch.rtol = Some 0.05);
  Alcotest.(check bool) "expected sampling accepted" true
    (t3.Ch.sampling = Sampler.Lhs && t3.Ch.rtol = Some 0.05)

let test_library_load_rejects_sampling_mismatch () =
  (* A cache characterised under one sampling configuration is stale
     for a run requesting another (backend or rtol). *)
  let lib = Library.create tech in
  Library.add lib (Lazy.force small_table);
  let path = Filename.temp_file "nsigma_test" ".lvf" in
  Library.save lib path;
  let rejects expect =
    try
      ignore (Library.load ~expect_sampling:expect tech path);
      false
    with Failure _ -> true
  in
  let backend_mismatch = rejects (Sampler.Sobol, None) in
  let rtol_mismatch = rejects (Sampler.Mc, Some 0.01) in
  Sys.remove path;
  Alcotest.(check bool) "backend mismatch rejected" true backend_mismatch;
  Alcotest.(check bool) "rtol mismatch rejected" true rtol_mismatch

let test_library_load_rejects_wrong_vdd () =
  let lib = Library.create tech in
  Library.add lib (Lazy.force small_table);
  let path = Filename.temp_file "nsigma_test" ".lvf" in
  Library.save lib path;
  let wrong = T.with_vdd T.default_28nm 0.9 in
  Alcotest.(check bool) "vdd mismatch rejected" true
    (try
       ignore (Library.load wrong path);
       Sys.remove path;
       false
     with Failure _ ->
       Sys.remove path;
       true)

(* ---------- Store ---------- *)

let fresh_store_dir name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nsigma_test_store_%s_%d" name (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Unix.mkdir dir 0o755;
  dir

let drop_store_dir dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let test_store_prune_oldest_first () =
  let dir = fresh_store_dir "prune" in
  Fun.protect
    ~finally:(fun () -> drop_store_dir dir)
    (fun () ->
      (try ignore (Store.prune ~dir ~max_bytes:(-1) : int) with
      | Invalid_argument _ -> ()
      | _ -> Alcotest.fail "negative max_bytes must raise Invalid_argument");
      let keys = [ "old"; "middle"; "new" ] in
      List.iter (fun k -> Store.save ~dir ~key:k (String.make 1000 'x')) keys;
      (* Stage mtimes so eviction order is deterministic regardless of
         write timing granularity. *)
      let now = Unix.gettimeofday () in
      List.iteri
        (fun i k ->
          let age = float_of_int (List.length keys - i) *. 100.0 in
          Unix.utimes (Store.path_of ~dir ~key:k) (now -. age) (now -. age))
        keys;
      let total =
        List.fold_left
          (fun acc k ->
            acc + (Unix.stat (Store.path_of ~dir ~key:k)).Unix.st_size)
          0 keys
      in
      let was = Metrics.enabled () in
      Metrics.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Metrics.set_enabled was)
        (fun () ->
          let evicted0 = Metrics.find_counter "provider.store.evicted" in
          Alcotest.(check int) "within bound evicts nothing" 0
            (Store.prune ~dir ~max_bytes:total);
          Alcotest.(check int) "one over evicts exactly the oldest" 1
            (Store.prune ~dir ~max_bytes:(total - 1));
          Alcotest.(check bool) "oldest gone" true
            (Store.find ~dir ~key:"old" ~decode:Option.some = None);
          Alcotest.(check bool) "newer survive" true
            (Store.find ~dir ~key:"middle" ~decode:Option.some <> None
            && Store.find ~dir ~key:"new" ~decode:Option.some <> None);
          Alcotest.(check int) "zero bound empties the store" 2
            (Store.prune ~dir ~max_bytes:0);
          Alcotest.(check int) "empty store is a no-op" 0
            (Store.prune ~dir ~max_bytes:0);
          Alcotest.(check int) "evictions counted" 3
            (Metrics.find_counter "provider.store.evicted" - evicted0)))

let test_store_concurrent_writers () =
  (* Two domains race 50 atomic saves each onto one key: the survivor
     must be one of the two payloads in full, never a splice. *)
  let dir = fresh_store_dir "race" in
  Fun.protect
    ~finally:(fun () -> drop_store_dir dir)
    (fun () ->
      let key = "contended" in
      let payload tag = String.init 4096 (fun i -> if i mod 2 = 0 then tag else 'x') in
      let writer tag () =
        for _ = 1 to 50 do
          Store.save ~dir ~key (payload tag)
        done
      in
      let d = Domain.spawn (writer 'a') in
      writer 'b' ();
      Domain.join d;
      match Store.find ~dir ~key ~decode:Option.some with
      | None -> Alcotest.fail "artifact missing after racing writers"
      | Some p ->
        Alcotest.(check bool)
          "payload is one writer's, intact" true
          (p = payload 'a' || p = payload 'b'))

let test_store_reader_during_prune () =
  (* A domain prunes and refills while the main domain reads: every
     read is either a miss (pruned) or the exact payload — unlink is
     atomic, so no torn reads. *)
  let dir = fresh_store_dir "prune_race" in
  Fun.protect
    ~finally:(fun () -> drop_store_dir dir)
    (fun () ->
      let n = 16 in
      let key i = Printf.sprintf "artifact-%d" i in
      let payload i = Printf.sprintf "payload-%d-%s" i (String.make 300 'x') in
      for i = 0 to n - 1 do
        Store.save ~dir ~key:(key i) (payload i)
      done;
      let stop = Atomic.make false in
      let pruner =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              ignore (Store.prune ~dir ~max_bytes:1500 : int);
              for i = 0 to n - 1 do
                Store.save ~dir ~key:(key i) (payload i)
              done
            done)
      in
      let ok = ref true in
      for _ = 1 to 100 do
        for i = 0 to n - 1 do
          match Store.find ~dir ~key:(key i) ~decode:Option.some with
          | None -> ()
          | Some p -> if p <> payload i then ok := false
        done
      done;
      Atomic.set stop true;
      Domain.join pruner;
      Alcotest.(check bool) "reads are all-or-nothing under prune" true !ok)

let () =
  Alcotest.run "nsigma_liberty"
    [
      ( "cell",
        [
          Alcotest.test_case "name roundtrip" `Quick test_name_roundtrip;
          Alcotest.test_case "paper aliases" `Quick test_of_name_paper_aliases;
          Alcotest.test_case "of_name rejects" `Quick test_of_name_rejects;
          Alcotest.test_case "truth tables" `Quick test_eval_truth_tables;
          Alcotest.test_case "arity check" `Quick test_eval_arity_check;
          Alcotest.test_case "stack counts" `Quick test_stack_counts;
          Alcotest.test_case "input cap scaling" `Quick test_input_cap_scales_with_strength;
          Alcotest.test_case "fo4 load" `Quick test_fo4_load;
          Alcotest.test_case "arc construction" `Quick test_arc_construction;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "loads_for grid" `Quick test_loads_for_contains_fo4;
          Alcotest.test_case "grid shape" `Slow test_characterize_grid_shape;
          Alcotest.test_case "fig4 trends" `Slow test_fig4_trends;
          Alcotest.test_case "quantiles ordered" `Slow test_quantiles_ordered;
          Alcotest.test_case "interp at nodes" `Slow test_moments_at_matches_grid_point;
          Alcotest.test_case "deterministic" `Quick test_characterize_deterministic;
        ] );
      ( "library",
        [
          Alcotest.test_case "add/find" `Slow test_library_add_find;
          Alcotest.test_case "save/load" `Slow test_library_save_load_roundtrip;
          Alcotest.test_case "kernel roundtrip" `Slow test_library_roundtrip_keeps_kernel;
          Alcotest.test_case "kernel mismatch" `Slow test_library_load_rejects_kernel_mismatch;
          Alcotest.test_case "v2 cache stale" `Quick test_library_load_rejects_v2;
          Alcotest.test_case "v3 cache stale" `Quick test_library_load_rejects_v3;
          Alcotest.test_case "sampling roundtrip" `Slow test_library_sampling_roundtrip;
          Alcotest.test_case "sampling mismatch" `Slow test_library_load_rejects_sampling_mismatch;
          Alcotest.test_case "vdd check" `Slow test_library_load_rejects_wrong_vdd;
        ] );
      ( "store",
        [
          Alcotest.test_case "prune oldest first" `Quick
            test_store_prune_oldest_first;
          Alcotest.test_case "racing writers" `Quick
            test_store_concurrent_writers;
          Alcotest.test_case "reader during prune" `Quick
            test_store_reader_during_prune;
        ] );
    ]
