(* Cross-module property tests: serialisation round-trips on random
   structures, STA invariants on random designs, statistical identities. *)

module T = Nsigma_process.Technology
module Rng = Nsigma_stats.Rng
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Cell = Nsigma_liberty.Cell
module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore
module Spef = Nsigma_rcnet.Spef
module Wire_gen = Nsigma_rcnet.Wire_gen
module Ceff = Nsigma_rcnet.Ceff
module N = Nsigma_netlist.Netlist
module G = Nsigma_netlist.Generators
module V = Nsigma_netlist.Verilog_lite
module Design = Nsigma_sta.Design
module Engine = Nsigma_sta.Engine
module Provider = Nsigma_sta.Provider
module Path = Nsigma_sta.Path
module Ssta = Nsigma_sta.Ssta
module Incremental = Nsigma_sta.Incremental
module Edit = Nsigma_netlist.Edit
module Library = Nsigma_liberty.Library
module Executor = Nsigma_exec.Executor

let tech = T.with_vdd T.default_28nm 0.6

(* Random structure generators driven by a seed, so shrinking works on
   the seed. *)
let tree_of_seed seed =
  let g = Rng.create ~seed in
  let spec =
    {
      Wire_gen.min_length_um = 2.0;
      max_length_um = 80.0;
      segments = 1 + Rng.int g 15;
      branch_prob = Rng.uniform g *. 0.5;
    }
  in
  Wire_gen.random_tree tech spec g

let netlist_of_seed seed =
  let g = Rng.create ~seed in
  G.random_logic
    ~name:(Printf.sprintf "p%d" seed)
    ~n_inputs:(2 + Rng.int g 10)
    ~n_gates:(8 + Rng.int g 60)
    ~depth:(2 + Rng.int g 8)
    ~seed

let seed_arb = QCheck.int_bound 100_000

let prop_spef_roundtrip =
  QCheck.Test.make ~count:60 ~name:"SPEF round-trip preserves Elmore"
    seed_arb
    (fun seed ->
      let tree = tree_of_seed seed in
      match Spef.of_string (Spef.to_string ~name:"n" tree) with
      | [ (_, tree2) ] ->
        (* %.12g text carries ~1e-12 relative error per segment; sums
           over segments accumulate it. *)
        let close a b = Float.abs (a -. b) <= 1e-8 *. (1.0 +. Float.abs a) in
        close (Rctree.total_cap tree) (Rctree.total_cap tree2)
        && close (Rctree.total_res tree) (Rctree.total_res tree2)
        && Array.length tree.Rctree.taps = Array.length tree2.Rctree.taps
        && (let e1 = Elmore.delays tree and e2 = Elmore.delays tree2 in
            (* Same multiset of tap Elmore delays (node order may differ). *)
            let taps d (t : Rctree.t) =
              Array.to_list (Array.map (fun i -> d.(i)) t.Rctree.taps)
              |> List.sort Float.compare
            in
            List.for_all2 close (taps e1 tree) (taps e2 tree2))
      | _ -> false)

let prop_verilog_roundtrip =
  QCheck.Test.make ~count:40 ~name:"Verilog round-trip preserves function"
    seed_arb
    (fun seed ->
      let nl = netlist_of_seed seed in
      let nl2 = V.of_string (V.to_string nl) in
      let g = Rng.create ~seed:(seed + 1) in
      let ok = ref (N.n_cells nl = N.n_cells nl2) in
      for _ = 1 to 5 do
        let ins =
          Array.init (Array.length nl.N.primary_inputs) (fun _ -> Rng.uniform g < 0.5)
        in
        if N.eval nl ins <> N.eval nl2 ins then ok := false
      done;
      !ok)

let prop_elmore_additive_along_path =
  QCheck.Test.make ~count:60 ~name:"Elmore grows along any root-to-leaf path"
    seed_arb
    (fun seed ->
      let tree = tree_of_seed seed in
      let delays = Elmore.delays tree in
      Array.for_all
        (fun tap ->
          let path = Rctree.path_to_root tree tap in
          let rec decreasing = function
            | a :: (b :: _ as rest) -> delays.(a) >= delays.(b) && decreasing rest
            | _ -> true
          in
          decreasing path)
        tree.Rctree.taps)

let prop_ceff_bounded =
  QCheck.Test.make ~count:60 ~name:"Ceff within (0, total]" seed_arb
    (fun seed ->
      let tree = tree_of_seed seed in
      let total = Rctree.total_cap tree in
      let ceff = Ceff.effective ~driver_resistance:800.0 tree in
      ceff > 0.0 && ceff <= total +. 1e-21)

let prop_scale_linearity =
  QCheck.Test.make ~count:40 ~name:"Elmore scales linearly with R and C"
    seed_arb
    (fun seed ->
      let tree = tree_of_seed seed in
      let tap = tree.Rctree.taps.(0) in
      let base = Elmore.delay_at tree tap in
      let doubled =
        Elmore.delay_at (Rctree.scale tree ~res_factor:2.0 ~cap_factor:1.0) tap
      in
      Float.abs (doubled -. (2.0 *. base)) < 1e-9 *. (1.0 +. doubled))

(* Engine invariants under a positive random-delay provider. *)
let random_provider seed =
  let delay_of gate ~edge ~input_slew ~load_cap =
    (* Deterministic pseudo-random positive delay per lookup context. *)
    let h =
      Hashtbl.hash
        (gate.N.g_name, edge = Provider.Rise, int_of_float (input_slew *. 1e15),
         int_of_float (load_cap *. 1e18), seed)
    in
    1e-12 *. (1.0 +. float_of_int (h mod 50))
  in
  {
    Provider.label = "random";
    cell_delay = delay_of;
    cell_out_slew = (fun _ ~edge:_ ~input_slew ~load_cap:_ -> input_slew);
    wire_delay =
      (fun ~net ~driver:_ ~sink:_ ~tree:_ ~tap ->
        1e-13 *. float_of_int (1 + ((net + tap) mod 7)));
    wire_slew_degrade = (fun ~wire_delay:_ ~slew_at_root -> slew_at_root);
  }

let prop_critical_path_consistent =
  QCheck.Test.make ~count:30 ~name:"critical path total = circuit delay"
    seed_arb
    (fun seed ->
      let nl = netlist_of_seed seed in
      let design = Design.attach_parasitics tech nl in
      let report = Engine.analyze tech (random_provider seed) design in
      let delay = Engine.circuit_delay report in
      let path = Engine.critical_path report in
      Float.abs (path.Path.total -. delay) < 1e-15 +. (1e-9 *. delay))

let prop_path_sums_to_total =
  QCheck.Test.make ~count:30 ~name:"hop delays sum to the path total"
    seed_arb
    (fun seed ->
      let nl = netlist_of_seed seed in
      let design = Design.attach_parasitics tech nl in
      let report = Engine.analyze tech (random_provider seed) design in
      let path = Engine.critical_path report in
      let total =
        List.fold_left
          (fun acc (h : Path.hop) -> acc +. h.Path.wire_delay +. h.Path.cell_delay)
          path.Path.end_wire_delay path.Path.hops
      in
      Float.abs (total -. path.Path.total) < 1e-15 +. (1e-9 *. path.Path.total))

let prop_arrivals_nonnegative =
  QCheck.Test.make ~count:30 ~name:"all arrivals are non-negative" seed_arb
    (fun seed ->
      let nl = netlist_of_seed seed in
      let design = Design.attach_parasitics tech nl in
      let report = Engine.analyze tech (random_provider seed) design in
      let ok = ref true in
      for net = 0 to nl.N.n_nets - 1 do
        List.iter
          (fun edge ->
            match Engine.arrival report ~net ~edge with
            | Some a -> if a.Engine.time < 0.0 then ok := false
            | None -> ())
          [ Provider.Rise; Provider.Fall ]
      done;
      !ok)

let prop_moments_merge_commutative =
  QCheck.Test.make ~count:100 ~name:"moment merge is commutative"
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_range (-5.) 5.))
              (list_of_size (Gen.int_range 1 30) (float_range (-5.) 5.)))
    (fun (xs, ys) ->
      let a = Moments.of_array (Array.of_list xs) in
      let b = Moments.of_array (Array.of_list ys) in
      let m1 = Moments.summary (Moments.merge a b) in
      let m2 = Moments.summary (Moments.merge b a) in
      Float.abs (m1.Moments.mean -. m2.Moments.mean) < 1e-9
      && Float.abs (m1.Moments.std -. m2.Moments.std) < 1e-9)

let floats_arb lo hi =
  QCheck.(list_of_size (Gen.int_range 1 30) (float_range lo hi))

let prop_moments_merge_associative =
  QCheck.Test.make ~count:100 ~name:"moment merge is associative"
    QCheck.(triple (floats_arb (-5.) 5.) (floats_arb (-5.) 5.)
              (floats_arb (-5.) 5.))
    (fun (xs, ys, zs) ->
      let acc l = Moments.of_array (Array.of_list l) in
      let a = acc xs and b = acc ys and c = acc zs in
      let l = Moments.summary (Moments.merge (Moments.merge a b) c) in
      let r = Moments.summary (Moments.merge a (Moments.merge b c)) in
      let close x y = Float.abs (x -. y) <= 1e-9 *. (1.0 +. Float.abs x) in
      close l.Moments.mean r.Moments.mean
      && close l.Moments.std r.Moments.std
      && Float.abs (l.Moments.skewness -. r.Moments.skewness) < 1e-6
      && Float.abs (l.Moments.kurtosis -. r.Moments.kurtosis) < 1e-6)

let prop_moments_split_merge =
  QCheck.Test.make ~count:200
    ~name:"merge of a split sample reproduces of_array (bitwise at the \
           empty-split boundary)"
    QCheck.(pair (floats_arb (-50.) 50.) QCheck.small_nat)
    (fun (xs, k0) ->
      let a = Array.of_list xs in
      let n = Array.length a in
      let k = k0 mod (n + 1) in
      let merged =
        Moments.merge
          (Moments.of_array (Array.sub a 0 k))
          (Moments.of_array (Array.sub a k (n - k)))
      in
      let m = Moments.summary merged in
      let d = Moments.summary (Moments.of_array a) in
      if k = 0 || k = n then begin
        (* One side is [empty]: the merge must be a physical identity,
           so all four moments agree bit for bit. *)
        let bit x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
        bit m.Moments.mean d.Moments.mean
        && bit m.Moments.std d.Moments.std
        && bit m.Moments.skewness d.Moments.skewness
        && bit m.Moments.kurtosis d.Moments.kurtosis
      end
      else begin
        (* Interior splits take the pairwise Pébay path: numerically
           equal, not bitwise. *)
        let close x y = Float.abs (x -. y) <= 1e-9 *. (1.0 +. Float.abs x) in
        close m.Moments.mean d.Moments.mean
        && close m.Moments.std d.Moments.std
        && Float.abs (m.Moments.skewness -. d.Moments.skewness) < 1e-6
        && Float.abs (m.Moments.kurtosis -. d.Moments.kurtosis) < 1e-6
      end)

let prop_quantile_bounds =
  QCheck.Test.make ~count:100 ~name:"quantiles stay within sample range"
    QCheck.(pair (list_of_size (Gen.int_range 2 50) (float_range (-100.) 100.))
              (float_range 0.0 1.0))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let q = Quantile.of_sample a p in
      let lo = Array.fold_left Float.min a.(0) a in
      let hi = Array.fold_left Float.max a.(0) a in
      q >= lo -. 1e-12 && q <= hi +. 1e-12)

let prop_fanout_sizing_monotone =
  QCheck.Test.make ~count:30 ~name:"fanout sizing never shrinks a driver"
    seed_arb
    (fun seed ->
      let nl = netlist_of_seed seed in
      let sized = G.size_for_fanout nl in
      Array.for_all2
        (fun (a : N.gate) (b : N.gate) ->
          b.N.cell.Cell.strength >= a.N.cell.Cell.strength)
        nl.N.gates sized.N.gates)

(* ---- incremental re-timing ---- *)

(* Same path and knobs as test_incremental, so the two binaries share
   one characterisation cache. *)
let ssta_library =
  lazy
    (let cells =
       List.concat_map
         (fun k ->
           [ Cell.make k ~strength:1; Cell.make k ~strength:2;
             Cell.make k ~strength:4; Cell.make k ~strength:8 ])
         Cell.all_kinds
     in
     Library.load_or_characterize ~n_mc:250
       ~slews:[| 10e-12; 50e-12; 150e-12; 300e-12 |]
       ~path:
         (Filename.concat (Filename.get_temp_dir_name ())
            "nsigma_test_ssta.lvf")
       tech cells)

let pool2 = lazy (Executor.domain_pool ~jobs:2 ())

(* One edit of each kind, derived from the pristine netlist (generated
   before any apply, so the same sequence is legal on both copies). *)
let edits_of_seed (nl : N.t) seed =
  let g = Rng.create ~seed:(seed + 7919) in
  let fanouts = N.fanouts_of nl in
  let n_gates = Array.length nl.N.gates in
  let swap () =
    let gi = Rng.int g n_gates in
    let cur = nl.N.gates.(gi).N.cell in
    let choices =
      List.filter (fun s -> s <> cur.Cell.strength) Cell.standard_strengths
    in
    Edit.Swap_cell
      {
        gate = gi;
        cell =
          Cell.make cur.Cell.kind
            ~strength:(List.nth choices (Rng.int g (List.length choices)));
      }
  in
  let scale () =
    let net = Rng.int g nl.N.n_nets in
    Edit.Scale_wire
      {
        net;
        r_scale = 0.8 +. (0.7 *. Rng.uniform g);
        c_scale = 0.8 +. (0.7 *. Rng.uniform g);
      }
  in
  let rec bump () =
    let net = Rng.int g nl.N.n_nets in
    match List.length fanouts.(net) with
    | 0 -> bump ()
    | k ->
      Edit.Bump_sink_load
        {
          net;
          sink = Rng.int g k;
          delta_cap = (0.2 +. (1.8 *. Rng.uniform g)) *. 1e-15;
        }
  in
  [ swap (); scale (); bump () ]

let prop_incremental_matches_scratch =
  QCheck.Test.make ~count:4
    ~name:"incremental re-timing = from-scratch (both operators x executors)"
    seed_arb
    (fun seed ->
      let lib = Lazy.force ssta_library in
      let execs = [ Executor.sequential; Lazy.force pool2 ] in
      let ops = [ Nsigma_stats.Stat_max.Clark; Nsigma_stats.Stat_max.Moment ] in
      List.for_all
        (fun exec ->
          List.for_all
            (fun op ->
              let config = { Ssta.op; corr = Ssta.Tracked } in
              let nl = netlist_of_seed seed in
              let nl_ref = netlist_of_seed seed in
              let design = Design.attach_parasitics tech nl in
              let design_ref = Design.attach_parasitics tech nl_ref in
              let edits = edits_of_seed nl seed in
              let handle =
                Ssta.lvf_handle ~wire_samples:8 ~frac_samples:16 ~exec
                  ~store_dir:None tech lib design
              in
              let inc = Incremental.init ~config tech handle design in
              List.for_all
                (fun edit ->
                  ignore (Incremental.apply inc edit);
                  ignore (Design.apply_edit design_ref edit);
                  let provider =
                    Ssta.lvf_provider ~wire_samples:8 ~frac_samples:16 ~exec
                      ~store_dir:None tech lib design_ref
                  in
                  let scratch =
                    Ssta.analyze ~config tech provider design_ref
                  in
                  Incremental.reports_bit_identical (Incremental.report inc)
                    scratch)
                edits)
            ops)
        execs)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "nsigma_properties"
    [
      ( "serialisation",
        [ qt prop_spef_roundtrip; qt prop_verilog_roundtrip ] );
      ( "interconnect",
        [
          qt prop_elmore_additive_along_path;
          qt prop_ceff_bounded;
          qt prop_scale_linearity;
        ] );
      ( "sta",
        [
          qt prop_critical_path_consistent;
          qt prop_path_sums_to_total;
          qt prop_arrivals_nonnegative;
        ] );
      ( "stats",
        [
          qt prop_moments_merge_commutative;
          qt prop_moments_merge_associative;
          qt prop_moments_split_merge;
          qt prop_quantile_bounds;
        ] );
      ( "netlist", [ qt prop_fanout_sizing_monotone ] );
      ( "incremental", [ qt prop_incremental_matches_scratch ] );
    ]
