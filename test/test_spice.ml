(* Tests for the transistor-level simulator: device physics sanity,
   arc/stack behaviour, transient convergence, RC engine vs. analytics. *)

module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Rng = Nsigma_stats.Rng
module Moments = Nsigma_stats.Moments
module Device = Nsigma_spice.Device
module Arc = Nsigma_spice.Arc
module Cell_sim = Nsigma_spice.Cell_sim
module Rc_sim = Nsigma_spice.Rc_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let tech = T.with_vdd T.default_28nm 0.6
let tech_nom = T.default_28nm

(* ---------- Device ---------- *)

let test_current_monotone_in_vgs () =
  let d = Device.nominal tech Device.Nmos ~width_mult:1.0 in
  let prev = ref 0.0 in
  List.iter
    (fun vgs ->
      let i = Device.current tech d ~vgs ~vds:0.3 in
      if i < !prev then Alcotest.failf "current decreased at vgs=%.2f" vgs;
      prev := i)
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ]

let test_current_zero_at_zero_vds () =
  let d = Device.nominal tech Device.Nmos ~width_mult:1.0 in
  check_close "no current at vds=0" 0.0 (Device.current tech d ~vgs:0.6 ~vds:0.0)

let test_current_scales_with_width () =
  let d1 = Device.nominal tech Device.Nmos ~width_mult:1.0 in
  let d4 = Device.nominal tech Device.Nmos ~width_mult:4.0 in
  let i1 = Device.current tech d1 ~vgs:0.6 ~vds:0.3 in
  let i4 = Device.current tech d4 ~vgs:0.6 ~vds:0.3 in
  check_close ~eps:1e-9 "4x width = 4x current" (4.0 *. i1) i4

let test_subthreshold_slope () =
  (* Below threshold the current should be ~exponential in Vgs:
     I(vgs + n·Ut·ln10) ≈ 10·I(vgs). *)
  let d = Device.nominal tech Device.Nmos ~width_mult:1.0 in
  let ut = T.thermal_voltage tech in
  let n = tech.T.subthreshold_n in
  let vgs = 0.10 in
  let i1 = Device.current tech d ~vgs ~vds:0.3 in
  let i2 = Device.current tech d ~vgs:(vgs +. (n *. ut *. log 10.0)) ~vds:0.3 in
  check_close ~eps:0.05 "decade per n·Ut·ln10" 10.0 (i2 /. i1)

let test_vth_shift_reduces_current () =
  let d = Device.nominal tech Device.Nmos ~width_mult:1.0 in
  let slow = { d with Device.vth = d.Device.vth +. 0.05 } in
  Alcotest.(check bool) "higher vth, less current" true
    (Device.current tech slow ~vgs:0.6 ~vds:0.3
    < Device.current tech d ~vgs:0.6 ~vds:0.3)

let test_caps_scale () =
  let d1 = Device.nominal tech Device.Nmos ~width_mult:1.0 in
  let d2 = Device.nominal tech Device.Nmos ~width_mult:2.0 in
  check_close "gate cap scales" (2.0 *. Device.gate_cap tech d1) (Device.gate_cap tech d2);
  check_close "drain cap scales" (2.0 *. Device.drain_cap tech d1)
    (Device.drain_cap tech d2)

(* ---------- Arc ---------- *)

let nominal_arc ?(pull = Arc.Pull_down) ?(depth = 1) ?(strength = 1.0) () =
  Arc.make tech Variation.nominal ~pull ~depth ~strength ()

let test_stack_depth_halves_current () =
  let a1 = nominal_arc () in
  let a2 = nominal_arc ~depth:2 () in
  let i1 = Arc.current tech a1 ~vin:0.6 ~vout:0.3 in
  let i2 = Arc.current tech a2 ~vin:0.6 ~vout:0.3 in
  Alcotest.(check bool) "stack of 2 drives roughly half" true
    (i2 < 0.75 *. i1 && i2 > 0.3 *. i1)

let test_arc_current_nonnegative () =
  let a = Arc.make tech Variation.nominal ~pull:Arc.Pull_down ~depth:1
      ~strength:1.0 ~opposing_width_mult:2.0 ()
  in
  (* Early in the input ramp the opposing PMOS dominates: clamped to 0. *)
  check_close "clamped" 0.0 (Arc.current tech a ~vin:0.05 ~vout:0.6)

let test_pull_up_symmetry () =
  let up = nominal_arc ~pull:Arc.Pull_up () in
  (* For a pull-up arc the output rises: current positive when vout<VDD
     and the input is low. *)
  Alcotest.(check bool) "pull-up drives" true
    (Arc.current tech up ~vin:0.0 ~vout:0.3 > 0.0);
  check_close "pull-up done at rail" 0.0 (Arc.current tech up ~vin:0.0 ~vout:0.6)

(* ---------- Cell_sim ---------- *)

let fo4_load = 4.0 *. (tech.T.width_n +. tech.T.width_p) *. tech.T.cap_gate_per_width

let test_delay_positive_and_finite () =
  let r = Cell_sim.simulate tech (nominal_arc ()) ~input_slew:10e-12 ~load_cap:fo4_load in
  Alcotest.(check bool) "delay positive" true (r.Cell_sim.delay > 0.0);
  Alcotest.(check bool) "plausible ps range" true
    (r.Cell_sim.delay > 1e-12 && r.Cell_sim.delay < 1e-9)

let test_delay_increases_with_load () =
  let arc = nominal_arc () in
  let d c = (Cell_sim.simulate tech arc ~input_slew:10e-12 ~load_cap:c).Cell_sim.delay in
  Alcotest.(check bool) "monotone in load" true
    (d 0.5e-15 < d 2e-15 && d 2e-15 < d 8e-15)

let test_delay_increases_with_slew () =
  let arc = nominal_arc () in
  let d s = (Cell_sim.simulate tech arc ~input_slew:s ~load_cap:fo4_load).Cell_sim.delay in
  Alcotest.(check bool) "monotone in slew" true
    (d 10e-12 < d 100e-12 && d 100e-12 < d 300e-12)

let test_delay_decreases_with_vdd () =
  let d vdd =
    let t = T.with_vdd T.default_28nm vdd in
    let arc = Arc.make t Variation.nominal ~pull:Arc.Pull_down ~depth:1 ~strength:1.0 () in
    (Cell_sim.simulate t arc ~input_slew:10e-12 ~load_cap:fo4_load).Cell_sim.delay
  in
  Alcotest.(check bool) "faster at higher vdd" true (d 0.9 < d 0.7 && d 0.7 < d 0.5)

let test_step_convergence () =
  let arc = nominal_arc () in
  let d steps =
    (Cell_sim.simulate ~steps_per_phase:steps tech arc ~input_slew:25e-12
       ~load_cap:fo4_load).Cell_sim.delay
  in
  check_close ~eps:2e-3 "16 vs 128 steps" (d 128) (d 16)

let test_strength_speeds_up () =
  let d s =
    let arc = nominal_arc ~strength:s () in
    (* Load fixed: stronger arc must be faster. *)
    (Cell_sim.simulate tech arc ~input_slew:10e-12 ~load_cap:4e-15).Cell_sim.delay
  in
  Alcotest.(check bool) "x4 faster than x1" true (d 4.0 < 0.5 *. d 1.0)

let test_rejects_bad_args () =
  let arc = nominal_arc () in
  Alcotest.check_raises "negative slew"
    (Invalid_argument "Cell_sim.simulate: slew must be positive") (fun () ->
      ignore (Cell_sim.simulate tech arc ~input_slew:(-1.0) ~load_cap:1e-15))

let test_stuck_failure_is_descriptive () =
  (* An opposing network far stronger than the stack clamps the net
     current to zero for almost the whole (very slow) input ramp: the
     step budget runs out with the output still at the rail, and the
     simulator must say so with the operating point, not a bare "did not
     converge". *)
  let arc =
    Arc.make tech Variation.nominal ~pull:Arc.Pull_down ~depth:1 ~strength:1.0
      ~opposing_width_mult:500.0 ()
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  match Cell_sim.simulate tech arc ~input_slew:1e-6 ~load_cap:fo4_load with
  | _ -> Alcotest.fail "expected the stuck output to raise"
  | exception Failure msg ->
      Alcotest.(check bool) "names the phase" true (contains msg "output stuck");
      Alcotest.(check bool) "reports the slew" true (contains msg "input_slew=");
      Alcotest.(check bool) "reports the load" true (contains msg "load_cap=")

let test_near_threshold_skew () =
  (* The motivating observation of the paper: at 0.6 V the delay
     distribution is right-skewed with a heavy tail. *)
  let g = Rng.create ~seed:71 in
  let delays =
    Monte_carlo.delays tech g ~n:2000 (fun sample ->
        let arc =
          Arc.make tech sample ~pull:Arc.Pull_down ~depth:1 ~strength:1.0 ()
        in
        (Cell_sim.simulate tech arc ~input_slew:10e-12 ~load_cap:fo4_load).Cell_sim.delay)
  in
  let s = Moments.summary_of_array delays in
  Alcotest.(check bool) "positive skew" true (s.Moments.skewness > 0.3);
  Alcotest.(check bool) "heavier than gaussian tail" true (s.Moments.kurtosis > 3.2);
  Alcotest.(check bool) "sizable variability" true
    (s.Moments.std /. s.Moments.mean > 0.08)

let test_nominal_voltage_less_skewed () =
  let g = Rng.create ~seed:72 in
  let run t =
    let delays =
      Monte_carlo.delays t g ~n:2000 (fun sample ->
          let arc = Arc.make t sample ~pull:Arc.Pull_down ~depth:1 ~strength:1.0 () in
          (Cell_sim.simulate t arc ~input_slew:10e-12 ~load_cap:fo4_load).Cell_sim.delay)
    in
    Moments.summary_of_array delays
  in
  let near = run tech and nominal = run tech_nom in
  Alcotest.(check bool) "skew grows as vdd drops" true
    (near.Moments.skewness > nominal.Moments.skewness);
  Alcotest.(check bool) "cv grows as vdd drops" true
    (near.Moments.std /. near.Moments.mean
    > nominal.Moments.std /. nominal.Moments.mean)

let test_stack_averaging () =
  (* Pelgrom averaging: a depth-2 stack (with 2x-width devices) must show
     lower relative variability than the single device. *)
  let g = Rng.create ~seed:73 in
  let cv depth strength =
    let delays =
      Monte_carlo.delays tech g ~n:1500 (fun sample ->
          let arc = Arc.make tech sample ~pull:Arc.Pull_down ~depth ~strength () in
          (Cell_sim.simulate tech arc ~input_slew:10e-12 ~load_cap:fo4_load).Cell_sim.delay)
    in
    let s = Moments.summary_of_array delays in
    s.Moments.std /. s.Moments.mean
  in
  Alcotest.(check bool) "stacked+wider averages mismatch" true
    (cv 2 2.0 < cv 1 1.0)

(* ---------- Rc_sim ---------- *)

let test_rc_matches_analytic_single_pole () =
  (* A single RC driven by a very strong driver: 50% step response at
     t = RC·ln2 after the root.  With an enormous driver the root rises
     almost instantly, so tap delay ≈ 0.69·RC. *)
  let r = 2000.0 and c = 20e-15 in
  let tree =
    Rctree.create
      ~nodes:
        [|
          { Rctree.name = "root"; parent = -1; res = 0.0; cap = 1e-18 };
          { Rctree.name = "tap"; parent = 0; res = r; cap = c };
        |]
      ~taps:[| 1 |]
  in
  let driver =
    Arc.make tech Variation.nominal ~pull:Arc.Pull_up ~depth:1 ~strength:64.0 ()
  in
  let result =
    Rc_sim.simulate ~steps:3000 tech ~driver ~tree ~load_caps:[] ~input_slew:1e-12
  in
  let wire = snd result.Rc_sim.tap_delays.(0) in
  check_close ~eps:0.08 "RC ln2" (r *. c *. log 2.0) wire

let test_rc_wire_delay_positive_and_ordered () =
  let tree = Rctree.ladder ~segments:6 ~res_per_seg:300.0 ~cap_per_seg:2e-15 in
  let driver =
    Arc.make tech Variation.nominal ~pull:Arc.Pull_up ~depth:1 ~strength:2.0 ()
  in
  let r = Rc_sim.simulate tech ~driver ~tree ~load_caps:[] ~input_slew:10e-12 in
  Alcotest.(check bool) "root crossing positive" true (r.Rc_sim.root_crossing > 0.0);
  Alcotest.(check bool) "tap delay positive" true (snd r.Rc_sim.tap_delays.(0) > 0.0);
  Alcotest.(check bool) "driver delay positive" true (r.Rc_sim.driver_delay > 0.0)

let test_rc_elmore_correlation () =
  (* The transient tap delay should be within a factor ~[0.4, 1.4] of
     Elmore (Elmore is an upper-ish bound for step response, and the
     driver adds source delay). *)
  let tree = Rctree.ladder ~segments:8 ~res_per_seg:500.0 ~cap_per_seg:3e-15 in
  let driver =
    Arc.make tech Variation.nominal ~pull:Arc.Pull_up ~depth:1 ~strength:8.0 ()
  in
  let wire =
    Rc_sim.wire_delay ~steps:1200 tech ~driver ~tree ~load_caps:[] ~input_slew:10e-12
  in
  let elmore = Elmore.delay_to_tap tree in
  let ratio = wire /. elmore in
  Alcotest.(check bool) "transient within Elmore band" true
    (ratio > 0.3 && ratio < 1.5)

let test_rc_driver_strength_effect () =
  let tree = Rctree.ladder ~segments:5 ~res_per_seg:400.0 ~cap_per_seg:2e-15 in
  let total tree_strength =
    let driver =
      Arc.make tech Variation.nominal ~pull:Arc.Pull_up ~depth:1
        ~strength:tree_strength ()
    in
    let r = Rc_sim.simulate tech ~driver ~tree ~load_caps:[] ~input_slew:10e-12 in
    r.Rc_sim.root_crossing +. snd r.Rc_sim.tap_delays.(0)
  in
  Alcotest.(check bool) "stronger driver, earlier tap arrival" true
    (total 8.0 < total 1.0)

let test_rc_load_slows_tap () =
  let tree = Rctree.ladder ~segments:5 ~res_per_seg:400.0 ~cap_per_seg:2e-15 in
  let driver =
    Arc.make tech Variation.nominal ~pull:Arc.Pull_up ~depth:1 ~strength:4.0 ()
  in
  let wire load =
    Rc_sim.wire_delay tech ~driver ~tree ~load_caps:[ (5, load) ] ~input_slew:10e-12
  in
  Alcotest.(check bool) "loaded tap slower" true (wire 4e-15 > wire 0.0)

let test_rc_tap_slew_reported () =
  let tree = Rctree.ladder ~segments:4 ~res_per_seg:300.0 ~cap_per_seg:2e-15 in
  let driver =
    Arc.make tech Variation.nominal ~pull:Arc.Pull_up ~depth:1 ~strength:2.0 ()
  in
  let r = Rc_sim.simulate tech ~driver ~tree ~load_caps:[] ~input_slew:10e-12 in
  Alcotest.(check bool) "tap slew positive" true (snd r.Rc_sim.tap_slews.(0) > 0.0)

(* ---------- Monte_carlo ---------- *)

let test_mc_reproducible () =
  let run () =
    let g = Rng.create ~seed:80 in
    Monte_carlo.delays tech g ~n:50 (fun sample ->
        let arc = Arc.make tech sample ~pull:Arc.Pull_down ~depth:1 ~strength:1.0 () in
        (Cell_sim.simulate tech arc ~input_slew:10e-12 ~load_cap:fo4_load).Cell_sim.delay)
  in
  Alcotest.(check bool) "same seeds, same delays" true (run () = run ())

let test_mc_study_sorted () =
  let g = Rng.create ~seed:81 in
  let _, sorted =
    Monte_carlo.study tech g ~n:200 (fun sample ->
        let arc = Arc.make tech sample ~pull:Arc.Pull_down ~depth:1 ~strength:1.0 () in
        (Cell_sim.simulate tech arc ~input_slew:10e-12 ~load_cap:fo4_load).Cell_sim.delay)
  in
  let ok = ref true in
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) < sorted.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "study returns sorted samples" true !ok

let () =
  Alcotest.run "nsigma_spice"
    [
      ( "device",
        [
          Alcotest.test_case "monotone vgs" `Quick test_current_monotone_in_vgs;
          Alcotest.test_case "zero at vds=0" `Quick test_current_zero_at_zero_vds;
          Alcotest.test_case "width scaling" `Quick test_current_scales_with_width;
          Alcotest.test_case "subthreshold slope" `Quick test_subthreshold_slope;
          Alcotest.test_case "vth sensitivity" `Quick test_vth_shift_reduces_current;
          Alcotest.test_case "cap scaling" `Quick test_caps_scale;
        ] );
      ( "arc",
        [
          Alcotest.test_case "stack divides drive" `Quick test_stack_depth_halves_current;
          Alcotest.test_case "non-negative" `Quick test_arc_current_nonnegative;
          Alcotest.test_case "pull-up" `Quick test_pull_up_symmetry;
        ] );
      ( "cell_sim",
        [
          Alcotest.test_case "positive finite" `Quick test_delay_positive_and_finite;
          Alcotest.test_case "monotone load" `Quick test_delay_increases_with_load;
          Alcotest.test_case "monotone slew" `Quick test_delay_increases_with_slew;
          Alcotest.test_case "vdd speedup" `Quick test_delay_decreases_with_vdd;
          Alcotest.test_case "step convergence" `Quick test_step_convergence;
          Alcotest.test_case "strength speedup" `Quick test_strength_speeds_up;
          Alcotest.test_case "argument checks" `Quick test_rejects_bad_args;
          Alcotest.test_case "stuck failure is descriptive" `Quick
            test_stuck_failure_is_descriptive;
          Alcotest.test_case "near-threshold skew" `Slow test_near_threshold_skew;
          Alcotest.test_case "vdd vs skew" `Slow test_nominal_voltage_less_skewed;
          Alcotest.test_case "stack averaging" `Slow test_stack_averaging;
        ] );
      ( "rc_sim",
        [
          Alcotest.test_case "single-pole RC" `Quick test_rc_matches_analytic_single_pole;
          Alcotest.test_case "positive delays" `Quick test_rc_wire_delay_positive_and_ordered;
          Alcotest.test_case "elmore band" `Quick test_rc_elmore_correlation;
          Alcotest.test_case "driver strength" `Quick test_rc_driver_strength_effect;
          Alcotest.test_case "load slows tap" `Quick test_rc_load_slows_tap;
          Alcotest.test_case "tap slew" `Quick test_rc_tap_slew_reported;
        ] );
      ( "monte_carlo",
        [
          Alcotest.test_case "reproducible" `Quick test_mc_reproducible;
          Alcotest.test_case "study sorted" `Quick test_mc_study_sorted;
        ] );
    ]
