(* Tests for the parallel executor: backend equivalence (the determinism
   invariant — every backend and pool size must produce bit-identical
   results), exception propagation out of worker domains, and the
   index-derived RNG discipline that makes the invariant possible. *)

module T = Nsigma_process.Technology
module Rng = Nsigma_stats.Rng
module Moments = Nsigma_stats.Moments
module Arc = Nsigma_spice.Arc
module Cell_sim = Nsigma_spice.Cell_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Cell = Nsigma_liberty.Cell
module Ch = Nsigma_liberty.Characterize
module Bm = Nsigma_netlist.Benchmarks
module Design = Nsigma_sta.Design
module Engine = Nsigma_sta.Engine
module Provider = Nsigma_sta.Provider
module Path_mc = Nsigma_sta.Path_mc
module Executor = Nsigma_exec.Executor

let tech = T.with_vdd T.default_28nm 0.6
let pool_sizes = [ 1; 2; 4 ]
let pools = List.map (fun j -> (j, Executor.domain_pool ~jobs:j ())) pool_sizes

(* ---------- Executor basics ---------- *)

let test_map_array_matches_sequential () =
  let f i = (i * i) - (3 * i) in
  let expected = Executor.map_array Executor.sequential f ~n:1000 in
  List.iter
    (fun (j, pool) ->
      Alcotest.(check bool)
        (Printf.sprintf "pool %d = sequential" j)
        true
        (Executor.map_array pool f ~n:1000 = expected))
    pools

let test_map_chunked_matches_sequential () =
  let f i = float_of_int i ** 1.5 in
  let expected = Executor.map_chunked Executor.sequential f ~n:777 in
  List.iter
    (fun (j, pool) ->
      List.iter
        (fun chunk ->
          Alcotest.(check bool)
            (Printf.sprintf "pool %d chunk %d = sequential" j chunk)
            true
            (Executor.map_chunked pool ~chunk f ~n:777 = expected))
        [ 1; 7; 64; 2000 ])
    pools

let test_empty_and_small () =
  let pool = Executor.domain_pool ~jobs:4 () in
  Alcotest.(check int) "n=0" 0 (Array.length (Executor.map_array pool (fun i -> i) ~n:0));
  Alcotest.(check bool) "n=1" true (Executor.map_array pool (fun i -> i) ~n:1 = [| 0 |]);
  Alcotest.(check bool) "n < jobs" true
    (Executor.map_array pool (fun i -> i) ~n:3 = [| 0; 1; 2 |])

let test_jobs_accessor () =
  (* Pool sizes are clamped to the recommended domain count:
     oversubscribing OCaml 5 domains is always a slowdown. *)
  let cores = max 1 (Domain.recommended_domain_count ()) in
  Alcotest.(check int) "sequential" 1 (Executor.jobs Executor.sequential);
  Alcotest.(check int) "pool of 4 (clamped to cores)" (min 4 cores)
    (Executor.jobs (Executor.domain_pool ~jobs:4 ()));
  Alcotest.(check int) "jobs 1 degrades" 1
    (Executor.jobs (Executor.domain_pool ~jobs:1 ()));
  Alcotest.(check bool) "jobs 0 auto-detects" true
    (Executor.jobs (Executor.domain_pool ~jobs:0 ()) >= 1);
  Alcotest.(check int) "oversubscription clamped" cores
    (Executor.jobs (Executor.domain_pool ~jobs:(cores + 7) ()))

(* ---------- Exception propagation ---------- *)

let test_worker_exception_propagates () =
  (* A failing task must re-raise on the caller, not deadlock the join. *)
  List.iter
    (fun (j, pool) ->
      Alcotest.check_raises
        (Printf.sprintf "pool %d re-raises" j)
        (Failure "boom")
        (fun () ->
          ignore
            (Executor.map_array pool
               (fun i -> if i = 37 then failwith "boom" else i)
               ~n:200)))
    ((0, Executor.sequential) :: pools)

let test_exception_stops_remaining_work () =
  (* After a failure the queue drains: far fewer than n tasks run. *)
  let ran = Atomic.make 0 in
  (try
     ignore
       (Executor.map_array
          (Executor.domain_pool ~jobs:2 ())
          (fun i ->
            Atomic.incr ran;
            if i = 0 then failwith "early";
            i)
          ~n:100_000)
   with Failure _ -> ());
  Alcotest.(check bool) "work was cut short" true (Atomic.get ran < 100_000)

(* ---------- Rng.derive discipline ---------- *)

let test_derive_pure_and_decorrelated () =
  let g = Rng.create ~seed:42 in
  let before = Rng.bits64 (Rng.copy g) in
  let c1 = Rng.derive g ~index:5 in
  let c1' = Rng.derive g ~index:5 in
  let c2 = Rng.derive g ~index:6 in
  Alcotest.(check bool) "derive does not advance the parent" true
    (Rng.bits64 (Rng.copy g) = before);
  Alcotest.(check bool) "same index, same stream" true
    (Rng.bits64 c1 = Rng.bits64 c1');
  Alcotest.(check bool) "distinct index, distinct stream" true
    (Rng.bits64 c1 <> Rng.bits64 c2)

(* ---------- Monte_carlo determinism across backends ---------- *)

let fo4_load = 1.2e-15

let measure sample =
  let arc = Arc.make tech sample ~pull:Arc.Pull_down ~depth:1 ~strength:1.0 () in
  (Cell_sim.simulate tech arc ~input_slew:10e-12 ~load_cap:fo4_load)
    .Cell_sim.delay

let test_study_bit_identical () =
  let study exec =
    Monte_carlo.study ~exec tech (Rng.create ~seed:5) ~n:300 measure
  in
  let ref_summary, ref_samples = study Executor.sequential in
  List.iter
    (fun (j, pool) ->
      let s, samples = study pool in
      Alcotest.(check bool)
        (Printf.sprintf "moments identical at pool %d" j)
        true (s = ref_summary);
      Alcotest.(check bool)
        (Printf.sprintf "samples identical at pool %d" j)
        true (samples = ref_samples))
    pools

let test_delays_counted_failures_reported () =
  let g () = Rng.create ~seed:3 in
  let r =
    Monte_carlo.delays_counted tech (g ()) ~n:100 (fun sample ->
        let d = measure sample in
        if d > 0.0 then failwith "synthetic non-convergence" else d)
  in
  Alcotest.(check int) "all failures counted" 100 r.Monte_carlo.n_failed;
  Alcotest.(check int) "no survivors" 0 (Array.length r.Monte_carlo.delays);
  let ok = Monte_carlo.delays_counted tech (g ()) ~n:100 measure in
  Alcotest.(check int) "healthy run, no failures" 0 ok.Monte_carlo.n_failed;
  Alcotest.(check int) "healthy run keeps all" 100
    (Array.length ok.Monte_carlo.delays)

(* ---------- Characterisation determinism across backends ---------- *)

let test_characterize_bit_identical () =
  let table exec =
    Ch.characterize ~n_mc:120 ~seed:9 ~slews:[| 10e-12; 100e-12 |]
      ~loads:[| 0.4e-15; 2e-15 |] ~exec tech
      (Cell.make Cell.Inv ~strength:1)
      ~edge:`Fall
  in
  let reference = table Executor.sequential in
  List.iter
    (fun (j, pool) ->
      Alcotest.(check bool)
        (Printf.sprintf "table identical at pool %d" j)
        true
        ((table pool).Ch.points = reference.Ch.points))
    pools

(* ---------- Path Monte-Carlo determinism across backends ---------- *)

let test_path_mc_bit_identical () =
  let bm = List.hd Bm.small_variants in
  let nl = bm.Bm.generate () in
  let design = Design.attach_parasitics tech nl in
  let used_cells =
    Array.to_list nl.Nsigma_netlist.Netlist.gates
    |> List.map (fun g -> g.Nsigma_netlist.Netlist.cell)
    |> List.sort_uniq compare
  in
  let lib = Nsigma_liberty.Library.characterize_all ~n_mc:60 tech used_cells in
  let report = Engine.analyze tech (Provider.nominal lib) design in
  let path = Engine.critical_path report in
  let run exec = Path_mc.run ~n:40 ~steps:80 ~seed:11 ~exec tech design path in
  let reference = run Executor.sequential in
  List.iter
    (fun (j, pool) ->
      let r = run pool in
      Alcotest.(check bool)
        (Printf.sprintf "path samples identical at pool %d" j)
        true
        (r.Path_mc.samples = reference.Path_mc.samples);
      Alcotest.(check bool)
        (Printf.sprintf "path moments identical at pool %d" j)
        true
        (r.Path_mc.moments = reference.Path_mc.moments))
    pools

let () =
  Alcotest.run "nsigma_exec"
    [
      ( "executor",
        [
          Alcotest.test_case "map_array matches sequential" `Quick
            test_map_array_matches_sequential;
          Alcotest.test_case "map_chunked matches sequential" `Quick
            test_map_chunked_matches_sequential;
          Alcotest.test_case "empty and small inputs" `Quick test_empty_and_small;
          Alcotest.test_case "jobs accessor" `Quick test_jobs_accessor;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "worker exception propagates" `Quick
            test_worker_exception_propagates;
          Alcotest.test_case "failure stops remaining work" `Quick
            test_exception_stops_remaining_work;
        ] );
      ( "rng",
        [
          Alcotest.test_case "derive is pure and decorrelated" `Quick
            test_derive_pure_and_decorrelated;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "monte_carlo study bit-identical" `Slow
            test_study_bit_identical;
          Alcotest.test_case "failure counting" `Quick
            test_delays_counted_failures_reported;
          Alcotest.test_case "characterize bit-identical" `Slow
            test_characterize_bit_identical;
          Alcotest.test_case "path MC bit-identical" `Slow
            test_path_mc_bit_identical;
        ] );
    ]
