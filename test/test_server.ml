(* Tests for the timing server: protocol codec and framings, the LRU of
   retained contexts, request dispatch on a small characterised library,
   per-session retime semantics, bit-identity of replayed sequences, and
   a socket smoke against a real daemon process. *)

module T = Nsigma_process.Technology
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module N = Nsigma_netlist.Netlist
module Bm = Nsigma_netlist.Benchmarks
module Edit = Nsigma_netlist.Edit
module Executor = Nsigma_exec.Executor
module P = Nsigma_server.Protocol
module Lru = Nsigma_server.Lru
module Server = Nsigma_server.Server
module Client = Nsigma_server.Client

let tech = T.with_vdd T.default_28nm 0.6

(* The shared SSTA test library (same path and parameters as
   test_ssta / test_incremental, so the cache is built once). *)
let library =
  lazy
    (let cells =
       List.concat_map
         (fun k ->
           [ Cell.make k ~strength:1; Cell.make k ~strength:2;
             Cell.make k ~strength:4; Cell.make k ~strength:8 ])
         Cell.all_kinds
     in
     Library.load_or_characterize ~n_mc:250
       ~slews:[| 10e-12; 50e-12; 150e-12; 300e-12 |]
       ~path:(Filename.concat (Filename.get_temp_dir_name ()) "nsigma_test_ssta.lvf")
       tech cells)

let server () = Server.create (Server.default_config tech (Lazy.force library))

let parse_resp line = P.parse_line line

let is_ok fields = P.find fields "ok" = Some (P.Jbool true)

let check_ok msg line =
  let fields = parse_resp line in
  if not (is_ok fields) then Alcotest.failf "%s: not ok: %s" msg line;
  fields

(* ---------- protocol ---------- *)

let test_protocol_roundtrip () =
  let line =
    {|{"id": 7, "op": "analyze", "frac": 0.125, "flag": true, "off": false, "nothing": null, "s": "a\"b\\c"}|}
  in
  let fields = P.parse_line line in
  Alcotest.(check string) "emit inverts parse, order preserved" line
    (P.to_line fields);
  Alcotest.(check int) "int field" 7 (P.int_field fields "id");
  Alcotest.(check (float 0.0)) "num field" 0.125 (P.num_field fields "frac");
  Alcotest.(check string) "escaped string field" "a\"b\\c"
    (P.str_field fields "s");
  Alcotest.(check bool) "null visible" true
    (P.find fields "nothing" = Some P.Jnull)

let test_protocol_float_bit_roundtrip () =
  let xs = [ 1.0 /. 3.0; Float.pi; 1e-13; -0.0; 42.0; 1.5e300 ] in
  List.iter
    (fun x ->
      let line = P.to_line [ ("x", P.Jnum x) ] in
      let back = P.num_field (P.parse_line line) "x" in
      if Int64.bits_of_float back <> Int64.bits_of_float x then
        Alcotest.failf "float %h not bit-identical through %s" x line)
    xs

let test_protocol_rejects () =
  let rejects s =
    match P.parse_line s with
    | _ -> Alcotest.failf "accepted malformed %S" s
    | exception P.Protocol_error _ -> ()
  in
  rejects "";
  rejects "{";
  rejects {|{"a": 1|};
  rejects {|{"a": 1} trailing|};
  rejects {|{"a": {"nested": 1}}|};
  rejects {|{"a": [1, 2]}|};
  rejects {|{"a": 1, "a": 2}|};
  rejects {|{"a": tru}|}

let test_protocol_signature () =
  let a = P.parse_line {|{"id": 1, "op": "analyze", "circuit": "c432"}|} in
  let b = P.parse_line {|{"circuit": "c432", "op": "analyze", "id": 99}|} in
  let c = P.parse_line {|{"id": 1, "op": "analyze", "circuit": "c1355"}|} in
  Alcotest.(check string) "id and order ignored" (P.signature a)
    (P.signature b);
  Alcotest.(check bool) "different question, different signature" true
    (P.signature a <> P.signature c)

let feed_string dec s =
  let b = Bytes.of_string s in
  P.feed dec b (Bytes.length b)

let test_framing_jsonl_partial_feeds () =
  let dec = P.decoder P.Jsonl in
  let wire = P.encode P.Jsonl {|{"id": 1}|} ^ "{\"id\": 2}\r\n" in
  String.iter
    (fun c ->
      (* byte-at-a-time: messages complete only at their newline *)
      feed_string dec (String.make 1 c))
    (String.sub wire 0 (String.length wire - 1));
  Alcotest.(check (option string)) "first message" (Some {|{"id": 1}|})
    (P.next dec);
  Alcotest.(check (option string)) "second not complete yet" None (P.next dec);
  Alcotest.(check bool) "partial bytes pending" true (P.pending dec);
  feed_string dec "\n";
  Alcotest.(check (option string)) "CR stripped" (Some {|{"id": 2}|})
    (P.next dec);
  Alcotest.(check bool) "drained" false (P.pending dec)

let test_framing_length_prefixed () =
  let msg = "{\"s\": \"embedded\nnewline\"}" in
  let wire = P.encode P.Length_prefixed msg in
  Alcotest.(check string) "netstring shape"
    (Printf.sprintf "%d:%s" (String.length msg) msg)
    wire;
  let dec = P.decoder P.Length_prefixed in
  let half = String.length wire / 2 in
  feed_string dec (String.sub wire 0 half);
  Alcotest.(check (option string)) "half a frame" None (P.next dec);
  feed_string dec (String.sub wire half (String.length wire - half));
  feed_string dec (P.encode P.Length_prefixed {|{"id": 2}|});
  Alcotest.(check (option string)) "payload with newline intact" (Some msg)
    (P.next dec);
  Alcotest.(check (option string)) "second frame" (Some {|{"id": 2}|})
    (P.next dec);
  let bad = P.decoder P.Length_prefixed in
  feed_string bad "xx:oops";
  (match P.next bad with
  | _ -> Alcotest.fail "malformed length prefix accepted"
  | exception P.Protocol_error _ -> ());
  Alcotest.(check bool) "framing names roundtrip" true
    (P.framing_of_name (P.framing_name P.Jsonl) = P.Jsonl
    && P.framing_of_name (P.framing_name P.Length_prefixed)
       = P.Length_prefixed)

(* ---------- LRU ---------- *)

let test_lru_eviction_order () =
  (match Lru.create ~max:0 with
  | _ -> Alcotest.fail "max < 1 must raise"
  | exception Invalid_argument _ -> ());
  let l = Lru.create ~max:2 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Alcotest.(check (option int)) "find touches" (Some 1) (Lru.find l "a");
  Lru.add l "c" 3;
  Alcotest.(check bool) "LRU (b) evicted, touched (a) kept" true
    (Lru.mem l "a" && (not (Lru.mem l "b")) && Lru.mem l "c");
  Alcotest.(check int) "bounded" 2 (Lru.length l);
  Alcotest.(check (list string)) "keys MRU first" [ "c"; "a" ] (Lru.keys l);
  Lru.add l "c" 4;
  Alcotest.(check (option int)) "replace in place" (Some 4) (Lru.find l "c");
  Alcotest.(check int) "replace does not grow" 2 (Lru.length l)

(* ---------- dispatch ---------- *)

let test_ping_and_stats () =
  let s = server () in
  let ping = check_ok "ping" (Server.handle s ~session:0 {|{"id": 1, "op": "ping"}|}) in
  Alcotest.(check bool) "id echoed" true
    (P.find ping "id" = Some (P.Jnum 1.0));
  ignore (Server.handle s ~session:0 {|{"id": 2, "op": "ping"}|} : string);
  let stats =
    check_ok "stats" (Server.handle s ~session:0 {|{"id": 3, "op": "stats"}|})
  in
  Alcotest.(check bool) "requests counted" true
    (P.int_field stats "requests" >= 3);
  Alcotest.(check int) "no errors" 0 (P.int_field stats "errors")

let test_analyze_ssta_deterministic_and_cached () =
  let s = server () in
  let line = {|{"id": 4, "op": "analyze", "circuit": "c432-small"}|} in
  let r1 = Server.handle s ~session:0 line in
  let fields = check_ok "analyze" r1 in
  let mean = P.num_field fields "mean_s" in
  let q3 = P.num_field fields "q_s" in
  Alcotest.(check bool) "positive mean" true (mean > 0.0);
  Alcotest.(check bool) "+3s above mean" true (q3 > mean);
  Alcotest.(check bool) "has wns/tns" true
    (P.find fields "wns_s" <> None && P.find fields "tns_s" <> None);
  let r2 = Server.handle s ~session:0 line in
  Alcotest.(check string) "warm answer is byte-identical" r1 r2;
  let stats =
    parse_resp (Server.handle s ~session:0 {|{"id": 5, "op": "stats"}|})
  in
  Alcotest.(check bool) "second hit the context cache" true
    (P.int_field stats "cache_hits" >= 1)

let test_analyze_scalar_and_path_mc () =
  let s = server () in
  let sc =
    check_ok "scalar"
      (Server.handle s ~session:0
         {|{"id": 6, "op": "analyze", "circuit": "ADD-small", "engine": "scalar"}|})
  in
  Alcotest.(check bool) "nominal delay" true (P.num_field sc "nominal_s" > 0.0);
  let mc =
    check_ok "path_mc"
      (Server.handle s ~session:0
         {|{"id": 7, "op": "path_mc", "circuit": "ADD-small", "n": 25}|})
  in
  Alcotest.(check int) "drew n samples" 25 (P.int_field mc "drawn");
  Alcotest.(check bool) "mc mean positive" true (P.num_field mc "mean_s" > 0.0)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_error_responses () =
  let s = server () in
  let err msg line needle =
    let fields = parse_resp (Server.handle s ~session:0 line) in
    Alcotest.(check bool) (msg ^ ": not ok") true
      (P.find fields "ok" = Some (P.Jbool false));
    let e = P.str_field fields "error" in
    if not (contains ~needle e) then
      Alcotest.failf "%s: error %S lacks %S" msg e needle;
    fields
  in
  ignore (err "unknown op" {|{"id": 1, "op": "frobnicate"}|} "unknown op");
  ignore
    (err "unknown circuit" {|{"id": 2, "op": "analyze", "circuit": "c9999"}|}
       "unknown circuit");
  ignore
    (err "bad edit" {|{"id": 3, "op": "retime", "circuit": "c432-small", "edit": "not json"}|}
       "");
  let bad = err "malformed line" "{oops" "" in
  Alcotest.(check bool) "unparsable request answers id null" true
    (P.find bad "id" = Some P.Jnull);
  (* the connection-level contract: errors never raise *)
  let stats = parse_resp (Server.handle s ~session:0 {|{"id": 4, "op": "stats"}|}) in
  Alcotest.(check bool) "errors counted" true (P.int_field stats "errors" >= 4)

let scale_edit_line ~id =
  (* Doubling one wire's RC on the pristine c432-small netlist: a
     small but bit-visible perturbation. *)
  let bm = List.hd Bm.small_variants in
  let nl = bm.Bm.generate () in
  let edit =
    Edit.Scale_wire
      { net = nl.N.gates.(0).N.output; r_scale = 2.0; c_scale = 2.0 }
  in
  Printf.sprintf
    {|{"id": %d, "op": "retime", "circuit": "c432-small", "max": "clark", "edit": %S}|}
    id (Edit.to_json nl edit)

let test_retime_session_semantics () =
  let s = server () in
  let analyze id =
    Printf.sprintf
      {|{"id": %d, "op": "analyze", "circuit": "c432-small", "max": "clark"}|}
      id
  in
  let pristine = Server.handle s ~session:2 (analyze 1) in
  ignore (check_ok "pristine analyze" pristine : (string * P.jvalue) list);
  let rt = check_ok "retime" (Server.handle s ~session:1 (scale_edit_line ~id:2)) in
  Alcotest.(check int) "first edit" 1 (P.int_field rt "edits");
  Alcotest.(check bool) "invalidation did work" true
    (P.int_field rt "invalidated" >= 1 && P.int_field rt "dirty" >= 1);
  let edited = Server.handle s ~session:1 (analyze 1) in
  Alcotest.(check bool) "editing session sees the edited context" true
    (edited <> pristine);
  let other = Server.handle s ~session:2 (analyze 1) in
  Alcotest.(check string) "other sessions still see pristine" pristine other;
  Server.drop_session s ~session:1;
  let after_drop = Server.handle s ~session:1 (analyze 1) in
  Alcotest.(check string) "dropped session is pristine again" pristine
    after_drop

let test_bit_identity_replay () =
  (* The determinism contract the bench and CI gates rely on: the same
     per-session request sequence through two independent servers
     yields byte-identical responses. *)
  let lines =
    [
      {|{"id": 1, "op": "ping"}|};
      {|{"id": 2, "op": "analyze", "circuit": "c432-small", "max": "clark"}|};
      {|{"id": 3, "op": "analyze", "circuit": "c432-small", "max": "moment"}|};
      {|{"id": 4, "op": "analyze", "circuit": "c432-small", "engine": "scalar"}|};
      {|{"id": 5, "op": "path_mc", "circuit": "c432-small", "n": 30}|};
      scale_edit_line ~id:6;
      {|{"id": 7, "op": "analyze", "circuit": "c432-small", "max": "clark"}|};
    ]
  in
  let run () =
    let s = server () in
    List.map (Server.handle s ~session:0) lines
  in
  List.iter2
    (Alcotest.(check string) "replay is byte-identical")
    (run ()) (run ())

(* ---------- daemon smoke ---------- *)

let test_daemon_socket_smoke () =
  (* Spawn this test binary in its hidden [__serve] mode (fork+exec —
     never a bare fork once domains may have run), talk to it over the
     socket with the client codec, then SIGTERM and expect a clean
     drain. *)
  ignore (Lazy.force library : Library.t);
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nsigma_test_server_%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove socket with Sys_error _ -> ());
  flush stdout;
  flush stderr;
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "__serve"; socket |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let finish () =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  match
    let c = Client.connect ~retries:400 ~socket () in
    let ping = Client.request c {|{"id": 1, "op": "ping"}|} in
    let an =
      Client.request c
        {|{"id": 2, "op": "analyze", "circuit": "c432-small", "max": "clark"}|}
    in
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    Client.close c;
    (ping, an, status)
  with
  | ping, an, status ->
    ignore (check_ok "ping over the wire" ping : (string * P.jvalue) list);
    let fields = check_ok "analyze over the wire" an in
    Alcotest.(check bool) "distribution served" true
      (P.num_field fields "mean_s" > 0.0);
    Alcotest.(check bool) "SIGTERM drains to exit 0" true
      (status = Unix.WEXITED 0)
  | exception e ->
    finish ();
    raise e

(* Hidden daemon mode for the socket smoke: [test_server.exe __serve
   SOCKET] serves the shared test library until SIGTERM. *)
let () =
  if Array.length Sys.argv = 3 && Sys.argv.(1) = "__serve" then begin
    let srv = server () in
    Server.run srv ~socket:Sys.argv.(2) ();
    exit 0
  end

let () =
  Alcotest.run "nsigma_server"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse/emit roundtrip" `Quick
            test_protocol_roundtrip;
          Alcotest.test_case "float bit roundtrip" `Quick
            test_protocol_float_bit_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_protocol_rejects;
          Alcotest.test_case "coalescing signature" `Quick
            test_protocol_signature;
          Alcotest.test_case "jsonl partial feeds" `Quick
            test_framing_jsonl_partial_feeds;
          Alcotest.test_case "length-prefixed framing" `Quick
            test_framing_length_prefixed;
        ] );
      ("lru", [ Alcotest.test_case "eviction order" `Quick test_lru_eviction_order ]);
      ( "dispatch",
        [
          Alcotest.test_case "ping and stats" `Slow test_ping_and_stats;
          Alcotest.test_case "analyze ssta cached + deterministic" `Slow
            test_analyze_ssta_deterministic_and_cached;
          Alcotest.test_case "scalar and path_mc" `Slow
            test_analyze_scalar_and_path_mc;
          Alcotest.test_case "error responses" `Slow test_error_responses;
          Alcotest.test_case "retime session semantics" `Slow
            test_retime_session_semantics;
          Alcotest.test_case "bit-identity replay" `Slow
            test_bit_identity_replay;
        ] );
      ( "daemon",
        [ Alcotest.test_case "socket smoke" `Slow test_daemon_socket_smoke ] );
    ]
