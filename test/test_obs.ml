(* Telemetry layer: registry semantics, determinism of the merged view,
   the zero-perturbation invariant (metrics on vs off must be
   bit-identical), and the run-report surface. *)

module Log = Nsigma_obs.Log
module Metrics = Nsigma_obs.Metrics
module Report = Nsigma_obs.Report
module Progress = Nsigma_obs.Progress
module T = Nsigma_process.Technology
module Rng = Nsigma_stats.Rng
module Cell = Nsigma_liberty.Cell
module Ch = Nsigma_liberty.Characterize
module Library = Nsigma_liberty.Library
module Monte_carlo = Nsigma_spice.Monte_carlo
module Cell_sim = Nsigma_spice.Cell_sim
module Executor = Nsigma_exec.Executor

let tech = T.with_vdd T.default_28nm 0.6

(* Well-known metric keys are registered by their modules' initialisers;
   reference Path_mc so the linker keeps it (the report-keys test checks
   its counters are present). *)
let _force_path_mc_linkage = Nsigma_sta.Path_mc.run

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ----- logging ----- *)

let test_log_level_parsing () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "parse %S" s)
        true
        (Log.level_of_string s = expect))
    [
      ("quiet", Some Log.Quiet); ("off", Some Log.Quiet);
      ("none", Some Log.Quiet); ("warn", Some Log.Warn);
      ("WARNING", Some Log.Warn); ("Info", Some Log.Info);
      ("debug", Some Log.Debug); ("garbage", None); ("", None);
    ]

let test_log_level_gating () =
  let saved = Log.level () in
  Fun.protect
    ~finally:(fun () -> Log.set_level saved)
    (fun () ->
      Log.set_level Log.Quiet;
      Alcotest.(check bool) "quiet silences warn" false (Log.enabled Log.Warn);
      Alcotest.(check bool) "quiet silences debug" false (Log.enabled Log.Debug);
      Log.set_level Log.Warn;
      Alcotest.(check bool) "warn enables warn" true (Log.enabled Log.Warn);
      Alcotest.(check bool) "warn silences info" false (Log.enabled Log.Info);
      Log.set_level Log.Debug;
      Alcotest.(check bool) "debug enables info" true (Log.enabled Log.Info))

let test_log_kv () =
  Alcotest.(check string)
    "kv rendering" " a=1 b=x"
    (Log.kv [ ("a", "1"); ("b", "x") ])

(* ----- registry ----- *)

let with_metrics f =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled was)
    f

let test_counter_disabled_noop () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test.disabled" in
  Metrics.incr c;
  Metrics.incr c ~by:41;
  Alcotest.(check int) "disabled counter stays 0" 0 (Metrics.counter_value c)

let test_counter_merge_across_domains () =
  with_metrics (fun () ->
      let c = Metrics.counter "test.merge" in
      let h = Metrics.histogram "test.merge.hist" in
      let worker () =
        for _ = 1 to 1000 do
          Metrics.incr c;
          Metrics.observe h 1e-6
        done
      in
      let domains = List.init 3 (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      Alcotest.(check int)
        "4 domains x 1000 increments" 4000 (Metrics.counter_value c);
      let snap = Metrics.snapshot () in
      let view = List.assoc "test.merge.hist" snap.Metrics.s_histograms in
      Alcotest.(check int) "histogram count merged" 4000 view.Metrics.h_count;
      (* Every observation was 1 us: exactly one non-empty bucket. *)
      Alcotest.(check int)
        "single bucket" 1
        (List.length view.Metrics.h_buckets))

let test_snapshot_sorted_and_deterministic () =
  with_metrics (fun () ->
      ignore (Metrics.counter "test.zzz");
      ignore (Metrics.counter "test.aaa");
      let names = ref [] in
      let snap = Metrics.snapshot () in
      List.iter (fun (n, _) -> names := n :: !names) snap.Metrics.s_counters;
      let names = List.rev !names in
      Alcotest.(check bool)
        "counter names sorted" true
        (names = List.sort String.compare names);
      let snap2 = Metrics.snapshot () in
      Alcotest.(check bool)
        "snapshot is reproducible" true
        (snap.Metrics.s_counters = snap2.Metrics.s_counters))

let test_timer_and_span () =
  with_metrics (fun () ->
      let t = Metrics.timer "test.timer" in
      Metrics.add_time t 0.25;
      Metrics.add_time t 0.75;
      let n, s = Metrics.timer_value t in
      Alcotest.(check int) "two observations" 2 n;
      Alcotest.(check (float 1e-9)) "accumulated seconds" 1.0 s;
      let r = Metrics.span "test_stage" (fun () -> 42) in
      Alcotest.(check int) "span returns the body's value" 42 r;
      let n, _ = Metrics.timer_value (Metrics.timer "stage.test_stage") in
      Alcotest.(check int) "span recorded one interval" 1 n)

let test_gauge_max () =
  with_metrics (fun () ->
      let g = Metrics.gauge "test.gauge" in
      Metrics.max_gauge g 2.0;
      Metrics.max_gauge g 1.0;
      Alcotest.(check (float 1e-9)) "max wins" 2.0 (Metrics.gauge_value g))

let test_histogram_percentiles () =
  with_metrics (fun () ->
      let h = Metrics.histogram "test.pct.hist" in
      (* 90 ~1us observations and 10 ~1ms ones: p50 must land in the
         fast bucket, p95/p99 in the slow one, and the order must
         hold.  The log-scale buckets make these coarse bounds. *)
      for _ = 1 to 90 do
        Metrics.observe h 1e-6
      done;
      for _ = 1 to 10 do
        Metrics.observe h 1e-3
      done;
      let snap = Metrics.snapshot () in
      let v = List.assoc "test.pct.hist" snap.Metrics.s_histograms in
      Alcotest.(check int) "count" 100 v.Metrics.h_count;
      Alcotest.(check bool) "p50 in the fast bucket" true
        (v.Metrics.h_p50 > 0.0 && v.Metrics.h_p50 < 1e-5);
      Alcotest.(check bool) "p95 in the slow bucket" true
        (v.Metrics.h_p95 > 1e-4);
      Alcotest.(check bool) "percentiles ordered" true
        (v.Metrics.h_p50 <= v.Metrics.h_p95
        && v.Metrics.h_p95 <= v.Metrics.h_p99);
      let json = Report.to_json () in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "report contains %S" needle)
            true
            (contains ~needle json))
        [ "\"p50\":"; "\"p95\":"; "\"p99\":" ])

(* ----- the zero-perturbation invariant ----- *)

let mc_population () =
  let g = Rng.create ~seed:5 in
  let cell = Cell.make Cell.Inv ~strength:1 in
  Monte_carlo.delays_counted tech g ~n:200 (fun sample ->
      let arc = Cell.arc tech sample cell ~output_edge:`Fall in
      (Cell_sim.simulate_fast tech arc ~input_slew:20e-12 ~load_cap:1e-15)
        .Cell_sim.delay)

let test_mc_bit_identical_metrics_on_off () =
  Metrics.set_enabled false;
  let off = mc_population () in
  let on = with_metrics mc_population in
  Alcotest.(check bool)
    "same-seed populations bit-identical with metrics on vs off" true
    (off.Monte_carlo.delays = on.Monte_carlo.delays
    && off.Monte_carlo.n_failed = on.Monte_carlo.n_failed)

let small_table () =
  Ch.characterize ~n_mc:40 ~seed:3 ~slews:[| 10e-12; 60e-12 |]
    ~loads:[| 0.5e-15; 2e-15 |] ~exec:Executor.sequential
    ~kernel:Cell_sim.Fast tech
    (Cell.make Cell.Nand2 ~strength:1)
    ~edge:`Fall

let test_characterize_bit_identical_metrics_on_off () =
  Metrics.set_enabled false;
  let off = small_table () in
  let on = with_metrics small_table in
  Alcotest.(check bool)
    "characterised tables bit-identical with metrics on vs off" true
    (off.Ch.points = on.Ch.points)

(* ----- pipeline counters ----- *)

let test_non_convergence_counted () =
  with_metrics (fun () ->
      let before = Metrics.find_counter "mc.non_convergent" in
      let g = Rng.create ~seed:7 in
      let i = ref 0 in
      let r =
        Monte_carlo.delays_counted ~exec:Executor.sequential tech g ~n:50
          (fun _sample ->
            incr i;
            if !i mod 5 = 0 then failwith "synthetic non-convergence"
            else 1e-12)
      in
      Alcotest.(check int) "10 of 50 failed" 10 r.Monte_carlo.n_failed;
      Alcotest.(check int)
        "surfaced as mc.non_convergent" 10
        (Metrics.find_counter "mc.non_convergent" - before))

let test_lvf_cache_metrics () =
  with_metrics (fun () ->
      let path = Filename.temp_file "nsigma_obs_cache" ".lvf" in
      Sys.remove path;
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let cells = [ Cell.make Cell.Inv ~strength:1 ] in
          let characterize () =
            Library.load_or_characterize ~n_mc:40 ~seed:3
              ~slews:[| 10e-12; 60e-12 |] ~edges:[ `Fall ]
              ~exec:Executor.sequential ~kernel:Cell_sim.Fast ~path tech cells
          in
          let miss0 = Metrics.find_counter "lvf.cache.miss" in
          let hit0 = Metrics.find_counter "lvf.cache.hit" in
          ignore (characterize ());
          Alcotest.(check int)
            "first run misses" 1
            (Metrics.find_counter "lvf.cache.miss" - miss0);
          ignore (characterize ());
          Alcotest.(check int)
            "second run hits" 1
            (Metrics.find_counter "lvf.cache.hit" - hit0);
          (* Corrupt the header: stale, not a miss. *)
          let stale0 = Metrics.find_counter "lvf.cache.stale" in
          let oc = open_out path in
          output_string oc "NSIGMA_LIB 3 open28 0.600000 fast deadbeef\nEND\n";
          close_out oc;
          ignore (characterize ());
          Alcotest.(check int)
            "corrupt cache counts as stale" 1
            (Metrics.find_counter "lvf.cache.stale" - stale0)))

(* ----- run report ----- *)

let test_report_json_keys () =
  with_metrics (fun () ->
      let json = Report.to_json ~elapsed:1.5 () in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "report contains %S" needle)
            true
            (contains ~needle json))
        [
          "\"schema\": \"nsigma-run-report\"";
          "\"schema_version\": 1";
          "kernel.auto.fallback";
          "kernel.rk4.steps";
          "lvf.cache.hit";
          "lvf.cache.miss";
          "mc.non_convergent";
          "path_mc.samples";
          "exec.worker.busy";
          "characterize.points";
        ])

let test_report_json_parses () =
  (* No JSON parser in the dependency set: check structural invariants
     the hand-rolled serialiser must maintain. *)
  with_metrics (fun () ->
      Metrics.incr (Metrics.counter "test.report") ~by:3;
      Metrics.observe (Metrics.histogram "test.report.hist") 2e-9;
      let json = Report.to_json () in
      let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 json in
      Alcotest.(check int) "balanced braces" (count '{') (count '}');
      Alcotest.(check int) "balanced brackets" (count '[') (count ']');
      Alcotest.(check bool) "even quote count" true (count '"' mod 2 = 0);
      Alcotest.(check bool)
        "no trailing comma" false
        (contains ~needle:",}" json || contains ~needle:", }" json))

let test_summary_nonempty () =
  with_metrics (fun () ->
      Metrics.incr (Metrics.counter "test.summary") ~by:7;
      let s = Report.summary ~elapsed:0.1 () in
      Alcotest.(check bool)
        "summary mentions the counter" true
        (contains ~needle:"test.summary" s))

let test_progress_inactive_when_not_tty () =
  (* Test stderr is a pipe under dune: even enabled, the ticker must
     stay inert and with_bar must still run the body. *)
  Progress.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Progress.set_enabled false)
    (fun () ->
      Alcotest.(check bool)
        "no TTY, no rendering" false (Progress.active ());
      let hits = ref 0 in
      let r =
        Progress.with_bar ~label:"t" ~total:5 (fun tick ->
            for _ = 1 to 5 do
              tick ();
              incr hits
            done;
            "done")
      in
      Alcotest.(check string) "body result returned" "done" r;
      Alcotest.(check int) "body ran" 5 !hits)

let () =
  Alcotest.run "obs"
    [
      ( "log",
        [
          Alcotest.test_case "level parsing" `Quick test_log_level_parsing;
          Alcotest.test_case "level gating" `Quick test_log_level_gating;
          Alcotest.test_case "kv rendering" `Quick test_log_kv;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_counter_disabled_noop;
          Alcotest.test_case "merge across domains" `Quick
            test_counter_merge_across_domains;
          Alcotest.test_case "snapshot sorted + deterministic" `Quick
            test_snapshot_sorted_and_deterministic;
          Alcotest.test_case "timers and spans" `Quick test_timer_and_span;
          Alcotest.test_case "max gauge" `Quick test_gauge_max;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "MC bit-identical on/off" `Quick
            test_mc_bit_identical_metrics_on_off;
          Alcotest.test_case "characterize bit-identical on/off" `Quick
            test_characterize_bit_identical_metrics_on_off;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "non-convergence counted" `Quick
            test_non_convergence_counted;
          Alcotest.test_case "lvf cache hit/miss/stale" `Quick
            test_lvf_cache_metrics;
        ] );
      ( "report",
        [
          Alcotest.test_case "well-known keys" `Quick test_report_json_keys;
          Alcotest.test_case "structural JSON invariants" `Quick
            test_report_json_parses;
          Alcotest.test_case "summary table" `Quick test_summary_nonempty;
          Alcotest.test_case "progress inert without TTY" `Quick
            test_progress_inactive_when_not_tty;
        ] );
    ]
