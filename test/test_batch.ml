(* Batch layer: the SoA fast-kernel path and its polynomial
   transcendentals.

   The load-bearing invariant is opt-out bit-identity: with [batch] on
   and [approx] off, every population — arc, path, SSTA mini-MC — must
   be bitwise-equal to the scalar planned loop on every executor
   backend, because sample [i] stays a pure function of (seed, i) and
   the SoA layout only interchanges loops, never reorders a sample's
   float operations.  On top of that, the Fastmath kernels must honour
   their advertised relative-error bound against libm over dense
   sweeps, and the [approx] mode built on them must stay within the
   fast kernel's own model error of the exact populations. *)

module T = Nsigma_process.Technology
module Rng = Nsigma_stats.Rng
module Fastmath = Nsigma_stats.Fastmath
module Sampler = Nsigma_stats.Sampler
module Cell_sim = Nsigma_spice.Cell_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Executor = Nsigma_exec.Executor
module Cell = Nsigma_liberty.Cell
module Netlist = Nsigma_netlist.Netlist
module Design = Nsigma_sta.Design
module Path_mc = Nsigma_sta.Path_mc
module Ssta = Nsigma_sta.Ssta

let tech = T.with_vdd T.default_28nm 0.6

let execs () =
  [ ("seq", Executor.sequential); ("pool2", Executor.domain_pool ~jobs:2 ()) ]

let check_bits ~what expected actual =
  Alcotest.(check int)
    (what ^ " length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i e ->
      let a = actual.(i) in
      let same =
        (Float.is_nan e && Float.is_nan a)
        || Int64.equal (Int64.bits_of_float e) (Int64.bits_of_float a)
      in
      if not same then
        Alcotest.failf "%s: sample %d differs: %h vs %h" what i e a)
    expected

(* ---------- Fastmath: polynomial kernels vs libm ---------- *)

let rel_err ref v =
  if ref = v then 0.0
  else if Float.abs ref > 0.0 then Float.abs ((v -. ref) /. ref)
  else Float.abs (v -. ref)

(* Dense affine sweep of [f] against oracle [g] over [lo, hi]; the odd
   step keeps the grid off exact binades so the range reductions are
   exercised at awkward points. *)
let sweep ~what ~lo ~hi ~n f g =
  let worst = ref 0.0 and at = ref Float.nan in
  for i = 0 to n - 1 do
    let x = lo +. ((hi -. lo) *. (float_of_int i +. 0.137) /. float_of_int n) in
    let e = rel_err (g x) (f x) in
    if e > !worst then begin
      worst := e;
      at := x
    end
  done;
  if !worst > Fastmath.max_rel_error then
    Alcotest.failf "%s: rel err %.3e at x=%.17g exceeds %.1e" what !worst !at
      Fastmath.max_rel_error

let test_fastmath_exp () =
  sweep ~what:"exp core" ~lo:(-20.0) ~hi:20.0 ~n:200_000 Fastmath.exp
    Stdlib.exp;
  sweep ~what:"exp wide" ~lo:(-700.0) ~hi:700.0 ~n:200_000 Fastmath.exp
    Stdlib.exp;
  (* Saturation and specials behave like libm. *)
  Alcotest.(check bool) "overflow" true (Fastmath.exp 710.0 = infinity);
  Alcotest.(check bool) "underflow" true (Fastmath.exp (-746.0) = 0.0);
  Alcotest.(check bool) "exp 0" true (Fastmath.exp 0.0 = 1.0);
  Alcotest.(check bool) "exp nan" true (Float.is_nan (Fastmath.exp Float.nan));
  Alcotest.(check bool) "exp inf" true (Fastmath.exp infinity = infinity);
  Alcotest.(check bool) "exp -inf" true (Fastmath.exp neg_infinity = 0.0)

let test_fastmath_log () =
  sweep ~what:"log near 1" ~lo:0.5 ~hi:2.0 ~n:200_000 Fastmath.log Stdlib.log;
  sweep ~what:"log mid" ~lo:1e-12 ~hi:1e3 ~n:200_000 Fastmath.log Stdlib.log;
  (* Log-spaced sweep across the full exponent range, subnormals
     included. *)
  for e = -1070 to 1020 do
    let x = Float.ldexp 1.3717 e in
    let err = rel_err (Stdlib.log x) (Fastmath.log x) in
    if err > Fastmath.max_rel_error then
      Alcotest.failf "log 2^%d: rel err %.3e" e err
  done;
  Alcotest.(check bool) "log 1" true (Fastmath.log 1.0 = 0.0);
  Alcotest.(check bool) "log 0" true (Fastmath.log 0.0 = neg_infinity);
  Alcotest.(check bool) "log neg" true (Float.is_nan (Fastmath.log (-1.0)));
  Alcotest.(check bool) "log inf" true (Fastmath.log infinity = infinity)

let test_fastmath_log1p () =
  sweep ~what:"log1p small" ~lo:(-0.5) ~hi:0.5 ~n:200_000 Fastmath.log1p
    Stdlib.log1p;
  sweep ~what:"log1p tiny" ~lo:(-1e-8) ~hi:1e-8 ~n:50_000 Fastmath.log1p
    Stdlib.log1p;
  sweep ~what:"log1p wide" ~lo:0.5 ~hi:1e6 ~n:100_000 Fastmath.log1p
    Stdlib.log1p;
  sweep ~what:"log1p lower" ~lo:(-0.999) ~hi:(-0.5) ~n:50_000 Fastmath.log1p
    Stdlib.log1p

let test_fastmath_log1p_exp () =
  (* Oracle: the numerically-stable softplus in full libm precision. *)
  let oracle x =
    if x > 0.0 then x +. Stdlib.log1p (Stdlib.exp (-.x))
    else Stdlib.log1p (Stdlib.exp x)
  in
  sweep ~what:"log1p_exp band" ~lo:(-34.9) ~hi:34.9 ~n:400_000
    Fastmath.log1p_exp oracle;
  sweep ~what:"log1p_exp lower" ~lo:(-80.0) ~hi:(-35.0) ~n:50_000
    Fastmath.log1p_exp oracle;
  (* Above the saturation cut the result is exactly x. *)
  Alcotest.(check bool) "saturates high" true (Fastmath.log1p_exp 36.0 = 36.0)

(* ---------- arc populations: batch = scalar (bitwise) ---------- *)

let arc_workload =
  [ (Cell.make Inv ~strength:1, `Rise);
    (Cell.make Nand2 ~strength:2, `Fall);
    (Cell.make Aoi21 ~strength:1, `Rise) ]

let arc_population ?batch ?approx ~exec ~n ~seed (cell, edge) =
  Monte_carlo.arc_delays_planned ~exec ~kernel:Cell_sim.Fast ?batch ?approx
    tech (Rng.create ~seed) ~n
    ~plan:(fun () -> Cell.plan tech cell ~output_edge:edge)
    ~input_slew:40e-12
    ~load_cap:(Cell.fo4_load tech cell)

let test_arc_batch_identity () =
  List.iter
    (fun ((cell, _) as arc) ->
      let expected, expected_slews =
        arc_population ~exec:Executor.sequential ~n:300 ~seed:42 arc
      in
      List.iter
        (fun (ename, exec) ->
          let delays, slews =
            arc_population ~batch:true ~exec ~n:300 ~seed:42 arc
          in
          let what =
            Printf.sprintf "arc %s batch/%s" (Cell.name cell) ename
          in
          check_bits ~what expected delays;
          check_bits ~what:(what ^ " slews") expected_slews slews)
        (execs ()))
    arc_workload

(* The approximate path is opt-in and NOT bitwise — but its population
   must track the exact one within far less than the fast kernel's own
   model error.  Tiny per-sample divergences can flip a step-control
   branch, so individual samples get a loose bar and the mean a tight
   one. *)
let test_arc_approx_close () =
  List.iter
    (fun ((cell, _) as arc) ->
      let exact, _ = arc_population ~exec:Executor.sequential ~n:400 ~seed:7 arc
      and approx, _ =
        arc_population ~batch:true ~approx:true ~exec:Executor.sequential
          ~n:400 ~seed:7 arc
      in
      let ce = Monte_carlo.compact_nan exact
      and ca = Monte_carlo.compact_nan approx in
      Alcotest.(check int)
        (Cell.name cell ^ " same convergent count")
        (Array.length ce) (Array.length ca);
      let mean a =
        Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)
      in
      let me = mean ce and ma = mean ca in
      Alcotest.(check bool)
        (Printf.sprintf "%s mean err %.2e" (Cell.name cell)
           (rel_err me ma))
        true
        (rel_err me ma < 1e-4);
      Array.iteri
        (fun i e ->
          if rel_err e ca.(i) > 0.02 then
            Alcotest.failf "%s sample %d: approx %.6e vs exact %.6e"
              (Cell.name cell) i ca.(i) e)
        ce)
    arc_workload

(* ---------- path populations: batch = scalar (bitwise) ---------- *)

let small_design () =
  let module Bm = Nsigma_netlist.Benchmarks in
  let module Engine = Nsigma_sta.Engine in
  let module Provider = Nsigma_sta.Provider in
  let bm = List.hd Bm.small_variants in
  let nl = bm.Bm.generate () in
  let design = Design.attach_parasitics tech nl in
  let used_cells =
    Array.to_list nl.Netlist.gates
    |> List.map (fun g -> g.Netlist.cell)
    |> List.sort_uniq compare
  in
  let lib = Nsigma_liberty.Library.characterize_all ~n_mc:60 tech used_cells in
  let report = Engine.analyze tech (Provider.nominal lib) design in
  (design, lib, Engine.critical_path report)

let test_path_batch_identity () =
  let design, _, path = small_design () in
  let expected =
    Path_mc.run ~kernel:Cell_sim.Fast ~steps:80 ~n:40 ~seed:11
      ~exec:Executor.sequential tech design path
  in
  List.iter
    (fun (ename, exec) ->
      let r =
        Path_mc.run ~kernel:Cell_sim.Fast ~steps:80 ~n:40 ~seed:11 ~exec
          ~batch:true tech design path
      in
      check_bits ~what:("path batch/" ^ ename) expected.Path_mc.samples
        r.Path_mc.samples)
    (execs ())

(* ---------- SSTA provider: batched mini-MC = scalar (bitwise) ---------- *)

let test_ssta_batch_identity () =
  let design, lib, _ = small_design () in
  let dist ~batch =
    let provider = Ssta.lvf_provider ~seed:3 ~batch tech lib design in
    Ssta.circuit_dist (Ssta.analyze tech provider design)
  in
  let d0 = dist ~batch:false and d1 = dist ~batch:true in
  check_bits ~what:"ssta mean"
    [| d0.Ssta.d_mean; d0.Ssta.d_var_l; d0.Ssta.d_m3_l; d0.Ssta.d_m4_l |]
    [| d1.Ssta.d_mean; d1.Ssta.d_var_l; d1.Ssta.d_m3_l; d1.Ssta.d_m4_l |];
  check_bits ~what:"ssta linear sens" d0.Ssta.d_a d1.Ssta.d_a;
  check_bits ~what:"ssta quadratic sens" d0.Ssta.d_b d1.Ssta.d_b

let () =
  Alcotest.run "batch"
    [
      ( "fastmath",
        [
          Alcotest.test_case "exp within 1e-7 of libm" `Quick
            test_fastmath_exp;
          Alcotest.test_case "log within 1e-7 of libm" `Quick
            test_fastmath_log;
          Alcotest.test_case "log1p within 1e-7 of libm" `Quick
            test_fastmath_log1p;
          Alcotest.test_case "log1p_exp within 1e-7 of libm" `Quick
            test_fastmath_log1p_exp;
        ] );
      ( "bit_identity",
        [
          Alcotest.test_case "arc batch = scalar (bitwise)" `Quick
            test_arc_batch_identity;
          Alcotest.test_case "path batch = scalar (bitwise)" `Slow
            test_path_batch_identity;
          Alcotest.test_case "ssta batch = scalar (bitwise)" `Slow
            test_ssta_batch_identity;
        ] );
      ( "approx",
        [
          Alcotest.test_case "approx tracks exact" `Quick
            test_arc_approx_close;
        ] );
    ]
