(* Tests for the incremental re-timing layer: the typed edit API and its
   JSON-lines codec, fan-out-cone invalidation with bitwise cutoff
   (incremental reports bit-identical to from-scratch analyses of the
   edited design, on synthetic providers and on the real LVF provider),
   and the on-disk provider store (cold populate, warm hit, bitwise
   round-trip). *)

module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Store = Nsigma_liberty.Store
module N = Nsigma_netlist.Netlist
module B = Nsigma_netlist.Builder
module G = Nsigma_netlist.Generators
module Edit = Nsigma_netlist.Edit
module Rctree = Nsigma_rcnet.Rctree
module Design = Nsigma_sta.Design
module Engine_core = Nsigma_sta.Engine_core
module Ssta = Nsigma_sta.Ssta
module Incremental = Nsigma_sta.Incremental
module Metrics = Nsigma_obs.Metrics

let tech = T.with_vdd T.default_28nm 0.6
let ng = Variation.global_deviate_dim

let local_dist m s =
  {
    Ssta.d_mean = m;
    d_a = Array.make ng 0.0;
    d_b = Array.make ng 0.0;
    d_var_l = s *. s;
    d_m3_l = 0.0;
    d_m4_l = 3.0 *. (s ** 4.0);
  }

(* Constant provider: edits that only change loads/wires are invisible,
   so cutoff fires immediately at the frontier. *)
let const_provider d =
  {
    Engine_core.m_label = "const-dist";
    m_cell_delay =
      (fun _ ~edge:_ ~in_net:_ ~in_edge:_ ~input_slew:_ ~load_cap:_ ->
        { Ssta.dd = d; d_slew_tc = 0.0 });
    m_cell_out_slew =
      (fun _ ~edge:_ ~in_net:_ ~in_edge:_ ~input_slew ~load_cap:_ -> input_slew);
    m_wire_delay =
      (fun ~net:_ ~driver:_ ~sink:_ ~tree:_ ~tap:_ ->
        { Ssta.dd = Ssta.zero_dist; d_slew_tc = 0.0 });
    m_wire_slew_degrade = (fun ~wire_delay:_ ~slew_at_root -> slew_at_root);
  }

(* Load/slew/wire-sensitive provider: every edit kind moves real
   arrivals, so bitwise incremental-vs-scratch agreement is a strong
   check while staying deterministic and cheap. *)
let load_provider =
  {
    Engine_core.m_label = "load-dep";
    m_cell_delay =
      (fun (g : N.gate) ~edge:_ ~in_net:_ ~in_edge:_ ~input_slew ~load_cap ->
        let r = 1e3 *. float_of_int (4 / g.N.cell.Cell.strength + 1) in
        {
          Ssta.dd =
            local_dist
              (1e-12 +. (r *. load_cap) +. (0.1 *. input_slew))
              (0.05 *. (1e-12 +. (r *. load_cap)));
          d_slew_tc = 0.0;
        });
    m_cell_out_slew =
      (fun _ ~edge:_ ~in_net:_ ~in_edge:_ ~input_slew ~load_cap ->
        (0.4 *. input_slew) +. (5e2 *. load_cap) +. 1e-12);
    m_wire_delay =
      (fun ~net:_ ~driver:_ ~sink:_ ~tree ~tap:_ ->
        let d = 0.5 *. Rctree.total_res tree *. Rctree.total_cap tree in
        { Ssta.dd = local_dist d (0.02 *. d); d_slew_tc = d });
    m_wire_slew_degrade =
      (fun ~wire_delay ~slew_at_root ->
        slew_at_root +. (0.3 *. wire_delay.Ssta.d_slew_tc));
  }

let chain n =
  let b = B.create ~name:"chain" in
  let a = B.input b "a" in
  let net = ref a in
  for _ = 1 to n do
    net := B.inv b !net
  done;
  B.output b !net;
  B.finish b

let expect_edit_error name f =
  match f () with
  | exception Edit.Edit_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Edit_error" name

(* ---- edit API and JSON codec ---- *)

let test_edit_json_roundtrip () =
  let nl = chain 4 in
  let edits =
    [
      Edit.Swap_cell { gate = 1; cell = Cell.make Cell.Inv ~strength:4 };
      Edit.Scale_wire { net = 2; r_scale = 1.25; c_scale = 0.8 };
      Edit.Bump_sink_load { net = 1; sink = 0; delta_cap = 1.5e-15 };
    ]
  in
  (* The fF<->F unit conversion can cost one ulp, so load deltas
     round-trip within tolerance, everything else exactly. *)
  let same a b =
    match (a, b) with
    | ( Edit.Bump_sink_load { net; sink; delta_cap },
        Edit.Bump_sink_load { net = n'; sink = s'; delta_cap = d' } ) ->
      net = n' && sink = s'
      && Float.abs (delta_cap -. d') <= 1e-9 *. Float.abs delta_cap
    | _ -> a = b
  in
  List.iter
    (fun e ->
      let line = Edit.to_json nl e in
      let back = Edit.of_json nl line in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Edit.describe nl e))
        true (same back e))
    edits;
  (* Numeric net/gate references parse too. *)
  let e = Edit.of_json nl {|{"op": "swap_cell", "gate": 0, "cell": "INVX2"}|} in
  Alcotest.(check bool) "numeric gate ref" true
    (e = Edit.Swap_cell { gate = 0; cell = Cell.make Cell.Inv ~strength:2 })

let test_edit_errors () =
  let nl = chain 4 in
  expect_edit_error "unknown op" (fun () ->
      Edit.of_json nl {|{"op": "delete_gate", "gate": 0}|});
  expect_edit_error "unknown net" (fun () ->
      Edit.of_json nl {|{"op": "scale_wire", "net": "bogus", "r": 1.1}|});
  expect_edit_error "unknown gate" (fun () ->
      Edit.of_json nl {|{"op": "swap_cell", "gate": "bogus", "cell": "INVX2"}|});
  expect_edit_error "unknown cell" (fun () ->
      Edit.of_json nl {|{"op": "swap_cell", "gate": 0, "cell": "FOO9"}|});
  expect_edit_error "footprint mismatch" (fun () ->
      Edit.of_json nl {|{"op": "swap_cell", "gate": 0, "cell": "NAND2X2"}|});
  expect_edit_error "malformed json" (fun () ->
      Edit.of_json nl {|{"op": "scale_wire", "net"|});
  expect_edit_error "trailing garbage" (fun () ->
      Edit.of_json nl {|{"op": "scale_wire", "net": 1} extra|});
  expect_edit_error "negative r scale" (fun () ->
      Edit.of_json nl {|{"op": "scale_wire", "net": 1, "r": -1.0}|});
  expect_edit_error "missing field" (fun () ->
      Edit.of_json nl {|{"op": "bump_sink_load", "net": 1}|})

let test_edit_invalidated () =
  let nl = chain 3 in
  let g1 = nl.N.gates.(1) in
  let inv =
    Edit.invalidated nl
      (Edit.Swap_cell { gate = 1; cell = Cell.make Cell.Inv ~strength:8 })
  in
  Alcotest.(check bool) "swap invalidates output and inputs" true
    (List.sort_uniq compare (g1.N.output :: Array.to_list g1.N.inputs) = inv);
  Alcotest.(check (list int)) "wire edit invalidates its net" [ 2 ]
    (Edit.invalidated nl (Edit.Scale_wire { net = 2; r_scale = 2.0; c_scale = 1.0 }))

(* ---- incremental vs from-scratch, synthetic providers ---- *)

let scratch_report ?config provider design =
  Ssta.analyze ?config tech provider design

(* Two identical designs from the same deterministic generation; edits
   are applied to both (incrementally vs via Design.apply_edit +
   re-analysis) and the reports must stay bit-identical. *)
let check_sequence ?config ~make_netlist edits =
  let design_inc = Design.attach_parasitics tech (make_netlist ()) in
  let design_ref = Design.attach_parasitics tech (make_netlist ()) in
  let inc =
    Incremental.init ?config tech
      (Ssta.handle_of_provider load_provider)
      design_inc
  in
  List.iteri
    (fun i e ->
      let stats = Incremental.apply inc e in
      ignore (Design.apply_edit design_ref e);
      let reference = scratch_report ?config load_provider design_ref in
      if not (Incremental.reports_bit_identical (Incremental.report inc) reference)
      then
        Alcotest.failf "edit %d (%s): incremental diverged from scratch" i
          (Edit.describe design_inc.Design.netlist e);
      Alcotest.(check bool) "some gate re-evaluated" true (stats.Incremental.st_dirty > 0))
    edits

let test_incremental_chain () =
  check_sequence
    ~make_netlist:(fun () -> chain 12)
    [
      Edit.Swap_cell { gate = 5; cell = Cell.make Cell.Inv ~strength:4 };
      Edit.Scale_wire { net = 3; r_scale = 1.5; c_scale = 1.2 };
      Edit.Bump_sink_load { net = 7; sink = 0; delta_cap = 2e-15 };
      Edit.Swap_cell { gate = 5; cell = Cell.make Cell.Inv ~strength:1 };
      Edit.Bump_sink_load { net = 7; sink = 0; delta_cap = -2e-15 };
    ]

let test_incremental_random () =
  let make_netlist () =
    G.random_logic ~name:"r" ~n_inputs:6 ~n_gates:60 ~depth:6 ~seed:11
  in
  let nl = make_netlist () in
  let pick_gate i = (7 * i) mod Array.length nl.N.gates in
  let edits =
    List.concat_map
      (fun i ->
        let gi = pick_gate i in
        let g = nl.N.gates.(gi) in
        [
          Edit.Swap_cell
            {
              gate = gi;
              cell = Cell.make g.N.cell.Cell.kind ~strength:(if i mod 2 = 0 then 4 else 2);
            };
          Edit.Scale_wire
            { net = g.N.output; r_scale = 1.0 +. (0.1 *. float_of_int (i + 1)); c_scale = 0.9 };
          Edit.Bump_sink_load { net = g.N.inputs.(0); sink = 0; delta_cap = 1e-15 };
        ])
      [ 0; 1; 2 ]
  in
  check_sequence ~make_netlist edits;
  check_sequence
    ~config:{ Ssta.op = Nsigma_stats.Stat_max.Moment; corr = Ssta.Tracked }
    ~make_netlist edits

let test_cutoff_on_invisible_edit () =
  (* Constant provider: a load bump changes nothing the provider reads,
     so the frontier gates recompute bitwise-equal slots and propagation
     stops right there — dirty stays O(frontier) on a deep chain. *)
  let n = 40 in
  let design = Design.attach_parasitics tech (chain n) in
  let d = local_dist 10e-12 1e-12 in
  let inc =
    Incremental.init tech (Ssta.handle_of_provider (const_provider d)) design
  in
  let before = Incremental.report inc in
  let stats =
    Incremental.apply inc
      (Edit.Bump_sink_load { net = 3; sink = 0; delta_cap = 1e-15 })
  in
  Alcotest.(check bool) "dirty stays at the frontier" true
    (stats.Incremental.st_dirty <= 3);
  Alcotest.(check bool) "cutoffs recorded" true (stats.Incremental.st_cutoffs >= 1);
  Alcotest.(check bool) "report unchanged" true
    (Incremental.reports_bit_identical before (Incremental.report inc))

let test_cone_smaller_than_circuit () =
  (* Load-sensitive provider on a deep chain: an edit near the output
     re-times only the downstream cone. *)
  let n = 60 in
  let design = Design.attach_parasitics tech (chain n) in
  let inc =
    Incremental.init tech (Ssta.handle_of_provider load_provider) design
  in
  (* Gate n-5's output net sits 5 stages from the PO. *)
  let gi = n - 5 in
  let stats =
    Incremental.apply inc
      (Edit.Swap_cell { gate = gi; cell = Cell.make Cell.Inv ~strength:8 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "dirty %d < half the chain" stats.Incremental.st_dirty)
    true
    (stats.Incremental.st_dirty < n / 2)

let test_edit_error_leaves_state () =
  let design = Design.attach_parasitics tech (chain 6) in
  let inc =
    Incremental.init tech (Ssta.handle_of_provider load_provider) design
  in
  let before = Incremental.report inc in
  expect_edit_error "bad sink" (fun () ->
      Incremental.apply inc
        (Edit.Bump_sink_load { net = 2; sink = 99; delta_cap = 1e-15 }));
  Alcotest.(check bool) "state unchanged after failed edit" true
    (Incremental.reports_bit_identical before (Incremental.report inc))

(* ---- real provider + on-disk store ---- *)

let library =
  lazy
    (let cells =
       List.concat_map
         (fun k ->
           [ Cell.make k ~strength:1; Cell.make k ~strength:2;
             Cell.make k ~strength:4; Cell.make k ~strength:8 ])
         Cell.all_kinds
     in
     Library.load_or_characterize ~n_mc:250
       ~slews:[| 10e-12; 50e-12; 150e-12; 300e-12 |]
       ~path:(Filename.concat (Filename.get_temp_dir_name ()) "nsigma_test_ssta.lvf")
       tech cells)

let fresh_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nsigma_test_%s" name)
  in
  (* best-effort clean slate *)
  if Sys.file_exists dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  dir

let test_incremental_real_provider () =
  let lib = Lazy.force library in
  let make_netlist () =
    G.random_logic ~name:"real" ~n_inputs:5 ~n_gates:40 ~depth:5 ~seed:3
  in
  let design_inc = Design.attach_parasitics tech (make_netlist ()) in
  let design_ref = Design.attach_parasitics tech (make_netlist ()) in
  (* Small sample counts keep the mini-MCs cheap; both sides share the
     knobs so determinism, not accuracy, is under test. *)
  let handle =
    Ssta.lvf_handle ~wire_samples:16 ~frac_samples:32 ~store_dir:None tech lib
      design_inc
  in
  let inc = Incremental.init tech handle design_inc in
  let nl = design_inc.Design.netlist in
  let g7 = nl.N.gates.(7) in
  let edits =
    [
      Edit.Swap_cell
        { gate = 7; cell = Cell.make g7.N.cell.Cell.kind ~strength:4 };
      Edit.Scale_wire { net = g7.N.output; r_scale = 1.4; c_scale = 1.1 };
      Edit.Bump_sink_load { net = g7.N.inputs.(0); sink = 0; delta_cap = 2e-15 };
    ]
  in
  List.iteri
    (fun i e ->
      ignore (Incremental.apply inc e);
      ignore (Design.apply_edit design_ref e);
      let provider_ref =
        Ssta.lvf_provider ~wire_samples:16 ~frac_samples:32 ~store_dir:None
          tech lib design_ref
      in
      let reference = Ssta.analyze tech provider_ref design_ref in
      if not (Incremental.reports_bit_identical (Incremental.report inc) reference)
      then Alcotest.failf "edit %d: real-provider incremental diverged" i)
    edits

let test_store_roundtrip () =
  let lib = Lazy.force library in
  let design =
    Design.attach_parasitics tech
      (G.random_logic ~name:"st" ~n_inputs:4 ~n_gates:25 ~depth:4 ~seed:5)
  in
  let dir = fresh_dir "store_test" in
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  let hits0 = Metrics.find_counter "provider.store.hit" in
  let misses0 = Metrics.find_counter "provider.store.miss" in
  (* Cold: every regression misses the store, computes and saves. *)
  let h_cold =
    Ssta.lvf_handle ~wire_samples:8 ~frac_samples:16 ~store_dir:(Some dir)
      tech lib design
  in
  h_cold.Ssta.h_prewarm ();
  let misses = Metrics.find_counter "provider.store.miss" - misses0 in
  Alcotest.(check bool) "cold pass misses" true (misses > 0);
  Alcotest.(check bool) "store populated" true
    (Array.length (Sys.readdir dir) > 0);
  (* Warm: a fresh provider loads every regression from disk. *)
  let h_warm =
    Ssta.lvf_handle ~wire_samples:8 ~frac_samples:16 ~store_dir:(Some dir)
      tech lib design
  in
  h_warm.Ssta.h_prewarm ();
  let hits = Metrics.find_counter "provider.store.hit" - hits0 in
  Alcotest.(check int) "warm pass hits everything the cold pass missed"
    misses hits;
  (* And the store round-trip is bitwise: warm analysis = cold analysis. *)
  let r_cold = Ssta.analyze tech h_cold.Ssta.h_provider design in
  let r_warm = Ssta.analyze tech h_warm.Ssta.h_provider design in
  Metrics.set_enabled was;
  Alcotest.(check bool) "warm bitwise equal to cold" true
    (Incremental.reports_bit_identical r_cold r_warm)

let test_store_stale_heals () =
  let dir = fresh_dir "store_stale" in
  let key = "unit-test|k1" in
  Store.save ~dir ~key "payload-v1";
  (* Corrupt the artifact body so decode fails -> stale, then recompute
     path heals it with a fresh save. *)
  let path = Store.path_of ~dir ~key in
  let oc = open_out path in
  output_string oc "garbage";
  close_out oc;
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  let stale0 = Metrics.find_counter "provider.store.stale" in
  let got = Store.find ~dir ~key ~decode:(fun s -> Some s) in
  Alcotest.(check bool) "stale artifact rejected" true (got = None);
  Alcotest.(check int) "stale counted" (stale0 + 1)
    (Metrics.find_counter "provider.store.stale");
  Store.save ~dir ~key "payload-v2";
  Alcotest.(check (option string)) "healed" (Some "payload-v2")
    (Store.find ~dir ~key ~decode:(fun s -> Some s));
  Metrics.set_enabled was

let () =
  Alcotest.run "nsigma_incremental"
    [
      ( "edits",
        [
          Alcotest.test_case "json roundtrip" `Quick test_edit_json_roundtrip;
          Alcotest.test_case "edit errors" `Quick test_edit_errors;
          Alcotest.test_case "invalidated nets" `Quick test_edit_invalidated;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "chain sequence = scratch" `Quick
            test_incremental_chain;
          Alcotest.test_case "random sequence = scratch (both ops)" `Quick
            test_incremental_random;
          Alcotest.test_case "cutoff on invisible edit" `Quick
            test_cutoff_on_invisible_edit;
          Alcotest.test_case "cone < circuit" `Quick
            test_cone_smaller_than_circuit;
          Alcotest.test_case "failed edit leaves state" `Quick
            test_edit_error_leaves_state;
        ] );
      ( "store",
        [
          Alcotest.test_case "stale artifact heals" `Quick
            test_store_stale_heals;
          Alcotest.test_case "cold/warm roundtrip" `Slow test_store_roundtrip;
          Alcotest.test_case "real provider incremental" `Slow
            test_incremental_real_provider;
        ] );
    ]
