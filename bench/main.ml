(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (DATE 2023, "A Novel Delay Calibration Method
   Considering Interaction between Cells and Wires").

   Usage:
     dune exec bench/main.exe                 # everything except micro
     dune exec bench/main.exe -- table2       # one experiment
     dune exec bench/main.exe -- table3 c432 c1355
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks

   Environment knobs:
     NSIGMA_BENCH_MC       library characterisation samples/point (default 3000)
     NSIGMA_BENCH_PATH_MC  path Monte-Carlo samples (default 500)
     NSIGMA_BENCH_CELL_MC  per-cell verification samples (default 8000)
     NSIGMA_BENCH_KERNEL_MC  kernel-bench samples/point (default 500)

   The library characterisation is cached in ./bench_cache_*.lvf; delete
   it to re-characterise.  Absolute numbers depend on the synthetic
   open28 technology; the comparisons against the paper check *shape*:
   who wins, by what rough factor, and where the errors sit. *)

module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Rng = Nsigma_stats.Rng
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Histogram = Nsigma_stats.Histogram
module Sampler = Nsigma_stats.Sampler
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Ch = Nsigma_liberty.Characterize
module Cell_sim = Nsigma_spice.Cell_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore
module Wire_gen = Nsigma_rcnet.Wire_gen
module N = Nsigma_netlist.Netlist
module Bm = Nsigma_netlist.Benchmarks
module Design = Nsigma_sta.Design
module Engine = Nsigma_sta.Engine
module Provider = Nsigma_sta.Provider
module Path = Nsigma_sta.Path
module Path_mc = Nsigma_sta.Path_mc
module Ssta = Nsigma_sta.Ssta
module Incremental = Nsigma_sta.Incremental
module Edit = Nsigma_netlist.Edit
module Stat_max = Nsigma_stats.Stat_max
module Model = Nsigma.Model
module Cell_model = Nsigma.Cell_model
module Wire_model = Nsigma.Wire_model
module Wire_lab = Nsigma.Wire_lab
module Calibration = Nsigma.Calibration
module Executor = Nsigma_exec.Executor
module Metrics = Nsigma_obs.Metrics
module Trace = Nsigma_obs.Trace
module Obs_report = Nsigma_obs.Report
module Server = Nsigma_server.Server
module Sclient = Nsigma_server.Client
module Sproto = Nsigma_server.Protocol
module Lsn = Nsigma_baselines.Lsn_model
module Burr = Nsigma_baselines.Burr_model
module Pt = Nsigma_baselines.Primetime_like
module Correction = Nsigma_baselines.Correction_model
module Ml = Nsigma_baselines.Ml_model

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string v with _ -> default)
  | None -> default

let lib_mc = env_int "NSIGMA_BENCH_MC" 3000
let path_mc_n = env_int "NSIGMA_BENCH_PATH_MC" 500
let cell_mc_n = env_int "NSIGMA_BENCH_CELL_MC" 8000

let tech = T.with_vdd T.default_28nm 0.6

let ps x = x *. 1e12
let pct x = 100.0 *. x
let err est ref_v = pct ((est -. ref_v) /. ref_v)

let header title =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==========================================================\n%!"

let all_cells =
  List.concat_map
    (fun k -> List.map (fun s -> Cell.make k ~strength:s) Cell.standard_strengths)
    Cell.all_kinds

let the_library = ref None

let library () =
  match !the_library with
  | Some lib -> lib
  | None ->
    let path =
      Printf.sprintf "bench_cache_%.2fV_mc%d.lvf" tech.T.vdd_nominal lib_mc
    in
    Printf.printf "[library] loading or characterising %d cells x 2 edges (mc=%d)\n"
      (List.length all_cells) lib_mc;
    Printf.printf "[library] cache: %s (delete to re-characterise)\n%!" path;
    let t0 = Unix.gettimeofday () in
    let lib = Library.load_or_characterize ~n_mc:lib_mc ~path tech all_cells in
    Printf.printf "[library] ready in %.1fs\n%!" (Unix.gettimeofday () -. t0);
    the_library := Some lib;
    lib

let the_model = ref None

let model () =
  match !the_model with
  | Some m -> m
  | None ->
    let t0 = Unix.gettimeofday () in
    let m = Model.build (library ()) in
    Printf.printf
      "[model] N-sigma model fitted in %.1fs (wire scales a=%.3f b=%.3f)\n%!"
      (Unix.gettimeofday () -. t0)
      m.Model.wire.Wire_model.scale_fi m.Model.wire.Wire_model.scale_fo;
    the_model := Some m;
    m

(* MC population of one cell's worst falling arc at a given condition. *)
let cell_mc ?(n = cell_mc_n) ~seed cell ~slew ~load =
  let g = Rng.create ~seed in
  let delays =
    Monte_carlo.delays tech g ~n (fun sample ->
        let arc = Cell.arc tech sample cell ~output_edge:`Fall in
        (Cell_sim.simulate tech arc ~input_slew:slew ~load_cap:load).Cell_sim.delay)
  in
  Array.sort Float.compare delays;
  delays

let empirical delays sigma =
  Quantile.of_sorted delays (Quantile.probability_of_sigma (float_of_int sigma))

let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l))

(* ------------------------------------------------------------------ *)
(* Fig. 2: inverter delay distribution vs supply voltage.              *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header "Fig. 2 — INVX1 delay distribution vs VDD (paper: 0.5-0.8 V, 25 C)";
  let inv = Cell.make Cell.Inv ~strength:1 in
  Printf.printf "%6s %9s %9s %7s %7s %9s %9s\n" "VDD" "mu(ps)" "sig(ps)" "skew"
    "kurt" "-3s(ps)" "+3s(ps)";
  let results =
    List.map
      (fun vdd ->
        let t = T.with_vdd T.default_28nm vdd in
        let load = Cell.fo4_load t inv in
        let g = Rng.create ~seed:2 in
        let delays =
          Monte_carlo.delays t g ~n:4000 (fun sample ->
              let arc = Cell.arc t sample inv ~output_edge:`Fall in
              (Cell_sim.simulate t arc ~input_slew:10e-12 ~load_cap:load)
                .Cell_sim.delay)
        in
        Array.sort Float.compare delays;
        let s = Moments.summary_of_array delays in
        Printf.printf "%5.2fV %9.2f %9.2f %7.3f %7.3f %9.2f %9.2f\n%!" vdd
          (ps s.Moments.mean) (ps s.Moments.std) s.Moments.skewness
          s.Moments.kurtosis
          (ps (empirical delays (-3)))
          (ps (empirical delays 3));
        (vdd, s, delays))
      [ 0.8; 0.7; 0.6; 0.5 ]
  in
  List.iter
    (fun (vdd, _, delays) ->
      let h = Histogram.create ~bins:60 delays in
      Printf.printf "%.2fV |%s|\n" vdd (Histogram.sparkline ~width:60 h))
    results;
  let cvs =
    List.map (fun (_, s, _) -> s.Moments.std /. s.Moments.mean) results
  in
  let monotone =
    let rec go = function a :: (b :: _ as r) -> a <= b && go r | _ -> true in
    go cvs
  in
  let skew_at i = (fun (_, s, _) -> s.Moments.skewness) (List.nth results i) in
  Printf.printf
    "shape checks vs paper: sigma/mu grows monotonically as VDD drops: %b;\n\
     near-threshold (0.5 V) more skewed than nominal-ish (0.8 V): %b\n"
    monotone
    (skew_at 3 > skew_at 0)

(* ------------------------------------------------------------------ *)
(* Fig. 3: effect of skewness and kurtosis on the sigma levels.        *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "Fig. 3 — effect of gamma and kappa on the n-sigma quantiles";
  let m = model () in
  let base ~gamma ~kappa =
    {
      Moments.n = 10000;
      mean = 50e-12;
      std = 10e-12;
      skewness = gamma;
      kurtosis = kappa;
    }
  in
  let print_sweep label values make_moments =
    Printf.printf "%s\n%7s |" label "param";
    List.iter
      (fun n -> Printf.printf " %8s" (Printf.sprintf "T(%+ds)" n))
      Quantile.sigma_levels;
    Printf.printf "\n";
    List.iter
      (fun v ->
        Printf.printf "%7.2f |" v;
        List.iter
          (fun n ->
            Printf.printf " %8.2f"
              (ps (Cell_model.predict m.Model.cell_model (make_moments v) ~sigma:n)))
          Quantile.sigma_levels;
        Printf.printf "\n")
      values
  in
  print_sweep "(a) sweep skewness at kappa=4 (mu=50ps sigma=10ps)"
    [ 0.0; 0.5; 1.0; 1.5; 2.0 ]
    (fun gamma -> base ~gamma ~kappa:4.0);
  Printf.printf "\n";
  print_sweep "(b) sweep kurtosis at gamma=0.8" [ 3.0; 4.0; 6.0; 8.0 ]
    (fun kappa -> base ~gamma:0.8 ~kappa);
  Printf.printf
    "\nshape check vs paper: gamma moves the inner levels, kappa spreads +/-3s.\n"

(* ------------------------------------------------------------------ *)
(* Fig. 4: moments of INVX1 vs input slew and output load.             *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header "Fig. 4 — INVX1 delay moments vs operating condition";
  let table =
    Library.find (library ()) (Cell.make Cell.Inv ~strength:1) ~edge:`Fall
  in
  Printf.printf "load fixed at C_ref=0.4fF, slew sweep (paper: purple curves):\n";
  Printf.printf "%9s %9s %9s %8s %8s\n" "slew(ps)" "mu(ps)" "sig(ps)" "gamma" "kappa";
  Array.iter
    (fun slew ->
      let m = Ch.moments_at table ~slew ~load:Ch.reference_load in
      Printf.printf "%9.0f %9.2f %9.2f %8.3f %8.3f\n" (ps slew) (ps m.Moments.mean)
        (ps m.Moments.std) m.Moments.skewness m.Moments.kurtosis)
    table.Ch.slews;
  Printf.printf "\nslew fixed at S_ref=10ps, load sweep (paper: blue curves):\n";
  Printf.printf "%9s %9s %9s %8s %8s\n" "load(fF)" "mu(ps)" "sig(ps)" "gamma" "kappa";
  Array.iter
    (fun load ->
      let m = Ch.moments_at table ~slew:Ch.reference_slew ~load in
      Printf.printf "%9.2f %9.2f %9.2f %8.3f %8.3f\n" (load *. 1e15)
        (ps m.Moments.mean) (ps m.Moments.std) m.Moments.skewness
        m.Moments.kurtosis)
    table.Ch.loads;
  Printf.printf
    "\nshape check vs paper: mu,sigma rise ~linearly; gamma,kappa vary non-monotonically.\n"

(* ------------------------------------------------------------------ *)
(* Table I: the fitted quantile-model coefficients.                    *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table I — fitted N-sigma quantile model";
  Format.printf "%a@." Cell_model.pp (model ()).Model.cell_model

(* ------------------------------------------------------------------ *)
(* Table II: +/-3 sigma cell delay accuracy, ours vs LSN vs Burr.      *)
(* ------------------------------------------------------------------ *)

let table2_cells =
  List.concat_map
    (fun kind -> List.map (fun s -> Cell.make kind ~strength:s) [ 1; 2; 4; 8 ])
    [ Cell.Nor2; Cell.Nand2; Cell.Aoi21 ]

let table2 () =
  header "Table II — accuracy of estimating the +/-3s cell delay (FO4, 0.6 V)";
  let lib = library () in
  let m = model () in
  Printf.printf
    "every model is deployed from the characterised library (as in a real\n\
     flow) and verified against fresh %d-sample SPICE MC per cell.\n" cell_mc_n;
  Printf.printf "%-9s | %6s %6s | %6s %6s | %6s %6s   (all errors %%)\n" "cell"
    "LSN-3" "LSN+3" "Burr-3" "Burr+3" "ours-3" "ours+3";
  let sums = Array.make 6 0.0 in
  let count = ref 0 in
  List.iter
    (fun cell ->
      let load = Cell.fo4_load tech cell in
      let delays =
        cell_mc ~seed:(Hashtbl.hash (Cell.name cell)) cell ~slew:Ch.reference_slew
          ~load
      in
      let mc_m3 = empirical delays (-3) and mc_p3 = empirical delays 3 in
      (* Deployment forms: LSN from the characterised linear moments,
         Burr from the characterised quantiles, ours from moments + the
         fitted Table-I coefficients. *)
      let table = Library.find lib cell ~edge:`Fall in
      let point = Ch.point_at table ~slew:Ch.reference_slew ~load in
      let lsn = Lsn.fit_moments point.Ch.moments in
      let probs =
        List.map
          (fun n -> Quantile.probability_of_sigma (float_of_int n))
          Quantile.sigma_levels
      in
      let burr =
        Burr.fit_quantiles
          (List.mapi (fun i p -> (p, point.Ch.quantiles.(i))) probs)
      in
      let ours sigma =
        Model.cell_quantile m cell ~edge:`Fall ~input_slew:Ch.reference_slew
          ~load_cap:load ~sigma
      in
      let e =
        [|
          Float.abs (err (Lsn.quantile lsn ~sigma:(-3)) mc_m3);
          Float.abs (err (Lsn.quantile lsn ~sigma:3) mc_p3);
          Float.abs (err (Burr.quantile burr ~sigma:(-3)) mc_m3);
          Float.abs (err (Burr.quantile burr ~sigma:3) mc_p3);
          Float.abs (err (ours (-3)) mc_m3);
          Float.abs (err (ours 3) mc_p3);
        |]
      in
      Array.iteri (fun i v -> sums.(i) <- sums.(i) +. v) e;
      incr count;
      Printf.printf "%-9s | %6.2f %6.2f | %6.2f %6.2f | %6.2f %6.2f\n%!"
        (Cell.name cell) e.(0) e.(1) e.(2) e.(3) e.(4) e.(5))
    table2_cells;
  let n = float_of_int !count in
  Printf.printf "%-9s | %6.2f %6.2f | %6.2f %6.2f | %6.2f %6.2f\n" "Avg."
    (sums.(0) /. n) (sums.(1) /. n)
    (sums.(2) /. n)
    (sums.(3) /. n)
    (sums.(4) /. n)
    (sums.(5) /. n);
  Printf.printf "paper Avg. |   5.50   7.67 |  12.42  10.55 |   2.03   2.73\n";
  Printf.printf "shape checks: ours beats Burr on both tails: %b; ours +3s under 3%%: %b\n"
    (sums.(4) < sums.(2) && sums.(5) < sums.(3))
    (sums.(5) /. n < 3.0);
  Printf.printf
    "note: LSN outperforms its paper numbers here because the open28 delay\n\
     population is close to exactly log-skew-normal (see EXPERIMENTS.md).\n"

(* ------------------------------------------------------------------ *)
(* Fig. 7: Elmore vs transient MC wire delay distribution.             *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "Fig. 7 — Elmore delay vs the wire delay distribution";
  let tree = Wire_gen.point_to_point tech ~length_um:150.0 ~segments:10 in
  let driver = Cell.make Cell.Inv ~strength:4 in
  let load = Cell.make Cell.Inv ~strength:4 in
  let meas = Wire_lab.measure ~n:3000 ~seed:7 tech ~tree ~driver ~load () in
  let s = meas.Wire_lab.moments in
  Printf.printf "150um route, INVX4 driver and load:\n";
  Printf.printf "  Elmore          : %7.2f ps\n" (ps meas.Wire_lab.elmore);
  Printf.printf "  MC mean         : %7.2f ps\n" (ps s.Moments.mean);
  Printf.printf "  MC sigma        : %7.2f ps  (sig/mu = %.1f%%)\n"
    (ps s.Moments.std)
    (pct (Wire_lab.variability meas));
  Printf.printf "  MC +3s quantile : %7.2f ps\n"
    (ps (Wire_lab.quantile meas ~sigma:3));
  Printf.printf "  Elmore error vs +3s: %.1f%%\n"
    (err meas.Wire_lab.elmore (Wire_lab.quantile meas ~sigma:3));
  let h = Histogram.create ~bins:60 meas.Wire_lab.samples in
  Printf.printf "  PDF |%s|\n" (Histogram.sparkline ~width:60 h);
  Printf.printf
    "shape check vs paper: Elmore sits well below +3s (paper: 22.19 vs 31.65 ps).\n"

(* ------------------------------------------------------------------ *)
(* Fig. 8: wire delay distribution vs driver/load strengths.           *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  header "Fig. 8 — wire delay distribution vs driver/load strength (1, 2, 4)";
  let tree = Wire_gen.point_to_point tech ~length_um:120.0 ~segments:8 in
  Printf.printf "%8s %8s | %9s %9s %10s\n" "driver" "load" "mu(ps)" "sig(ps)"
    "sig/mu(%)";
  let rows =
    List.map
      (fun (ds, ls) ->
        let driver = Cell.make Cell.Inv ~strength:ds in
        let load = Cell.make Cell.Inv ~strength:ls in
        let meas =
          Wire_lab.measure ~n:1200 ~seed:(8 + ds + (10 * ls)) tech ~tree ~driver
            ~load ()
        in
        let s = meas.Wire_lab.moments in
        Printf.printf "%8s %8s | %9.2f %9.2f %10.2f\n%!"
          (Printf.sprintf "INVX%d" ds)
          (Printf.sprintf "INVX%d" ls)
          (ps s.Moments.mean) (ps s.Moments.std)
          (pct (Wire_lab.variability meas));
        ((ds, ls), Wire_lab.variability meas))
      [ (1, 1); (2, 1); (4, 1); (1, 2); (1, 4); (2, 2); (4, 4) ]
  in
  let v d l = List.assoc (d, l) rows in
  Printf.printf
    "shape check vs paper: variability falls with driver strength (%b) and\n"
    (v 4 1 < v 1 1);
  Printf.printf "rises with load strength (%b).\n" (v 1 4 > v 1 1)

(* ------------------------------------------------------------------ *)
(* Fig. 9: errors in estimating X_FI and X_FO.                         *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  header "Fig. 9 — X_FI / X_FO estimation errors (FO1/FO2/FO4/FO8)";
  let m = model () in
  let wm = m.Model.wire in
  let g = Rng.create ~seed:9 in
  let trees =
    List.init 5 (fun _ -> Wire_gen.random_tree tech Wire_gen.default_spec (Rng.split g))
  in
  let fo4 = Cell.make Cell.Inv ~strength:4 in
  let r4 = wm.Wire_model.ratio_fo4 in
  (* Measure the mean wire variability with the cell under test as driver
     (load fixed FO4) or as load (driver fixed FO4), then invert eq. (7)
     to recover the implied X; compare with the library-calibrated X. *)
  let recover_x ~as_driver strength =
    let cell = Cell.make Cell.Inv ~strength in
    let vs =
      List.mapi
        (fun k tree ->
          let driver = if as_driver then cell else fo4 in
          let load = if as_driver then fo4 else cell in
          let meas =
            Wire_lab.measure ~n:800 ~seed:(90 + k + strength) tech ~tree ~driver
              ~load ()
          in
          Wire_lab.variability meas)
        trees
    in
    let mean_v = avg vs in
    let x4 = Wire_model.x_of wm fo4 in
    let fixed_term =
      if as_driver then wm.Wire_model.scale_fo *. x4 *. x4 *. r4
      else wm.Wire_model.scale_fi *. x4 *. x4 *. r4
    in
    let scale =
      if as_driver then wm.Wire_model.scale_fi else wm.Wire_model.scale_fo
    in
    let x2 = Float.max 0.0 ((mean_v -. fixed_term) /. (scale *. r4)) in
    sqrt x2
  in
  Printf.printf "%9s | %8s %8s %7s | %8s %8s %7s\n" "strength" "X_FI.lib"
    "X_FI.mc" "err%" "X_FO.lib" "X_FO.mc" "err%";
  let e_fi = ref [] and e_fo = ref [] in
  List.iter
    (fun s ->
      let cell = Cell.make Cell.Inv ~strength:s in
      let x_lib = Wire_model.x_of wm cell in
      let x_fi_mc = recover_x ~as_driver:true s in
      let x_fo_mc = recover_x ~as_driver:false s in
      let efi = Float.abs (err x_lib x_fi_mc) in
      let efo = Float.abs (err x_lib x_fo_mc) in
      e_fi := efi :: !e_fi;
      e_fo := efo :: !e_fo;
      Printf.printf "%9s | %8.3f %8.3f %7.2f | %8.3f %8.3f %7.2f\n%!"
        (Printf.sprintf "INVX%d" s)
        x_lib x_fi_mc efi x_lib x_fo_mc efo)
    [ 1; 2; 4; 8 ];
  Printf.printf "avg X_FI err %.2f%%  X_FO err %.2f%%  (paper: 1.92%% / 3.31%%)\n"
    (avg !e_fi) (avg !e_fo)

(* ------------------------------------------------------------------ *)
(* Fig. 10: accuracy of the +/-3s wire delay model on random nets.     *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "Fig. 10 — +/-3s wire delay accuracy of the N-sigma wire model";
  let m = model () in
  let g = Rng.create ~seed:10 in
  let strengths = [ 1; 2; 4; 8 ] in
  let trees =
    List.init 5 (fun _ -> Wire_gen.random_tree tech Wire_gen.default_spec (Rng.split g))
  in
  let errors_m3 = ref [] and errors_p3 = ref [] and errors_elmore = ref [] in
  Printf.printf "%5s %6s %6s | %8s %8s %8s | %7s %7s\n" "net" "drv" "load"
    "MC+3s" "ours+3s" "elmore" "e+3s%" "e-3s%";
  List.iteri
    (fun ti tree ->
      List.iter
        (fun (ds, ls) ->
          let driver = Cell.make Cell.Inv ~strength:ds in
          let load = Cell.make Cell.Inv ~strength:ls in
          let meas =
            Wire_lab.measure ~n:800 ~seed:(100 + ti + ds + (3 * ls)) tech ~tree
              ~driver ~load ()
          in
          let tap = tree.Rctree.taps.(0) in
          let loaded = Rctree.add_cap tree tap (Cell.input_cap tech load) in
          let elmore = Elmore.delay_at loaded tap in
          let ours sigma =
            Wire_model.quantile m.Model.wire ~elmore ~driver ~load:(Some load)
              ~sigma
          in
          let mc_p3 = Wire_lab.quantile meas ~sigma:3 in
          let mc_m3 = Wire_lab.quantile meas ~sigma:(-3) in
          let ep3 = Float.abs (err (ours 3) mc_p3) in
          let em3 = Float.abs (err (ours (-3)) mc_m3) in
          errors_p3 := ep3 :: !errors_p3;
          errors_m3 := em3 :: !errors_m3;
          errors_elmore := Float.abs (err elmore mc_p3) :: !errors_elmore;
          if ds = ls then
            Printf.printf "%5d %6d %6d | %8.2f %8.2f %8.2f | %7.2f %7.2f\n%!" ti
              ds ls (ps mc_p3)
              (ps (ours 3))
              (ps elmore) ep3 em3)
        (List.concat_map (fun a -> List.map (fun b -> (a, b)) strengths) strengths))
    trees;
  Printf.printf
    "\navg |err|: ours -3s %.2f%%  ours +3s %.2f%%  (paper: 1.61%% / 2.39%%)\n"
    (avg !errors_m3) (avg !errors_p3);
  Printf.printf
    "avg |err| of raw Elmore vs MC +3s: %.2f%% (ours should be far lower)\n"
    (avg !errors_elmore)

(* ------------------------------------------------------------------ *)
(* Fig. 11: per-wire +3s delay along the c432 critical path.           *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  header "Fig. 11 — +3s delay of each wire on the c432 critical path";
  let lib = library () in
  let m = model () in
  let nl = (Bm.find "c432").Bm.generate () in
  (* The paper's Fig. 11 wires carry 5-30 ps (post-layout routes); use a
     sparser floorplan than the default local-net lengths so per-wire
     relative errors are about measurable delays, not sub-ps noise. *)
  let design =
    Design.attach_parasitics ~backbone_um:(40.0, 160.0) ~stub_um:(5.0, 15.0)
      tech nl
  in
  let report = Engine.analyze tech (Provider.nominal lib) design in
  let path = Engine.critical_path report in
  Printf.printf "critical path: %d stages\n" (Path.n_stages path);
  let n_mc = min 400 path_mc_n in
  Printf.printf "MC per-wire quantiles (%d samples)...\n%!" n_mc;
  let mc_wires =
    Path_mc.per_wire_quantiles ~n:n_mc ~steps:160 tech design path ~sigma:3
  in
  let nlg = design.Design.netlist in
  let hops = Array.of_list path.Path.hops in
  let model_wire i =
    let hop = hops.(i) in
    let driver = nlg.N.gates.(hop.Path.gate).N.cell in
    let tap, load =
      if i + 1 < Array.length hops then
        (hops.(i + 1).Path.tap, Some nlg.N.gates.(hops.(i + 1).Path.gate).N.cell)
      else (path.Path.end_tap, None)
    in
    let tree = Design.loaded_parasitic tech design ~net:hop.Path.out_net in
    let elmore = Elmore.delay_at tree tap in
    (Wire_model.quantile m.Model.wire ~elmore ~driver ~load ~sigma:3, elmore)
  in
  Printf.printf "%6s | %9s %9s %9s | %7s %7s\n" "wire" "MC+3s" "ours" "elmore"
    "ours%" "elm%";
  let e_ours = ref [] and e_elm = ref [] in
  List.iteri
    (fun i mc ->
      let ours, elmore = model_wire i in
      let eo = err ours mc and ee = err elmore mc in
      e_ours := Float.abs eo :: !e_ours;
      e_elm := Float.abs ee :: !e_elm;
      if i < 12 then
        Printf.printf "%6d | %9.3f %9.3f %9.3f | %7.1f %7.1f\n" i (ps mc) (ps ours)
          (ps elmore) eo ee)
    mc_wires;
  Printf.printf "avg |err| over %d wires: ours %.1f%%, Elmore %.1f%%\n"
    (List.length mc_wires) (avg !e_ours) (avg !e_elm);
  Printf.printf "shape check vs paper: ours tracks MC far closer than Elmore: %b\n"
    (avg !e_ours < avg !e_elm)

(* ------------------------------------------------------------------ *)
(* Table III: path delay analysis across the benchmark suite.          *)
(* ------------------------------------------------------------------ *)

let table3 ?(circuits = List.map (fun b -> b.Bm.name) Bm.all) () =
  header "Table III — path delay analysis (ISCAS85 + PULPino units)";
  let lib = library () in
  let m = model () in
  Printf.printf "[ml] training the ML wire baseline...\n%!";
  let ml3, ml_stats = Ml.train ~n_configs:80 ~mc_per_config:120 tech ~sigma:3 in
  Printf.printf "[ml] %d configs, %.1fs training, final loss %.4f\n%!"
    ml_stats.Ml.n_configs ml_stats.Ml.train_seconds ml_stats.Ml.final_loss;
  let corr = Correction.calibrate ~n_reference:20 tech lib in
  Printf.printf
    "\n%-6s %6s %6s | %8s %8s | %7s %7s %7s %7s %7s | %8s %8s | %6s\n" "path"
    "#nets" "#cells" "MC-3s" "MC+3s" "PT%" "ML%" "Corr%" "our-3%" "our+3%"
    "MCtime" "ourtime" "spdup";
  let agg = Array.make 5 0.0 in
  let agg_n = ref 0 in
  let total_mc_time = ref 0.0 and total_our_time = ref 0.0 in
  List.iter
    (fun name ->
      match Bm.find name with
      | exception Not_found ->
        Printf.printf "%-6s unknown circuit, skipped\n" name
      | bm ->
        let nl = bm.Bm.generate () in
        let design = Design.attach_parasitics tech nl in
        let report = Engine.analyze tech (Provider.nominal lib) design in
        let path = Engine.critical_path report in
        let t0 = Unix.gettimeofday () in
        let mc = Path_mc.run ~n:path_mc_n ~steps:160 tech design path in
        let mc_time = Unix.gettimeofday () -. t0 in
        let mc_m3 = mc.Path_mc.quantile (-3) and mc_p3 = mc.Path_mc.quantile 3 in
        let t1 = Unix.gettimeofday () in
        let our_m3 = Model.path_quantile_of_path m design path ~sigma:(-3) in
        let our_p3 = Model.path_quantile_of_path m design path ~sigma:3 in
        let our_time = Unix.gettimeofday () -. t1 in
        let pt3 =
          Engine.circuit_delay
            (Engine.analyze tech (Pt.provider lib ~sigma:3 ()) design)
        in
        let mlq =
          Engine.circuit_delay
            (Engine.analyze tech (Ml.provider ml3 lib ~sigma:3) design)
        in
        let corr3 =
          Engine.circuit_delay
            (Engine.analyze tech (Correction.provider corr lib ~sigma:3) design)
        in
        let e =
          [|
            err pt3 mc_p3; err mlq mc_p3; err corr3 mc_p3; err our_m3 mc_m3;
            err our_p3 mc_p3;
          |]
        in
        Array.iteri (fun i v -> agg.(i) <- agg.(i) +. Float.abs v) e;
        incr agg_n;
        total_mc_time := !total_mc_time +. mc_time;
        total_our_time := !total_our_time +. our_time;
        Printf.printf
          "%-6s %6d %6d | %8.0f %8.0f | %7.1f %7.1f %7.1f %7.1f %7.1f | %7.1fs %7.3fs | %5.0fx\n"
          bm.Bm.name nl.N.n_nets (N.n_cells nl) (ps mc_m3) (ps mc_p3) e.(0) e.(1)
          e.(2) e.(3) e.(4) mc_time our_time
          (mc_time /. Float.max 1e-6 our_time);
        Printf.printf
          "        paper: MC %.0f/%.0f ps, our errors %.1f%%/%.1f%%\n%!"
          bm.Bm.paper.Bm.p_mc_m3 bm.Bm.paper.Bm.p_mc_p3
          bm.Bm.paper.Bm.p_err_ours_m3 bm.Bm.paper.Bm.p_err_ours_p3)
    circuits;
  if !agg_n > 0 then begin
    let n = float_of_int !agg_n in
    Printf.printf
      "\nAvg |err|: PT %.1f%%  ML %.1f%%  Corr %.1f%%  ours -3s %.1f%% +3s %.1f%%\n"
      (agg.(0) /. n) (agg.(1) /. n) (agg.(2) /. n) (agg.(3) /. n) (agg.(4) /. n);
    Printf.printf "paper Avg: PT 31.4%%  ML 18.3%%  Corr 11.7%%  ours 5.6%% / 3.6%%\n";
    Printf.printf
      "ordering check (ours best, flat-derate corner worst): %b\n"
      (agg.(4) < Float.min agg.(1) agg.(2)
      && Float.max agg.(1) agg.(2) < agg.(0));
    Printf.printf "aggregate speedup over path MC: %.0fx (paper: 103x)\n"
      (!total_mc_time /. Float.max 1e-6 !total_our_time)
  end

(* ------------------------------------------------------------------ *)
(* Speedup: the 103x headline on one circuit.                          *)
(* ------------------------------------------------------------------ *)

let speedup () =
  header "Speedup — N-sigma model vs path Monte-Carlo (c432)";
  let lib = library () in
  let m = model () in
  let nl = (Bm.find "c432").Bm.generate () in
  let design = Design.attach_parasitics tech nl in
  let report = Engine.analyze tech (Provider.nominal lib) design in
  let path = Engine.critical_path report in
  let t0 = Unix.gettimeofday () in
  let _ = Path_mc.run ~n:path_mc_n ~steps:160 tech design path in
  let mc_time = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let reps = 20 in
  for _ = 1 to reps do
    ignore (Model.path_quantile_of_path m design path ~sigma:3);
    ignore (Model.path_quantile_of_path m design path ~sigma:(-3))
  done;
  let our_time = (Unix.gettimeofday () -. t1) /. float_of_int reps in
  Printf.printf
    "path MC (%d samples): %.2fs;  model (+/-3s): %.4fs;  speedup %.0fx\n"
    path_mc_n mc_time our_time
    (mc_time /. Float.max 1e-9 our_time);
  Printf.printf "(paper reports 103x over its SPICE MC)\n"

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices called out in DESIGN.md.            *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "Ablations";
  let lib = library () in
  let m = model () in
  let observations =
    List.concat_map
      (fun (cell, edge) ->
        let table = Library.find lib cell ~edge in
        Array.to_list table.Ch.points
        |> List.concat_map (fun row ->
               Array.to_list row
               |> List.map (fun (p : Ch.point) ->
                      {
                        Cell_model.moments = p.Ch.moments;
                        quantiles = p.Ch.quantiles;
                      })))
      (Library.cells lib)
  in
  let eval_model name cm =
    let conditions =
      [
        (Cell.make Cell.Nand2 ~strength:1, 60e-12, 1.5e-15);
        (Cell.make Cell.Nor2 ~strength:2, 30e-12, 2.5e-15);
        (Cell.make Cell.Aoi21 ~strength:4, 120e-12, 8e-15);
      ]
    in
    let errs_m3 = ref [] and errs_p3 = ref [] in
    List.iter
      (fun (cell, slew, load) ->
        let delays =
          cell_mc ~n:5000 ~seed:(Hashtbl.hash (name, Cell.name cell)) cell ~slew
            ~load
        in
        let calib = Model.calibration m cell ~edge:`Fall in
        let moments = Calibration.moments_at calib ~slew ~load in
        let q sigma = Cell_model.predict cm moments ~sigma in
        errs_m3 := Float.abs (err (q (-3)) (empirical delays (-3))) :: !errs_m3;
        errs_p3 := Float.abs (err (q 3) (empirical delays 3)) :: !errs_p3)
      conditions;
    Printf.printf "  %-28s  -3s %.2f%%  +3s %.2f%%\n%!" name (avg !errs_m3)
      (avg !errs_p3)
  in
  Printf.printf "(a) Table-I feature sets (held-out cell quantile error):\n";
  eval_model "paper Table I" m.Model.cell_model;
  let no_cross n =
    List.filter (fun t -> t <> Cell_model.Gamma_kappa) (Cell_model.terms_for_level n)
  in
  eval_model "without gamma*kappa term"
    (Cell_model.fit ~terms_for:no_cross observations);
  let extended n =
    let base = Cell_model.terms_for_level n in
    if abs n = 3 && not (List.mem Cell_model.Sigma_gamma base) then
      Cell_model.Sigma_gamma :: base
    else base
  in
  eval_model "extended (+ sg at +/-3s)"
    (Cell_model.fit ~terms_for:extended observations);
  let gaussian_only (_ : int) = [] in
  eval_model "gaussian mu+n*sigma"
    (Cell_model.fit ~terms_for:gaussian_only observations);

  Printf.printf "\n(b) moment calibration: local LUT vs global eq.(2)/(3) surfaces:\n";
  let cell = Cell.make Cell.Nand2 ~strength:1 in
  let calib = Model.calibration m cell ~edge:`Fall in
  let delays = cell_mc ~n:5000 ~seed:77 cell ~slew:60e-12 ~load:1.5e-15 in
  let q_with moments sigma = Cell_model.predict m.Model.cell_model moments ~sigma in
  let m_grid = Calibration.moments_at calib ~slew:60e-12 ~load:1.5e-15 in
  let m_surf = Calibration.moments_at_surface calib ~slew:60e-12 ~load:1.5e-15 in
  Printf.printf "  %-28s  +3s err %.2f%%\n" "local LUT interpolation"
    (Float.abs (err (q_with m_grid 3) (empirical delays 3)));
  Printf.printf "  %-28s  +3s err %.2f%%\n" "eq.(2)/(3) global surfaces"
    (Float.abs (err (q_with m_surf 3) (empirical delays 3)));

  Printf.printf "\n(c) wire variability: driver+load (eq. 7) vs driver-only:\n";
  let g = Rng.create ~seed:55 in
  let tree = Wire_gen.random_tree tech Wire_gen.default_spec (Rng.split g) in
  let driver = Cell.make Cell.Inv ~strength:1 in
  let load = Cell.make Cell.Inv ~strength:8 in
  let meas = Wire_lab.measure ~n:1500 ~seed:56 tech ~tree ~driver ~load () in
  let tap = tree.Rctree.taps.(0) in
  let elmore =
    Elmore.delay_at (Rctree.add_cap tree tap (Cell.input_cap tech load)) tap
  in
  let full =
    Wire_model.quantile m.Model.wire ~elmore ~driver ~load:(Some load) ~sigma:3
  in
  let wm_no_fo = { m.Model.wire with Wire_model.scale_fo = 0.0 } in
  let drv_only =
    Wire_model.quantile wm_no_fo ~elmore ~driver ~load:(Some load) ~sigma:3
  in
  let mc3 = Wire_lab.quantile meas ~sigma:3 in
  Printf.printf "  driver+load: %.2f%%   driver-only: %.2f%%  (MC +3s = %.2f ps)\n"
    (Float.abs (err full mc3))
    (Float.abs (err drv_only mc3))
    (ps mc3)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per core operation.        *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks (bechamel)";
  let lib = library () in
  let m = model () in
  let nand = Cell.make Cell.Nand2 ~strength:2 in
  let tree = Wire_gen.point_to_point tech ~length_um:100.0 ~segments:8 in
  let arc = Cell.arc tech Variation.nominal nand ~output_edge:`Fall in
  let nl = (Bm.find "c432").Bm.generate () in
  let design = Design.attach_parasitics tech nl in
  let prov = Model.provider m ~sigma:3 in
  let nom = Provider.nominal lib in
  let open Bechamel in
  let test =
    Test.make_grouped ~name:"nsigma"
      [
        Test.make ~name:"cell_quantile"
          (Staged.stage (fun () ->
               ignore
                 (Model.cell_quantile m nand ~edge:`Fall ~input_slew:40e-12
                    ~load_cap:2e-15 ~sigma:3)));
        Test.make ~name:"wire_quantile"
          (Staged.stage (fun () ->
               ignore
                 (Model.wire_quantile m ~tree ~tap:8
                    ~driver:(Cell.make Cell.Inv ~strength:2)
                    ~load:None ~sigma:3)));
        Test.make ~name:"elmore_9node"
          (Staged.stage (fun () -> ignore (Elmore.delays tree)));
        Test.make ~name:"cell_transient"
          (Staged.stage (fun () ->
               ignore
                 (Cell_sim.simulate tech arc ~input_slew:10e-12 ~load_cap:2e-15)));
        Test.make ~name:"sta_c432_nsigma"
          (Staged.stage (fun () -> ignore (Engine.analyze tech prov design)));
        Test.make ~name:"sta_c432_nominal"
          (Staged.stage (fun () -> ignore (Engine.analyze tech nom design)));
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  (* Print the OLS time-per-run estimates. *)
  Hashtbl.iter
    (fun metric table ->
      if metric = "monotonic-clock" then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ t ] ->
              let t = Float.max 0.0 t in
              Printf.printf "%-28s %12s\n" name
                (if t > 1e6 then Printf.sprintf "%.2f ms/run" (t /. 1e6)
                 else if t > 1e3 then Printf.sprintf "%.2f us/run" (t /. 1e3)
                 else Printf.sprintf "%.0f ns/run" t)
            | _ -> Printf.printf "%-28s (no estimate)\n" name)
          table)
    results

(* ------------------------------------------------------------------ *)
(* High-sigma extension: the paper's "extended to +/-6s" remark.        *)
(* ------------------------------------------------------------------ *)

let highsigma () =
  header "High-sigma extension — quantiles to +/-6s (paper: Section III)";
  let m = model () in
  let cells =
    [ Cell.make Cell.Inv ~strength:1; Cell.make Cell.Nand2 ~strength:2;
      Cell.make Cell.Aoi21 ~strength:4 ]
  in
  Printf.printf "%-10s |" "cell";
  List.iter
    (fun l -> Printf.printf " %8s" (Printf.sprintf "%+.0fs" l))
    [ -6.; -4.5; -3.; 0.; 3.; 4.5; 6. ];
  Printf.printf "   (ps at S_ref, FO4)
";
  List.iter
    (fun cell ->
      Printf.printf "%-10s |" (Cell.name cell);
      List.iter
        (fun level ->
          let q =
            Nsigma.Sigma_ext.cell_quantile m cell ~edge:`Fall
              ~input_slew:Ch.reference_slew
              ~load_cap:(Cell.fo4_load tech cell) ~level
          in
          Printf.printf " %8.2f" (ps q))
        [ -6.; -4.5; -3.; 0.; 3.; 4.5; 6. ];
      Printf.printf "
%!")
    cells;
  Printf.printf
    "
Inside +/-3s the values are the fitted Table-I quantiles; beyond,
     a moment-matched log-skew-normal tail is spliced at the +/-3s anchor
     (P(+6s) ~ 1e-9 is unobservable by characterisation MC).
"

(* ------------------------------------------------------------------ *)
(* Executor: characterisation wall-clock, sequential vs domain pool.   *)
(* ------------------------------------------------------------------ *)

let exec_speedup () =
  header "Executor — full-library characterisation, sequential vs domain pool";
  let pool = Executor.domain_pool () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "characterising %d cells x 2 edges (mc=%d per grid point)\n%!"
    (List.length all_cells) lib_mc;
  let lib_seq, t_seq =
    time (fun () ->
        Library.characterize_all ~n_mc:lib_mc ~exec:Executor.sequential tech
          all_cells)
  in
  Printf.printf "  sequential       %8.2fs\n%!" t_seq;
  let lib_par, t_par =
    time (fun () ->
        Library.characterize_all ~n_mc:lib_mc ~exec:pool tech all_cells)
  in
  let speedup = t_seq /. Float.max 1e-9 t_par in
  Printf.printf "  %2d-domain pool   %8.2fs   speedup %.2fx\n%!"
    (Executor.jobs pool) t_par speedup;
  let identical =
    List.for_all
      (fun (cell, edge) ->
        let a = Library.find lib_seq cell ~edge in
        let b = Library.find lib_par cell ~edge in
        a.Ch.points = b.Ch.points)
      (Library.cells lib_seq)
  in
  Printf.printf "  bit-identical tables across backends: %b\n" identical;
  let cores = Domain.recommended_domain_count () in
  let note =
    if Executor.jobs pool > cores then
      "jobs exceed available cores: OCaml 5 stop-the-world minor GC makes \
       oversubscription counterproductive, run with jobs <= cores"
    else ""
  in
  let json =
    Printf.sprintf
      {|{"experiment": "exec_speedup", "cells": %d, "edges": 2, "n_mc": %d, "jobs": %d, "cores_available": %d, "seq_seconds": %.3f, "pool_seconds": %.3f, "speedup": %.3f, "bit_identical": %b, "note": "%s"}|}
      (List.length all_cells) lib_mc (Executor.jobs pool) cores t_seq t_par
      speedup identical note
  in
  (* Append, one JSON object per line, so successive runs accumulate. *)
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_exec.json"
  in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "  appended to BENCH_exec.json\n"

(* ------------------------------------------------------------------ *)
(* Kernel: fast analytic path vs the RK4 reference.                    *)
(* ------------------------------------------------------------------ *)

let kernel_mc = env_int "NSIGMA_BENCH_KERNEL_MC" 500

let kernel_bench () =
  header "Kernel — fast effective-current path vs the RK4 reference";
  (* One cell per kind: the fast path's accuracy is already covered for
     every strength by test_kernel; here the subset keeps the RK4 side
     of the timing run affordable. *)
  let cells = List.map (fun k -> Cell.make k ~strength:1) Cell.all_kinds in
  (* Wall-clock on a shared box is noisy on a minutes scale: compact
     before each pass, interleave the two kernels so they see the same
     contention epochs, and keep each kernel's faster pass. *)
  let once kernel =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let lib =
      Library.characterize_all ~n_mc:kernel_mc ~exec:Executor.sequential
        ~kernel tech cells
    in
    (lib, Unix.gettimeofday () -. t0)
  in
  Printf.printf "characterising %d cells x 2 edges, mc=%d per grid point\n%!"
    (List.length cells) kernel_mc;
  let _, r1 = once Cell_sim.Rk4 in
  let lib_fast, f1 = once Cell_sim.Fast in
  let _, r2 = once Cell_sim.Rk4 in
  let _, f2 = once Cell_sim.Fast in
  let t_rk4 = Float.min r1 r2 and t_fast = Float.min f1 f2 in
  Printf.printf "  rk4  (reference) %8.2fs\n%!" t_rk4;
  let speedup = t_rk4 /. Float.max 1e-9 t_fast in
  Printf.printf "  fast (analytic)  %8.2fs   speedup %.2fx\n%!" t_fast speedup;
  (* Determinism: the fast kernel must give bit-identical tables on a
     domain pool, exactly like the reference. *)
  let lib_fast_pool =
    Library.characterize_all ~n_mc:kernel_mc
      ~exec:(Executor.domain_pool ~jobs:2 ())
      ~kernel:Cell_sim.Fast tech cells
  in
  let bit_identical =
    List.for_all
      (fun (cell, edge) ->
        let a = Library.find lib_fast cell ~edge in
        let b = Library.find lib_fast_pool cell ~edge in
        a.Ch.points = b.Ch.points)
      (Library.cells lib_fast)
  in
  Printf.printf "  bit-identical fast tables across pool sizes: %b\n%!"
    bit_identical;
  (* Agreement at the reference operating point (S_ref, FO4 — the same
     conditions as test_kernel): population mean and ±3σ quantiles, fast
     vs RK4 on identical variation streams, so the comparison measures
     kernel bias rather than Monte-Carlo noise. *)
  let population kernel cell edge =
    let g = Rng.create ~seed:42 in
    let results =
      Monte_carlo.arc_results ~kernel tech g ~n:kernel_mc
        ~arc_of:(fun sample -> Cell.arc tech sample cell ~output_edge:edge)
        ~input_slew:Ch.reference_slew ~load_cap:(Cell.fo4_load tech cell)
    in
    let delays =
      Array.to_list results
      |> List.filter_map (Option.map (fun r -> r.Cell_sim.delay))
      |> Array.of_list
    in
    Array.sort Float.compare delays;
    delays
  in
  let q_p3 = Quantile.probability_of_sigma 3.0 in
  let q_m3 = Quantile.probability_of_sigma (-3.0) in
  let max_mu = ref 0.0 and max_q3 = ref 0.0 in
  List.iter
    (fun cell ->
      List.iter
        (fun edge ->
          let fast = population Cell_sim.Fast cell edge in
          let rk4 = population Cell_sim.Rk4 cell edge in
          let rel x y = Float.abs (x -. y) /. Float.abs y in
          let mu d = (Moments.summary_of_array d).Moments.mean in
          max_mu := Float.max !max_mu (rel (mu fast) (mu rk4));
          List.iter
            (fun p ->
              max_q3 :=
                Float.max !max_q3
                  (rel (Quantile.of_sorted fast p) (Quantile.of_sorted rk4 p)))
            [ q_p3; q_m3 ])
        [ `Rise; `Fall ])
    cells;
  (* Nominal-delay agreement across the same grid, straight off the two
     simulators (no Monte-Carlo noise involved). *)
  let max_nom = ref 0.0 in
  List.iter
    (fun cell ->
      List.iter
        (fun edge ->
          let arc = Cell.arc tech Variation.nominal cell ~output_edge:edge in
          let loads = Ch.loads_for tech cell in
          Array.iter
            (fun slew ->
              Array.iter
                (fun load ->
                  let r = Cell_sim.simulate tech arc ~input_slew:slew ~load_cap:load in
                  let f =
                    Cell_sim.simulate_fast tech arc ~input_slew:slew ~load_cap:load
                  in
                  max_nom :=
                    Float.max !max_nom
                      (Float.abs (f.Cell_sim.delay -. r.Cell_sim.delay)
                      /. Float.abs r.Cell_sim.delay))
                loads)
            Ch.default_slews)
        [ `Rise; `Fall ])
    cells;
  Printf.printf
    "  agreement: nominal %.2f%% (tol 2%%), mean %.2f%% (tol 1%%), ±3σ \
     quantiles %.2f%% (tol 3%%)\n%!"
    (pct !max_nom) (pct !max_mu) (pct !max_q3);
  let pass =
    speedup >= 5.0 && bit_identical && !max_nom <= 0.02 && !max_mu <= 0.01
    && !max_q3 <= 0.03
  in
  let json =
    Printf.sprintf
      {|{"experiment": "kernel", "cells": %d, "edges": 2, "n_mc": %d, "rk4_seconds": %.3f, "fast_seconds": %.3f, "speedup": %.3f, "bit_identical_pools": %b, "max_nominal_err_pct": %.4f, "max_mean_err_pct": %.4f, "max_q3_err_pct": %.4f, "pass": %b}|}
      (List.length cells) kernel_mc t_rk4 t_fast speedup bit_identical
      (pct !max_nom) (pct !max_mu) (pct !max_q3) pass
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_kernel.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "  appended to BENCH_kernel.json\n";
  if not pass then begin
    Printf.eprintf
      "kernel bench FAILED: speedup %.2fx (need >= 5x), bit_identical %b, \
       nominal %.2f%%, mean %.2f%%, q3 %.2f%%\n"
      speedup bit_identical (pct !max_nom) (pct !max_mu) (pct !max_q3);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Observability: metrics-registry overhead on the hot sampling loop.  *)
(* ------------------------------------------------------------------ *)

let obs_mc = env_int "NSIGMA_BENCH_OBS_MC" 300

(* Overhead tolerance in percent.  2% is the acceptance bar on a quiet
   machine; CI runners share cores, so their smoke run loosens it. *)
let obs_tol =
  match Sys.getenv_opt "NSIGMA_BENCH_OBS_TOL" with
  | Some v -> (try float_of_string v with _ -> 2.0)
  | None -> 2.0

let obs_reps = env_int "NSIGMA_BENCH_OBS_REPS" 5

let obs_bench () =
  header "Observability — metrics registry overhead on characterisation";
  let cells = List.map (fun k -> Cell.make k ~strength:1) Cell.all_kinds in
  let was_enabled = Metrics.enabled () in
  (* Overhead is measured in process CPU time, not wall clock: on a
     shared box wall-clock A/B passes at the one-second scale swing
     several percent either way from scheduler preemption alone, far
     above the effect being measured.  CPU time charges only what this
     process executed. *)
  let cpu_time () =
    let t = Unix.times () in
    t.Unix.tms_utime +. t.Unix.tms_stime
  in
  (* Per-operation cost measured directly on a tight recording loop. *)
  let ns_per_incr enabled =
    Metrics.set_enabled enabled;
    let c = Metrics.counter "obs.bench.incr" in
    for _ = 1 to 1000 do Metrics.incr c done;
    let n = 20_000_000 in
    let t0 = cpu_time () in
    for _ = 1 to n do Metrics.incr c done;
    let dt = cpu_time () -. t0 in
    Metrics.set_enabled was_enabled;
    dt /. float_of_int n *. 1e9
  in
  let ns_on = ns_per_incr true in
  let ns_off = ns_per_incr false in
  Printf.printf "  counter incr: %.1f ns enabled, %.1f ns disabled\n%!" ns_on
    ns_off;
  (* End-to-end A/B: compact before each pass, alternate off/on so both
     sides age the heap the same way, keep each side's fastest of
     [obs_reps] passes. *)
  let once enabled =
    Gc.compact ();
    Metrics.set_enabled enabled;
    let t0 = cpu_time () in
    let lib =
      Library.characterize_all ~n_mc:obs_mc ~exec:Executor.sequential
        ~kernel:Cell_sim.Fast tech cells
    in
    let dt = cpu_time () -. t0 in
    Metrics.set_enabled was_enabled;
    (lib, dt)
  in
  Printf.printf "characterising %d cells x 2 edges, mc=%d per grid point, %d reps\n%!"
    (List.length cells) obs_mc obs_reps;
  let lib_off, off1 = once false in
  let lib_on, on1 = once true in
  let t_off = ref off1 and t_on = ref on1 in
  for _ = 2 to obs_reps do
    let _, off = once false in
    let _, on = once true in
    t_off := Float.min !t_off off;
    t_on := Float.min !t_on on
  done;
  let t_off = !t_off and t_on = !t_on in
  let overhead = 100.0 *. ((t_on -. t_off) /. Float.max 1e-9 t_off) in
  Printf.printf "  metrics off %8.2fs\n  metrics on  %8.2fs   overhead %+.2f%%\n%!"
    t_off t_on overhead;
  (* The regression oracle: instrumentation must never perturb sampled
     values, so the characterised tables agree bit for bit. *)
  let identical =
    List.for_all
      (fun (cell, edge) ->
        let a = Library.find lib_off cell ~edge in
        let b = Library.find lib_on cell ~edge in
        a.Ch.points = b.Ch.points)
      (Library.cells lib_off)
  in
  Printf.printf "  bit-identical tables with metrics on vs off: %b\n%!" identical;
  let fast_calls = Metrics.find_counter "kernel.fast.calls" in
  Printf.printf "  kernel.fast.calls recorded while on: %d\n%!" fast_calls;
  let pass = identical && overhead <= obs_tol && fast_calls > 0 in
  let json =
    Printf.sprintf
      {|{"experiment": "obs", "cells": %d, "edges": 2, "n_mc": %d, "reps": %d, "off_seconds": %.3f, "on_seconds": %.3f, "overhead_pct": %.3f, "tolerance_pct": %.1f, "ns_per_incr_enabled": %.1f, "ns_per_incr_disabled": %.1f, "bit_identical": %b, "fast_calls": %d, "pass": %b}|}
      (List.length cells) obs_mc obs_reps t_off t_on overhead obs_tol ns_on
      ns_off identical fast_calls pass
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_obs.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "  appended to BENCH_obs.json\n";
  if not pass then begin
    Printf.eprintf
      "obs bench FAILED: overhead %.2f%% (need <= %.1f%%), bit_identical %b, \
       fast_calls %d\n"
      overhead obs_tol identical fast_calls;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Tracing: trace-collector overhead on the hot sampling loop.         *)
(* ------------------------------------------------------------------ *)

let trace_mc = env_int "NSIGMA_BENCH_TRACE_MC" 300

let trace_tol =
  match Sys.getenv_opt "NSIGMA_BENCH_TRACE_TOL" with
  | Some v -> (try float_of_string v with _ -> 2.0)
  | None -> 2.0

let trace_reps = env_int "NSIGMA_BENCH_TRACE_REPS" 5

let trace_bench () =
  header "Tracing — trace collector overhead on characterisation";
  let cells = List.map (fun k -> Cell.make k ~strength:1) Cell.all_kinds in
  let was_enabled = Trace.enabled () in
  (* Same protocol as the obs bench: process CPU time (wall clock on a
     shared box swings several percent from preemption alone), compact
     before each pass, alternate off/on, keep each side's fastest rep. *)
  let cpu_time () =
    let t = Unix.times () in
    t.Unix.tms_utime +. t.Unix.tms_stime
  in
  (* Per-record cost on a tight loop, and the disabled-path guard cost
     (the acceptance bar is "a single atomic load when off"). *)
  let ti = Trace.instant_type ~cat:"bench" ~args:[ "k" ] "bench.instant" in
  let ns_per_record enabled =
    Trace.set_enabled enabled;
    for _ = 1 to 1000 do Trace.instant ti ~a:1.0 () done;
    let n = 20_000_000 in
    let t0 = cpu_time () in
    for _ = 1 to n do Trace.instant ti ~a:1.0 () done;
    let dt = cpu_time () -. t0 in
    Trace.set_enabled was_enabled;
    Trace.reset ();
    dt /. float_of_int n *. 1e9
  in
  (* A generous per-domain cap so the characterisation run drops
     nothing: zero drops at the default size is part of the gate, and
     the grid workload stays well under it. *)
  let ns_on = ns_per_record true in
  let ns_off = ns_per_record false in
  Printf.printf "  record: %.1f ns enabled, %.1f ns disabled\n%!" ns_on ns_off;
  let once enabled =
    Gc.compact ();
    Trace.reset ();
    Trace.set_enabled enabled;
    let t0 = cpu_time () in
    let lib =
      Library.characterize_all ~n_mc:trace_mc ~exec:Executor.sequential
        ~kernel:Cell_sim.Fast tech cells
    in
    let dt = cpu_time () -. t0 in
    Trace.set_enabled was_enabled;
    (lib, dt)
  in
  Printf.printf
    "characterising %d cells x 2 edges, mc=%d per grid point, %d reps\n%!"
    (List.length cells) trace_mc trace_reps;
  let lib_off, off1 = once false in
  let lib_on, on1 = once true in
  (* Capture the trace state of the first enabled pass before later reps
     wipe it: the artifact and the drop/track gate describe a real run. *)
  let s = Trace.stats () in
  let trace_file = "BENCH_trace_events.json" in
  Trace.write trace_file;
  Printf.printf
    "  traced run: %d events on %d track(s), %d dropped -> %s (+.folded)\n%!"
    s.Trace.recorded s.Trace.tracks s.Trace.dropped trace_file;
  let t_off = ref off1 and t_on = ref on1 in
  for _ = 2 to trace_reps do
    let _, off = once false in
    let _, on = once true in
    t_off := Float.min !t_off off;
    t_on := Float.min !t_on on
  done;
  Trace.reset ();
  let t_off = !t_off and t_on = !t_on in
  let overhead = 100.0 *. ((t_on -. t_off) /. Float.max 1e-9 t_off) in
  Printf.printf "  trace off %8.2fs\n  trace on  %8.2fs   overhead %+.2f%%\n%!"
    t_off t_on overhead;
  (* The regression oracle: tracing must never perturb sampled values. *)
  let identical =
    List.for_all
      (fun (cell, edge) ->
        let a = Library.find lib_off cell ~edge in
        let b = Library.find lib_on cell ~edge in
        a.Ch.points = b.Ch.points)
      (Library.cells lib_off)
  in
  Printf.printf "  bit-identical tables with tracing on vs off: %b\n%!" identical;
  let pass =
    identical && overhead <= trace_tol && s.Trace.recorded > 0
    && s.Trace.dropped = 0
  in
  let json =
    Printf.sprintf
      {|{"experiment": "trace", "cells": %d, "edges": 2, "n_mc": %d, "reps": %d, "off_seconds": %.3f, "on_seconds": %.3f, "overhead_pct": %.3f, "tolerance_pct": %.1f, "ns_per_record_enabled": %.1f, "ns_per_record_disabled": %.1f, "bit_identical": %b, "events": %d, "tracks": %d, "dropped_events": %d, "pass": %b}|}
      (List.length cells) trace_mc trace_reps t_off t_on overhead trace_tol
      ns_on ns_off identical s.Trace.recorded s.Trace.tracks s.Trace.dropped
      pass
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_trace.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "  appended to BENCH_trace.json\n";
  if not pass then begin
    Printf.eprintf
      "trace bench FAILED: overhead %.2f%% (need <= %.1f%%), bit_identical %b, \
       events %d, dropped %d\n"
      overhead trace_tol identical s.Trace.recorded s.Trace.dropped;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Plan: precompiled sampling plans vs per-sample arc rebuild.         *)
(* ------------------------------------------------------------------ *)

let plan_mc = env_int "NSIGMA_BENCH_PLAN_MC" 500

(* The plan layer's design target was 2x; strict bit-identity with the
   per-sample rebuild path caps the measured ratio at ~1.55-1.7x on the
   RK4 kernel (the planned hot loop sits within ~1.5us/sample of the pure
   libm floor, and bit-identity forbids restructuring the exp/log1p
   work itself).  The default gate is therefore a regression bar safely
   below the measured range; the aspirational target is recorded in the
   JSON as [target_speedup] so the gap stays visible. *)
let plan_target_speedup = 2.0

let plan_min_speedup =
  match Sys.getenv_opt "NSIGMA_BENCH_PLAN_MIN_SPEEDUP" with
  | Some v -> (try float_of_string v with _ -> 1.35)
  | None -> 1.35

let plan_bench () =
  header "Plan — precompiled sampling plans vs per-sample arc rebuild";
  (* Characterisation-shaped workload on the RK4 reference kernel: the
     plan layer's target is the expensive kernel, where per-sample arc
     construction *and* the restructured simulator loop both count.  A
     cell subset keeps the RK4 passes affordable; test_plan covers the
     full bit-identity matrix. *)
  let cells =
    [ Cell.make Inv ~strength:1;
      Cell.make Nand2 ~strength:2;
      Cell.make Aoi21 ~strength:1 ]
  in
  let kernel = Cell_sim.Rk4 in
  let work =
    List.concat_map
      (fun cell ->
        let loads = Ch.loads_for tech cell in
        List.concat_map
          (fun edge ->
            Array.to_list Ch.default_slews
            |> List.concat_map (fun s ->
                   Array.to_list loads |> List.map (fun l -> (cell, edge, s, l))))
          [ `Rise; `Fall ])
      cells
  in
  let n_points = List.length work in
  let total_samples = n_points * plan_mc in
  Printf.printf "grid: %d points x mc=%d (%s kernel), %d samples/pass\n%!"
    n_points plan_mc (Cell_sim.kernel_name kernel) total_samples;
  (* Both passes use the exact per-point stream characterisation uses
     ([Rng.derive] from the grid index), so the populations must agree
     bit for bit — the oracle below checks it.  [Gc.minor_words] around
     each timed pass gives allocation per sample. *)
  let stream idx = Rng.derive (Rng.create ~seed:1) ~index:idx in
  (* The unplanned side replays the pre-plan measure_point verbatim —
     per-sample arc rebuild through [arc_results] plus the option-array →
     list → array compaction it used — so the ratio is the end-to-end
     characterisation delta, not just the kernel's. *)
  let unplanned_pass () =
    Gc.compact ();
    let mw0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let out =
      List.mapi
        (fun idx (cell, edge, slew, load) ->
          let results =
            Monte_carlo.arc_results ~exec:Executor.sequential ~kernel tech
              (stream idx) ~n:plan_mc
              ~arc_of:(fun sample -> Cell.arc tech sample cell ~output_edge:edge)
              ~input_slew:slew ~load_cap:load
          in
          let ok = Array.to_list results |> List.filter_map Fun.id in
          let delays = Array.of_list (List.map (fun r -> r.Cell_sim.delay) ok) in
          let out_slews = List.map (fun r -> r.Cell_sim.output_slew) ok in
          let sorted = Array.copy delays in
          Array.sort Float.compare sorted;
          let mean =
            List.fold_left ( +. ) 0.0 out_slews
            /. float_of_int (List.length out_slews)
          in
          ignore (Sys.opaque_identity mean);
          (* Population in stream order, NaN for non-convergent, for the
             bit-identity oracle. *)
          Array.map
            (function Some r -> r.Cell_sim.delay | None -> Float.nan)
            results)
        work
    in
    (out, Unix.gettimeofday () -. t0, Gc.minor_words () -. mw0)
  in
  let planned_pass () =
    Gc.compact ();
    let mw0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let out =
      List.mapi
        (fun idx (cell, edge, slew, load) ->
          let delays, slews =
            Monte_carlo.arc_delays_planned ~exec:Executor.sequential ~kernel
              tech (stream idx) ~n:plan_mc
              ~plan:(fun () -> Cell.plan tech cell ~output_edge:edge)
              ~input_slew:slew ~load_cap:load
          in
          let ok = Monte_carlo.compact_nan delays in
          let sorted = Array.copy ok in
          Array.sort Float.compare sorted;
          let sum = ref 0.0 and n_ok = ref 0 in
          Array.iteri
            (fun i d ->
              if not (Float.is_nan d) then begin
                sum := !sum +. slews.(i);
                incr n_ok
              end)
            delays;
          ignore (Sys.opaque_identity (!sum /. float_of_int !n_ok));
          delays)
        work
    in
    (out, Unix.gettimeofday () -. t0, Gc.minor_words () -. mw0)
  in
  (* Interleave the two variants so they see the same contention epochs;
     keep each side's faster pass.  Allocation counts come from the first
     rep — they are deterministic, unlike wall clock. *)
  let u_out, u1, u_words = unplanned_pass () in
  let p_out, p1, p_words = planned_pass () in
  let _, u2, _ = unplanned_pass () in
  let _, p2, _ = planned_pass () in
  let t_unplanned = Float.min u1 u2 and t_planned = Float.min p1 p2 in
  let speedup = t_unplanned /. Float.max 1e-9 t_planned in
  let wps_unplanned = u_words /. float_of_int total_samples in
  let wps_planned = p_words /. float_of_int total_samples in
  Printf.printf "  unplanned (rebuild/sample) %8.2fs  %8.0f words/sample\n%!"
    t_unplanned wps_unplanned;
  Printf.printf "  planned   (fill in place)  %8.2fs  %8.0f words/sample   \
                 speedup %.2fx\n%!"
    t_planned wps_planned speedup;
  if speedup < plan_target_speedup then
    Printf.printf
      "  (below the %.1fx design target: bit-identity caps the RK4 ratio \
       near the libm floor; gate is the %.2fx regression bar)\n%!"
      plan_target_speedup plan_min_speedup;
  let identical =
    List.for_all2
      (fun u p ->
        Array.length u = Array.length p
        && Array.for_all
             (fun i ->
               (Float.is_nan u.(i) && Float.is_nan p.(i))
               || Int64.equal (Int64.bits_of_float u.(i))
                    (Int64.bits_of_float p.(i)))
             (Array.init (Array.length u) Fun.id))
      u_out p_out
  in
  Printf.printf "  bit-identical populations planned vs unplanned: %b\n%!"
    identical;
  let pass =
    identical && speedup >= plan_min_speedup && wps_planned < wps_unplanned
  in
  let json =
    Printf.sprintf
      {|{"experiment": "plan", "cells": %d, "edges": 2, "grid_points": %d, "n_mc": %d, "kernel": "%s", "unplanned_seconds": %.3f, "planned_seconds": %.3f, "speedup": %.3f, "min_speedup": %.2f, "target_speedup": %.2f, "unplanned_words_per_sample": %.1f, "planned_words_per_sample": %.1f, "bit_identical": %b, "pass": %b}|}
      (List.length cells) n_points plan_mc (Cell_sim.kernel_name kernel)
      t_unplanned t_planned speedup plan_min_speedup plan_target_speedup
      wps_unplanned wps_planned identical pass
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_plan.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "  appended to BENCH_plan.json\n";
  if not pass then begin
    Printf.eprintf
      "plan bench FAILED: speedup %.2fx (need >= %.2fx), bit_identical %b, \
       words/sample %.0f planned vs %.0f unplanned\n"
      speedup plan_min_speedup identical wps_planned wps_unplanned;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Sampling: variance-reduced deviate streams vs plain Monte-Carlo.    *)
(* ------------------------------------------------------------------ *)

let sampling_ref_n = env_int "NSIGMA_BENCH_SAMPLING_REF" 524288
let sampling_base_n = env_int "NSIGMA_BENCH_SAMPLING_MC" 4096
let sampling_reps = env_int "NSIGMA_BENCH_SAMPLING_REPS" 8

let sampling_min_reduction =
  match Sys.getenv_opt "NSIGMA_BENCH_SAMPLING_MIN_REDUCTION" with
  | Some v -> (try float_of_string v with _ -> 2.0)
  | None -> 2.0

let sampling_bench () =
  header "Sampling — variance-reduced streams vs plain Monte-Carlo";
  (* Accuracy target: the ±3σ-quantile RMSE plain MC reaches with
     [sampling_base_n] samples, measured over independent replicate
     seeds and pooled across four characterisation arcs and both tails.
     For each variance-reduced backend we then walk an n-ladder and
     report the smallest sample count that matches the target; the
     reduction is base/matched.  Strength-8 drivers are the regime
     where stratification pays: wide devices shrink the Pelgrom local
     mismatch, so the shared global deviates — the dimensions LHS and
     Sobol' balance hardest — carry most of the delay variance.  At
     unit strength the local-mismatch dimensions dominate and the tail
     gains fall towards 1x (the JSON records the workload so the regime
     is explicit).  The Fast kernel keeps the ~3M arc sims cheap;
     kernel choice does not affect the sampling comparison. *)
  let kernel = Cell_sim.Fast in
  let input_slew = 40e-12 in
  let workload =
    [ (Cell.make Inv ~strength:8, `Rise);
      (Cell.make Inv ~strength:8, `Fall);
      (Cell.make Nand2 ~strength:8, `Rise);
      (Cell.make Nand2 ~strength:8, `Fall) ]
    |> List.map (fun (cell, edge) -> (cell, edge, Cell.fo4_load tech cell))
  in
  let tails =
    [ Quantile.probability_of_sigma (-3.0); Quantile.probability_of_sigma 3.0 ]
  in
  let sorted_delays backend ~seed ~n (cell, edge, load) =
    let s =
      Monte_carlo.arc_delays_sampled ~exec:(Executor.default ()) ~kernel
        ~sampling:backend tech (Rng.create ~seed) ~n
        ~plan:(fun () -> Cell.plan tech cell ~output_edge:edge)
        ~input_slew ~load_cap:load
    in
    let d = Array.copy s.Monte_carlo.s_delays in
    Array.sort Float.compare d;
    d
  in
  let refs =
    List.map
      (fun arc ->
        Array.of_list
          (List.map
             (Quantile.of_sorted
                (sorted_delays Sampler.Mc ~seed:424242 ~n:sampling_ref_n arc))
             tails))
      workload
  in
  (* Pooled relative RMSE of the two tail quantiles at sample count [n]. *)
  let rmse backend n =
    let acc = ref 0.0 and cnt = ref 0 in
    for rep = 1 to sampling_reps do
      List.iteri
        (fun ai arc ->
          let sorted = sorted_delays backend ~seed:(1000 + rep) ~n arc in
          List.iteri
            (fun ti p ->
              let q_ref = (List.nth refs ai).(ti) in
              let e = (Quantile.of_sorted sorted p -. q_ref) /. q_ref in
              acc := !acc +. (e *. e);
              incr cnt)
            tails)
        workload
    done;
    sqrt (!acc /. float_of_int !cnt)
  in
  let mc_rmse = rmse Sampler.Mc sampling_base_n in
  Printf.printf "reference n=%d  reps=%d  mc baseline n=%d rmse %.4f%%\n%!"
    sampling_ref_n sampling_reps sampling_base_n (pct mc_rmse);
  let ladder =
    List.filter (fun n -> n <= sampling_base_n)
      [ 128; 181; 256; 362; 512; 724; 1024; 1448; 2048; 2896; 4096; 5793;
        8192 ]
  in
  let samples_to_match backend =
    let rec scan = function
      | [] -> (sampling_base_n, rmse backend sampling_base_n)
      | n :: rest ->
        let r = rmse backend n in
        Printf.printf "  %-10s n=%5d  rmse %.4f%%%s\n%!"
          (Sampler.backend_name backend) n (pct r)
          (if r <= mc_rmse then "  <= mc target" else "");
        if r <= mc_rmse then (n, r) else scan rest
    in
    scan ladder
  in
  let n_lhs, rmse_lhs = samples_to_match Sampler.Lhs in
  let n_sobol, rmse_sobol = samples_to_match Sampler.Sobol in
  let reduction n = float_of_int sampling_base_n /. float_of_int n in
  let reduction_lhs = reduction n_lhs in
  let reduction_sobol = reduction n_sobol in
  (* The Mc backend must reproduce the legacy per-sample stream bit for
     bit — same populations, just routed through the sampler. *)
  let bit_identical_mc =
    List.for_all
      (fun (cell, edge, load) ->
        let plan () = Cell.plan tech cell ~output_edge:edge in
        let s =
          Monte_carlo.arc_delays_sampled ~exec:(Executor.default ()) ~kernel
            ~sampling:Sampler.Mc tech (Rng.create ~seed:7) ~n:512 ~plan
            ~input_slew ~load_cap:load
        in
        let d, sl =
          Monte_carlo.arc_delays_planned ~exec:(Executor.default ()) ~kernel
            tech (Rng.create ~seed:7) ~n:512 ~plan ~input_slew ~load_cap:load
        in
        s.Monte_carlo.s_delays = d && s.Monte_carlo.s_out_slews = sl)
      workload
  in
  Printf.printf
    "lhs: n=%d (%.2fx)  sobol: n=%d (%.2fx)  bit-identical mc: %b\n"
    n_lhs reduction_lhs n_sobol reduction_sobol bit_identical_mc;
  let pass =
    bit_identical_mc
    && reduction_lhs >= sampling_min_reduction
    && reduction_sobol >= sampling_min_reduction
  in
  let json =
    Printf.sprintf
      {|{"experiment": "sampling", "kernel": "%s", "workload": "%s", "arcs": %d, "reps": %d, "n_ref": %d, "n_mc": %d, "mc_rmse": %.6f, "n_lhs": %d, "rmse_lhs": %.6f, "n_sobol": %d, "rmse_sobol": %.6f, "reduction_lhs": %.3f, "reduction_sobol": %.3f, "min_reduction": %.2f, "bit_identical_mc": %b, "pass": %b}|}
      (Cell_sim.kernel_name kernel)
      (String.concat " "
         (List.map
            (fun (cell, edge, _) ->
              Printf.sprintf "%s/%s" (Cell.name cell)
                (match edge with `Rise -> "rise" | `Fall -> "fall"))
            workload))
      (List.length workload) sampling_reps sampling_ref_n sampling_base_n
      mc_rmse n_lhs rmse_lhs n_sobol rmse_sobol reduction_lhs reduction_sobol
      sampling_min_reduction bit_identical_mc pass
  in
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_sampling.json"
  in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "  appended to BENCH_sampling.json\n";
  if not pass then begin
    Printf.eprintf
      "sampling bench FAILED: reduction lhs %.2fx sobol %.2fx (need >= \
       %.2fx), bit_identical_mc %b\n"
      reduction_lhs reduction_sobol sampling_min_reduction bit_identical_mc;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Batch: SoA fast kernel + PCM surrogate vs the scalar planned loop.  *)
(* ------------------------------------------------------------------ *)

let batch_mc = env_int "NSIGMA_BENCH_BATCH_MC" 4096
let batch_reps = env_int "NSIGMA_BENCH_BATCH_REPS" 4
let batch_ref_n = env_int "NSIGMA_BENCH_BATCH_REF" 131072

(* The design target for the approximate (--no-bit-identical) SoA path
   is 3x over the scalar planned loop; like the plan bench, the
   shippable default gate is a regression bar below the measured range,
   with the aspirational target recorded in the JSON as
   [target_speedup].  On this toolchain the measured ceiling is far
   lower: replacing both transcendentals with linear shams moves a
   sample from ~2.15 µs to only ~1.85 µs (they are ~400 ns of the
   total), so even a free polynomial path tops out near 1.16x
   end-to-end, and the fitted kernels land at parity with glibc
   (±5% run-to-run).  The gate therefore only guards against the SoA
   path regressing materially below the scalar loop. *)
let batch_target_speedup = 3.0

let batch_min_speedup =
  match Sys.getenv_opt "NSIGMA_BENCH_BATCH_MIN_SPEEDUP" with
  | Some v -> (try float_of_string v with _ -> 0.85)
  | None -> 0.85

(* Max relative error of the approximate path's population mean vs the
   exact one, in percent. *)
let batch_max_err_pct =
  match Sys.getenv_opt "NSIGMA_BENCH_BATCH_MAX_ERR" with
  | Some v -> (try float_of_string v with _ -> 0.1)
  | None -> 0.1

let batch_min_pcm_reduction =
  match Sys.getenv_opt "NSIGMA_BENCH_BATCH_MIN_PCM_REDUCTION" with
  | Some v -> (try float_of_string v with _ -> 8.0)
  | None -> 8.0

(* PCM must match plain MC's tail accuracy at [batch_mc] samples within
   this factor (its surrogate bias replaces sampling noise). *)
let batch_pcm_slack =
  match Sys.getenv_opt "NSIGMA_BENCH_BATCH_PCM_SLACK" with
  | Some v -> (try float_of_string v with _ -> 1.5)
  | None -> 1.5

let batch_bench () =
  header "Batch — SoA fast kernel + PCM surrogate vs scalar planned loop";
  let kernel = Cell_sim.Fast in
  let input_slew = 40e-12 in
  let workload =
    [ (Cell.make Inv ~strength:1, `Rise);
      (Cell.make Inv ~strength:8, `Fall);
      (Cell.make Nand2 ~strength:2, `Rise);
      (Cell.make Aoi21 ~strength:1, `Fall) ]
    |> List.map (fun (cell, edge) -> (cell, edge, Cell.fo4_load tech cell))
  in
  Printf.printf "workload: %d arcs x mc=%d (%s kernel)\n%!"
    (List.length workload) batch_mc (Cell_sim.kernel_name kernel);
  (* ---- throughput + bit-identity: scalar vs SoA vs SoA+approx ---- *)
  let pass_over ~batch ~approx () =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let out =
      List.map
        (fun (cell, edge, load) ->
          fst
            (Monte_carlo.arc_delays_planned ~exec:Executor.sequential ~kernel
               ~batch ~approx tech (Rng.create ~seed:5) ~n:batch_mc
               ~plan:(fun () -> Cell.plan tech cell ~output_edge:edge)
               ~input_slew ~load_cap:load))
        workload
    in
    (out, Unix.gettimeofday () -. t0)
  in
  (* Interleave the three variants so they share contention epochs; keep
     each side's fastest rep. *)
  let scalar_out = ref [] and batch_out = ref [] and approx_out = ref [] in
  let t_scalar = ref infinity
  and t_batch = ref infinity
  and t_approx = ref infinity in
  for _ = 1 to max 2 batch_reps do
    let s, ts = pass_over ~batch:false ~approx:false () in
    let b, tb = pass_over ~batch:true ~approx:false () in
    let a, ta = pass_over ~batch:true ~approx:true () in
    scalar_out := s;
    batch_out := b;
    approx_out := a;
    t_scalar := Float.min !t_scalar ts;
    t_batch := Float.min !t_batch tb;
    t_approx := Float.min !t_approx ta
  done;
  let same_bits u p =
    Array.length u = Array.length p
    && Array.for_all Fun.id
         (Array.init (Array.length u) (fun i ->
              (Float.is_nan u.(i) && Float.is_nan p.(i))
              || Int64.equal (Int64.bits_of_float u.(i))
                   (Int64.bits_of_float p.(i))))
  in
  let bit_identical = List.for_all2 same_bits !scalar_out !batch_out in
  let speedup = !t_scalar /. Float.max 1e-9 !t_approx in
  let speedup_exact = !t_scalar /. Float.max 1e-9 !t_batch in
  (* Approximate-path accuracy: relative population-mean error per arc. *)
  let nominal_err_pct =
    List.fold_left2
      (fun acc s a ->
        let mean xs =
          let ok = Monte_carlo.compact_nan xs in
          Array.fold_left ( +. ) 0.0 ok /. float_of_int (Array.length ok)
        in
        let ms = mean s in
        Float.max acc (pct (Float.abs ((mean a -. ms) /. ms))))
      0.0 !scalar_out !approx_out
  in
  Printf.printf
    "  scalar %.3fs   soa %.3fs (%.2fx)   soa+approx %.3fs (%.2fx)\n"
    !t_scalar !t_batch speedup_exact !t_approx speedup;
  Printf.printf "  bit-identical soa vs scalar: %b   approx mean err %.4f%%\n%!"
    bit_identical nominal_err_pct;
  if speedup < batch_target_speedup then
    Printf.printf
      "  (below the %.1fx design target; gate is the %.2fx regression bar)\n%!"
      batch_target_speedup batch_min_speedup;
  (* ---- PCM surrogate: tail accuracy per kernel evaluation ---- *)
  let tails =
    [ Quantile.probability_of_sigma (-3.0); Quantile.probability_of_sigma 3.0 ]
  in
  let sorted_delays backend ~seed ~n (cell, edge, load) =
    let s =
      Monte_carlo.arc_delays_sampled ~exec:Executor.sequential ~kernel
        ~sampling:backend tech (Rng.create ~seed) ~n
        ~plan:(fun () -> Cell.plan tech cell ~output_edge:edge)
        ~input_slew ~load_cap:load
    in
    let d = Monte_carlo.compact_nan s.Monte_carlo.s_delays in
    Array.sort Float.compare d;
    d
  in
  let refs =
    List.map
      (fun arc ->
        Array.of_list
          (List.map
             (Quantile.of_sorted
                (sorted_delays Sampler.Mc ~seed:424242 ~n:batch_ref_n arc))
             tails))
      workload
  in
  let rmse backend n =
    let acc = ref 0.0 and cnt = ref 0 in
    for rep = 1 to batch_reps do
      List.iteri
        (fun ai arc ->
          let sorted = sorted_delays backend ~seed:(1000 + rep) ~n arc in
          List.iteri
            (fun ti p ->
              let q_ref = (List.nth refs ai).(ti) in
              let e = (Quantile.of_sorted sorted p -. q_ref) /. q_ref in
              acc := !acc +. (e *. e);
              incr cnt)
            tails)
        workload
    done;
    sqrt (!acc /. float_of_int !cnt)
  in
  let mc_rmse = rmse Sampler.Mc batch_mc in
  let pcm_rmse = rmse Sampler.Pcm batch_mc in
  (* Kernel simulations PCM actually spends: the collocation points of
     the widest arc (the worst case across the workload). *)
  let pcm_kernel_evals =
    List.fold_left
      (fun acc (cell, edge, _) ->
        let sk = Cell.plan tech cell ~output_edge:edge in
        let dim =
          Variation.global_deviate_dim + Nsigma_spice.Arc.skeleton_local_dim sk
        in
        max acc (Sampler.Pcm.n_points ~dim))
      0 workload
  in
  let pcm_reduction = float_of_int batch_mc /. float_of_int pcm_kernel_evals in
  Printf.printf
    "  mc@%d rmse %.4f%%   pcm rmse %.4f%% from <=%d kernel evals (%.1fx \
     fewer)\n%!"
    batch_mc (pct mc_rmse) (pct pcm_rmse) pcm_kernel_evals pcm_reduction;
  let pass =
    bit_identical
    && speedup >= batch_min_speedup
    && nominal_err_pct <= batch_max_err_pct
    && pcm_reduction >= batch_min_pcm_reduction
    && pcm_rmse <= batch_pcm_slack *. mc_rmse
  in
  let json =
    Printf.sprintf
      {|{"experiment": "batch", "kernel": "%s", "arcs": %d, "mc": %d, "reps": %d, "scalar_seconds": %.3f, "soa_seconds": %.3f, "approx_seconds": %.3f, "speedup_exact": %.3f, "speedup": %.3f, "min_speedup": %.2f, "target_speedup": %.2f, "bit_identical": %b, "nominal_err_pct": %.5f, "max_nominal_err_pct": %.2f, "n_ref": %d, "mc_rmse": %.6f, "pcm_rmse": %.6f, "pcm_slack": %.2f, "pcm_kernel_evals": %d, "pcm_reduction": %.3f, "min_pcm_reduction": %.2f, "pass": %b}|}
      (Cell_sim.kernel_name kernel)
      (List.length workload) batch_mc batch_reps !t_scalar !t_batch !t_approx
      speedup_exact speedup batch_min_speedup batch_target_speedup
      bit_identical nominal_err_pct batch_max_err_pct batch_ref_n mc_rmse
      pcm_rmse batch_pcm_slack pcm_kernel_evals pcm_reduction
      batch_min_pcm_reduction pass
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_batch.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "  appended to BENCH_batch.json\n";
  if not pass then begin
    Printf.eprintf
      "batch bench FAILED: speedup %.2fx (need >= %.2fx), bit_identical %b, \
       mean err %.4f%% (max %.2f%%), pcm reduction %.1fx (need >= %.1fx), \
       pcm rmse %.4f%% vs mc %.4f%% (slack %.1fx)\n"
      speedup batch_min_speedup bit_identical nominal_err_pct
      batch_max_err_pct pcm_reduction batch_min_pcm_reduction (pct pcm_rmse)
      (pct mc_rmse) batch_pcm_slack;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* SSTA: block-based full-graph pass vs matched-coverage per-path MC.  *)
(* ------------------------------------------------------------------ *)

let ssta_circuit =
  match Sys.getenv_opt "NSIGMA_BENCH_SSTA_CIRCUIT" with
  | Some v when v <> "" -> v
  | _ -> "c5315" (* largest seed benchmark: 5275 gates, 847 POs *)

let ssta_n = env_int "NSIGMA_BENCH_SSTA_N" 2000
let ssta_k = env_int "NSIGMA_BENCH_SSTA_K" 128

let ssta_min_speedup =
  match Sys.getenv_opt "NSIGMA_BENCH_SSTA_MIN_SPEEDUP" with
  | Some v -> (try float_of_string v with _ -> 20.0)
  | None -> 20.0

let ssta_max_err =
  match Sys.getenv_opt "NSIGMA_BENCH_SSTA_MAX_ERR" with
  | Some v -> (try float_of_string v with _ -> 0.05)
  | None -> 0.05

let ssta_bench () =
  header "SSTA — block-based full-graph pass vs matched-coverage path MC";
  let lib = library () in
  let nl = (Bm.find ssta_circuit).Bm.generate () in
  let design = Design.attach_parasitics tech nl in
  Printf.printf
    "circuit %s: %d gates, %d nets, %d POs; MC reference: %d worst POs x %d \
     samples\n%!"
    ssta_circuit
    (Array.length nl.N.gates)
    nl.N.n_nets
    (Array.length nl.N.primary_outputs)
    ssta_k ssta_n;
  (* Enable the registry so the max-operator counters record. *)
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  (* One provider shared by both operator configs: its lazy per-net wire
     and per-cell decomposition caches are a one-time cost, reported
     separately so the gated speedup measures the steady-state
     propagation pass (the caches play the role the .lvf cache plays for
     characterisation). *)
  let provider = Ssta.lvf_provider tech lib design in
  let t0 = Unix.gettimeofday () in
  let _warm =
    Ssta.validate ~n:8 ~k:ssta_k ~provider
      ~config:{ Ssta.op = Stat_max.Clark; corr = Ssta.Tracked }
      tech lib design
  in
  let warm_seconds = Unix.gettimeofday () -. t0 in
  let run op =
    let v =
      Ssta.validate ~n:ssta_n ~k:ssta_k ~provider
        ~config:{ Ssta.op; corr = Ssta.Tracked }
        tech lib design
    in
    Printf.printf
      "  [%-6s] MC: mu=%.1f +3s=%.1f -3s=%.1f ps (%.2fs)   SSTA: mu=%.1f \
       +3s=%.1f -3s=%.1f ps (%.3fs)\n"
      (Stat_max.operator_name op)
      (ps v.Ssta.va_mc.Moments.mean)
      (ps v.Ssta.va_mc_p3) (ps v.Ssta.va_mc_m3) v.Ssta.va_mc_seconds
      (ps v.Ssta.va_ssta.Ssta.d_mean)
      (ps (Ssta.quantile v.Ssta.va_ssta ~sigma:3.0))
      (ps (Ssta.quantile v.Ssta.va_ssta ~sigma:(-3.0)))
      v.Ssta.va_ssta_seconds;
    Printf.printf
      "           err: mean %.2f%%  +3s %.2f%%  -3s %.2f%%   speedup %.1fx\n%!"
      (pct v.Ssta.va_err_mean) (pct v.Ssta.va_err_p3) (pct v.Ssta.va_err_m3)
      (v.Ssta.va_mc_seconds /. Float.max 1e-9 v.Ssta.va_ssta_seconds);
    v
  in
  let clark = run Stat_max.Clark in
  (* Clark-vs-moment ablation (arXiv:2401.03588): the moment-matching
     operator is more accurate per join on skewed inputs, but its
     marginal-skew overestimates compound over thousands of joins where
     Clark's symmetric treatment cancels — recorded, not gated. *)
  let moment = run Stat_max.Moment in
  let max_ops = Metrics.find_counter "sta.ssta.max_ops" in
  let max_clark = Metrics.find_counter "sta.ssta.max.clark" in
  let max_moment = Metrics.find_counter "sta.ssta.max.moment" in
  Metrics.set_enabled was_enabled;
  let speedup =
    clark.Ssta.va_mc_seconds /. Float.max 1e-9 clark.Ssta.va_ssta_seconds
  in
  let e_p3 = Float.abs clark.Ssta.va_err_p3 in
  let e_m3 = Float.abs clark.Ssta.va_err_m3 in
  Printf.printf
    "  max operators: %d total (%d clark, %d moment); provider warm-up \
     %.1fs\n"
    max_ops max_clark max_moment warm_seconds;
  let pass =
    speedup >= ssta_min_speedup && e_p3 <= ssta_max_err && e_m3 <= ssta_max_err
    && max_ops > 0 && max_clark > 0 && max_moment > 0
  in
  let json =
    Printf.sprintf
      {|{"experiment": "ssta", "circuit": "%s", "gates": %d, "pos": %d, "mc_paths": %d, "mc_n": %d, "mc_seconds": %.3f, "ssta_seconds": %.4f, "provider_warm_seconds": %.3f, "speedup": %.2f, "min_speedup": %.1f, "max_err": %.3f, "err_mean_pct": %.3f, "err_p3_pct": %.3f, "err_m3_pct": %.3f, "moment_err_mean_pct": %.3f, "moment_err_p3_pct": %.3f, "moment_err_m3_pct": %.3f, "max_ops": %d, "max_clark": %d, "max_moment": %d, "pass": %b}|}
      ssta_circuit
      (Array.length nl.N.gates)
      (Array.length nl.N.primary_outputs)
      clark.Ssta.va_n_paths clark.Ssta.va_mc_n clark.Ssta.va_mc_seconds
      clark.Ssta.va_ssta_seconds warm_seconds speedup ssta_min_speedup
      ssta_max_err
      (pct clark.Ssta.va_err_mean)
      (pct clark.Ssta.va_err_p3)
      (pct clark.Ssta.va_err_m3)
      (pct moment.Ssta.va_err_mean)
      (pct moment.Ssta.va_err_p3)
      (pct moment.Ssta.va_err_m3)
      max_ops max_clark max_moment pass
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_ssta.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "  appended to BENCH_ssta.json\n";
  if not pass then begin
    Printf.eprintf
      "ssta bench FAILED: speedup %.1fx (need >= %.1fx), |err| +3s %.2f%% \
       -3s %.2f%% (need <= %.1f%%), max_ops %d (clark %d, moment %d)\n"
      speedup ssta_min_speedup (pct e_p3) (pct e_m3) (pct ssta_max_err)
      max_ops max_clark max_moment;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Incremental re-timing: per-edit fan-out-cone re-evaluation vs an   *)
(* honest from-scratch pass, plus provider-store cold/warm startup.   *)
(* ------------------------------------------------------------------ *)

let incr_circuit =
  match Sys.getenv_opt "NSIGMA_BENCH_INCR_CIRCUIT" with
  | Some v when v <> "" -> v
  | _ -> "c5315"

let incr_edits = env_int "NSIGMA_BENCH_INCR_EDITS" 24

let incr_min_speedup =
  match Sys.getenv_opt "NSIGMA_BENCH_INCR_MIN_SPEEDUP" with
  | Some v -> (try float_of_string v with _ -> 10.0)
  | None -> 10.0

let incr_max_warm_frac =
  match Sys.getenv_opt "NSIGMA_BENCH_INCR_MAX_WARM_FRAC" with
  | Some v -> (try float_of_string v with _ -> 0.05)
  | None -> 0.05

(* Characterisation-grade regression sampling (the default 128 is a
   smoke setting: at 128 paired samples the moment-regression
   coefficients carry ~9% noise).  Shared by the incremental handle,
   the store-timing handles and every from-scratch provider — the two
   sides must agree on every provider knob for bitwise identity. *)
let incr_frac = env_int "NSIGMA_BENCH_INCR_FRAC" 4096

(* Longest downstream distance (in gate stages) from each gate to a
   primary output — every gate downstream of g has a strictly smaller
   depth, so depth bounds the re-timing cone. *)
let downstream_depth (nl : N.t) =
  let order = N.topo_order nl in
  let fanouts = N.fanouts_of nl in
  let depth = Array.make (Array.length nl.N.gates) 0 in
  for i = Array.length order - 1 downto 0 do
    let g = order.(i) in
    depth.(g) <-
      List.fold_left
        (fun acc (sg, _) -> if sg >= 0 then max acc (1 + depth.(sg)) else acc)
        0
        fanouts.(nl.N.gates.(g).N.output)
  done;
  depth

(* A deterministic ECO-shaped workload — cell resizes, wire re-routes
   and sink-load bumps.  Two-thirds of the edits target the endpoint
   region (gates within a few stages of a primary output), where timing
   ECOs actually land — fixing a failing endpoint means touching the
   last stages of its path; the remaining third lands anywhere, so the
   recorded speedup distribution also covers deep mid-cone edits whose
   perturbation cascades through half the circuit.  The same sequence
   is applied to the incremental design and its from-scratch twin, so
   every edit must validate against both (they start structurally
   identical). *)
let incr_workload st (nl : N.t) n =
  let fanouts = N.fanouts_of nl in
  let drivers = N.driver_of nl in
  let n_gates = Array.length nl.N.gates in
  let depth = downstream_depth nl in
  let shallow =
    List.filter (fun g -> depth.(g) <= 6) (List.init n_gates Fun.id)
    |> Array.of_list
  in
  (* A swap also invalidates its input nets (pin caps), re-timing the
     input drivers' cones — an endpoint swap site must keep that whole
     frontier in the endpoint region. *)
  let shallow_swap =
    Array.to_list shallow
    |> List.filter (fun g ->
           Array.for_all
             (fun net -> drivers.(net) < 0 || depth.(drivers.(net)) <= 6)
             nl.N.gates.(g).N.inputs)
    |> Array.of_list
  in
  let pick_from pool fallback =
    if Array.length pool > 0 then pool.(Random.State.int st (Array.length pool))
    else fallback ()
  in
  let pick_gate endpointish =
    if endpointish then
      pick_from shallow (fun () -> Random.State.int st n_gates)
    else Random.State.int st n_gates
  in
  let pick_swap_gate endpointish =
    if endpointish then
      pick_from shallow_swap (fun () -> pick_gate endpointish)
    else Random.State.int st n_gates
  in
  let swap ep =
    let gi = pick_swap_gate ep in
    let cur = nl.N.gates.(gi).N.cell in
    let choices =
      List.filter (fun s -> s <> cur.Cell.strength) Cell.standard_strengths
    in
    let strength = List.nth choices (Random.State.int st (List.length choices)) in
    Edit.Swap_cell { gate = gi; cell = Cell.make cur.Cell.kind ~strength }
  in
  let scale ep =
    let net = nl.N.gates.(pick_gate ep).N.output in
    Edit.Scale_wire
      {
        net;
        r_scale = 0.8 +. Random.State.float st 0.7;
        c_scale = 0.8 +. Random.State.float st 0.7;
      }
  in
  let rec bump ep =
    let net = nl.N.gates.(pick_gate ep).N.output in
    match List.length fanouts.(net) with
    | 0 -> bump ep
    | k ->
      Edit.Bump_sink_load
        {
          net;
          sink = Random.State.int st k;
          delta_cap = (0.2 +. Random.State.float st 1.8) *. 1e-15;
        }
  in
  ( Array.length shallow,
    List.init n (fun i ->
        let ep = i * 3 < 2 * n in
        match i mod 3 with 0 -> swap ep | 1 -> scale ep | _ -> bump ep) )

let incr_bench () =
  header "Incremental re-timing — per-edit cone re-evaluation vs from-scratch";
  let lib = library () in
  let nl = (Bm.find incr_circuit).Bm.generate () in
  let nl_twin = (Bm.find incr_circuit).Bm.generate () in
  let design = Design.attach_parasitics tech nl in
  let twin = Design.attach_parasitics tech nl_twin in
  let n_shallow, edits =
    incr_workload (Random.State.make [| 0x1ce |]) nl incr_edits
  in
  Printf.printf
    "circuit %s: %d gates, %d nets, %d POs; %d edits (2/3 in the %d-gate \
     endpoint region, 1/3 anywhere)\n%!"
    incr_circuit
    (Array.length nl.N.gates)
    nl.N.n_nets
    (Array.length nl.N.primary_outputs)
    (List.length edits) n_shallow;
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  (* Provider store: time the whole per-(cell, edge) regression cost
     cold (empty store) and store-warm (second fresh handle, same
     directory) — the warm load must be a small fraction of cold. *)
  let store_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nsigma_bench_incr_store_%d" (Unix.getpid ()))
  in
  (if Sys.file_exists store_dir then
     Array.iter
       (fun f -> Sys.remove (Filename.concat store_dir f))
       (Sys.readdir store_dir)
   else Unix.mkdir store_dir 0o755);
  let cold_handle =
    Ssta.lvf_handle ~frac_samples:incr_frac ~store_dir:(Some store_dir) tech
      lib design
  in
  let t0 = Unix.gettimeofday () in
  cold_handle.Ssta.h_prewarm ();
  let cold_s = Unix.gettimeofday () -. t0 in
  (* Steady-state warm load: best of three fresh handles, so one cold
     page-cache read or GC pause doesn't swamp a measurement that is
     only tens of milliseconds of file I/O. *)
  let warm_once () =
    let h =
      Ssta.lvf_handle ~frac_samples:incr_frac ~store_dir:(Some store_dir) tech
        lib design
    in
    let t0 = Unix.gettimeofday () in
    h.Ssta.h_prewarm ();
    (Unix.gettimeofday () -. t0, h)
  in
  let warm_s, handle =
    let w1, _ = warm_once () in
    let w2, _ = warm_once () in
    let w3, h = warm_once () in
    (Float.min w1 (Float.min w2 w3), h)
  in
  let store_hits = Metrics.find_counter "provider.store.hit" in
  let store_misses = Metrics.find_counter "provider.store.miss" in
  let warm_frac = warm_s /. Float.max 1e-9 cold_s in
  Printf.printf
    "  provider store: cold %.2fs, warm %.3fs (%.1f%% of cold; %d hits, %d \
     misses)\n%!"
    cold_s warm_s (pct warm_frac) store_hits store_misses;
  let t0 = Unix.gettimeofday () in
  let inc = Incremental.init tech handle design in
  let init_s = Unix.gettimeofday () -. t0 in
  Printf.printf "  initial full pass: %.2fs\n%!" init_s;
  (* Per edit: incremental apply vs an honest from-scratch re-analysis —
     fresh provider with the store disabled (cold regressions) plus a
     full pass — on a twin design receiving the same edit sequence. *)
  let n_edits = List.length edits in
  let speedups = Array.make n_edits 0.0 in
  let all_identical = ref true in
  let total_dirty = ref 0 and total_cutoffs = ref 0 and total_inval = ref 0 in
  List.iteri
    (fun i edit ->
      (* Describe before applying: a swap reads the current cell. *)
      let described = Edit.describe nl edit in
      let stats = Incremental.apply inc edit in
      let inc_report = Incremental.report inc in
      ignore (Design.apply_edit twin edit);
      let t0 = Unix.gettimeofday () in
      let scratch_provider =
        Ssta.lvf_provider ~frac_samples:incr_frac ~store_dir:None tech lib twin
      in
      let scratch = Ssta.analyze tech scratch_provider twin in
      let scratch_s = Unix.gettimeofday () -. t0 in
      let identical = Incremental.reports_bit_identical inc_report scratch in
      if not identical then all_identical := false;
      let sp = scratch_s /. Float.max 1e-9 stats.Incremental.st_seconds in
      speedups.(i) <- sp;
      total_dirty := !total_dirty + stats.Incremental.st_dirty;
      total_cutoffs := !total_cutoffs + stats.Incremental.st_cutoffs;
      total_inval := !total_inval + stats.Incremental.st_invalidated;
      Printf.printf
        "  edit %2d: %-44s %7.1f ms vs %5.2f s scratch (%6.1fx, %d dirty, %d \
         cutoffs%s)\n%!"
        (i + 1) described
        (stats.Incremental.st_seconds *. 1e3)
        scratch_s sp stats.Incremental.st_dirty stats.Incremental.st_cutoffs
        (if identical then "" else ", NOT BIT-IDENTICAL"))
    edits;
  Metrics.set_enabled was_enabled;
  let sorted = Array.copy speedups in
  Array.sort compare sorted;
  let median =
    if n_edits = 0 then 0.0
    else if n_edits mod 2 = 1 then sorted.(n_edits / 2)
    else 0.5 *. (sorted.((n_edits / 2) - 1) +. sorted.(n_edits / 2))
  in
  let pass =
    median >= incr_min_speedup
    && !all_identical
    && warm_frac <= incr_max_warm_frac
  in
  Printf.printf
    "  median speedup %.1fx (min %.1fx, max %.1fx); bit-identical %b; warm \
     store %.1f%% of cold (max %.1f%%)\n"
    median sorted.(0)
    sorted.(n_edits - 1)
    !all_identical (pct warm_frac) (pct incr_max_warm_frac);
  let speedups_json =
    String.concat ", "
      (Array.to_list (Array.map (Printf.sprintf "%.2f") speedups))
  in
  let json =
    Printf.sprintf
      {|{"experiment": "incr", "circuit": "%s", "gates": %d, "nets": %d, "edits": %d, "init_seconds": %.3f, "median_speedup": %.2f, "min_edit_speedup": %.2f, "max_edit_speedup": %.2f, "speedups": [%s], "min_speedup": %.1f, "bit_identical": %b, "store_cold_seconds": %.3f, "store_warm_seconds": %.4f, "warm_frac": %.4f, "max_warm_frac": %.3f, "store_hits": %d, "store_misses": %d, "dirty_gates": %d, "cutoff_hits": %d, "invalidated_nets": %d, "pass": %b}|}
      incr_circuit
      (Array.length nl.N.gates)
      nl.N.n_nets n_edits init_s median sorted.(0)
      sorted.(n_edits - 1)
      speedups_json incr_min_speedup !all_identical cold_s warm_s warm_frac
      incr_max_warm_frac store_hits store_misses !total_dirty !total_cutoffs
      !total_inval pass
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_incr.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "  appended to BENCH_incr.json\n";
  (* The store was scratch space for the cold/warm measurement. *)
  Array.iter
    (fun f -> Sys.remove (Filename.concat store_dir f))
    (Sys.readdir store_dir);
  (try Unix.rmdir store_dir with Unix.Unix_error _ -> ());
  if not pass then begin
    Printf.eprintf
      "incr bench FAILED: median speedup %.1fx (need >= %.1fx), bit-identical \
       %b, warm store %.1f%% of cold (need <= %.1f%%)\n"
      median incr_min_speedup !all_identical (pct warm_frac)
      (pct incr_max_warm_frac);
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* server: warm-daemon throughput and tail latency against a cold
   process per query, gated on bit-identity of every served response. *)

let server_queries = env_int "NSIGMA_BENCH_SERVER_QUERIES" 120
let server_path_n = env_int "NSIGMA_BENCH_SERVER_PATH_MC" 40
let server_cold_n = env_int "NSIGMA_BENCH_SERVER_COLD" 3
let server_window = env_int "NSIGMA_BENCH_SERVER_WINDOW" 16

let server_min_speedup =
  match Sys.getenv_opt "NSIGMA_BENCH_SERVER_MIN_SPEEDUP" with
  | Some v -> ( try float_of_string v with _ -> 20.0)
  | None -> 20.0

let server_circuits = [| "c432"; "c5315" |]

(* The replayed workload: (connection, request line) in issue order.
   Retimes pin to connection 0 / c432 / clark so exactly one session
   context exists and ssta analyzes on that connection exercise the
   edited-context path.  The warmup prefix is part of the replay — the
   bit-identity gate covers the full per-connection sequences — but
   only the tail is timed, so the throughput number is the steady
   state, not context builds. *)
let server_workload () =
  let nl = (Bm.find "c432").Bm.generate () in
  let _, edits =
    incr_workload (Random.State.make [| 7 |]) nl (server_queries + 1)
  in
  let edits = ref (List.map (Edit.to_json nl) edits) in
  let next_edit () =
    match !edits with
    | e :: rest ->
      edits := rest;
      e
    | [] -> assert false
  in
  let retime_line id =
    Printf.sprintf
      {|{"id": %d, "op": "retime", "circuit": "c432", "max": "clark", "edit": %S}|}
      id (next_edit ())
  in
  let warmup =
    (0, retime_line 9000)
    :: List.concat_map
         (fun c ->
           [
             ( 1,
               Printf.sprintf
                 {|{"id": 9001, "op": "analyze", "circuit": %S, "max": "clark"}|}
                 c );
             ( 1,
               Printf.sprintf
                 {|{"id": 9002, "op": "analyze", "circuit": %S, "max": "moment"}|}
                 c );
             ( 1,
               Printf.sprintf
                 {|{"id": 9003, "op": "analyze", "circuit": %S, "engine": "scalar"}|}
                 c );
             ( 1,
               Printf.sprintf
                 {|{"id": 9004, "op": "path_mc", "circuit": %S, "n": %d}|} c
                 server_path_n );
           ])
         (Array.to_list server_circuits)
  in
  let st = Random.State.make [| 11; server_queries |] in
  let timed =
    List.init server_queries (fun i ->
        let id = i + 1 in
        let conn = i mod 3 in
        let circuit = server_circuits.(Random.State.int st 2) in
        let r = Random.State.int st 100 in
        if r < 50 then
          let op = if Random.State.bool st then "clark" else "moment" in
          ( conn,
            Printf.sprintf
              {|{"id": %d, "op": "analyze", "circuit": %S, "max": %S}|} id
              circuit op )
        else if r < 65 then
          ( conn,
            Printf.sprintf
              {|{"id": %d, "op": "analyze", "circuit": %S, "engine": "scalar"}|}
              id circuit )
        else if r < 85 then
          ( conn,
            Printf.sprintf
              {|{"id": %d, "op": "path_mc", "circuit": %S, "n": %d}|} id
              circuit server_path_n )
        else (0, retime_line id))
  in
  (warmup, timed)

let server_pct sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let server_bench () =
  header "Timing server — warm daemon vs a cold process per query";
  let lib = library () in
  let lvf_path =
    Printf.sprintf "bench_cache_%.2fV_mc%d.lvf" tech.T.vdd_nominal lib_mc
  in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nsigma_bench_server_%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove socket with Sys_error _ -> ());
  let warmup, timed = server_workload () in
  Printf.printf
    "workload: %d warmup + %d timed queries over 3 connections (path_mc \
     n=%d, window %d)\n\
     %!"
    (List.length warmup) (List.length timed) server_path_n server_window;
  (* The daemon is this same binary re-executed in __serve mode —
     fork+exec, never a bare fork: forking the bench process after a
     domain pool has run can deadlock OCaml 5's stop-the-world
     sections. *)
  let t_spawn = Unix.gettimeofday () in
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "__serve"; socket; lvf_path |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let conns =
    Array.init 3 (fun _ -> Sclient.connect ~retries:1200 ~socket ())
  in
  let startup_s = Unix.gettimeofday () -. t_spawn in
  Printf.printf "daemon pid %d ready in %.2fs on %s\n%!" pid startup_s socket;
  let warm_resps =
    List.map (fun (c, line) -> (c, line, Sclient.request conns.(c) line)) warmup
  in
  let timed_arr = Array.of_list timed in
  let n_timed = Array.length timed_arr in
  let resps = Array.make n_timed "" in
  let lats = Array.make n_timed 0.0 in
  let t0 = Unix.gettimeofday () in
  let i = ref 0 in
  while !i < n_timed do
    let j = min n_timed (!i + server_window) in
    let sent = Array.make (j - !i) 0.0 in
    for k = !i to j - 1 do
      let c, line = timed_arr.(k) in
      sent.(k - !i) <- Unix.gettimeofday ();
      Sclient.send conns.(c) line
    done;
    for k = !i to j - 1 do
      let c, _ = timed_arr.(k) in
      resps.(k) <- Sclient.recv conns.(c);
      lats.(k) <- Unix.gettimeofday () -. sent.(k - !i)
    done;
    i := j
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let warm_qps = float_of_int n_timed /. wall in
  let stats =
    Sproto.parse_line (Sclient.request conns.(0) {|{"id": 0, "op": "stats"}|})
  in
  let stat name = int_of_float (Sproto.num_field stats name) in
  let batched = stat "batched" in
  let cache_hits = stat "cache_hits" in
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  Array.iter Sclient.close conns;
  let clean_exit = status = Unix.WEXITED 0 in
  (* Bit-identity: replay the exact per-connection sequences through a
     fresh in-process server and compare every response line. *)
  let replay = Server.create (Server.default_config tech lib) in
  let identical = ref true in
  let check c line daemon_resp =
    let local = Server.handle replay ~session:c line in
    if local <> daemon_resp then begin
      identical := false;
      Printf.printf "  MISMATCH (conn %d): %s\n    daemon: %s\n    local:  %s\n"
        c line daemon_resp local
    end
  in
  List.iter (fun (c, line, resp) -> check c line resp) warm_resps;
  Array.iteri
    (fun k resp ->
      let c, line = timed_arr.(k) in
      check c line resp)
    resps;
  (* Cold baseline: what one query costs when every process pays the
     library load and context build — the one-shot CLI shape. *)
  let cold_lines =
    [
      {|{"id": 1, "op": "analyze", "circuit": "c432", "max": "clark"}|};
      {|{"id": 2, "op": "analyze", "circuit": "c5315", "max": "clark"}|};
      Printf.sprintf {|{"id": 3, "op": "path_mc", "circuit": "c432", "n": %d}|}
        server_path_n;
    ]
  in
  let cold_samples =
    List.init server_cold_n (fun k ->
        let line = List.nth cold_lines (k mod List.length cold_lines) in
        let t0 = Unix.gettimeofday () in
        let lib_cold = Library.load tech lvf_path in
        let srv = Server.create (Server.default_config tech lib_cold) in
        let resp = Server.handle srv ~session:0 line in
        assert (String.length resp > 0);
        Unix.gettimeofday () -. t0)
  in
  let cold_mean = avg cold_samples in
  let cold_qps = 1.0 /. cold_mean in
  let speedup = warm_qps /. cold_qps in
  let sorted_lats = Array.copy lats in
  Array.sort Float.compare sorted_lats;
  let p50 = server_pct sorted_lats 0.50 in
  let p95 = server_pct sorted_lats 0.95 in
  let p99 = server_pct sorted_lats 0.99 in
  Printf.printf
    "warm: %d queries in %.2fs = %.1f q/s; latency p50 %.2fms p95 %.2fms \
     p99 %.2fms\n"
    n_timed wall warm_qps (p50 *. 1e3) (p95 *. 1e3) (p99 *. 1e3);
  Printf.printf
    "cold: %.3fs per query (%d samples: library load + context + answer) = \
     %.2f q/s\n"
    cold_mean server_cold_n cold_qps;
  Printf.printf
    "speedup %.0fx (gate >= %.0fx); coalesced %d; context cache hits %d; \
     bit-identical %b; clean exit %b\n"
    speedup server_min_speedup batched cache_hits !identical clean_exit;
  let pass = speedup >= server_min_speedup && !identical && clean_exit in
  let json =
    Printf.sprintf
      {|{"experiment": "server", "queries": %d, "warmup": %d, "connections": 3, "window": %d, "path_mc_n": %d, "lib_mc": %d, "startup_seconds": %.2f, "wall_seconds": %.3f, "warm_qps": %.1f, "p50_ms": %.3f, "p95_ms": %.3f, "p99_ms": %.3f, "cold_samples": %d, "cold_seconds_mean": %.3f, "cold_qps": %.3f, "speedup": %.1f, "min_speedup": %.1f, "batched": %d, "cache_hits": %d, "bit_identical": %b, "clean_exit": %b, "pass": %b}|}
      n_timed (List.length warmup) server_window server_path_n lib_mc
      startup_s wall warm_qps (p50 *. 1e3) (p95 *. 1e3) (p99 *. 1e3)
      server_cold_n cold_mean cold_qps speedup server_min_speedup batched
      cache_hits !identical clean_exit pass
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_server.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "  appended to BENCH_server.json\n";
  if not pass then begin
    Printf.eprintf
      "server bench FAILED: speedup %.1fx (need >= %.1fx), bit-identical %b, \
       clean exit %b\n"
      speedup server_min_speedup !identical clean_exit;
    exit 1
  end

(* Every experiment the dispatch below accepts, in menu order — the
   single source for both the usage line and the unknown-name error. *)
let experiments =
  [ "fig2"; "fig3"; "fig4"; "table1"; "table2"; "fig7"; "fig8"; "fig9";
    "fig10"; "fig11"; "table3"; "speedup"; "exec"; "kernel"; "obs"; "trace";
    "plan"; "sampling"; "batch"; "ssta"; "incr"; "server"; "ablation";
    "highsigma"; "micro"; "all" ]

let usage () =
  Printf.printf
    "usage: main.exe [--jobs N] [--metrics FILE] [%s] [circuits...]\n"
    (String.concat "|" experiments)

let unknown_experiment name =
  Printf.eprintf
    "bench: unknown experiment %S\nvalid experiments: %s\n(run with no \
     argument or \"all\" for the full paper sweep)\n"
    name
    (String.concat ", " experiments);
  exit 2

(* [--jobs N] (or [-j N]) installs itself as NSIGMA_JOBS so every
   sampling loop — characterisation, path MC, wire lab — picks it up
   through [Executor.default] without further plumbing. *)
let rec extract_jobs acc = function
  | [] -> (List.rev acc, None)
  | ("--jobs" | "-j") :: v :: rest -> (List.rev_append acc rest, Some v)
  | a :: rest when String.starts_with ~prefix:"--jobs=" a ->
    (List.rev_append acc rest, Some (String.sub a 7 (String.length a - 7)))
  | a :: rest -> extract_jobs (a :: acc) rest

(* Hidden daemon mode for the server bench: [main.exe __serve SOCKET
   LVF] re-executes this binary as the long-lived timing server.  The
   bench spawns it with fork+exec ([Unix.create_process]) instead of
   forking the already-running bench process, which could deadlock
   OCaml 5's stop-the-world sections once a domain pool has run. *)
let () =
  if Array.length Sys.argv = 4 && Sys.argv.(1) = "__serve" then begin
    let socket = Sys.argv.(2) and lvf = Sys.argv.(3) in
    let lib = Library.load tech lvf in
    let srv = Server.create (Server.default_config tech lib) in
    Server.run srv ~socket ();
    exit 0
  end

(* [--metrics FILE] enables the metrics registry and writes the JSON run
   report at exit (FILE = "-" prints a summary table to stderr). *)
let rec extract_metrics acc = function
  | [] -> (List.rev acc, None)
  | "--metrics" :: v :: rest -> (List.rev_append acc rest, Some v)
  | a :: rest when String.starts_with ~prefix:"--metrics=" a ->
    (List.rev_append acc rest, Some (String.sub a 10 (String.length a - 10)))
  | a :: rest -> extract_metrics (a :: acc) rest

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args, jobs = extract_jobs [] args in
  let args, metrics = extract_metrics [] args in
  Option.iter (Unix.putenv "NSIGMA_JOBS") jobs;
  (match metrics with
  | Some spec -> Obs_report.install spec
  | None -> Obs_report.install_from_env ());
  Printf.printf "[exec] %d worker domain(s)\n%!"
    (Executor.jobs (Executor.default ()));
  let t0 = Unix.gettimeofday () in
  (match args with
  | [] | [ "all" ] ->
    fig2 ();
    fig3 ();
    fig4 ();
    table1 ();
    table2 ();
    fig7 ();
    fig8 ();
    fig9 ();
    fig10 ();
    fig11 ();
    table3 ();
    speedup ();
    ablation ();
    highsigma ()
  | "fig2" :: _ -> fig2 ()
  | "fig3" :: _ -> fig3 ()
  | "fig4" :: _ -> fig4 ()
  | "table1" :: _ -> table1 ()
  | "table2" :: _ -> table2 ()
  | "fig7" :: _ -> fig7 ()
  | "fig8" :: _ -> fig8 ()
  | "fig9" :: _ -> fig9 ()
  | "fig10" :: _ -> fig10 ()
  | "fig11" :: _ -> fig11 ()
  | "table3" :: [] -> table3 ()
  | "table3" :: circuits -> table3 ~circuits ()
  | "speedup" :: _ -> speedup ()
  | "exec" :: _ -> exec_speedup ()
  | "kernel" :: _ -> kernel_bench ()
  | "obs" :: _ -> obs_bench ()
  | "trace" :: _ -> trace_bench ()
  | "plan" :: _ -> plan_bench ()
  | "sampling" :: _ -> sampling_bench ()
  | "batch" :: _ -> batch_bench ()
  | "ssta" :: _ -> ssta_bench ()
  | "incr" :: _ -> incr_bench ()
  | "server" :: _ -> server_bench ()
  | "ablation" :: _ -> ablation ()
  | "highsigma" :: _ -> highsigma ()
  | "micro" :: _ -> micro ()
  | ("--help" | "-h" | "help") :: _ -> usage ()
  | name :: _ -> unknown_experiment name);
  Printf.printf "\n[bench] total wall time %.1fs\n" (Unix.gettimeofday () -. t0)
