(* Command-line front end for the N-sigma delay calibration flow.

   Subcommands:
     characterize  run Monte-Carlo cell characterisation into a library file
     fit           fit the N-sigma model from a library and store coefficients
     analyze       statistical STA of a circuit (built-in benchmark or
                   Verilog-lite file) at the requested sigma levels
     report        inspect a library file (cells, reference moments)

   Examples:
     nsigma characterize --vdd 0.6 --mc 2000 -o lib.lvf
     nsigma fit --library lib.lvf -o model.coeffs
     nsigma analyze --library lib.lvf --circuit c432 --sigma 3 --mc 500
     nsigma analyze --library lib.lvf --verilog design.v *)

module T = Nsigma_process.Technology
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Ch = Nsigma_liberty.Characterize
module Model = Nsigma.Model
module Bm = Nsigma_netlist.Benchmarks
module N = Nsigma_netlist.Netlist
module V = Nsigma_netlist.Verilog_lite
module Design = Nsigma_sta.Design
module Engine = Nsigma_sta.Engine
module Provider = Nsigma_sta.Provider
module Path = Nsigma_sta.Path
module Path_mc = Nsigma_sta.Path_mc
module Ssta = Nsigma_sta.Ssta
module Incremental = Nsigma_sta.Incremental
module Edit = Nsigma_netlist.Edit
module Stat_max = Nsigma_stats.Stat_max
module Moments = Nsigma_stats.Moments
module Sampler = Nsigma_stats.Sampler
module Timing_report = Nsigma_sta.Timing_report
module Executor = Nsigma_exec.Executor
module Cell_sim = Nsigma_spice.Cell_sim
module Server = Nsigma_server.Server
module Sclient = Nsigma_server.Client
module Sproto = Nsigma_server.Protocol
module Metrics = Nsigma_obs.Metrics
module Obs_report = Nsigma_obs.Report
module Obs_trace = Nsigma_obs.Trace
module Monotonic = Nsigma_obs.Monotonic
module Progress = Nsigma_obs.Progress

open Cmdliner

let tech_of_vdd vdd = T.with_vdd T.default_28nm vdd

let all_cells =
  List.concat_map
    (fun k -> List.map (fun s -> Cell.make k ~strength:s) Cell.standard_strengths)
    Cell.all_kinds

(* ---- common arguments ---- *)

let vdd_arg =
  let doc = "Supply voltage of the corner (V)." in
  Arg.(value & opt float 0.6 & info [ "vdd" ] ~docv:"VOLTS" ~doc)

let library_arg =
  let doc = "Characterised library file (.lvf)." in
  Arg.(required & opt (some string) None & info [ "library"; "l" ] ~docv:"FILE" ~doc)

let mc_arg default =
  let doc = "Monte-Carlo samples." in
  Arg.(value & opt int default & info [ "mc" ] ~docv:"N" ~doc)

(* Numeric flag validation: fail at parse time with a descriptive
   message instead of surfacing a deep Invalid_argument mid-run. *)
let check_mc ~allow_zero mc =
  if mc < 0 || ((not allow_zero) && mc = 0) then
    failwith
      (Printf.sprintf "--mc must be %s (got %d)"
         (if allow_zero then "zero (skip Monte-Carlo) or positive"
          else "positive")
         mc)

let jobs_arg =
  let doc =
    "Worker domains for Monte-Carlo sampling: 1 runs sequentially, 0 \
     auto-detects the core count.  Defaults to $(b,NSIGMA_JOBS) (unset: \
     sequential).  Results are bit-identical at every setting."
  in
  Arg.(value & opt (some string) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Closed-choice flags go through Arg.enum so a typo is rejected at
   parse time with the valid spellings listed, instead of surfacing as
   a raw exception from the name-to-variant conversion. *)
let kernel_conv =
  Arg.enum
    [ ("fast", Cell_sim.Fast); ("rk4", Cell_sim.Rk4); ("auto", Cell_sim.Auto) ]

let kernel_arg =
  let doc =
    "Simulation kernel: $(b,fast) (analytic effective-current), $(b,rk4) \
     (adaptive Runge-Kutta reference) or $(b,auto) (fast with RK4 \
     fallback).  Defaults to $(b,NSIGMA_KERNEL) (unset: fast for \
     characterisation, rk4 for path Monte-Carlo)."
  in
  Arg.(value & opt (some kernel_conv) None & info [ "kernel" ] ~docv:"NAME" ~doc)

let sampling_conv =
  Arg.enum
    [ ("mc", Sampler.Mc); ("antithetic", Sampler.Antithetic);
      ("lhs", Sampler.Lhs); ("sobol", Sampler.Sobol); ("pcm", Sampler.Pcm) ]

let sampling_arg =
  let doc =
    "Deviate stream for Monte-Carlo sampling: $(b,mc) (independent \
     pseudo-random, the bit-exact legacy stream), $(b,antithetic) \
     (paired ±z), $(b,lhs) (Latin hypercube), $(b,sobol) (scrambled \
     Sobol') or $(b,pcm) (probabilistic collocation: simulate only the \
     O(d²) Hermite collocation points, replay the MC population through \
     a fitted second-order surrogate).  Defaults to $(b,NSIGMA_SAMPLING) \
     (unset: mc).  Delay populations depend on the choice; mc reproduces \
     pre-sampler runs exactly."
  in
  Arg.(value & opt (some sampling_conv) None & info [ "sampling" ] ~docv:"NAME" ~doc)

let rtol_arg =
  let doc =
    "Adaptive stopping: keep sampling in doubling batches until both ±3σ \
     quantile confidence intervals are within this relative tolerance \
     (e.g. 0.02), capped at the $(b,--mc) sample count.  Off by default \
     (fixed sample counts, golden runs unchanged)."
  in
  Arg.(value & opt (some float) None & info [ "rtol" ] ~docv:"TOL" ~doc)

let batch_arg =
  let doc =
    "Route fast-kernel Monte-Carlo through the batched \
     structure-of-arrays evaluator (fused stage loops over whole sample \
     blocks).  A pure throughput switch: populations stay bit-identical \
     to the scalar loop."
  in
  Arg.(value & flag & info [ "batch" ] ~doc)

let no_bit_identical_arg =
  let doc =
    "Let the batched kernel use polynomial transcendental approximations \
     (relative error ≤ 1e-7) instead of libm — faster, but populations \
     are no longer bitwise-reproducible against default runs.  Implies \
     $(b,--batch)."
  in
  Arg.(value & flag & info [ "no-bit-identical" ] ~doc)

(* Resolve the CLI sampling flags and record them as run-report context. *)
let sampling_of_flags sampling rtol =
  let backend =
    match sampling with
    | Some backend -> backend
    | None -> Sampler.default_backend ()
  in
  (match rtol with
  | Some r when r <= 0.0 -> failwith "--rtol must be positive"
  | _ -> ());
  Obs_report.set_context "sampling" (Sampler.backend_name backend);
  Obs_report.set_context "rtol"
    (match rtol with None -> "off" | Some r -> Printf.sprintf "%.9g" r);
  (backend, rtol)

let provider_cache_arg =
  let doc =
    "On-disk store for the SSTA provider's per-(cell, edge) moment \
     regressions: artifacts are content-addressed by the library \
     fingerprint and provider knobs, so a warm start is bitwise \
     identical to a cold one.  Pass a directory to pin it, $(b,off) to \
     disable.  Defaults to $(b,NSIGMA_PROVIDER_CACHE) (unset: no \
     store)."
  in
  Arg.(value & opt (some string) None & info [ "provider-cache" ] ~docv:"DIR" ~doc)

(* None → omit the argument (env default applies); "off" → explicitly
   disabled; anything else → pinned directory. *)
let store_dir_of = function
  | None -> None
  | Some "off" -> Some None
  | Some dir -> Some (Some dir)

let metrics_arg =
  let doc =
    "Enable the metrics registry and write a schema-versioned JSON run \
     report to $(docv) at exit ($(b,-) prints a summary table to stderr \
     instead).  Defaults to $(b,NSIGMA_METRICS).  Instrumentation never \
     perturbs sampled values: delay populations and .lvf tables are \
     bit-identical with metrics on or off."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Enable the trace collector and write a Chrome trace-event JSON file \
     to $(docv) at exit (open in Perfetto or chrome://tracing; one track \
     per worker domain) plus a collapsed-stack flamegraph next to it \
     ($(docv).folded).  Defaults to $(b,NSIGMA_TRACE).  Tracing never \
     perturbs sampled values: populations are bit-identical with tracing \
     on or off."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Show a sampled stderr progress ticker with ETA for characterisation \
     grids and path Monte-Carlo populations.  Auto-disabled when stderr \
     is not a TTY or $(b,NSIGMA_LOG=quiet)."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

(* Expected CLI-usage failures (bad observability paths) exit with code
   2 and a one-line message — never a raw Sys_error backtrace from an
   at_exit writer hours into a run. *)
exception Cli_error of string

(* Validated at the CLI seam so a typo'd worker count surfaces as a
   one-line exit-2 message naming the offending value, not as a raw
   exception from the executor.  0 keeps its documented auto-detect
   meaning; negative counts are rejected. *)
let parse_jobs ~what value =
  match int_of_string_opt (String.trim value) with
  | Some j when j >= 0 -> j
  | Some j ->
    raise
      (Cli_error
         (Printf.sprintf
            "%s must be a non-negative worker count (0 = auto-detect), got %d"
            what j))
  | None ->
    raise
      (Cli_error
         (Printf.sprintf "%s must be an integer worker count, got %S" what
            value))

let exec_of_jobs = function
  | Some v -> Executor.domain_pool ~jobs:(parse_jobs ~what:"--jobs" v) ()
  | None ->
    (* No flag: the executor reads NSIGMA_JOBS itself, but silently
       ignores garbage — validate it here so a typo'd environment fails
       loudly too. *)
    (match Sys.getenv_opt "NSIGMA_JOBS" with
    | Some v when String.trim v <> "" ->
      ignore (parse_jobs ~what:"NSIGMA_JOBS" v : int)
    | _ -> ());
    Executor.default ()

(* Probe the destination before the run starts.  Append mode neither
   truncates an existing file nor clobbers its contents; the at-exit
   writer replaces it wholesale later. *)
let check_writable what spec =
  if spec <> "-" then
    match open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 spec with
    | oc -> close_out oc
    | exception Sys_error msg ->
      raise (Cli_error (Printf.sprintf "cannot write %s %s: %s" what spec msg))

(* Shared by every subcommand: install the run-report and trace
   destinations (explicit flags win over NSIGMA_METRICS / NSIGMA_TRACE)
   and arm the progress ticker. *)
let setup_obs ?(metrics = None) ?(trace = None) ?(progress = false) () =
  let resolve flag env =
    match flag with
    | Some s -> Some s
    | None -> (
      match Sys.getenv_opt env with
      | Some s when String.trim s <> "" -> Some (String.trim s)
      | _ -> None)
  in
  let metrics = resolve metrics "NSIGMA_METRICS" in
  let trace = resolve trace "NSIGMA_TRACE" in
  (match (metrics, trace) with
  | Some m, Some t when m <> "-" && m = t ->
    raise
      (Cli_error
         (Printf.sprintf
            "--metrics and --trace both write to %s; give them distinct files"
            m))
  | _ -> ());
  (match metrics with
  | Some spec ->
    check_writable "run report" spec;
    Obs_report.install spec
  | None -> ());
  (match trace with
  | Some spec ->
    check_writable "trace" spec;
    check_writable "flamegraph" (spec ^ ".folded");
    Obs_trace.install spec
  | None -> ());
  if progress then Progress.set_enabled true

(* ---- characterize ---- *)

let characterize_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output library file.")
  in
  let cells_arg =
    let doc = "Comma-separated cell names (default: the whole library)." in
    Arg.(value & opt (some string) None & info [ "cells" ] ~docv:"LIST" ~doc)
  in
  let run vdd mc output cells jobs kernel sampling rtol metrics trace progress =
    setup_obs ~metrics ~trace ~progress ();
    check_mc ~allow_zero:false mc;
    let tech = tech_of_vdd vdd in
    let exec = exec_of_jobs jobs in
    let kernel =
      match kernel with
      | Some k -> k
      | None -> Cell_sim.default_kernel ()
    in
    let sampling, rtol = sampling_of_flags sampling rtol in
    let cells =
      match cells with
      | None -> all_cells
      | Some list ->
        String.split_on_char ',' list |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map Cell.of_name
    in
    Printf.printf
      "characterising %d cells at %.2f V with %d MC samples/point (%s \
       kernel, %s sampling%s, %d worker domain(s))...\n%!"
      (List.length cells) vdd mc (Cell_sim.kernel_name kernel)
      (Sampler.backend_name sampling)
      (match rtol with
      | None -> ""
      | Some r -> Printf.sprintf ", adaptive rtol %g" r)
      (Executor.jobs exec);
    let t0 = Monotonic.now () in
    let lib =
      Metrics.span "cli.characterize" (fun () ->
          Library.characterize_all ~n_mc:mc ~exec ~kernel ~sampling ?rtol tech
            cells)
    in
    Library.save lib output;
    Printf.printf "wrote %s in %.1fs\n" output (Monotonic.now () -. t0)
  in
  let term =
    Term.(
      const run $ vdd_arg $ mc_arg 2000 $ output $ cells_arg $ jobs_arg
      $ kernel_arg $ sampling_arg $ rtol_arg $ metrics_arg $ trace_arg
      $ progress_arg)
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Monte-Carlo characterisation of the cell library (LVF-style moments).")
    term

(* ---- fit ---- *)

let fit_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output coefficients file.")
  in
  let run vdd library output metrics trace progress =
    setup_obs ~metrics ~trace ~progress ();
    let tech = tech_of_vdd vdd in
    let lib = Library.load tech library in
    Printf.printf "fitting the N-sigma model (Table I + calibration + wire X)...\n%!";
    let model = Metrics.span "cli.fit" (fun () -> Model.build lib) in
    Format.printf "%a@." Nsigma.Cell_model.pp model.Model.cell_model;
    Model.save model output;
    Printf.printf "wrote %s\n" output
  in
  let term =
    Term.(
      const run $ vdd_arg $ library_arg $ output $ metrics_arg $ trace_arg
      $ progress_arg)
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:"Fit the N-sigma model from a characterised library and persist the \
             coefficient file (Fig. 5).")
    term

(* ---- analyze ---- *)

let analyze_cmd =
  let circuit_arg =
    let doc = "Built-in benchmark circuit name (c432..c7552, ADD, SUB, MUL, DIV)." in
    Arg.(value & opt (some string) None & info [ "circuit"; "c" ] ~docv:"NAME" ~doc)
  in
  let verilog_arg =
    let doc = "Verilog-lite netlist file to analyse instead of a benchmark." in
    Arg.(value & opt (some string) None & info [ "verilog" ] ~docv:"FILE" ~doc)
  in
  let sigma_arg =
    let doc = "Sigma level for the headline report (also runs its negative)." in
    Arg.(value & opt int 3 & info [ "sigma" ] ~docv:"N" ~doc)
  in
  let coeffs_arg =
    let doc = "Use a stored coefficients file instead of refitting." in
    Arg.(value & opt (some string) None & info [ "coeffs" ] ~docv:"FILE" ~doc)
  in
  let engine_arg =
    let doc =
      "Timing engine: $(b,scalar) (nominal arrival walk + per-path N-sigma \
       calibration, the legacy flow) or $(b,ssta) (block-based full-graph \
       statistical pass propagating four-moment arrival distributions)."
    in
    Arg.(
      value
      & opt (enum [ ("scalar", `Scalar); ("ssta", `Ssta) ]) `Scalar
      & info [ "engine" ] ~docv:"NAME" ~doc)
  in
  let max_arg =
    let doc =
      "Statistical max operator for the ssta engine: $(b,clark) (exact \
       bivariate-Gaussian moments) or $(b,moment) (skewness/kurtosis-aware \
       Cornish-Fisher moment matching)."
    in
    Arg.(
      value
      & opt (enum [ ("clark", Stat_max.Clark); ("moment", Stat_max.Moment) ])
          Stat_max.Clark
      & info [ "max" ] ~docv:"NAME" ~doc)
  in
  let period_arg =
    let doc =
      "Clock period (ps) for the ssta slack report.  Default: the worst \
       +3$(b,σ) arrival, so the most critical endpoint reads slack 0."
    in
    Arg.(value & opt (some float) None & info [ "period" ] ~docv:"PS" ~doc)
  in
  let run vdd library circuit verilog sigma mc coeffs jobs kernel sampling rtol
      batch no_bit_identical engine maxop period provider_cache metrics trace
      progress =
    setup_obs ~metrics ~trace ~progress ();
    check_mc ~allow_zero:true mc;
    (match period with
    | Some p when p <= 0.0 ->
      failwith (Printf.sprintf "--period must be positive (got %g ps)" p)
    | _ -> ());
    let tech = tech_of_vdd vdd in
    let exec = exec_of_jobs jobs in
    let sampling, rtol = sampling_of_flags sampling rtol in
    (* --no-bit-identical implies the batch layer (the approximation
       only exists there); characterize has no such flags on purpose —
       .lvf fingerprints pin bit-exact populations. *)
    let approx = no_bit_identical in
    let batch = batch || approx in
    Obs_report.set_context "batch"
      (if approx then "approx" else if batch then "on" else "off");
    let lib =
      Metrics.span "cli.load_library" (fun () -> Library.load tech library)
    in
    let nl =
      match (circuit, verilog) with
      | Some name, _ -> (
        match Bm.find name with
        | bm -> bm.Bm.generate ()
        | exception Not_found ->
          failwith
            (Printf.sprintf "unknown circuit %S (available: %s)" name
               (String.concat ", " (List.map (fun b -> b.Bm.name) Bm.all))))
      | None, Some file -> V.read_file file
      | None, None -> failwith "pass --circuit or --verilog"
    in
    Printf.printf "%s\n%!" (N.stats nl);
    let design = Design.attach_parasitics tech nl in
    match engine with
    | `Scalar ->
      let model =
        Metrics.span "cli.build_model" (fun () ->
            match coeffs with
            | Some f -> Model.load lib f
            | None -> Model.build lib)
      in
      let report = Engine.analyze tech (Provider.nominal lib) design in
      let path = Engine.critical_path report in
      Printf.printf "nominal critical path (%d stages): %.1f ps\n"
        (Path.n_stages path) (path.Path.total *. 1e12);
      List.iter
        (fun s ->
          Printf.printf "T_path(%+dσ) = %.1f ps\n"
            s (Model.path_quantile_of_path model design path ~sigma:s *. 1e12))
        [ -sigma; 0; sigma ];
      if mc > 0 then begin
        Printf.printf "path Monte-Carlo (%d samples)...\n%!" mc;
        let stats =
          Path_mc.run ?kernel ~n:mc ~exec ~sampling ?rtol ~batch ~approx tech
            design path
        in
        Printf.printf "MC: mu=%.1f ps, %+dσ=%.1f ps, %+dσ=%.1f ps\n"
          (stats.Path_mc.moments.Moments.mean *. 1e12)
          (-sigma)
          (stats.Path_mc.quantile (-sigma) *. 1e12)
          sigma
          (stats.Path_mc.quantile sigma *. 1e12);
        Format.printf "%a@." Timing_report.pp_sampling stats.Path_mc.sampling
      end
    | `Ssta ->
      let config = { Ssta.op = maxop; corr = Ssta.Tracked } in
      Printf.printf "block-based SSTA pass (%s max, tracked correlation)...\n%!"
        (Stat_max.operator_name maxop);
      let provider =
        Metrics.span "cli.ssta_provider" (fun () ->
            Ssta.lvf_provider ~exec ~batch ~approx
              ?store_dir:(store_dir_of provider_cache) tech lib design)
      in
      let report = Ssta.analyze ~config tech provider design in
      let worst = Ssta.circuit_dist report in
      let q3 = Ssta.quantile worst ~sigma:3.0 in
      let period = match period with Some ps -> ps *. 1e-12 | None -> q3 in
      Format.printf "%a@." (Timing_report.pp_ssta nl)
        (Timing_report.of_ssta ~period report);
      if mc > 0 then begin
        Printf.printf
          "validating against per-path Monte-Carlo (%d samples)...\n%!" mc;
        let v = Ssta.validate ~n:mc ~config ~provider tech lib design in
        Printf.printf
          "MC max over %d paths: mu=%.1f ps, +3σ=%.1f ps (%.2fs)\n"
          v.Ssta.va_n_paths
          (v.Ssta.va_mc.Moments.mean *. 1e12)
          (v.Ssta.va_mc_p3 *. 1e12) v.Ssta.va_mc_seconds;
        Printf.printf
          "SSTA same coverage:   mu=%.1f ps, +3σ=%.1f ps (%.2fs)\n"
          (v.Ssta.va_ssta.Ssta.d_mean *. 1e12)
          (Ssta.quantile v.Ssta.va_ssta ~sigma:3.0 *. 1e12)
          v.Ssta.va_ssta_seconds;
        Printf.printf
          "errors: mean %.2f%%, +3σ %.2f%%, -3σ %.2f%%; speedup %.1fx\n"
          (v.Ssta.va_err_mean *. 100.)
          (v.Ssta.va_err_p3 *. 100.)
          (v.Ssta.va_err_m3 *. 100.)
          (v.Ssta.va_mc_seconds /. Float.max 1e-9 v.Ssta.va_ssta_seconds)
      end
  in
  let term =
    Term.(
      const run $ vdd_arg $ library_arg $ circuit_arg $ verilog_arg $ sigma_arg
      $ mc_arg 0 $ coeffs_arg $ jobs_arg $ kernel_arg $ sampling_arg $ rtol_arg
      $ batch_arg $ no_bit_identical_arg $ engine_arg $ max_arg $ period_arg
      $ provider_cache_arg $ metrics_arg $ trace_arg $ progress_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Statistical path analysis of a circuit with the N-sigma model \
             (optionally verified by path Monte-Carlo).")
    term

(* ---- retime ---- *)

let retime_cmd =
  let circuit_arg =
    let doc = "Built-in benchmark circuit name (c432..c7552, ADD, SUB, MUL, DIV)." in
    Arg.(value & opt (some string) None & info [ "circuit"; "c" ] ~docv:"NAME" ~doc)
  in
  let verilog_arg =
    let doc = "Verilog-lite netlist file to analyse instead of a benchmark." in
    Arg.(value & opt (some string) None & info [ "verilog" ] ~docv:"FILE" ~doc)
  in
  let edits_arg =
    let doc =
      "JSON-lines edit script: one edit object per line, e.g. \
       {\"op\": \"swap_cell\", \"gate\": \"g42\", \"cell\": \"NAND2X4\"}, \
       {\"op\": \"scale_wire\", \"net\": \"n17\", \"r\": 1.25, \"c\": 0.8} or \
       {\"op\": \"bump_sink_load\", \"net\": \"n17\", \"sink\": 0, \
       \"delta_ff\": 1.5}.  Blank lines and lines starting with $(b,#) are \
       skipped."
    in
    Arg.(required & opt (some string) None & info [ "edits" ] ~docv:"FILE" ~doc)
  in
  let max_arg =
    let doc = "Statistical max operator: $(b,clark) or $(b,moment)." in
    Arg.(
      value
      & opt (enum [ ("clark", Stat_max.Clark); ("moment", Stat_max.Moment) ])
          Stat_max.Clark
      & info [ "max" ] ~docv:"NAME" ~doc)
  in
  let period_arg =
    let doc =
      "Clock period (ps) for the slack report.  Default: the baseline's \
       worst +3$(b,σ) arrival, so deltas read against a zero-WNS start."
    in
    Arg.(value & opt (some float) None & info [ "period" ] ~docv:"PS" ~doc)
  in
  (* Read the JSON-lines edit script, keeping source line numbers for
     error messages; validation errors surface as path:lineno: msg. *)
  let read_edits nl path =
    let ic =
      try open_in path
      with Sys_error msg ->
        raise (Cli_error (Printf.sprintf "cannot read edit script: %s" msg))
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let edits = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         let t = String.trim line in
         if t <> "" && t.[0] <> '#' then
           match Edit.of_json nl t with
           | e -> edits := (!lineno, e) :: !edits
           | exception Edit.Edit_error msg ->
             raise (Cli_error (Printf.sprintf "%s:%d: %s" path !lineno msg))
       done
     with End_of_file -> ());
    List.rev !edits
  in
  let run vdd library circuit verilog edits_file jobs maxop period
      provider_cache metrics trace progress =
    setup_obs ~metrics ~trace ~progress ();
    (match period with
    | Some p when p <= 0.0 ->
      failwith (Printf.sprintf "--period must be positive (got %g ps)" p)
    | _ -> ());
    let tech = tech_of_vdd vdd in
    let exec = exec_of_jobs jobs in
    let lib =
      Metrics.span "cli.load_library" (fun () -> Library.load tech library)
    in
    let nl =
      match (circuit, verilog) with
      | Some name, _ -> (
        match Bm.find name with
        | bm -> bm.Bm.generate ()
        | exception Not_found ->
          failwith
            (Printf.sprintf "unknown circuit %S (available: %s)" name
               (String.concat ", " (List.map (fun b -> b.Bm.name) Bm.all))))
      | None, Some file -> V.read_file file
      | None, None -> failwith "pass --circuit or --verilog"
    in
    Printf.printf "%s\n%!" (N.stats nl);
    let edits = read_edits nl edits_file in
    let design = Design.attach_parasitics tech nl in
    let config = { Ssta.op = maxop; corr = Ssta.Tracked } in
    let handle =
      Metrics.span "cli.ssta_provider" (fun () ->
          Ssta.lvf_handle ~exec ?store_dir:(store_dir_of provider_cache) tech
            lib design)
    in
    let inc = Incremental.init ~config tech handle design in
    let summary report period =
      let worst = Ssta.circuit_dist report in
      let slack = Timing_report.of_ssta ~period report in
      ( worst.Ssta.d_mean,
        Ssta.quantile worst ~sigma:3.0,
        slack.Timing_report.s_wns,
        slack.Timing_report.s_tns )
    in
    let base = Incremental.report inc in
    let base_q3 = Ssta.quantile (Ssta.circuit_dist base) ~sigma:3.0 in
    let period =
      match period with Some ps -> ps *. 1e-12 | None -> base_q3
    in
    let mu0, q30, wns0, tns0 = summary base period in
    Printf.printf
      "baseline (%s max): mu=%.1f ps, +3σ=%.1f ps, WNS=%.1f ps, TNS=%.1f ps\n%!"
      (Stat_max.operator_name maxop) (mu0 *. 1e12) (q30 *. 1e12)
      (wns0 *. 1e12) (tns0 *. 1e12);
    let prev = ref (mu0, q30, wns0, tns0) in
    List.iteri
      (fun i (lineno, edit) ->
        (* Describe before applying: a swap reads the current cell. *)
        let described = Edit.describe nl edit in
        let stats =
          match Incremental.apply inc edit with
          | s -> s
          | exception Edit.Edit_error msg ->
            raise
              (Cli_error (Printf.sprintf "%s:%d: %s" edits_file lineno msg))
        in
        let mu, q3, wns, tns = summary (Incremental.report inc) period in
        let pmu, pq3, pwns, ptns = !prev in
        prev := (mu, q3, wns, tns);
        Printf.printf
          "edit %d: %s\n  Δmu=%+.2f ps  Δ+3σ=%+.2f ps  ΔWNS=%+.2f ps  \
           ΔTNS=%+.2f ps  (%d nets invalidated, %d gates re-timed, %d \
           cutoffs, %.2f ms)\n%!"
          (i + 1) described
          ((mu -. pmu) *. 1e12)
          ((q3 -. pq3) *. 1e12)
          ((wns -. pwns) *. 1e12)
          ((tns -. ptns) *. 1e12)
          stats.Incremental.st_invalidated stats.Incremental.st_dirty
          stats.Incremental.st_cutoffs
          (stats.Incremental.st_seconds *. 1e3))
      edits;
    let mu, q3, wns, tns = summary (Incremental.report inc) period in
    Printf.printf
      "after %d edits: mu=%.1f ps (%+.2f), +3σ=%.1f ps (%+.2f), WNS=%.1f \
       ps, TNS=%.1f ps\n"
      (List.length edits) (mu *. 1e12)
      ((mu -. mu0) *. 1e12)
      (q3 *. 1e12)
      ((q3 -. q30) *. 1e12)
      (wns *. 1e12) (tns *. 1e12)
  in
  let term =
    Term.(
      const run $ vdd_arg $ library_arg $ circuit_arg $ verilog_arg $ edits_arg
      $ jobs_arg $ max_arg $ period_arg $ provider_cache_arg $ metrics_arg
      $ trace_arg $ progress_arg)
  in
  Cmd.v
    (Cmd.info "retime"
       ~doc:"Apply a JSON-lines edit script to a circuit, re-timing only each \
             edit's fan-out cone (bitwise identical to from-scratch SSTA).")
    term

(* ---- report ---- *)

let report_cmd =
  let run vdd library metrics trace progress =
    setup_obs ~metrics ~trace ~progress ();
    let tech = tech_of_vdd vdd in
    let lib = Library.load tech library in
    Printf.printf "library %s at %.2f V: %d tables\n" library vdd
      (List.length (Library.cells lib));
    Printf.printf "%-10s %5s | %9s %9s %8s %8s\n" "cell" "edge" "mu(ps)"
      "sigma(ps)" "gamma" "kappa";
    List.iter
      (fun (cell, edge) ->
        let table = Library.find lib cell ~edge in
        let p = Ch.point_at table ~slew:Ch.reference_slew ~load:Ch.reference_load in
        let m = p.Ch.moments in
        Printf.printf "%-10s %5s | %9.2f %9.2f %8.3f %8.3f\n" (Cell.name cell)
          (match edge with `Rise -> "rise" | `Fall -> "fall")
          (m.Moments.mean *. 1e12) (m.Moments.std *. 1e12) m.Moments.skewness
          m.Moments.kurtosis)
      (Library.cells lib)
  in
  let term =
    Term.(
      const run $ vdd_arg $ library_arg $ metrics_arg $ trace_arg
      $ progress_arg)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Print the reference-condition moments of a library.")
    term

(* ---- serve / query ---- *)

let socket_arg =
  let doc = "Unix-domain socket path the server listens on." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let framing_conv =
  Arg.enum [ ("jsonl", Sproto.Jsonl); ("length", Sproto.Length_prefixed) ]

let framing_arg =
  let doc =
    "Wire framing: $(b,jsonl) (newline-delimited JSON, the default) or \
     $(b,length) (netstring-style length prefixes) — the same codec \
     either way."
  in
  Arg.(value & opt framing_conv Sproto.Jsonl & info [ "framing" ] ~docv:"NAME" ~doc)

let max_contexts_arg =
  let doc =
    "Retained per-(circuit, engine config) analysis contexts kept hot in \
     the LRU cache.  Each SSTA context holds a full report plus the \
     provider's per-net state, so size this to the working set."
  in
  Arg.(value & opt int 8 & info [ "max-contexts" ] ~docv:"N" ~doc)

let store_max_mb_arg =
  let doc =
    "Prune the provider store to at most $(docv) megabytes after each \
     context build (oldest artifacts evicted first), so a long-lived \
     server's on-disk cache cannot grow without bound.  Off by default."
  in
  Arg.(value & opt (some int) None & info [ "store-max-mb" ] ~docv:"MB" ~doc)

let server_config vdd library jobs max_contexts provider_cache store_max_mb =
  if max_contexts < 1 then
    raise
      (Cli_error
         (Printf.sprintf "--max-contexts must be positive (got %d)"
            max_contexts));
  (match store_max_mb with
  | Some mb when mb < 0 ->
    raise
      (Cli_error
         (Printf.sprintf "--store-max-mb must be non-negative (got %d)" mb))
  | _ -> ());
  let tech = tech_of_vdd vdd in
  let exec = exec_of_jobs jobs in
  let lib =
    Metrics.span "cli.load_library" (fun () -> Library.load tech library)
  in
  {
    (Server.default_config tech lib) with
    Server.exec_provider = exec;
    exec_mc = exec;
    max_contexts;
    store_dir = store_dir_of provider_cache;
    store_max_bytes = Option.map (fun mb -> mb * 1024 * 1024) store_max_mb;
  }

let serve_cmd =
  let run vdd library socket framing jobs max_contexts provider_cache
      store_max_mb metrics trace progress =
    setup_obs ~metrics ~trace ~progress ();
    let cfg =
      server_config vdd library jobs max_contexts provider_cache store_max_mb
    in
    let server = Server.create cfg in
    Printf.printf "nsigma server: listening on %s (%s framing)\n%!" socket
      (Sproto.framing_name framing);
    Server.run server ~socket ~framing ();
    Printf.printf "nsigma server: drained, bye\n%!"
  in
  let term =
    Term.(
      const run $ vdd_arg $ library_arg $ socket_arg $ framing_arg $ jobs_arg
      $ max_contexts_arg $ provider_cache_arg $ store_max_mb_arg $ metrics_arg
      $ trace_arg $ progress_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-lived timing server on a Unix-domain socket: characterized \
             library, fitted model and per-circuit analysis contexts stay hot \
             across JSON-lines queries; SIGTERM drains gracefully.")
    term

let query_cmd =
  let socket_opt_arg =
    let doc =
      "Connect to a running server at $(docv) and replay the queries \
       through it."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let oneshot_arg =
    let doc =
      "Answer the queries in-process instead of over a socket: load the \
       library, build contexts, serve, exit.  Runs the exact server \
       dispatch code, so its output is the cold-process reference a warm \
       server must match byte for byte."
    in
    Arg.(value & flag & info [ "oneshot" ] ~doc)
  in
  let file_arg =
    let doc =
      "JSON-lines query file, one request object per line ($(b,-) or \
       omitted: stdin).  Blank lines and lines starting with $(b,#) are \
       skipped."
    in
    Arg.(value & opt string "-" & info [ "file"; "f" ] ~docv:"FILE" ~doc)
  in
  let read_queries spec =
    let ic =
      if spec = "-" then stdin
      else
        try open_in spec
        with Sys_error msg ->
          raise (Cli_error (Printf.sprintf "cannot read query file: %s" msg))
    in
    Fun.protect
      ~finally:(fun () -> if spec <> "-" then close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" && line.[0] <> '#' then lines := line :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  in
  let run vdd library socket oneshot file framing jobs max_contexts
      provider_cache store_max_mb metrics trace progress =
    setup_obs ~metrics ~trace ~progress ();
    let queries = read_queries file in
    match (socket, oneshot) with
    | Some _, true ->
      raise (Cli_error "--socket and --oneshot are mutually exclusive")
    | None, false -> raise (Cli_error "pass --socket PATH or --oneshot")
    | Some socket, false ->
      let client =
        try Sclient.connect ~framing ~retries:100 ~socket ()
        with Unix.Unix_error (e, _, _) ->
          raise
            (Cli_error
               (Printf.sprintf "cannot connect to %s: %s" socket
                  (Unix.error_message e)))
      in
      Fun.protect
        ~finally:(fun () -> Sclient.close client)
        (fun () ->
          List.iter
            (fun q -> print_endline (Sclient.request client q))
            queries)
    | None, true ->
      (match library with
      | Some library ->
        let cfg =
          server_config vdd library jobs max_contexts provider_cache
            store_max_mb
        in
        let server = Server.create cfg in
        List.iter
          (fun q -> print_endline (Server.handle server ~session:0 q))
          queries
      | None -> raise (Cli_error "--oneshot requires --library"))
  in
  let library_opt_arg =
    let doc = "Characterised library file (.lvf), required with --oneshot." in
    Arg.(
      value & opt (some string) None & info [ "library"; "l" ] ~docv:"FILE" ~doc)
  in
  let term =
    Term.(
      const run $ vdd_arg $ library_opt_arg $ socket_opt_arg $ oneshot_arg
      $ file_arg $ framing_arg $ jobs_arg $ max_contexts_arg
      $ provider_cache_arg $ store_max_mb_arg $ metrics_arg $ trace_arg
      $ progress_arg)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send JSON-lines timing queries to a running server ($(b,--socket)) \
             or answer them in a cold one-shot process ($(b,--oneshot)) — the \
             bit-identity reference for served results.")
    term

let main_cmd =
  let doc = "N-sigma statistical delay calibration (DATE 2023 reproduction)" in
  let info = Cmd.info "nsigma" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ characterize_cmd; fit_cmd; analyze_cmd; retime_cmd; report_cmd;
      serve_cmd; query_cmd ]

let () =
  match Cmd.eval ~catch:false main_cmd with
  | code -> exit code
  | exception Cli_error msg ->
    Printf.eprintf "nsigma: %s\n" msg;
    exit 2
  | exception Failure msg ->
    Printf.eprintf "nsigma: %s\n" msg;
    exit 1
