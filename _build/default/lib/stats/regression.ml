type fit = { coeffs : float array; r2 : float; residual_std : float }

let fit ~design ~target =
  let n = Array.length design in
  if n = 0 then invalid_arg "Regression.fit: empty design";
  if Array.length target <> n then
    invalid_arg "Regression.fit: design/target size mismatch";
  let k = Array.length design.(0) in
  if k = 0 then invalid_arg "Regression.fit: no features";
  (* Normal equations: XᵀX β = Xᵀ y. *)
  let xtx = Linalg.make k k and xty = Array.make k 0.0 in
  Array.iteri
    (fun row x ->
      if Array.length x <> k then invalid_arg "Regression.fit: ragged design";
      let y = target.(row) in
      for i = 0 to k - 1 do
        xty.(i) <- xty.(i) +. (x.(i) *. y);
        for j = 0 to k - 1 do
          xtx.(i).(j) <- xtx.(i).(j) +. (x.(i) *. x.(j))
        done
      done)
    design;
  let coeffs =
    try Linalg.solve_spd xtx xty
    with Failure _ ->
      (* Rank-deficient design (e.g. a constant feature over the grid):
         regularise just enough to pick the minimum-norm-ish solution. *)
      let ridge = 1e-9 *. (1.0 +. Float.abs xtx.(0).(0)) in
      for i = 0 to k - 1 do
        xtx.(i).(i) <- xtx.(i).(i) +. ridge
      done;
      Linalg.solve_spd xtx xty
  in
  let mean_y = Array.fold_left ( +. ) 0.0 target /. float_of_int n in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  Array.iteri
    (fun row x ->
      let pred = Linalg.dot coeffs x in
      let dy = target.(row) -. mean_y in
      let e = target.(row) -. pred in
      ss_tot := !ss_tot +. (dy *. dy);
      ss_res := !ss_res +. (e *. e))
    design;
  let r2 = if !ss_tot = 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot) in
  { coeffs; r2; residual_std = sqrt (!ss_res /. float_of_int n) }

let predict f x = Linalg.dot f.coeffs x

let fit_with_intercept ~features ~target =
  let design =
    Array.map (fun row -> Array.append [| 1.0 |] row) features
  in
  fit ~design ~target

let polynomial_features ~degree x =
  let out = Array.make (degree + 1) 1.0 in
  for i = 1 to degree do
    out.(i) <- out.(i - 1) *. x
  done;
  out

let polyfit ~degree ~xs ~ys =
  let design = Array.map (polynomial_features ~degree) xs in
  fit ~design ~target:ys

let polyval coeffs x =
  (* Horner, constant-first layout. *)
  let acc = ref 0.0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := (!acc *. x) +. coeffs.(i)
  done;
  !acc
