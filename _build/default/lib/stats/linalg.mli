(** Small dense linear algebra for regression and circuit solvers.

    Matrices are [float array array] in row-major form.  Sizes in this
    library are tiny (regression design matrices, nodal RC systems of a few
    hundred nodes), so simple O(n³) direct methods are the right tool. *)

type mat = float array array
type vec = float array

val make : int -> int -> mat
(** Zero matrix with the given rows × cols. *)

val identity : int -> mat

val dims : mat -> int * int
(** (rows, cols); the matrix must be rectangular. *)

val transpose : mat -> mat
val matmul : mat -> mat -> mat
val matvec : mat -> vec -> vec
val dot : vec -> vec -> float

val solve : mat -> vec -> vec
(** [solve a b] solves [a x = b] by LU decomposition with partial
    pivoting; [a] and [b] are not modified.
    @raise Failure if the matrix is singular to working precision. *)

val cholesky : mat -> mat
(** Lower-triangular Cholesky factor of a symmetric positive-definite
    matrix. @raise Failure if not positive definite. *)

val solve_spd : mat -> vec -> vec
(** Solve a symmetric positive-definite system via {!cholesky}; this is
    the path used by least-squares normal equations. *)

type lu
(** Reusable LU factorisation with partial pivoting. *)

val lu_factor : mat -> lu
(** Factor a square matrix once; the input is not modified.
    @raise Failure if singular to working precision. *)

val lu_solve : lu -> vec -> vec
(** Solve against a previously computed factorisation — the inner loop of
    the backward-Euler RC transient engine, where the system matrix is
    constant across timesteps. *)

val tridiag_solve : diag:vec -> lower:vec -> upper:vec -> vec -> vec
(** Thomas algorithm for tridiagonal systems — the shape produced by
    backward-Euler integration of RC ladder sections.  [lower] and [upper]
    have length n−1. @raise Failure on a zero pivot. *)
