module Normal = struct
  type t = { mu : float; sigma : float }

  let pdf t x = Special.normal_pdf ((x -. t.mu) /. t.sigma) /. t.sigma
  let cdf t x = Special.normal_cdf ((x -. t.mu) /. t.sigma)
  let quantile t p = t.mu +. (t.sigma *. Special.normal_quantile p)
  let sample t g = Rng.gaussian_mu_sigma g ~mu:t.mu ~sigma:t.sigma
  let fit_moments (s : Moments.summary) = { mu = s.mean; sigma = s.std }
end

module Lognormal = struct
  type t = { mu : float; sigma : float }

  let pdf t x =
    if x <= 0.0 then 0.0
    else Special.normal_pdf ((log x -. t.mu) /. t.sigma) /. (x *. t.sigma)

  let cdf t x =
    if x <= 0.0 then 0.0 else Special.normal_cdf ((log x -. t.mu) /. t.sigma)

  let quantile t p = exp (t.mu +. (t.sigma *. Special.normal_quantile p))
  let sample t g = Rng.lognormal g ~mu:t.mu ~sigma:t.sigma

  let fit_moments (s : Moments.summary) =
    if s.mean <= 0.0 then invalid_arg "Lognormal.fit_moments: mean <= 0";
    let cv = s.std /. s.mean in
    let sigma2 = log1p (cv *. cv) in
    { mu = log s.mean -. (0.5 *. sigma2); sigma = sqrt sigma2 }

  let mean t = exp (t.mu +. (0.5 *. t.sigma *. t.sigma))

  let std t =
    let s2 = t.sigma *. t.sigma in
    mean t *. sqrt (exp s2 -. 1.0)

  let skewness t =
    let w = exp (t.sigma *. t.sigma) in
    (w +. 2.0) *. sqrt (w -. 1.0)
end

module Skew_normal = struct
  type t = { location : float; scale : float; shape : float }

  let pdf t x =
    let z = (x -. t.location) /. t.scale in
    2.0 /. t.scale *. Special.normal_pdf z *. Special.normal_cdf (t.shape *. z)

  let cdf t x =
    let z = (x -. t.location) /. t.scale in
    Special.normal_cdf z -. (2.0 *. Special.owen_t z t.shape)

  let sample t g =
    (* Azzalini's representation: if (u0,u1) are standard bivariate normal
       with correlation δ, then u1 conditioned on sign of u0 is SN. *)
    let delta = t.shape /. sqrt (1.0 +. (t.shape *. t.shape)) in
    let u0 = Rng.gaussian g and v = Rng.gaussian g in
    let u1 = (delta *. u0) +. (sqrt (1.0 -. (delta *. delta)) *. v) in
    let z = if u0 >= 0.0 then u1 else -.u1 in
    t.location +. (t.scale *. z)

  let delta t = t.shape /. sqrt (1.0 +. (t.shape *. t.shape))

  let mean t = t.location +. (t.scale *. delta t *. sqrt (2.0 /. Float.pi))

  let std t =
    let d = delta t in
    t.scale *. sqrt (1.0 -. (2.0 *. d *. d /. Float.pi))

  let skewness t =
    let d = delta t in
    let b = d *. sqrt (2.0 /. Float.pi) in
    (4.0 -. Float.pi) /. 2.0 *. (b ** 3.0) /. ((1.0 -. (b *. b)) ** 1.5)

  (* Maximum |skewness| the family can represent (δ → ±1). *)
  let max_abs_skewness = 0.9952717
  let max_delta = 0.9999

  let fit_moments (s : Moments.summary) =
    let g1 = Float.max (-.max_abs_skewness) (Float.min max_abs_skewness s.skewness) in
    let sign = if g1 < 0.0 then -1.0 else 1.0 in
    let a = Float.abs g1 ** (2.0 /. 3.0) in
    let b = ((4.0 -. Float.pi) /. 2.0) ** (2.0 /. 3.0) in
    let delta =
      if g1 = 0.0 then 0.0
      else sign *. Float.min max_delta (sqrt (Float.pi /. 2.0 *. (a /. (a +. b))))
    in
    let shape =
      if Float.abs delta >= 1.0 then infinity
      else delta /. sqrt (1.0 -. (delta *. delta))
    in
    let ez = delta *. sqrt (2.0 /. Float.pi) in
    let scale = s.std /. sqrt (Float.max 1e-12 (1.0 -. (ez *. ez))) in
    let location = s.mean -. (scale *. ez) in
    { location; scale; shape }

  let quantile t p =
    if not (p > 0.0 && p < 1.0) then
      invalid_arg "Skew_normal.quantile: probability outside (0,1)";
    (* Bracket around the Gaussian guess, then bisect on the CDF. *)
    let guess = t.location +. (t.scale *. Special.normal_quantile p) in
    let width = 8.0 *. t.scale in
    let lo = ref (guess -. width) and hi = ref (guess +. width) in
    while cdf t !lo > p do
      lo := !lo -. width
    done;
    while cdf t !hi < p do
      hi := !hi +. width
    done;
    Optimize.bisect ~f:(fun x -> cdf t x -. p) ~lo:!lo ~hi:!hi ~tol:1e-12 ()
end

module Log_skew_normal = struct
  type t = { log_sn : Skew_normal.t }

  let pdf t x = if x <= 0.0 then 0.0 else Skew_normal.pdf t.log_sn (log x) /. x
  let cdf t x = if x <= 0.0 then 0.0 else Skew_normal.cdf t.log_sn (log x)
  let quantile t p = exp (Skew_normal.quantile t.log_sn p)
  let sample t g = exp (Skew_normal.sample t.log_sn g)

  let fit_samples xs =
    if Array.exists (fun x -> x <= 0.0) xs then
      invalid_arg "Log_skew_normal.fit_samples: non-positive sample";
    let logs = Array.map log xs in
    { log_sn = Skew_normal.fit_moments (Moments.summary_of_array logs) }

  (* E[exp(kY)] for Y skew-normal, from its moment generating function. *)
  let exp_raw_moment t k =
    let sn = t.log_sn in
    let kf = float_of_int k in
    let delta =
      sn.Skew_normal.shape /. sqrt (1.0 +. (sn.Skew_normal.shape *. sn.Skew_normal.shape))
    in
    2.0
    *. exp ((kf *. sn.Skew_normal.location)
            +. (kf *. kf *. sn.Skew_normal.scale *. sn.Skew_normal.scale /. 2.0))
    *. Special.normal_cdf (kf *. sn.Skew_normal.scale *. delta)

  let mean t = exp_raw_moment t 1

  let std t =
    let m1 = exp_raw_moment t 1 and m2 = exp_raw_moment t 2 in
    sqrt (Float.max 0.0 (m2 -. (m1 *. m1)))

  let skewness t =
    let m1 = exp_raw_moment t 1
    and m2 = exp_raw_moment t 2
    and m3 = exp_raw_moment t 3 in
    let var = Float.max 1e-300 (m2 -. (m1 *. m1)) in
    ((m3 -. (3.0 *. m1 *. m2) +. (2.0 *. m1 *. m1 *. m1)) /. (var ** 1.5))

  (* Match the linear-domain mean/std/skewness by searching over
     (log scale, atanh delta); the log-location then follows from the
     mean in closed form, so the search is 2-D and well-behaved. *)
  let fit_moments (m : Moments.summary) =
    if m.Moments.mean <= 0.0 then invalid_arg "Log_skew_normal.fit_moments: mean <= 0";
    let target_cv = m.Moments.std /. m.Moments.mean in
    let target_skew = m.Moments.skewness in
    let build v =
      let scale = exp v.(0) in
      let delta = tanh v.(1) in
      let shape =
        if Float.abs delta >= 0.9999 then 1e4 *. (if delta < 0.0 then -1.0 else 1.0)
        else delta /. sqrt (1.0 -. (delta *. delta))
      in
      (* location 0; rescale afterwards through the mean. *)
      { log_sn = { Skew_normal.location = 0.0; scale; shape } }
    in
    let objective v =
      let t = build v in
      let cv = std t /. mean t in
      let sk = skewness t in
      let e1 = (cv -. target_cv) /. Float.max 0.01 target_cv in
      let e2 = (sk -. target_skew) /. (1.0 +. Float.abs target_skew) in
      (e1 *. e1) +. (e2 *. e2)
    in
    let init = [| log (Float.max 0.05 target_cv); 0.5 |] in
    let best, _ = Optimize.nelder_mead ~max_iter:3000 ~f:objective ~init ~step:0.5 () in
    let t0 = build best in
    (* Shift the location so the mean matches exactly. *)
    let location = log (m.Moments.mean /. mean t0) in
    { log_sn = { t0.log_sn with Skew_normal.location } }
end

module Burr_xii = struct
  type t = { lambda : float; c : float; k : float }

  let pdf t x =
    if x <= 0.0 then 0.0
    else begin
      let z = x /. t.lambda in
      t.c *. t.k /. t.lambda
      *. (z ** (t.c -. 1.0))
      *. ((1.0 +. (z ** t.c)) ** (-.t.k -. 1.0))
    end

  let cdf t x =
    if x <= 0.0 then 0.0
    else 1.0 -. ((1.0 +. ((x /. t.lambda) ** t.c)) ** -.t.k)

  let quantile t p =
    if not (p >= 0.0 && p < 1.0) then
      invalid_arg "Burr_xii.quantile: probability outside [0,1)";
    t.lambda *. ((((1.0 -. p) ** (-1.0 /. t.k)) -. 1.0) ** (1.0 /. t.c))

  let sample t g = quantile t (Rng.uniform g)

  let raw_moment t r =
    let rf = float_of_int r in
    if t.c *. t.k <= rf then
      invalid_arg "Burr_xii.raw_moment: moment does not exist (ck <= r)";
    (t.lambda ** rf) *. t.k *. Special.beta (t.k -. (rf /. t.c)) (1.0 +. (rf /. t.c))

  let fit_quantiles targets =
    let median =
      match List.find_opt (fun (p, _) -> Float.abs (p -. 0.5) < 0.05) targets with
      | Some (_, q) -> q
      | None -> (match targets with (_, q) :: _ -> q | [] ->
          invalid_arg "Burr_xii.fit_quantiles: empty target list")
    in
    if median <= 0.0 then invalid_arg "Burr_xii.fit_quantiles: non-positive median";
    (* Optimise log-parameters so positivity is automatic. *)
    let objective v =
      let lambda = exp v.(0) and c = exp v.(1) and k = exp v.(2) in
      let t = { lambda; c; k } in
      List.fold_left
        (fun acc (p, q) ->
          if q <= 0.0 then acc
          else begin
            let m = quantile t p in
            let rel = (m -. q) /. q in
            acc +. (rel *. rel)
          end)
        0.0 targets
    in
    let init = [| log median; log 4.0; log 1.0 |] in
    let best, _ = Optimize.nelder_mead ~f:objective ~init ~step:0.4 () in
    { lambda = exp best.(0); c = exp best.(1); k = exp best.(2) }

  let fit_samples xs =
    if Array.length xs < 8 then invalid_arg "Burr_xii.fit_samples: too few samples";
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let probs =
      List.map
        (fun n -> Quantile.probability_of_sigma (float_of_int n))
        Quantile.sigma_levels
    in
    fit_quantiles (List.map (fun p -> (p, Quantile.of_sorted sorted p)) probs)
end
