(** Derivative-free optimisation and root finding.

    Used to fit the Burr-XII baseline (whose parameters have no closed
    moment inversion) and to invert distribution CDFs into quantiles. *)

val nelder_mead :
  ?max_iter:int ->
  ?tol:float ->
  f:(float array -> float) ->
  init:float array ->
  ?step:float ->
  unit ->
  float array * float
(** [nelder_mead ~f ~init ()] minimises [f] starting from a simplex built
    around [init] with relative size [step] (default 0.1).  Returns the
    best point and its value.  Standard reflection/expansion/contraction/
    shrink coefficients (1, 2, 0.5, 0.5). *)

val bisect :
  ?max_iter:int ->
  ?tol:float ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** Root of a continuous scalar function by bisection.
    @raise Invalid_argument if [f lo] and [f hi] have the same sign. *)

val golden_section :
  ?max_iter:int ->
  ?tol:float ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** Minimiser of a unimodal function on \[lo, hi\]. *)
