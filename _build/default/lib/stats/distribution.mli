(** Parametric distributions for delay modelling.

    {!Skew_normal} / {!Log_skew_normal} back the LSN baseline of
    Balef et al. [12]; {!Burr_xii} backs the Burr baseline of
    Moshrefi et al. [13]; {!Normal} and {!Lognormal} are used for
    synthetic-data generation and for the Gaussian ±nσ convention. *)

module Normal : sig
  type t = { mu : float; sigma : float }

  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val quantile : t -> float -> float
  val sample : t -> Rng.t -> float
  val fit_moments : Moments.summary -> t
end

module Lognormal : sig
  type t = { mu : float; sigma : float }
  (** Parameters of the underlying normal of [log X]. *)

  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val quantile : t -> float -> float
  val sample : t -> Rng.t -> float

  val fit_moments : Moments.summary -> t
  (** Match mean and variance: σ² = log(1 + cv²), μ = log m − σ²/2. *)

  val mean : t -> float
  val std : t -> float
  val skewness : t -> float
end

module Skew_normal : sig
  type t = { location : float; scale : float; shape : float }
  (** Azzalini's skew-normal: location ξ, scale ω > 0, shape α. *)

  val pdf : t -> float -> float

  val cdf : t -> float -> float
  (** Φ(z) − 2·T(z, α) with Owen's T. *)

  val quantile : t -> float -> float
  (** By bracketed bisection on the CDF. *)

  val sample : t -> Rng.t -> float

  val mean : t -> float
  val std : t -> float
  val skewness : t -> float

  val fit_moments : Moments.summary -> t
  (** Method of moments.  The skew-normal family only reaches
      |γ| < 0.9953; larger sample skewness is clamped to the boundary,
      which is exactly the known failure mode of SN fits on heavy-tailed
      near-threshold delays. *)

  val max_abs_skewness : float
end

module Log_skew_normal : sig
  type t = { log_sn : Skew_normal.t }
  (** X = exp Y with Y skew-normal — the LSN model of [12]. *)

  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val quantile : t -> float -> float
  val sample : t -> Rng.t -> float

  val fit_samples : float array -> t
  (** Fit by taking logs and moment-matching the skew-normal, as the LSN
      paper does.  @raise Invalid_argument on non-positive samples. *)

  val exp_raw_moment : t -> int -> float
  (** E[X^k] for X = exp(Y), from the skew-normal moment generating
      function M(t) = 2·exp(ξt + ω²t²/2)·Φ(ωδt). *)

  val mean : t -> float
  val std : t -> float
  val skewness : t -> float

  val fit_moments : Moments.summary -> t
  (** Fit (ξ, ω, α) so the {e linear-domain} mean, std and skewness match
      the given summary — how the LSN model is deployed from LVF-style
      moment tables, where raw samples are no longer available.  Uses
      Nelder-Mead on the closed-form moments. *)
end

module Burr_xii : sig
  type t = { lambda : float; c : float; k : float }
  (** Burr type-XII with scale λ and shapes c, k (all > 0):
      F(x) = 1 − (1 + (x/λ)^c)^(−k). *)

  val pdf : t -> float -> float
  val cdf : t -> float -> float
  val quantile : t -> float -> float
  val sample : t -> Rng.t -> float

  val raw_moment : t -> int -> float
  (** E[X^r] = λ^r · k · B(k − r/c, 1 + r/c); requires ck > r.
      @raise Invalid_argument when the moment does not exist. *)

  val fit_quantiles : (float * float) list -> t
  (** Fit (λ, c, k) by minimising squared relative error against the
      given (probability, quantile) targets (Nelder-Mead) — the form used
      when only characterised quantiles (not raw samples) are available. *)

  val fit_samples : float array -> t
  (** {!fit_quantiles} against the empirical sigma-level quantiles of a
      sample, which mirrors how [13] deploys the Burr model. *)
end
