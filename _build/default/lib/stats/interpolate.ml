let linear ~x0 ~y0 ~x1 ~y1 x =
  if x1 = x0 then y0 else y0 +. ((x -. x0) *. (y1 -. y0) /. (x1 -. x0))

module Grid2d = struct
  type t = { xs : float array; ys : float array; values : float array array }

  let check_increasing name a =
    for i = 1 to Array.length a - 1 do
      if a.(i) <= a.(i - 1) then
        invalid_arg (Printf.sprintf "Grid2d: %s axis not strictly increasing" name)
    done

  let create ~xs ~ys ~values =
    if Array.length xs = 0 || Array.length ys = 0 then
      invalid_arg "Grid2d.create: empty axis";
    check_increasing "x" xs;
    check_increasing "y" ys;
    if Array.length values <> Array.length xs then
      invalid_arg "Grid2d.create: row count mismatch";
    Array.iter
      (fun row ->
        if Array.length row <> Array.length ys then
          invalid_arg "Grid2d.create: column count mismatch")
      values;
    { xs; ys; values }

  (* Segment index such that axis.(i) <= v <= axis.(i+1), clamped. *)
  let segment axis v =
    let n = Array.length axis in
    if n = 1 || v <= axis.(0) then 0
    else if v >= axis.(n - 1) then max 0 (n - 2)
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if axis.(mid) <= v then lo := mid else hi := mid
      done;
      !lo
    end

  let frac axis i v =
    let n = Array.length axis in
    if n = 1 then 0.0
    else begin
      let a = axis.(i) and b = axis.(min (i + 1) (n - 1)) in
      if b = a then 0.0 else Float.max 0.0 (Float.min 1.0 ((v -. a) /. (b -. a)))
    end

  let eval t x y =
    let i = segment t.xs x and j = segment t.ys y in
    let fx = frac t.xs i x and fy = frac t.ys j y in
    let i1 = min (i + 1) (Array.length t.xs - 1) in
    let j1 = min (j + 1) (Array.length t.ys - 1) in
    let v00 = t.values.(i).(j)
    and v01 = t.values.(i).(j1)
    and v10 = t.values.(i1).(j)
    and v11 = t.values.(i1).(j1) in
    ((1.0 -. fx) *. (1.0 -. fy) *. v00)
    +. ((1.0 -. fx) *. fy *. v01)
    +. (fx *. (1.0 -. fy) *. v10)
    +. (fx *. fy *. v11)

  let xs t = t.xs
  let ys t = t.ys
  let values t = t.values
end

module Surface = struct
  type t = { features : float -> float -> float array; fit : Regression.fit }

  let bilinear_features ds dc = [| 1.0; ds; dc; ds *. dc |]

  let cubic_features ds dc =
    [| 1.0; ds; dc; ds *. ds; dc *. dc; ds *. ds *. ds; dc *. dc *. dc; ds *. dc |]

  let fit_features features ~points ~values =
    if Array.length points <> Array.length values then
      invalid_arg "Surface: points/values size mismatch";
    let design = Array.map (fun (ds, dc) -> features ds dc) points in
    { features; fit = Regression.fit ~design ~target:values }

  let fit_bilinear ~points ~values = fit_features bilinear_features ~points ~values
  let fit_cubic ~points ~values = fit_features cubic_features ~points ~values

  let eval t ds dc = Regression.predict t.fit (t.features ds dc)
  let coefficients t = t.fit.Regression.coeffs
  let r2 t = t.fit.Regression.r2
end
