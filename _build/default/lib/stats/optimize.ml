let nelder_mead ?(max_iter = 2000) ?(tol = 1e-10) ~f ~init ?(step = 0.1) () =
  let n = Array.length init in
  if n = 0 then invalid_arg "Optimize.nelder_mead: empty initial point";
  (* Build the initial simplex: init plus one perturbed vertex per axis. *)
  let vertex i =
    if i = 0 then Array.copy init
    else begin
      let v = Array.copy init in
      let j = i - 1 in
      let delta = if v.(j) = 0.0 then step else step *. Float.abs v.(j) in
      v.(j) <- v.(j) +. delta;
      v
    end
  in
  let simplex = Array.init (n + 1) vertex in
  let values = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun a b -> Float.compare values.(a) values.(b)) idx;
    idx
  in
  let centroid except =
    let c = Array.make n 0.0 in
    Array.iteri
      (fun i v ->
        if i <> except then
          for j = 0 to n - 1 do
            c.(j) <- c.(j) +. v.(j)
          done)
      simplex;
    Array.map (fun x -> x /. float_of_int n) c
  in
  let affine c x t = Array.init n (fun j -> c.(j) +. (t *. (x.(j) -. c.(j)))) in
  let iter = ref 0 in
  let continue = ref true in
  while !continue && !iter < max_iter do
    incr iter;
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
    if Float.abs (values.(worst) -. values.(best)) <= tol *. (1.0 +. Float.abs values.(best))
    then continue := false
    else begin
      let c = centroid worst in
      let xr = affine c simplex.(worst) (-1.0) in
      let fr = f xr in
      if fr < values.(best) then begin
        (* Try expansion. *)
        let xe = affine c simplex.(worst) (-2.0) in
        let fe = f xe in
        if fe < fr then begin
          simplex.(worst) <- xe;
          values.(worst) <- fe
        end
        else begin
          simplex.(worst) <- xr;
          values.(worst) <- fr
        end
      end
      else if fr < values.(second_worst) then begin
        simplex.(worst) <- xr;
        values.(worst) <- fr
      end
      else begin
        (* Contraction (outside if reflected point improved on the worst). *)
        let t = if fr < values.(worst) then -0.5 else 0.5 in
        let xc = affine c simplex.(worst) t in
        let fc = f xc in
        if fc < Float.min fr values.(worst) then begin
          simplex.(worst) <- xc;
          values.(worst) <- fc
        end
        else
          (* Shrink towards the best vertex. *)
          Array.iteri
            (fun i v ->
              if i <> best then begin
                let nv =
                  Array.init n (fun j ->
                      simplex.(best).(j) +. (0.5 *. (v.(j) -. simplex.(best).(j))))
                in
                simplex.(i) <- nv;
                values.(i) <- f nv
              end)
            simplex
      end
    end
  done;
  let idx = order () in
  (Array.copy simplex.(idx.(0)), values.(idx.(0)))

let bisect ?(max_iter = 200) ?(tol = 1e-12) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else begin
    if (flo > 0.0) = (fhi > 0.0) then
      invalid_arg "Optimize.bisect: endpoints do not bracket a root";
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let result = ref nan in
    (try
       for _ = 1 to max_iter do
         let mid = 0.5 *. (!lo +. !hi) in
         let fmid = f mid in
         if fmid = 0.0 || 0.5 *. (!hi -. !lo) < tol then begin
           result := mid;
           raise Exit
         end;
         if (fmid > 0.0) = (!flo > 0.0) then begin
           lo := mid;
           flo := fmid
         end
         else hi := mid
       done;
       result := 0.5 *. (!lo +. !hi)
     with Exit -> ());
    !result
  end

let golden_section ?(max_iter = 200) ?(tol = 1e-10) ~f ~lo ~hi () =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref lo and b = ref hi in
  let c = ref (!b -. (phi *. (!b -. !a))) in
  let d = ref (!a +. (phi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let i = ref 0 in
  while !b -. !a > tol && !i < max_iter do
    incr i;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (phi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (phi *. (!b -. !a));
      fd := f !d
    end
  done;
  0.5 *. (!a +. !b)
