lib/stats/interpolate.ml: Array Float Printf Regression
