lib/stats/special.mli:
