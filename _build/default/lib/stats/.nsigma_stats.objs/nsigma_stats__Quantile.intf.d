lib/stats/quantile.mli:
