lib/stats/linalg.ml: Array Float Fun
