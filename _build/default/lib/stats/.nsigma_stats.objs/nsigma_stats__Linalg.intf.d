lib/stats/linalg.mli:
