lib/stats/distribution.mli: Moments Rng
