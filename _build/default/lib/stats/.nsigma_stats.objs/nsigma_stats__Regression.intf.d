lib/stats/regression.mli:
