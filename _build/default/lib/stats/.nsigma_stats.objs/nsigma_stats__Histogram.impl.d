lib/stats/histogram.ml: Array Buffer Float Moments Special
