lib/stats/moments.ml: Array Format
