lib/stats/histogram.mli:
