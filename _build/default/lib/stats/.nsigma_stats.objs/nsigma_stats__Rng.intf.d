lib/stats/rng.mli:
