lib/stats/optimize.mli:
