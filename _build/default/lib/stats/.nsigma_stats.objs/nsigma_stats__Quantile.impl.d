lib/stats/quantile.ml: Array Float List Special
