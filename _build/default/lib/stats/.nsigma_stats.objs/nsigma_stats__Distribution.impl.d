lib/stats/distribution.ml: Array Float List Moments Optimize Quantile Rng Special
