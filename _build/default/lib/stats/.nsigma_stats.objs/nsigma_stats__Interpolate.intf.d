lib/stats/interpolate.mli:
