(** Streaming computation of the first four statistical moments.

    The N-sigma model of the paper is parameterised entirely by
    [μ, σ, γ (skewness), κ (kurtosis)] of a delay sample, so this module is
    the work-horse of characterisation.  Updates use the numerically stable
    one-pass formulas of Pébay (2008); accumulators can be merged, which
    lets Monte-Carlo batches be combined. *)

type t
(** Immutable accumulator of central moment sums. *)

type summary = {
  n : int;  (** sample count *)
  mean : float;  (** first moment μ *)
  std : float;  (** standard deviation σ (population) *)
  skewness : float;  (** third standardised moment γ *)
  kurtosis : float;  (** fourth standardised moment κ (Gaussian = 3) *)
}
(** The four moments the N-sigma model consumes. *)

val empty : t
(** Accumulator over zero samples. *)

val add : t -> float -> t
(** [add acc x] folds one observation into the accumulator. *)

val merge : t -> t -> t
(** Combine two accumulators as if their samples were concatenated. *)

val of_array : float array -> t
(** Accumulate a whole sample. *)

val count : t -> int
val mean : t -> float

val variance : t -> float
(** Population variance (divides by n). *)

val std : t -> float

val skewness : t -> float
(** 0 for symmetric data; > 0 for a right (long upper) tail.  Returns 0
    when σ = 0. *)

val kurtosis : t -> float
(** Standardised fourth moment; 3 for a Gaussian.  Returns 3 when σ = 0 so
    degenerate samples behave as "no excess tail". *)

val excess_kurtosis : t -> float
(** [kurtosis acc -. 3.0]. *)

val summary : t -> summary
(** All four moments at once. *)

val summary_of_array : float array -> summary

val pp_summary : Format.formatter -> summary -> unit
(** Render as [n=… μ=… σ=… γ=… κ=…]. *)
