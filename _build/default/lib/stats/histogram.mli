(** Histograms and kernel density estimates, used to render the PDF
    figures of the paper (Figs. 2, 3, 7, 8) as text plots and CSV-like
    series. *)

type t = {
  lo : float;  (** left edge of the first bin *)
  hi : float;  (** right edge of the last bin *)
  counts : int array;
  total : int;
}

val create : bins:int -> float array -> t
(** Equal-width histogram spanning the sample range.
    @raise Invalid_argument for an empty sample or [bins <= 0]. *)

val bin_width : t -> float

val density : t -> float array
(** Normalised bin heights (integrates to 1). *)

val bin_centers : t -> float array

val kde : ?bandwidth:float -> float array -> (float -> float)
(** Gaussian kernel density estimate.  Default bandwidth is Silverman's
    rule 1.06·σ·n^(−1/5). *)

val sparkline : ?width:int -> t -> string
(** Unicode block-character rendering of the histogram shape — enough to
    eyeball skew/tails in terminal output. *)
