type t = { lo : float; hi : float; counts : int array; total : int }

let create ~bins xs =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  let n = Array.length xs in
  if n = 0 then invalid_arg "Histogram.create: empty sample";
  let lo = Array.fold_left Float.min xs.(0) xs in
  let hi = Array.fold_left Float.max xs.(0) xs in
  let hi = if hi = lo then lo +. 1.0 else hi in
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = max 0 (min (bins - 1) b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  { lo; hi; counts; total = n }

let bin_width t = (t.hi -. t.lo) /. float_of_int (Array.length t.counts)

let density t =
  let w = bin_width t in
  let norm = 1.0 /. (float_of_int t.total *. w) in
  Array.map (fun c -> float_of_int c *. norm) t.counts

let bin_centers t =
  let w = bin_width t in
  Array.mapi (fun i _ -> t.lo +. (w *. (float_of_int i +. 0.5))) t.counts

let kde ?bandwidth xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Histogram.kde: empty sample";
  let s = Moments.summary_of_array xs in
  let h =
    match bandwidth with
    | Some h -> h
    | None ->
      let sigma = Float.max s.std 1e-300 in
      1.06 *. sigma *. (float_of_int n ** -0.2)
  in
  fun x ->
    let acc = ref 0.0 in
    Array.iter (fun xi -> acc := !acc +. Special.normal_pdf ((x -. xi) /. h)) xs;
    !acc /. (float_of_int n *. h)

let blocks = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 60) t =
  let bins = Array.length t.counts in
  let col i =
    (* Average the counts of the source bins that map onto column i. *)
    let from = i * bins / width and until = max (((i + 1) * bins / width) - 1) (i * bins / width) in
    let s = ref 0 and n = ref 0 in
    for b = from to min until (bins - 1) do
      s := !s + t.counts.(b);
      incr n
    done;
    if !n = 0 then 0.0 else float_of_int !s /. float_of_int !n
  in
  let cols = Array.init width col in
  let maxc = Array.fold_left Float.max 1e-9 cols in
  let buf = Buffer.create (width * 3) in
  Array.iter
    (fun c ->
      let level = int_of_float (Float.round (c /. maxc *. 8.0)) in
      Buffer.add_string buf blocks.(max 0 (min 8 level)))
    cols;
  Buffer.contents buf
