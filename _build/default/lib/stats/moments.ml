type t = {
  n : int;
  mean : float;
  m2 : float;  (* Σ (x-μ)² *)
  m3 : float;  (* Σ (x-μ)³ *)
  m4 : float;  (* Σ (x-μ)⁴ *)
}

type summary = {
  n : int;
  mean : float;
  std : float;
  skewness : float;
  kurtosis : float;
}

let empty = { n = 0; mean = 0.0; m2 = 0.0; m3 = 0.0; m4 = 0.0 }

(* Pébay's single-observation update of central moment sums. *)
let add (acc : t) x =
  let n1 = float_of_int acc.n in
  let n = acc.n + 1 in
  let nf = float_of_int n in
  let delta = x -. acc.mean in
  let delta_n = delta /. nf in
  let delta_n2 = delta_n *. delta_n in
  let term1 = delta *. delta_n *. n1 in
  let mean = acc.mean +. delta_n in
  let m4 =
    acc.m4
    +. (term1 *. delta_n2 *. ((nf *. nf) -. (3.0 *. nf) +. 3.0))
    +. (6.0 *. delta_n2 *. acc.m2)
    -. (4.0 *. delta_n *. acc.m3)
  in
  let m3 =
    acc.m3 +. (term1 *. delta_n *. (nf -. 2.0)) -. (3.0 *. delta_n *. acc.m2)
  in
  let m2 = acc.m2 +. term1 in
  { n; mean; m2; m3; m4 }

let merge (a : t) (b : t) =
  if a.n = 0 then b
  else if b.n = 0 then a
  else begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let n = a.n + b.n in
    let nf = na +. nb in
    let delta = b.mean -. a.mean in
    let delta2 = delta *. delta in
    let mean = a.mean +. (delta *. nb /. nf) in
    let m2 = a.m2 +. b.m2 +. (delta2 *. na *. nb /. nf) in
    let m3 =
      a.m3 +. b.m3
      +. (delta *. delta2 *. na *. nb *. (na -. nb) /. (nf *. nf))
      +. (3.0 *. delta *. ((na *. b.m2) -. (nb *. a.m2)) /. nf)
    in
    let m4 =
      a.m4 +. b.m4
      +. (delta2 *. delta2 *. na *. nb
          *. ((na *. na) -. (na *. nb) +. (nb *. nb))
          /. (nf *. nf *. nf))
      +. (6.0 *. delta2
          *. ((na *. na *. b.m2) +. (nb *. nb *. a.m2))
          /. (nf *. nf))
      +. (4.0 *. delta *. ((na *. b.m3) -. (nb *. a.m3)) /. nf)
    in
    { n; mean; m2; m3; m4 }
  end

let of_array xs = Array.fold_left add empty xs

let count (acc : t) = acc.n
let mean (acc : t) = acc.mean

let variance (acc : t) = if acc.n = 0 then 0.0 else acc.m2 /. float_of_int acc.n

let std acc = sqrt (variance acc)

let skewness (acc : t) =
  if acc.n = 0 || acc.m2 = 0.0 then 0.0
  else begin
    let nf = float_of_int acc.n in
    sqrt nf *. acc.m3 /. (acc.m2 ** 1.5)
  end

let kurtosis (acc : t) =
  if acc.n = 0 || acc.m2 = 0.0 then 3.0
  else begin
    let nf = float_of_int acc.n in
    nf *. acc.m4 /. (acc.m2 *. acc.m2)
  end

let excess_kurtosis acc = kurtosis acc -. 3.0

let summary (acc : t) : summary =
  {
    n = acc.n;
    mean = mean acc;
    std = std acc;
    skewness = skewness acc;
    kurtosis = kurtosis acc;
  }

let summary_of_array xs = summary (of_array xs)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mu=%.6g sigma=%.6g gamma=%.4f kappa=%.4f" s.n s.mean
    s.std s.skewness s.kurtosis
