let of_sorted xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Quantile.of_sorted: empty sample";
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Quantile.of_sorted: probability outside [0,1]";
  (* Type-7 estimator: h = (n-1)p, interpolate between floor and ceil. *)
  let h = float_of_int (n - 1) *. p in
  let lo = int_of_float (Float.floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))

let of_sample xs p =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  of_sorted copy p

let many_of_sample xs ps =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  List.map (fun p -> (p, of_sorted copy p)) ps

let sigma_levels = [ -3; -2; -1; 0; 1; 2; 3 ]

let probability_of_sigma n = Special.normal_cdf n
let sigma_of_probability p = Special.normal_quantile p

let empirical_sigma_level xs n =
  of_sample xs (probability_of_sigma (float_of_int n))
