(** Interpolation schemes used by the moment-calibration step.

    Eq. (2) of the paper calibrates μ and σ with a bilinear surface in
    (ΔS, ΔC); eq. (3) calibrates γ and κ with per-axis cubics plus the
    ΔS·ΔC cross term.  {!Surface} implements both forms as fitted
    polynomial surfaces; {!Grid2d} provides classical table lookup with
    bilinear interpolation, used by the LVF-style LUTs of the cell
    library. *)

val linear : x0:float -> y0:float -> x1:float -> y1:float -> float -> float
(** Straight-line interpolation through two points (extrapolates). *)

(** Rectangular-grid bilinear lookup, clamping outside the grid — the
    industry-standard NLDM/LVF table access. *)
module Grid2d : sig
  type t

  val create : xs:float array -> ys:float array -> values:float array array -> t
  (** [xs] (strictly increasing, length ≥ 1) indexes rows of [values];
      [ys] indexes columns.  @raise Invalid_argument on shape errors. *)

  val eval : t -> float -> float -> float
  (** Bilinear interpolation of (x, y); coordinates outside the table are
      clamped to its edges, as timing tools do for LUT access. *)

  val xs : t -> float array
  val ys : t -> float array
  val values : t -> float array array
end

(** Fitted polynomial surfaces over (ΔS, ΔC) of the exact shapes used in
    eqs. (2) and (3). *)
module Surface : sig
  type t

  val fit_bilinear :
    points:(float * float) array -> values:float array -> t
  (** Least-squares fit of v ≈ v₀ + p₁ΔS + p₂ΔC + kΔSΔC (eq. 2 form). *)

  val fit_cubic : points:(float * float) array -> values:float array -> t
  (** Least-squares fit of
      v ≈ v₀ + p₁ΔS + p₂ΔC + q₁ΔS² + q₂ΔC² + r₁ΔS³ + r₂ΔC³ + kΔSΔC
      (eq. 3 form). *)

  val eval : t -> float -> float -> float
  val coefficients : t -> float array
  (** Raw fitted coefficients, constant term first. *)

  val r2 : t -> float
end
