(** Ordinary least squares, the fitting engine behind Table I of the paper
    (quantile-model coefficients A_ni/B_nj) and the moment-calibration
    surfaces of eqs. (2)–(3).

    A fit minimises ‖Xβ − y‖² through the normal equations XᵀXβ = Xᵀy,
    solved by Cholesky with a tiny ridge fallback when the design is
    rank-deficient (which happens when a feature is constant across the
    characterisation grid). *)

type fit = {
  coeffs : float array;  (** β, one entry per design-matrix column *)
  r2 : float;  (** coefficient of determination on the training data *)
  residual_std : float;  (** RMS residual *)
}

val fit : design:float array array -> target:float array -> fit
(** Least-squares fit of [target] on the rows of [design].
    @raise Invalid_argument on empty or mismatched data. *)

val predict : fit -> float array -> float
(** Apply fitted coefficients to one feature row. *)

val fit_with_intercept :
  features:float array array -> target:float array -> fit
(** Convenience: prepends a constant-1 column, so [coeffs.(0)] is the
    intercept. *)

val polynomial_features : degree:int -> float -> float array
(** [polynomial_features ~degree x] is [| 1; x; x²; …; x^degree |]. *)

val polyfit : degree:int -> xs:float array -> ys:float array -> fit
(** 1-D polynomial least squares of the given degree. *)

val polyval : float array -> float -> float
(** Evaluate coefficients (constant first) at a point. *)
