(** Special functions used by the statistical models.

    Everything here is implemented from scratch (no external numerics
    dependency): error function, normal distribution primitives, inverse
    normal CDF, log-gamma/Beta for Burr-distribution moments, and Owen's T
    function for the skew-normal CDF. *)

val erf : float -> float
(** Error function, |relative error| < 1.2e-7 (Abramowitz–Stegun 7.1.26
    refined with one Newton step against [erfc]). *)

val erfc : float -> float
(** Complementary error function. *)

val normal_pdf : float -> float
(** Standard normal density. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution. *)

val normal_quantile : float -> float
(** Inverse standard normal CDF (Acklam's rational approximation polished
    with one Halley step); accurate to ~1e-9 over (0, 1).
    @raise Invalid_argument if the probability lies outside (0, 1). *)

val lgamma : float -> float
(** Natural log of the Gamma function (Lanczos, g = 7, n = 9). *)

val beta : float -> float -> float
(** Euler Beta function, computed through {!lgamma}. *)

val owen_t : float -> float -> float
(** [owen_t h a] is Owen's T function
    (1/2π) ∫₀ᵃ exp(−h²(1+x²)/2)/(1+x²) dx, evaluated by adaptive Simpson
    quadrature; used for the skew-normal CDF. *)

val log1p_exp : float -> float
(** Numerically stable log(1 + exp x), used by the EKV transistor model. *)
