type mat = float array array
type vec = float array

let make rows cols = Array.make_matrix rows cols 0.0

let identity n =
  let m = make n n in
  for i = 0 to n - 1 do
    m.(i).(i) <- 1.0
  done;
  m

let dims m =
  let rows = Array.length m in
  if rows = 0 then (0, 0)
  else begin
    let cols = Array.length m.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> cols then
          invalid_arg "Linalg.dims: ragged matrix")
      m;
    (rows, cols)
  end

let transpose m =
  let rows, cols = dims m in
  let t = make cols rows in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      t.(j).(i) <- m.(i).(j)
    done
  done;
  t

let matmul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Linalg.matmul: dimension mismatch";
  let c = make ra cb in
  for i = 0 to ra - 1 do
    for k = 0 to ca - 1 do
      let aik = a.(i).(k) in
      if aik <> 0.0 then
        for j = 0 to cb - 1 do
          c.(i).(j) <- c.(i).(j) +. (aik *. b.(k).(j))
        done
    done
  done;
  c

let matvec a x =
  let ra, ca = dims a in
  if ca <> Array.length x then invalid_arg "Linalg.matvec: dimension mismatch";
  Array.init ra (fun i ->
      let s = ref 0.0 in
      for j = 0 to ca - 1 do
        s := !s +. (a.(i).(j) *. x.(j))
      done;
      !s)

let dot x y =
  if Array.length x <> Array.length y then
    invalid_arg "Linalg.dot: dimension mismatch";
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let solve a b =
  let n, m = dims a in
  if n <> m then invalid_arg "Linalg.solve: matrix must be square";
  if Array.length b <> n then invalid_arg "Linalg.solve: rhs size mismatch";
  let a = Array.map Array.copy a in
  let b = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivot. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if Float.abs a.(!pivot).(col) < 1e-300 then
      failwith "Linalg.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = a.(row).(col) /. a.(col).(col) in
      if factor <> 0.0 then begin
        for j = col to n - 1 do
          a.(row).(j) <- a.(row).(j) -. (factor *. a.(col).(j))
        done;
        b.(row) <- b.(row) -. (factor *. b.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let s = ref b.(row) in
    for j = row + 1 to n - 1 do
      s := !s -. (a.(row).(j) *. x.(j))
    done;
    x.(row) <- !s /. a.(row).(row)
  done;
  x

type lu = { lu : mat; perm : int array }

let lu_factor a =
  let n, m = dims a in
  if n <> m then invalid_arg "Linalg.lu_factor: matrix must be square";
  let lu = Array.map Array.copy a in
  let perm = Array.init n Fun.id in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs lu.(row).(col) > Float.abs lu.(!pivot).(col) then pivot := row
    done;
    if Float.abs lu.(!pivot).(col) < 1e-300 then
      failwith "Linalg.lu_factor: singular matrix";
    if !pivot <> col then begin
      let tmp = lu.(col) in
      lu.(col) <- lu.(!pivot);
      lu.(!pivot) <- tmp;
      let tp = perm.(col) in
      perm.(col) <- perm.(!pivot);
      perm.(!pivot) <- tp
    end;
    for row = col + 1 to n - 1 do
      let factor = lu.(row).(col) /. lu.(col).(col) in
      lu.(row).(col) <- factor;
      if factor <> 0.0 then
        for j = col + 1 to n - 1 do
          lu.(row).(j) <- lu.(row).(j) -. (factor *. lu.(col).(j))
        done
    done
  done;
  { lu; perm }

let lu_solve { lu; perm } b =
  let n = Array.length lu in
  if Array.length b <> n then invalid_arg "Linalg.lu_solve: rhs size mismatch";
  (* Forward substitution on the permuted rhs. *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(perm.(i)) in
    for j = 0 to i - 1 do
      s := !s -. (lu.(i).(j) *. y.(j))
    done;
    y.(i) <- !s
  done;
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. lu.(i).(i)
  done;
  x

let cholesky a =
  let n, m = dims a in
  if n <> m then invalid_arg "Linalg.cholesky: matrix must be square";
  let l = make n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref a.(i).(j) in
      for k = 0 to j - 1 do
        s := !s -. (l.(i).(k) *. l.(j).(k))
      done;
      if i = j then begin
        if !s <= 0.0 then failwith "Linalg.cholesky: not positive definite";
        l.(i).(i) <- sqrt !s
      end
      else l.(i).(j) <- !s /. l.(j).(j)
    done
  done;
  l

let solve_spd a b =
  let l = cholesky a in
  let n = Array.length b in
  (* Forward substitution: L y = b. *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (l.(i).(k) *. y.(k))
    done;
    y.(i) <- !s /. l.(i).(i)
  done;
  (* Back substitution: Lᵀ x = y. *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (l.(k).(i) *. x.(k))
    done;
    x.(i) <- !s /. l.(i).(i)
  done;
  x

let tridiag_solve ~diag ~lower ~upper rhs =
  let n = Array.length diag in
  if Array.length rhs <> n then
    invalid_arg "Linalg.tridiag_solve: rhs size mismatch";
  if n > 0 && (Array.length lower <> n - 1 || Array.length upper <> n - 1) then
    invalid_arg "Linalg.tridiag_solve: off-diagonal size mismatch";
  if n = 0 then [||]
  else begin
    let cp = Array.make n 0.0 and dp = Array.make n 0.0 in
    if Float.abs diag.(0) < 1e-300 then
      failwith "Linalg.tridiag_solve: zero pivot";
    cp.(0) <- (if n > 1 then upper.(0) /. diag.(0) else 0.0);
    dp.(0) <- rhs.(0) /. diag.(0);
    for i = 1 to n - 1 do
      let denom = diag.(i) -. (lower.(i - 1) *. cp.(i - 1)) in
      if Float.abs denom < 1e-300 then
        failwith "Linalg.tridiag_solve: zero pivot";
      if i < n - 1 then cp.(i) <- upper.(i) /. denom;
      dp.(i) <- (rhs.(i) -. (lower.(i - 1) *. dp.(i - 1))) /. denom
    done;
    let x = Array.make n 0.0 in
    x.(n - 1) <- dp.(n - 1);
    for i = n - 2 downto 0 do
      x.(i) <- dp.(i) -. (cp.(i) *. x.(i + 1))
    done;
    x
  end
