module Netlist = Nsigma_netlist.Netlist
module Cell = Nsigma_liberty.Cell

type hop = {
  in_net : int;
  in_edge : Provider.edge;
  tap : int;
  wire_delay : float;
  pin_slew : float;
  gate : int;
  out_edge : Provider.edge;
  cell_delay : float;
  load_cap : float;
  out_net : int;
}

type t = {
  hops : hop list;
  end_net : int;
  end_tap : int;
  end_wire_delay : float;
  total : float;
}

let n_stages t = List.length t.hops

let wire_delays t =
  List.map (fun h -> h.wire_delay) t.hops @ [ t.end_wire_delay ]

let cell_delays t = List.map (fun h -> h.cell_delay) t.hops

let pp netlist ppf t =
  Format.fprintf ppf "@[<v>path: %d stages, nominal %.1f ps@," (n_stages t)
    (t.total *. 1e12);
  List.iter
    (fun h ->
      let g = netlist.Netlist.gates.(h.gate) in
      Format.fprintf ppf "  net %s -(%.2fps wire)-> %s %s [%s] %.2fps@,"
        netlist.Netlist.net_names.(h.in_net)
        (h.wire_delay *. 1e12) (Cell.name g.Netlist.cell) g.Netlist.g_name
        (match h.out_edge with Provider.Rise -> "R" | Provider.Fall -> "F")
        (h.cell_delay *. 1e12))
    t.hops;
  Format.fprintf ppf "  -> PO net %s (+%.2fps wire)@]"
    netlist.Netlist.net_names.(t.end_net)
    (t.end_wire_delay *. 1e12)
