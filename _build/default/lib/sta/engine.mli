(** Arrival-time propagation and critical-path extraction.

    The engine is model-agnostic: it walks gates in topological order,
    tracks rising and falling arrivals per net with proper unateness
    (inverting cells flip the edge; XOR-class cells consider both), and
    asks the {!Provider.t} for every cell and wire delay.  Running the
    same engine with different providers is how the repository compares
    MC-derived, corner, baseline and N-sigma timing on identical
    structure — mirroring Table III. *)

type net_arrival = {
  time : float;  (** arrival at the net's driver output *)
  slew : float;  (** transition at the driver output *)
}

type report

val analyze :
  ?input_slew:float ->
  ?load_model:[ `Total | `Effective ] ->
  Nsigma_process.Technology.t ->
  Provider.t ->
  Design.t ->
  report
(** Propagate arrivals from primary inputs (t = 0, default slew 10 ps).
    [load_model] selects how each gate's output load is lumped for the
    delay lookup: [`Total] (default) sums wire + pin capacitance;
    [`Effective] applies {!Design.effective_load}'s resistive-shielding
    correction (the C_eff approach the paper's introduction attributes
    to industrial LVF flows).
    @raise Invalid_argument on a cyclic netlist. *)

val arrival : report -> net:int -> edge:Provider.edge -> net_arrival option
(** Arrival at a net for one transition direction; [None] if no event of
    that polarity can reach the net. *)

val design_of : report -> Design.t
(** The design the report was computed on. *)

val po_arrival : report -> net:int -> edge:Provider.edge -> float option
(** Arrival at a primary output's tap (final wire segment included);
    [None] when the PO never sees that polarity or [net] is not a PO. *)

val circuit_delay : report -> float
(** Worst arrival over all primary-output taps (final wire included). *)

val critical_path : report -> Path.t
(** The path realising {!circuit_delay}. *)

val worst_paths : report -> k:int -> Path.t list
(** The worst path through each primary output, sorted worst-first,
    truncated to [k] entries (paths through distinct POs, not a full
    K-path enumeration). *)
