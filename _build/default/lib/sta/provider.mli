(** The pluggable delay-model interface of the STA engine.

    A provider answers three questions for the propagation loop: a gate's
    propagation delay, its output slew, and the delay of a wire segment
    to one tap.  Every timing method in the repository — the mean-based
    reference timer, the PrimeTime-like corner timer, the baselines, and
    the paper's N-sigma model at each sigma level — is a value of this
    type, so they all run through the identical engine. *)

type edge = Rise | Fall

val flip : edge -> edge

type t = {
  label : string;
  cell_delay :
    Nsigma_netlist.Netlist.gate -> edge:edge -> input_slew:float ->
    load_cap:float -> float;
      (** propagation delay of the gate's worst arc for the output edge *)
  cell_out_slew :
    Nsigma_netlist.Netlist.gate -> edge:edge -> input_slew:float ->
    load_cap:float -> float;
      (** output transition time under the same conditions *)
  wire_delay :
    net:int -> driver:Nsigma_liberty.Cell.t option ->
    sink:Nsigma_liberty.Cell.t option ->
    tree:Nsigma_rcnet.Rctree.t -> tap:int -> float;
      (** interconnect delay from the net's root to [tap]; driver/sink
          cells are provided for models (like the paper's) that use them *)
  wire_slew_degrade : wire_delay:float -> slew_at_root:float -> float;
      (** transition time at the tap given the root transition (PERI-style
          for the builtin providers) *)
}

val nominal : Nsigma_liberty.Library.t -> t
(** Mean-delay timer: cell μ from the characterised tables (bilinear LVF
    lookup), Elmore wire delay, PERI slew degradation.  This is the
    reference timer used to establish each stage's operating condition. *)

val input_slew_default : float
(** Transition time assumed at primary inputs (10 ps, the paper's
    S_ref). *)
