module Netlist = Nsigma_netlist.Netlist
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Characterize = Nsigma_liberty.Characterize
module Elmore = Nsigma_rcnet.Elmore
module Moments = Nsigma_stats.Moments

type edge = Rise | Fall

let flip = function Rise -> Fall | Fall -> Rise

type t = {
  label : string;
  cell_delay :
    Netlist.gate -> edge:edge -> input_slew:float -> load_cap:float -> float;
  cell_out_slew :
    Netlist.gate -> edge:edge -> input_slew:float -> load_cap:float -> float;
  wire_delay :
    net:int ->
    driver:Cell.t option ->
    sink:Cell.t option ->
    tree:Nsigma_rcnet.Rctree.t ->
    tap:int ->
    float;
  wire_slew_degrade : wire_delay:float -> slew_at_root:float -> float;
}

let input_slew_default = 10e-12

let table_edge = function Rise -> `Rise | Fall -> `Fall

(* PERI: the tap transition is the RSS of the root transition and the
   wire's own step response (~2.2·Elmore for 20-80%). *)
let peri ~wire_delay ~slew_at_root =
  sqrt ((slew_at_root *. slew_at_root) +. (2.2 *. wire_delay *. 2.2 *. wire_delay))

let nominal library =
  let find gate edge =
    Library.find library gate.Netlist.cell ~edge:(table_edge edge)
  in
  {
    label = "nominal-mean";
    cell_delay =
      (fun gate ~edge ~input_slew ~load_cap ->
        let table = find gate edge in
        (Characterize.moments_at table ~slew:input_slew ~load:load_cap).Moments.mean);
    cell_out_slew =
      (fun gate ~edge ~input_slew ~load_cap ->
        Characterize.out_slew_at (find gate edge) ~slew:input_slew ~load:load_cap);
    wire_delay =
      (fun ~net:_ ~driver:_ ~sink:_ ~tree ~tap -> Elmore.delay_at tree tap);
    wire_slew_degrade = peri;
  }
