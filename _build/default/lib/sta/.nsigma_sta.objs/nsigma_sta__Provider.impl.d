lib/sta/provider.ml: Nsigma_liberty Nsigma_netlist Nsigma_rcnet Nsigma_stats
