lib/sta/design.mli: Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_rcnet
