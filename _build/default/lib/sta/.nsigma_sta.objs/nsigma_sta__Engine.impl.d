lib/sta/engine.ml: Array Design Float Hashtbl List Nsigma_liberty Nsigma_netlist Option Path Provider
