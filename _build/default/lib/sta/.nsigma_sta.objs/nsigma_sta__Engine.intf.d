lib/sta/engine.mli: Design Nsigma_process Path Provider
