lib/sta/path.mli: Format Nsigma_netlist Provider
