lib/sta/design.ml: Array List Nsigma_liberty Nsigma_netlist Nsigma_rcnet Nsigma_stats Printf
