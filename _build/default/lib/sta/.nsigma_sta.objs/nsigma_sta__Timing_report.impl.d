lib/sta/timing_report.ml: Array Design Engine Float Format List Nsigma_liberty Nsigma_netlist Path Printf Provider
