lib/sta/timing_report.mli: Engine Format Nsigma_netlist Path Provider
