lib/sta/path_mc.mli: Design Nsigma_process Nsigma_stats Path
