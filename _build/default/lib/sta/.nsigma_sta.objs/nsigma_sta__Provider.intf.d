lib/sta/provider.mli: Nsigma_liberty Nsigma_netlist Nsigma_rcnet
