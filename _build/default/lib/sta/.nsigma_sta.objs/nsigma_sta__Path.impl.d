lib/sta/path.ml: Array Format List Nsigma_liberty Nsigma_netlist Provider
