lib/sta/path_mc.ml: Array Design Float List Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_rcnet Nsigma_spice Nsigma_stats Path Provider
