(** Timing paths: the ordered gate/wire hops extracted from an analysis.

    A path starts at a primary input, passes through [hops] (each hop =
    the wire into a gate pin followed by the gate's switching arc) and
    ends with the wire from the last gate to a primary-output tap.  The
    nominal operating conditions recorded per hop (pin slew, output load)
    are what the statistical models calibrate against — and what the
    Monte-Carlo path simulator re-derives physically per sample. *)

type hop = {
  in_net : int;  (** net feeding the switching pin *)
  in_edge : Provider.edge;  (** transition at the pin *)
  tap : int;  (** tap node of [in_net]'s tree at this pin *)
  wire_delay : float;  (** nominal wire delay into the pin (0 for PI nets) *)
  pin_slew : float;  (** nominal transition at the pin *)
  gate : int;  (** gate index in the netlist *)
  out_edge : Provider.edge;
  cell_delay : float;  (** nominal gate delay *)
  load_cap : float;  (** nominal lumped load on the gate's output *)
  out_net : int;
}

type t = {
  hops : hop list;  (** in propagation order *)
  end_net : int;  (** primary-output net *)
  end_tap : int;  (** PO tap on that net *)
  end_wire_delay : float;  (** nominal wire delay of the final segment *)
  total : float;  (** nominal path delay (Σ cell + Σ wire) *)
}

val n_stages : t -> int
val wire_delays : t -> float list
(** All nominal wire-segment delays along the path (including the final
    segment) — the series plotted in Fig. 11 of the paper. *)

val cell_delays : t -> float list

val pp : Nsigma_netlist.Netlist.t -> Format.formatter -> t -> unit
