lib/rcnet/spef.ml: Array Buffer Fun Hashtbl List Printf Rctree String
