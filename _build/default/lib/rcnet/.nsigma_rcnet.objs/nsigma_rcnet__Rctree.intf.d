lib/rcnet/rctree.mli: Format
