lib/rcnet/elmore.mli: Rctree
