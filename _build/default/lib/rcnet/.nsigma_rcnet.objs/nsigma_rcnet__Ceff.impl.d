lib/rcnet/ceff.ml: Array Rctree
