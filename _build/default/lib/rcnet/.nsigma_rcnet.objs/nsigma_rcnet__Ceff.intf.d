lib/rcnet/ceff.mli: Rctree
