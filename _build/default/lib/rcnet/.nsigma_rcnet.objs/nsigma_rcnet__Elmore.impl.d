lib/rcnet/elmore.ml: Array Rctree
