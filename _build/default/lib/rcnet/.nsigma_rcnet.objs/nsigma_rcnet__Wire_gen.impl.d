lib/rcnet/wire_gen.ml: Array Float Fun List Nsigma_process Nsigma_stats Printf Rctree
