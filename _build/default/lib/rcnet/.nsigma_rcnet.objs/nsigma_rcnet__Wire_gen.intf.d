lib/rcnet/wire_gen.mli: Nsigma_process Nsigma_stats Rctree
