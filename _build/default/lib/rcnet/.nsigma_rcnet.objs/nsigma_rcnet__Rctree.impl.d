lib/rcnet/rctree.ml: Array Format List Printf
