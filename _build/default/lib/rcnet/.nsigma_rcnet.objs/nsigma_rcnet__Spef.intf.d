lib/rcnet/spef.mli: Rctree
