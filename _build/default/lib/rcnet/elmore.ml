let delays ?(driver_res = 0.0) (t : Rctree.t) =
  let n = Rctree.n_nodes t in
  let down = Rctree.downstream_cap t in
  let out = Array.make n 0.0 in
  (* Root sees the driver resistance times all capacitance. *)
  out.(0) <- driver_res *. down.(0);
  for i = 1 to n - 1 do
    out.(i) <- out.(t.nodes.(i).parent) +. (t.nodes.(i).res *. down.(i))
  done;
  out

let delay_at ?driver_res t i =
  if i < 0 || i >= Rctree.n_nodes t then
    invalid_arg "Elmore.delay_at: index out of range";
  (delays ?driver_res t).(i)

let delay_to_tap ?driver_res (t : Rctree.t) =
  if Array.length t.taps = 0 then invalid_arg "Elmore.delay_to_tap: no taps";
  (delays ?driver_res t).(t.taps.(0))

(* Second moment via the weighted-downstream recurrence: with
   T_k the Elmore delay at k, S2(i) = Σ_{k in subtree(i)} C_k·T_k, and
   m2_i = Σ_{edges e on path} R_e·S2(e) (driver edge included). *)
let second_moments ?(driver_res = 0.0) (t : Rctree.t) =
  let n = Rctree.n_nodes t in
  let elm = delays ~driver_res t in
  let s2 = Array.init n (fun i -> t.nodes.(i).cap *. elm.(i)) in
  for i = n - 1 downto 1 do
    let p = t.nodes.(i).parent in
    s2.(p) <- s2.(p) +. s2.(i)
  done;
  let out = Array.make n 0.0 in
  out.(0) <- driver_res *. s2.(0);
  for i = 1 to n - 1 do
    out.(i) <- out.(t.nodes.(i).parent) +. (t.nodes.(i).res *. s2.(i))
  done;
  out

let d2m_at ?driver_res t i =
  let m1 = delay_at ?driver_res t i in
  let m2 = (second_moments ?driver_res t).(i) in
  if m2 <= 0.0 then m1 *. log 2.0
  else log 2.0 *. m1 *. m1 /. sqrt m2
