(** A minimal SPEF-like text format for RC trees.

    Real designs exchange parasitics in IEEE-1481 SPEF; this module
    implements the small subset the flow needs — one [*D_NET] block per
    net with [*CAP] and [*RES] sections — so parasitics survive a
    round-trip to disk and hand-written fixtures are easy to read.
    Resistances are in Ω, capacitances in fF (as in common SPEF headers). *)

val to_string : name:string -> Rctree.t -> string
(** Serialise one net. *)

val of_string : string -> (string * Rctree.t) list
(** Parse every [*D_NET] block of a document.
    @raise Failure with a line-diagnostic on malformed input. *)

val write_file : string -> (string * Rctree.t) list -> unit
val read_file : string -> (string * Rctree.t) list
