(** First- and second-moment interconnect delay metrics.

    Elmore (eq. 4 of the paper) is the first moment of the impulse
    response; D2M adds the second moment.  Both are computed in O(n) by
    two tree passes.  An optional driver resistance is included as a
    lumped resistance between the source and the root — this is how the
    wire model accounts for the driver cell when forming μ_w. *)

val delays : ?driver_res:float -> Rctree.t -> float array
(** Per-node Elmore delay (s) from the driver source.  [driver_res]
    (default 0) multiplies the total downstream capacitance. *)

val delay_at : ?driver_res:float -> Rctree.t -> int -> float
(** Elmore delay at one node. *)

val delay_to_tap : ?driver_res:float -> Rctree.t -> float
(** Elmore delay at the first tap — the common single-sink case.
    @raise Invalid_argument if the tree has no tap. *)

val second_moments : ?driver_res:float -> Rctree.t -> float array
(** Per-node second moment m2 of the impulse response (s²), with the same
    lumped-driver convention. *)

val d2m_at : ?driver_res:float -> Rctree.t -> int -> float
(** Alpert's D2M metric ln2 · m1²/√m2 at one node — a sharper delay
    estimate than Elmore for far-from-source nodes. *)
