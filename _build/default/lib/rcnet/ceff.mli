(** Effective capacitance of an RC load.

    The paper's introduction notes that industrial LVF flows add an
    {e effective} capacitance to the cell's output load to represent the
    connected wire: a driver does not see the total wire capacitance
    because resistive shielding hides the far end during the transition.

    This module implements a two-pass O'Brien/Savarino-style estimate:
    each subtree's capacitance is weighted by a shielding factor
    s = 1 / (1 + R_path/R_drv·k) comparing the resistance between the
    driver and that capacitance to the driver's own output resistance —
    a strong driver (small R_drv) sees less of the wire than a weak one,
    which is one more face of the paper's cell/wire interaction. *)

val effective :
  driver_resistance:float -> Rctree.t -> float
(** Effective capacitance (F) seen by a driver with the given output
    resistance (Ω).  Monotone: grows toward {!Rctree.total_cap} as the
    driver weakens and falls toward the near-end capacitance as it
    strengthens.  @raise Invalid_argument for non-positive resistance. *)

val shielding_ratio :
  driver_resistance:float -> Rctree.t -> float
(** [effective / total_cap] ∈ (0, 1]. *)

val driver_resistance_estimate :
  vdd:float -> drive_current:float -> float
(** Crude switch-resistance estimate R_drv ≈ V/(2·I_eff) used to couple
    the cell library's drive strength to the shielding factor. *)
